package tpupoint

// Ablation studies for the design choices DESIGN.md calls out: what the
// XLA fusion pass buys, what PCA buys the clustering, and how prefetch
// depth shapes TPU idle time. Each has a correctness test (the direction
// must hold) and a benchmark (the cost of the ablated configuration).

import (
	"testing"

	"repro/internal/core/cluster"
	"repro/internal/estimator"
	"repro/internal/tpu"
	"repro/internal/trace"
	"repro/internal/workloads"
	"repro/internal/xla"
)

// --- Fusion ablation -------------------------------------------------------

// compileBoth compiles a workload's train graph with and without fusion.
func compileBoth(t testing.TB, name string) (fused, unfused *xla.Program) {
	t.Helper()
	w := workloads.MustGet(name)
	var err error
	fused, err = xla.Compile(w.TrainGraph)
	if err != nil {
		t.Fatal(err)
	}
	unfused, err = xla.CompileWithOptions(w.TrainGraph, xla.Options{DisableFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	return fused, unfused
}

func TestAblationFusionReducesTrafficAndTime(t *testing.T) {
	for _, name := range []string{"bert-squad", "resnet-imagenet"} {
		fused, unfused := compileBoth(t, name)
		if fused.TotalFLOPs() != unfused.TotalFLOPs() {
			t.Fatalf("%s: fusion changed FLOPs: %d vs %d",
				name, fused.TotalFLOPs(), unfused.TotalFLOPs())
		}
		if fused.TotalBytes() >= unfused.TotalBytes() {
			t.Fatalf("%s: fusion did not reduce HBM traffic: %d vs %d",
				name, fused.TotalBytes(), unfused.TotalBytes())
		}
		if len(fused.Instructions) >= len(unfused.Instructions) {
			t.Fatalf("%s: fusion did not reduce instruction count", name)
		}
		// Device-level effect: the fused program's step is faster.
		dev := tpu.NewDevice(tpu.NewChipSpec(tpu.V2), 0)
		if err := dev.LoadProgram(fused); err != nil {
			t.Fatal(err)
		}
		tFused := dev.StepBusyTime()
		if err := dev.LoadProgram(unfused); err != nil {
			t.Fatal(err)
		}
		tUnfused := dev.StepBusyTime()
		if tFused >= tUnfused {
			t.Fatalf("%s: fused step %v not faster than unfused %v", name, tFused, tUnfused)
		}
	}
}

func BenchmarkAblationCompileFused(b *testing.B) {
	w := workloads.MustGet("bert-squad")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xla.Compile(w.TrainGraph); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCompileUnfused(b *testing.B) {
	w := workloads.MustGet("bert-squad")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xla.CompileWithOptions(w.TrainGraph, xla.Options{DisableFusion: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- PCA ablation ----------------------------------------------------------

func stepFeatures(t testing.TB) *cluster.Matrix {
	t.Helper()
	w := workloads.MustGet("dcgan-cifar10")
	r, err := estimator.New(w, estimator.Options{Steps: 250})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	rec := trace.Reduce(0, 0, r.Events(), r.IdleFraction(), r.MXUUtilization())
	steps := trace.AggregateSteps([]*trace.ProfileRecord{rec})
	m, _ := cluster.Features(steps)
	cluster.Standardize(m)
	return m
}

func TestAblationPCAPreservesClusteringQuality(t *testing.T) {
	m := stepFeatures(t)
	reduced := cluster.PCA(m, 20)
	full, err := cluster.KMeans(m, 5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	red, err := cluster.KMeans(reduced, 5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Both clusterings must keep the training steps in one dominant
	// cluster (the phase structure survives the projection).
	if maxSize(full.Sizes) < m.Rows/2 {
		t.Fatalf("full-dim clustering lost the training cluster: %v", full.Sizes)
	}
	if maxSize(red.Sizes) < m.Rows/2 {
		t.Fatalf("PCA clustering lost the training cluster: %v", red.Sizes)
	}
	if reduced.Cols >= m.Cols {
		t.Fatalf("PCA did not reduce dims: %d vs %d", reduced.Cols, m.Cols)
	}
}

func maxSize(sizes []int) int {
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return max
}

func BenchmarkAblationKMeansWithPCA(b *testing.B) {
	m := stepFeatures(b)
	reduced := cluster.PCA(m, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(reduced, 5, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationKMeansWithoutPCA(b *testing.B) {
	m := stepFeatures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(m, 5, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- iterations_per_loop ablation --------------------------------------------

// idleAtLoopIters runs QANet with the given iterations_per_loop — the
// TPUEstimator parameter in Table I's DCGAN row. Each loop boundary
// serializes the TPU against a host outfeed dequeue and session
// bookkeeping, so tiny values devastate utilization.
func idleAtLoopIters(t testing.TB, iters int) float64 {
	t.Helper()
	w := workloads.MustGet("qanet-squad")
	w.IterationsPerLoop = iters
	r, err := estimator.New(w, estimator.Options{Steps: 220, DisableEval: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	return r.IdleFraction()
}

func TestAblationIterationsPerLoop(t *testing.T) {
	d1 := idleAtLoopIters(t, 1)
	d10 := idleAtLoopIters(t, 10)
	d100 := idleAtLoopIters(t, 100)
	if d1 <= d10 || d10 <= d100 {
		t.Fatalf("idle not monotone in loop serialization: ipl1=%.3f ipl10=%.3f ipl100=%.3f", d1, d10, d100)
	}
	if d1-d100 < 0.10 {
		t.Fatalf("per-step sync costs only %.3f idle; expected a dominant effect", d1-d100)
	}
}

func BenchmarkAblationIterPerLoop1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		idleAtLoopIters(b, 1)
	}
}

func BenchmarkAblationIterPerLoop100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		idleAtLoopIters(b, 100)
	}
}
