// Command benchdiff compares two benchmark reports (the
// BENCH_analyzer.json / BENCH_archive.json documents that `paperbench
// -analyzer-bench` / `-archive-bench` emit) and fails when the new run
// regresses past a tolerance.
//
// Entries are matched by (kernel, mode, n); configurations present in
// only one report — e.g. the quadratic reference that quick mode skips
// at large n — are ignored. Entries that report allocs/op (the codec
// kernels) are additionally held to -alloc-tolerance: allocation counts
// are near-deterministic, so a regression there is a real code change,
// not noise. Beyond per-entry comparisons, the tool asserts the
// structural wins the optimizations exist for:
//
//   - -min-grid-speedup: the largest-n "dbscan_grid_parallel_vs_brute"
//     speedup (analyzer reports).
//   - -min-decode-speedup: the largest-n "archive_decode_par_vs_serial"
//     speedup (archive reports). Enforced only when the candidate
//     report ran with GOMAXPROCS >= 4 — on fewer cores the parallel
//     decode degenerates to near-serial and the floor is meaningless.
//   - -min-alloc-reduction: the largest-n "wire_marshal_alloc_reduction"
//     fraction (archive reports) — how much of the naive encoder's
//     allocations the pooled wire encoder eliminates. CPU-independent.
//   - -min-stream-f1 / -max-share-mape: the largest-n
//     "stream_boundary_f1_duty10" / "stream_share_mape_duty10" fidelity
//     scores (stream reports) — how faithfully the duty-cycled
//     streaming analyzer reproduces the batch analyzer's phase report.
//     Deterministic, so any drift is a real code change.
//   - -max-ingest-p99-regress: per-agent-count p99 save latency of the
//     sharded ingest repository (ingest reports), held relative to the
//     baseline's latency at the same agent count rather than to an
//     absolute floor, so a contention regression at 256 agents cannot
//     hide behind a healthy small-scale number. Latency is a property
//     of the runner, so the gate only holds when both reports recorded
//     the same GOMAXPROCS — a baseline from a different machine class
//     is noise, not a contract.
//   - -min-replica-scaling: the largest-agent-count
//     "ingest_replica_scaling" ratio (ingest reports) — replicated
//     ingest throughput at the deepest replica sweep point over the
//     single-replica baseline. Like -min-decode-speedup it is enforced
//     only when the candidate ran with GOMAXPROCS >= 4: replica lanes
//     scale with cores, and on fewer the ratio degenerates to ~1x.
//   - -min-cluster-throughput: wall-clock scheduler throughput (jobs
//     scheduled per second) of every cluster_schedule entry (cluster
//     reports). An absolute floor, kept loose: it exists to catch the
//     scheduling loop going accidentally quadratic, not to measure the
//     runner.
//   - -max-cluster-p99-regress: per-preset×policy worst-tenant p99
//     queueing delay (cluster_p99_wait_us_*) held relative to the
//     baseline, and Jain's fairness index (cluster_jain_*) held to the
//     same fraction in the other direction. Both are simulated-time
//     quantities — deterministic for a fixed seed — so the tolerance
//     can be tight; drift means the scheduler changed behavior.
//
// Usage:
//
//	benchdiff -old BENCH_analyzer.json -new /tmp/bench.json
//	benchdiff -old BENCH_archive.json -new head.json -min-grid-speedup 0 \
//	    -min-decode-speedup 2 -min-alloc-reduction 0.5
//	benchdiff -old BENCH_stream.json -new head.json -min-grid-speedup 0 \
//	    -min-stream-f1 0.9 -max-share-mape 0.10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		oldPath   = flag.String("old", "BENCH_analyzer.json", "baseline report (committed)")
		newPath   = flag.String("new", "", "candidate report (freshly generated)")
		tolerance = flag.Float64("tolerance", 0.15, "allowed ns/op regression fraction per entry")
		allocTol  = flag.Float64("alloc-tolerance", 0.10, "allowed allocs/op regression fraction per entry, for entries both reports measured")
		minGrid   = flag.Float64("min-grid-speedup", 2.0, "required dbscan grid-vs-brute speedup at the largest measured n (0 disables)")
		minDecode = flag.Float64("min-decode-speedup", 0, "required archive parallel-decode speedup at the largest measured n; only enforced when the candidate ran with GOMAXPROCS >= 4 (0 disables)")
		minAlloc  = flag.Float64("min-alloc-reduction", 0, "required wire_marshal allocation-reduction fraction at the largest measured n (0 disables)")
		minF1     = flag.Float64("min-stream-f1", 0, "required streaming phase-boundary F1 vs the batch analyzer at duty cycle 1/10, largest measured n (0 disables)")
		maxMAPE   = flag.Float64("max-share-mape", 0, "allowed streaming per-phase time-share MAPE vs the batch analyzer at duty cycle 1/10, largest measured n (0 disables)")
		maxP99    = flag.Float64("max-ingest-p99-regress", 0, "allowed p99 save-latency regression fraction per ingest agent count, old vs new; only enforced when both reports recorded the same GOMAXPROCS (0 disables)")
		minScale  = flag.Float64("min-replica-scaling", 0, "required replicated-ingest throughput ratio (max replicas vs 1 replica) at the largest measured agent count; only enforced when the candidate ran with GOMAXPROCS >= 4 (0 disables)")
		minSched  = flag.Float64("min-cluster-throughput", 0, "required wall-clock scheduler throughput in jobs/sec for every cluster_schedule entry (0 disables)")
		maxWait   = flag.Float64("max-cluster-p99-regress", 0, "allowed regression fraction for per-preset×policy cluster p99 queueing delay and Jain fairness, old vs new (0 disables)")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: missing -new report")
		os.Exit(2)
	}
	oldRep, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newRep, err := load(*newPath)
	if err != nil {
		fatal(err)
	}

	failures := compare(oldRep, newRep, *tolerance, *allocTol)
	failures = append(failures, checkGridSpeedup(newRep, *minGrid)...)
	failures = append(failures, checkDecodeSpeedup(newRep, *minDecode)...)
	failures = append(failures, checkAllocReduction(newRep, *minAlloc)...)
	failures = append(failures, checkStreamFidelity(newRep, *minF1, *maxMAPE)...)
	failures = append(failures, checkIngestLatency(oldRep, newRep, *maxP99)...)
	failures = append(failures, checkReplicaScaling(newRep, *minScale)...)
	failures = append(failures, checkClusterThroughput(newRep, *minSched)...)
	failures = append(failures, checkClusterFairness(oldRep, newRep, *maxWait)...)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: OK")
}

func load(path string) (*experiments.AnalyzerBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep experiments.AnalyzerBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Entries) == 0 {
		return nil, fmt.Errorf("%s: no benchmark entries", path)
	}
	return &rep, nil
}

type entryKey struct {
	kernel, mode string
	n            int
}

func index(rep *experiments.AnalyzerBenchReport) map[entryKey]experiments.AnalyzerBenchEntry {
	m := make(map[entryKey]experiments.AnalyzerBenchEntry, len(rep.Entries))
	for _, e := range rep.Entries {
		m[entryKey{e.Kernel, e.Mode, e.N}] = e
	}
	return m
}

// allocSlack is the absolute allocs/op play the alloc comparison grants
// on top of the relative tolerance, so near-zero counts (the pooled
// encoder's steady state) don't fail on a one-allocation wobble.
const allocSlack = 16

// compare prints a ratio table for every shared configuration and
// returns one failure per entry whose ns/op grew past the tolerance, or
// whose allocs/op grew past allocTol when both reports measured it.
func compare(oldRep, newRep *experiments.AnalyzerBenchReport, tolerance, allocTol float64) []string {
	oldIdx := index(oldRep)
	keys := make([]entryKey, 0, len(newRep.Entries))
	newIdx := index(newRep)
	for k := range newIdx {
		if _, ok := oldIdx[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.n != b.n {
			return a.n < b.n
		}
		if a.kernel != b.kernel {
			return a.kernel < b.kernel
		}
		return a.mode < b.mode
	})
	if len(keys) == 0 {
		return []string{"no overlapping entries between the two reports"}
	}

	var failures []string
	fmt.Printf("%-18s %-10s %8s %14s %14s %8s %12s %12s\n",
		"kernel", "mode", "n", "old ns/op", "new ns/op", "ratio", "old allocs", "new allocs")
	for _, k := range keys {
		o, n := oldIdx[k], newIdx[k]
		ratio := n.NsPerOp / o.NsPerOp
		mark := ""
		if ratio > 1+tolerance {
			mark = "  << REGRESSION"
			failures = append(failures, fmt.Sprintf(
				"%s/%s n=%d regressed %.1f%% (old %.0f ns/op, new %.0f ns/op, tolerance %.0f%%)",
				k.kernel, k.mode, k.n, 100*(ratio-1), o.NsPerOp, n.NsPerOp, 100*tolerance))
		}
		oldAllocs, newAllocs := "-", "-"
		if o.AllocsPerOp > 0 {
			oldAllocs = fmt.Sprintf("%.0f", o.AllocsPerOp)
		}
		if n.AllocsPerOp > 0 {
			newAllocs = fmt.Sprintf("%.0f", n.AllocsPerOp)
		}
		// Allocation counts are compared only where the baseline has them
		// (older baselines predate allocs/op) and with an absolute slack,
		// since a report's count is a near-exact property of the code.
		if o.AllocsPerOp > 0 && n.AllocsPerOp > o.AllocsPerOp*(1+allocTol)+allocSlack {
			mark = "  << ALLOC REGRESSION"
			failures = append(failures, fmt.Sprintf(
				"%s/%s n=%d allocs/op regressed %.1f%% (old %.0f, new %.0f, tolerance %.0f%% + %d)",
				k.kernel, k.mode, k.n, 100*(n.AllocsPerOp/o.AllocsPerOp-1),
				o.AllocsPerOp, n.AllocsPerOp, 100*allocTol, allocSlack))
		}
		fmt.Printf("%-18s %-10s %8d %14.0f %14.0f %7.2fx %12s %12s%s\n",
			k.kernel, k.mode, k.n, o.NsPerOp, n.NsPerOp, ratio, oldAllocs, newAllocs, mark)
	}
	return failures
}

// checkGridSpeedup asserts the candidate report's largest-n
// dbscan_grid_parallel_vs_brute speedup meets the floor. Quick-mode
// reports skip the quadratic reference at large n, so the check uses
// the biggest n the report actually measured.
func checkGridSpeedup(rep *experiments.AnalyzerBenchReport, minSpeedup float64) []string {
	if minSpeedup <= 0 {
		return nil
	}
	bestN, speedup := largestN(rep, "dbscan_grid_parallel_vs_brute_n")
	if bestN < 0 {
		return []string{"candidate report has no dbscan_grid_parallel_vs_brute speedup"}
	}
	fmt.Printf("dbscan grid vs brute at n=%d: %.2fx (floor %.2fx)\n", bestN, speedup, minSpeedup)
	if speedup < minSpeedup {
		return []string{fmt.Sprintf(
			"dbscan grid-vs-brute speedup at n=%d is %.2fx, below the %.2fx floor",
			bestN, speedup, minSpeedup)}
	}
	return nil
}

// checkDecodeSpeedup asserts the structural win the parallel archive
// codec exists for: at the largest measured n, parallel decode must beat
// one-worker decode by the floor. The two paths are bit-identical by
// construction (internal/archive's differential tests), so this is a
// pure throughput gate — and it only means something when there are
// cores to fan out to, hence the GOMAXPROCS >= 4 condition.
func checkDecodeSpeedup(rep *experiments.AnalyzerBenchReport, minSpeedup float64) []string {
	if minSpeedup <= 0 {
		return nil
	}
	if rep.GOMAXPROCS < 4 {
		fmt.Printf("archive decode speedup floor skipped: candidate ran with GOMAXPROCS=%d (< 4)\n", rep.GOMAXPROCS)
		return nil
	}
	bestN, speedup := largestN(rep, "archive_decode_par_vs_serial_n")
	if bestN < 0 {
		return []string{"candidate report has no archive_decode_par_vs_serial speedup"}
	}
	fmt.Printf("archive decode parallel vs serial at n=%d: %.2fx (floor %.2fx)\n", bestN, speedup, minSpeedup)
	if speedup < minSpeedup {
		return []string{fmt.Sprintf(
			"archive parallel-decode speedup at n=%d is %.2fx, below the %.2fx floor",
			bestN, speedup, minSpeedup)}
	}
	return nil
}

// checkAllocReduction asserts the pooled wire encoder still eliminates
// at least the floor fraction of the naive reference's allocations at
// the largest measured n. Unlike the decode gate this holds on any core
// count: allocation behavior doesn't depend on parallelism.
func checkAllocReduction(rep *experiments.AnalyzerBenchReport, minReduction float64) []string {
	if minReduction <= 0 {
		return nil
	}
	bestN, reduction := largestN(rep, "wire_marshal_alloc_reduction_n")
	if bestN < 0 {
		return []string{"candidate report has no wire_marshal_alloc_reduction entry"}
	}
	fmt.Printf("wire marshal allocation reduction at n=%d: %.1f%% (floor %.1f%%)\n",
		bestN, 100*reduction, 100*minReduction)
	if reduction < minReduction {
		return []string{fmt.Sprintf(
			"wire_marshal allocation reduction at n=%d is %.1f%%, below the %.1f%% floor",
			bestN, 100*reduction, 100*minReduction)}
	}
	return nil
}

// checkStreamFidelity asserts the streaming analyzer's fidelity floors
// at the hard setting — duty cycle 1/10 — and the largest measured n:
// phase-boundary F1 must stay at or above minF1 and the per-phase
// time-share MAPE at or below maxMAPE. Both scores are deterministic
// functions of the record stream, so unlike the timing gates there is
// no noise allowance; drift means the analyzer changed behavior.
func checkStreamFidelity(rep *experiments.AnalyzerBenchReport, minF1, maxMAPE float64) []string {
	var failures []string
	if minF1 > 0 {
		bestN, f1 := largestN(rep, "stream_boundary_f1_duty10_n")
		if bestN < 0 {
			failures = append(failures, "candidate report has no stream_boundary_f1_duty10 score")
		} else {
			fmt.Printf("stream boundary F1 at duty 1/10, n=%d: %.3f (floor %.3f)\n", bestN, f1, minF1)
			if f1 < minF1 {
				failures = append(failures, fmt.Sprintf(
					"streaming boundary F1 at duty 1/10, n=%d is %.3f, below the %.3f floor",
					bestN, f1, minF1))
			}
		}
	}
	if maxMAPE > 0 {
		bestN, mape := largestN(rep, "stream_share_mape_duty10_n")
		if bestN < 0 {
			failures = append(failures, "candidate report has no stream_share_mape_duty10 score")
		} else {
			fmt.Printf("stream time-share MAPE at duty 1/10, n=%d: %.2f%% (ceiling %.2f%%)\n",
				bestN, 100*mape, 100*maxMAPE)
			if mape > maxMAPE {
				failures = append(failures, fmt.Sprintf(
					"streaming time-share MAPE at duty 1/10, n=%d is %.2f%%, above the %.2f%% ceiling",
					bestN, 100*mape, 100*maxMAPE))
			}
		}
	}
	return failures
}

// checkIngestLatency holds the candidate's p99 save latency at each
// agent count the baseline measured to within maxRegress of the
// baseline's. Unlike the floor gates this is a relative comparison —
// absolute latency depends on the runner — and it is keyed per sweep
// point: a regression that only shows at 256 agents (the contention
// regime the sharded repository exists for) must not hide behind a
// healthy 8-agent number. Quick-mode candidates drop the largest point,
// so only agent counts both reports measured are held; having none in
// common is itself a failure. The report also tracks manifest-CAS
// retries per point (ingest_cas_retries_*) — those are diagnostic, not
// gated, since absorbed retries are the design working as intended.
func checkIngestLatency(oldRep, newRep *experiments.AnalyzerBenchReport, maxRegress float64) []string {
	if maxRegress <= 0 {
		return nil
	}
	// Latency ceilings only transfer between same-shaped runners: a
	// baseline recorded on a different core count measures a different
	// contention regime (mirrors the -min-decode-speedup core guard).
	if oldRep.GOMAXPROCS != newRep.GOMAXPROCS {
		fmt.Printf("ingest p99 ceilings skipped: baseline GOMAXPROCS=%d, candidate GOMAXPROCS=%d\n",
			oldRep.GOMAXPROCS, newRep.GOMAXPROCS)
		return nil
	}
	const prefix = "ingest_p99_us_agents"
	var agentCounts []int
	for key := range oldRep.Speedups {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		if n, err := strconv.Atoi(key[len(prefix):]); err == nil {
			agentCounts = append(agentCounts, n)
		}
	}
	if len(agentCounts) == 0 {
		return []string{"baseline report has no ingest_p99_us entries to hold the candidate to"}
	}
	sort.Ints(agentCounts)

	var failures []string
	compared := 0
	for _, agents := range agentCounts {
		key := fmt.Sprintf("%s%d", prefix, agents)
		oldP99 := oldRep.Speedups[key]
		newP99, ok := newRep.Speedups[key]
		if !ok {
			continue
		}
		compared++
		fmt.Printf("ingest p99 at %d agents: old %.0fµs, new %.0fµs (ceiling %.2fx)\n",
			agents, oldP99, newP99, 1+maxRegress)
		if oldP99 > 0 && newP99 > oldP99*(1+maxRegress) {
			failures = append(failures, fmt.Sprintf(
				"ingest p99 at %d agents regressed %.0f%% (old %.0fµs, new %.0fµs, ceiling %.0f%%)",
				agents, 100*(newP99/oldP99-1), oldP99, newP99, 100*maxRegress))
		}
	}
	if compared == 0 {
		failures = append(failures, "candidate report shares no ingest agent counts with the baseline")
	}
	return failures
}

// checkReplicaScaling asserts the structural win replicated collection
// exists for: at the largest measured agent count, ingest throughput
// with the full replica set must beat the single-replica lane by the
// floor. The replicated bench routes every run to its owning lane the
// way a placement-aware fleet does, so the ratio isolates the
// horizontal knob — and like parallel decode it only means something
// with cores to fan the lanes across, hence the GOMAXPROCS >= 4 guard.
func checkReplicaScaling(rep *experiments.AnalyzerBenchReport, minScale float64) []string {
	if minScale <= 0 {
		return nil
	}
	if rep.GOMAXPROCS < 4 {
		fmt.Printf("replica scaling floor skipped: candidate ran with GOMAXPROCS=%d (< 4)\n", rep.GOMAXPROCS)
		return nil
	}
	bestN, scale := largestN(rep, "ingest_replica_scaling_agents")
	if bestN < 0 {
		return []string{"candidate report has no ingest_replica_scaling ratio"}
	}
	fmt.Printf("replicated ingest scaling at %d agents: %.2fx (floor %.2fx)\n", bestN, scale, minScale)
	if scale < minScale {
		return []string{fmt.Sprintf(
			"replicated ingest scaling at %d agents is %.2fx, below the %.2fx floor",
			bestN, scale, minScale)}
	}
	return nil
}

// checkClusterThroughput holds every cluster_schedule entry's wall-clock
// scheduler throughput (jobs scheduled per second, pipeline prep
// amortized in) above an absolute floor. The floor is meant to be loose
// — it catches the scheduling loop going accidentally quadratic in jobs
// or workers, not runner speed.
func checkClusterThroughput(rep *experiments.AnalyzerBenchReport, minJobsPerSec float64) []string {
	if minJobsPerSec <= 0 {
		return nil
	}
	var failures []string
	seen := false
	for _, e := range rep.Entries {
		if e.Kernel != "cluster_schedule" {
			continue
		}
		seen = true
		fmt.Printf("cluster scheduler throughput %s (n=%d, %d workers): %.0f jobs/sec (floor %.0f)\n",
			e.Mode, e.N, e.Workers, e.StepsPerSec, minJobsPerSec)
		if e.StepsPerSec < minJobsPerSec {
			failures = append(failures, fmt.Sprintf(
				"cluster scheduler throughput %s is %.0f jobs/sec, below the %.0f floor",
				e.Mode, e.StepsPerSec, minJobsPerSec))
		}
	}
	if !seen {
		failures = append(failures, "candidate report has no cluster_schedule entries")
	}
	return failures
}

// checkClusterFairness holds the candidate's worst-tenant p99 queueing
// delay (cluster_p99_wait_us_<preset>_<policy>) at each preset×policy
// the baseline measured to within maxRegress of the baseline's, and
// Jain's fairness index (cluster_jain_*) to the same fraction in the
// other direction. Both are simulated-time quantities, deterministic
// for a fixed seed, so unlike the ingest latency gate the tolerance can
// be tight; any drift is a scheduler behavior change, not runner noise.
// Quick-mode candidates drop the fleet preset, so only modes both
// reports measured are held; having none in common is itself a failure.
func checkClusterFairness(oldRep, newRep *experiments.AnalyzerBenchReport, maxRegress float64) []string {
	if maxRegress <= 0 {
		return nil
	}
	const waitPrefix = "cluster_p99_wait_us_"
	const jainPrefix = "cluster_jain_"
	var modes []string
	for key := range oldRep.Speedups {
		if strings.HasPrefix(key, waitPrefix) {
			modes = append(modes, key[len(waitPrefix):])
		}
	}
	if len(modes) == 0 {
		return []string{"baseline report has no cluster_p99_wait_us entries to hold the candidate to"}
	}
	sort.Strings(modes)

	var failures []string
	compared := 0
	for _, mode := range modes {
		oldWait := oldRep.Speedups[waitPrefix+mode]
		newWait, ok := newRep.Speedups[waitPrefix+mode]
		if !ok {
			continue
		}
		compared++
		fmt.Printf("cluster p99 wait %s: old %.0fµs, new %.0fµs (ceiling %.2fx)\n",
			mode, oldWait, newWait, 1+maxRegress)
		if oldWait > 0 && newWait > oldWait*(1+maxRegress) {
			failures = append(failures, fmt.Sprintf(
				"cluster p99 queueing delay %s regressed %.0f%% (old %.0fµs, new %.0fµs, ceiling %.0f%%)",
				mode, 100*(newWait/oldWait-1), oldWait, newWait, 100*maxRegress))
		}
		oldJain, okOld := oldRep.Speedups[jainPrefix+mode]
		newJain, okNew := newRep.Speedups[jainPrefix+mode]
		if okOld && okNew {
			fmt.Printf("cluster Jain index %s: old %.3f, new %.3f (floor %.2fx)\n",
				mode, oldJain, newJain, 1-maxRegress)
			if oldJain > 0 && newJain < oldJain*(1-maxRegress) {
				failures = append(failures, fmt.Sprintf(
					"cluster Jain fairness %s dropped %.0f%% (old %.3f, new %.3f, floor %.0f%%)",
					mode, 100*(1-newJain/oldJain), oldJain, newJain, 100*(1-maxRegress)))
			}
		}
	}
	if compared == 0 {
		failures = append(failures, "candidate report shares no cluster preset×policy modes with the baseline")
	}
	return failures
}

// largestN returns the value of the prefix-keyed speedup with the
// biggest n suffix, or (-1, 0) when the report has none. Quick-mode
// reports can skip expensive configurations, so gates always read the
// biggest n the report actually measured.
func largestN(rep *experiments.AnalyzerBenchReport, prefix string) (int, float64) {
	bestN, v := -1, 0.0
	for key, s := range rep.Speedups {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		n, err := strconv.Atoi(key[len(prefix):])
		if err != nil {
			continue
		}
		if n > bestN {
			bestN, v = n, s
		}
	}
	return bestN, v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
