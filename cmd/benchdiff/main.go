// Command benchdiff compares two analyzer benchmark reports (the
// BENCH_analyzer.json documents that `paperbench -analyzer-bench`
// emits) and fails when the new run regresses past a tolerance.
//
// Entries are matched by (kernel, mode, n); configurations present in
// only one report — e.g. the quadratic reference that quick mode skips
// at large n — are ignored. Beyond per-entry timing, the tool asserts
// the structural win the grid index exists for: the new report's
// largest-n "dbscan_grid_parallel_vs_brute" speedup must clear
// -min-grid-speedup.
//
// Usage:
//
//	benchdiff -old BENCH_analyzer.json -new /tmp/bench.json
//	benchdiff -old base.json -new head.json -tolerance 0.25 -min-grid-speedup 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		oldPath   = flag.String("old", "BENCH_analyzer.json", "baseline report (committed)")
		newPath   = flag.String("new", "", "candidate report (freshly generated)")
		tolerance = flag.Float64("tolerance", 0.15, "allowed ns/op regression fraction per entry")
		minGrid   = flag.Float64("min-grid-speedup", 2.0, "required dbscan grid-vs-brute speedup at the largest measured n (0 disables)")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: missing -new report")
		os.Exit(2)
	}
	oldRep, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newRep, err := load(*newPath)
	if err != nil {
		fatal(err)
	}

	failures := compare(oldRep, newRep, *tolerance)
	failures = append(failures, checkGridSpeedup(newRep, *minGrid)...)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: OK")
}

func load(path string) (*experiments.AnalyzerBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep experiments.AnalyzerBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Entries) == 0 {
		return nil, fmt.Errorf("%s: no benchmark entries", path)
	}
	return &rep, nil
}

type entryKey struct {
	kernel, mode string
	n            int
}

func index(rep *experiments.AnalyzerBenchReport) map[entryKey]experiments.AnalyzerBenchEntry {
	m := make(map[entryKey]experiments.AnalyzerBenchEntry, len(rep.Entries))
	for _, e := range rep.Entries {
		m[entryKey{e.Kernel, e.Mode, e.N}] = e
	}
	return m
}

// compare prints a ratio table for every shared configuration and
// returns one failure per entry whose ns/op grew past the tolerance.
func compare(oldRep, newRep *experiments.AnalyzerBenchReport, tolerance float64) []string {
	oldIdx := index(oldRep)
	keys := make([]entryKey, 0, len(newRep.Entries))
	newIdx := index(newRep)
	for k := range newIdx {
		if _, ok := oldIdx[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.n != b.n {
			return a.n < b.n
		}
		if a.kernel != b.kernel {
			return a.kernel < b.kernel
		}
		return a.mode < b.mode
	})
	if len(keys) == 0 {
		return []string{"no overlapping entries between the two reports"}
	}

	var failures []string
	fmt.Printf("%-14s %-10s %8s %14s %14s %8s\n", "kernel", "mode", "n", "old ns/op", "new ns/op", "ratio")
	for _, k := range keys {
		o, n := oldIdx[k], newIdx[k]
		ratio := n.NsPerOp / o.NsPerOp
		mark := ""
		if ratio > 1+tolerance {
			mark = "  << REGRESSION"
			failures = append(failures, fmt.Sprintf(
				"%s/%s n=%d regressed %.1f%% (old %.0f ns/op, new %.0f ns/op, tolerance %.0f%%)",
				k.kernel, k.mode, k.n, 100*(ratio-1), o.NsPerOp, n.NsPerOp, 100*tolerance))
		}
		fmt.Printf("%-14s %-10s %8d %14.0f %14.0f %7.2fx%s\n",
			k.kernel, k.mode, k.n, o.NsPerOp, n.NsPerOp, ratio, mark)
	}
	return failures
}

// checkGridSpeedup asserts the candidate report's largest-n
// dbscan_grid_parallel_vs_brute speedup meets the floor. Quick-mode
// reports skip the quadratic reference at large n, so the check uses
// the biggest n the report actually measured.
func checkGridSpeedup(rep *experiments.AnalyzerBenchReport, minSpeedup float64) []string {
	if minSpeedup <= 0 {
		return nil
	}
	const prefix = "dbscan_grid_parallel_vs_brute_n"
	bestN, speedup := -1, 0.0
	for key, v := range rep.Speedups {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		n, err := strconv.Atoi(key[len(prefix):])
		if err != nil {
			continue
		}
		if n > bestN {
			bestN, speedup = n, v
		}
	}
	if bestN < 0 {
		return []string{"candidate report has no dbscan_grid_parallel_vs_brute speedup"}
	}
	fmt.Printf("dbscan grid vs brute at n=%d: %.2fx (floor %.2fx)\n", bestN, speedup, minSpeedup)
	if speedup < minSpeedup {
		return []string{fmt.Sprintf(
			"dbscan grid-vs-brute speedup at n=%d is %.2fx, below the %.2fx floor",
			bestN, speedup, minSpeedup)}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
