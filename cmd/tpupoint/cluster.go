// The `cluster` verb: deterministic multi-tenant fleet simulation.
//
//	tpupoint cluster -presets                      (list named presets)
//	tpupoint cluster -preset smoke -seed 42
//	tpupoint cluster -preset rush -policy all -json
//	tpupoint -archive ./runs cluster -preset smoke -policy workload-affinity
//
// Every scheduled job runs the real workload→profiler→analyzer pipeline;
// with -archive the completed profiles are saved into the repository
// (run IDs "<preset>-<policy>-<jobID>", tagged with their tenant) so
// `runs list -tenant` and `runs diff` work across the fleet. The same
// seed and preset produce a bit-identical schedule, fairness report,
// and archives at any -parallelism.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// clusterCmd dispatches `tpupoint cluster`. dir is the global -archive
// directory ("" = don't persist archives); reg is the global -metrics
// registry (may be nil).
func clusterCmd(args []string, dir string, codecPar, shards int, reg *obs.Registry) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	var (
		listPresets = fs.Bool("presets", false, "list the named cluster presets and exit")
		preset      = fs.String("preset", "smoke", "named fleet scenario (see -presets)")
		policy      = fs.String("policy", cluster.PolicyLeastLoad, "routing policy, or \"all\" to schedule under every policy")
		seed        = fs.Uint64("seed", 42, "simulation seed; same seed + preset = bit-identical schedule and archives")
		par         = fs.Int("parallelism", 0, "worker pool for the per-job profile pipelines (0 = GOMAXPROCS; results identical for any value)")
		jsonOut     = fs.Bool("json", false, "emit the fairness reports as JSON instead of tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("cluster: unexpected argument %q", fs.Arg(0))
	}
	if *listPresets {
		for _, name := range cluster.PresetNames() {
			spec, err := cluster.Preset(name, *seed)
			if err != nil {
				return err
			}
			jobs := 0
			for _, t := range spec.Tenants {
				jobs += t.Jobs
			}
			fmt.Printf("%-8s %3d workers, %d tenants, %4d jobs\n",
				name, spec.Workers, len(spec.Tenants), jobs)
		}
		return nil
	}

	policies := []string{*policy}
	if *policy == "all" {
		policies = cluster.Policies()
	}
	spec, err := cluster.Preset(*preset, *seed)
	if err != nil {
		return err
	}
	spec.Parallelism = *par
	c, err := cluster.New(spec)
	if err != nil {
		return err
	}

	var reports []*cluster.Report
	for _, p := range policies {
		res, err := c.Schedule(p, reg)
		if err != nil {
			return err
		}
		reports = append(reports, res.Report)
		if !*jsonOut {
			fmt.Print(res.Report.String())
		}

		if dir != "" {
			r, bucket, err := openRepoDir(dir, codecPar, shards)
			if err != nil {
				return err
			}
			label := *preset + "-" + p
			saved, err := c.SaveArchives(r, res, label)
			if err != nil {
				return err
			}
			if saved != res.Report.Accepted {
				return fmt.Errorf("cluster: accepted %d jobs but archived %d", res.Report.Accepted, saved)
			}
			if err := syncRepoDir(bucket, dir); err != nil {
				return err
			}
			if !*jsonOut {
				fmt.Printf("archived:  %d runs labeled %q -> %s\n\n", saved, label, dir)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	return nil
}
