package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/archive"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// writeRepoWithRun builds an on-disk repository containing one saved
// run and returns its directory plus the raw blob bytes.
func writeRepoWithRun(t *testing.T, runID string) (string, []byte) {
	t.Helper()
	dir := t.TempDir()
	w := archive.NewWriter(archive.Meta{RunID: runID, Workload: "synthetic", CreatedSeq: 1})
	if err := w.SetSegmentTarget(256); err != nil {
		t.Fatal(err)
	}
	var ts simclock.Time
	for i := 0; i < 24; i++ {
		w.Add(trace.Reduce(int64(i), ts, []trace.Event{
			{Name: "MatMul", Device: trace.TPU, Start: ts, Dur: 500, Step: int64(i)},
		}, 0.2, 0.4))
		ts += 1000
	}
	blob := w.Finalize(nil)

	r, bucket, err := openRepoDir(dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Save(blob); err != nil {
		t.Fatal(err)
	}
	if err := syncRepoDir(bucket, dir); err != nil {
		t.Fatal(err)
	}
	return dir, blob
}

func blobPath(dir, runID string) string {
	return filepath.Join(dir, "runs", runID, "archive")
}

// TestRunsSalvageRoundTrip drives the CLI path end to end: damage the
// on-disk blob, `runs salvage` it, and prove the repaired repository
// reads back cleanly.
func TestRunsSalvageRoundTrip(t *testing.T) {
	dir, blob := writeRepoWithRun(t, "run-a")
	// Tear the tail off the stored blob: footer and final segment gone.
	if err := os.WriteFile(blobPath(dir, "run-a"), blob[:len(blob)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	if err := runsCmd([]string{"salvage", "run-a"}, dir, 0, false, 1, 0); err != nil {
		t.Fatalf("runs salvage: %v", err)
	}

	// Reopen from disk: the run must verify and carry records.
	r, _, err := openRepoDir(dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	info, a, err := r.Get("run-a")
	if err != nil {
		t.Fatalf("salvaged run unreadable from disk: %v", err)
	}
	if info.Records == 0 || info.Records != a.RecordCount() {
		t.Fatalf("info = %+v, archive records = %d", info, a.RecordCount())
	}
	rep, err := r.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("post-salvage fsck: %+v", rep)
	}
}

// TestRunsFsckRepair: a phantom manifest entry (blob deleted on disk)
// is detected and repaired through the CLI verb.
func TestRunsFsckRepair(t *testing.T) {
	dir, _ := writeRepoWithRun(t, "run-a")
	if err := os.Remove(blobPath(dir, "run-a")); err != nil {
		t.Fatal(err)
	}

	// Check-only finds the issue and exits non-zero.
	if err := runsCmd([]string{"fsck"}, dir, 0, false, 1, 0); err == nil {
		t.Fatal("fsck should report unrepaired issues")
	}
	if err := runsCmd([]string{"fsck", "-repair"}, dir, 0, false, 1, 0); err != nil {
		t.Fatalf("fsck -repair: %v", err)
	}
	if err := runsCmd([]string{"fsck"}, dir, 0, false, 1, 0); err != nil {
		t.Fatalf("repository not clean after repair: %v", err)
	}

	r, _, err := openRepoDir(dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Info("run-a"); err == nil {
		t.Fatal("phantom entry survived on-disk repair")
	}
}

// TestSyncRepoDirPersistsQuarantine: fsck's quarantine area must
// survive the bucket→directory sync.
func TestSyncRepoDirPersistsQuarantine(t *testing.T) {
	dir, _ := writeRepoWithRun(t, "run-a")
	if err := os.WriteFile(blobPath(dir, "run-a"), []byte("XXXXnothing"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runsCmd([]string{"fsck", "-repair"}, dir, 0, false, 1, 0); err != nil {
		t.Fatalf("fsck -repair: %v", err)
	}
	q := filepath.Join(dir, "quarantine", "runs", "run-a", "archive")
	if _, err := os.Stat(q); err != nil {
		t.Fatalf("quarantined blob not persisted: %v", err)
	}
	if _, err := os.Stat(blobPath(dir, "run-a")); !os.IsNotExist(err) {
		t.Fatal("corrupt blob left in runs/ after quarantine")
	}
}
