// The `watch` verb: tail a record stream through the streaming phase
// analyzer and print phase boundaries as they close — the operator's
// live view of a run's structure, without waiting for finalize-time
// batch analysis.
//
//	tpupoint -archive ./runs watch <run-id>            replay an archived run
//	tpupoint -archive ./runs watch -session <token>    tail a fleet session log
//	tpupoint -archive ./runs watch -session <token> -follow
//
// With -follow the session log is re-read every -interval until it
// stops growing for -idle, so a live collection can be watched from a
// second terminal while the collector appends to the same directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core/analyzer"
	"repro/internal/repo"
	"repro/internal/storage"
	"repro/internal/trace"
)

func watchCmd(args []string, archiveDir string, codecPar int) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	var (
		duty      = fs.Int("duty", 1, "profile duty cycle: analyze only steps ≡ 0 mod N (1 = every step)")
		threshold = fs.Float64("threshold", analyzer.DefaultThreshold, "OLS step-similarity threshold")
		sessionTk = fs.String("session", "", "tail a fleet session log by resume token instead of an archived run")
		follow    = fs.Bool("follow", false, "with -session: keep polling the log for new records")
		interval  = fs.Duration("interval", 500*time.Millisecond, "with -follow: poll interval")
		idle      = fs.Duration("idle", 5*time.Second, "with -follow: stop after the log is quiet this long")
		quiet     = fs.Bool("quiet", false, "print only phase closes and the summary")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tpupoint -archive <dir> watch [flags] <run-id>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if archiveDir == "" {
		return fmt.Errorf("watch needs -archive pointing at a profile repository")
	}

	s := analyzer.NewStream("watch", analyzer.StreamOptions{
		Threshold: *threshold,
		DutyCycle: *duty,
		OnEvent:   watchPrinter(*quiet),
	})

	switch {
	case *sessionTk != "":
		if err := watchSession(s, archiveDir, *sessionTk, *follow, *interval, *idle); err != nil {
			return err
		}
	case fs.NArg() == 1:
		if err := watchArchive(s, archiveDir, codecPar, fs.Arg(0)); err != nil {
			return err
		}
	default:
		fs.Usage()
		return fmt.Errorf("watch needs a run ID or -session <token>")
	}

	printStreamSummary(s.Finish())
	return nil
}

// watchPrinter renders stream events as they fire.
func watchPrinter(quiet bool) func(analyzer.StreamEvent) {
	return func(ev analyzer.StreamEvent) {
		switch ev.Kind {
		case analyzer.PhaseOpen:
			if !quiet {
				fmt.Printf("phase %d open    at step %d\n", ev.Phase.ID, ev.Step)
			}
		case analyzer.PhaseClose:
			p := ev.Phase
			fmt.Printf("phase %d closed  steps %d-%d (%d sampled, %.1fms", p.ID, p.FirstStep, p.LastStep,
				p.Steps, p.Total.Milliseconds())
			if p.Cluster >= 0 {
				fmt.Printf(", cluster %d", p.Cluster)
			}
			if p.Degraded > 0 {
				fmt.Printf(", %d degraded steps", p.Degraded)
			}
			fmt.Print(")")
			for i, op := range p.Signature {
				if i == 3 {
					break
				}
				fmt.Printf("  %s %.0f%%", op.Key.Name, 100*op.Share)
			}
			fmt.Println()
		case analyzer.StepDegraded:
			if !quiet {
				fmt.Printf("degraded        step %d in phase %d exceeds the phase-mean span\n",
					ev.Step, ev.Phase.ID)
			}
		}
	}
}

// watchArchive streams one archived run through the analyzer via the
// O(1)-resident record iterator.
func watchArchive(s *analyzer.StreamAnalyzer, dir string, codecPar int, runID string) error {
	r, _, err := openRepoDir(dir, codecPar, 0)
	if err != nil {
		return err
	}
	_, a, err := r.Get(runID)
	if err != nil {
		return err
	}
	it := a.Iter()
	for it.Next() {
		if err := s.Feed(it.Record()); err != nil {
			return err
		}
	}
	return it.Err()
}

// watchSession replays a fleet session's durable log, optionally
// following it as the collector appends. Each poll re-imports the
// repository directory — the log on disk is the shared truth between
// the collector process and this one — and feeds only the new tail.
func watchSession(s *analyzer.StreamAnalyzer, dir, token string, follow bool, interval, idle time.Duration) error {
	fed := 0
	quietSince := time.Now()
	for {
		recs, err := readSessionLogDir(dir, token)
		if err != nil {
			return err
		}
		grew := len(recs) > fed
		for _, raw := range recs[fed:] {
			rec, err := trace.UnmarshalRecord(raw)
			if err != nil {
				return fmt.Errorf("session %q log record %d: %w", token, fed, err)
			}
			if err := s.Feed(rec); err != nil {
				return err
			}
			fed++
		}
		if !follow {
			return nil
		}
		if grew {
			quietSince = time.Now()
		}
		if time.Since(quietSince) > idle {
			fmt.Printf("log quiet for %s; closing\n", idle)
			return nil
		}
		time.Sleep(interval)
	}
}

// readSessionLogDir loads the repository directory fresh and returns
// the session's durably-accepted records.
func readSessionLogDir(dir, token string) ([][]byte, error) {
	svc := storage.NewService()
	bucket, err := svc.CreateBucket("watch")
	if err != nil {
		return nil, err
	}
	if _, err := bucket.ImportDir(dir); err != nil {
		return nil, fmt.Errorf("loading repository %s: %w", dir, err)
	}
	return repo.SessionRecords(bucket, token)
}

func printStreamSummary(rep *analyzer.StreamReport) {
	var degraded int64
	for _, p := range rep.Phases {
		degraded += p.Degraded
	}
	fmt.Printf("watch summary: %d phases, %d/%d steps sampled (duty 1/%d), %d records (%d gaps), %.2fs, idle %.1f%%, mxu %.1f%%, %d degraded steps\n",
		len(rep.Phases), rep.Steps, rep.StepsSeen, rep.DutyCycle, rep.Records, rep.Gaps,
		rep.TotalTime.Seconds(), 100*rep.IdleFrac, 100*rep.MXUUtil, degraded)
}
