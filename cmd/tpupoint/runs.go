// Profile-repository subcommands and the fleet collection server.
//
// The repository lives in a directory on disk (-archive): the bucket
// layout (runs/manifest.json + runs/<id>/archive) mirrored as files.
// Each invocation imports the directory into an in-memory bucket,
// operates on it through internal/repo, and syncs mutations back.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/core/viz"
	"repro/internal/obs"
	"repro/internal/repo"
	"repro/internal/rpc"
	"repro/internal/storage"
)

// openRepoDir loads a profile repository from a directory (which may
// not exist yet — that's an empty repository) and replays its intent
// journal, so a repository left behind by a crashed process is
// reconciled before any verb runs. codecPar sets the archive codec's
// worker pool for repository reads (-codec-parallelism: 0 = GOMAXPROCS,
// 1 = serial; decoded runs are bit-identical either way). shards is the
// -shards request: 0 keeps the repository's existing manifest layout,
// N > 1 migrates a legacy single-manifest repository to N shards on
// open (an already-sharded repository keeps its recorded count).
func openRepoDir(dir string, codecPar, shards int) (*repo.Repo, *storage.Bucket, error) {
	svc := storage.NewService()
	bucket, err := svc.CreateBucket("profile-repo")
	if err != nil {
		return nil, nil, err
	}
	if _, err := os.Stat(dir); err == nil {
		if _, err := bucket.ImportDir(dir); err != nil {
			return nil, nil, fmt.Errorf("loading repository %s: %w", dir, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	r, rec, err := repo.OpenShards(bucket, shards)
	if err != nil {
		return nil, nil, fmt.Errorf("recovering repository %s: %w", dir, err)
	}
	if !rec.Clean() {
		fmt.Printf("recovery: replayed %d interrupted mutations (%d completed, %d rolled back, %d orphans reclaimed)\n",
			rec.OpenIntents, rec.Completed, rec.RolledBack, len(rec.OrphansReclaimed))
	}
	r.SetCodecParallelism(codecPar)
	return r, bucket, nil
}

// repoPrefixes are the bucket subtrees that persist to disk: run data,
// durable fleet session state, and fsck's quarantine area.
var repoPrefixes = []string{"runs/", "sessions/", "quarantine/"}

// syncRepoDir writes the repository objects back to dir. Each persisted
// subtree is replaced wholesale so deletions (runs gc, session
// retirement, quarantine release) propagate.
func syncRepoDir(bucket *storage.Bucket, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, prefix := range repoPrefixes {
		if err := os.RemoveAll(filepath.Join(dir, filepath.FromSlash(strings.TrimSuffix(prefix, "/")))); err != nil {
			return err
		}
		if _, err := bucket.ExportDir(dir, prefix); err != nil {
			return err
		}
	}
	return nil
}

// runsCmd dispatches the `runs list|show|diff|gc|...` verbs.
func runsCmd(args []string, dir string, keep int, csv bool, codecPar, shards int) error {
	if dir == "" {
		return errors.New("runs: -archive <dir> is required")
	}
	r, bucket, err := openRepoDir(dir, codecPar, shards)
	if err != nil {
		return err
	}
	verb := "list"
	if len(args) > 0 {
		verb = args[0]
		args = args[1:]
	}
	switch verb {
	case "list":
		fs := flag.NewFlagSet("runs list", flag.ContinueOnError)
		tenant := fs.String("tenant", "", "only runs archived under this tenant")
		workload := fs.String("workload", "", "only runs of this workload")
		labelF := fs.String("label", "", "only runs with this label")
		if err := fs.Parse(args); err != nil {
			return err
		}
		runs, err := r.List(repo.Filter{Workload: *workload, Label: *labelF, Tenant: *tenant})
		if err != nil {
			return err
		}
		if len(runs) == 0 {
			if *tenant != "" || *workload != "" || *labelF != "" {
				fmt.Println("no runs match the filter")
			} else {
				fmt.Println("repository is empty")
			}
			return nil
		}
		fmt.Printf("%-24s %-20s %-12s %-12s %-6s %8s %8s %10s\n",
			"RUN", "WORKLOAD", "LABEL", "TENANT", "TPU", "RECORDS", "WINDOWS", "BYTES")
		for _, info := range runs {
			fmt.Printf("%-24s %-20s %-12s %-12s %-6s %8d %8d %10d\n",
				info.RunID, info.Workload, info.Label, info.Tenant, info.TPUVersion,
				info.Records, info.Windows, info.Bytes)
		}
		return nil

	case "show":
		if len(args) != 1 {
			return errors.New("usage: runs show <run-id>")
		}
		info, a, err := r.Get(args[0])
		if err != nil {
			return err
		}
		first, last := a.TimeRange()
		fmt.Printf("run:       %s (seq %d)\n", info.RunID, info.CreatedSeq)
		fmt.Printf("workload:  %s  label=%q  host=%q  tpu=%s\n",
			info.Workload, info.Label, info.HostSpec, info.TPUVersion)
		fmt.Printf("records:   %d (%d windows), %d bytes, sim time [%.1fms, %.1fms]\n",
			a.RecordCount(), a.WindowCount(), a.Size(),
			float64(first)/1000, float64(last)/1000)
		sum := a.Summary()
		if sum == nil {
			fmt.Println("summary:   (none embedded)")
			return nil
		}
		fmt.Printf("summary:   %s phases=%d steps=%d idle=%.1f%% mxu=%.1f%% top-3 cover %.1f%%\n",
			sum.Algorithm, len(sum.Phases), sum.Steps,
			100*sum.IdleFrac, 100*sum.MXUUtil, 100*sum.CoverageTop3)
		for _, p := range sum.Phases {
			fmt.Printf("  phase #%d: %d steps, %s, idle=%.1f%% mxu=%.1f%%\n",
				p.ID, p.Steps, p.Total, 100*p.IdleFrac, 100*p.MXUUtil)
			for _, op := range p.Ops {
				fmt.Printf("    %-6s %-32s x%-6d %10.1fms\n",
					op.Device, op.Name, op.Count, op.Total.Milliseconds())
			}
		}
		return nil

	case "diff":
		if len(args) != 2 {
			return errors.New("usage: runs diff <run-a> <run-b>")
		}
		d, err := r.Compare(args[0], args[1])
		if err != nil {
			return err
		}
		if csv {
			return viz.WriteDiffCSV(os.Stdout, d)
		}
		return viz.WriteDiffTable(os.Stdout, d)

	case "gc":
		victims, err := r.GC(keep)
		if err != nil {
			return err
		}
		for _, id := range victims {
			fmt.Printf("removed %s\n", id)
		}
		fmt.Printf("gc: removed %d runs (keeping %d newest per workload)\n", len(victims), keep)
		return syncRepoDir(bucket, dir)

	case "delete":
		if len(args) != 1 {
			return errors.New("usage: runs delete <run-id>")
		}
		if err := r.Delete(args[0]); err != nil {
			return err
		}
		fmt.Printf("removed %s\n", args[0])
		return syncRepoDir(bucket, dir)

	case "fsck":
		repair := false
		for _, a := range args {
			switch a {
			case "-repair", "--repair":
				repair = true
			default:
				return fmt.Errorf("usage: runs fsck [-repair] (got %q)", a)
			}
		}
		rep, err := r.Fsck(repair)
		if err != nil {
			return err
		}
		for _, issue := range rep.Issues {
			line := fmt.Sprintf("%-14s %-12s %s", issue.Kind, issue.RunID, issue.Detail)
			if issue.Action != "" {
				line += " -> " + issue.Action
			}
			fmt.Println(line)
		}
		if rep.Clean() {
			fmt.Printf("fsck: %d runs checked, no issues\n", rep.RunsChecked)
		} else {
			fmt.Printf("fsck: %d runs checked, %d issues, %d repaired\n",
				rep.RunsChecked, len(rep.Issues), rep.Repaired)
		}
		if repair {
			if err := syncRepoDir(bucket, dir); err != nil {
				return err
			}
		}
		if !rep.Clean() && rep.Repaired < len(rep.Issues) {
			return fmt.Errorf("fsck: %d unrepaired issues", len(rep.Issues)-rep.Repaired)
		}
		return nil

	case "compact":
		opts := repo.CompactOptions{}
		switch len(args) {
		case 0:
		case 1:
			opts.Workload = args[0]
		default:
			return errors.New("usage: runs compact [workload]")
		}
		rep, err := r.Compact(opts)
		if err != nil {
			return err
		}
		runsPacked, bytesPacked := 0, int64(0)
		for _, p := range rep.Packs {
			fmt.Printf("packed %-20s %d runs, %d bytes -> %s\n",
				p.Workload, len(p.Runs), p.Bytes, p.Object)
			runsPacked += len(p.Runs)
			bytesPacked += p.Bytes
		}
		fmt.Printf("compact: %d packs from %d runs (%d bytes)\n",
			len(rep.Packs), runsPacked, bytesPacked)
		if len(rep.Packs) == 0 {
			return nil
		}
		return syncRepoDir(bucket, dir)

	case "salvage":
		if len(args) != 1 {
			return errors.New("usage: runs salvage <run-id>")
		}
		info, srep, err := r.Salvage(args[0])
		if err != nil {
			return err
		}
		mode := "footer index"
		if !srep.FooterIntact {
			mode = "sequential scan (footer lost)"
		}
		fmt.Printf("salvage %s: %d/%d segments via %s, %d records, %d bytes dropped\n",
			args[0], srep.SegmentsKept, srep.SegmentsTotal, mode,
			srep.RecordsKept, srep.BytesDropped)
		printRunInfo(os.Stdout, info, dir)
		return syncRepoDir(bucket, dir)

	default:
		return fmt.Errorf("unknown runs verb %q (want list, show, diff, gc, delete, fsck, salvage, compact)", verb)
	}
}

// collectConfig bundles the collection server's flag surface: one
// process = one replica (or the whole fleet when Replicas <= 1).
type collectConfig struct {
	Addr, Dir string

	MaxSessions, MaxConns, CodecPar, Shards, CompactEvery int

	// ReplicaID/Replicas/Peers configure replicated collection: this
	// process owns the manifest shards s with s % Replicas == ReplicaID
	// and answers misplaced sessions with a redirect to Peers[owner].
	ReplicaID, Replicas int
	Peers               []string

	Reg    *obs.Registry
	Health *obs.Health
	Fleet  *obs.FleetView
}

// collectServe runs the fleet collection server: profilers stream
// records in over RPC (tpupoint -collect <addr>), every finalized
// session becomes an indexed archive in the -archive directory.
// Interrupted sessions are durable: their state is parked in the
// repository and clients reattach with fleet.Resume after a restart.
//
// Standalone (-replicas 1, the default) the repository is imported
// into memory and synced back at shutdown. Replicated (-replicas N)
// the -archive directory is opened as a live shared DirStore — every
// mutation lands on disk immediately, because peer replicas and a
// restarted self read the same files — and saves flow through a
// group-commit Ingestor that amortizes journal+manifest writes across
// concurrent finalizes.
func collectServe(cfg collectConfig) error {
	if cfg.Dir == "" {
		return errors.New("-collect-serve needs -archive <dir> for the repository")
	}
	reg, health := cfg.Reg, cfg.Health
	health.SetFailing("repository", "opening")
	health.SetFailing("collector", "starting")

	var (
		r       *repo.Repo
		bucket  *storage.Bucket // standalone mode only (nil when replicated)
		rc      *repo.ReplicaConfig
		ingest  *repo.Ingestor
		owned   []int
		fleetID = "collector"
	)
	if cfg.Replicas > 1 {
		rc = &repo.ReplicaConfig{ID: cfg.ReplicaID, Replicas: cfg.Replicas, Peers: cfg.Peers}
		if err := rc.Validate(); err != nil {
			return err
		}
		shards := cfg.Shards
		if shards == 0 {
			// Every replica needs shards to own; default to a few per
			// replica so reconfiguration has room to rebalance.
			shards = 4 * cfg.Replicas
		}
		if shards < cfg.Replicas {
			return fmt.Errorf("-shards %d < -replicas %d leaves replicas owning nothing", shards, cfg.Replicas)
		}
		store, err := storage.OpenDir(cfg.Dir)
		if err != nil {
			return err
		}
		defer store.Close()
		owned = rc.OwnedShards(shards)
		var rec *repo.RecoveryReport
		r, rec, err = repo.OpenShardsOwned(store, shards, owned)
		if err != nil {
			return fmt.Errorf("recovering repository %s: %w", cfg.Dir, err)
		}
		if !rec.Clean() {
			fmt.Printf("recovery: replayed %d interrupted mutations (%d completed, %d rolled back, %d orphans reclaimed)\n",
				rec.OpenIntents, rec.Completed, rec.RolledBack, len(rec.OrphansReclaimed))
		}
		r.SetCodecParallelism(cfg.CodecPar)
		ingest = repo.NewIngestor(r, repo.IngestorOptions{Replica: rc, Obs: reg})
		defer ingest.Close()
		fleetID = fmt.Sprintf("replica-%d", rc.ID)
		reg.SetLabel("replica", fmt.Sprint(rc.ID))
		cfg.Fleet.Set(fleetID, obs.ReplicaUp)
	} else {
		var err error
		r, bucket, err = openRepoDir(cfg.Dir, cfg.CodecPar, cfg.Shards)
		if err != nil {
			return err
		}
	}
	r.SetObs(reg)
	fleet := repo.NewFleet(r, repo.FleetOptions{
		MaxSessions: cfg.MaxSessions, CompactEvery: cfg.CompactEvery,
		Obs: reg, Replica: rc, Ingest: ingest,
	})
	parked, err := fleet.RecoverSessions()
	if err != nil {
		return err
	}
	for _, token := range parked {
		fmt.Printf("parked session %s awaits fleet.Resume\n", token)
	}
	health.SetReady("repository")
	srv := rpc.NewServer()
	if cfg.MaxConns > 0 {
		srv.SetConnLimit(cfg.MaxConns)
	}
	fleet.Register(srv)
	l, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	defer l.Close()
	if rc != nil {
		fmt.Printf("fleet collection server on %s (replica %d of %d, shards %v), repository %s\n",
			l.Addr(), rc.ID, rc.Replicas, owned, cfg.Dir)
	} else {
		fmt.Printf("fleet collection server on %s (max %d sessions), repository %s\n",
			l.Addr(), cfg.MaxSessions, cfg.Dir)
	}
	go srv.Serve(l)
	health.SetReady("collector")

	// Probe peer replicas so /fleetz answers for the whole set.
	stopProbe := make(chan struct{})
	if rc != nil && len(rc.Peers) > 0 {
		go probePeers(rc, cfg.Fleet, stopProbe)
	}

	// Serve until interrupted, then flush the repository to disk.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stopProbe)
	health.SetFailing("collector", "shutting down")
	cfg.Fleet.Set(fleetID, obs.ReplicaDown)
	srv.Close()
	if n := fleet.ActiveSessions(); n > 0 {
		fmt.Printf("%d sessions still open; their accepted records are parked durably (clients resume by token)\n", n)
	}
	// Drain any in-flight background compaction before the final sync so
	// the exported directory reflects a settled repository.
	fleet.WaitBackground()
	if bucket != nil {
		if err := syncRepoDir(bucket, cfg.Dir); err != nil {
			return err
		}
		fmt.Printf("repository synced to %s\n", cfg.Dir)
	}
	return nil
}

// probePeers pings every peer replica on a short cadence and feeds the
// fleet readiness view: "up" on a healthy ping, "down" on a refused
// dial or failed call. Probing is best-effort observability — placement
// and redirects never consult it.
func probePeers(rc *repo.ReplicaConfig, view *obs.FleetView, stop <-chan struct{}) {
	probe := func() {
		for id, addr := range rc.Peers {
			if id == rc.ID {
				continue
			}
			state := obs.ReplicaDown
			if c, err := rpc.Dial(addr); err == nil {
				if _, perr := repo.PingEndpoint(c); perr == nil {
					state = obs.ReplicaUp
				}
				c.Close()
			}
			view.Set(fmt.Sprintf("replica-%d", id), state)
		}
	}
	probe()
	t := time.NewTicker(2 * time.Second)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			probe()
		}
	}
}

// printRunInfo summarizes a freshly archived run. dir is the local
// repository directory, or "" when the archive lives on a remote
// collection server.
func printRunInfo(w io.Writer, info repo.RunInfo, dir string) {
	dest := "collection server " + info.Object
	if dir != "" {
		dest = filepath.Join(dir, filepath.FromSlash(info.Object))
	}
	fmt.Fprintf(w, "archived:    run %q (seq %d): %d records, %d bytes -> %s\n",
		info.RunID, info.CreatedSeq, info.Records, info.Bytes, dest)
}
