package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/repo"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r) //nolint:errcheck // test capture
		done <- buf.String()
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

// The cluster verb end to end: simulate the smoke preset, archive the
// fleet into a repository directory, and slice it with the runs list
// filter flags.
func TestClusterVerbArchivesAndListFilters(t *testing.T) {
	dir := t.TempDir()

	out := captureStdout(t, func() error {
		return clusterCmd([]string{"-preset", "smoke", "-policy", "round-robin", "-seed", "3"},
			dir, 1, 0, nil)
	})
	if !strings.Contains(out, "Jain") || !strings.Contains(out, "archived:") {
		t.Fatalf("cluster verb output missing report or archive line:\n%s", out)
	}

	// The repository on disk carries tenant identity.
	r, _, err := openRepoDir(dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	vision, err := r.List(repo.Filter{Tenant: "vision"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vision) == 0 {
		t.Fatal("no runs archived for tenant vision")
	}
	for _, info := range vision {
		if info.Tenant != "vision" {
			t.Fatalf("tenant filter leaked run %+v", info)
		}
	}

	// runs list -tenant shows only that tenant's fleet.
	out = captureStdout(t, func() error {
		return runsCmd([]string{"list", "-tenant", "vision"}, dir, 0, false, 1, 0)
	})
	if !strings.Contains(out, "TENANT") || !strings.Contains(out, "vision") {
		t.Fatalf("runs list -tenant output missing tenant column:\n%s", out)
	}
	if strings.Contains(out, "nlp") {
		t.Fatalf("runs list -tenant vision leaked nlp runs:\n%s", out)
	}

	// -workload and -label compose with it.
	out = captureStdout(t, func() error {
		return runsCmd([]string{"list", "-tenant", "nlp", "-workload", "bert-mrpc",
			"-label", "smoke-round-robin"}, dir, 0, false, 1, 0)
	})
	if !strings.Contains(out, "bert-mrpc") {
		t.Fatalf("combined filters matched nothing:\n%s", out)
	}
	out = captureStdout(t, func() error {
		return runsCmd([]string{"list", "-tenant", "nlp", "-workload", "dcgan-mnist"},
			dir, 0, false, 1, 0)
	})
	if !strings.Contains(out, "no runs match the filter") {
		t.Fatalf("impossible filter combination matched:\n%s", out)
	}
}

func TestClusterVerbPresetListing(t *testing.T) {
	out := captureStdout(t, func() error {
		return clusterCmd([]string{"-presets"}, "", 1, 0, nil)
	})
	for _, name := range []string{"smoke", "rush", "fleet"} {
		if !strings.Contains(out, name) {
			t.Fatalf("preset %q missing from -presets output:\n%s", name, out)
		}
	}
	if err := clusterCmd([]string{"-preset", "no-such"}, "", 1, 0, nil); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if err := clusterCmd([]string{"-preset", "smoke", "stray"}, "", 1, 0, nil); err == nil {
		t.Fatal("stray positional argument accepted")
	}
}
