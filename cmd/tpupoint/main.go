// Command tpupoint runs a workload on the simulated Cloud TPU under the
// TPUPoint profiler, analyzes the profile into phases, and writes the
// chrome://tracing and CSV artifacts.
//
// Usage:
//
//	tpupoint -workload resnet-imagenet -version 3 -algo ols -out ./out
//	tpupoint -list
//	tpupoint -workload qanet-squad -optimize
//
// Profile repository (multi-run archive + cross-run diff):
//
//	tpupoint -workload resnet-imagenet -archive ./runs -run-id base
//	tpupoint -workload resnet-imagenet -archive ./runs -run-id tuned -version 3
//	tpupoint -archive ./runs runs list
//	tpupoint -archive ./runs runs diff base tuned
//	tpupoint -archive ./runs -keep 2 runs gc
//	tpupoint -archive ./runs -shards 8 runs list   (migrate to 8 manifest shards)
//	tpupoint -archive ./runs runs compact          (merge small archives into packs)
//
// Fleet collection (profilers stream records to a central server):
//
//	tpupoint -collect-serve :8471 -archive ./runs -max-sessions 16
//	tpupoint -workload bert-squad -collect 127.0.0.1:8471 -run-id vm0
//
// Multi-tenant cluster simulation (deterministic shared-clock fleet):
//
//	tpupoint cluster -presets
//	tpupoint cluster -preset rush -policy all -seed 42
//	tpupoint -archive ./runs cluster -preset smoke -policy workload-affinity
//	tpupoint -archive ./runs runs list -tenant vision
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	tpupoint "repro"
	"repro/internal/cliflag"
	"repro/internal/core/analyzer"
	"repro/internal/core/profiler"
	"repro/internal/estimator"
	"repro/internal/obs"
	"repro/internal/repo"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/workloads"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available workloads and exit")
		workload = flag.String("workload", "", "workload name (see -list)")
		version  = flag.Int("version", 2, "TPU generation: 2 or 3")
		steps    = flag.Int("steps", 0, "override the workload's train-step count")
		algo     = flag.String("algo", "ols", "phase algorithm: ols, kmeans, dbscan")
		outDir   = flag.String("out", "", "directory for trace.json and report.csv (omit to skip)")
		naive    = flag.Bool("naive", false, "use the untuned (naive) input pipeline")
		small    = flag.Bool("small", false, "use the reduced-dataset variant")
		optimize = flag.Bool("optimize", false, "run TPUPoint-Optimizer instead of profiling")
		serve    = flag.String("serve", "", "run the workload and serve its TPU profile service at this TCP address (for tpuprof -addr)")
		analyze  = flag.String("analyze", "", "offline mode: analyze profile records previously exported to this directory")
		export   = flag.String("export", "", "after profiling, export the recorded profiles to this directory (input for -analyze)")
		par      = flag.Int("parallelism", 0, "analyzer worker pool size (0 = GOMAXPROCS, 1 = serial; results are identical for any value)")
		metrics  = flag.String("metrics", "", "observability sink: a host:port serves live JSON snapshots over HTTP, anything else is a file the final snapshot is written to")

		archiveDir  = flag.String("archive", "", "profile repository directory: archive the run there, or operate on it with the `runs` verbs")
		runID       = flag.String("run-id", "", "run identifier in the repository (default: <workload>-<nanos>)")
		label       = flag.String("label", "", "free-form run label recorded in the archive (e.g. an experiment tag)")
		csvOut      = flag.Bool("csv", false, "runs diff: emit machine-readable CSV instead of the table")
		keep        = flag.Int("keep", 3, "runs gc: newest runs to keep per workload")
		collect     = flag.String("collect", "", "stream profile records to the fleet collection server(s) at this comma-separated address list instead of the local bucket (multiple addresses = a replica set; the client follows redirects and fails over)")
		collectSrv  = flag.String("collect-serve", "", "run a fleet collection server at this TCP address writing into -archive")
		maxSessions = flag.Int("max-sessions", 0, "collection server: concurrent session cap (0 = default)")
		maxConns    = flag.Int("max-conns", 0, "served RPC endpoints: connection cap; excess connections get a transient busy error (0 = unlimited)")
		codecPar    = flag.Int("codec-parallelism", 0, "archive codec worker pool size for repository reads (0 = GOMAXPROCS, 1 = serial; decoded runs are bit-identical for any value)")
		shards      = flag.Int("shards", 0, "manifest shard count for the profile repository: 0 keeps the existing layout, N > 1 migrates a legacy single-manifest repository to N shards on open")
		compactEach = flag.Int("compact-every", 0, "collection server: run a background compaction pass every N finalized sessions (0 = never; on demand via `runs compact`)")

		replicaID = flag.Int("replica-id", 0, "collection server: this replica's index in the replica set (with -replicas > 1)")
		replicas  = flag.Int("replicas", 1, "collection server: replica-set size; each replica owns the manifest shards s with s %% replicas == replica-id and redirects misplaced sessions to their owner")
		peersF    = flag.String("peers", "", "collection server: comma-separated replica endpoints in replica-id order (entry i is replica i's address), used to redirect misplaced sessions and to probe fleet readiness")
	)
	flag.Parse()

	var reg *obs.Registry
	health := obs.NewHealth()
	fleetView := obs.NewFleetView()
	flush := func() {}
	if *metrics != "" {
		reg = obs.NewRegistry(0)
		var err error
		if flush, err = cliflag.MetricsSink("tpupoint", *metrics, reg, health, fleetView); err != nil {
			fatal(err)
		}
		defer flush()
	}

	if args := flag.Args(); len(args) > 0 && args[0] == "runs" {
		if err := runsCmd(args[1:], *archiveDir, *keep, *csvOut, *codecPar, *shards); err != nil {
			fatal(err)
		}
		return
	}

	if args := flag.Args(); len(args) > 0 && args[0] == "watch" {
		if err := watchCmd(args[1:], *archiveDir, *codecPar); err != nil {
			fatal(err)
		}
		return
	}

	if args := flag.Args(); len(args) > 0 && args[0] == "cluster" {
		if err := clusterCmd(args[1:], *archiveDir, *codecPar, *shards, reg); err != nil {
			fatal(err)
		}
		return
	}

	if *collectSrv != "" {
		peers, err := cliflag.Endpoints(*peersF)
		if err != nil {
			fatal(err)
		}
		cfg := collectConfig{
			Addr: *collectSrv, Dir: *archiveDir,
			MaxSessions: *maxSessions, MaxConns: *maxConns,
			CodecPar: *codecPar, Shards: *shards, CompactEvery: *compactEach,
			ReplicaID: *replicaID, Replicas: *replicas, Peers: peers,
			Reg: reg, Health: health, Fleet: fleetView,
		}
		if err := collectServe(cfg); err != nil {
			fatal(err)
		}
		return
	}

	if *analyze != "" {
		if err := analyzeDir(*analyze, *algo, *par); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		for _, name := range tpupoint.Workloads() {
			w, err := tpupoint.GetWorkload(name)
			if err != nil {
				fatal(err)
			}
			fmt.Println(tpupoint.Describe(w))
		}
		return
	}
	if *workload == "" {
		fatal(fmt.Errorf("missing -workload (try -list)"))
	}
	ver := tpupoint.V2
	if *version == 3 {
		ver = tpupoint.V3
	}

	if *serve != "" {
		if err := serveProfile(*workload, ver, *steps, *serve, *maxConns); err != nil {
			fatal(err)
		}
		return
	}

	if *optimize {
		res, err := tpupoint.Optimize(*workload, tpupoint.OptimizeOptions{
			Version: ver, Steps: *steps, Naive: *naive, Obs: reg,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("workload:  %s on %s\n", res.Workload, res.Version)
		fmt.Printf("speedup:   measured %.3fx, projected %.3fx\n", res.MeasuredSpeedup, res.ProjectedSpeedup)
		fmt.Printf("idle:      %.1f%% -> %.1f%%\n", 100*res.BaselineIdle, 100*res.OptimizedIdle)
		fmt.Printf("mxu util:  %.1f%% -> %.1f%%\n", 100*res.BaselineMXU, 100*res.OptimizedMXU)
		fmt.Printf("pipeline:  %v -> %v\n", res.InitialParams, res.FinalParams)
		for _, m := range res.Moves {
			verdict := "rejected"
			if m.Accepted {
				verdict = "accepted"
			}
			fmt.Printf("  move %-14s %6d -> %-6d %s (%.0fus -> %.0fus)\n",
				m.Param, m.From, m.To, verdict, m.PeriodBefore, m.PeriodAfter)
		}
		if line := reg.Snapshot().SummaryLine(); line != "" {
			fmt.Printf("run summary: %s speedup=%.3fx\n", line, res.MeasuredSpeedup)
		}
		return
	}

	s, err := tpupoint.NewSession(*workload, tpupoint.Options{
		Version: ver, Steps: *steps,
		NaivePipeline: *naive, SmallDataset: *small,
		Parallelism: *par, Obs: reg,
	})
	if err != nil {
		fatal(err)
	}
	rid := *runID
	if rid == "" {
		rid = fmt.Sprintf("%s-%d", *workload, time.Now().UnixNano())
	}

	var p *profiler.Profiler
	var fc *repo.ResilientClient
	if *collect != "" {
		// Stream records to the fleet collection server(s) as they are
		// produced; the server archives and indexes them at finalize.
		// -collect accepts a comma-separated replica set: the endpoint-set
		// client follows placement redirects to the run's owner and fails
		// over on transport errors, while the resilient session layer
		// resumes by durable token and resends the unacknowledged tail —
		// a replica crash costs a reconnect, never a record.
		endpoints, err := cliflag.Endpoints(*collect)
		if err != nil {
			fatal(err)
		}
		client, err := rpc.NewReconnectClient(rpc.ReconnectOptions{
			Endpoints: endpoints,
			Obs:       reg,
		})
		if err != nil {
			fatal(err)
		}
		defer client.Close()
		spec := s.Workload().Spec()
		fc, err = repo.OpenResilient(client, repo.OpenRequest{
			RunID: rid, Workload: s.Workload().Name, Label: *label,
			HostSpec:   fmt.Sprintf("%dc %gMBps", spec.Cores, spec.ReadMBps),
			TPUVersion: ver.String(),
		})
		if err != nil {
			fatal(err)
		}
		if p, err = s.StartProfilerTo(fc); err != nil {
			fatal(err)
		}
	} else if p, err = s.StartProfiler(true); err != nil {
		fatal(err)
	}
	if err := s.Train(); err != nil {
		fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		fatal(err)
	}
	rep, err := s.Analyze(records, tpupoint.Algorithm(*algo))
	if err != nil {
		fatal(err)
	}

	fmt.Printf("workload:    %s (%s, %s)\n", s.Workload().Name, s.Workload().Model, ver)
	fmt.Printf("sim time:    %.2fs over %d profiled steps (%d records)\n",
		s.TotalSeconds(), rep.Steps, len(records))
	fmt.Printf("idle:        %.1f%%   mxu util: %.1f%%\n", 100*s.IdleFraction(), 100*s.MXUUtilization())
	fmt.Printf("phases:      %d (%s); top-3 cover %.1f%%\n", len(rep.Phases), rep.Algorithm, 100*rep.CoverageTop3)
	fmt.Printf("longest:     %d steps, checkpoint %q\n", len(rep.Longest.Steps), rep.Longest.Checkpoint)
	fmt.Println("top TPU ops of the longest phase:")
	for _, op := range rep.TopTPUOps {
		fmt.Printf("  %-32s x%-8d %8.1fms\n", op.Name, op.Count, op.Total.Milliseconds())
	}
	fmt.Println("top host ops of the longest phase:")
	for _, op := range rep.TopHostOps {
		fmt.Printf("  %-32s x%-8d %8.1fms\n", op.Name, op.Count, op.Total.Milliseconds())
	}
	if line := reg.Snapshot().SummaryLine(); line != "" {
		fmt.Printf("run summary: %s\n", line)
	}

	if fc != nil {
		info, err := fc.Finalize()
		if err != nil {
			fatal(err)
		}
		printRunInfo(os.Stdout, info, "")
	} else if *archiveDir != "" {
		r, bucket, err := openRepoDir(*archiveDir, *codecPar, *shards)
		if err != nil {
			fatal(err)
		}
		info, err := s.ArchiveRun(r, rid, *label, records, rep)
		if err != nil {
			fatal(err)
		}
		if err := syncRepoDir(bucket, *archiveDir); err != nil {
			fatal(err)
		}
		printRunInfo(os.Stdout, info, *archiveDir)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		tracePath := filepath.Join(*outDir, "trace.json")
		tf, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		if err := s.WriteTrace(tf, rep, records); err != nil {
			fatal(err)
		}
		tf.Close()
		csvPath := filepath.Join(*outDir, "report.csv")
		cf, err := os.Create(csvPath)
		if err != nil {
			fatal(err)
		}
		if err := s.WriteCSV(cf, rep); err != nil {
			fatal(err)
		}
		cf.Close()
		fmt.Printf("artifacts:   %s (open in chrome://tracing), %s\n", tracePath, csvPath)
	}
	if *export != "" {
		n, err := s.Bucket().ExportDir(*export, "profiles/")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("exported:    %d profile records to %s (re-analyze with -analyze)\n", n, *export)
	}
}

// analyzeDir runs TPUPoint-Analyzer over profile records exported to a
// directory (see the session bucket's ExportDir) — post-execution analysis
// without rerunning the workload.
func analyzeDir(dir, algo string, parallelism int) error {
	svc := storage.NewService()
	bucket, err := svc.CreateBucket("offline")
	if err != nil {
		return err
	}
	n, err := bucket.ImportDir(dir)
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("no profile records under %s", dir)
	}
	records, err := profiler.LoadRecords(bucket, "")
	if err != nil {
		return err
	}
	rep, err := analyzer.Analyze(dir, records, analyzer.Algorithm(algo),
		analyzer.Options{Parallelism: parallelism})
	if err != nil {
		return err
	}
	fmt.Printf("offline analysis of %d records (%d steps) from %s\n", len(records), rep.Steps, dir)
	fmt.Printf("phases: %d (%s); top-3 cover %.1f%%; idle %.1f%%, mxu %.1f%%\n",
		len(rep.Phases), rep.Algorithm, 100*rep.CoverageTop3, 100*rep.IdleFrac, 100*rep.MXUUtil)
	fmt.Println("top TPU ops of the longest phase:")
	for _, op := range rep.TopTPUOps {
		fmt.Printf("  %-32s x%-8d %8.1fms\n", op.Name, op.Count, op.Total.Milliseconds())
	}
	fmt.Println("top host ops of the longest phase:")
	for _, op := range rep.TopHostOps {
		fmt.Printf("  %-32s x%-8d %8.1fms\n", op.Name, op.Count, op.Total.Milliseconds())
	}
	return nil
}

// serveProfile trains the workload and keeps its profile service reachable
// over TCP, so external tools (tpuprof, a remote TPUPoint-Profiler) can
// request profile windows — the Cloud TPU deployment shape.
func serveProfile(workload string, ver tpupoint.Version, steps int, addr string, maxConns int) error {
	w, err := workloads.Get(workload)
	if err != nil {
		return err
	}
	runner, err := estimator.New(w, estimator.Options{Version: ver, Steps: steps})
	if err != nil {
		return err
	}
	srv := rpc.NewServer()
	if maxConns > 0 {
		srv.SetConnLimit(maxConns)
	}
	runner.ProfileService().Register(srv)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("serving %s profile service on %s (methods: tpu.Profile, tpu.Status)\n",
		w.Name, l.Addr())
	go srv.Serve(l)
	if err := runner.Run(); err != nil {
		return err
	}
	fmt.Printf("training finished: %.2fs simulated, idle %.1f%%, mxu %.1f%%\n",
		runner.TotalTime().Seconds(), 100*runner.IdleFraction(), 100*runner.MXUUtilization())
	fmt.Println("profile windows remain available; ctrl-c to stop")
	select {} // serve until interrupted
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpupoint:", err)
	os.Exit(1)
}
