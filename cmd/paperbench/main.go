// Command paperbench regenerates the tables and figures of the TPUPoint
// paper's evaluation and prints them in the paper's row/series layout.
//
// Usage:
//
//	paperbench              # everything
//	paperbench -only fig10  # one artifact (table1, table2, fig4..fig16)
//	paperbench -steps 300   # shorten runs (quick mode)
//
// It also hosts the analyzer performance benchmark that CI tracks:
//
//	paperbench -analyzer-bench BENCH_analyzer.json               # full run
//	paperbench -analyzer-bench out.json -bench-quick             # CI smoke
//
// The emitted JSON (serial vs parallel ns/op and steps/sec for k-means,
// DBSCAN and PCA at n = 1e3, 1e4, 1e5, plus grid-vs-brute DBSCAN
// speedups) is compared against the committed baseline by
// scripts/benchdiff.sh.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/tpu"
)

func main() {
	only := flag.String("only", "", "regenerate a single artifact (table1, table2, fig4..fig16)")
	steps := flag.Int("steps", 0, "override per-workload step counts (0 = calibrated full runs)")
	jsonOut := flag.String("json", "", "also write all regenerated data as JSON to this file")
	benchOut := flag.String("analyzer-bench", "", "run the analyzer clustering benchmark and write BENCH_analyzer.json here, then exit")
	archiveBenchOut := flag.String("archive-bench", "", "run the profile archive/diff benchmark and write BENCH_archive.json here, then exit")
	streamBenchOut := flag.String("stream-bench", "", "run the streaming-analyzer fidelity benchmark and write BENCH_stream.json here, then exit")
	ingestBenchOut := flag.String("ingest-bench", "", "run the concurrent repository-ingest benchmark and write BENCH_ingest.json here, then exit")
	clusterBenchOut := flag.String("cluster-bench", "", "run the multi-tenant cluster-scheduling benchmark and write BENCH_cluster.json here, then exit")
	benchQuick := flag.Bool("bench-quick", false, "shorten the benchmarks and skip the O(n²) DBSCAN reference above 10k rows (CI smoke mode)")
	par := flag.Int("parallelism", 0, "worker pool size for the parallel benchmark runs (0 = GOMAXPROCS)")
	flag.Parse()

	if *benchOut != "" {
		if err := analyzerBench(*benchOut, *par, *benchQuick); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: analyzer-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *archiveBenchOut != "" {
		if err := archiveBench(*archiveBenchOut, *par, *benchQuick); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: archive-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *streamBenchOut != "" {
		if err := streamBench(*streamBenchOut, *benchQuick); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: stream-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *ingestBenchOut != "" {
		if err := ingestBench(*ingestBenchOut, *benchQuick); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: ingest-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *clusterBenchOut != "" {
		if err := clusterBench(*clusterBenchOut, *benchQuick); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: cluster-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	lab := experiments.NewLab()
	lab.StepsOverride = *steps

	if *jsonOut != "" {
		if err := dumpJSON(lab, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote machine-readable results to %s\n\n", *jsonOut)
	}

	artifacts := []struct {
		name string
		fn   func(*experiments.Lab) error
	}{
		{"table1", func(l *experiments.Lab) error { return table1() }},
		{"fig4", fig4},
		{"fig5", fig5},
		{"fig6", fig6},
		{"fig7", coverageFig("Figure 7: top-3 phase coverage, OLS @ 70%", experiments.Fig7)},
		{"fig8", coverageFig("Figure 8: top-3 phase coverage, DBSCAN min-samples=30", experiments.Fig8)},
		{"fig9", coverageFig("Figure 9: top-3 phase coverage, k-means k=5", experiments.Fig9)},
		{"fig10", fig10},
		{"fig11", fig11},
		{"fig12", fig12},
		{"fig13", fig13},
		{"table2", table2},
		{"fig14", func(l *experiments.Lab) error { return fig14(l.StepsOverride) }},
		{"fig15", func(l *experiments.Lab) error { return fig1516(l.StepsOverride, true) }},
		{"fig16", func(l *experiments.Lab) error { return fig1516(l.StepsOverride, false) }},
	}

	ran := false
	for _, a := range artifacts {
		if *only != "" && a.name != *only {
			continue
		}
		ran = true
		if err := a.fn(lab); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", a.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "paperbench: unknown artifact %q\n", *only)
		os.Exit(2)
	}
}

// analyzerBench runs the clustering benchmark and writes the
// BENCH_analyzer.json document, echoing the headline numbers to stdout.
func analyzerBench(path string, workers int, quick bool) error {
	rep, err := experiments.RunAnalyzerBench(nil, workers, quick)
	if err != nil {
		return err
	}
	return writeBenchReport("analyzer", path, rep)
}

// archiveBench runs the archive/wire codec and diff benchmark and
// writes the BENCH_archive.json document.
func archiveBench(path string, workers int, quick bool) error {
	rep, err := experiments.RunArchiveBench(nil, workers, quick)
	if err != nil {
		return err
	}
	return writeBenchReport("archive", path, rep)
}

// streamBench runs the streaming-analyzer fidelity benchmark (boundary
// F1 and time-share MAPE vs the batch analyzer, resident state bytes vs
// run length) and writes the BENCH_stream.json document.
func streamBench(path string, quick bool) error {
	rep, err := experiments.RunStreamBench(nil, quick)
	if err != nil {
		return err
	}
	return writeBenchReport("stream", path, rep)
}

// ingestBench runs the concurrent repository-ingest benchmark (save
// throughput, exact p99 append latency, and manifest-CAS retry counts
// at 8/64/256 agents over the sharded run repository) and writes the
// BENCH_ingest.json document.
func ingestBench(path string, quick bool) error {
	rep, err := experiments.RunIngestBench(nil, quick)
	if err != nil {
		return err
	}
	return writeBenchReport("ingest", path, rep)
}

// clusterBench runs the multi-tenant cluster-scheduling benchmark
// (scheduler throughput, Jain's fairness index, worst-tenant p99
// queueing delay, and shed counts per routing policy over the rush and
// fleet presets) and writes the BENCH_cluster.json document.
func clusterBench(path string, quick bool) error {
	rep, err := experiments.RunClusterBench(nil, quick)
	if err != nil {
		return err
	}
	return writeBenchReport("cluster", path, rep)
}

func writeBenchReport(name, path string, rep *experiments.AnalyzerBenchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%s benchmark (GOMAXPROCS=%d, quick=%v) -> %s\n", name, rep.GOMAXPROCS, rep.Quick, path)
	fmt.Printf("%-18s %-9s %9s %8s %14s %14s %12s\n", "kernel", "mode", "n", "iters", "ns/op", "steps/sec", "allocs/op")
	for _, e := range rep.Entries {
		allocs := "-"
		if e.AllocsPerOp > 0 {
			allocs = fmt.Sprintf("%.0f", e.AllocsPerOp)
		}
		fmt.Printf("%-18s %-9s %9d %8d %14.0f %14.0f %12s\n",
			e.Kernel, e.Mode, e.N, e.Iters, e.NsPerOp, e.StepsPerSec, allocs)
	}
	keys := make([]string, 0, len(rep.Speedups))
	for k := range rep.Speedups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("speedup %-40s %8.2fx\n", k, rep.Speedups[k])
	}
	return nil
}

// dumpJSON regenerates every artifact into one machine-readable document.
func dumpJSON(lab *experiments.Lab, path string) error {
	doc := map[string]any{}
	t1, err := experiments.Table1()
	if err != nil {
		return err
	}
	doc["table1"] = t1
	for name, fn := range map[string]func(*experiments.Lab) ([]experiments.Series, error){
		"fig4": experiments.Fig4, "fig5": experiments.Fig5, "fig6": experiments.Fig6,
	} {
		v, err := fn(lab)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		doc[name] = v
	}
	for name, fn := range map[string]func(*experiments.Lab) ([]experiments.CoverageRow, error){
		"fig7": experiments.Fig7, "fig8": experiments.Fig8, "fig9": experiments.Fig9,
	} {
		v, err := fn(lab)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		doc[name] = v
	}
	for name, fn := range map[string]func(*experiments.Lab) ([]experiments.UtilRow, error){
		"fig10": experiments.Fig10, "fig11": experiments.Fig11,
		"fig12": experiments.Fig12, "fig13": experiments.Fig13,
	} {
		v, err := fn(lab)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		doc[name] = v
	}
	for _, v := range []tpu.Version{tpu.V2, tpu.V3} {
		cells, totals, err := experiments.Table2(lab, v)
		if err != nil {
			return err
		}
		doc[fmt.Sprintf("table2_%s", v)] = map[string]any{"cells": cells, "totals": totals}
	}
	f14, err := experiments.Fig14(lab.StepsOverride)
	if err != nil {
		return err
	}
	doc["fig14"] = f14
	f1516, err := experiments.Fig15and16(lab.StepsOverride)
	if err != nil {
		return err
	}
	doc["fig15_16"] = f1516

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func table1() error {
	rows, err := experiments.Table1()
	if err != nil {
		return err
	}
	fmt.Println("Table I: workload breakdown and specifications")
	fmt.Printf("%-16s %-22s %-10s %-10s %12s %10s %6s\n",
		"workload", "type", "model", "dataset", "size", "records", "batch")
	for _, r := range rows {
		size := fmt.Sprintf("%.2f MiB", r.SizeMiB)
		if r.SizeMiB > 2048 {
			size = fmt.Sprintf("%.2f GiB", r.SizeMiB/1024)
		}
		fmt.Printf("%-16s %-22s %-10s %-10s %12s %10d %6d\n",
			r.Name, r.Task, r.Model, r.Dataset, size, r.Records, r.BatchSize)
		fmt.Printf("%18s params: %s\n", "", strings.Join(r.Params, "; "))
	}
	return nil
}

func fig4(lab *experiments.Lab) error {
	series, err := experiments.Fig4(lab)
	if err != nil {
		return err
	}
	fmt.Println("Figure 4: k-means sum of squared distances vs k (1..15)")
	for _, s := range series {
		if s.Err != "" {
			fmt.Printf("%-18s %s\n", s.Workload, s.Err)
			continue
		}
		fmt.Printf("%-18s", s.Workload)
		for _, v := range s.Y {
			fmt.Printf(" %8.1f", v)
		}
		fmt.Println()
	}
	return nil
}

func fig5(lab *experiments.Lab) error {
	series, err := experiments.Fig5(lab)
	if err != nil {
		return err
	}
	fmt.Println("Figure 5: DBSCAN noise ratio vs min samples (5..180, step 25)")
	for _, s := range series {
		if s.Err != "" {
			fmt.Printf("%-18s %s\n", s.Workload, s.Err)
			continue
		}
		fmt.Printf("%-18s", s.Workload)
		for _, v := range s.Y {
			fmt.Printf(" %6.3f", v)
		}
		fmt.Println()
	}
	return nil
}

func fig6(lab *experiments.Lab) error {
	series, err := experiments.Fig6(lab)
	if err != nil {
		return err
	}
	fmt.Println("Figure 6: OLS phase count vs similarity threshold")
	fmt.Printf("%-18s", "threshold")
	for _, th := range experiments.Fig6Thresholds {
		fmt.Printf(" %6.2f", th)
	}
	fmt.Println()
	for _, s := range series {
		fmt.Printf("%-18s", s.Workload)
		for _, v := range s.Y {
			fmt.Printf(" %6.0f", v)
		}
		fmt.Println()
	}
	return nil
}

func coverageFig(title string, fn func(*experiments.Lab) ([]experiments.CoverageRow, error)) func(*experiments.Lab) error {
	return func(lab *experiments.Lab) error {
		rows, err := fn(lab)
		if err != nil {
			return err
		}
		fmt.Println(title)
		for _, r := range rows {
			if r.Err != "" {
				fmt.Printf("%-18s %s\n", r.Workload, r.Err)
				continue
			}
			fmt.Printf("%-18s phase1=%s phase2=%s phase3=%s total=%s\n",
				r.Workload,
				experiments.FormatPct(r.Top[0]), experiments.FormatPct(r.Top[1]),
				experiments.FormatPct(r.Top[2]), experiments.FormatPct(r.Total))
		}
		return nil
	}
}

func fig10(lab *experiments.Lab) error {
	rows, err := experiments.Fig10(lab)
	if err != nil {
		return err
	}
	fmt.Println("Figure 10: TPU idle time, TPUv2 vs TPUv3")
	var s2, s3 float64
	for _, r := range rows {
		fmt.Printf("%-18s v2=%s v3=%s\n", r.Workload,
			experiments.FormatPct(r.IdleV2), experiments.FormatPct(r.IdleV3))
		s2 += r.IdleV2
		s3 += r.IdleV3
	}
	n := float64(len(rows))
	fmt.Printf("%-18s v2=%s v3=%s (paper: 38.90%% / 43.53%%)\n", "AVERAGE",
		experiments.FormatPct(s2/n), experiments.FormatPct(s3/n))
	return nil
}

func fig11(lab *experiments.Lab) error {
	rows, err := experiments.Fig11(lab)
	if err != nil {
		return err
	}
	fmt.Println("Figure 11: MXU utilization, TPUv2 vs TPUv3")
	var s2, s3 float64
	for _, r := range rows {
		fmt.Printf("%-18s v2=%s v3=%s\n", r.Workload,
			experiments.FormatPct(r.MXUV2), experiments.FormatPct(r.MXUV3))
		s2 += r.MXUV2
		s3 += r.MXUV3
	}
	n := float64(len(rows))
	fmt.Printf("%-18s v2=%s v3=%s (paper: 22.72%% / 11.34%%)\n", "AVERAGE",
		experiments.FormatPct(s2/n), experiments.FormatPct(s3/n))
	return nil
}

func fig12(lab *experiments.Lab) error {
	rows, err := experiments.Fig12(lab)
	if err != nil {
		return err
	}
	fmt.Println("Figure 12: TPU idle time with reduced datasets")
	for _, r := range rows {
		fmt.Printf("%-18s v2=%s v3=%s\n", r.Workload,
			experiments.FormatPct(r.IdleV2), experiments.FormatPct(r.IdleV3))
	}
	return nil
}

func fig13(lab *experiments.Lab) error {
	rows, err := experiments.Fig13(lab)
	if err != nil {
		return err
	}
	fmt.Println("Figure 13: MXU utilization with reduced datasets")
	for _, r := range rows {
		fmt.Printf("%-18s v2=%s v3=%s\n", r.Workload,
			experiments.FormatPct(r.MXUV2), experiments.FormatPct(r.MXUV3))
	}
	return nil
}

func table2(lab *experiments.Lab) error {
	for _, v := range []tpu.Version{tpu.V2, tpu.V3} {
		cells, totals, err := experiments.Table2(lab, v)
		if err != nil {
			return err
		}
		fmt.Printf("Table II (%s): top-5 operators of the longest phase\n", v)
		for _, c := range cells {
			if c.Err != "" {
				fmt.Printf("%-18s %-7s %s\n", c.Workload, c.Algorithm, c.Err)
				continue
			}
			fmt.Printf("%-18s %-7s host: %s\n", c.Workload, c.Algorithm, strings.Join(c.HostOps, ", "))
			fmt.Printf("%-18s %-7s tpu:  %s\n", "", "", strings.Join(c.TPUOps, ", "))
		}
		fmt.Printf("appearance totals (%s):\n", v)
		printTotals(totals)
		fmt.Println()
	}
	return nil
}

func printTotals(totals map[string]int) {
	type kv struct {
		name string
		n    int
	}
	var list []kv
	for name, n := range totals {
		list = append(list, kv{name, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].name < list[j].name
	})
	for _, e := range list {
		fmt.Printf("  %-40s %d\n", e.name, e.n)
	}
}

func fig14(steps int) error {
	rows, err := experiments.Fig14(steps)
	if err != nil {
		return err
	}
	fmt.Println("Figure 14: TPUPoint-Optimizer speedups for TPUv2 (paper: ~1.12x average)")
	var sum float64
	for _, r := range rows {
		fmt.Printf("%-18s measured=%.3fx projected(full-run)=%.3fx\n",
			r.Workload, r.MeasuredSpeedup, r.ProjectedSpeedup)
		sum += r.ProjectedSpeedup
	}
	fmt.Printf("%-18s projected average = %.3fx\n", "AVERAGE", sum/float64(len(rows)))
	return nil
}

func fig1516(steps int, idle bool) error {
	rows, err := experiments.Fig15and16(steps)
	if err != nil {
		return err
	}
	if idle {
		fmt.Println("Figure 15: idle time of naive implementations, with/without Optimizer")
		for _, r := range rows {
			fmt.Printf("%-18s %s before=%s after=%s\n", r.Workload, r.Version,
				experiments.FormatPct(r.IdleBefore), experiments.FormatPct(r.IdleAfter))
		}
		return nil
	}
	fmt.Println("Figure 16: MXU utilization of naive implementations, with/without Optimizer")
	for _, r := range rows {
		fmt.Printf("%-18s %s before=%s after=%s (speedup %.2fx)\n", r.Workload, r.Version,
			experiments.FormatPct(r.MXUBefore), experiments.FormatPct(r.MXUAfter), r.Speedup)
	}
	return nil
}
