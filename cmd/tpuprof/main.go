// Command tpuprof reproduces the CLOUD-TPU-PROFILER command-line tool the
// paper contrasts TPUPoint against: it grabs a single bounded profile
// window from a running (simulated) TPU over the RPC interface.
//
// Its limits are the real tool's limits, which motivate TPUPoint: it
// cannot be integrated into training code, only sees a bounded window
// (at most 60,000 ms / 1,000,000 events), and only offers post-hoc
// insight into that window.
//
// Usage:
//
//	tpuprof -workload bert-squad          # in-process demo run
//	tpuprof -addr 127.0.0.1:8470          # profile a served TPU
//	tpuprof -addr ... -retries 5 -timeout 10s -backoff 50ms
//	tpuprof -addr ... -sessions 8         # concurrent fleet-style grabs
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/cliflag"
	"repro/internal/estimator"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/tpu"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "bert-squad", "workload for the in-process demo run")
		addr      = flag.String("addr", "", "profile a remote TPU service at this TCP address instead")
		steps     = flag.Int("steps", 200, "demo run train steps")
		retries   = flag.Int("retries", 3, "transport retries per request before giving up")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request deadline (0 = wait forever)")
		backoff   = flag.Duration("backoff", 50*time.Millisecond, "base reconnect backoff (doubles per attempt)")
		sessions  = flag.Int("sessions", 1, "concurrent profile sessions against -addr, one connection each (exercises the server's -max-conns cap; busy refusals are retried with backoff)")
		endpoints = flag.String("endpoints", "", "comma-separated replica endpoints to profile against; the client fails over between them and follows redirects (mutually exclusive with -addr)")
		metrics   = flag.String("metrics", "", "observability sink: a host:port serves live JSON snapshots over HTTP, anything else is a file the final snapshot is written to")
	)
	flag.Parse()

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry(0)
		flush, err := cliflag.MetricsSink("tpuprof", *metrics, reg, nil, nil)
		if err != nil {
			fatal(err)
		}
		defer flush()
	}
	if *addr != "" && *endpoints != "" {
		fatal(fmt.Errorf("-addr and -endpoints are mutually exclusive"))
	}
	eps, err := cliflag.Endpoints(*endpoints)
	if err != nil {
		fatal(err)
	}

	var resp *tpu.ProfileResponse
	if *addr != "" || len(eps) > 0 {
		// The resilient path: redial on transport failure with capped
		// exponential backoff; a circuit breaker turns a dead endpoint
		// into a prompt error instead of a retry storm. With -endpoints,
		// the client holds the whole replica set and fails over between
		// members. With -sessions N, N clients each hold their own
		// connection, the way a fleet of profiling hosts would; a
		// conn-capped server answers the excess with a transient busy
		// refusal they back off and retry.
		fetch := func() (*tpu.ProfileResponse, error) {
			opts := rpc.ReconnectOptions{
				CallTimeout: *timeout,
				MaxRetries:  *retries,
				BaseBackoff: *backoff,
				Obs:         reg,
			}
			if len(eps) > 0 {
				opts.Endpoints = eps
			} else {
				opts.Dial = func() (net.Conn, error) { return net.Dial("tcp", *addr) }
			}
			client, err := rpc.NewReconnectClient(opts)
			if err != nil {
				return nil, err
			}
			defer client.Close()
			raw, err := client.Call(tpu.MethodProfile, nil)
			if err != nil {
				return nil, err
			}
			return tpu.UnmarshalProfileResponse(raw)
		}
		if *sessions <= 1 {
			if resp, err = fetch(); err != nil {
				fatal(err)
			}
		} else {
			responses := make([]*tpu.ProfileResponse, *sessions)
			errs := make([]error, *sessions)
			var wg sync.WaitGroup
			for i := 0; i < *sessions; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					responses[i], errs[i] = fetch()
				}(i)
			}
			wg.Wait()
			ok := 0
			for i := range responses {
				if errs[i] != nil {
					fmt.Fprintf(os.Stderr, "tpuprof: session %d: %v\n", i, errs[i])
					continue
				}
				ok++
				if resp == nil {
					resp = responses[i]
				}
			}
			fmt.Printf("sessions: %d/%d fetched a profile window\n", ok, *sessions)
			if resp == nil {
				fatal(fmt.Errorf("all %d sessions failed", *sessions))
			}
		}
	} else {
		w, err := workloads.Get(*workload)
		if err != nil {
			fatal(err)
		}
		runner, err := estimator.New(w, estimator.Options{Steps: *steps})
		if err != nil {
			fatal(err)
		}
		if err := runner.Run(); err != nil {
			fatal(err)
		}
		// One request, like the real tool: whatever fits the window.
		svc := runner.ProfileService()
		r := svc.NextWindow()
		resp = &r
	}

	fmt.Printf("profile window: [%.1fms, %.1fms) — %d events, truncated=%v\n",
		float64(resp.WindowStart)/1000, float64(resp.WindowEnd)/1000,
		len(resp.Events), resp.Truncated)
	fmt.Printf("tpu idle: %.1f%%   mxu utilization: %.1f%%\n",
		100*resp.IdleFrac, 100*resp.MXUUtil)
	if resp.Truncated {
		fmt.Println("note: execution continued past the window; this tool cannot see it (use TPUPoint)")
	}

	rec := trace.Reduce(0, resp.WindowStart, resp.Events, resp.IdleFrac, resp.MXUUtil)
	steps2 := rec.Steps
	for _, dev := range []trace.Device{trace.TPU, trace.Host} {
		fmt.Printf("top %s ops in the window:\n", dev)
		for _, op := range trace.TopOps(steps2, dev, 5) {
			fmt.Printf("  %-32s x%-8d %10.1fms\n", op.Name, op.Count, op.Total.Milliseconds())
		}
	}
	// Per-step summary (the window's coarse repetition structure).
	var ids []int64
	for _, s := range steps2 {
		ids = append(ids, s.Step)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) > 0 {
		fmt.Printf("steps covered: %d (first %d, last %d)\n", len(ids), ids[0], ids[len(ids)-1])
	}
	if line := reg.Snapshot().SummaryLine(); line != "" {
		fmt.Printf("run summary: %s\n", line)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpuprof:", err)
	os.Exit(1)
}
