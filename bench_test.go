package tpupoint

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates the corresponding artifact end to end (simulated training
// runs included, served from a shared lab cache within a bench loop).
//
// Run with:
//
//	go test -bench=. -benchmem
//
// cmd/paperbench prints the same artifacts in the paper's layout.

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/tpu"
)

// benchSteps shortens runs so the full suite stays in benchmark budgets;
// the shapes asserted in experiments_test.go hold at this scale too.
const benchSteps = 300

func newBenchLab() *experiments.Lab {
	lab := experiments.NewLab()
	lab.StepsOverride = benchSteps
	return lab
}

func BenchmarkTable1Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4KMeansElbow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig4(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5DBSCANNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig5(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6OLSThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig6(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7OLSCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig7(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8DBSCANCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig8(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9KMeansCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig9(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10IdleTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig10(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11MXUUtil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig11(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12SmallDatasetIdle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig12(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13SmallDatasetMXU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig13(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2TopOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, _, err := experiments.Table2(lab, tpu.V2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14OptimizerSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(benchSteps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15OptimizedIdle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15and16(benchSteps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16OptimizedMXU(b *testing.B) {
	// Figures 15 and 16 come from the same optimizer runs; this bench
	// measures the pair regenerated independently, matching the paper's
	// two separate artifacts.
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15and16(benchSteps); err != nil {
			b.Fatal(err)
		}
	}
}
