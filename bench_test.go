package tpupoint

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates the corresponding artifact end to end (simulated training
// runs included, served from a shared lab cache within a bench loop).
//
// Run with:
//
//	go test -bench=. -benchmem
//
// cmd/paperbench prints the same artifacts in the paper's layout.

import (
	"fmt"
	"testing"

	"repro/internal/archive"
	"repro/internal/core/cluster"
	"repro/internal/experiments"
	"repro/internal/tpu"
	"repro/internal/trace"
)

// benchSteps shortens runs so the full suite stays in benchmark budgets;
// the shapes asserted in experiments_test.go hold at this scale too.
const benchSteps = 300

func newBenchLab() *experiments.Lab {
	lab := experiments.NewLab()
	lab.StepsOverride = benchSteps
	return lab
}

func BenchmarkTable1Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4KMeansElbow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig4(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5DBSCANNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig5(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6OLSThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig6(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7OLSCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig7(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8DBSCANCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig8(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9KMeansCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig9(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10IdleTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig10(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11MXUUtil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig11(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12SmallDatasetIdle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig12(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13SmallDatasetMXU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, err := experiments.Fig13(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2TopOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := newBenchLab()
		if _, _, err := experiments.Table2(lab, tpu.V2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14OptimizerSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(benchSteps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15OptimizedIdle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15and16(benchSteps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16OptimizedMXU(b *testing.B) {
	// Figures 15 and 16 come from the same optimizer runs; this bench
	// measures the pair regenerated independently, matching the paper's
	// two separate artifacts.
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15and16(benchSteps); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Analyzer kernel benchmarks: serial vs parallel phase-detection hot path.
//
// These are the `go test -bench` twins of `paperbench -analyzer-bench`,
// which emits the same measurements as BENCH_analyzer.json for the CI
// regression gate (scripts/benchdiff.sh). Serial and parallel variants
// produce bit-identical results (see internal/core/cluster's
// parallelism-invariance tests); only the timing differs.

// analyzerBenchSizes mirrors experiments.AnalyzerBenchSizes.
var analyzerBenchSizes = []int{1_000, 10_000, 100_000}

// analyzerBenchModes names the two worker-pool settings under test:
// workers=1 is the inline serial path, workers=0 uses GOMAXPROCS.
var analyzerBenchModes = []struct {
	name    string
	workers int
}{
	{"serial", 1},
	{"parallel", 0},
}

func BenchmarkAnalyzerKMeans(b *testing.B) {
	for _, n := range analyzerBenchSizes {
		m := experiments.AnalyzerBenchMatrix(n)
		for _, mode := range analyzerBenchModes {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := cluster.KMeansP(m, 5, 42, 0, mode.workers); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
			})
		}
	}
}

func BenchmarkAnalyzerPCA(b *testing.B) {
	for _, n := range analyzerBenchSizes {
		m := experiments.AnalyzerBenchMatrix(n)
		for _, mode := range analyzerBenchModes {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cluster.PCAP(m, 3, mode.workers)
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
			})
		}
	}
}

func BenchmarkAnalyzerDBSCAN(b *testing.B) {
	for _, n := range analyzerBenchSizes {
		m := experiments.AnalyzerBenchMatrix(n)
		// One untimed probe fixes eps so every variant clusters at the
		// same radius and the loop measures clustering, not the eps
		// heuristic.
		probe, err := cluster.DBSCANP(m, 8, 0, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range analyzerBenchModes {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := cluster.DBSCANP(m, 8, probe.Eps, 0, mode.workers); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
			})
		}
		if n <= 10_000 { // a single quadratic pass at n=1e5 takes ~40s
			b.Run(fmt.Sprintf("n=%d/brute", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := cluster.DBSCANBrute(m, 8, probe.Eps, 0); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "steps/s")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Codec kernel benchmarks: the archive and wire hot paths, serial vs
// parallel. These are the `go test -bench` twins of `paperbench
// -archive-bench` (BENCH_archive.json); run with -benchmem — the pooled
// wire encoder's allocs/op is the number the benchdiff alloc gate
// tracks. Serial and parallel variants produce bit-identical bytes (see
// internal/archive's differential tests); only the timing differs.

// archiveCodecBenchSizes mirrors experiments.ArchiveBenchSizes.
var archiveCodecBenchSizes = []int{1_000, 10_000}

func BenchmarkArchiveEncode(b *testing.B) {
	for _, n := range archiveCodecBenchSizes {
		recs := experiments.ArchiveBenchStream(n)
		meta := archive.Meta{RunID: fmt.Sprintf("bench-%d", n), Workload: "synthetic"}
		for _, mode := range analyzerBenchModes {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					w := archive.NewWriter(meta)
					if mode.workers == 1 {
						for _, r := range recs {
							w.Add(r)
						}
					} else {
						w.SetParallelism(mode.workers)
						if err := w.AddBatch(recs); err != nil {
							b.Fatal(err)
						}
					}
					if len(w.Finalize(nil)) == 0 {
						b.Fatal("empty archive")
					}
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
			})
		}
	}
}

func BenchmarkArchiveDecode(b *testing.B) {
	for _, n := range archiveCodecBenchSizes {
		recs := experiments.ArchiveBenchStream(n)
		w := archive.NewWriter(archive.Meta{RunID: fmt.Sprintf("bench-%d", n), Workload: "synthetic"})
		for _, r := range recs {
			w.Add(r)
		}
		blob := w.Finalize(nil)
		for _, mode := range analyzerBenchModes {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					a, err := archive.OpenWorkers(blob, mode.workers)
					if err != nil {
						b.Fatal(err)
					}
					got, err := a.RecordsWorkers(mode.workers)
					if err != nil {
						b.Fatal(err)
					}
					if len(got) != n {
						b.Fatalf("decoded %d records, want %d", len(got), n)
					}
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
			})
		}
	}
}

func BenchmarkWireMarshal(b *testing.B) {
	for _, n := range archiveCodecBenchSizes {
		recs := experiments.ArchiveBenchStream(n)
		b.Run(fmt.Sprintf("n=%d/pooled", n), func(b *testing.B) {
			b.ReportAllocs()
			var buf []byte
			for i := 0; i < b.N; i++ {
				for _, r := range recs {
					buf = trace.MarshalRecordAppend(buf[:0], r)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

func BenchmarkWireUnmarshal(b *testing.B) {
	for _, n := range archiveCodecBenchSizes {
		recs := experiments.ArchiveBenchStream(n)
		encoded := make([][]byte, len(recs))
		for i, r := range recs {
			encoded[i] = trace.MarshalRecord(r)
		}
		b.Run(fmt.Sprintf("n=%d/serial", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, raw := range encoded {
					if _, err := trace.UnmarshalRecord(raw); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}
