package tpupoint

import (
	"bytes"
	"strings"
	"testing"
)

func TestWorkloadsList(t *testing.T) {
	names := Workloads()
	if len(names) != 9 {
		t.Fatalf("workloads = %d", len(names))
	}
	for _, name := range names {
		w, err := GetWorkload(name)
		if err != nil {
			t.Fatal(err)
		}
		desc := Describe(w)
		if !strings.Contains(desc, w.Model) || !strings.Contains(desc, w.Dataset.Name) {
			t.Fatalf("Describe misses fields: %q", desc)
		}
	}
	if _, err := GetWorkload("gpt-42"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestSessionFigure2Flow(t *testing.T) {
	s, err := NewSession("bert-mrpc", Options{Steps: 220})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.StartProfiler(true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Train(); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no records")
	}
	if s.IdleFraction() <= 0 || s.MXUUtilization() <= 0 || s.TotalSeconds() <= 0 {
		t.Fatal("degenerate run metrics")
	}

	rep, err := s.Analyze(records, OLS)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) < 2 || rep.CoverageTop3 < 0.95 {
		t.Fatalf("phases=%d coverage=%.3f", len(rep.Phases), rep.CoverageTop3)
	}
	// Checkpoint association flowed through the session.
	found := false
	for _, ph := range rep.Phases {
		if ph.Checkpoint != "" {
			found = true
		}
	}
	if !found {
		t.Fatal("no phase has a checkpoint")
	}

	// Records persisted to the bucket are loadable.
	loaded, err := s.LoadRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(records) {
		t.Fatalf("loaded %d of %d records", len(loaded), len(records))
	}

	// Artifacts render.
	var trace, csv bytes.Buffer
	if err := s.WriteTrace(&trace, rep, records); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCSV(&csv, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace.String(), "Phase Breakdown") {
		t.Fatal("trace missing phase track")
	}
	if !strings.Contains(csv.String(), "phase,steps") {
		t.Fatal("csv missing header")
	}
}

func TestSessionTrainTwice(t *testing.T) {
	s, err := NewSession("dcgan-mnist", Options{Steps: 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Train(); err != nil {
		t.Fatal(err)
	}
	if err := s.Train(); err == nil {
		t.Fatal("second Train accepted")
	}
}

func TestSessionVariants(t *testing.T) {
	small, err := NewSession("resnet-imagenet", Options{Steps: 100, SmallDataset: true})
	if err != nil {
		t.Fatal(err)
	}
	if small.Workload().Dataset.Name != "cifar10" {
		t.Fatalf("small resnet dataset = %s", small.Workload().Dataset.Name)
	}
	naive, err := NewSession("qanet-squad", Options{Steps: 100, NaivePipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(naive.Workload().Name, "-naive") {
		t.Fatalf("naive workload name = %s", naive.Workload().Name)
	}
	if _, err := NewSession("unknown", Options{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestSessionV3Behaviour(t *testing.T) {
	run := func(v Version) (float64, float64) {
		s, err := NewSession("bert-cola", Options{Steps: 200, Version: v})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Train(); err != nil {
			t.Fatal(err)
		}
		return s.IdleFraction(), s.MXUUtilization()
	}
	i2, m2 := run(V2)
	i3, m3 := run(V3)
	if i3 <= i2 {
		t.Fatalf("v3 idle %.3f <= v2 %.3f", i3, i2)
	}
	if m3 >= m2 {
		t.Fatalf("v3 mxu %.3f >= v2 %.3f", m3, m2)
	}
}

func TestOptimizeFacade(t *testing.T) {
	res, err := Optimize("dcgan-cifar10", OptimizeOptions{Steps: 220, Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredSpeedup <= 1.2 {
		t.Fatalf("naive optimize speedup = %.3f", res.MeasuredSpeedup)
	}
	if _, err := Optimize("nope", OptimizeOptions{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestAnalyzeAlgorithms(t *testing.T) {
	s, err := NewSession("dcgan-cifar10", Options{Steps: 250})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.StartProfiler(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Train(); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{OLS, KMeans, DBSCAN} {
		rep, err := s.Analyze(records, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(rep.Phases) == 0 || rep.Longest == nil {
			t.Fatalf("%s produced no phases", algo)
		}
	}
	if _, err := s.Analyze(records, Algorithm("magic")); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSessionResumeAtPhaseCheckpoint(t *testing.T) {
	s, err := NewSession("bert-mrpc", Options{Steps: 220})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.StartProfiler(true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Train(); err != nil {
		t.Fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Analyze(records, OLS)
	if err != nil {
		t.Fatal(err)
	}
	var ckpt string
	for _, ph := range rep.Phases {
		if ph.Checkpoint != "" {
			ckpt = ph.Checkpoint
			break
		}
	}
	if ckpt == "" {
		t.Fatal("no phase checkpoint to resume from")
	}
	resumed, err := s.Resume(ckpt, Options{Steps: 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Train(); err != nil {
		t.Fatal(err)
	}
	if resumed.TotalSeconds() >= s.TotalSeconds() {
		t.Fatalf("resumed run (%.1fs) not shorter than original (%.1fs)",
			resumed.TotalSeconds(), s.TotalSeconds())
	}
	// Error paths.
	if _, err := s.Resume("", Options{}); err == nil {
		t.Fatal("empty checkpoint accepted")
	}
	if _, err := s.Resume("ckpt/unknown", Options{}); err == nil {
		t.Fatal("foreign checkpoint accepted")
	}
}
