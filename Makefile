GO ?= go

.PHONY: build test race vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The full gate: everything must build, pass vet, and pass the test
# suite with the race detector on. CI and pre-commit both run this.
check: build vet race
