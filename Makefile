GO ?= go

.PHONY: build test race vet fmt bench archive-bench stream-bench ingest-bench cluster-bench check metrics-smoke archive-smoke crash-smoke stream-smoke ingest-smoke cluster-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fail-listing formatter gate: prints offending files and exits
# non-zero when anything is unformatted. `gofmt -w .` fixes them.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Regenerate the analyzer kernel benchmarks (BENCH_analyzer.json).
# Quick CI smoke: make bench BENCH_OUT=/tmp/bench.json BENCH_ARGS=-bench-quick
bench:
	$(GO) run ./cmd/paperbench -analyzer-bench $(or $(BENCH_OUT),BENCH_analyzer.json) $(BENCH_ARGS)

# Regenerate the archive encode/decode + diff benchmarks (BENCH_archive.json).
archive-bench:
	$(GO) run ./cmd/paperbench -archive-bench $(or $(BENCH_OUT),BENCH_archive.json) $(BENCH_ARGS)

# Regenerate the streaming-analyzer fidelity benchmarks (BENCH_stream.json):
# boundary F1 and time-share MAPE vs batch OLS, plus resident state bytes.
stream-bench:
	$(GO) run ./cmd/paperbench -stream-bench $(or $(BENCH_OUT),BENCH_stream.json) $(BENCH_ARGS)

# Regenerate the concurrent repository-ingest benchmarks (BENCH_ingest.json):
# save throughput, p99 append latency, and manifest-CAS retries at
# 8/64/256 agents over the sharded run repository.
ingest-bench:
	$(GO) run ./cmd/paperbench -ingest-bench $(or $(BENCH_OUT),BENCH_ingest.json) $(BENCH_ARGS)

# Regenerate the multi-tenant cluster-scheduling benchmarks
# (BENCH_cluster.json): scheduler throughput plus the deterministic
# fairness surface (Jain's index, worst-tenant p99 queueing delay, shed
# counts) per routing policy over the rush and fleet presets.
cluster-bench:
	$(GO) run ./cmd/paperbench -cluster-bench $(or $(BENCH_OUT),BENCH_cluster.json) $(BENCH_ARGS)

# End-to-end profile-repository smoke: archive two runs through the CLI
# and diff them.
archive-smoke:
	./scripts/archive_smoke.sh

# End-to-end observability smoke: run tpupoint with -metrics on a real
# workload and assert the snapshot parses with nonzero core counters.
metrics-smoke:
	./scripts/metrics_smoke.sh

# Crash-consistency smoke: power-cut property test and fleet resume
# tests under -race, recovery counters, and a CLI fsck/salvage round
# trip over a deliberately torn archive.
crash-smoke:
	./scripts/crash_smoke.sh

# Streaming-analyzer smoke: archive a real run and tail it through the
# `tpupoint watch` verb at full rate and at duty cycle 1/10.
stream-smoke:
	./scripts/stream_smoke.sh

# Sharded-ingest smoke: contention/migration/compaction suites under
# -race, plus a CLI legacy->sharded migration and compaction round trip.
ingest-smoke:
	./scripts/ingest_smoke.sh

# Multi-tenant cluster smoke: scheduler-determinism contract under
# -race, then a CLI fleet round trip — seeded rush run, per-tenant
# listing, cross-tenant diff, and bit-identical replay.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Replicated-collection smoke: replica failover suites under -race,
# then two real collector replicas over one shared store — 64 agents,
# a kill -9 and restart mid-fleet, and an offline zero-loss audit.
replicated-smoke:
	./scripts/replicated_smoke.sh

# The full gate: everything must build, pass gofmt and vet (plus the
# vet-filter selftest), and pass the test suite with the race detector
# on. CI and pre-commit both run this. BENCH_GATE=1 additionally runs
# the benchmark regression gate against the committed baseline.
check: build fmt vet
	./scripts/check_selftest.sh
	$(GO) test -race ./...
	$(GO) test -race -count=2 ./internal/obs
	$(GO) test -race -count=2 ./internal/core/analyzer ./internal/core/cluster
	./scripts/archive_smoke.sh
	./scripts/crash_smoke.sh
	./scripts/stream_smoke.sh
	./scripts/ingest_smoke.sh
	./scripts/cluster_smoke.sh
	./scripts/replicated_smoke.sh
	@if [ "$(BENCH_GATE)" = "1" ]; then ./scripts/benchdiff.sh; fi
