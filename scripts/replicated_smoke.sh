#!/usr/bin/env bash
# Replicated-collection smoke: the replica failover suite under the
# race detector, then a real multi-process fleet — two collector
# replicas over one shared on-disk store, 64 agents streaming through
# the endpoint-set client (placement redirects included), a kill -9 and
# restart of one replica mid-fleet, and an offline list/fsck proving
# every record every agent sent was durably archived. Every agent's
# sent count is checked against the server's finalize ack, so a lost
# record fails the smoke at the agent that lost it, not just at the
# final tally.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== replica placement + failover + lease suites under -race"
go test -race -run \
    'TestReplicaEndpointSetFollowsRedirect|TestReplicaKillFailoverExactlyOnce|TestReplicaRecoverSessionsAdoptsOwnedOnly|TestLeaseExpirySweepVsConcurrentResume' \
    ./internal/repo

workdir="$(mktemp -d /tmp/replicated_smoke.XXXXXX)"
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do
        kill "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT
repodir="$workdir/runs"

bin="$workdir/tpupoint"
go build -o "$bin" ./cmd/tpupoint

# Ports derived from the PID keep parallel CI jobs off each other; the
# banner grep below catches a bind failure either way.
port0=$((20000 + (($$ % 20000))))
port1=$((port0 + 1))
ep0="127.0.0.1:$port0"
ep1="127.0.0.1:$port1"
peers="$ep0,$ep1"

start_replica() { # id port logfile -> pid on stdout
    "$bin" -collect-serve "127.0.0.1:$2" -archive "$repodir" \
        -replicas 2 -replica-id "$1" -peers "$peers" >"$3" 2>&1 &
    echo $!
}

wait_ready() { # logfile
    for _ in $(seq 1 100); do
        if grep -q 'fleet collection server on' "$1" 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    echo "replicated_smoke.sh: replica never came up; log:" >&2
    cat "$1" >&2
    return 1
}

total_sent=0
run_agent() { # run-id
    local out sent acked
    out="$("$bin" -workload bert-squad -steps 4 -collect "$peers" -run-id "$1")"
    sent="$(sed -n 's/.*(\([0-9][0-9]*\) records)$/\1/p' <<<"$out" | head -n 1)"
    acked="$(sed -n 's/^archived:.*): \([0-9][0-9]*\) records.*/\1/p' <<<"$out")"
    if [ -z "$sent" ] || [ "$sent" != "${acked:-}" ]; then
        echo "replicated_smoke.sh: agent $1 sent ${sent:-?} records, server acked ${acked:-?}" >&2
        echo "$out" >&2
        exit 1
    fi
    total_sent=$((total_sent + sent))
}

echo "== starting 2 collector replicas over one shared store"
pid0="$(start_replica 0 "$port0" "$workdir/rep0.log")"
pids+=("$pid0")
pid1="$(start_replica 1 "$port1" "$workdir/rep1.log")"
pids+=("$pid1")
wait_ready "$workdir/rep0.log"
wait_ready "$workdir/rep1.log"

echo "== first wave: 32 agents across both endpoints"
for i in $(seq -w 1 32); do
    run_agent "agent-$i"
done

echo "== kill -9 replica 1, restart it against the same store"
kill -9 "$pid1"
wait "$pid1" 2>/dev/null || true
pid1="$(start_replica 1 "$port1" "$workdir/rep1b.log")"
pids+=("$pid1")
wait_ready "$workdir/rep1b.log"

echo "== second wave: 32 agents through the recovered fleet"
for i in $(seq -w 33 64); do
    run_agent "agent-$i"
done

echo "== graceful shutdown of both replicas"
kill "$pid0" "$pid1"
wait "$pid0" 2>/dev/null || true
wait "$pid1" 2>/dev/null || true
pids=()

echo "== offline list + fsck over the shared store"
list="$("$bin" -archive "$repodir" runs list)"
runs_listed="$(echo "$list" | tail -n +2 | grep -c '^agent-')"
records_listed="$(echo "$list" | tail -n +2 | awk '{s += $(NF-2)} END {print s}')"
if [ "$runs_listed" -ne 64 ]; then
    echo "replicated_smoke.sh: 64 agents archived but $runs_listed runs listed" >&2
    echo "$list" >&2
    exit 1
fi
if [ "$records_listed" -ne "$total_sent" ]; then
    echo "replicated_smoke.sh: agents sent $total_sent records but $records_listed listed" >&2
    echo "$list" >&2
    exit 1
fi
fsck_out="$("$bin" -archive "$repodir" runs fsck)"
echo "$fsck_out"
echo "$fsck_out" | grep -q 'no issues'

echo "replicated smoke: OK (64 runs, $total_sent records, zero loss across kill -9)"
