#!/usr/bin/env bash
# Negative test for check.sh's vet pipeline: run the exact same
# filtered-vet invocation against a fixture module containing a real
# vet error (scripts/testdata/vetfail) and require that the failure
# still propagates. Guards against the classic pipefail regression
# where `go vet | grep` reports the filter's exit status instead of
# vet's.
set -euo pipefail

cd "$(dirname "$0")/.."

if (cd scripts/testdata/vetfail && go vet ./... 2>&1 | { grep -v '^#' || true; }) >/dev/null 2>&1; then
    echo "check selftest: FAIL — vet pipeline swallowed a known vet error" >&2
    exit 1
fi
echo "check selftest: OK (vet failures propagate through the pipefail filter)"
