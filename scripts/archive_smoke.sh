#!/usr/bin/env bash
# End-to-end profile-repository smoke: archive two real runs of the same
# workload on different TPU generations, then assert the repository
# verbs work — `runs list` shows both, `runs show` opens the archive
# (checksum verification included), and `runs diff` aligns their phases
# and reports wall-time and op-mix deltas.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d /tmp/archive_smoke.XXXXXX)"
trap 'rm -rf "$workdir"' EXIT
repodir="$workdir/runs"

bin="$workdir/tpupoint"
go build -o "$bin" ./cmd/tpupoint

echo "== archiving two runs (dcgan-mnist, TPUv2 vs TPUv3)"
"$bin" -workload dcgan-mnist -steps 60 -archive "$repodir" -run-id smoke-v2 -label smoke >/dev/null
"$bin" -workload dcgan-mnist -steps 60 -version 3 -archive "$repodir" -run-id smoke-v3 -label smoke >/dev/null

echo "== runs list"
list="$("$bin" -archive "$repodir" runs list)"
echo "$list"
echo "$list" | grep -q smoke-v2
echo "$list" | grep -q smoke-v3

# grep -q exits at the first match, which would SIGPIPE the writer
# under pipefail — capture to a variable instead of piping.
echo "== runs show smoke-v2"
show_out="$("$bin" -archive "$repodir" runs show smoke-v2)"
echo "$show_out" | grep -q 'phases='

echo "== runs diff smoke-v2 smoke-v3"
diff_out="$("$bin" -archive "$repodir" runs diff smoke-v2 smoke-v3)"
echo "$diff_out"
# The diff must contain at least one matched phase row and op-mix deltas.
echo "$diff_out" | grep -q 'Δwall'
echo "$diff_out" | grep -Eq '^#[0-9]+ +#[0-9]+'
echo "$diff_out" | grep -q '%'

echo "== runs diff -csv"
csv_out="$("$bin" -archive "$repodir" -csv runs diff smoke-v2 smoke-v3)"
echo "$csv_out" | head -1 | grep -q '^phase_a,phase_b'

echo "archive smoke: OK"
