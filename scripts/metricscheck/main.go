// Command metricscheck asserts properties of an obs JSON snapshot from
// the command line — the jq-free checker behind `make metrics-smoke`.
//
// Usage:
//
//	metricscheck <snapshot.json> [counter ...]
//
// The snapshot must parse, and every named counter must be present with
// a value greater than zero. Failures report what was actually in the
// snapshot so a broken wiring is diagnosable from CI logs alone.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck <snapshot.json> [counter ...]")
		os.Exit(2)
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		fatal(fmt.Errorf("snapshot is not valid JSON: %w", err))
	}
	failed := false
	for _, name := range os.Args[2:] {
		v, ok := snap.Counters[name]
		switch {
		case !ok:
			fmt.Fprintf(os.Stderr, "metricscheck: counter %q missing from snapshot\n", name)
			failed = true
		case v <= 0:
			fmt.Fprintf(os.Stderr, "metricscheck: counter %q = %d, want > 0\n", name, v)
			failed = true
		default:
			fmt.Printf("ok: %s = %d\n", name, v)
		}
	}
	if failed {
		names := make([]string, 0, len(snap.Counters))
		for n := range snap.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "snapshot counters: %v\n", names)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metricscheck:", err)
	os.Exit(1)
}
