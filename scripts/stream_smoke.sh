#!/usr/bin/env bash
# Streaming-analyzer smoke: the `tpupoint watch` verb end to end.
#
#   1. Archive a real workload run into a repository directory.
#   2. Tail the archive through the streaming analyzer (`watch`) and
#      assert at least one phase boundary closes, with a summary line
#      and a clean exit.
#   3. Re-watch at duty cycle 1/10 and assert the sampled pass still
#      finds phase structure while analyzing a fraction of the steps.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d /tmp/stream_smoke.XXXXXX)"
trap 'rm -rf "$workdir"' EXIT
repodir="$workdir/runs"

bin="$workdir/tpupoint"
go build -o "$bin" ./cmd/tpupoint

echo "== archiving a run for the watch verb"
"$bin" -workload dcgan-mnist -steps 120 -archive "$repodir" -run-id stream-v1 >/dev/null

# grep -q would SIGPIPE the writer under pipefail; capture instead.
echo "== watch stream-v1 (full rate)"
watch_out="$("$bin" -archive "$repodir" watch stream-v1)"
echo "$watch_out"
echo "$watch_out" | grep -q 'phase .* closed'
echo "$watch_out" | grep -q 'watch summary:'

echo "== watch stream-v1 (duty 1/10)"
duty_out="$("$bin" -archive "$repodir" watch -duty 10 -quiet stream-v1)"
echo "$duty_out"
echo "$duty_out" | grep -q 'phase .* closed'
echo "$duty_out" | grep -q 'duty 1/10'

echo "stream smoke: OK"
