#!/usr/bin/env bash
# Benchmark regression gate: regenerate the analyzer, archive, stream,
# and ingest benchmarks in quick mode and compare them against the
# committed BENCH_analyzer.json / BENCH_archive.json / BENCH_stream.json
# / BENCH_ingest.json baselines. Fails when any shared kernel/mode/n
# entry regresses past the tolerance, when the grid-indexed DBSCAN stops
# beating the quadratic reference by at least MIN_GRID_SPEEDUP, when the
# streaming analyzer's fidelity against batch OLS falls outside the
# MIN_STREAM_F1 / MAX_SHARE_MAPE floors, or when the sharded
# repository's p99 save latency regresses past MAX_INGEST_P99_REGRESS,
# or when the cluster scheduler's throughput falls below
# MIN_CLUSTER_THROUGHPUT or its simulated-time fairness surface (p99
# queueing delay, Jain's index) drifts past MAX_CLUSTER_P99_REGRESS.
#
# Environment:
#   BENCH_TOLERANCE      allowed ns/op regression fraction (default 0.25;
#                        looser than benchdiff's 0.15 default because the
#                        quick run measures fewer iterations)
#   ALLOC_TOLERANCE      allowed allocs/op regression fraction for the
#                        codec kernels (default 0.10 — allocation counts
#                        are near-deterministic, so this stays tight)
#   MIN_GRID_SPEEDUP     required dbscan grid-vs-brute speedup (default 2)
#   MIN_DECODE_SPEEDUP   required archive parallel-decode speedup at the
#                        largest n (default 2; benchdiff only enforces it
#                        when the run had GOMAXPROCS >= 4)
#   MIN_ALLOC_REDUCTION  required fraction of naive-encoder allocations
#                        the pooled wire encoder eliminates (default 0.5)
#   MIN_STREAM_F1        required streaming phase-boundary F1 vs the
#                        batch analyzer at duty 1/10 (default 0.9)
#   MAX_SHARE_MAPE       allowed streaming time-share MAPE vs the batch
#                        analyzer at duty 1/10 (default 0.10)
#   MAX_INGEST_P99_REGRESS allowed p99 save-latency regression fraction
#                        per ingest agent count (default 3.0 — concurrent
#                        latency tails are noisy on shared CI runners, so
#                        the gate catches order-of-magnitude contention
#                        collapses, not scheduling jitter; benchdiff
#                        additionally skips the ceiling when baseline and
#                        candidate recorded different GOMAXPROCS)
#   MIN_REPLICA_SCALING  required replicated-ingest throughput ratio, max
#                        replicas vs 1 replica at the largest agent count
#                        (default 2.5; benchdiff only enforces it when
#                        the run had GOMAXPROCS >= 4)
#   MIN_CLUSTER_THROUGHPUT required cluster scheduler throughput in
#                        jobs/sec (default 50 — a loose wall-clock floor
#                        that catches the scheduling loop going
#                        quadratic, not a runner benchmark)
#   MAX_CLUSTER_P99_REGRESS allowed drift fraction for the cluster
#                        scheduler's per-preset×policy p99 queueing
#                        delay and Jain fairness index (default 0.25 —
#                        simulated-time quantities, deterministic for a
#                        fixed seed, so the gate stays tight)
#   BENCH_BASELINE       analyzer baseline (default BENCH_analyzer.json)
#   ARCHIVE_BASELINE     archive baseline (default BENCH_archive.json)
#   STREAM_BASELINE      stream baseline (default BENCH_stream.json)
#   INGEST_BASELINE      ingest baseline (default BENCH_ingest.json)
#   CLUSTER_BASELINE     cluster baseline (default BENCH_cluster.json)
#
# Run directly or via `BENCH_GATE=1 make check`.
set -euo pipefail

cd "$(dirname "$0")/.."

baseline="${BENCH_BASELINE:-BENCH_analyzer.json}"
archive_baseline="${ARCHIVE_BASELINE:-BENCH_archive.json}"
stream_baseline="${STREAM_BASELINE:-BENCH_stream.json}"
ingest_baseline="${INGEST_BASELINE:-BENCH_ingest.json}"
cluster_baseline="${CLUSTER_BASELINE:-BENCH_cluster.json}"
tolerance="${BENCH_TOLERANCE:-0.25}"
alloc_tolerance="${ALLOC_TOLERANCE:-0.10}"
min_grid="${MIN_GRID_SPEEDUP:-2}"
min_decode="${MIN_DECODE_SPEEDUP:-2}"
min_alloc_reduction="${MIN_ALLOC_REDUCTION:-0.5}"
min_stream_f1="${MIN_STREAM_F1:-0.9}"
max_share_mape="${MAX_SHARE_MAPE:-0.10}"
max_ingest_p99_regress="${MAX_INGEST_P99_REGRESS:-3.0}"
min_replica_scaling="${MIN_REPLICA_SCALING:-2.5}"
min_cluster_throughput="${MIN_CLUSTER_THROUGHPUT:-50}"
max_cluster_p99_regress="${MAX_CLUSTER_P99_REGRESS:-0.25}"

for b in "$baseline" "$archive_baseline" "$stream_baseline" "$ingest_baseline" "$cluster_baseline"; do
    if [ ! -f "$b" ]; then
        echo "benchdiff.sh: baseline $b not found" >&2
        exit 1
    fi
done

fresh="$(mktemp /tmp/bench_analyzer.XXXXXX.json)"
fresh_archive="$(mktemp /tmp/bench_archive.XXXXXX.json)"
fresh_stream="$(mktemp /tmp/bench_stream.XXXXXX.json)"
fresh_ingest="$(mktemp /tmp/bench_ingest.XXXXXX.json)"
fresh_cluster="$(mktemp /tmp/bench_cluster.XXXXXX.json)"
trap 'rm -f "$fresh" "$fresh_archive" "$fresh_stream" "$fresh_ingest" "$fresh_cluster"' EXIT

echo "== paperbench -analyzer-bench (quick)"
go run ./cmd/paperbench -analyzer-bench "$fresh" -bench-quick

echo "== benchdiff vs $baseline (tolerance ${tolerance}, grid floor ${min_grid}x)"
go run ./cmd/benchdiff -old "$baseline" -new "$fresh" \
    -tolerance "$tolerance" -min-grid-speedup "$min_grid"

echo "== paperbench -archive-bench (quick)"
go run ./cmd/paperbench -archive-bench "$fresh_archive" -bench-quick

# No grid/brute pair in the archive report (-min-grid-speedup 0); the
# codec gates take over: parallel decode must clear MIN_DECODE_SPEEDUP
# (enforced only on >= 4 cores) and the pooled wire encoder must keep
# eliminating MIN_ALLOC_REDUCTION of the naive encoder's allocations.
echo "== benchdiff vs $archive_baseline (tolerance ${tolerance}, decode floor ${min_decode}x, alloc floor ${min_alloc_reduction})"
go run ./cmd/benchdiff -old "$archive_baseline" -new "$fresh_archive" \
    -tolerance "$tolerance" -alloc-tolerance "$alloc_tolerance" \
    -min-grid-speedup 0 -min-decode-speedup "$min_decode" \
    -min-alloc-reduction "$min_alloc_reduction"

echo "== paperbench -stream-bench (quick)"
go run ./cmd/paperbench -stream-bench "$fresh_stream" -bench-quick

# Streaming fidelity gate: the incremental analyzer at duty cycle 1/10
# must keep boundary F1 >= MIN_STREAM_F1 and time-share MAPE <=
# MAX_SHARE_MAPE against the batch OLS reference at the largest n. The
# ns/op comparison against the committed stream baseline uses a loose
# tolerance (quick mode measures fewer iterations); the fidelity floors
# are the gate that matters.
echo "== benchdiff vs $stream_baseline (F1 floor ${min_stream_f1}, MAPE ceiling ${max_share_mape})"
go run ./cmd/benchdiff -old "$stream_baseline" -new "$fresh_stream" \
    -tolerance 1.0 -min-grid-speedup 0 \
    -min-stream-f1 "$min_stream_f1" -max-share-mape "$max_share_mape"

echo "== paperbench -ingest-bench (quick)"
go run ./cmd/paperbench -ingest-bench "$fresh_ingest" -bench-quick

# Sharded-ingest gate: p99 save latency at each agent count both reports
# measured must stay within MAX_INGEST_P99_REGRESS of the baseline.
# Quick mode drops the 256-agent acceptance point, so CI holds the 8-
# and 64-agent points; the full run before committing a new baseline
# covers 256. The generic ns/op comparison is disabled (-tolerance 10)
# for the same reason the p99 ceiling is generous: concurrent save
# latency on a shared runner is noisy, and the per-point p99 ceiling is
# the contract that matters. The replicated sweep adds the horizontal
# floor: with >= 4 cores, ingest over the full replica set must beat
# the single-replica lane by MIN_REPLICA_SCALING.
echo "== benchdiff vs $ingest_baseline (p99 ceiling ${max_ingest_p99_regress}, replica scaling floor ${min_replica_scaling}x)"
go run ./cmd/benchdiff -old "$ingest_baseline" -new "$fresh_ingest" \
    -tolerance 10 -min-grid-speedup 0 \
    -max-ingest-p99-regress "$max_ingest_p99_regress" \
    -min-replica-scaling "$min_replica_scaling"

echo "== paperbench -cluster-bench (quick)"
go run ./cmd/paperbench -cluster-bench "$fresh_cluster" -bench-quick

# Cluster scheduler gate: every preset×policy point must schedule at
# least MIN_CLUSTER_THROUGHPUT jobs/sec of wall clock, and the
# simulated-time fairness surface — worst-tenant p99 queueing delay and
# Jain's index per preset×policy — must stay within
# MAX_CLUSTER_P99_REGRESS of the baseline. Quick mode drops the
# 64-worker fleet acceptance point, so CI holds the contended rush
# preset; the full run before committing a new baseline covers fleet.
# The generic ns/op comparison is disabled (-tolerance 10): throughput
# has its own floor and the fairness numbers are exact.
echo "== benchdiff vs $cluster_baseline (throughput floor ${min_cluster_throughput} jobs/sec, fairness drift ${max_cluster_p99_regress})"
go run ./cmd/benchdiff -old "$cluster_baseline" -new "$fresh_cluster" \
    -tolerance 10 -min-grid-speedup 0 \
    -min-cluster-throughput "$min_cluster_throughput" \
    -max-cluster-p99-regress "$max_cluster_p99_regress"
