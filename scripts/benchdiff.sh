#!/usr/bin/env bash
# Benchmark regression gate: regenerate the analyzer and archive
# benchmarks in quick mode and compare them against the committed
# BENCH_analyzer.json / BENCH_archive.json baselines. Fails when any
# shared kernel/mode/n entry regresses past the tolerance, or when the
# grid-indexed DBSCAN stops beating the quadratic reference by at least
# MIN_GRID_SPEEDUP.
#
# Environment:
#   BENCH_TOLERANCE      allowed ns/op regression fraction (default 0.25;
#                        looser than benchdiff's 0.15 default because the
#                        quick run measures fewer iterations)
#   ALLOC_TOLERANCE      allowed allocs/op regression fraction for the
#                        codec kernels (default 0.10 — allocation counts
#                        are near-deterministic, so this stays tight)
#   MIN_GRID_SPEEDUP     required dbscan grid-vs-brute speedup (default 2)
#   MIN_DECODE_SPEEDUP   required archive parallel-decode speedup at the
#                        largest n (default 2; benchdiff only enforces it
#                        when the run had GOMAXPROCS >= 4)
#   MIN_ALLOC_REDUCTION  required fraction of naive-encoder allocations
#                        the pooled wire encoder eliminates (default 0.5)
#   BENCH_BASELINE       analyzer baseline (default BENCH_analyzer.json)
#   ARCHIVE_BASELINE     archive baseline (default BENCH_archive.json)
#
# Run directly or via `BENCH_GATE=1 make check`.
set -euo pipefail

cd "$(dirname "$0")/.."

baseline="${BENCH_BASELINE:-BENCH_analyzer.json}"
archive_baseline="${ARCHIVE_BASELINE:-BENCH_archive.json}"
tolerance="${BENCH_TOLERANCE:-0.25}"
alloc_tolerance="${ALLOC_TOLERANCE:-0.10}"
min_grid="${MIN_GRID_SPEEDUP:-2}"
min_decode="${MIN_DECODE_SPEEDUP:-2}"
min_alloc_reduction="${MIN_ALLOC_REDUCTION:-0.5}"

for b in "$baseline" "$archive_baseline"; do
    if [ ! -f "$b" ]; then
        echo "benchdiff.sh: baseline $b not found" >&2
        exit 1
    fi
done

fresh="$(mktemp /tmp/bench_analyzer.XXXXXX.json)"
fresh_archive="$(mktemp /tmp/bench_archive.XXXXXX.json)"
trap 'rm -f "$fresh" "$fresh_archive"' EXIT

echo "== paperbench -analyzer-bench (quick)"
go run ./cmd/paperbench -analyzer-bench "$fresh" -bench-quick

echo "== benchdiff vs $baseline (tolerance ${tolerance}, grid floor ${min_grid}x)"
go run ./cmd/benchdiff -old "$baseline" -new "$fresh" \
    -tolerance "$tolerance" -min-grid-speedup "$min_grid"

echo "== paperbench -archive-bench (quick)"
go run ./cmd/paperbench -archive-bench "$fresh_archive" -bench-quick

# No grid/brute pair in the archive report (-min-grid-speedup 0); the
# codec gates take over: parallel decode must clear MIN_DECODE_SPEEDUP
# (enforced only on >= 4 cores) and the pooled wire encoder must keep
# eliminating MIN_ALLOC_REDUCTION of the naive encoder's allocations.
echo "== benchdiff vs $archive_baseline (tolerance ${tolerance}, decode floor ${min_decode}x, alloc floor ${min_alloc_reduction})"
go run ./cmd/benchdiff -old "$archive_baseline" -new "$fresh_archive" \
    -tolerance "$tolerance" -alloc-tolerance "$alloc_tolerance" \
    -min-grid-speedup 0 -min-decode-speedup "$min_decode" \
    -min-alloc-reduction "$min_alloc_reduction"
