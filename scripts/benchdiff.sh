#!/usr/bin/env bash
# Benchmark regression gate: regenerate the analyzer benchmarks in quick
# mode and compare them against the committed BENCH_analyzer.json
# baseline. Fails when any shared kernel/mode/n entry regresses past the
# tolerance, or when the grid-indexed DBSCAN stops beating the quadratic
# reference by at least MIN_GRID_SPEEDUP.
#
# Environment:
#   BENCH_TOLERANCE    allowed ns/op regression fraction (default 0.25;
#                      looser than benchdiff's 0.15 default because the
#                      quick run measures fewer iterations)
#   MIN_GRID_SPEEDUP   required dbscan grid-vs-brute speedup (default 2)
#   BENCH_BASELINE     baseline report (default BENCH_analyzer.json)
#
# Run directly or via `BENCH_GATE=1 make check`.
set -euo pipefail

cd "$(dirname "$0")/.."

baseline="${BENCH_BASELINE:-BENCH_analyzer.json}"
tolerance="${BENCH_TOLERANCE:-0.25}"
min_grid="${MIN_GRID_SPEEDUP:-2}"

if [ ! -f "$baseline" ]; then
    echo "benchdiff.sh: baseline $baseline not found" >&2
    exit 1
fi

fresh="$(mktemp /tmp/bench_analyzer.XXXXXX.json)"
trap 'rm -f "$fresh"' EXIT

echo "== paperbench -analyzer-bench (quick)"
go run ./cmd/paperbench -analyzer-bench "$fresh" -bench-quick

echo "== benchdiff vs $baseline (tolerance ${tolerance}, grid floor ${min_grid}x)"
go run ./cmd/benchdiff -old "$baseline" -new "$fresh" \
    -tolerance "$tolerance" -min-grid-speedup "$min_grid"
