#!/usr/bin/env bash
# Benchmark regression gate: regenerate the analyzer and archive
# benchmarks in quick mode and compare them against the committed
# BENCH_analyzer.json / BENCH_archive.json baselines. Fails when any
# shared kernel/mode/n entry regresses past the tolerance, or when the
# grid-indexed DBSCAN stops beating the quadratic reference by at least
# MIN_GRID_SPEEDUP.
#
# Environment:
#   BENCH_TOLERANCE    allowed ns/op regression fraction (default 0.25;
#                      looser than benchdiff's 0.15 default because the
#                      quick run measures fewer iterations)
#   MIN_GRID_SPEEDUP   required dbscan grid-vs-brute speedup (default 2)
#   BENCH_BASELINE     analyzer baseline (default BENCH_analyzer.json)
#   ARCHIVE_BASELINE   archive baseline (default BENCH_archive.json)
#
# Run directly or via `BENCH_GATE=1 make check`.
set -euo pipefail

cd "$(dirname "$0")/.."

baseline="${BENCH_BASELINE:-BENCH_analyzer.json}"
archive_baseline="${ARCHIVE_BASELINE:-BENCH_archive.json}"
tolerance="${BENCH_TOLERANCE:-0.25}"
min_grid="${MIN_GRID_SPEEDUP:-2}"

for b in "$baseline" "$archive_baseline"; do
    if [ ! -f "$b" ]; then
        echo "benchdiff.sh: baseline $b not found" >&2
        exit 1
    fi
done

fresh="$(mktemp /tmp/bench_analyzer.XXXXXX.json)"
fresh_archive="$(mktemp /tmp/bench_archive.XXXXXX.json)"
trap 'rm -f "$fresh" "$fresh_archive"' EXIT

echo "== paperbench -analyzer-bench (quick)"
go run ./cmd/paperbench -analyzer-bench "$fresh" -bench-quick

echo "== benchdiff vs $baseline (tolerance ${tolerance}, grid floor ${min_grid}x)"
go run ./cmd/benchdiff -old "$baseline" -new "$fresh" \
    -tolerance "$tolerance" -min-grid-speedup "$min_grid"

echo "== paperbench -archive-bench (quick)"
go run ./cmd/paperbench -archive-bench "$fresh_archive" -bench-quick

# No grid/brute pair in the archive report: -min-grid-speedup 0.
echo "== benchdiff vs $archive_baseline (tolerance ${tolerance})"
go run ./cmd/benchdiff -old "$archive_baseline" -new "$fresh_archive" \
    -tolerance "$tolerance" -min-grid-speedup 0
