#!/usr/bin/env bash
# Crash-consistency smoke: the durability stack end to end.
#
#   1. The power-cut property test under the race detector — the scripted
#      Save/fleet/Finalize/GC workload killed at every write boundary
#      (clean and torn), recovered, and fsck'd.
#   2. The fleet durable-session tests (resume, eviction, torn-tail trim,
#      lease-vs-finalize) under the race detector.
#   3. crashcheck — the in-process wiring smoke that asserts every
#      recovery path moves its observability counter
#      (repo.journal.replays, repo.salvage.segments.recovered,
#      repo.fsck.issues/repairs, fleet.sessions.resumed) and that
#      records.in == records.archived across a collector restart.
#   4. A CLI round trip: archive a real run, corrupt the blob's tail,
#      prove `runs fsck` flags it, `runs salvage` recovers it, and the
#      repaired run still opens.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== power-cut property test (-race)"
go test -race -count=1 -run 'TestPowerCutAtEveryWriteBoundary' ./internal/repo

echo "== fleet durable-session tests (-race)"
go test -race -count=1 -run 'TestFleet(Resume|RecoverSessions|FinalizeBeatsLeaseExpiry|DurableAppendFailure)|TestSessionToken' ./internal/repo

echo "== crashcheck (recovery counters)"
go run ./scripts/crashcheck

workdir="$(mktemp -d /tmp/crash_smoke.XXXXXX)"
trap 'rm -rf "$workdir"' EXIT
repodir="$workdir/runs"

bin="$workdir/tpupoint"
go build -o "$bin" ./cmd/tpupoint

echo "== archiving a run, then tearing its blob"
"$bin" -workload dcgan-mnist -steps 60 -archive "$repodir" -run-id crash-v2 -label crash >/dev/null
blob="$repodir/runs/crash-v2/archive"
[ -f "$blob" ]
size="$(wc -c < "$blob")"
truncate -s "$((size - 16))" "$blob"

# grep -q exits at the first match, which would SIGPIPE the writer
# under pipefail — capture to variables instead of piping.
echo "== runs fsck must flag the torn blob"
if fsck_out="$("$bin" -archive "$repodir" runs fsck 2>&1)"; then
    echo "$fsck_out"
    echo "fsck passed on a corrupted repository" >&2
    exit 1
fi
echo "$fsck_out" | grep -q 'crash-v2'

echo "== runs salvage crash-v2"
salvage_out="$("$bin" -archive "$repodir" runs salvage crash-v2)"
echo "$salvage_out"
echo "$salvage_out" | grep -q 'segments'

echo "== runs fsck must now be clean"
"$bin" -archive "$repodir" runs fsck

# The salvaged archive keeps its records but drops the embedded summary
# (it lived in the torn-off footer), so assert on the record line, not
# the phase table.
echo "== runs show still opens the salvaged run"
show_out="$("$bin" -archive "$repodir" runs show crash-v2)"
echo "$show_out" | grep -q 'records:'

echo "crash smoke: OK"
