// crashcheck is the durability-counter smoke: it drives the crash
// recovery machinery end to end in-process — an interrupted save
// replayed from the journal, a corrupted blob salvaged, a missing blob
// fsck-repaired, and a fleet session resumed across a collector
// restart — and asserts that each path moved its observability
// counter. Unit tests prove the mechanisms; this proves the wiring
// (a nil registry handed to any layer would pass every unit test and
// fail here).
package main

import (
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/archive"
	"repro/internal/faultnet"
	"repro/internal/obs"
	"repro/internal/repo"
	"repro/internal/rpc"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crashcheck:", err)
		os.Exit(1)
	}
	fmt.Println("crashcheck: OK")
}

func blob(runID string, seq uint64, n int) []byte {
	w := archive.NewWriter(archive.Meta{RunID: runID, Workload: "crashcheck", CreatedSeq: seq})
	if err := w.SetSegmentTarget(512); err != nil {
		panic(err)
	}
	var ts simclock.Time
	for i := 0; i < n; i++ {
		w.Add(trace.Reduce(int64(i), ts, []trace.Event{
			{Name: "MatMul", Device: trace.TPU, Start: ts, Dur: 500, Step: int64(i)},
		}, 0.2, 0.4))
		ts += 1000
	}
	return w.Finalize(nil)
}

func records(n int) []*trace.ProfileRecord {
	recs := make([]*trace.ProfileRecord, 0, n)
	var ts simclock.Time
	for i := 0; i < n; i++ {
		recs = append(recs, trace.Reduce(int64(i), ts, []trace.Event{
			{Name: "Conv2D", Device: trace.TPU, Start: ts, Dur: 400, Step: int64(i)},
		}, 0.1, 0.5))
		ts += 1000
	}
	return recs
}

func run() error {
	svc := storage.NewService()
	bucket, err := svc.CreateBucket("crashcheck")
	if err != nil {
		return err
	}
	seed := repo.New(bucket)
	for i, id := range []string{"run-a", "run-b"} {
		if _, err := seed.Save(blob(id, uint64(i+1), 30)); err != nil {
			return err
		}
	}

	// 1. Interrupt a save mid-mutation: the power cut lands on the
	// manifest swap, stranding a journaled intent and an orphan blob.
	cs := faultnet.NewCrashStore(bucket)
	crashed, _, err := repo.Open(cs)
	if err != nil {
		return err
	}
	cs.CrashAfterWrites(2, false) // intent append, blob put, then darkness
	if _, err := crashed.Save(blob("run-c", 9, 30)); !errors.Is(err, faultnet.ErrPowerLost) {
		return fmt.Errorf("scripted crash save: err = %v, want power lost", err)
	}

	// Power restored: replay the journal with the registry attached.
	reg := obs.NewRegistry(128)
	r := repo.New(bucket)
	r.SetObs(reg)
	rec, err := r.Recover()
	if err != nil {
		return err
	}
	if rec.Clean() {
		return errors.New("recovery found nothing: the scripted crash left no debris")
	}
	if got := reg.Snapshot().C("repo.journal.replays"); got < 1 {
		return fmt.Errorf("repo.journal.replays = %d after a replayed intent", got)
	}
	fmt.Printf("journal: replayed %d open intents (%d rolled back)\n", rec.OpenIntents, rec.RolledBack)

	// 2. Corrupt a blob's tail and salvage it.
	obj, err := bucket.Get("runs/run-b/archive")
	if err != nil {
		return err
	}
	if _, err := bucket.Put("runs/run-b/archive", obj.Data[:len(obj.Data)-16]); err != nil {
		return err
	}
	_, srep, err := r.Salvage("run-b")
	if err != nil {
		return err
	}
	if got := reg.Snapshot().C("repo.salvage.segments.recovered"); got < 1 {
		return fmt.Errorf("repo.salvage.segments.recovered = %d after salvaging %d segments", got, srep.SegmentsKept)
	}
	fmt.Printf("salvage: %d/%d segments, %d records\n", srep.SegmentsKept, srep.SegmentsTotal, srep.RecordsKept)

	// 3. Lose a blob outright and let fsck repair the manifest.
	if err := bucket.Delete("runs/run-a/archive"); err != nil {
		return err
	}
	frep, err := r.Fsck(true)
	if err != nil {
		return err
	}
	snap := reg.Snapshot()
	if snap.C("repo.fsck.issues") < 1 || snap.C("repo.fsck.repairs") < 1 {
		return fmt.Errorf("fsck counters: issues=%d repairs=%d after %d repairs",
			snap.C("repo.fsck.issues"), snap.C("repo.fsck.repairs"), frep.Repaired)
	}
	fmt.Printf("fsck: %d issues, %d repaired\n", len(frep.Issues), frep.Repaired)

	// 4. Fleet session across a collector restart.
	recs := records(20)
	f1 := repo.NewFleet(r, repo.FleetOptions{Obs: reg})
	srv1 := rpc.NewServer()
	f1.Register(srv1)
	c1 := rpc.Pipe(srv1)
	fc1, err := repo.OpenSession(c1, repo.OpenRequest{RunID: "run-f", Workload: "fleet"})
	if err != nil {
		return err
	}
	if err := fc1.AppendBatch(recs[:11]); err != nil {
		return err
	}
	c1.Close()
	srv1.Close() // the "crash": only the bucket survives

	f2 := repo.NewFleet(r, repo.FleetOptions{Obs: reg})
	srv2 := rpc.NewServer()
	f2.Register(srv2)
	defer srv2.Close()
	parked, err := f2.RecoverSessions()
	if err != nil {
		return err
	}
	if len(parked) != 1 {
		return fmt.Errorf("parked sessions = %v, want exactly the interrupted one", parked)
	}
	c2 := rpc.Pipe(srv2)
	defer c2.Close()
	fc2, accepted, err := repo.ResumeSession(c2, fc1.Token())
	if err != nil {
		return err
	}
	if accepted != 11 {
		return fmt.Errorf("resume accepted %d records, want 11", accepted)
	}
	if err := fc2.AppendBatch(recs[accepted:]); err != nil {
		return err
	}
	info, err := fc2.Finalize()
	if err != nil {
		return err
	}
	if info.Records != int64(len(recs)) {
		return fmt.Errorf("resumed run archived %d records, want %d", info.Records, len(recs))
	}
	if got := reg.Snapshot().C("fleet.sessions.resumed"); got != 1 {
		return fmt.Errorf("fleet.sessions.resumed = %d, want 1", got)
	}
	fmt.Printf("fleet: resumed at %d, archived %d records\n", accepted, info.Records)

	// The zero-loss ledger: both collectors shared the registry, so
	// across the restart every record that came in must be archived.
	// The drain goroutines are asynchronous; give them a moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap = reg.Snapshot()
		in, arch := snap.C("fleet.records.in"), snap.C("fleet.records.archived")
		if in == arch && in >= int64(len(recs)) {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("records.in = %d != records.archived = %d", in, arch)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}
