#!/usr/bin/env bash
# Multi-tenant cluster smoke: the scheduler-determinism contract under
# the race detector, then a CLI round trip — a seeded 8-worker rush
# fleet scheduled and archived into a real on-disk repository, its
# fairness report checked, the repository sliced per tenant with
# `runs list -tenant`, two tenants' profiles cross-diffed, and the
# whole simulation repeated to prove the archived bytes replay
# bit-identically.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== determinism + zero-loss + work-conservation under -race"
go test -race -run \
    'TestDeterminismAcrossParallelism|TestZeroLossAccounting|TestPropertyLeastLoadedWorkConserving|TestAffinityReducesSetups' \
    ./internal/cluster

workdir="$(mktemp -d /tmp/cluster_smoke.XXXXXX)"
trap 'rm -rf "$workdir"' EXIT

bin="$workdir/tpupoint"
go build -o "$bin" ./cmd/tpupoint

echo "== seeded 8-worker rush fleet, least-loaded routing"
report="$("$bin" -archive "$workdir/runs" cluster -preset rush -policy least-loaded -seed 42)"
echo "$report" | head -8
echo "$report" | grep -q 'Jain'
echo "$report" | grep -q 'archived:'

echo "== per-tenant slices via runs list -tenant"
for tenant in vision nlp detect batch; do
    list="$("$bin" -archive "$workdir/runs" runs list -tenant "$tenant")"
    echo "$list" | tail -n +2 | grep -q "$tenant" || {
        echo "cluster_smoke.sh: no archived runs for tenant $tenant" >&2
        exit 1
    }
done
# A tenant filter must not leak other tenants' runs.
if "$bin" -archive "$workdir/runs" runs list -tenant vision | grep -q 'nlp'; then
    echo "cluster_smoke.sh: tenant filter leaked foreign runs" >&2
    exit 1
fi

echo "== cross-tenant profile diff (vision vs nlp)"
a="$("$bin" -archive "$workdir/runs" runs list -tenant vision | awk 'NR==2{print $1}')"
b="$("$bin" -archive "$workdir/runs" runs list -tenant nlp | awk 'NR==2{print $1}')"
diff_out="$("$bin" -archive "$workdir/runs" runs diff "$a" "$b")"
echo "$diff_out" | head -4
echo "$diff_out" | grep -q 'phase'

echo "== repository integrity"
"$bin" -archive "$workdir/runs" runs fsck >/dev/null

echo "== replay determinism: same seed, fresh repository, identical bytes"
"$bin" -archive "$workdir/runs2" cluster -preset rush -policy least-loaded -seed 42 >/dev/null
if ! diff -r "$workdir/runs/runs" "$workdir/runs2/runs" >/dev/null; then
    echo "cluster_smoke.sh: replay produced different archives" >&2
    exit 1
fi

echo "cluster smoke: OK"
