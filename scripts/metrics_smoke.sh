#!/usr/bin/env bash
# End-to-end observability smoke test: run a small workload through
# `tpupoint -metrics <file>` and assert the exported snapshot is valid
# JSON whose core profiler counters actually moved. Catches wiring
# regressions (a component silently handed a nil registry) that unit
# tests on the obs package itself cannot see.
#
# No jq dependency: the assertions live in scripts/metricscheck, a tiny
# Go program run with `go run`.
set -euo pipefail

cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

echo "== tpupoint -metrics (profile run)"
go run ./cmd/tpupoint -workload dcgan-mnist -steps 150 -metrics "$out/metrics.json" >"$out/stdout.txt"

grep -q '^run summary: .*windows=' "$out/stdout.txt" || {
    echo "metrics-smoke: run summary line missing from tpupoint output" >&2
    cat "$out/stdout.txt" >&2
    exit 1
}

echo "== snapshot assertions"
go run ./scripts/metricscheck "$out/metrics.json" \
    profiler.windows.fetched \
    profiler.records.persisted

echo "metrics-smoke: OK"
