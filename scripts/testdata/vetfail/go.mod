// Standalone module so `go vet ./...` from the repository root never
// picks this fixture up; only scripts/check_selftest.sh vets it, and
// expects the vet to fail.
module vetfail

go 1.22
