// Fixture for scripts/check_selftest.sh: this program contains a
// deliberate Printf-verb mismatch that `go vet` must flag. If the
// check.sh vet pipeline ever stops failing on this module, the filter
// is eating vet's exit status.
package main

import "fmt"

func main() {
	fmt.Printf("%d steps\n", "twelve") // vet: %d with a string argument
}
