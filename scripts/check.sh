#!/usr/bin/env bash
# Full verification gate: build, vet, and the race-enabled test suite.
# Equivalent to `make check`; exists for environments without make.
#
# The vet step filters go vet's "# package" progress headers out of the
# output. Under `set -o pipefail` the naive `go vet | grep -v '^#'`
# breaks both ways: grep exits 1 when vet is clean (everything
# filtered), and without pipefail a real vet failure is masked by the
# filter's exit status. The `{ grep ... || true; }` form keeps the
# filter infallible so the pipeline's status is exactly go vet's;
# scripts/check_selftest.sh proves that against a known-bad fixture.
#
# BENCH_GATE=1 additionally runs the benchmark regression gate
# (scripts/benchdiff.sh) against the committed BENCH_analyzer.json.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./... 2>&1 | { grep -v '^#' || true; }

echo "== vet filter selftest"
./scripts/check_selftest.sh

echo "== go test -race ./..."
go test -race ./...

# The obs instruments are lock-free by design; hammer them a second time
# under the race detector so a future regression to unsynchronized state
# cannot hide behind a lucky schedule.
echo "== go test -race -count=2 ./internal/obs"
go test -race -count=2 ./internal/obs

# The parallel codec must stay bit-identical to the serial path and the
# pooled encoders race-clean: run the archive differential tests and the
# trace wire/pool tests twice under the race detector so chunk-boundary
# or pool-reuse regressions can't hide behind one lucky schedule.
echo "== go test -race -count=2 ./internal/archive ./internal/trace"
go test -race -count=2 ./internal/archive ./internal/trace

# Profile-repository round trip through the real CLI: archive two runs,
# list/show them, and cross-run diff them.
echo "== archive + diff smoke"
./scripts/archive_smoke.sh

# Crash-consistency gate: the power-cut property test and fleet resume
# tests under -race, the recovery-counter wiring smoke, and a CLI
# corrupt/fsck/salvage round trip.
echo "== crash smoke"
./scripts/crash_smoke.sh

# The streaming analyzer's chunk/duty determinism contract and the
# mini-batch k-means must hold under the race detector; run the stream
# packages twice so a scheduling-dependent divergence can't hide.
echo "== go vet stream packages"
go vet ./internal/core/analyzer ./internal/core/cluster ./internal/repo 2>&1 | { grep -v '^#' || true; }
echo "== go test -race -count=2 ./internal/core/analyzer ./internal/core/cluster"
go test -race -count=2 ./internal/core/analyzer ./internal/core/cluster

# Streaming watch-verb round trip over a real archived run.
echo "== stream smoke"
./scripts/stream_smoke.sh

# Sharded-ingest gate: the contention and migration suites under -race,
# then a CLI legacy->sharded migration plus compaction round trip over a
# real on-disk repository.
echo "== ingest smoke"
./scripts/ingest_smoke.sh

# Cluster-scheduler gate: the determinism/zero-loss/work-conservation
# tests under -race, then a CLI fleet round trip with a per-tenant
# listing, cross-tenant diff, and a bit-identical replay of the
# archived fleet.
echo "== cluster smoke"
./scripts/cluster_smoke.sh

# Replicated-collection gate: the replica placement/failover/lease
# suites under -race, then two real collector replica processes over
# one shared on-disk store with 64 streaming agents, a kill -9 plus
# restart of one replica mid-fleet, and an offline list/fsck audit
# proving zero record loss.
echo "== replicated smoke"
./scripts/replicated_smoke.sh

if [ "${BENCH_GATE:-0}" = "1" ]; then
    echo "== benchmark gate (BENCH_GATE=1)"
    ./scripts/benchdiff.sh
fi

echo "check: OK"
