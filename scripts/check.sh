#!/bin/sh
# Full verification gate: build, vet, and the race-enabled test suite.
# Equivalent to `make check`; exists for environments without make.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "check: OK"
