#!/usr/bin/env bash
# Sharded-ingest smoke: the contention and migration suites under the
# race detector, then a CLI round trip over a real on-disk repository —
# archive runs into a legacy single-manifest layout, migrate it to four
# manifest shards with -shards, compact the small archives into a pack,
# and prove every verb still reads the packed, sharded repository.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== sharded contention + migration + compaction under -race"
go test -race -run \
    'TestShardedContentionZeroLoss64|TestMigrationRoundTrip|TestMigrationPowerCut|TestCompactMergesAndPreservesReads|TestDeletePackedRunRefcountsPack' \
    ./internal/repo

workdir="$(mktemp -d /tmp/ingest_smoke.XXXXXX)"
trap 'rm -rf "$workdir"' EXIT
repodir="$workdir/runs"

bin="$workdir/tpupoint"
go build -o "$bin" ./cmd/tpupoint

echo "== archiving three runs into a legacy single-manifest repository"
for i in 1 2 3; do
    "$bin" -workload dcgan-mnist -steps 60 -archive "$repodir" \
        -run-id "smoke-$i" -label smoke >/dev/null
done
if [ ! -f "$repodir/runs/manifest.json" ]; then
    echo "ingest_smoke.sh: expected legacy runs/manifest.json" >&2
    exit 1
fi

echo "== migrating to 4 manifest shards (-shards 4)"
# Any verb migrates on open; gc keeps everything (-keep 3) but syncs the
# rewritten layout back to disk.
"$bin" -archive "$repodir" -shards 4 -keep 3 runs gc >/dev/null
if [ ! -f "$repodir/runs/.layout" ] || [ ! -f "$repodir/runs/manifest-0.json" ]; then
    echo "ingest_smoke.sh: migration left no sharded layout on disk" >&2
    exit 1
fi
if [ -f "$repodir/runs/manifest.json" ]; then
    echo "ingest_smoke.sh: legacy manifest survived the migration" >&2
    exit 1
fi

echo "== runs list / fsck over the sharded repository"
list="$("$bin" -archive "$repodir" runs list)"
echo "$list"
for i in 1 2 3; do
    echo "$list" | grep -q "smoke-$i"
done
"$bin" -archive "$repodir" runs fsck >/dev/null

echo "== runs compact"
compact_out="$("$bin" -archive "$repodir" runs compact)"
echo "$compact_out"
echo "$compact_out" | grep -q '^packed '
ls "$repodir"/runs/.pack/ | grep -q .

echo "== packed runs still read back"
show_out="$("$bin" -archive "$repodir" runs show smoke-2)"
echo "$show_out" | grep -q 'records:'
"$bin" -archive "$repodir" runs fsck >/dev/null

echo "ingest smoke: OK"
