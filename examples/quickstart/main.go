// Quickstart: the paper's Figure 2 workflow in Go.
//
// Train ResNet-50 on the simulated TPUv2 with TPUPoint-Profiler attached
// in analyzer mode, then run TPUPoint-Analyzer over the recorded profile
// and print the phases it finds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	tpupoint "repro"
)

func main() {
	// estimator = tf.contrib.tpu.TPUEstimator(...)
	s, err := tpupoint.NewSession("resnet-imagenet", tpupoint.Options{
		Version: tpupoint.V2,
		Steps:   400, // shortened demo run
	})
	if err != nil {
		log.Fatal(err)
	}

	// tpprofiler = TP(...); tpprofiler.Start(analyzer=true)
	prof, err := s.StartProfiler(true)
	if err != nil {
		log.Fatal(err)
	}

	// estimator.train(...)
	if err := s.Train(); err != nil {
		log.Fatal(err)
	}

	// tpprofiler.Stop()
	records, err := prof.Stop()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d statistical records over %.1fs of simulated training\n",
		len(records), s.TotalSeconds())
	fmt.Printf("TPU idle %.1f%%, MXU utilization %.1f%%\n\n",
		100*s.IdleFraction(), 100*s.MXUUtilization())

	// Post-execution analysis (records are also in the session bucket;
	// LoadRecords would read them back the offline way).
	rep, err := s.Analyze(records, tpupoint.OLS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OLS at the default 70%% threshold found %d phases; top 3 cover %.1f%% of execution\n",
		len(rep.Phases), 100*rep.CoverageTop3)
	for _, p := range rep.Phases {
		fmt.Printf("  phase %d: %4d steps, %10.1fms total, nearest checkpoint %q\n",
			p.ID, len(p.Steps), p.Total.Milliseconds(), p.Checkpoint)
	}

	fmt.Println("\nmost time-consuming ops of the longest phase:")
	for _, op := range rep.TopTPUOps {
		fmt.Printf("  [tpu]  %-28s x%-7d %10.1fms\n", op.Name, op.Count, op.Total.Milliseconds())
	}
	for _, op := range rep.TopHostOps {
		fmt.Printf("  [host] %-28s x%-7d %10.1fms\n", op.Name, op.Count, op.Total.Milliseconds())
	}
}
