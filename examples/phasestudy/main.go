// Phasestudy: compare the three phase-detection algorithms — k-means,
// DBSCAN, and OLS — on BERT across its four Table I datasets, the way
// Section VI evaluates representativeness.
//
//	go run ./examples/phasestudy
package main

import (
	"fmt"
	"log"

	tpupoint "repro"
)

func main() {
	workloads := []string{"bert-squad", "bert-mrpc", "bert-mnli", "bert-cola"}
	algos := []tpupoint.Algorithm{tpupoint.KMeans, tpupoint.DBSCAN, tpupoint.OLS}

	fmt.Printf("%-12s %-8s %7s %10s %s\n", "dataset", "algo", "phases", "top3-cover", "top TPU op of longest phase")
	for _, name := range workloads {
		s, err := tpupoint.NewSession(name, tpupoint.Options{Steps: 300})
		if err != nil {
			log.Fatal(err)
		}
		prof, err := s.StartProfiler(true)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Train(); err != nil {
			log.Fatal(err)
		}
		records, err := prof.Stop()
		if err != nil {
			log.Fatal(err)
		}
		for _, algo := range algos {
			rep, err := s.Analyze(records, algo)
			if err != nil {
				// Clustering can legitimately exhaust its memory budget
				// on large runs; OLS never does.
				fmt.Printf("%-12s %-8s %s\n", s.Workload().Dataset.Name, algo, err)
				continue
			}
			top := "-"
			if len(rep.TopTPUOps) > 0 {
				top = rep.TopTPUOps[0].Name
			}
			fmt.Printf("%-12s %-8s %7d %9.1f%% %s\n",
				s.Workload().Dataset.Name, algo, len(rep.Phases), 100*rep.CoverageTop3, top)
		}
	}
	fmt.Println("\nObservation 1: every dataset summarizes into a handful of phases.")
	fmt.Println("Observation 2: the top three phases cover nearly all execution time.")
}
