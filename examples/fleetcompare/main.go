// Fleetcompare: the full profile-repository loop in one process — a
// fleet collection server over an in-memory repository, two profiled
// training runs streaming their records in concurrently (the way a
// fleet of training VMs would), and a cross-run diff of the archived
// results.
//
// Each run opens a collection session, sets the session's FleetClient
// as the profiler's record store (it implements profiler.RecordStore),
// trains, and finalizes; the server analyzes the stream, packs it into
// a checksummed archive, and indexes it in the repository. The diff at
// the end aligns the two runs' phases by op-mix signature and reports
// per-phase wall-time, idle, and MXU deltas.
//
//	go run ./examples/fleetcompare
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	tpupoint "repro"
	"repro/internal/core/viz"
	"repro/internal/obs"
	"repro/internal/repo"
	"repro/internal/rpc"
	"repro/internal/storage"
)

func main() {
	// --- collection side: repository + fleet endpoint -------------------
	svc := storage.NewService()
	bucket, err := svc.CreateBucket("fleet-repo")
	if err != nil {
		log.Fatal(err)
	}
	r := repo.New(bucket)
	reg := obs.NewRegistry(64)
	fleet := repo.NewFleet(r, repo.FleetOptions{MaxSessions: 8, Obs: reg})
	srv := rpc.NewServer()
	fleet.Register(srv)
	defer srv.Close()

	// --- fleet side: two concurrent profiled runs -----------------------
	// Same workload on TPUv2 vs TPUv3 — the paper's cross-generation
	// comparison (Table III) as a repository query.
	type job struct {
		runID   string
		version tpupoint.Version
	}
	jobs := []job{{"dcgan-v2", tpupoint.V2}, {"dcgan-v3", tpupoint.V3}}
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			s, err := tpupoint.NewSession("dcgan-mnist", tpupoint.Options{
				Version: j.version, Steps: 120,
			})
			if err != nil {
				log.Fatal(err)
			}
			c := rpc.Pipe(srv) // in-process; a real fleet dials TCP
			defer c.Close()
			fc, err := repo.OpenSession(c, repo.OpenRequest{
				RunID:      j.runID,
				Workload:   s.Workload().Name,
				TPUVersion: j.version.String(),
			})
			if err != nil {
				log.Fatal(err)
			}
			p, err := s.StartProfilerTo(fc) // records stream to the server
			if err != nil {
				log.Fatal(err)
			}
			if err := s.Train(); err != nil {
				log.Fatal(err)
			}
			if _, err := p.Stop(); err != nil {
				log.Fatal(err)
			}
			info, err := fc.Finalize()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("archived %s: %d records, %d bytes\n",
				info.RunID, info.Records, info.Bytes)
		}(j)
	}
	wg.Wait()

	snap := reg.Snapshot()
	fmt.Printf("fleet: %d records in, %d archived, %d runs saved\n",
		snap.Counters["fleet.records.in"], snap.Counters["fleet.records.archived"],
		snap.Counters["fleet.runs.saved"])

	// --- query side: cross-run diff --------------------------------------
	d, err := r.Compare("dcgan-v2", "dcgan-v3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := viz.WriteDiffTable(os.Stdout, d); err != nil {
		log.Fatal(err)
	}
}
