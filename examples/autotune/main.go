// Autotune: run TPUPoint-Optimizer on the naive QANet implementation
// (Section VII-C) and watch it rediscover a sane input pipeline.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	tpupoint "repro"
)

func main() {
	res, err := tpupoint.Optimize("qanet-squad", tpupoint.OptimizeOptions{
		Version: tpupoint.V2,
		Naive:   true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s on %s (naive implementation)\n\n", res.Workload, res.Version)
	fmt.Printf("critical phase detected at step %d; tuning decisions:\n", res.CriticalPhaseStep)
	for _, m := range res.Moves {
		verdict := "rolled back (checkpoint restore)"
		if m.Accepted {
			verdict = "kept"
		}
		fmt.Printf("  %-14s %6d -> %-6d step period %7.1fms -> %7.1fms   %s\n",
			m.Param, m.From, m.To, m.PeriodBefore/1000, m.PeriodAfter/1000, verdict)
	}

	fmt.Printf("\npipeline: %v\n      ->  %v\n", res.InitialParams, res.FinalParams)
	fmt.Printf("speedup:  %.2fx measured on the run (%.2fx projected at full scale)\n",
		res.MeasuredSpeedup, res.ProjectedSpeedup)
	fmt.Printf("idle:     %.1f%% -> %.1f%%\n", 100*res.BaselineIdle, 100*res.OptimizedIdle)
	fmt.Printf("mxu util: %.1f%% -> %.1f%%\n", 100*res.BaselineMXU, 100*res.OptimizedMXU)
}
