// Datasetshift: Observation 6 — the performance bottleneck moves when the
// input dataset changes, even for the same model.
//
// Runs each of the paper's reduced-dataset subjects (QANet on half-SQuAD,
// RetinaNet on half-COCO, ResNet-50 on CIFAR-10) against its reference
// configuration and compares idle time and MXU utilization.
//
//	go run ./examples/datasetshift
package main

import (
	"fmt"
	"log"

	tpupoint "repro"
)

func run(name string, small bool) (idle, mxu float64, dataset string) {
	s, err := tpupoint.NewSession(name, tpupoint.Options{
		Steps:        300,
		SmallDataset: small,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Train(); err != nil {
		log.Fatal(err)
	}
	return s.IdleFraction(), s.MXUUtilization(), s.Workload().Dataset.Name
}

func main() {
	fmt.Printf("%-18s %-14s %10s %10s\n", "model", "dataset", "idle", "mxu util")
	for _, name := range []string{"qanet-squad", "retinanet-coco", "resnet-imagenet"} {
		ri, rm, rd := run(name, false)
		si, sm, sd := run(name, true)
		fmt.Printf("%-18s %-14s %9.1f%% %9.1f%%\n", name, rd, 100*ri, 100*rm)
		fmt.Printf("%-18s %-14s %9.1f%% %9.1f%%   (idle %+.1f pts, mxu %+.1f pts)\n",
			"", sd, 100*si, 100*sm, 100*(si-ri), 100*(sm-rm))
	}
	fmt.Println("\nSmaller inputs starve the same pipeline: idle rises and MXU utilization")
	fmt.Println("falls, with ResNet-50 on CIFAR-10 showing by far the greatest change —")
	fmt.Println("an optimization tuned for one dataset does not carry to another, which is")
	fmt.Println("why the paper argues for dynamic runtime optimization (TPUPoint-Optimizer).")
}
