// Remoteprofiler: the Cloud TPU deployment shape — training serves its
// profile endpoint over TCP (the gRPC path) and a TPUPoint-Profiler in
// another process attaches through a client stub, with a breakpoint that
// stops profiling partway through the run.
//
// The client side uses the resilient transport: a reconnecting client
// that redials with backoff if the link drops, and a profiler configured
// to retry transient failures, mark unrecoverable windows as gaps, and
// report degradation instead of dying.
//
//	go run ./examples/remoteprofiler
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/core/analyzer"
	"repro/internal/core/profiler"
	"repro/internal/estimator"
	"repro/internal/rpc"
	"repro/internal/tpu"
	"repro/internal/workloads"
)

func main() {
	// --- "TPU side": train and serve the profile service over TCP ------
	w := workloads.MustGet("dcgan-cifar10")
	runner, err := estimator.New(w, estimator.Options{Steps: 400})
	if err != nil {
		log.Fatal(err)
	}
	srv := rpc.NewServer()
	runner.ProfileService().Register(srv)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	fmt.Printf("profile service for %s listening on %s\n", w.Name, l.Addr())

	// --- "client side": dial and attach a profiler with a breakpoint ---
	// A ReconnectClient survives dropped links: on transport failure it
	// redials (capped exponential backoff, deterministic jitter) and a
	// circuit breaker converts a dead endpoint into a prompt error.
	addr := l.Addr().String()
	conn, err := rpc.NewReconnectClient(rpc.ReconnectOptions{
		Dial:        func() (net.Conn, error) { return net.Dial("tcp", addr) },
		CallTimeout: 10 * time.Second,
		MaxRetries:  3,
		BaseBackoff: 25 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	// Query the device first, like any tool would.
	raw, err := conn.Call(tpu.MethodStatus, nil)
	if err != nil {
		log.Fatal(err)
	}
	status, err := tpu.UnmarshalStatusResponse(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote device: %s, %d MXUs, %.0f peak TFLOPS\n",
		status.Version, status.MXUs, status.PeakTFLOPS)

	p := profiler.New(&profiler.RPCClient{Conn: conn}, profiler.Options{
		BreakpointStep: 250, // stop profiling here; training continues
		// Resilience: retry transient window failures, record a Gap
		// marker (not a crash) when a window is truly lost, and log
		// degradation as it happens.
		MaxRetries: 3,
		Backoff:    10 * time.Millisecond,
		OnDegraded: func(err error) { log.Printf("profiler degraded: %v", err) },
	})
	if err := p.Start(false); err != nil {
		log.Fatal(err)
	}

	// Training proceeds while the profiler polls over the wire.
	if err := runner.Run(); err != nil {
		log.Fatal(err)
	}
	records, err := p.Stop()
	if err != nil {
		log.Fatal(err)
	}

	rep, err := analyzer.Analyze(w.Name, records, analyzer.OLSAlgo, analyzer.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d records up to the step-250 breakpoint (%d steps seen)\n",
		len(records), rep.Steps)
	fmt.Printf("phases: %d, top-3 cover %.1f%%, window idle %.1f%%\n",
		len(rep.Phases), 100*rep.CoverageTop3, 100*rep.IdleFrac)
	fmt.Printf("training itself ran to completion: %.1fs simulated, %d steps\n",
		runner.TotalTime().Seconds(), len(runner.StepTimings()))
}
