// Package parallel provides the bounded worker pool behind the
// phase-detection hot path (k-means, DBSCAN, PCA, feature extraction).
//
// The central design constraint is determinism: every fan-out partitions
// its input into *fixed-size* chunks whose boundaries depend only on the
// input length — never on the worker count or on scheduling. Workers pull
// chunk indices from a shared counter, write results into per-chunk slots,
// and callers merge those slots sequentially in chunk order. Because
// floating-point reduction grouping is fixed by the chunk boundaries, a
// run with 1 worker, 4 workers, or GOMAXPROCS workers produces
// bit-identical results (verified by the differential tests in
// internal/core/cluster).
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds the number of goroutines a fan-out may use. The zero value
// is unusable; construct with New.
type Pool struct {
	workers int
}

// New returns a pool running at most workers goroutines per fan-out.
// workers <= 0 selects runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's goroutine bound.
func (p *Pool) Workers() int { return p.workers }

// NumChunks returns the number of fixed-size chunks covering [0, n).
// It depends only on n and chunk, never on the worker count.
func NumChunks(n, chunk int) int {
	if n <= 0 {
		return 0
	}
	if chunk <= 0 {
		chunk = 1
	}
	return (n + chunk - 1) / chunk
}

// Run invokes fn(ci, lo, hi) for every chunk [lo, hi) of [0, n), with at
// most p.Workers() invocations in flight. Chunk ci spans
// [ci*chunk, min((ci+1)*chunk, n)).
//
// The first error cancels dispatch of the remaining chunks and is
// returned. Cancelling ctx stops dispatch and returns ctx.Err(). Chunks
// already running are not interrupted; fn may watch ctx itself for finer-
// grained cancellation.
func (p *Pool) Run(ctx context.Context, n, chunk int, fn func(ci, lo, hi int) error) error {
	if chunk <= 0 {
		chunk = 1
	}
	nc := NumChunks(n, chunk)
	if nc == 0 {
		return ctx.Err()
	}
	workers := p.workers
	if workers > nc {
		workers = nc
	}
	if workers <= 1 {
		// Inline fast path: no goroutines, same chunk boundaries.
		for ci := 0; ci < nc; ci++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			lo := ci * chunk
			hi := min(lo+chunk, n)
			if err := fn(ci, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				ci := int(next.Add(1) - 1)
				if ci >= nc {
					return
				}
				lo := ci * chunk
				hi := min(lo+chunk, n)
				if err := fn(ci, lo, hi); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}

// Map runs fn over every chunk of [0, n) and returns the per-chunk
// results indexed by chunk. Merging the slice front to back yields a
// reduction order that is independent of the worker count.
func Map[T any](p *Pool, ctx context.Context, n, chunk int, fn func(ci, lo, hi int) (T, error)) ([]T, error) {
	out := make([]T, NumChunks(n, chunk))
	err := p.Run(ctx, n, chunk, func(ci, lo, hi int) error {
		v, err := fn(ci, lo, hi)
		if err != nil {
			return err
		}
		out[ci] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
