package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestNumChunks(t *testing.T) {
	cases := []struct{ n, chunk, want int }{
		{0, 10, 0},
		{-5, 10, 0},
		{1, 10, 1},
		{10, 10, 1},
		{11, 10, 2},
		{100, 10, 10},
		{7, 0, 7}, // chunk <= 0 coerced to 1
	}
	for _, c := range cases {
		if got := NumChunks(c.n, c.chunk); got != c.want {
			t.Errorf("NumChunks(%d, %d) = %d, want %d", c.n, c.chunk, got, c.want)
		}
	}
}

func TestNewClampsWorkers(t *testing.T) {
	if w := New(0).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(0).Workers() = %d, want GOMAXPROCS", w)
	}
	if w := New(-3).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(-3).Workers() = %d, want GOMAXPROCS", w)
	}
	if w := New(7).Workers(); w != 7 {
		t.Fatalf("New(7).Workers() = %d", w)
	}
}

// TestRunCoversAllIndices: every index in [0, n) is visited exactly once,
// for a spread of worker counts and chunk sizes.
func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, chunk := range []int{1, 3, 64, 1000} {
			n := 777
			hits := make([]int32, n)
			err := New(workers).Run(context.Background(), n, chunk, func(ci, lo, hi int) error {
				if lo != ci*chunk {
					return fmt.Errorf("chunk %d: lo = %d, want %d", ci, lo, ci*chunk)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d chunk=%d: %v", workers, chunk, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d chunk=%d: index %d visited %d times", workers, chunk, i, h)
				}
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	called := false
	err := New(4).Run(context.Background(), 0, 8, func(ci, lo, hi int) error {
		called = true
		return nil
	})
	if err != nil || called {
		t.Fatalf("empty run: err=%v called=%v", err, called)
	}
}

func TestRunPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 8} {
		var calls atomic.Int64
		err := New(workers).Run(context.Background(), 1000, 1, func(ci, lo, hi int) error {
			calls.Add(1)
			if ci == 5 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		// The error cancels remaining dispatch: far fewer than n calls.
		if workers > 1 && calls.Load() == 1000 {
			t.Fatalf("workers=%d: error did not stop dispatch", workers)
		}
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err := New(4).Run(ctx, 100000, 1, func(ci, lo, hi int) error {
		if calls.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() == 100000 {
		t.Fatal("cancellation did not stop dispatch")
	}
}

func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := New(1).Run(ctx, 10, 1, func(ci, lo, hi int) error {
		t.Error("fn called after pre-cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

// TestMapDeterministicOrder: per-chunk results land at their chunk index,
// so a front-to-back merge is the same for any worker count.
func TestMapDeterministicOrder(t *testing.T) {
	n, chunk := 1000, 37
	var want []int
	for _, workers := range []int{1, 2, 5, 13} {
		got, err := Map(New(workers), context.Background(), n, chunk, func(ci, lo, hi int) (int, error) {
			sum := 0
			for i := lo; i < hi; i++ {
				sum += i
			}
			return sum, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d chunks, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: chunk %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(New(3), context.Background(), 100, 10, func(ci, lo, hi int) (int, error) {
		if ci == 3 {
			return 0, boom
		}
		return 1, nil
	})
	if !errors.Is(err, boom) || out != nil {
		t.Fatalf("out=%v err=%v", out, err)
	}
}
