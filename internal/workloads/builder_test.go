package workloads

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

func TestDenseLayerStructure(t *testing.T) {
	b := newBuilder("t", true)
	x := b.input(tensor.BFloat16, 8, 32)
	out := b.dense(x, 32, 16, graph.OpRelu)
	if !out.Out.Shape.Equal(tensor.NewShape(8, 16)) {
		t.Fatalf("dense output shape %v", out.Out.Shape)
	}
	// Forward: MatMul + Add + Relu; weights: W and bias.
	counts := opCounts(b.g)
	if counts[graph.OpMatMul] != 1 || counts[graph.OpAdd] != 1 || counts[graph.OpRelu] != 1 {
		t.Fatalf("forward ops: %v", counts)
	}
	if counts[graph.OpConst] != 2 {
		t.Fatalf("weights: %v", counts)
	}
	// FLOPs on the matmul are 2*batch*in*out.
	var mmFlops int64
	for _, n := range b.g.Nodes() {
		if n.Op == graph.OpMatMul {
			mmFlops = n.FLOPs
		}
	}
	if want := int64(2 * 8 * 32 * 16); mmFlops != want {
		t.Fatalf("matmul FLOPs = %d, want %d", mmFlops, want)
	}
	// Backward records exist but are not yet materialized.
	if len(b.backlog) == 0 {
		t.Fatal("no gradient records for train builder")
	}
	preBackward := b.g.Len()
	b.backward(out)
	if b.g.Len() <= preBackward {
		t.Fatal("backward added no ops")
	}
}

func TestEvalBuilderRecordsNoGrads(t *testing.T) {
	b := newBuilder("t", false)
	x := b.input(tensor.BFloat16, 4, 8)
	b.dense(x, 8, 4, "")
	if len(b.backlog) != 0 {
		t.Fatalf("eval builder recorded %d gradients", len(b.backlog))
	}
	n := b.g.Len()
	b.backward(nil) // no-op for eval graphs
	if b.g.Len() != n {
		t.Fatal("backward mutated an eval graph")
	}
}

func TestConvBlockStructure(t *testing.T) {
	b := newBuilder("t", true)
	x := b.input(tensor.BFloat16, 2, 16, 16, 3)
	out := b.conv(x, 3, 8, 2, true)
	if !out.Out.Shape.Equal(tensor.NewShape(2, 8, 8, 8)) {
		t.Fatalf("conv output shape %v", out.Out.Shape)
	}
	counts := opCounts(b.g)
	if counts[graph.OpConv2D] != 1 || counts[graph.OpFusedBN] != 1 || counts[graph.OpRelu] != 1 {
		t.Fatalf("conv block ops: %v", counts)
	}
	// Gradients queue conv backward passes.
	foundF, foundI := false, false
	for _, r := range b.backlog {
		switch r.op {
		case graph.OpConv2DBackF:
			foundF = true
		case graph.OpConv2DBackI:
			foundI = true
		}
	}
	if !foundF || !foundI {
		t.Fatal("conv gradients not recorded")
	}
}

func TestConvMinimumSpatialExtent(t *testing.T) {
	b := newBuilder("t", false)
	x := b.input(tensor.BFloat16, 1, 2, 2, 4)
	out := b.conv(x, 3, 8, 4, false) // stride larger than extent
	if out.Out.Shape[1] < 1 || out.Out.Shape[2] < 1 {
		t.Fatalf("conv collapsed to zero extent: %v", out.Out.Shape)
	}
}

func TestAttentionStructure(t *testing.T) {
	b := newBuilder("t", true)
	x := b.input(tensor.BFloat16, 2, 16, 64)
	out := b.attention(x, 4)
	if !out.Out.Shape.Equal(tensor.NewShape(2, 16, 64)) {
		t.Fatalf("attention output shape %v", out.Out.Shape)
	}
	counts := opCounts(b.g)
	// Q/K/V + scores + context + output projection = 6 matmuls.
	if counts[graph.OpMatMul] != 6 {
		t.Fatalf("attention matmuls = %d, want 6", counts[graph.OpMatMul])
	}
	if counts[graph.OpSoftmax] != 1 {
		t.Fatalf("softmax = %d", counts[graph.OpSoftmax])
	}
	// Head split/merge produces reshape+transpose traffic.
	if counts[graph.OpReshape] < 4 || counts[graph.OpTranspose] < 4 {
		t.Fatalf("attention layout ops: %v", counts)
	}
	if counts[graph.OpLayerNorm] != 1 {
		t.Fatalf("layer norms = %d", counts[graph.OpLayerNorm])
	}
}

func TestFFNStructure(t *testing.T) {
	b := newBuilder("t", true)
	x := b.input(tensor.BFloat16, 2, 8, 32)
	out := b.ffn(x, 128)
	if !out.Out.Shape.Equal(tensor.NewShape(2, 8, 32)) {
		t.Fatalf("ffn output shape %v", out.Out.Shape)
	}
	counts := opCounts(b.g)
	if counts[graph.OpMatMul] != 2 || counts[graph.OpTanh] != 1 {
		t.Fatalf("ffn ops: %v", counts)
	}
}

func TestBackwardAppendsOptimizerTail(t *testing.T) {
	b := newBuilder("t", true)
	x := b.input(tensor.BFloat16, 4, 8)
	out := b.dense(x, 8, 4, "")
	l := b.loss(out)
	b.backward(l)
	counts := opCounts(b.g)
	if counts[graph.OpAllReduce] != 1 {
		t.Fatalf("all-reduce = %d", counts[graph.OpAllReduce])
	}
	if counts[graph.OpAdamUpdate] != 4 {
		t.Fatalf("adam updates = %d, want 4 groups", counts[graph.OpAdamUpdate])
	}
	if counts[graph.OpL2Loss] != 1 {
		t.Fatalf("l2 loss = %d", counts[graph.OpL2Loss])
	}
	if err := b.g.Validate(); err != nil {
		t.Fatalf("backward graph invalid: %v", err)
	}
}

func TestEvalMetricsOps(t *testing.T) {
	b := newBuilder("t", false)
	x := b.input(tensor.BFloat16, 4, 8)
	logits := b.dense(x, 8, 10, "")
	b.evalMetrics(logits)
	counts := opCounts(b.g)
	for _, op := range []string{graph.OpArgMax, graph.OpEqual, graph.OpMean, graph.OpTopK, graph.OpInTopK} {
		if counts[op] == 0 {
			t.Fatalf("eval metrics missing %s: %v", op, counts)
		}
	}
}

func TestWeightBytesAccounting(t *testing.T) {
	b := newBuilder("t", true)
	b.weight(10, 10) // 100 bf16 = 200 bytes
	b.weight(5)      // 5 bf16 = 10 bytes
	if b.weightBytes != 210 {
		t.Fatalf("weightBytes = %d, want 210", b.weightBytes)
	}
}

func opCounts(g *graph.Graph) map[string]int {
	counts := make(map[string]int)
	for _, n := range g.Nodes() {
		counts[n.Op]++
	}
	return counts
}
