package workloads

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/host"
	"repro/internal/tpu"
	"repro/internal/trace"
	"repro/internal/xla"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 9 {
		t.Fatalf("registry has %d workloads, want 9 (Table I)", len(names))
	}
	for _, name := range names {
		w, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		if w.TrainGraph == nil || w.EvalGraph == nil {
			t.Fatalf("%s missing graphs", name)
		}
		if err := w.TrainGraph.Validate(); err != nil {
			t.Fatalf("%s train graph: %v", name, err)
		}
		if err := w.EvalGraph.Validate(); err != nil {
			t.Fatalf("%s eval graph: %v", name, err)
		}
		if len(w.ParamsDesc) == 0 {
			t.Fatalf("%s has no Table I parameters", name)
		}
		if w.Input.Records < int64(4*w.BatchSize) {
			t.Fatalf("%s effective records too small: %d", name, w.Input.Records)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("alexnet-cifar"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestAllGraphsCompileAndFit(t *testing.T) {
	for _, name := range Names() {
		w := MustGet(name)
		for _, g := range []*graph.Graph{w.TrainGraph, w.EvalGraph} {
			prog, err := xla.Compile(g)
			if err != nil {
				t.Fatalf("%s %s: %v", name, g.Name(), err)
			}
			for _, v := range []tpu.Version{tpu.V2, tpu.V3} {
				d := tpu.NewDevice(tpu.NewChipSpec(v), 0)
				if err := d.LoadProgram(prog); err != nil {
					t.Fatalf("%s does not fit %v: %v", name, v, err)
				}
			}
		}
	}
}

func TestTrainGraphsHaveFusionAndTableIIOps(t *testing.T) {
	for _, name := range Names() {
		w := MustGet(name)
		prog, err := xla.Compile(w.TrainGraph)
		if err != nil {
			t.Fatal(err)
		}
		if prog.CountOp("fusion") == 0 {
			t.Errorf("%s: no fusion instructions", name)
		}
		if prog.CountOp(graph.OpReshape) == 0 {
			t.Errorf("%s: no standalone Reshape instructions", name)
		}
	}
}

func TestTrainHasBackwardEvalDoesNot(t *testing.T) {
	w := MustGet("bert-squad")
	countOp := func(g *graph.Graph, op string) int {
		n := 0
		for _, nd := range g.Nodes() {
			if nd.Op == op {
				n++
			}
		}
		return n
	}
	if countOp(w.TrainGraph, graph.OpAdamUpdate) == 0 {
		t.Error("train graph missing optimizer updates")
	}
	if countOp(w.TrainGraph, graph.OpAllReduce) == 0 {
		t.Error("train graph missing all-reduce")
	}
	if countOp(w.EvalGraph, graph.OpAdamUpdate) != 0 {
		t.Error("eval graph has optimizer updates")
	}
	if countOp(w.EvalGraph, graph.OpArgMax) == 0 {
		t.Error("eval graph missing metric ops")
	}
	if countOp(w.TrainGraph, graph.OpArgMax) != 0 {
		t.Error("train graph has eval metric ops")
	}
}

func TestEvalOpSetDistinctEnough(t *testing.T) {
	// OLS (Equation 1) must see eval steps as a different phase at the
	// 70% default threshold: |train∩eval| / min(|train|,|eval|) < 0.7
	// over TPU op-name sets.
	for _, name := range Names() {
		w := MustGet(name)
		setOf := func(g *graph.Graph) map[string]bool {
			prog, err := xla.Compile(g)
			if err != nil {
				t.Fatal(err)
			}
			s := map[string]bool{"InfeedDequeueTuple": true, "Infeed": true}
			for _, in := range prog.Instructions {
				s[in.Op] = true
			}
			if prog.OutfeedBytes > 0 {
				s["Outfeed"] = true
			}
			return s
		}
		train, eval := setOf(w.TrainGraph), setOf(w.EvalGraph)
		inter := 0
		for op := range eval {
			if train[op] {
				inter++
			}
		}
		min := len(eval)
		if len(train) < min {
			min = len(train)
		}
		sim := float64(inter) / float64(min)
		if sim >= 0.7 {
			t.Errorf("%s: train/eval op-set similarity %.2f >= 0.70 (train %d, eval %d, shared %d)",
				name, sim, len(train), len(eval), inter)
		}
	}
}

func TestCalibrationHitsIdleTargets(t *testing.T) {
	// The tuned pipeline's steady-state over the v2 step time should
	// land within a few points of the per-workload target.
	for _, name := range Names() {
		w := MustGet(name)
		prog, err := xla.Compile(w.TrainGraph)
		if err != nil {
			t.Fatal(err)
		}
		dev := tpu.NewDevice(tpu.NewChipSpec(tpu.V2), 0)
		if err := dev.LoadProgram(prog); err != nil {
			t.Fatal(err)
		}
		h, err := host.New(host.DefaultSpec(), w.HostParams, w.Input, 1)
		if err != nil {
			t.Fatal(err)
		}
		c := float64(dev.StepBusyTime())
		// Mean step period: pipeline steady state plus the amortized
		// epoch-boundary stall.
		spe := float64(w.Input.Records) / float64(w.BatchSize)
		mean := h.SteadyStateBatchUs() + h.EpochStallUs()/spe
		impliedIdle := 1 - c/mean
		if impliedIdle < 0 {
			impliedIdle = 0
		}
		if diff := impliedIdle - w.TargetIdleV2; diff > 0.05 || diff < -0.05 {
			t.Errorf("%s implied idle %.3f vs target %.3f", name, impliedIdle, w.TargetIdleV2)
		}
	}
}

func TestNaiveVariant(t *testing.T) {
	w := MustGet("qanet-squad")
	n := w.Naive()
	if n.HostParams != host.NaiveParams() {
		t.Fatal("naive variant keeps tuned params")
	}
	if n.Name != "qanet-squad-naive" {
		t.Fatalf("naive name %q", n.Name)
	}
	// Original untouched.
	if w.HostParams != host.DefaultParams() {
		t.Fatal("Naive mutated the original")
	}
	// Naive pipeline is materially slower.
	hTuned, _ := host.New(host.DefaultSpec(), w.HostParams, w.Input, 1)
	hNaive, _ := host.New(host.DefaultSpec(), n.HostParams, n.Input, 1)
	if hNaive.SteadyStateBatchUs() < 1.3*hTuned.SteadyStateBatchUs() {
		t.Fatalf("naive steady state %.0f not much worse than tuned %.0f",
			hNaive.SteadyStateBatchUs(), hTuned.SteadyStateBatchUs())
	}
}

func TestSmallVariants(t *testing.T) {
	for _, name := range []string{"qanet-squad", "retinanet-coco"} {
		w := MustGet(name)
		s, err := w.Small()
		if err != nil {
			t.Fatal(err)
		}
		if s.Input.Records >= w.Input.Records {
			t.Errorf("%s small variant not smaller: %d vs %d", name, s.Input.Records, w.Input.Records)
		}
	}
	// ResNet swaps to CIFAR-10 with a rebuilt 32px graph.
	w := MustGet("resnet-imagenet")
	s, err := w.Small()
	if err != nil {
		t.Fatal(err)
	}
	if s.Dataset.Name != "cifar10" {
		t.Fatalf("resnet small dataset = %s", s.Dataset.Name)
	}
	prog, err := xla.Compile(s.TrainGraph)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := xla.Compile(w.TrainGraph)
	if prog.TotalFLOPs() >= orig.TotalFLOPs() {
		t.Fatal("CIFAR-10 ResNet not cheaper than ImageNet ResNet")
	}
	if prog.InfeedBytes >= orig.InfeedBytes {
		t.Fatal("CIFAR-10 ResNet infeed not smaller")
	}
}

func TestWeightFootprints(t *testing.T) {
	// Sanity-check parameter sizes: BERT-base ≈ 110M params, ResNet-50 ≈
	// 25M params (bf16 → bytes = 2×params). Wide tolerances — the models
	// are simplified — but orders of magnitude must hold.
	cases := map[string][2]float64{
		"bert-squad":      {80e6, 350e6},
		"resnet-imagenet": {30e6, 150e6},
	}
	for name, bounds := range cases {
		w := MustGet(name)
		prog, err := xla.Compile(w.TrainGraph)
		if err != nil {
			t.Fatal(err)
		}
		wb := float64(prog.WeightBytes)
		if wb < bounds[0] || wb > bounds[1] {
			t.Errorf("%s weight bytes = %.0fMB, want in [%.0f, %.0f]MB",
				name, wb/1e6, bounds[0]/1e6, bounds[1]/1e6)
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a, b := MustGet("dcgan-cifar10"), MustGet("dcgan-cifar10")
	if a.TrainGraph.Len() != b.TrainGraph.Len() {
		t.Fatal("graph construction not deterministic")
	}
	if a.Input != b.Input {
		t.Fatalf("input calibration not deterministic: %+v vs %+v", a.Input, b.Input)
	}
	if a.Seed != b.Seed {
		t.Fatal("seeds differ")
	}
}

func TestGraphDevicePlacement(t *testing.T) {
	for _, name := range Names() {
		w := MustGet(name)
		for _, n := range w.TrainGraph.Nodes() {
			if n.Device != trace.TPU {
				t.Fatalf("%s: node %s on %v; step graphs are TPU partitions", name, n.Name, n.Device)
			}
		}
	}
}

func BenchmarkBuildBERT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		buildBERT(true)
	}
}

func BenchmarkCompileResNet(b *testing.B) {
	g := buildResNet(true, 224, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xla.Compile(g); err != nil {
			b.Fatal(err)
		}
	}
}
