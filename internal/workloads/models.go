package workloads

import (
	"repro/internal/graph"
	"repro/internal/tensor"
)

// Model step-graph builders. Dimensions follow the public configurations
// of the Table I models; FLOP counts are derived from the shapes, so the
// compute-to-traffic ratios that drive the timing model are real.

// buildBERT builds one BERT-base training or eval step:
// batch 32 × seq 128, 12 transformer layers, d_model 768, 12 heads.
func buildBERT(train bool) *graph.Graph {
	const (
		batch  = 32
		seq    = 128
		dm     = 768
		heads  = 12
		dff    = 3072
		layers = 12
		vocab  = 30522
	)
	b := newBuilder("bert", train)
	ids := b.input(tensor.Int32, batch, seq)
	emb := b.weight(vocab/64, dm) // sharded embedding slice per core
	hSpec := tensor.NewSpec(tensor.BFloat16, batch, seq, dm)
	h := b.add(graph.OpGatherV2, hSpec, 0, ids, emb)
	h.Bytes = hSpec.Bytes()
	cur := b.add(graph.OpLayerNorm, hSpec, 6*hSpec.Shape.Elements(), h)
	for i := 0; i < layers; i++ {
		cur = b.attention(cur, heads)
		cur = b.ffn(cur, dff)
	}
	// Pool the [CLS] position and classify.
	pooled := b.add(graph.OpReshape, tensor.NewSpec(tensor.BFloat16, batch, dm), 0, cur)
	dn := b.dense(pooled, dm, dm, graph.OpTanh)
	logits := b.dense(dn, dm, 2, "")
	if train {
		l := b.loss(logits)
		b.backward(l)
	} else {
		b.evalMetrics(logits)
	}
	return b.g
}

// buildDCGAN builds one DCGAN training step (generator + discriminator
// update) for the given square image size and channels.
// batch 1024, per Table I.
func buildDCGAN(train bool, img, channels int) *graph.Graph {
	const batch = 1024
	b := newBuilder("dcgan", train)

	// Generator: noise → dense → stacked (transposed) convolutions.
	noise := b.input(tensor.Float32, batch, 100)
	g := b.dense(noise, 100, 4*4*256, graph.OpRelu)
	gImg := b.add(graph.OpReshape, tensor.NewSpec(tensor.BFloat16, batch, 4, 4, 256), 0, g)
	cur := gImg
	// Upsample 4→8→16→img via stride-1 convs on the upsampled grid
	// (cost-equivalent to conv transpose).
	size := 4
	c := 256
	for size < img {
		size *= 2
		next := c / 2
		if next < channels {
			next = channels
		}
		up := b.add(graph.OpReshape, tensor.NewSpec(tensor.BFloat16, batch, size, size, c), 0, cur)
		cur = b.conv(up, 4, next, 1, size < img)
		c = next
	}
	gen := b.add(graph.OpTanh, cur.Out, cur.Out.Shape.Elements(), cur)

	// Discriminator on generated (and implicitly real) images.
	d := gen
	dc := 64
	for sz := img; sz > 4; sz /= 2 {
		d = b.conv(d, 4, dc, 2, true)
		dc *= 2
	}
	flatDim := d.Out.Shape[1] * d.Out.Shape[2] * d.Out.Shape[3]
	dFlat := b.add(graph.OpReshape, tensor.NewSpec(tensor.BFloat16, batch, flatDim), 0, d)
	dLogit := b.dense(dFlat, flatDim, 1, "")
	if train {
		l := b.add(graph.OpSigmoidCE, tensor.NewSpec(tensor.Float32, 1), 8*int64(batch), dLogit)
		b.backward(l)
	} else {
		b.evalMetrics(dLogit)
	}
	return b.g
}

// buildQANet builds one QANet step: batch 32, context length 400,
// d_model 128, 8 heads, 7 convolution+attention encoder blocks.
func buildQANet(train bool) *graph.Graph {
	const (
		batch  = 32
		seq    = 400
		dm     = 128
		heads  = 8
		blocks = 7
	)
	b := newBuilder("qanet", train)
	ids := b.input(tensor.Int32, batch, seq)
	emb := b.weight(4096, dm)
	hSpec := tensor.NewSpec(tensor.BFloat16, batch, seq, dm)
	h := b.add(graph.OpGatherV2, hSpec, 0, ids, emb)
	h.Bytes = hSpec.Bytes()
	cur := b.add(graph.OpLayerNorm, hSpec, 6*hSpec.Shape.Elements(), h)
	for i := 0; i < blocks; i++ {
		// Separable convolution over the sequence (as 1-D conv cost).
		w := b.weight(7, dm)
		convFlops := int64(2) * batch * seq * 7 * dm * 2
		cv := b.add(graph.OpConv2D, hSpec, convFlops, cur, w)
		b.recordGrad(graph.OpConv2DBackF, w.Out, convFlops, cv)
		b.recordGrad(graph.OpConv2DBackI, hSpec, convFlops, cv)
		cur = b.add(graph.OpRelu, hSpec, hSpec.Shape.Elements(), cv)
		cur = b.attention(cur, heads)
		cur = b.ffn(cur, dm*4)
	}
	// Start/end span pointers.
	flat := b.add(graph.OpReshape, tensor.NewSpec(tensor.BFloat16, batch, seq*dm), 0, cur)
	logits := b.dense(flat, seq*dm, seq, "")
	if train {
		l := b.loss(logits)
		b.backward(l)
	} else {
		b.evalMetrics(logits)
	}
	return b.g
}

// residualStage appends n bottleneck blocks (1×1, 3×3, 1×1) at the given
// output channel count; the first block downsamples by stride.
func residualStage(b *builder, x *graph.Node, n, cout, stride int) *graph.Node {
	// Entering a stage changes the channel count/spatial extent, which on
	// a TPU forces a tiled-layout realignment — the Reshape/Transpose
	// traffic that Table II reports for the conv workloads.
	cur := b.add(graph.OpReshape, x.Out, 0, x)
	cur = b.add(graph.OpTranspose, cur.Out, 0, cur)
	for i := 0; i < n; i++ {
		s := 1
		if i == 0 {
			s = stride
		}
		mid := cout / 4
		c1 := b.conv(cur, 1, mid, s, true)
		c2 := b.conv(c1, 3, mid, 1, true)
		c3 := b.conv(c2, 1, cout, 1, true)
		cur = b.add(graph.OpAdd, c3.Out, c3.Out.Shape.Elements(), c3)
	}
	return cur
}

// buildResNet builds one ResNet-50 step at the given image size and batch.
func buildResNet(train bool, img, batch int) *graph.Graph {
	b := newBuilder("resnet", train)
	x := b.input(tensor.Float32, batch, img, img, 3)
	xb := b.add(graph.OpCast, tensor.NewSpec(tensor.BFloat16, batch, img, img, 3), x.Out.Shape.Elements(), x)
	stem := b.conv(xb, 7, 64, 2, true)
	pooled := b.add(graph.OpMaximum, tensor.NewSpec(tensor.BFloat16, batch, img/4, img/4, 64),
		stem.Out.Shape.Elements(), stem)
	s1 := residualStage(b, pooled, 3, 256, 1)
	s2 := residualStage(b, s1, 4, 512, 2)
	s3 := residualStage(b, s2, 6, 1024, 2)
	s4 := residualStage(b, s3, 3, 2048, 2)
	gap := b.add(graph.OpMean, tensor.NewSpec(tensor.BFloat16, batch, 2048),
		s4.Out.Shape.Elements(), s4)
	logits := b.dense(gap, 2048, 1000, "")
	if train {
		l := b.loss(logits)
		b.backward(l)
	} else {
		b.evalMetrics(logits)
	}
	return b.g
}

// buildRetinaNet builds one RetinaNet step: ResNet-50 backbone at 640px,
// a feature pyramid, and the shared class/box heads over 5 levels.
func buildRetinaNet(train bool) *graph.Graph {
	const (
		batch = 64
		img   = 640
	)
	b := newBuilder("retinanet", train)
	x := b.input(tensor.Float32, batch, img, img, 3)
	xb := b.add(graph.OpCast, tensor.NewSpec(tensor.BFloat16, batch, img, img, 3), x.Out.Shape.Elements(), x)
	stem := b.conv(xb, 7, 64, 2, true)
	pooled := b.add(graph.OpMaximum, tensor.NewSpec(tensor.BFloat16, batch, img/4, img/4, 64),
		stem.Out.Shape.Elements(), stem)
	c2 := residualStage(b, pooled, 3, 256, 1)
	c3 := residualStage(b, c2, 4, 512, 2)
	c4 := residualStage(b, c3, 6, 1024, 2)
	c5 := residualStage(b, c4, 3, 2048, 2)

	// FPN lateral 1×1 convs + heads at each level.
	levels := []*graph.Node{c3, c4, c5}
	for _, lv := range levels {
		lat := b.conv(lv, 1, 256, 1, false)
		// Class and box subnets: 4 convs each plus the prediction conv.
		cls := lat
		box := lat
		for i := 0; i < 4; i++ {
			cls = b.conv(cls, 3, 256, 1, false)
			box = b.conv(box, 3, 256, 1, false)
		}
		b.conv(cls, 3, 9*90, 1, false) // 9 anchors × 90 classes
		b.conv(box, 3, 9*4, 1, false)
	}
	scalar := tensor.NewSpec(tensor.Float32, 1)
	if train {
		// Focal loss over all anchors.
		l := b.add(graph.OpSigmoidCE, scalar, int64(batch)*1_000_000, b.g.Nodes()[b.g.Len()-1])
		b.backward(l)
	} else {
		// Detection post-processing distinguishes eval steps.
		last := b.g.Nodes()[b.g.Len()-1]
		top := b.add(graph.OpTopK, tensor.NewSpec(tensor.Float32, batch, 100), int64(batch)*100_000, last)
		nms := b.add(graph.OpNMS, tensor.NewSpec(tensor.Int32, batch, 100), int64(batch)*100_000, top)
		cc := b.add(graph.OpConcat, tensor.NewSpec(tensor.Float32, batch, 100, 6), 0, nms)
		b.add(graph.OpMean, scalar, int64(batch), cc)
	}
	return b.g
}
