// Package workloads defines the nine model/dataset pairs of the paper's
// Table I as runnable simulation specs: a step graph for training and one
// for evaluation, the input-pipeline description, the default training
// parameters, and the run schedule (eval cadence, checkpoints, summaries).
//
// Scaling substitution: the paper trains to completion (e.g. 112,590 steps
// for ResNet); the simulation compresses each run to TrainSteps steps and
// scales the dataset's record count by the same factor, so the *epoch
// structure* — how often the input pipeline hits an epoch boundary — is
// preserved. PaperSteps records the original count.
//
// Calibration substitution: per-workload host preprocessing costs
// (SerialUsPerBatch, ExtraDecodeUsPerRecord) are solved at construction so
// that the tuned pipeline's steady-state batch latency over the TPUv2
// step-compute time reproduces the per-workload TPUv2 idle fractions of
// the paper's Figure 10. Everything else — TPUv3 behaviour, dataset-size
// effects, naive-parameter behaviour, optimizer gains — is emergent: those
// runs reuse the same calibrated costs with only the generation, dataset,
// or pipeline parameters changed.
package workloads

import (
	"fmt"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/host"
	"repro/internal/tpu"
	"repro/internal/xla"
)

// Workload is a fully specified, runnable model/dataset pair.
type Workload struct {
	Name    string // registry key, e.g. "bert-mrpc"
	Model   string // e.g. "BERT"
	Task    string // Table I "Workload Type"
	Dataset datasets.Dataset

	BatchSize  int
	TrainSteps int   // simulated steps
	PaperSteps int64 // steps the paper's full training runs

	EvalEvery         int // run an eval block every N train steps
	EvalSteps         int // steps per eval block
	CheckpointEvery   int
	SummaryEvery      int
	IterationsPerLoop int

	// NoiseP is the per-step probability of each optional host
	// bookkeeping op (see host.StepNoise).
	NoiseP float64

	// TargetIdleV2 is the calibration target for the tuned pipeline on
	// TPUv2 (Figure 10's per-workload idle fractions).
	TargetIdleV2 float64

	// ParamsDesc reproduces Table I's "Default Training Parameters".
	ParamsDesc []string

	TrainGraph *graph.Graph
	EvalGraph  *graph.Graph
	Input      host.InputSpec
	HostParams host.Params
	HostSpec   host.Spec // host VM driving the run (DefaultSpec unless overridden)
	Seed       uint64
}

// Spec returns the workload's host spec, falling back to the default when
// the field was left zero (hand-constructed Workload values). Everything
// that reasons about the host — calibration, the estimator, the
// optimizer's clamping — must go through this so they can never disagree.
func (w *Workload) Spec() host.Spec {
	if w.HostSpec == (host.Spec{}) {
		return host.DefaultSpec()
	}
	return w.HostSpec
}

// spec is the static registry entry; Get instantiates graphs from it.
type spec struct {
	model, task  string
	dataset      string
	batch        int
	trainSteps   int
	paperSteps   int64
	targetIdle   float64
	noiseP       float64
	paramsDesc   []string
	buildTrain   func() *graph.Graph
	buildEval    func() *graph.Graph
	decodedBytes int64 // override dataset default when models resize inputs
}

var registry = map[string]spec{
	"bert-squad": {
		model: "BERT", task: "Natural Language", dataset: "squad",
		batch: 32, trainSteps: 600, paperSteps: 8211, // 3 epochs
		targetIdle: 0.34, noiseP: 0.30,
		paramsDesc: []string{"max seq length: 128", "train batch size: 32", "learning rate: 2e-5", "num train epochs: 3"},
		buildTrain: func() *graph.Graph { return buildBERT(true) },
		buildEval:  func() *graph.Graph { return buildBERT(false) },
	},
	"bert-mrpc": {
		model: "BERT", task: "Natural Language", dataset: "mrpc",
		batch: 32, trainSteps: 350, paperSteps: 343,
		targetIdle: 0.42, noiseP: 0.30,
		paramsDesc: []string{"max seq length: 128", "train batch size: 32", "learning rate: 2e-5", "num train epochs: 3"},
		buildTrain: func() *graph.Graph { return buildBERT(true) },
		buildEval:  func() *graph.Graph { return buildBERT(false) },
	},
	"bert-mnli": {
		model: "BERT", task: "Natural Language", dataset: "mnli",
		batch: 32, trainSteps: 600, paperSteps: 36815,
		targetIdle: 0.36, noiseP: 0.30,
		paramsDesc: []string{"max seq length: 128", "train batch size: 32", "learning rate: 2e-5", "num train epochs: 3"},
		buildTrain: func() *graph.Graph { return buildBERT(true) },
		buildEval:  func() *graph.Graph { return buildBERT(false) },
	},
	"bert-cola": {
		model: "BERT", task: "Natural Language", dataset: "cola",
		batch: 32, trainSteps: 600, paperSteps: 801,
		targetIdle: 0.44, noiseP: 0.30,
		paramsDesc: []string{"max seq length: 128", "train batch size: 32", "learning rate: 2e-5", "num train epochs: 3"},
		buildTrain: func() *graph.Graph { return buildBERT(true) },
		buildEval:  func() *graph.Graph { return buildBERT(false) },
	},
	"dcgan-cifar10": {
		model: "DCGAN", task: "Image Generation", dataset: "cifar10",
		batch: 1024, trainSteps: 600, paperSteps: 10000,
		targetIdle: 0.52, noiseP: 0.18,
		paramsDesc: []string{"batch size: 1024", "num shards: 8", "train steps: 10000", "train steps per eval: 1000", "iterations per loop: 100", "learning rate: 0.0002"},
		buildTrain: func() *graph.Graph { return buildDCGAN(true, 32, 3) },
		buildEval:  func() *graph.Graph { return buildDCGAN(false, 32, 3) },
	},
	"dcgan-mnist": {
		model: "DCGAN", task: "Image Generation", dataset: "mnist",
		batch: 1024, trainSteps: 600, paperSteps: 10000,
		targetIdle: 0.56, noiseP: 0.18,
		paramsDesc: []string{"batch size: 1024", "num shards: 8", "train steps: 10000", "train steps per eval: 1000", "iterations per loop: 100", "learning rate: 0.0002"},
		buildTrain: func() *graph.Graph { return buildDCGAN(true, 32, 1) },
		buildEval:  func() *graph.Graph { return buildDCGAN(false, 32, 1) },
		// MNIST 28×28 padded to 32×32 for the conv stack.
		decodedBytes: 32 * 32 * 1 * 4,
	},
	"qanet-squad": {
		model: "QANet", task: "Q/A Natural Language", dataset: "squad",
		batch: 32, trainSteps: 700, paperSteps: 100000,
		targetIdle: 0.40, noiseP: 0.30,
		paramsDesc: []string{"train batch size: 32", "steps per epoch: 20000", "num epochs: 5"},
		buildTrain: func() *graph.Graph { return buildQANet(true) },
		buildEval:  func() *graph.Graph { return buildQANet(false) },
		// QANet uses context length 400 (ids + char features).
		decodedBytes: 400*4*2 + 400*16,
	},
	"retinanet-coco": {
		model: "RetinaNet", task: "Object Detection", dataset: "coco",
		batch: 64, trainSteps: 900, paperSteps: 28125, // 15 epochs × 120k/64
		targetIdle: 0.27, noiseP: 0.30,
		paramsDesc: []string{"train batch size: 64", "image size: 640", "num epochs: 15", "num examples per epoch: 120k"},
		buildTrain: func() *graph.Graph { return buildRetinaNet(true) },
		buildEval:  func() *graph.Graph { return buildRetinaNet(false) },
	},
	"resnet-imagenet": {
		model: "ResNet-50", task: "Image Classification", dataset: "imagenet",
		batch: 1024, trainSteps: 1600, paperSteps: 112590,
		targetIdle: 0.19, noiseP: 0.30,
		paramsDesc: []string{"Default Network Depth: 50", "Train Steps: 112590", "Default Batch Size: 1024"},
		buildTrain: func() *graph.Graph { return buildResNet(true, 224, 1024) },
		buildEval:  func() *graph.Graph { return buildResNet(false, 224, 1024) },
	},
}

// Names returns the registry keys in the paper's Table I order.
func Names() []string {
	return []string{
		"bert-squad", "bert-mrpc", "bert-mnli", "bert-cola",
		"dcgan-cifar10", "dcgan-mnist",
		"qanet-squad", "retinanet-coco", "resnet-imagenet",
	}
}

// Get builds a fresh Workload instance.
func Get(name string) (*Workload, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	ds := datasets.MustGet(s.dataset)
	w := &Workload{
		Name:              name,
		Model:             s.model,
		Task:              s.task,
		Dataset:           ds,
		BatchSize:         s.batch,
		TrainSteps:        s.trainSteps,
		PaperSteps:        s.paperSteps,
		EvalEvery:         0, // evaluate once after training
		EvalSteps:         40,
		CheckpointEvery:   100,
		SummaryEvery:      50,
		IterationsPerLoop: 100,
		NoiseP:            s.noiseP,
		TargetIdleV2:      s.targetIdle,
		ParamsDesc:        s.paramsDesc,
		TrainGraph:        s.buildTrain(),
		EvalGraph:         s.buildEval(),
		HostParams:        host.DefaultParams(),
		HostSpec:          host.DefaultSpec(),
		Seed:              fnv(name),
	}
	decoded := ds.DecodedBytes
	if s.decodedBytes > 0 {
		decoded = s.decodedBytes
	}
	w.Input = host.InputSpec{
		Name:          ds.Name,
		BatchSize:     s.batch,
		RecordBytes:   ds.RecordBytes(),
		DecodedBytes:  decoded,
		Records:       effectiveRecords(ds.Records, s.paperSteps, s.trainSteps, s.batch),
		ImagePipeline: ds.Kind == datasets.Image,
	}
	if err := w.calibrate(); err != nil {
		return nil, fmt.Errorf("workloads: calibrating %s: %w", name, err)
	}
	return w, nil
}

// MustGet is Get for static names.
func MustGet(name string) *Workload {
	w, err := Get(name)
	if err != nil {
		panic(err)
	}
	return w
}

// effectiveRecords compresses the dataset by the same factor as the step
// count, preserving epochs-per-run; it never drops below sixteen batches
// (an epoch shorter than that would make the boundary stall, a per-epoch
// cost, dominate the compressed run in a way the full run never sees).
func effectiveRecords(records, paperSteps int64, trainSteps, batch int) int64 {
	scale := float64(paperSteps) / float64(trainSteps)
	if scale < 1 {
		scale = 1
	}
	eff := int64(float64(records) / scale)
	if min := int64(16 * batch); eff < min {
		eff = min
	}
	return eff
}

// calibrate solves the host preprocessing costs from the TPUv2 idle target.
// Serial work takes ~87% of the target batch latency (the Amdahl serial
// fraction that bounds auto-tuning gains at ~15%); the remainder is
// parallelizable decode work sized for the default thread count.
func (w *Workload) calibrate() error {
	prog, err := xla.Compile(w.TrainGraph)
	if err != nil {
		return err
	}
	dev := tpu.NewDevice(tpu.NewChipSpec(tpu.V2), 0)
	if err := dev.LoadProgram(prog); err != nil {
		return err
	}
	c := float64(dev.StepBusyTime()) // µs
	if c <= 0 {
		return fmt.Errorf("program has no compute")
	}
	f := w.TargetIdleV2
	hTarget := c / (1 - f)

	threads := float64(w.HostParams.DecodeThreads)
	spec := w.Spec()

	// Correct for the per-epoch boundary stall, which adds to the mean
	// step period on top of the steady state. With spe steps per epoch,
	// prefetch depth P, and fixed restart cost F (iterator restart plus
	// shuffle refill), the mean period is H·(1 + P/spe) + F/spe; solve
	// for the H that makes the mean hit the target.
	spe := float64(w.Input.Records) / float64(w.BatchSize)
	if spe >= 1 {
		p := float64(w.HostParams.PrefetchDepth)
		refillRecords := int64(w.HostParams.ShuffleBuffer)
		if refillRecords > w.Input.Records {
			refillRecords = w.Input.Records
		}
		fixed := spec.EpochRestartUs +
			float64(refillRecords*w.Input.RecordBytes)/(spec.ReadMBps*float64(w.HostParams.ReaderThreads))
		corrected := (hTarget - fixed/spe) / (1 + p/spe)
		if corrected < c {
			// The stall share alone exceeds the idle target; the best
			// the pipeline can do is keep pace with the device.
			corrected = c
		}
		hTarget = corrected
	}
	workBase := float64(w.Input.BatchRawBytes())/spec.DecodeMBpsPerThread +
		float64(w.Input.BatchSize)*spec.PerRecordOverheadUs
	boundBase := workBase / threads

	const serialShare = 0.82
	switch {
	case boundBase >= hTarget:
		// Base decode alone exceeds the target: nothing to add.
		w.Input.SerialUsPerBatch = 0
		w.Input.ExtraDecodeUsPerRecord = 0
	case boundBase >= (1-serialShare)*hTarget:
		// Base parallel work already fills the parallel share; the serial
		// part makes up the rest.
		w.Input.SerialUsPerBatch = hTarget - boundBase
		w.Input.ExtraDecodeUsPerRecord = 0
	default:
		w.Input.SerialUsPerBatch = serialShare * hTarget
		extraTotal := (1-serialShare)*hTarget*threads - workBase
		w.Input.ExtraDecodeUsPerRecord = extraTotal / float64(w.Input.BatchSize)
	}
	return nil
}

// Naive returns a copy of the workload with the untuned pipeline
// parameters of the paper's naive implementations (Section VII-C).
func (w *Workload) Naive() *Workload {
	c := *w
	c.Name = w.Name + "-naive"
	c.HostParams = host.NaiveParams()
	return &c
}

// Small returns the reduced-dataset variant used in Figures 12 and 13:
// QANet and RetinaNet on half their datasets, ResNet on CIFAR-10.
func (w *Workload) Small() (*Workload, error) {
	c := *w
	c.Name = w.Name + "-small"
	switch w.Model {
	case "ResNet-50":
		// Same methodology, CIFAR-10 input: native 32×32 images.
		ds := datasets.MustGet("cifar10")
		c.Dataset = ds
		c.TrainGraph = buildResNet(true, 32, w.BatchSize)
		c.EvalGraph = buildResNet(false, 32, w.BatchSize)
		c.Input.Name = ds.Name
		c.Input.RecordBytes = ds.RecordBytes()
		c.Input.DecodedBytes = ds.DecodedBytes
		c.Input.Records = effectiveRecords(ds.Records, w.PaperSteps, w.TrainSteps, w.BatchSize)
		// The host methodology (per-record and per-batch costs) carries
		// over unchanged — that is the point of Observation 6.
		return &c, nil
	default:
		half := w.Dataset.Halved()
		c.Dataset = half
		c.Input.Records = effectiveRecords(half.Records, w.PaperSteps, w.TrainSteps, w.BatchSize)
		return &c, nil
	}
}

// fnv hashes a name into a stable seed.
func fnv(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
