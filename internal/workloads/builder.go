package workloads

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// builder assembles model step graphs with automatic naming, FLOP
// accounting, and a recorded backward pass.
//
// Forward helpers (dense, conv, attention, ...) append ops and, for train
// graphs, record the gradient ops each layer will need. After the loss is
// built, backward() replays those records in reverse, chaining each
// gradient op onto the running gradient so the backward half of the graph
// has the same contraction/elementwise mix real autodiff produces.
type builder struct {
	g     *graph.Graph
	seq   int
	train bool

	weightBytes int64
	backlog     []gradRecord
}

// gradRecord describes the gradient ops of one forward op.
type gradRecord struct {
	op    string // forward op this gradient belongs to
	out   tensor.Spec
	flops int64
	ref   *graph.Node // the forward node, kept as a data dependency
}

func newBuilder(name string, train bool) *builder {
	return &builder{g: graph.New(name), train: train}
}

func (b *builder) name(op string) string {
	b.seq++
	return fmt.Sprintf("%s_%d", op, b.seq)
}

// add appends a TPU op with automatic naming.
func (b *builder) add(op string, out tensor.Spec, flops int64, ins ...*graph.Node) *graph.Node {
	n := b.g.MustAdd(b.name(op), op, trace.TPU, out, ins...)
	n.FLOPs = flops
	return n
}

// input declares the batch placeholder that arrives via infeed.
func (b *builder) input(d tensor.DType, dims ...int) *graph.Node {
	return b.g.MustAdd(b.name("infeed_input"), graph.OpPlaceholder, trace.TPU, tensor.NewSpec(d, dims...))
}

// weight declares a parameter tensor resident in HBM.
func (b *builder) weight(dims ...int) *graph.Node {
	n := b.g.MustAdd(b.name("weight"), graph.OpConst, trace.TPU, tensor.NewSpec(tensor.BFloat16, dims...))
	b.weightBytes += n.OutBytes()
	return n
}

// recordGrad queues gradient work to be emitted by backward().
func (b *builder) recordGrad(op string, out tensor.Spec, flops int64, ref *graph.Node) {
	if !b.train {
		return
	}
	b.backlog = append(b.backlog, gradRecord{op: op, out: out, flops: flops, ref: ref})
}

// dense is a fully connected layer: MatMul + bias Add + activation.
// Shapes: x is [batch, in]; result is [batch, out].
func (b *builder) dense(x *graph.Node, in, out int, activation string) *graph.Node {
	batch := x.Out.Shape[0]
	w := b.weight(in, out)
	bias := b.weight(out)
	mmSpec := tensor.NewSpec(tensor.BFloat16, batch, out)
	mmFlops := tensor.MatMulFLOPs(x.Out, w.Out)
	mm := b.add(graph.OpMatMul, mmSpec, mmFlops, x, w)
	cur := b.add(graph.OpAdd, mmSpec, mmSpec.Shape.Elements(), mm, bias)
	if activation != "" {
		cur = b.add(activation, mmSpec, 2*mmSpec.Shape.Elements(), cur)
	}
	// Backward: dX = dY·Wᵀ and dW = Xᵀ·dY (two matmuls at forward cost
	// each), plus the bias gradient reduction and activation gradient.
	b.recordGrad(graph.OpMatMul, x.Out, mmFlops, mm)
	b.recordGrad(graph.OpMatMul, w.Out, mmFlops, mm)
	b.recordGrad(graph.OpBiasAddGrad, bias.Out, mmSpec.Shape.Elements(), mm)
	if activation != "" {
		b.recordGrad(graph.OpMul, mmSpec, mmSpec.Shape.Elements(), cur)
	}
	return cur
}

// conv is a convolution block: Conv2D + FusedBatchNorm + Relu.
// x is NHWC; stride divides the spatial dims.
func (b *builder) conv(x *graph.Node, k, cout, stride int, bn bool) *graph.Node {
	n, h, wdt, cin := x.Out.Shape[0], x.Out.Shape[1], x.Out.Shape[2], x.Out.Shape[3]
	oh, ow := h/stride, wdt/stride
	if oh < 1 {
		oh = 1
	}
	if ow < 1 {
		ow = 1
	}
	w := b.weight(k, k, cin, cout)
	outSpec := tensor.NewSpec(tensor.BFloat16, n, oh, ow, cout)
	flops := tensor.Conv2DFLOPs(n, oh, ow, k, k, cin, cout)
	cur := b.add(graph.OpConv2D, outSpec, flops, x, w)
	if bn {
		scale := b.weight(cout)
		cur = b.add(graph.OpFusedBN, outSpec, 4*outSpec.Shape.Elements(), cur, scale)
	}
	cur = b.add(graph.OpRelu, outSpec, outSpec.Shape.Elements(), cur)

	// Backward: filter and input gradients cost a forward conv each; the
	// batch-norm gradient is elementwise-heavy.
	b.recordGrad(graph.OpConv2DBackF, w.Out, flops, cur)
	b.recordGrad(graph.OpConv2DBackI, x.Out, flops, cur)
	if bn {
		b.recordGrad(graph.OpFusedBNGrad, outSpec, 4*outSpec.Shape.Elements(), cur)
	}
	b.recordGrad(graph.OpMul, outSpec, outSpec.Shape.Elements(), cur)
	return cur
}

// attention is a multi-head self-attention block over [batch, seq, dmodel],
// including the reshape/transpose traffic that puts Reshape in the
// profiles, plus the projection matmuls.
func (b *builder) attention(x *graph.Node, heads int) *graph.Node {
	batch, seq, dm := x.Out.Shape[0], x.Out.Shape[1], x.Out.Shape[2]
	dh := dm / heads
	projFlops := int64(2) * int64(batch) * int64(seq) * int64(dm) * int64(dm)
	flat := tensor.NewSpec(tensor.BFloat16, batch, seq, dm)

	// Q, K, V projections.
	var qkv [3]*graph.Node
	for i := range qkv {
		w := b.weight(dm, dm)
		mm := b.add(graph.OpMatMul, flat, projFlops, x, w)
		b.recordGrad(graph.OpMatMul, flat, projFlops, mm)
		b.recordGrad(graph.OpMatMul, w.Out, projFlops, mm)
		// Split heads: reshape + transpose to [batch, heads, seq, dh].
		headSpec := tensor.NewSpec(tensor.BFloat16, batch, heads, seq, dh)
		rs := b.add(graph.OpReshape, headSpec, 0, mm)
		qkv[i] = b.add(graph.OpTranspose, headSpec, 0, rs)
	}

	// Scores = Q·Kᵀ: [batch, heads, seq, seq].
	scoreSpec := tensor.NewSpec(tensor.BFloat16, batch, heads, seq, seq)
	scoreFlops := int64(2) * int64(batch) * int64(heads) * int64(seq) * int64(seq) * int64(dh)
	scores := b.add(graph.OpMatMul, scoreSpec, scoreFlops, qkv[0], qkv[1])
	soft := b.add(graph.OpSoftmax, scoreSpec, 5*scoreSpec.Shape.Elements(), scores)
	b.recordGrad(graph.OpMatMul, scoreSpec, scoreFlops, scores)
	b.recordGrad(graph.OpMul, scoreSpec, scoreSpec.Shape.Elements(), soft)

	// Context = softmax·V, merge heads, output projection.
	ctxSpec := tensor.NewSpec(tensor.BFloat16, batch, heads, seq, dh)
	ctx := b.add(graph.OpMatMul, ctxSpec, scoreFlops, soft, qkv[2])
	b.recordGrad(graph.OpMatMul, ctxSpec, scoreFlops, ctx)
	tr := b.add(graph.OpTranspose, ctxSpec, 0, ctx)
	merged := b.add(graph.OpReshape, flat, 0, tr)
	wo := b.weight(dm, dm)
	out := b.add(graph.OpMatMul, flat, projFlops, merged, wo)
	b.recordGrad(graph.OpMatMul, flat, projFlops, out)
	b.recordGrad(graph.OpMatMul, wo.Out, projFlops, out)

	// Residual + layer norm.
	res := b.add(graph.OpAdd, flat, flat.Shape.Elements(), out, x)
	ln := b.add(graph.OpLayerNorm, flat, 6*flat.Shape.Elements(), res)
	b.recordGrad(graph.OpMul, flat, flat.Shape.Elements(), ln)
	return ln
}

// ffn is a transformer feed-forward block dmodel → dff → dmodel with GELU
// (modeled as Tanh-based elementwise work).
func (b *builder) ffn(x *graph.Node, dff int) *graph.Node {
	batch, seq, dm := x.Out.Shape[0], x.Out.Shape[1], x.Out.Shape[2]
	upSpec := tensor.NewSpec(tensor.BFloat16, batch, seq, dff)
	flat := x.Out
	upFlops := int64(2) * int64(batch) * int64(seq) * int64(dm) * int64(dff)

	w1 := b.weight(dm, dff)
	up := b.add(graph.OpMatMul, upSpec, upFlops, x, w1)
	act := b.add(graph.OpTanh, upSpec, 4*upSpec.Shape.Elements(), up)
	w2 := b.weight(dff, dm)
	down := b.add(graph.OpMatMul, flat, upFlops, act, w2)
	res := b.add(graph.OpAdd, flat, flat.Shape.Elements(), down, x)
	ln := b.add(graph.OpLayerNorm, flat, 6*flat.Shape.Elements(), res)

	b.recordGrad(graph.OpMatMul, flat, upFlops, up)
	b.recordGrad(graph.OpMatMul, w1.Out, upFlops, up)
	b.recordGrad(graph.OpMul, upSpec, upSpec.Shape.Elements(), act)
	b.recordGrad(graph.OpMatMul, upSpec, upFlops, down)
	b.recordGrad(graph.OpMatMul, w2.Out, upFlops, down)
	b.recordGrad(graph.OpMul, flat, flat.Shape.Elements(), ln)
	return ln
}

// loss appends a scalar training loss on top of logits.
func (b *builder) loss(logits *graph.Node) *graph.Node {
	scalar := tensor.NewSpec(tensor.Float32, 1)
	return b.add(graph.OpCrossEntropy, scalar, 8*logits.Out.Shape.Elements(), logits)
}

// backward replays the recorded gradient ops in reverse order, chained on
// the running gradient node, then appends the optimizer tail: gradient
// all-reduce across replicas, weight decay, and parameter updates.
func (b *builder) backward(lossNode *graph.Node) {
	if !b.train {
		return
	}
	cur := lossNode
	for i := len(b.backlog) - 1; i >= 0; i-- {
		r := b.backlog[i]
		cur = b.add(r.op, r.out, r.flops, cur, r.ref)
	}
	// Cross-replica gradient reduction: traffic equals the weights.
	ar := b.add(graph.OpAllReduce, tensor.NewSpec(tensor.BFloat16, 1), 0, cur)
	ar.Bytes = 2 * b.weightBytes
	// Weight decay and parameter updates in a few fused groups.
	l2 := b.add(graph.OpL2Loss, tensor.NewSpec(tensor.Float32, 1), b.weightBytes/2, ar)
	params := b.weightBytes / 2 // bf16 elements
	for i := 0; i < 4; i++ {
		upd := b.add(graph.OpAdamUpdate, tensor.NewSpec(tensor.BFloat16, 1), 2*params, l2)
		upd.Bytes = b.weightBytes / 2
	}
}

// evalMetrics appends the eval-only metric tail that distinguishes eval
// steps from train steps in phase detection.
func (b *builder) evalMetrics(logits *graph.Node) {
	batch := logits.Out.Shape[0]
	idxSpec := tensor.NewSpec(tensor.Int32, batch)
	arg := b.add(graph.OpArgMax, idxSpec, logits.Out.Shape.Elements(), logits)
	sq := b.add(graph.OpSqueeze, idxSpec, 0, arg)
	eq := b.add(graph.OpEqual, tensor.NewSpec(tensor.Bool, batch), int64(batch), sq)
	cast := b.add(graph.OpCast, tensor.NewSpec(tensor.Float32, batch), int64(batch), eq)
	b.add(graph.OpMean, tensor.NewSpec(tensor.Float32, 1), int64(batch), cast)
	topk := b.add(graph.OpTopK, tensor.NewSpec(tensor.Int32, batch, 5), 5*logits.Out.Shape.Elements(), logits)
	b.add(graph.OpInTopK, tensor.NewSpec(tensor.Bool, batch), int64(batch), topk)
}
