// Package storage simulates the Google Cloud Storage buckets that a Cloud
// TPU deployment depends on.
//
// In the paper's architecture the Compute Engine VM is the host, the TPU is
// a coprocessor, and Storage Buckets act as persistent memory for training
// data, model checkpoints, and the profile records TPUPoint-Profiler's
// recording thread streams out. This package provides bucket/object
// semantics over an in-memory store with optional generation tracking, and
// is safe for concurrent use — the recording goroutine writes while the
// training loop reads datasets.
package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned when a bucket or object does not exist.
var ErrNotFound = errors.New("storage: object not found")

// ErrBucketExists is returned when creating a bucket that already exists.
var ErrBucketExists = errors.New("storage: bucket already exists")

// ErrGenerationMismatch is returned by PutIf when the object's current
// generation does not match the caller's expectation — some other writer
// got there first (the GCS ifGenerationMatch precondition).
var ErrGenerationMismatch = errors.New("storage: generation mismatch")

// Object is a stored blob plus metadata. Every Object handed out by the
// bucket API owns its Data slice: mutating it never corrupts the stored
// copy, and later writes to the bucket never show through a previously
// returned Object (see TestObjectDataIsDefensiveCopy).
type Object struct {
	Name       string
	Data       []byte
	Generation int64 // bumped on every overwrite, like GCS generations
}

// Bucket is a flat namespace of objects.
type Bucket struct {
	name string

	mu      sync.RWMutex
	objects map[string]*Object
	nextGen int64
}

// Service is a collection of buckets, the root of the simulated storage API.
type Service struct {
	mu      sync.RWMutex
	buckets map[string]*Bucket
}

// NewService returns an empty storage service.
func NewService() *Service {
	return &Service{buckets: make(map[string]*Bucket)}
}

// CreateBucket creates a bucket. It fails if the name is empty or taken.
func (s *Service) CreateBucket(name string) (*Bucket, error) {
	if name == "" {
		return nil, errors.New("storage: empty bucket name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrBucketExists, name)
	}
	b := &Bucket{name: name, objects: make(map[string]*Object), nextGen: 1}
	s.buckets[name] = b
	return b, nil
}

// Bucket returns an existing bucket.
func (s *Service) Bucket(name string) (*Bucket, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[name]
	if !ok {
		return nil, fmt.Errorf("%w: bucket %q", ErrNotFound, name)
	}
	return b, nil
}

// EnsureBucket returns the named bucket, creating it if needed.
func (s *Service) EnsureBucket(name string) (*Bucket, error) {
	if b, err := s.Bucket(name); err == nil {
		return b, nil
	}
	b, err := s.CreateBucket(name)
	if errors.Is(err, ErrBucketExists) {
		return s.Bucket(name)
	}
	return b, err
}

// Buckets returns all bucket names in sorted order.
func (s *Service) Buckets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.buckets))
	for n := range s.buckets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Name returns the bucket name.
func (b *Bucket) Name() string { return b.name }

// Put stores data under name, overwriting any prior object and bumping the
// generation. The data is copied; callers may reuse their buffer. The
// returned Object is a defensive copy — mutating its Data cannot corrupt
// the stored bytes.
func (b *Bucket) Put(name string, data []byte) (*Object, error) {
	if name == "" {
		return nil, errors.New("storage: empty object name")
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	b.mu.Lock()
	defer b.mu.Unlock()
	obj := &Object{Name: name, Data: cp, Generation: b.nextGen}
	b.nextGen++
	b.objects[name] = obj
	return obj.copy(), nil
}

// PutIf stores data under name only if the object's current generation
// equals gen; gen 0 means the object must not exist yet. Any other state
// fails with ErrGenerationMismatch and leaves the bucket untouched. This
// is the compare-and-swap primitive concurrent manifest writers (the run
// repository) use to serialize read-modify-write updates.
func (b *Bucket) PutIf(name string, data []byte, gen int64) (*Object, error) {
	if name == "" {
		return nil, errors.New("storage: empty object name")
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	b.mu.Lock()
	defer b.mu.Unlock()
	var cur int64
	if obj, ok := b.objects[name]; ok {
		cur = obj.Generation
	}
	if cur != gen {
		return nil, fmt.Errorf("%w: %s/%s at generation %d, expected %d",
			ErrGenerationMismatch, b.name, name, cur, gen)
	}
	obj := &Object{Name: name, Data: cp, Generation: b.nextGen}
	b.nextGen++
	b.objects[name] = obj
	return obj.copy(), nil
}

// copy returns an Object whose Data is independent of the stored slice.
func (o *Object) copy() *Object {
	cp := make([]byte, len(o.Data))
	copy(cp, o.Data)
	return &Object{Name: o.Name, Data: cp, Generation: o.Generation}
}

// Get returns the object stored under name. The returned data is a copy;
// callers may mutate it freely without corrupting the bucket.
func (b *Bucket) Get(name string) (*Object, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	obj, ok := b.objects[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, b.name, name)
	}
	return obj.copy(), nil
}

// RangeReader is the optional capability of stores that can serve a
// byte range of an object without materializing the whole blob — the
// GCS "Range:" header. Callers discover it with a type assertion and
// fall back to Get-and-slice when the store lacks it, so decorators
// (fault injectors, crash simulators) stay compatible without
// forwarding the method.
type RangeReader interface {
	GetRange(name string, off, n int64) ([]byte, error)
}

// GetRange returns a copy of n bytes of the object starting at off.
// Unlike Get it copies only the requested window, which is what makes
// reading one run out of a multi-megabyte consolidated pack cheap.
func (b *Bucket) GetRange(name string, off, n int64) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	obj, ok := b.objects[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, b.name, name)
	}
	if off < 0 || n < 0 || off+n > int64(len(obj.Data)) {
		return nil, fmt.Errorf("storage: range [%d,%d) outside %s/%s (%d bytes)",
			off, off+n, b.name, name, len(obj.Data))
	}
	cp := make([]byte, n)
	copy(cp, obj.Data[off:off+n])
	return cp, nil
}

// Exists reports whether an object is present.
func (b *Bucket) Exists(name string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.objects[name]
	return ok
}

// Delete removes an object; deleting a missing object returns ErrNotFound.
func (b *Bucket) Delete(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.objects[name]; !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, b.name, name)
	}
	delete(b.objects, name)
	return nil
}

// List returns the names of objects with the given prefix, sorted.
func (b *Bucket) List(prefix string) []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var names []string
	for n := range b.objects {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Size returns the stored byte size of an object, or an error if missing.
func (b *Bucket) Size(name string) (int64, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	obj, ok := b.objects[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s/%s", ErrNotFound, b.name, name)
	}
	return int64(len(obj.Data)), nil
}

// TotalBytes returns the sum of all object sizes in the bucket.
func (b *Bucket) TotalBytes() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var total int64
	for _, obj := range b.objects {
		total += int64(len(obj.Data))
	}
	return total
}

// ExportDir writes every object with the given prefix into dir, one file
// per object with '/' mapped to the OS separator. It lets users keep
// profile records and checkpoints beyond the in-memory bucket's lifetime.
func (b *Bucket) ExportDir(dir, prefix string) (int, error) {
	names := b.List(prefix)
	for _, name := range names {
		obj, err := b.Get(name)
		if err != nil {
			return 0, err
		}
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return 0, err
		}
		if err := os.WriteFile(path, obj.Data, 0o644); err != nil {
			return 0, err
		}
	}
	return len(names), nil
}

// ImportDir loads every regular file under dir into the bucket, using the
// slash-mapped relative path as the object name. The inverse of ExportDir.
func (b *Bucket) ImportDir(dir string) (int, error) {
	count := 0
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if _, err := b.Put(filepath.ToSlash(rel), data); err != nil {
			return err
		}
		count++
		return nil
	})
	return count, err
}

// Append appends data to an existing object, creating it if absent. This is
// how the profiler's recording thread accumulates a profile log without
// rewriting the whole object each time. The returned Object is a defensive
// copy of the post-append state.
func (b *Bucket) Append(name string, data []byte) (*Object, error) {
	if name == "" {
		return nil, errors.New("storage: empty object name")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	obj, ok := b.objects[name]
	if !ok {
		cp := make([]byte, len(data))
		copy(cp, data)
		obj = &Object{Name: name, Data: cp, Generation: b.nextGen}
		b.nextGen++
		b.objects[name] = obj
		return obj.copy(), nil
	}
	obj.Data = append(obj.Data, data...)
	obj.Generation = b.nextGen
	b.nextGen++
	return obj.copy(), nil
}
