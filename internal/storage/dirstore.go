// DirStore: a file-backed store so MULTIPLE collector processes can
// share one repository — the substrate the replicated-collection smoke
// test (and any real multi-process deployment without an object store)
// runs on. The in-memory Bucket cannot cross a process boundary;
// ExportDir/ImportDir snapshots are single-writer.
//
// Layout keeps raw object bytes at their slash-mapped paths — exactly
// ExportDir's format, so `tpupoint runs list -dir` and every other
// ImportDir consumer reads a DirStore tree unchanged. Bookkeeping goes
// under one hidden subtree:
//
//	<root>/<object path>              — raw object bytes
//	<root>/.dirstore/lock             — cross-process mutex (flock)
//	<root>/.dirstore/gen/<object>     — decimal generation counter
//
// Every operation holds the coarse store-wide flock: correctness over
// concurrency inside the store, because cross-replica parallelism in
// this system comes from sharding ABOVE the store (each replica owns
// disjoint manifest shards), not from intra-store lock splitting.
//
// Crash consistency: the generation sidecar is renamed into place
// BEFORE the data file. A crash between the two leaves a bumped
// generation over old bytes — observationally "the write never
// happened, the generation burned", which CAS writers already handle —
// never new bytes readable under an old generation (that would let a
// competing PutIf silently overwrite a committed write). Data and
// sidecar writes are both temp-file + rename, so readers never see a
// torn file. No fsync: the repository's intent journal, not the store,
// owns power-cut durability (a SIGKILL'd process loses nothing that
// reached the page cache, which is the failure the fleet smoke
// injects).
package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const dirStoreMeta = ".dirstore"

// DirStore is a Store over a directory tree, safe for concurrent use
// by multiple goroutines AND multiple processes on one machine.
type DirStore struct {
	root string

	// mu serializes goroutines within this process; the flock on lockf
	// serializes processes. Both are held for every operation.
	mu    sync.Mutex
	lockf *os.File
}

// OpenDir opens (creating if needed) a directory-backed store at root.
func OpenDir(root string) (*DirStore, error) {
	if err := os.MkdirAll(filepath.Join(root, dirStoreMeta, "gen"), 0o755); err != nil {
		return nil, fmt.Errorf("storage: dirstore init: %w", err)
	}
	lockf, err := os.OpenFile(filepath.Join(root, dirStoreMeta, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: dirstore lock: %w", err)
	}
	return &DirStore{root: root, lockf: lockf}, nil
}

// Close releases the lock file handle.
func (d *DirStore) Close() error { return d.lockf.Close() }

// Root returns the store's directory.
func (d *DirStore) Root() string { return d.root }

func dirStoreValidName(name string) error {
	if name == "" {
		return errors.New("storage: empty object name")
	}
	if strings.HasPrefix(name, dirStoreMeta) {
		return fmt.Errorf("storage: reserved object name %q", name)
	}
	if !filepath.IsLocal(filepath.FromSlash(name)) {
		return fmt.Errorf("storage: object name %q escapes the store", name)
	}
	return nil
}

func (d *DirStore) dataPath(name string) string {
	return filepath.Join(d.root, filepath.FromSlash(name))
}

func (d *DirStore) genPath(name string) string {
	return filepath.Join(d.root, dirStoreMeta, "gen", filepath.FromSlash(name))
}

// lock takes the cross-process store lock (plus the in-process mutex,
// since flock is per file-description, not per goroutine).
func (d *DirStore) lock() error {
	d.mu.Lock()
	if err := flockExclusive(d.lockf); err != nil {
		d.mu.Unlock()
		return fmt.Errorf("storage: dirstore lock: %w", err)
	}
	return nil
}

func (d *DirStore) unlock() {
	_ = flockRelease(d.lockf)
	d.mu.Unlock()
}

// readGen returns the object's generation: the sidecar if present, 1
// for a data file without one (an adopted ExportDir/rsync'd tree), 0
// for no object at all.
func (d *DirStore) readGen(name string) int64 {
	b, err := os.ReadFile(d.genPath(name))
	if err == nil {
		if g, perr := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64); perr == nil && g > 0 {
			return g
		}
	}
	if _, serr := os.Stat(d.dataPath(name)); serr == nil {
		return 1
	}
	return 0
}

func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// putLocked writes gen-then-data; caller holds the lock.
func (d *DirStore) putLocked(name string, data []byte, gen int64) (*Object, error) {
	if err := writeFileAtomic(d.genPath(name), []byte(strconv.FormatInt(gen, 10))); err != nil {
		return nil, err
	}
	if err := writeFileAtomic(d.dataPath(name), data); err != nil {
		return nil, err
	}
	return &Object{Name: name, Data: append([]byte(nil), data...), Generation: gen}, nil
}

// Put stores data under name unconditionally.
func (d *DirStore) Put(name string, data []byte) (*Object, error) {
	if err := dirStoreValidName(name); err != nil {
		return nil, err
	}
	if err := d.lock(); err != nil {
		return nil, err
	}
	defer d.unlock()
	return d.putLocked(name, data, d.readGen(name)+1)
}

// PutIf stores data only if the object's current generation equals
// gen (0 = the object must not exist) — the compare-and-swap every
// manifest update rides on.
func (d *DirStore) PutIf(name string, data []byte, gen int64) (*Object, error) {
	if err := dirStoreValidName(name); err != nil {
		return nil, err
	}
	if err := d.lock(); err != nil {
		return nil, err
	}
	defer d.unlock()
	cur := d.readGen(name)
	if cur != gen {
		return nil, fmt.Errorf("%w: %s at generation %d, want %d", ErrGenerationMismatch, name, cur, gen)
	}
	return d.putLocked(name, data, cur+1)
}

// Get reads an object and its generation.
func (d *DirStore) Get(name string) (*Object, error) {
	if err := dirStoreValidName(name); err != nil {
		return nil, err
	}
	if err := d.lock(); err != nil {
		return nil, err
	}
	defer d.unlock()
	data, err := os.ReadFile(d.dataPath(name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return nil, err
	}
	return &Object{Name: name, Data: data, Generation: d.readGen(name)}, nil
}

// Append appends data to name, creating it if absent.
func (d *DirStore) Append(name string, data []byte) (*Object, error) {
	if err := dirStoreValidName(name); err != nil {
		return nil, err
	}
	if err := d.lock(); err != nil {
		return nil, err
	}
	defer d.unlock()
	old, err := os.ReadFile(d.dataPath(name))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	return d.putLocked(name, append(old, data...), d.readGen(name)+1)
}

// Delete removes an object and its generation sidecar.
func (d *DirStore) Delete(name string) error {
	if err := dirStoreValidName(name); err != nil {
		return err
	}
	if err := d.lock(); err != nil {
		return err
	}
	defer d.unlock()
	err := os.Remove(d.dataPath(name))
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return err
	}
	_ = os.Remove(d.genPath(name))
	return nil
}

// Exists reports whether name holds an object.
func (d *DirStore) Exists(name string) bool {
	if dirStoreValidName(name) != nil {
		return false
	}
	if err := d.lock(); err != nil {
		return false
	}
	defer d.unlock()
	_, err := os.Stat(d.dataPath(name))
	return err == nil
}

// List returns the sorted object names with the given prefix.
func (d *DirStore) List(prefix string) []string {
	if err := d.lock(); err != nil {
		return nil
	}
	defer d.unlock()
	var names []string
	_ = filepath.WalkDir(d.root, func(path string, e fs.DirEntry, err error) error {
		if err != nil {
			return nil // a racing delete is not a listing error
		}
		if e.IsDir() {
			if filepath.Base(path) == dirStoreMeta {
				return filepath.SkipDir
			}
			return nil
		}
		rel, rerr := filepath.Rel(d.root, path)
		if rerr != nil {
			return nil
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(filepath.Base(path), ".tmp-") {
			return nil // a writer's in-flight temp file
		}
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
		return nil
	})
	sort.Strings(names)
	return names
}
