package storage

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestDirStorePutGetDelete(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if _, err := d.Get("runs/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get missing: %v, want ErrNotFound", err)
	}
	obj, err := d.Put("runs/a", []byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	if obj.Generation != 1 {
		t.Fatalf("first put generation %d, want 1", obj.Generation)
	}
	obj, err = d.Put("runs/a", []byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	if obj.Generation != 2 {
		t.Fatalf("second put generation %d, want 2", obj.Generation)
	}
	got, err := d.Get("runs/a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data) != "two" || got.Generation != 2 {
		t.Fatalf("get = %q gen %d", got.Data, got.Generation)
	}
	if !d.Exists("runs/a") || d.Exists("runs/b") {
		t.Fatal("Exists disagrees with Put")
	}
	if err := d.Delete("runs/a"); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("runs/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
	// Generation history does not survive deletion: recreation restarts.
	obj, err = d.Put("runs/a", []byte("three"))
	if err != nil {
		t.Fatal(err)
	}
	if obj.Generation != 1 {
		t.Fatalf("post-delete put generation %d, want 1", obj.Generation)
	}
}

func TestDirStorePutIfGenerations(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if _, err := d.PutIf("m", []byte("v1"), 1); !errors.Is(err, ErrGenerationMismatch) {
		t.Fatalf("create at gen 1: %v, want ErrGenerationMismatch", err)
	}
	obj, err := d.PutIf("m", []byte("v1"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Generation != 1 {
		t.Fatalf("created at generation %d, want 1", obj.Generation)
	}
	if _, err := d.PutIf("m", []byte("again"), 0); !errors.Is(err, ErrGenerationMismatch) {
		t.Fatalf("re-create: %v, want ErrGenerationMismatch", err)
	}
	if _, err := d.PutIf("m", []byte("stale"), 2); !errors.Is(err, ErrGenerationMismatch) {
		t.Fatalf("stale CAS: %v, want ErrGenerationMismatch", err)
	}
	obj, err = d.PutIf("m", []byte("v2"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Generation != 2 {
		t.Fatalf("CAS advanced to generation %d, want 2", obj.Generation)
	}
	got, _ := d.Get("m")
	if string(got.Data) != "v2" {
		t.Fatalf("after CAS data = %q", got.Data)
	}
}

func TestDirStoreAppend(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if _, err := d.Append("log", []byte("aa")); err != nil {
		t.Fatal(err)
	}
	obj, err := d.Append("log", []byte("bb"))
	if err != nil {
		t.Fatal(err)
	}
	if string(obj.Data) != "aabb" || obj.Generation != 2 {
		t.Fatalf("append = %q gen %d", obj.Data, obj.Generation)
	}
}

func TestDirStoreListSkipsBookkeeping(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for _, name := range []string{"runs/z", "runs/a/idx", "other/x"} {
		if _, err := d.Put(name, []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := d.List("runs/"), []string{"runs/a/idx", "runs/z"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("List(runs/) = %v, want %v", got, want)
	}
	for _, name := range d.List("") {
		if name == "" || name[0] == '.' {
			t.Fatalf("bookkeeping leaked into listing: %q", name)
		}
	}
	if got := len(d.List("")); got != 3 {
		t.Fatalf("full listing holds %d objects, want 3", got)
	}
}

// TestDirStoreSecondHandleSeesState stands in for the second replica
// process: a fresh OpenDir over the same directory must observe data
// AND generations, so a CAS raced from two handles conflicts instead
// of silently double-writing.
func TestDirStoreSecondHandleSeesState(t *testing.T) {
	root := t.TempDir()
	a, err := OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.PutIf("m", []byte("from-a"), 0); err != nil {
		t.Fatal(err)
	}

	b, err := OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got, err := b.Get("m")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data) != "from-a" || got.Generation != 1 {
		t.Fatalf("second handle sees %q gen %d", got.Data, got.Generation)
	}
	if _, err := b.PutIf("m", []byte("from-b"), 1); err != nil {
		t.Fatal(err)
	}
	// The first handle's view advanced too — and its stale CAS loses.
	if _, err := a.PutIf("m", []byte("stale-a"), 1); !errors.Is(err, ErrGenerationMismatch) {
		t.Fatalf("stale cross-handle CAS: %v, want ErrGenerationMismatch", err)
	}
}

// TestDirStoreAdoptsExportedTree: raw files dropped into the directory
// (an ExportDir snapshot, an rsync) are objects at generation 1.
func TestDirStoreAdoptsExportedTree(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "runs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "runs", "manifest.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	got, err := d.Get("runs/manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 1 {
		t.Fatalf("adopted object at generation %d, want 1", got.Generation)
	}
	if _, err := d.PutIf("runs/manifest.json", []byte("{\"v\":2}"), 1); err != nil {
		t.Fatalf("CAS over adopted object: %v", err)
	}
}

func TestDirStoreRejectsEscapingNames(t *testing.T) {
	d, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, name := range []string{"", "../escape", ".dirstore/lock", "a/../../b"} {
		if _, err := d.Put(name, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted", name)
		}
	}
}

// TestDirStoreImportDirCompatible: the on-disk layout doubles as an
// ImportDir tree — raw bytes at object paths — so offline tooling
// (`runs list -dir`, fsck) reads a live DirStore directory directly.
func TestDirStoreImportDirCompatible(t *testing.T) {
	root := t.TempDir()
	d, err := OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Put("runs/r1", []byte("payload")); err != nil {
		t.Fatal(err)
	}

	b, err := NewService().CreateBucket("import")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ImportDir(root); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get("runs/r1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data) != "payload" {
		t.Fatalf("imported %q", got.Data)
	}
}
