package storage

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestCreateAndGetBucket(t *testing.T) {
	s := NewService()
	b, err := s.CreateBucket("tpu-data")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "tpu-data" {
		t.Fatalf("name = %q", b.Name())
	}
	got, err := s.Bucket("tpu-data")
	if err != nil || got != b {
		t.Fatalf("Bucket lookup: %v %v", got, err)
	}
}

func TestCreateDuplicateBucket(t *testing.T) {
	s := NewService()
	if _, err := s.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateBucket("b"); !errors.Is(err, ErrBucketExists) {
		t.Fatalf("err = %v, want ErrBucketExists", err)
	}
}

func TestEmptyBucketName(t *testing.T) {
	s := NewService()
	if _, err := s.CreateBucket(""); err == nil {
		t.Fatal("empty bucket name accepted")
	}
}

func TestMissingBucket(t *testing.T) {
	s := NewService()
	if _, err := s.Bucket("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestEnsureBucket(t *testing.T) {
	s := NewService()
	b1, err := s.EnsureBucket("x")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s.EnsureBucket("x")
	if err != nil || b1 != b2 {
		t.Fatalf("EnsureBucket not idempotent: %v %v", b2, err)
	}
}

func TestBucketsSorted(t *testing.T) {
	s := NewService()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := s.CreateBucket(n); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Buckets()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Buckets() = %v", got)
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := NewService()
	b, _ := s.CreateBucket("b")
	data := []byte("checkpoint-bytes")
	if _, err := b.Put("ckpt/model-100", data); err != nil {
		t.Fatal(err)
	}
	obj, err := b.Get("ckpt/model-100")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(obj.Data, data) {
		t.Fatalf("data = %q", obj.Data)
	}
}

func TestPutCopiesData(t *testing.T) {
	s := NewService()
	b, _ := s.CreateBucket("b")
	data := []byte("aaaa")
	b.Put("o", data)
	data[0] = 'z'
	obj, _ := b.Get("o")
	if obj.Data[0] != 'a' {
		t.Fatal("Put aliased caller buffer")
	}
}

func TestGetCopiesData(t *testing.T) {
	s := NewService()
	b, _ := s.CreateBucket("b")
	b.Put("o", []byte("aaaa"))
	obj, _ := b.Get("o")
	obj.Data[0] = 'z'
	again, _ := b.Get("o")
	if again.Data[0] != 'a' {
		t.Fatal("Get exposed internal buffer")
	}
}

func TestGenerationsIncrease(t *testing.T) {
	s := NewService()
	b, _ := s.CreateBucket("b")
	o1, _ := b.Put("o", []byte("1"))
	o2, _ := b.Put("o", []byte("2"))
	if o2.Generation <= o1.Generation {
		t.Fatalf("generations: %d then %d", o1.Generation, o2.Generation)
	}
}

func TestDelete(t *testing.T) {
	s := NewService()
	b, _ := s.CreateBucket("b")
	b.Put("o", []byte("x"))
	if err := b.Delete("o"); err != nil {
		t.Fatal(err)
	}
	if b.Exists("o") {
		t.Fatal("object still exists after delete")
	}
	if err := b.Delete("o"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestListPrefix(t *testing.T) {
	s := NewService()
	b, _ := s.CreateBucket("b")
	for _, n := range []string{"profiles/p1", "profiles/p2", "ckpt/c1"} {
		b.Put(n, []byte("x"))
	}
	got := b.List("profiles/")
	if len(got) != 2 || got[0] != "profiles/p1" || got[1] != "profiles/p2" {
		t.Fatalf("List = %v", got)
	}
	if all := b.List(""); len(all) != 3 {
		t.Fatalf("List(\"\") = %v", all)
	}
}

func TestSizeAndTotalBytes(t *testing.T) {
	s := NewService()
	b, _ := s.CreateBucket("b")
	b.Put("a", make([]byte, 100))
	b.Put("c", make([]byte, 50))
	if sz, _ := b.Size("a"); sz != 100 {
		t.Fatalf("Size = %d", sz)
	}
	if _, err := b.Size("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Size(missing) err = %v", err)
	}
	if tb := b.TotalBytes(); tb != 150 {
		t.Fatalf("TotalBytes = %d", tb)
	}
}

func TestAppend(t *testing.T) {
	s := NewService()
	b, _ := s.CreateBucket("b")
	b.Append("log", []byte("abc"))
	b.Append("log", []byte("def"))
	obj, err := b.Get("log")
	if err != nil {
		t.Fatal(err)
	}
	if string(obj.Data) != "abcdef" {
		t.Fatalf("appended = %q", obj.Data)
	}
}

func TestAppendEmptyName(t *testing.T) {
	s := NewService()
	b, _ := s.CreateBucket("b")
	if _, err := b.Append("", []byte("x")); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := b.Put("", []byte("x")); err == nil {
		t.Fatal("empty name accepted by Put")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewService()
	b, _ := s.CreateBucket("b")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				name := fmt.Sprintf("w%d/o%d", id, j)
				if _, err := b.Put(name, []byte{byte(j)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := b.Get(name); err != nil {
					t.Error(err)
					return
				}
				b.Append("shared-log", []byte{byte(id)})
			}
		}(i)
	}
	wg.Wait()
	if got := len(b.List("")); got != 801 {
		t.Fatalf("object count = %d, want 801", got)
	}
	if sz, _ := b.Size("shared-log"); sz != 800 {
		t.Fatalf("shared log size = %d, want 800", sz)
	}
}

func TestPropertyPutGetIdentity(t *testing.T) {
	s := NewService()
	b, _ := s.CreateBucket("p")
	f := func(name string, data []byte) bool {
		if name == "" {
			name = "fallback"
		}
		if _, err := b.Put(name, data); err != nil {
			return false
		}
		obj, err := b.Get(name)
		return err == nil && bytes.Equal(obj.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExportImportDir(t *testing.T) {
	svc := NewService()
	b, _ := svc.CreateBucket("b")
	b.Put("profiles/record-000000", []byte("rec0"))
	b.Put("profiles/record-000001", []byte("rec1"))
	b.Put("ckpt/model.ckpt-99", []byte("weights"))

	dir := t.TempDir()
	n, err := b.ExportDir(dir, "profiles/")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("exported %d objects, want 2", n)
	}

	b2, _ := svc.CreateBucket("b2")
	m, err := b2.ImportDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m != 2 {
		t.Fatalf("imported %d objects, want 2", m)
	}
	obj, err := b2.Get("profiles/record-000001")
	if err != nil {
		t.Fatal(err)
	}
	if string(obj.Data) != "rec1" {
		t.Fatalf("round-tripped data = %q", obj.Data)
	}
	// Checkpoint was outside the prefix and must not appear.
	if b2.Exists("ckpt/model.ckpt-99") {
		t.Fatal("export leaked objects outside the prefix")
	}
}

// Regression: Objects returned by Put/Append used to alias the stored
// slice, so a caller scribbling on a returned buffer silently corrupted
// the bucket. Every handout must be a defensive copy.
func TestObjectDataIsDefensiveCopy(t *testing.T) {
	s := NewService()
	b, _ := s.CreateBucket("b")

	put, err := b.Put("obj", []byte("pristine"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range put.Data {
		put.Data[i] = 'X'
	}
	got, err := b.Get("obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, []byte("pristine")) {
		t.Fatalf("Put return aliased the store: got %q", got.Data)
	}

	app, err := b.Append("log", []byte("head"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range app.Data {
		app.Data[i] = 'Y'
	}
	app2, err := b.Append("log", []byte("+tail"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range app2.Data {
		app2.Data[i] = 'Z'
	}
	got, err = b.Get("log")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, []byte("head+tail")) {
		t.Fatalf("Append return aliased the store: got %q", got.Data)
	}

	// And the Get copy keeps protecting reads, both directions.
	for i := range got.Data {
		got.Data[i] = 'W'
	}
	again, _ := b.Get("log")
	if !bytes.Equal(again.Data, []byte("head+tail")) {
		t.Fatalf("Get return aliased the store: got %q", again.Data)
	}
}

// Regression: the input buffer handed to Append must be copied on both
// branches (object creation and in-place growth) — the fleet's durable
// log hands Append a buffer it immediately reuses, so an aliasing
// Append would let later client writes rewrite acked history.
func TestAppendInputIsDefensiveCopy(t *testing.T) {
	s := NewService()
	b, _ := s.CreateBucket("b")

	buf := []byte("first")
	if _, err := b.Append("log", buf); err != nil { // create branch
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 'X'
	}
	buf2 := []byte("+second")
	if _, err := b.Append("log", buf2); err != nil { // in-place branch
		t.Fatal(err)
	}
	for i := range buf2 {
		buf2[i] = 'Y'
	}
	got, err := b.Get("log")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, []byte("first+second")) {
		t.Fatalf("Append aliased its input: got %q", got.Data)
	}

	// Put's input too, for the same reason (journal compaction rewrites).
	pbuf := []byte("stored")
	if _, err := b.Put("obj", pbuf); err != nil {
		t.Fatal(err)
	}
	for i := range pbuf {
		pbuf[i] = 'Z'
	}
	if got, _ := b.Get("obj"); !bytes.Equal(got.Data, []byte("stored")) {
		t.Fatalf("Put aliased its input: got %q", got.Data)
	}
}

// Append participates in the bucket's single generation sequence: every
// append invalidates outstanding PutIf generations, and the generation
// an Append returns is swappable — the property the journal's
// generation-checked compaction (append-vs-truncate race) relies on.
func TestAppendParticipatesInGenerations(t *testing.T) {
	s := NewService()
	b, _ := s.CreateBucket("b")

	created, err := b.Append("log", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	grown, err := b.Append("log", []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if grown.Generation <= created.Generation {
		t.Fatalf("append did not advance the generation: %d -> %d",
			created.Generation, grown.Generation)
	}

	// A PutIf against the pre-append generation must lose…
	if _, err := b.PutIf("log", nil, created.Generation); !errors.Is(err, ErrGenerationMismatch) {
		t.Fatalf("stale truncate raced past an append: err = %v", err)
	}
	// …and one against the post-append generation must win.
	swapped, err := b.PutIf("log", nil, grown.Generation)
	if err != nil {
		t.Fatalf("current-generation truncate: %v", err)
	}
	// The swap advances the sequence again, so a third append's result
	// supersedes it.
	after, err := b.Append("log", []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if after.Generation <= swapped.Generation {
		t.Fatalf("append after swap did not advance the generation: %d -> %d",
			swapped.Generation, after.Generation)
	}
	if got, _ := b.Get("log"); !bytes.Equal(got.Data, []byte("c")) {
		t.Fatalf("log = %q, want %q", got.Data, "c")
	}
}

func TestPutIf(t *testing.T) {
	s := NewService()
	b, _ := s.CreateBucket("b")

	// gen 0 = create-only: succeeds when absent, fails when present.
	obj, err := b.PutIf("m", []byte("v1"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.PutIf("m", []byte("v1b"), 0); !errors.Is(err, ErrGenerationMismatch) {
		t.Fatalf("create-only over existing object: err = %v", err)
	}

	// Matching generation swaps; stale generation fails and changes nothing.
	obj2, err := b.PutIf("m", []byte("v2"), obj.Generation)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.PutIf("m", []byte("v3"), obj.Generation); !errors.Is(err, ErrGenerationMismatch) {
		t.Fatalf("stale swap: err = %v", err)
	}
	got, _ := b.Get("m")
	if !bytes.Equal(got.Data, []byte("v2")) || got.Generation != obj2.Generation {
		t.Fatalf("after failed swap: data=%q gen=%d", got.Data, got.Generation)
	}
}

// Hammer PutIf from many writers doing read-modify-write loops; every
// increment must land exactly once — the property the run repository's
// manifest updates rely on.
func TestPutIfSerializesConcurrentWriters(t *testing.T) {
	s := NewService()
	b, _ := s.CreateBucket("b")
	if _, err := b.PutIf("counter", []byte{0}, 0); err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				for {
					cur, err := b.Get("counter")
					if err != nil {
						t.Error(err)
						return
					}
					next := []byte{cur.Data[0] + 1}
					if _, err := b.PutIf("counter", next, cur.Generation); err == nil {
						break
					} else if !errors.Is(err, ErrGenerationMismatch) {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	got, _ := b.Get("counter")
	if int(got.Data[0]) != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got.Data[0], writers*perWriter)
	}
}
