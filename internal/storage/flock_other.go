//go:build !unix

package storage

import "os"

// Without flock, DirStore still serializes goroutines within one
// process via its mutex; concurrent processes on non-unix platforms
// are the operator's problem (documented on OpenDir's package comment).
func flockExclusive(*os.File) error { return nil }

func flockRelease(*os.File) error { return nil }
