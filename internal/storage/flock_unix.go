//go:build unix

package storage

import (
	"os"
	"syscall"
)

// flockExclusive blocks until this file description holds the
// exclusive advisory lock — the cross-process half of DirStore's
// serialization (goroutines within a process are handled by a mutex,
// since flock does not exclude the lock holder's own process).
func flockExclusive(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX)
}

func flockRelease(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
