package trace

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/simclock"
)

// appendTestRecords covers the encoder's shapes: the multi-step sample,
// a gap marker, an empty record, and a wide op map (many keys per step,
// exercising the sorted-key scratch).
func appendTestRecords() []*ProfileRecord {
	wide := NewStepStat(7)
	wide.Start, wide.End = 10, 20
	for i := 0; i < 40; i++ {
		name := "op" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		wide.Ops[OpKey{Name: name, Device: Device(i % 2)}] = OpStat{
			Count: int64(i + 1), Total: simclock.Duration(100 * (i + 1)),
		}
	}
	return []*ProfileRecord{
		sampleRecord(),
		{Seq: 9, Gap: true},
		{},
		{Seq: 3, WindowStart: 5, WindowEnd: 25, Steps: []*StepStat{wide}},
	}
}

func TestMarshalRecordAppendMatchesMarshal(t *testing.T) {
	for i, r := range appendTestRecords() {
		want := MarshalRecord(r)
		if got := MarshalRecordAppend(nil, r); !bytes.Equal(got, want) {
			t.Fatalf("record %d: append-from-nil bytes differ", i)
		}
		prefix := []byte("prefix")
		got := MarshalRecordAppend(append([]byte(nil), prefix...), r)
		if !bytes.HasPrefix(got, prefix) || !bytes.Equal(got[len(prefix):], want) {
			t.Fatalf("record %d: append onto prefix corrupted output", i)
		}
	}
}

// TestMarshalRecordAppendConcurrent hammers the pooled scratch from many
// goroutines; run under -race it proves the pool hands each encode
// private state.
func TestMarshalRecordAppendConcurrent(t *testing.T) {
	recs := appendTestRecords()
	want := make([][]byte, len(recs))
	for i, r := range recs {
		want[i] = MarshalRecord(r)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var buf []byte
			for i := 0; i < 200; i++ {
				k := (g + i) % len(recs)
				buf = MarshalRecordAppend(buf[:0], recs[k])
				if !bytes.Equal(buf, want[k]) {
					t.Errorf("goroutine %d: record %d bytes differ", g, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestMarshalRecordAppendZeroAlloc pins the hot-path contract: with a
// reused destination buffer and a warm pool, encoding allocates nothing.
// Race instrumentation adds bookkeeping allocations, so the assertion
// only runs in normal builds.
func TestMarshalRecordAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	r := sampleRecord()
	buf := MarshalRecordAppend(nil, r) // warm the pool and size the buffer
	allocs := testing.AllocsPerRun(100, func() {
		buf = MarshalRecordAppend(buf[:0], r)
	})
	if allocs != 0 {
		t.Fatalf("MarshalRecordAppend with reused dst: %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkMarshalRecordAppend is the pooled counterpart of
// BenchmarkMarshalRecord: same record, reused buffer. The allocs/op
// delta between the two is the win the pooled encoder state (including
// the reused sorted-op-key scratch) exists for.
func BenchmarkMarshalRecordAppend(b *testing.B) {
	r := sampleRecord()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = MarshalRecordAppend(buf[:0], r)
	}
}
