package trace

import (
	"fmt"

	"repro/internal/protowire"
	"repro/internal/simclock"
)

// Wire schema for raw event batches (what the TPU's profile service ships
// to the profiler before statistical reduction):
//
//	message Event {
//	  string name   = 1;
//	  uint64 device = 2;
//	  uint64 start  = 3;
//	  uint64 dur    = 4;
//	  sint64 step   = 5;
//	}
//
//	message EventBatch { repeated Event events = 1; }

// MarshalEvents encodes an event batch.
func MarshalEvents(events []Event) []byte {
	e := protowire.NewEncoder(nil)
	inner := protowire.NewEncoder(nil)
	for _, ev := range events {
		inner.Reset()
		inner.String(1, ev.Name)
		inner.Uint64(2, uint64(ev.Device))
		inner.Uint64(3, uint64(ev.Start))
		inner.Uint64(4, uint64(ev.Dur))
		inner.Int64(5, ev.Step)
		e.Raw(1, inner.Bytes())
	}
	return e.Bytes()
}

// UnmarshalEvents decodes an event batch.
func UnmarshalEvents(data []byte) ([]Event, error) {
	d := protowire.NewDecoder(data)
	var out []Event
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		if f != 1 {
			if err := d.Skip(ty); err != nil {
				return nil, err
			}
			continue
		}
		raw, err := d.Raw()
		if err != nil {
			return nil, err
		}
		ev, err := unmarshalEvent(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

func unmarshalEvent(data []byte) (Event, error) {
	var ev Event
	d := protowire.NewDecoder(data)
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return ev, err
		}
		switch f {
		case 1:
			v, err := d.String()
			if err != nil {
				return ev, err
			}
			ev.Name = v
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return ev, err
			}
			if v > uint64(TPU) {
				return ev, fmt.Errorf("trace: bad device %d", v)
			}
			ev.Device = Device(v)
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return ev, err
			}
			ev.Start = simclock.Time(v)
		case 4:
			v, err := d.Uint64()
			if err != nil {
				return ev, err
			}
			ev.Dur = simclock.Duration(v)
		case 5:
			v, err := d.Int64()
			if err != nil {
				return ev, err
			}
			ev.Step = v
		default:
			if err := d.Skip(ty); err != nil {
				return ev, err
			}
		}
	}
	return ev, nil
}
