package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/protowire"
	"repro/internal/simclock"
)

func TestEventsRoundTrip(t *testing.T) {
	events := []Event{
		{Name: "fusion", Device: TPU, Start: 100, Dur: 50, Step: 7},
		{Name: "OutfeedDequeueTuple", Device: Host, Start: 150, Dur: 2000, Step: 7},
		{Name: "init", Device: Host, Start: 0, Dur: 1, Step: -1},
	}
	got, err := UnmarshalEvents(MarshalEvents(events))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v vs %+v", i, got[i], events[i])
		}
	}
}

func TestEventsEmptyBatch(t *testing.T) {
	got, err := UnmarshalEvents(MarshalEvents(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v %v", got, err)
	}
}

func TestEventsRejectGarbage(t *testing.T) {
	if _, err := UnmarshalEvents([]byte{0x00}); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncate a valid batch mid-payload.
	data := MarshalEvents([]Event{{Name: "abcdefgh", Device: TPU, Start: 1, Dur: 2, Step: 3}})
	if _, err := UnmarshalEvents(data[:len(data)-2]); err == nil {
		t.Fatal("truncated batch accepted")
	}
}

func TestEventsRejectBadDevice(t *testing.T) {
	// Hand-encode an event with device=9.
	inner := protowire.NewEncoder(nil)
	inner.String(1, "x")
	inner.Uint64(2, 9)
	outer := protowire.NewEncoder(nil)
	outer.Raw(1, inner.Bytes())
	if _, err := UnmarshalEvents(outer.Bytes()); err == nil {
		t.Fatal("device 9 accepted")
	}
}

func TestEventsSkipUnknownFields(t *testing.T) {
	// Future schema additions must be skippable: unknown field 9 in the
	// event and unknown field 5 in the batch.
	inner := protowire.NewEncoder(nil)
	inner.String(1, "op")
	inner.Uint64(2, 1)
	inner.Uint64(9, 42) // unknown
	outer := protowire.NewEncoder(nil)
	outer.Raw(1, inner.Bytes())
	outer.Uint64(5, 7) // unknown
	got, err := UnmarshalEvents(outer.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "op" || got[0].Device != TPU {
		t.Fatalf("got %+v", got)
	}
}

func TestPropertyEventsRoundTrip(t *testing.T) {
	f := func(name string, dev bool, start, dur uint32, step int16) bool {
		ev := Event{
			Name:  name,
			Start: simclock.Time(start),
			Dur:   simclock.Duration(dur),
			Step:  int64(step),
		}
		if dev {
			ev.Device = TPU
		}
		got, err := UnmarshalEvents(MarshalEvents([]Event{ev}))
		return err == nil && len(got) == 1 && got[0] == ev
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventStringFormat(t *testing.T) {
	k := OpKey{Name: "fusion", Device: TPU}
	if k.String() != "tpu:fusion" {
		t.Fatalf("OpKey.String() = %q", k.String())
	}
}

func BenchmarkMarshalEvents(b *testing.B) {
	events := make([]Event, 200)
	for i := range events {
		events[i] = Event{Name: "fusion", Device: TPU,
			Start: simclock.Time(i * 100), Dur: 90, Step: int64(i / 10)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MarshalEvents(events)
	}
}

func BenchmarkUnmarshalEvents(b *testing.B) {
	events := make([]Event, 200)
	for i := range events {
		events[i] = Event{Name: "fusion", Device: TPU,
			Start: simclock.Time(i * 100), Dur: 90, Step: int64(i / 10)}
	}
	data := MarshalEvents(events)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalEvents(data); err != nil {
			b.Fatal(err)
		}
	}
}
