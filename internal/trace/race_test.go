//go:build race

package trace

// raceEnabled reports whether the race detector is compiled in; tests
// that assert exact allocation counts skip under it.
const raceEnabled = true
