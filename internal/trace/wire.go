package trace

import (
	"fmt"
	"sync"

	"repro/internal/protowire"
	"repro/internal/simclock"
)

// Wire schema for ProfileRecord (protobuf field numbers):
//
//	message ProfileRecord {
//	  uint64 seq          = 1;
//	  uint64 window_start = 2;
//	  uint64 window_end   = 3;
//	  uint64 num_events   = 4;
//	  bool   truncated    = 5;
//	  double idle_frac    = 6;
//	  double mxu_util     = 7;
//	  repeated StepStat steps = 8;
//	  bool   gap          = 9;
//	}
//
//	message StepStat {
//	  sint64 step      = 1;
//	  uint64 start     = 2;
//	  uint64 end       = 3;
//	  double idle_frac = 4;
//	  double mxu_util  = 5;
//	  repeated OpEntry ops = 6;
//	}
//
//	message OpEntry {
//	  string name   = 1;
//	  uint64 device = 2;
//	  uint64 count  = 3;
//	  uint64 total  = 4;
//	}

// encState is the pooled scratch an encode borrows: one buffer per
// message-nesting level (record fields go straight to the caller's dst;
// steps and ops are staged here so their length prefixes can be written
// first) plus the sorted-key slice the per-step op ordering needs.
// Pooling it makes MarshalRecordAppend allocation-free at steady state —
// the profiler's recording loop and the archive writer marshal every
// record through here, so per-record garbage would be paid once per
// profile window for the lifetime of a run.
type encState struct {
	step []byte
	op   []byte
	keys []OpKey
}

var encPool = sync.Pool{New: func() any { return new(encState) }}

// MarshalRecord encodes a ProfileRecord to protobuf wire format.
// It is MarshalRecordAppend into a fresh buffer; the two produce
// identical bytes by construction.
func MarshalRecord(r *ProfileRecord) []byte {
	return MarshalRecordAppend(nil, r)
}

// MarshalRecordAppend appends r's wire encoding to dst and returns the
// extended slice. Scratch state is pooled, so a caller that reuses dst
// (dst[:0]) encodes with zero steady-state allocations. Safe for
// concurrent use.
func MarshalRecordAppend(dst []byte, r *ProfileRecord) []byte {
	st := encPool.Get().(*encState)
	dst = protowire.AppendUint64(dst, 1, uint64(r.Seq))
	dst = protowire.AppendUint64(dst, 2, uint64(r.WindowStart))
	dst = protowire.AppendUint64(dst, 3, uint64(r.WindowEnd))
	dst = protowire.AppendUint64(dst, 4, uint64(r.NumEvents))
	dst = protowire.AppendBool(dst, 5, r.Truncated)
	dst = protowire.AppendDouble(dst, 6, r.IdleFrac)
	dst = protowire.AppendDouble(dst, 7, r.MXUUtil)
	for _, s := range r.Steps {
		st.step = appendStep(st.step[:0], s, st)
		dst = protowire.AppendBytes(dst, 8, st.step)
	}
	// Encoded only when set so pre-gap record bytes are unchanged.
	if r.Gap {
		dst = protowire.AppendBool(dst, 9, true)
	}
	encPool.Put(st)
	return dst
}

func appendStep(dst []byte, s *StepStat, st *encState) []byte {
	dst = protowire.AppendInt64(dst, 1, s.Step)
	dst = protowire.AppendUint64(dst, 2, uint64(s.Start))
	dst = protowire.AppendUint64(dst, 3, uint64(s.End))
	dst = protowire.AppendDouble(dst, 4, s.IdleFrac)
	dst = protowire.AppendDouble(dst, 5, s.MXUUtil)
	// Deterministic op order on the wire: sort via TopOps-like ordering is
	// unnecessary; stable key order is enough for reproducible bytes.
	st.keys = sortedOpKeysInto(st.keys[:0], s.Ops)
	for _, k := range st.keys {
		opst := s.Ops[k]
		st.op = st.op[:0]
		st.op = protowire.AppendString(st.op, 1, k.Name)
		st.op = protowire.AppendUint64(st.op, 2, uint64(k.Device))
		st.op = protowire.AppendUint64(st.op, 3, uint64(opst.Count))
		st.op = protowire.AppendUint64(st.op, 4, uint64(opst.Total))
		dst = protowire.AppendBytes(dst, 6, st.op)
	}
	return dst
}

// sortedOpKeysInto fills keys (typically a reused scratch slice) with
// ops' keys in (device, name) order. Reuse matters: the old
// one-fresh-slice-per-step form was a measurable share of marshal
// allocations (see BenchmarkMarshalRecordAppend).
func sortedOpKeysInto(keys []OpKey, ops map[OpKey]OpStat) []OpKey {
	for k := range ops {
		keys = append(keys, k)
	}
	// Insertion sort: op maps are small (tens of entries).
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && lessOpKey(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func lessOpKey(a, b OpKey) bool {
	if a.Device != b.Device {
		return a.Device < b.Device
	}
	return a.Name < b.Name
}

// UnmarshalRecord decodes a ProfileRecord from protobuf wire format.
func UnmarshalRecord(data []byte) (*ProfileRecord, error) {
	r := &ProfileRecord{}
	d := protowire.NewDecoder(data)
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			r.Seq = int64(v)
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			r.WindowStart = simclock.Time(v)
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			r.WindowEnd = simclock.Time(v)
		case 4:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			r.NumEvents = int64(v)
		case 5:
			v, err := d.Bool()
			if err != nil {
				return nil, err
			}
			r.Truncated = v
		case 6:
			v, err := d.Double()
			if err != nil {
				return nil, err
			}
			r.IdleFrac = v
		case 7:
			v, err := d.Double()
			if err != nil {
				return nil, err
			}
			r.MXUUtil = v
		case 8:
			raw, err := d.Raw()
			if err != nil {
				return nil, err
			}
			s, err := unmarshalStep(raw)
			if err != nil {
				return nil, err
			}
			r.Steps = append(r.Steps, s)
		case 9:
			v, err := d.Bool()
			if err != nil {
				return nil, err
			}
			r.Gap = v
		default:
			if err := d.Skip(ty); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

func unmarshalStep(data []byte) (*StepStat, error) {
	s := NewStepStat(0)
	d := protowire.NewDecoder(data)
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			v, err := d.Int64()
			if err != nil {
				return nil, err
			}
			s.Step = v
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			s.Start = simclock.Time(v)
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			s.End = simclock.Time(v)
		case 4:
			v, err := d.Double()
			if err != nil {
				return nil, err
			}
			s.IdleFrac = v
		case 5:
			v, err := d.Double()
			if err != nil {
				return nil, err
			}
			s.MXUUtil = v
		case 6:
			raw, err := d.Raw()
			if err != nil {
				return nil, err
			}
			if err := unmarshalOpInto(raw, s); err != nil {
				return nil, err
			}
		default:
			if err := d.Skip(ty); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

func unmarshalOpInto(data []byte, s *StepStat) error {
	var k OpKey
	var st OpStat
	d := protowire.NewDecoder(data)
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return err
		}
		switch f {
		case 1:
			v, err := d.String()
			if err != nil {
				return err
			}
			k.Name = v
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			if v > uint64(TPU) {
				return fmt.Errorf("trace: bad device %d", v)
			}
			k.Device = Device(v)
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			st.Count = int64(v)
		case 4:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			st.Total = simclock.Duration(v)
		default:
			if err := d.Skip(ty); err != nil {
				return err
			}
		}
	}
	if k.Name == "" {
		return fmt.Errorf("trace: op entry without name")
	}
	cur := s.Ops[k]
	cur.Add(st)
	s.Ops[k] = cur
	return nil
}
