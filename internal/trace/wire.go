package trace

import (
	"fmt"

	"repro/internal/protowire"
	"repro/internal/simclock"
)

// Wire schema for ProfileRecord (protobuf field numbers):
//
//	message ProfileRecord {
//	  uint64 seq          = 1;
//	  uint64 window_start = 2;
//	  uint64 window_end   = 3;
//	  uint64 num_events   = 4;
//	  bool   truncated    = 5;
//	  double idle_frac    = 6;
//	  double mxu_util     = 7;
//	  repeated StepStat steps = 8;
//	  bool   gap          = 9;
//	}
//
//	message StepStat {
//	  sint64 step      = 1;
//	  uint64 start     = 2;
//	  uint64 end       = 3;
//	  double idle_frac = 4;
//	  double mxu_util  = 5;
//	  repeated OpEntry ops = 6;
//	}
//
//	message OpEntry {
//	  string name   = 1;
//	  uint64 device = 2;
//	  uint64 count  = 3;
//	  uint64 total  = 4;
//	}

// MarshalRecord encodes a ProfileRecord to protobuf wire format.
func MarshalRecord(r *ProfileRecord) []byte {
	e := protowire.NewEncoder(nil)
	e.Uint64(1, uint64(r.Seq))
	e.Uint64(2, uint64(r.WindowStart))
	e.Uint64(3, uint64(r.WindowEnd))
	e.Uint64(4, uint64(r.NumEvents))
	e.Bool(5, r.Truncated)
	e.Double(6, r.IdleFrac)
	e.Double(7, r.MXUUtil)
	for _, s := range r.Steps {
		e.Raw(8, marshalStep(s))
	}
	// Encoded only when set so pre-gap record bytes are unchanged.
	if r.Gap {
		e.Bool(9, true)
	}
	return e.Bytes()
}

func marshalStep(s *StepStat) []byte {
	e := protowire.NewEncoder(nil)
	e.Int64(1, s.Step)
	e.Uint64(2, uint64(s.Start))
	e.Uint64(3, uint64(s.End))
	e.Double(4, s.IdleFrac)
	e.Double(5, s.MXUUtil)
	// Deterministic op order on the wire: sort via TopOps-like ordering is
	// unnecessary; stable key order is enough for reproducible bytes.
	for _, k := range sortedOpKeys(s.Ops) {
		st := s.Ops[k]
		oe := protowire.NewEncoder(nil)
		oe.String(1, k.Name)
		oe.Uint64(2, uint64(k.Device))
		oe.Uint64(3, uint64(st.Count))
		oe.Uint64(4, uint64(st.Total))
		e.Raw(6, oe.Bytes())
	}
	return e.Bytes()
}

func sortedOpKeys(ops map[OpKey]OpStat) []OpKey {
	keys := make([]OpKey, 0, len(ops))
	for k := range ops {
		keys = append(keys, k)
	}
	// Insertion sort: op maps are small (tens of entries).
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && lessOpKey(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func lessOpKey(a, b OpKey) bool {
	if a.Device != b.Device {
		return a.Device < b.Device
	}
	return a.Name < b.Name
}

// UnmarshalRecord decodes a ProfileRecord from protobuf wire format.
func UnmarshalRecord(data []byte) (*ProfileRecord, error) {
	r := &ProfileRecord{}
	d := protowire.NewDecoder(data)
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			r.Seq = int64(v)
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			r.WindowStart = simclock.Time(v)
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			r.WindowEnd = simclock.Time(v)
		case 4:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			r.NumEvents = int64(v)
		case 5:
			v, err := d.Bool()
			if err != nil {
				return nil, err
			}
			r.Truncated = v
		case 6:
			v, err := d.Double()
			if err != nil {
				return nil, err
			}
			r.IdleFrac = v
		case 7:
			v, err := d.Double()
			if err != nil {
				return nil, err
			}
			r.MXUUtil = v
		case 8:
			raw, err := d.Raw()
			if err != nil {
				return nil, err
			}
			s, err := unmarshalStep(raw)
			if err != nil {
				return nil, err
			}
			r.Steps = append(r.Steps, s)
		case 9:
			v, err := d.Bool()
			if err != nil {
				return nil, err
			}
			r.Gap = v
		default:
			if err := d.Skip(ty); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

func unmarshalStep(data []byte) (*StepStat, error) {
	s := NewStepStat(0)
	d := protowire.NewDecoder(data)
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			v, err := d.Int64()
			if err != nil {
				return nil, err
			}
			s.Step = v
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			s.Start = simclock.Time(v)
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			s.End = simclock.Time(v)
		case 4:
			v, err := d.Double()
			if err != nil {
				return nil, err
			}
			s.IdleFrac = v
		case 5:
			v, err := d.Double()
			if err != nil {
				return nil, err
			}
			s.MXUUtil = v
		case 6:
			raw, err := d.Raw()
			if err != nil {
				return nil, err
			}
			if err := unmarshalOpInto(raw, s); err != nil {
				return nil, err
			}
		default:
			if err := d.Skip(ty); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

func unmarshalOpInto(data []byte, s *StepStat) error {
	var k OpKey
	var st OpStat
	d := protowire.NewDecoder(data)
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return err
		}
		switch f {
		case 1:
			v, err := d.String()
			if err != nil {
				return err
			}
			k.Name = v
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			if v > uint64(TPU) {
				return fmt.Errorf("trace: bad device %d", v)
			}
			k.Device = Device(v)
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			st.Count = int64(v)
		case 4:
			v, err := d.Uint64()
			if err != nil {
				return err
			}
			st.Total = simclock.Duration(v)
		default:
			if err := d.Skip(ty); err != nil {
				return err
			}
		}
	}
	if k.Name == "" {
		return fmt.Errorf("trace: op entry without name")
	}
	cur := s.Ops[k]
	cur.Add(st)
	s.Ops[k] = cur
	return nil
}
