package trace

import "testing"

// The wire decoders parse bytes that cross a trust boundary (the RPC
// transport); they must reject arbitrary input with errors, never panics.

func FuzzUnmarshalRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(MarshalRecord(&ProfileRecord{Seq: 1}))
	r := Reduce(3, 0, []Event{
		{Name: "fusion", Device: TPU, Start: 5, Dur: 10, Step: 1},
		{Name: "Send", Device: Host, Start: 15, Dur: 1, Step: 1},
	}, 0.4, 0.2)
	f.Add(MarshalRecord(r))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := UnmarshalRecord(data)
		if err == nil && rec == nil {
			t.Fatal("nil record without error")
		}
	})
}

func FuzzUnmarshalEvents(f *testing.F) {
	f.Add([]byte{})
	f.Add(MarshalEvents([]Event{{Name: "x", Device: Host, Start: 1, Dur: 2, Step: 3}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := UnmarshalEvents(data)
		if err != nil {
			return
		}
		for _, e := range events {
			if e.Device != Host && e.Device != TPU {
				t.Fatalf("decoded invalid device %d", e.Device)
			}
		}
	})
}
