package trace

import (
	"bytes"
	"reflect"
	"testing"
)

func TestFramedRoundTrip(t *testing.T) {
	recs := appendTestRecords()
	var framed []byte
	for _, r := range recs {
		framed = AppendFramedRecord(framed, r)
	}

	frames, err := SplitFramed(framed)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(recs) {
		t.Fatalf("split %d frames, want %d", len(frames), len(recs))
	}
	for i, fr := range frames {
		if want := MarshalRecord(recs[i]); !bytes.Equal(fr, want) {
			t.Fatalf("frame %d bytes differ from MarshalRecord", i)
		}
	}

	got, err := UnmarshalFramed(framed)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*ProfileRecord, len(recs))
	for i, r := range recs {
		rt, err := UnmarshalRecord(MarshalRecord(r))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rt
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("framed round trip lost data")
	}
}

func TestFramedEmpty(t *testing.T) {
	frames, err := SplitFramed(nil)
	if err != nil || len(frames) != 0 {
		t.Fatalf("SplitFramed(nil) = %d frames, %v", len(frames), err)
	}
	recs, err := UnmarshalFramed(nil)
	if err != nil || len(recs) != 0 {
		t.Fatalf("UnmarshalFramed(nil) = %d records, %v", len(recs), err)
	}
}

func TestSkipFrames(t *testing.T) {
	recs := appendTestRecords()
	var framed []byte
	for _, r := range recs {
		framed = AppendFramedRecord(framed, r)
	}
	for n := 0; n <= len(recs); n++ {
		tail, err := SkipFrames(framed, n)
		if err != nil {
			t.Fatalf("skip %d: %v", n, err)
		}
		rest, err := SplitFramed(tail)
		if err != nil {
			t.Fatalf("skip %d tail: %v", n, err)
		}
		if len(rest) != len(recs)-n {
			t.Fatalf("skip %d left %d frames, want %d", n, len(rest), len(recs)-n)
		}
	}
	if _, err := SkipFrames(framed, len(recs)+1); err == nil {
		t.Fatal("skipping past the end succeeded")
	}
}

func TestFramedRejectsTruncation(t *testing.T) {
	framed := AppendFramedRecord(nil, sampleRecord())
	for _, bad := range [][]byte{
		framed[:len(framed)-1],   // frame shorter than its prefix claims
		{0xff, 0xff, 0xff, 0x7f}, // huge length, no payload
	} {
		if _, err := SplitFramed(bad); err == nil {
			t.Fatalf("malformed stream %v accepted", bad[:4])
		}
	}
}

// TestAppendFramedRecordZeroAlloc pins the batch path's contract: with a
// reused destination and a warm pool, framing allocates nothing.
func TestAppendFramedRecordZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	r := sampleRecord()
	buf := AppendFramedRecord(nil, r)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendFramedRecord(buf[:0], r)
	})
	if allocs != 0 {
		t.Fatalf("AppendFramedRecord with reused dst: %.1f allocs/op, want 0", allocs)
	}
}
