// Package trace defines the profile data model shared by the TPU device,
// the profiler, and the analyzer.
//
// The unit the device produces is the Event: one op execution with a name,
// device, start time, duration, and training step number. A profile window
// (one profiler request/response round trip) may carry at most
// MaxEventsPerProfile events spanning at most MaxProfileWindow of simulated
// time — the limits the paper reports for Cloud TPU profile responses.
//
// TPUPoint-Profiler does not keep raw events. It reduces each window to a
// ProfileRecord: per-step, per-op statistical summaries (invocation counts
// and total durations) plus the TPU idle-time and MXU-utilization metadata
// that ships with each response. Those records are what the recording
// thread persists and what TPUPoint-Analyzer clusters into phases.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/simclock"
)

// Limits on a single profile window, from the paper (Section III-A):
// "each profile can potentially include a maximum of 1,000,000 events
// lasting for a maximum duration of 60,000 ms in total elapsed time."
const (
	MaxEventsPerProfile = 1_000_000
	MaxProfileWindow    = 60_000 * simclock.Millisecond
)

// Device identifies where an op ran.
type Device uint8

// Devices. The paper's Table II separates "Host Operations" from
// "TPU Operations"; we keep the same split.
const (
	Host Device = iota
	TPU
)

func (d Device) String() string {
	switch d {
	case Host:
		return "host"
	case TPU:
		return "tpu"
	default:
		return fmt.Sprintf("device(%d)", uint8(d))
	}
}

// Event is a single op execution observed by the device.
type Event struct {
	Name   string
	Device Device
	Start  simclock.Time
	Dur    simclock.Duration
	Step   int64 // training step number; -1 for out-of-step activity
}

// End returns the event's end time.
func (e Event) End() simclock.Time { return e.Start.Add(e.Dur) }

// OpKey identifies an operator within a device's namespace.
type OpKey struct {
	Name   string
	Device Device
}

func (k OpKey) String() string { return k.Device.String() + ":" + k.Name }

// OpStat is the statistical summary of one operator: how many times it was
// invoked and the total time it consumed.
type OpStat struct {
	Count int64
	Total simclock.Duration
}

// Add folds another stat into s.
func (s *OpStat) Add(o OpStat) {
	s.Count += o.Count
	s.Total += o.Total
}

// StepStat summarizes all activity attributed to one training step.
type StepStat struct {
	Step  int64
	Start simclock.Time
	End   simclock.Time
	Ops   map[OpKey]OpStat

	// Metadata delivered with each profile response.
	IdleFrac float64 // fraction of the step the TPU sat idle
	MXUUtil  float64 // MXU busy fraction during the step
}

// NewStepStat returns an empty StepStat for the given step number.
func NewStepStat(step int64) *StepStat {
	return &StepStat{Step: step, Ops: make(map[OpKey]OpStat)}
}

// Observe folds one event into the step summary.
func (s *StepStat) Observe(e Event) {
	k := OpKey{Name: e.Name, Device: e.Device}
	st := s.Ops[k]
	st.Count++
	st.Total += e.Dur
	s.Ops[k] = st
	if s.Start == 0 && s.End == 0 {
		s.Start, s.End = e.Start, e.End()
		return
	}
	if e.Start < s.Start {
		s.Start = e.Start
	}
	if e.End() > s.End {
		s.End = e.End()
	}
}

// Duration returns the wall-clock span of the step.
func (s *StepStat) Duration() simclock.Duration { return s.End.Sub(s.Start) }

// TotalOpTime returns the sum of all op durations in the step (may exceed
// Duration when ops overlap across devices).
func (s *StepStat) TotalOpTime() simclock.Duration {
	var t simclock.Duration
	for _, st := range s.Ops {
		t += st.Total
	}
	return t
}

// OpSet returns the set of distinct op keys in the step. The OLS
// StepSimilarity metric (Equation 1) is computed over these sets.
func (s *StepStat) OpSet() map[OpKey]struct{} {
	set := make(map[OpKey]struct{}, len(s.Ops))
	for k := range s.Ops {
		set[k] = struct{}{}
	}
	return set
}

// Merge folds another summary of the same step into s (steps can straddle
// profile-window boundaries). Merging a different step number panics: it is
// always a profiler bug.
func (s *StepStat) Merge(o *StepStat) {
	if o.Step != s.Step {
		panic(fmt.Sprintf("trace: merging step %d into step %d", o.Step, s.Step))
	}
	for k, st := range o.Ops {
		cur := s.Ops[k]
		cur.Add(st)
		s.Ops[k] = cur
	}
	durS, durO := float64(s.Duration()), float64(o.Duration())
	if durS+durO > 0 {
		// Duration-weighted average of the per-window metadata.
		s.IdleFrac = (s.IdleFrac*durS + o.IdleFrac*durO) / (durS + durO)
		s.MXUUtil = (s.MXUUtil*durS + o.MXUUtil*durO) / (durS + durO)
	}
	if o.Start < s.Start {
		s.Start = o.Start
	}
	if o.End > s.End {
		s.End = o.End
	}
}

// Clone returns a deep copy of the step summary.
func (s *StepStat) Clone() *StepStat {
	c := &StepStat{Step: s.Step, Start: s.Start, End: s.End,
		IdleFrac: s.IdleFrac, MXUUtil: s.MXUUtil,
		Ops: make(map[OpKey]OpStat, len(s.Ops))}
	for k, v := range s.Ops {
		c.Ops[k] = v
	}
	return c
}

// ProfileRecord is the statistical reduction of one profile window — what
// TPUPoint-Profiler stores instead of raw events.
type ProfileRecord struct {
	Seq         int64 // monotonically increasing per profiler
	WindowStart simclock.Time
	WindowEnd   simclock.Time
	NumEvents   int64 // events observed in the window before reduction
	Truncated   bool  // window hit MaxEventsPerProfile or MaxProfileWindow
	Gap         bool  // window lost to a fault; no events, a hole in the stream
	Steps       []*StepStat

	// Window-level metadata from the device.
	IdleFrac float64
	MXUUtil  float64
}

// Reduce summarizes a batch of events into a ProfileRecord. Events beyond
// MaxEventsPerProfile, or starting after MaxProfileWindow past windowStart,
// are dropped and the record is marked Truncated — matching the hard limits
// of real Cloud TPU profile responses.
func Reduce(seq int64, windowStart simclock.Time, events []Event, idleFrac, mxuUtil float64) *ProfileRecord {
	rec := &ProfileRecord{
		Seq:         seq,
		WindowStart: windowStart,
		WindowEnd:   windowStart,
		IdleFrac:    idleFrac,
		MXUUtil:     mxuUtil,
	}
	deadline := windowStart.Add(MaxProfileWindow)
	bySteps := make(map[int64]*StepStat)
	for _, e := range events {
		if rec.NumEvents >= MaxEventsPerProfile {
			rec.Truncated = true
			break
		}
		if e.Start > deadline {
			rec.Truncated = true
			break
		}
		rec.NumEvents++
		ss, ok := bySteps[e.Step]
		if !ok {
			ss = NewStepStat(e.Step)
			bySteps[e.Step] = ss
		}
		ss.Observe(e)
		if e.End() > rec.WindowEnd {
			rec.WindowEnd = e.End()
		}
	}
	steps := make([]*StepStat, 0, len(bySteps))
	for _, ss := range bySteps {
		ss.IdleFrac = idleFrac
		ss.MXUUtil = mxuUtil
		steps = append(steps, ss)
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i].Step < steps[j].Step })
	rec.Steps = steps
	return rec
}

// AggregateSteps merges the per-window step summaries of many records into
// one per-step series ordered by step number. This is stage 1 of every
// analyzer algorithm ("extract the records from all statistical profiles
// and aggregate records together using the TPU step numbers").
func AggregateSteps(records []*ProfileRecord) []*StepStat {
	byStep := make(map[int64]*StepStat)
	for _, r := range records {
		for _, s := range r.Steps {
			if cur, ok := byStep[s.Step]; ok {
				cur.Merge(s)
			} else {
				byStep[s.Step] = s.Clone()
			}
		}
	}
	out := make([]*StepStat, 0, len(byStep))
	for _, s := range byStep {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// TopOps returns the n most time-consuming operators across the given
// steps for one device, descending by total duration (ties broken by name
// for determinism). This drives the paper's Table II.
func TopOps(steps []*StepStat, dev Device, n int) []OpTotal {
	agg := make(map[string]OpStat)
	for _, s := range steps {
		for k, st := range s.Ops {
			if k.Device != dev {
				continue
			}
			cur := agg[k.Name]
			cur.Add(st)
			agg[k.Name] = cur
		}
	}
	out := make([]OpTotal, 0, len(agg))
	for name, st := range agg {
		out = append(out, OpTotal{Name: name, Device: dev, Count: st.Count, Total: st.Total})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// OpTotal is an operator with its aggregate statistics, as reported in
// top-op tables.
type OpTotal struct {
	Name   string
	Device Device
	Count  int64
	Total  simclock.Duration
}
