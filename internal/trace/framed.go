package trace

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Framed record streams are the batch wire form shared across the
// toolchain: a concatenation of (uvarint length, record wire bytes)
// pairs — the same layout archive segments use for their payloads. The
// profiler's batched puts, the fleet AppendBatch RPC, and batch storage
// objects all carry this format, so one encoder/decoder pair serves
// every hop.

// frameScratch stages one record's encoding so its length prefix can be
// written first; pooled so steady-state framing allocates nothing.
type frameScratch struct{ buf []byte }

var framePool = sync.Pool{New: func() any { return new(frameScratch) }}

// AppendFramedRecord appends r as one length-prefixed frame to dst and
// returns the extended slice. Safe for concurrent use.
func AppendFramedRecord(dst []byte, r *ProfileRecord) []byte {
	st := framePool.Get().(*frameScratch)
	st.buf = MarshalRecordAppend(st.buf[:0], r)
	dst = binary.AppendUvarint(dst, uint64(len(st.buf)))
	dst = append(dst, st.buf...)
	framePool.Put(st)
	return dst
}

// SplitFramed slices a framed stream into its per-record wire bytes.
// The returned frames alias data; they are views, not copies.
func SplitFramed(data []byte) ([][]byte, error) {
	var frames [][]byte
	for pos := 0; pos < len(data); {
		l, n := binary.Uvarint(data[pos:])
		if n <= 0 || uint64(len(data)-pos-n) < l {
			return nil, fmt.Errorf("trace: framed records: bad frame at %d", pos)
		}
		start := pos + n
		frames = append(frames, data[start:start+int(l)])
		pos = start + int(l)
	}
	return frames, nil
}

// SkipFrames returns the tail of a framed stream after its first n
// frames — how a sender resumes a partially accepted batch.
func SkipFrames(data []byte, n int) ([]byte, error) {
	for i := 0; i < n; i++ {
		l, k := binary.Uvarint(data)
		if k <= 0 || uint64(len(data)-k) < l {
			return nil, fmt.Errorf("trace: framed records: bad frame while skipping %d of %d", i, n)
		}
		data = data[k+int(l):]
	}
	return data, nil
}

// UnmarshalFramed decodes every record in a framed stream.
func UnmarshalFramed(data []byte) ([]*ProfileRecord, error) {
	frames, err := SplitFramed(data)
	if err != nil {
		return nil, err
	}
	out := make([]*ProfileRecord, 0, len(frames))
	for i, b := range frames {
		rec, err := UnmarshalRecord(b)
		if err != nil {
			return nil, fmt.Errorf("trace: framed record %d: %w", i, err)
		}
		out = append(out, rec)
	}
	return out, nil
}
