package trace

import (
	"testing"

	"repro/internal/simclock"
)

func ev(name string, dev Device, start simclock.Time, dur simclock.Duration, step int64) Event {
	return Event{Name: name, Device: dev, Start: start, Dur: dur, Step: step}
}

func TestStepStatObserve(t *testing.T) {
	s := NewStepStat(3)
	s.Observe(ev("MatMul", TPU, 100, 50, 3))
	s.Observe(ev("MatMul", TPU, 150, 30, 3))
	s.Observe(ev("Reshape", TPU, 180, 10, 3))

	if st := s.Ops[OpKey{"MatMul", TPU}]; st.Count != 2 || st.Total != 80 {
		t.Fatalf("MatMul stat = %+v", st)
	}
	if s.Start != 100 || s.End != 190 {
		t.Fatalf("span [%d,%d)", s.Start, s.End)
	}
	if s.Duration() != 90 {
		t.Fatalf("Duration = %d", s.Duration())
	}
	if s.TotalOpTime() != 90 {
		t.Fatalf("TotalOpTime = %d", s.TotalOpTime())
	}
}

func TestStepStatObserveExtendsLeft(t *testing.T) {
	s := NewStepStat(0)
	s.Observe(ev("a", Host, 100, 10, 0))
	s.Observe(ev("b", Host, 50, 10, 0))
	if s.Start != 50 {
		t.Fatalf("Start = %d, want 50", s.Start)
	}
}

func TestOpSet(t *testing.T) {
	s := NewStepStat(0)
	s.Observe(ev("a", Host, 0, 1, 0))
	s.Observe(ev("a", Host, 1, 1, 0))
	s.Observe(ev("b", TPU, 2, 1, 0))
	set := s.OpSet()
	if len(set) != 2 {
		t.Fatalf("OpSet size = %d", len(set))
	}
	if _, ok := set[OpKey{"a", Host}]; !ok {
		t.Fatal("missing host:a")
	}
}

func TestMergeSameStep(t *testing.T) {
	a := NewStepStat(5)
	a.Observe(ev("x", TPU, 0, 100, 5))
	a.IdleFrac, a.MXUUtil = 0.2, 0.5
	b := NewStepStat(5)
	b.Observe(ev("x", TPU, 100, 100, 5))
	b.Observe(ev("y", Host, 100, 20, 5))
	b.IdleFrac, b.MXUUtil = 0.4, 0.3

	a.Merge(b)
	if st := a.Ops[OpKey{"x", TPU}]; st.Count != 2 || st.Total != 200 {
		t.Fatalf("merged x = %+v", st)
	}
	if _, ok := a.Ops[OpKey{"y", Host}]; !ok {
		t.Fatal("merged op y missing")
	}
	if a.Start != 0 || a.End != 200 {
		t.Fatalf("merged span [%d,%d)", a.Start, a.End)
	}
	// Weighted average of idle: both windows 100 long -> 0.3.
	if a.IdleFrac < 0.29 || a.IdleFrac > 0.31 {
		t.Fatalf("merged idle = %g", a.IdleFrac)
	}
}

func TestMergeDifferentStepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merge of different steps did not panic")
		}
	}()
	NewStepStat(1).Merge(NewStepStat(2))
}

func TestCloneIndependence(t *testing.T) {
	a := NewStepStat(1)
	a.Observe(ev("x", TPU, 0, 10, 1))
	c := a.Clone()
	c.Observe(ev("x", TPU, 10, 10, 1))
	if a.Ops[OpKey{"x", TPU}].Count != 1 {
		t.Fatal("clone shares op map")
	}
}

func TestReduceGroupsBySteps(t *testing.T) {
	events := []Event{
		ev("infeed", TPU, 0, 10, 1),
		ev("MatMul", TPU, 10, 80, 1),
		ev("infeed", TPU, 100, 10, 2),
		ev("MatMul", TPU, 110, 85, 2),
	}
	rec := Reduce(7, 0, events, 0.35, 0.25)
	if rec.Seq != 7 || rec.NumEvents != 4 || rec.Truncated {
		t.Fatalf("record header: %+v", rec)
	}
	if len(rec.Steps) != 2 {
		t.Fatalf("steps = %d", len(rec.Steps))
	}
	if rec.Steps[0].Step != 1 || rec.Steps[1].Step != 2 {
		t.Fatal("steps not sorted")
	}
	if rec.Steps[0].IdleFrac != 0.35 || rec.Steps[0].MXUUtil != 0.25 {
		t.Fatal("metadata not propagated to steps")
	}
	if rec.WindowEnd != 195 {
		t.Fatalf("WindowEnd = %d", rec.WindowEnd)
	}
}

func TestReduceEventLimit(t *testing.T) {
	events := make([]Event, 0, MaxEventsPerProfile+10)
	for i := 0; i < MaxEventsPerProfile+10; i++ {
		events = append(events, ev("x", TPU, simclock.Time(i), 1, 0))
	}
	rec := Reduce(0, 0, events, 0, 0)
	if !rec.Truncated {
		t.Fatal("record over event limit not truncated")
	}
	if rec.NumEvents != MaxEventsPerProfile {
		t.Fatalf("NumEvents = %d", rec.NumEvents)
	}
}

func TestReduceWindowLimit(t *testing.T) {
	events := []Event{
		ev("a", TPU, 0, 10, 0),
		ev("b", TPU, simclock.Time(MaxProfileWindow)+1000, 10, 0),
	}
	rec := Reduce(0, 0, events, 0, 0)
	if !rec.Truncated {
		t.Fatal("record over window limit not truncated")
	}
	if rec.NumEvents != 1 {
		t.Fatalf("NumEvents = %d", rec.NumEvents)
	}
}

func TestAggregateStepsMergesAcrossRecords(t *testing.T) {
	r1 := Reduce(0, 0, []Event{
		ev("MatMul", TPU, 0, 50, 1),
		ev("MatMul", TPU, 100, 50, 2),
	}, 0.3, 0.2)
	r2 := Reduce(1, 150, []Event{
		ev("MatMul", TPU, 150, 50, 2), // step 2 straddles the boundary
		ev("MatMul", TPU, 200, 50, 3),
	}, 0.3, 0.2)

	steps := AggregateSteps([]*ProfileRecord{r1, r2})
	if len(steps) != 3 {
		t.Fatalf("aggregated %d steps, want 3", len(steps))
	}
	if steps[1].Step != 2 {
		t.Fatalf("middle step = %d", steps[1].Step)
	}
	if st := steps[1].Ops[OpKey{"MatMul", TPU}]; st.Count != 2 || st.Total != 100 {
		t.Fatalf("straddling step stat = %+v", st)
	}
}

func TestAggregateStepsDoesNotMutateRecords(t *testing.T) {
	r1 := Reduce(0, 0, []Event{ev("x", TPU, 0, 10, 1)}, 0, 0)
	r2 := Reduce(1, 0, []Event{ev("x", TPU, 10, 10, 1)}, 0, 0)
	AggregateSteps([]*ProfileRecord{r1, r2})
	if r1.Steps[0].Ops[OpKey{"x", TPU}].Count != 1 {
		t.Fatal("AggregateSteps mutated source record")
	}
}

func TestTopOps(t *testing.T) {
	s1 := NewStepStat(1)
	s1.Observe(ev("fusion", TPU, 0, 500, 1))
	s1.Observe(ev("Reshape", TPU, 500, 200, 1))
	s1.Observe(ev("OutfeedDequeueTuple", Host, 0, 900, 1))
	s2 := NewStepStat(2)
	s2.Observe(ev("fusion", TPU, 1000, 600, 2))
	s2.Observe(ev("MatMul", TPU, 1600, 400, 2))

	top := TopOps([]*StepStat{s1, s2}, TPU, 2)
	if len(top) != 2 {
		t.Fatalf("top len = %d", len(top))
	}
	if top[0].Name != "fusion" || top[0].Total != 1100 || top[0].Count != 2 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	if top[1].Name != "MatMul" {
		t.Fatalf("top[1] = %+v", top[1])
	}
	// Host namespace is separate.
	host := TopOps([]*StepStat{s1, s2}, Host, 5)
	if len(host) != 1 || host[0].Name != "OutfeedDequeueTuple" {
		t.Fatalf("host top = %+v", host)
	}
}

func TestTopOpsTieBreakByName(t *testing.T) {
	s := NewStepStat(0)
	s.Observe(ev("beta", TPU, 0, 100, 0))
	s.Observe(ev("alpha", TPU, 100, 100, 0))
	top := TopOps([]*StepStat{s}, TPU, 0)
	if top[0].Name != "alpha" || top[1].Name != "beta" {
		t.Fatalf("tie-break order: %+v", top)
	}
}

func TestDeviceString(t *testing.T) {
	if Host.String() != "host" || TPU.String() != "tpu" {
		t.Fatal("device names")
	}
	if Device(9).String() != "device(9)" {
		t.Fatal("unknown device name")
	}
}

func TestEventEnd(t *testing.T) {
	e := ev("x", TPU, 10, 5, 0)
	if e.End() != 15 {
		t.Fatalf("End = %d", e.End())
	}
}
