package trace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/simclock"
)

func sampleRecord() *ProfileRecord {
	events := []Event{
		ev("TransferBufferToInfeedLocked", Host, 0, 120, 1),
		ev("fusion", TPU, 120, 800, 1),
		ev("Reshape", TPU, 920, 60, 1),
		ev("OutfeedDequeueTuple", Host, 980, 40, 1),
		ev("fusion", TPU, 1100, 810, 2),
		ev("MatMul", TPU, 1910, 300, 2),
	}
	return Reduce(42, 0, events, 0.389, 0.227)
}

func TestWireRoundTrip(t *testing.T) {
	r := sampleRecord()
	data := MarshalRecord(r)
	got, err := UnmarshalRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != r.Seq || got.NumEvents != r.NumEvents || got.Truncated != r.Truncated {
		t.Fatalf("header mismatch: %+v vs %+v", got, r)
	}
	if got.WindowStart != r.WindowStart || got.WindowEnd != r.WindowEnd {
		t.Fatalf("window mismatch")
	}
	if got.IdleFrac != r.IdleFrac || got.MXUUtil != r.MXUUtil {
		t.Fatalf("metadata mismatch")
	}
	if len(got.Steps) != len(r.Steps) {
		t.Fatalf("steps %d vs %d", len(got.Steps), len(r.Steps))
	}
	for i := range got.Steps {
		a, b := got.Steps[i], r.Steps[i]
		if a.Step != b.Step || a.Start != b.Start || a.End != b.End {
			t.Fatalf("step %d header mismatch", i)
		}
		if !reflect.DeepEqual(a.Ops, b.Ops) {
			t.Fatalf("step %d ops mismatch: %+v vs %+v", i, a.Ops, b.Ops)
		}
	}
}

func TestWireDeterministic(t *testing.T) {
	a := MarshalRecord(sampleRecord())
	b := MarshalRecord(sampleRecord())
	if !bytes.Equal(a, b) {
		t.Fatal("marshal is not deterministic")
	}
}

func TestWireEmptyRecord(t *testing.T) {
	r := &ProfileRecord{Seq: 1}
	got, err := UnmarshalRecord(MarshalRecord(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1 || len(got.Steps) != 0 {
		t.Fatalf("empty record round trip: %+v", got)
	}
}

func TestWireGapRoundTrip(t *testing.T) {
	gap := &ProfileRecord{Seq: 3, Gap: true}
	got, err := UnmarshalRecord(MarshalRecord(gap))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Gap || got.Seq != 3 {
		t.Fatalf("gap marker lost: %+v", got)
	}
	// The gap field must not disturb non-gap encodings: absent when
	// false, so pre-gap byte streams are unchanged.
	r := sampleRecord()
	got, err = UnmarshalRecord(MarshalRecord(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Gap {
		t.Fatal("non-gap record decoded as gap")
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalRecord([]byte{0x00, 0x01, 0x02}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestWireRejectsBadDevice(t *testing.T) {
	r := sampleRecord()
	data := MarshalRecord(r)
	// Corrupt systematically: re-encode an op with device=9 by hand is
	// complex; instead check a truncated buffer errors.
	if _, err := UnmarshalRecord(data[:len(data)-3]); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestPropertyWireRoundTripPreservesTotals(t *testing.T) {
	f := func(durations []uint16, steps []uint8) bool {
		if len(durations) == 0 {
			return true
		}
		events := make([]Event, 0, len(durations))
		at := simclock.Time(0)
		for i, d := range durations {
			step := int64(0)
			if len(steps) > 0 {
				step = int64(steps[i%len(steps)] % 8)
			}
			events = append(events, ev("op", TPU, at, simclock.Duration(d)+1, step))
			at = at.Add(simclock.Duration(d) + 1)
		}
		rec := Reduce(1, 0, events, 0.5, 0.5)
		got, err := UnmarshalRecord(MarshalRecord(rec))
		if err != nil {
			return false
		}
		var wantTotal, gotTotal simclock.Duration
		for _, s := range rec.Steps {
			wantTotal += s.TotalOpTime()
		}
		for _, s := range got.Steps {
			gotTotal += s.TotalOpTime()
		}
		return wantTotal == gotTotal && len(got.Steps) == len(rec.Steps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshalRecord(b *testing.B) {
	r := sampleRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MarshalRecord(r)
	}
}

func BenchmarkUnmarshalRecord(b *testing.B) {
	data := MarshalRecord(sampleRecord())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalRecord(data); err != nil {
			b.Fatal(err)
		}
	}
}
