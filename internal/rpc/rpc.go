// Package rpc implements the minimal gRPC-like transport that connects
// TPUPoint-Profiler to the simulated Cloud TPU's profile service.
//
// TensorFlow reaches Cloud TPUs through gRPC: a server registers methods
// and waits for requests; a client holds a stub that frames protobuf
// payloads onto a channel. This package reproduces that path with the
// stdlib only: length-prefixed frames over any net.Conn (net.Pipe for
// in-process wiring, TCP for the CLI tools), a method-dispatch server, and
// a concurrent-safe client stub with request multiplexing.
//
// Wire framing, little-endian:
//
//	frame  := u32 length, payload
//	payload (request)  := u64 requestID, u16 methodLen, method, body
//	payload (response) := u64 requestID, u8 status, body-or-error
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrame bounds a single message; large enough for a truncated-at-limits
// profile record, small enough to catch runaway encodings.
const MaxFrame = 64 << 20

// Errors returned by the transport.
var (
	ErrClosed          = errors.New("rpc: connection closed")
	ErrFrameTooLarge   = errors.New("rpc: frame exceeds limit")
	ErrUnknownMethod   = errors.New("rpc: unknown method")
	ErrMalformedFrame  = errors.New("rpc: malformed frame")
	ErrShutdownPending = errors.New("rpc: server shutting down")
)

// ErrBusy is the admission-control error: the server is at capacity
// (connection limit reached, a collection session table full, or a
// bounded queue saturated) and the caller should back off and retry.
// Handlers return errors wrapping ErrBusy to ship the dedicated busy
// status; clients see the error as transient (IsTransient), so
// ReconnectClient retries it with backoff instead of failing the call
// or tripping the circuit breaker.
var ErrBusy = errors.New("rpc: server busy")

const (
	statusOK       = 0
	statusErr      = 1
	statusBusy     = 2
	statusRedirect = 3
)

// RedirectError is the placement-routing status: the server is alive
// and healthy but does not own the resource the call addresses, and
// Endpoint names the replica that does. A handler returns (or wraps) a
// RedirectError to ship the dedicated redirect status; clients decode
// it back into a typed error. Redirects are transient (IsTransient):
// the cure is re-issuing the call against Endpoint, which
// ReconnectClient does automatically when it is configured with an
// endpoint set.
type RedirectError struct{ Endpoint string }

func (e *RedirectError) Error() string { return "rpc: redirected to " + e.Endpoint }

// Handler serves one method: body in, body out.
type Handler func(body []byte) ([]byte, error)

// Server dispatches framed requests to registered handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	closed   bool
	conns    map[net.Conn]struct{}
	maxConns int
	wg       sync.WaitGroup
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Register installs a handler for method. Registering a duplicate panics —
// service wiring is static and a collision is a programming error.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("rpc: duplicate method %q", method))
	}
	s.handlers[method] = h
}

// SetConnLimit caps the number of concurrently served connections
// (0 = unlimited). A connection beyond the cap is answered with one
// busy-status response and closed instead of getting its own serving
// goroutine — bounded resource use under a connection storm, and a
// clear transient error the resilient client backs off on.
func (s *Server) SetConnLimit(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxConns = n
}

// ServeConn serves requests on conn until it closes or the server shuts
// down. Each request is handled synchronously in arrival order, which
// matches the profile service's behaviour (one outstanding profile at a
// time per connection).
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	if s.maxConns > 0 && len(s.conns) >= s.maxConns {
		s.mu.Unlock()
		refuseBusy(conn, s.maxConns)
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.wg.Done()
	}()

	// Per-connection buffer reuse: requests are read into readBuf and
	// responses framed into respBuf, so a connection's steady-state
	// serving loop allocates nothing for framing. Handler bodies alias
	// readBuf — handlers that retain bytes past their return (the fleet
	// append path) copy first.
	var readBuf, respBuf []byte
	for {
		payload, err := readFrameInto(conn, &readBuf)
		if err != nil {
			return
		}
		id, method, body, err := splitRequest(payload)
		if err != nil {
			return
		}
		s.mu.RLock()
		h, ok := s.handlers[method]
		closed := s.closed
		s.mu.RUnlock()

		var status byte
		var out []byte
		switch {
		case closed:
			status, out = statusErr, []byte(ErrShutdownPending.Error())
		case !ok:
			status, out = statusErr, []byte(fmt.Sprintf("%s: %q", ErrUnknownMethod, method))
		default:
			res, herr := safeCall(h, body)
			var redir *RedirectError
			switch {
			case herr == nil:
				status, out = statusOK, res
			case errors.Is(herr, ErrBusy):
				status, out = statusBusy, []byte(herr.Error())
			case errors.As(herr, &redir):
				// The redirect body is the bare endpoint so the client
				// can reconstruct the typed error without parsing prose.
				status, out = statusRedirect, []byte(redir.Endpoint)
			default:
				status, out = statusErr, []byte(herr.Error())
			}
		}
		n := 8 + 1 + len(out)
		if n > MaxFrame {
			return
		}
		respBuf = respBuf[:0]
		respBuf = binary.LittleEndian.AppendUint32(respBuf, uint32(n))
		respBuf = binary.LittleEndian.AppendUint64(respBuf, id)
		respBuf = append(respBuf, status)
		respBuf = append(respBuf, out...)
		if _, err := conn.Write(respBuf); err != nil {
			return
		}
	}
}

// refuseBusy answers the first request on an over-limit connection with
// a busy-status response so the client gets a classifiable error rather
// than a silent close.
func refuseBusy(conn net.Conn, limit int) {
	payload, err := readFrame(conn)
	if err != nil {
		return
	}
	id, _, _, err := splitRequest(payload)
	if err != nil {
		return
	}
	msg := fmt.Sprintf("%s: connection limit %d reached", ErrBusy, limit)
	_ = writeFrame(conn, responseFrame(id, statusBusy, []byte(msg)))
}

// safeCall invokes a handler, converting a panic into a handler error so
// one bad request (or a corrupted body that trips a decoder) can never
// take the serving goroutine — and with it the connection teardown
// bookkeeping — down.
func safeCall(h Handler, body []byte) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rpc: handler panic: %v", r)
		}
	}()
	return h(body)
}

// Serve accepts connections from l until Close.
func (s *Server) Serve(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go s.ServeConn(conn)
	}
}

// Close stops the server and closes all active connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Client is a stub bound to one connection. Calls are concurrency-safe
// and multiplexed by request id.
type Client struct {
	conn net.Conn

	// writeMu serializes frame writes and guards writeBuf, the reused
	// buffer every request is framed into: one allocation-free build,
	// one conn.Write per call at steady state.
	writeMu  sync.Mutex
	writeBuf []byte

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan response
	err     error
	done    chan struct{}
}

type response struct {
	status byte
	body   []byte
}

// NewClient wraps conn in a stub and starts its receive loop.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan response),
		done:    make(chan struct{}),
	}
	go c.recvLoop()
	return c
}

// Dial connects to a TCP address and returns a stub.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

func (c *Client) recvLoop() {
	for {
		payload, err := readFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		if len(payload) < 9 {
			c.fail(ErrMalformedFrame)
			return
		}
		id := binary.LittleEndian.Uint64(payload[:8])
		status := payload[8]
		body := payload[9:]
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ok {
			ch <- response{status: status, body: body}
		}
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.done)
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
}

// ErrTimeout is returned by CallTimeout when the deadline elapses before
// the response arrives. The call's response, if it ever arrives, is
// discarded.
var ErrTimeout = errors.New("rpc: call timed out")

// RemoteError is an application-level failure reported by the remote
// handler. The transport round-trip itself succeeded, so a RemoteError is
// proof of connectivity — retry layers must not treat it as a transport
// fault (see IsTransient).
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "rpc: remote error: " + e.Msg }

// IsTransient reports whether err could plausibly be cured by retrying on
// a fresh connection: closed or reset transports, timeouts, dial
// failures, and server-busy rejections (ErrBusy — the server is alive,
// just saturated; backing off and retrying is exactly right). Repository
// manifest contention (repo.ErrManifestContention wraps ErrBusy) rides
// the same classification: every failed CAS means another writer
// committed, so the losing agent should back off and retry, not fail
// its run. Placement redirects (RedirectError) are transient too: the
// server is healthy, the call just belongs on the replica the error
// names. Application-level RemoteErrors, oversized frames (a local
// encoding bug), and an open circuit breaker are not transient.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	return !errors.Is(err, ErrCircuitOpen) && !errors.Is(err, ErrFrameTooLarge)
}

// send registers a pending entry and writes the request frame, returning
// the id and the buffered response channel to wait on.
func (c *Client) send(method string, body []byte) (uint64, chan response, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, nil, err
	}
	id := c.nextID
	c.nextID++
	ch := make(chan response, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := c.writeRequest(id, method, body)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return 0, nil, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	return id, ch, nil
}

// writeRequest frames one request (length prefix included) into the
// client's reused write buffer and ships it with a single conn.Write.
// Callers hold writeMu.
func (c *Client) writeRequest(id uint64, method string, body []byte) error {
	n := 8 + 2 + len(method) + len(body)
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	buf := c.writeBuf[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(method)))
	buf = append(buf, method...)
	buf = append(buf, body...)
	c.writeBuf = buf
	_, err := c.conn.Write(buf)
	return err
}

func (c *Client) finish(resp response, ok bool) ([]byte, error) {
	if !ok {
		return nil, c.clientErr()
	}
	switch resp.status {
	case statusOK:
		return resp.body, nil
	case statusBusy:
		return nil, fmt.Errorf("%w: %s", ErrBusy, string(resp.body))
	case statusRedirect:
		return nil, &RedirectError{Endpoint: string(resp.body)}
	default:
		return nil, &RemoteError{Msg: string(resp.body)}
	}
}

// CallTimeout is Call with a deadline. A zero or negative timeout means
// wait forever (identical to Call). On timeout the pending entry is
// deregistered immediately — no goroutine or map entry lingers until
// connection death — and a late response, if one arrives, is dropped by
// the receive loop.
func (c *Client) CallTimeout(method string, body []byte, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		return c.Call(method, body)
	}
	id, ch, err := c.send(method, body)
	if err != nil {
		return nil, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		return c.finish(resp, ok)
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %s after %v", ErrTimeout, method, timeout)
	}
}

// Call invokes method with body and waits for the response.
func (c *Client) Call(method string, body []byte) ([]byte, error) {
	_, ch, err := c.send(method, body)
	if err != nil {
		return nil, err
	}
	resp, ok := <-ch
	return c.finish(resp, ok)
}

func (c *Client) clientErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return ErrClosed
}

// Close tears down the connection; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail(ErrClosed)
	return err
}

// --- framing -------------------------------------------------------------

func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// readFrameInto is readFrame with caller-owned buffer reuse: the payload
// lands in *buf (grown as needed) and the returned slice aliases it —
// valid only until the next call with the same buffer.
func readFrameInto(r io.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	payload := (*buf)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func requestFrame(id uint64, method string, body []byte) []byte {
	buf := make([]byte, 0, 8+2+len(method)+len(body))
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], id)
	buf = append(buf, u64[:]...)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(method)))
	buf = append(buf, u16[:]...)
	buf = append(buf, method...)
	buf = append(buf, body...)
	return buf
}

func responseFrame(id uint64, status byte, body []byte) []byte {
	buf := make([]byte, 0, 8+1+len(body))
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], id)
	buf = append(buf, u64[:]...)
	buf = append(buf, status)
	buf = append(buf, body...)
	return buf
}

func splitRequest(payload []byte) (id uint64, method string, body []byte, err error) {
	if len(payload) < 10 {
		return 0, "", nil, ErrMalformedFrame
	}
	id = binary.LittleEndian.Uint64(payload[:8])
	mlen := int(binary.LittleEndian.Uint16(payload[8:10]))
	if len(payload) < 10+mlen {
		return 0, "", nil, ErrMalformedFrame
	}
	method = string(payload[10 : 10+mlen])
	body = payload[10+mlen:]
	return id, method, body, nil
}

// Pipe wires a client directly to a server in-process and returns the
// stub. The connection closes when either side closes.
func Pipe(s *Server) *Client {
	cc, sc := net.Pipe()
	go s.ServeConn(sc)
	return NewClient(cc)
}
