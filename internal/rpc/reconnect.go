package rpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/prng"
)

// ErrCircuitOpen is returned once the breaker has tripped: the endpoint
// has failed so many consecutive times that further redial attempts would
// only burn time the caller could spend shutting down cleanly.
var ErrCircuitOpen = errors.New("rpc: circuit breaker open")

// Caller is the calling surface shared by Client and ReconnectClient, so
// consumers (the profiler's RPC path, the CLI tools) can take either.
type Caller interface {
	Call(method string, body []byte) ([]byte, error)
	CallTimeout(method string, body []byte, timeout time.Duration) ([]byte, error)
	Close() error
}

var (
	_ Caller = (*Client)(nil)
	_ Caller = (*ReconnectClient)(nil)
)

// DialFunc produces a fresh connection to the profile endpoint. The
// ReconnectClient owns the returned conn.
type DialFunc func() (net.Conn, error)

// ReconnectOptions configure a ReconnectClient. The zero value of every
// field except Dial gets a sensible default.
type ReconnectOptions struct {
	// Dial is required: how to reach the endpoint.
	Dial DialFunc

	// CallTimeout bounds each attempt of each call (0 = no deadline).
	CallTimeout time.Duration

	// MaxRetries is how many times a call is retried after a transport
	// failure before the failure is surfaced (default 3; negative
	// disables retries).
	MaxRetries int

	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt up to MaxBackoff. Defaults 10ms and 1s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// JitterFrac spreads each backoff uniformly over ±frac of its value
	// (default 0.2) using a PRNG keyed by Seed, so two clients with the
	// same script sleep the same sequence — reproducible tests, and no
	// synchronized thundering herds in production.
	JitterFrac float64
	Seed       uint64

	// BreakerThreshold trips the circuit breaker after this many
	// consecutive transport failures (across calls); once open, every
	// call fails fast with ErrCircuitOpen. Default 8; negative disables.
	BreakerThreshold int

	// Sleep is the delay function, injectable so tests can count
	// backoffs instead of waiting them out. Default time.Sleep.
	Sleep func(time.Duration)

	// Obs, when set, receives the client's metrics (calls, failures,
	// per-call latency, redials) and breaker state-transition events.
	Obs *obs.Registry
}

// rcMetrics are the ReconnectClient's obs instruments (nil-safe).
type rcMetrics struct {
	calls       *obs.Counter // Call/CallTimeout invocations
	failures    *obs.Counter // calls that returned a transport error
	retries     *obs.Counter // per-call retry attempts after backoff
	busy        *obs.Counter // server-busy rejections retried with backoff
	redials     *obs.Counter // fresh connections established
	breakerOpen *obs.Counter // times the breaker tripped
	latency     *obs.Histogram
	breaker     *obs.Gauge // 0 closed, 1 open
}

func newRCMetrics(r *obs.Registry) rcMetrics {
	return rcMetrics{
		calls:       r.Counter("rpc.calls"),
		failures:    r.Counter("rpc.call.failures"),
		retries:     r.Counter("rpc.call.retries"),
		busy:        r.Counter("rpc.call.busy"),
		redials:     r.Counter("rpc.redials"),
		breakerOpen: r.Counter("rpc.breaker.opened"),
		latency:     r.Histogram("rpc.call.latency_us"),
		breaker:     r.Gauge("rpc.breaker.state"),
	}
}

const (
	defaultMaxRetries       = 3
	defaultBaseBackoff      = 10 * time.Millisecond
	defaultMaxBackoff       = time.Second
	defaultJitterFrac       = 0.2
	defaultBreakerThreshold = 8
)

// ReconnectClient is a Caller that survives connection death: on a
// transport failure it discards the connection, redials through its
// DialFunc with capped exponential backoff and deterministic jitter, and
// replays the call. A circuit breaker turns a persistently dead endpoint
// into an immediate, classifiable fatal error instead of an unbounded
// retry storm.
type ReconnectClient struct {
	opts ReconnectOptions
	m    rcMetrics

	mu      sync.Mutex
	rng     *prng.Source
	cur     *Client
	consec  int // consecutive transport failures
	redials int
	tripped bool
	closed  bool
}

// NewReconnectClient builds a client over dial-produced connections. It
// does not dial eagerly; the first Call does.
func NewReconnectClient(opts ReconnectOptions) (*ReconnectClient, error) {
	if opts.Dial == nil {
		return nil, errors.New("rpc: ReconnectOptions.Dial is required")
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = defaultMaxRetries
	} else if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = defaultBaseBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = defaultMaxBackoff
	}
	if opts.JitterFrac <= 0 {
		opts.JitterFrac = defaultJitterFrac
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = defaultBreakerThreshold
	} else if opts.BreakerThreshold < 0 {
		opts.BreakerThreshold = 0
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	return &ReconnectClient{opts: opts, m: newRCMetrics(opts.Obs), rng: prng.New(opts.Seed)}, nil
}

// Call invokes method, transparently redialing and retrying transport
// failures up to MaxRetries with backoff. Application-level RemoteErrors
// return immediately and reset the failure streak (the wire worked).
func (r *ReconnectClient) Call(method string, body []byte) ([]byte, error) {
	return r.CallTimeout(method, body, r.opts.CallTimeout)
}

// CallTimeout is Call with an explicit per-attempt deadline overriding
// the configured CallTimeout.
func (r *ReconnectClient) CallTimeout(method string, body []byte, timeout time.Duration) ([]byte, error) {
	r.m.calls.Inc()
	start := time.Now()
	defer r.m.latency.ObserveSince(start)
	var lastErr error
	for attempt := 0; attempt <= r.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			r.m.retries.Inc()
			r.opts.Sleep(r.backoff(attempt))
		}
		c, err := r.client()
		if err != nil {
			if errors.Is(err, ErrClosed) || !IsTransient(err) {
				return nil, err // closed client or open breaker
			}
			lastErr = err
			r.m.failures.Inc()
			if r.recordFailure(nil) {
				return nil, fmt.Errorf("%w: %d consecutive failures, last: %v", ErrCircuitOpen, r.opts.BreakerThreshold, err)
			}
			continue
		}
		out, err := c.CallTimeout(method, body, timeout)
		if err == nil {
			r.recordSuccess()
			return out, nil
		}
		var re *RemoteError
		if errors.As(err, &re) {
			r.recordSuccess()
			return nil, err
		}
		if errors.Is(err, ErrBusy) {
			// The server answered — the transport is fine, it's just
			// saturated. Keep the connection, don't count toward the
			// breaker, back off and retry.
			lastErr = err
			r.m.busy.Inc()
			r.recordSuccess()
			continue
		}
		lastErr = err
		r.m.failures.Inc()
		if r.recordFailure(c) {
			return nil, fmt.Errorf("%w: %d consecutive failures, last: %v", ErrCircuitOpen, r.opts.BreakerThreshold, err)
		}
	}
	return nil, lastErr
}

// client returns the live connection, dialing a fresh one if needed.
func (r *ReconnectClient) client() (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if r.tripped {
		return nil, ErrCircuitOpen
	}
	if r.cur != nil {
		return r.cur, nil
	}
	conn, err := r.opts.Dial()
	if err != nil {
		return nil, fmt.Errorf("rpc: redial: %w", err)
	}
	r.cur = NewClient(conn)
	r.redials++
	r.m.redials.Inc()
	if r.redials > 1 {
		r.opts.Obs.Emit("rpc", "redial", fmt.Sprintf("connection %d established", r.redials))
	}
	return r.cur, nil
}

func (r *ReconnectClient) recordSuccess() {
	r.mu.Lock()
	r.consec = 0
	r.mu.Unlock()
}

// recordFailure counts a transport failure, discards the failed
// connection (a timed-out endpoint may be wedged; redialing is the safe
// recovery), and reports whether the breaker just tripped or is open.
func (r *ReconnectClient) recordFailure(c *Client) (open bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c != nil && r.cur == c {
		r.cur.Close()
		r.cur = nil
	}
	r.consec++
	if th := r.opts.BreakerThreshold; th > 0 && r.consec >= th && !r.tripped {
		r.tripped = true
		r.m.breakerOpen.Inc()
		r.m.breaker.Set(1)
		r.opts.Obs.Emit("rpc", "breaker-open",
			fmt.Sprintf("%d consecutive transport failures", r.consec))
	}
	return r.tripped
}

// backoff computes the capped exponential delay for the given retry
// attempt (1-based) with deterministic jitter.
func (r *ReconnectClient) backoff(attempt int) time.Duration {
	d := r.opts.BaseBackoff
	for i := 1; i < attempt && d < r.opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.opts.MaxBackoff {
		d = r.opts.MaxBackoff
	}
	r.mu.Lock()
	j := r.rng.Jitter(float64(d), r.opts.JitterFrac)
	r.mu.Unlock()
	return time.Duration(j)
}

// Tripped reports whether the circuit breaker is open.
func (r *ReconnectClient) Tripped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tripped
}

// Redials reports how many connections have been established.
func (r *ReconnectClient) Redials() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.redials
}

// Close tears down the current connection and stops future calls.
func (r *ReconnectClient) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if r.cur != nil {
		err := r.cur.Close()
		r.cur = nil
		return err
	}
	return nil
}
