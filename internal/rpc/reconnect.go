package rpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/prng"
)

// ErrCircuitOpen is returned once every endpoint's breaker has tripped:
// the endpoint set has failed so many consecutive times that further
// redial attempts would only burn time the caller could spend shutting
// down cleanly.
var ErrCircuitOpen = errors.New("rpc: circuit breaker open")

// Caller is the calling surface shared by Client and ReconnectClient, so
// consumers (the profiler's RPC path, the CLI tools) can take either.
type Caller interface {
	Call(method string, body []byte) ([]byte, error)
	CallTimeout(method string, body []byte, timeout time.Duration) ([]byte, error)
	Close() error
}

var (
	_ Caller = (*Client)(nil)
	_ Caller = (*ReconnectClient)(nil)
)

// DialFunc produces a fresh connection to the profile endpoint. The
// ReconnectClient owns the returned conn.
type DialFunc func() (net.Conn, error)

// EndpointDialFunc produces a fresh connection to a named endpoint; the
// ReconnectClient owns the returned conn. Used when the client is
// configured with an endpoint set rather than a single Dial.
type EndpointDialFunc func(endpoint string) (net.Conn, error)

// ReconnectOptions configure a ReconnectClient. The zero value of every
// field except Dial/Endpoints gets a sensible default.
type ReconnectOptions struct {
	// Dial reaches a single unnamed endpoint. Exactly one of Dial or
	// Endpoints must be set.
	Dial DialFunc

	// Endpoints is the replica set: the client fails over between these
	// addresses on transport errors and follows typed redirects to
	// whichever replica owns a resource. Each endpoint gets its own
	// circuit breaker; ErrCircuitOpen fires only when every endpoint's
	// breaker is open.
	Endpoints []string

	// DialEndpoint reaches one member of Endpoints (default: TCP dial
	// of the endpoint string). Ignored in single-Dial mode.
	DialEndpoint EndpointDialFunc

	// CallTimeout bounds each attempt of each call (0 = no deadline).
	CallTimeout time.Duration

	// MaxRetries is how many times a call is retried after a transport
	// failure before the failure is surfaced (default 3; negative
	// disables retries).
	MaxRetries int

	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt up to MaxBackoff. Defaults 10ms and 1s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// JitterFrac spreads each backoff uniformly over ±frac of its value
	// (default 0.2) using a PRNG keyed by Seed, so two clients with the
	// same script sleep the same sequence — reproducible tests, and no
	// synchronized thundering herds in production.
	JitterFrac float64
	Seed       uint64

	// BreakerThreshold trips an endpoint's circuit breaker after this
	// many consecutive transport failures against it (across calls);
	// once every endpoint is open, calls fail fast with ErrCircuitOpen.
	// Default 8; negative disables.
	BreakerThreshold int

	// Sleep is the delay function, injectable so tests can count
	// backoffs instead of waiting them out. Default time.Sleep.
	Sleep func(time.Duration)

	// Obs, when set, receives the client's metrics (calls, failures,
	// per-call latency, redials) and breaker state-transition events.
	Obs *obs.Registry
}

// rcMetrics are the ReconnectClient's obs instruments (nil-safe).
// Transport faults are classified by where they happened: a refused or
// failed dial to a dead endpoint lands in rpc.dial.failures, a failure
// of an established in-flight call in rpc.call.failures — so a replica
// outage shows up as dial pressure, not as phantom call errors.
type rcMetrics struct {
	calls        *obs.Counter // Call/CallTimeout invocations
	failures     *obs.Counter // established calls that returned a transport error
	dialFailures *obs.Counter // dials that never produced a connection
	retries      *obs.Counter // per-call retry attempts after backoff
	busy         *obs.Counter // server-busy rejections retried with backoff
	redirects    *obs.Counter // placement redirects followed
	redials      *obs.Counter // fresh connections established
	breakerOpen  *obs.Counter // times an endpoint breaker tripped
	latency      *obs.Histogram
	breaker      *obs.Gauge // number of open endpoint breakers
}

func newRCMetrics(r *obs.Registry) rcMetrics {
	return rcMetrics{
		calls:        r.Counter("rpc.calls"),
		failures:     r.Counter("rpc.call.failures"),
		dialFailures: r.Counter("rpc.dial.failures"),
		retries:      r.Counter("rpc.call.retries"),
		busy:         r.Counter("rpc.call.busy"),
		redirects:    r.Counter("rpc.redirects"),
		redials:      r.Counter("rpc.redials"),
		breakerOpen:  r.Counter("rpc.breaker.opened"),
		latency:      r.Histogram("rpc.call.latency_us"),
		breaker:      r.Gauge("rpc.breaker.state"),
	}
}

const (
	defaultMaxRetries       = 3
	defaultBaseBackoff      = 10 * time.Millisecond
	defaultMaxBackoff       = time.Second
	defaultJitterFrac       = 0.2
	defaultBreakerThreshold = 8
)

// endpoint is one member of the client's endpoint set: its address, its
// live connection (nil until dialed), and its private breaker state.
type endpoint struct {
	addr    string
	c       *Client
	consec  int // consecutive transport failures against this endpoint
	tripped bool
}

// ReconnectClient is a Caller that survives connection and replica
// death: on a transport failure it discards the connection, fails over
// to the next endpoint in its set (redialing with capped exponential
// backoff and deterministic jitter), and replays the call. Typed
// placement redirects (RedirectError) are followed to the replica that
// owns the resource. Per-endpoint circuit breakers turn a persistently
// dead endpoint into a skip, and a fully dead set into an immediate,
// classifiable fatal error instead of an unbounded retry storm.
type ReconnectClient struct {
	opts ReconnectOptions
	m    rcMetrics

	mu      sync.Mutex
	rng     *prng.Source
	eps     []*endpoint
	byAddr  map[string]int
	cur     int // index of the preferred endpoint
	redials int
	closed  bool
}

// NewReconnectClient builds a client over dial-produced connections. It
// does not dial eagerly; the first Call does.
func NewReconnectClient(opts ReconnectOptions) (*ReconnectClient, error) {
	if opts.Dial == nil && len(opts.Endpoints) == 0 {
		return nil, errors.New("rpc: ReconnectOptions needs Dial or Endpoints")
	}
	if opts.Dial != nil && len(opts.Endpoints) > 0 {
		return nil, errors.New("rpc: ReconnectOptions.Dial and Endpoints are mutually exclusive")
	}
	if len(opts.Endpoints) > 0 && opts.DialEndpoint == nil {
		opts.DialEndpoint = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = defaultMaxRetries
	} else if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = defaultBaseBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = defaultMaxBackoff
	}
	if opts.JitterFrac <= 0 {
		opts.JitterFrac = defaultJitterFrac
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = defaultBreakerThreshold
	} else if opts.BreakerThreshold < 0 {
		opts.BreakerThreshold = 0
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	r := &ReconnectClient{
		opts:   opts,
		m:      newRCMetrics(opts.Obs),
		rng:    prng.New(opts.Seed),
		byAddr: make(map[string]int),
	}
	if len(opts.Endpoints) == 0 {
		r.eps = []*endpoint{{addr: ""}}
	} else {
		for _, addr := range opts.Endpoints {
			if _, dup := r.byAddr[addr]; dup {
				continue
			}
			r.byAddr[addr] = len(r.eps)
			r.eps = append(r.eps, &endpoint{addr: addr})
		}
	}
	return r, nil
}

// Call invokes method, transparently redialing, failing over, and
// retrying transport failures up to MaxRetries with backoff.
// Application-level RemoteErrors return immediately and reset the
// endpoint's failure streak (the wire worked).
func (r *ReconnectClient) Call(method string, body []byte) ([]byte, error) {
	return r.CallTimeout(method, body, r.opts.CallTimeout)
}

// CallTimeout is Call with an explicit per-attempt deadline overriding
// the configured CallTimeout.
func (r *ReconnectClient) CallTimeout(method string, body []byte, timeout time.Duration) ([]byte, error) {
	r.m.calls.Inc()
	start := time.Now()
	defer r.m.latency.ObserveSince(start)
	var lastErr error
	for attempt := 0; attempt <= r.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			r.m.retries.Inc()
			r.opts.Sleep(r.backoff(attempt))
		}
		ep, c, err := r.client()
		if err != nil {
			if ep == nil {
				return nil, err // closed client, or every breaker open
			}
			// The dial itself failed: the endpoint is unreachable, no
			// call ever went out. Classified as dial pressure — not a
			// call failure — but it still feeds the endpoint's breaker
			// (a dead endpoint must eventually be skipped).
			lastErr = err
			r.m.dialFailures.Inc()
			if r.recordFailure(ep, nil) {
				return nil, fmt.Errorf("%w: %d consecutive failures, last: %v", ErrCircuitOpen, r.opts.BreakerThreshold, err)
			}
			r.failover(ep)
			continue
		}
		out, err := c.CallTimeout(method, body, timeout)
		if err == nil {
			r.recordSuccess(ep)
			return out, nil
		}
		var redir *RedirectError
		if errors.As(err, &redir) {
			// The server is healthy but the resource lives on another
			// replica. Re-aim at it; the redirected attempt still counts
			// against MaxRetries, which bounds redirect loops.
			r.recordSuccess(ep)
			if !r.follow(redir.Endpoint) {
				return nil, err // single-Dial mode cannot re-aim
			}
			lastErr = err
			r.m.redirects.Inc()
			continue
		}
		var re *RemoteError
		if errors.As(err, &re) {
			r.recordSuccess(ep)
			return nil, err
		}
		if errors.Is(err, ErrBusy) {
			// The server answered — the transport is fine, it's just
			// saturated. Keep the connection, don't count toward the
			// breaker, back off and retry.
			lastErr = err
			r.m.busy.Inc()
			r.recordSuccess(ep)
			continue
		}
		lastErr = err
		r.m.failures.Inc()
		if r.recordFailure(ep, c) {
			return nil, fmt.Errorf("%w: %d consecutive failures, last: %v", ErrCircuitOpen, r.opts.BreakerThreshold, err)
		}
		r.failover(ep)
	}
	return nil, lastErr
}

// client returns the preferred live endpoint and its connection,
// dialing a fresh one if needed. Endpoints with open breakers are
// skipped; when every breaker is open the set is dead and the call
// fails fast. A dial failure returns the endpoint it happened on so the
// caller can attribute it.
func (r *ReconnectClient) client() (*endpoint, *Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, nil, ErrClosed
	}
	ep := r.pickLocked()
	if ep == nil {
		return nil, nil, ErrCircuitOpen
	}
	if ep.c != nil {
		return ep, ep.c, nil
	}
	conn, err := r.dialLocked(ep)
	if err != nil {
		return ep, nil, fmt.Errorf("rpc: redial: %w", err)
	}
	ep.c = NewClient(conn)
	r.redials++
	r.m.redials.Inc()
	if r.redials > 1 {
		r.opts.Obs.Emit("rpc", "redial", fmt.Sprintf("connection %d established (endpoint %q)", r.redials, ep.addr))
	}
	return ep, ep.c, nil
}

// pickLocked returns the preferred endpoint: cur if its breaker is
// closed, else the next closed-breaker endpoint in ring order, else nil.
func (r *ReconnectClient) pickLocked() *endpoint {
	n := len(r.eps)
	for i := 0; i < n; i++ {
		ep := r.eps[(r.cur+i)%n]
		if !ep.tripped {
			if i > 0 {
				r.cur = (r.cur + i) % n
			}
			return ep
		}
	}
	return nil
}

func (r *ReconnectClient) dialLocked(ep *endpoint) (net.Conn, error) {
	if r.opts.Dial != nil {
		return r.opts.Dial()
	}
	return r.opts.DialEndpoint(ep.addr)
}

// follow re-aims the client at addr after a placement redirect, adding
// the endpoint to the set if the redirecting replica named one the
// client was not configured with. Reports false in single-Dial mode,
// where arbitrary endpoints cannot be reached.
func (r *ReconnectClient) follow(addr string) bool {
	if r.opts.DialEndpoint == nil || addr == "" {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.byAddr[addr]
	if !ok {
		i = len(r.eps)
		r.byAddr[addr] = i
		r.eps = append(r.eps, &endpoint{addr: addr})
	}
	r.cur = i
	return true
}

func (r *ReconnectClient) recordSuccess(ep *endpoint) {
	r.mu.Lock()
	ep.consec = 0
	r.mu.Unlock()
}

// recordFailure counts a transport failure against ep's breaker,
// discards its failed connection (a timed-out endpoint may be wedged;
// redialing is the safe recovery), and reports whether the whole
// endpoint set is now dead (every breaker open).
func (r *ReconnectClient) recordFailure(ep *endpoint, c *Client) (allOpen bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c != nil && ep.c == c {
		ep.c.Close()
		ep.c = nil
	}
	ep.consec++
	if th := r.opts.BreakerThreshold; th > 0 && ep.consec >= th && !ep.tripped {
		ep.tripped = true
		r.m.breakerOpen.Inc()
		r.m.breaker.Set(r.openCountLocked())
		r.opts.Obs.Emit("rpc", "breaker-open",
			fmt.Sprintf("endpoint %q: %d consecutive transport failures", ep.addr, ep.consec))
	}
	for _, e := range r.eps {
		if !e.tripped {
			return false
		}
	}
	return true
}

// failover advances the preferred endpoint past ep so the next attempt
// lands on a different replica (no-op with a single endpoint).
func (r *ReconnectClient) failover(ep *endpoint) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.eps) <= 1 {
		return
	}
	if r.eps[r.cur] == ep {
		r.cur = (r.cur + 1) % len(r.eps)
	}
}

func (r *ReconnectClient) openCountLocked() int64 {
	n := int64(0)
	for _, e := range r.eps {
		if e.tripped {
			n++
		}
	}
	return n
}

// backoff computes the capped exponential delay for the given retry
// attempt (1-based) with deterministic jitter.
func (r *ReconnectClient) backoff(attempt int) time.Duration {
	d := r.opts.BaseBackoff
	for i := 1; i < attempt && d < r.opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.opts.MaxBackoff {
		d = r.opts.MaxBackoff
	}
	r.mu.Lock()
	j := r.rng.Jitter(float64(d), r.opts.JitterFrac)
	r.mu.Unlock()
	return time.Duration(j)
}

// Tripped reports whether the endpoint set is dead: every endpoint's
// circuit breaker is open. (With a single endpoint this is the classic
// single-breaker semantics.)
func (r *ReconnectClient) Tripped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.eps {
		if !e.tripped {
			return false
		}
	}
	return true
}

// EndpointTripped reports whether the breaker for one endpoint address
// is open (always false for unknown addresses).
func (r *ReconnectClient) EndpointTripped(addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byAddr[addr]; ok {
		return r.eps[i].tripped
	}
	return false
}

// CurrentEndpoint reports the preferred endpoint address ("" in
// single-Dial mode).
func (r *ReconnectClient) CurrentEndpoint() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eps[r.cur].addr
}

// Redials reports how many connections have been established.
func (r *ReconnectClient) Redials() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.redials
}

// Close tears down every live connection and stops future calls.
func (r *ReconnectClient) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	var firstErr error
	for _, ep := range r.eps {
		if ep.c != nil {
			if err := ep.c.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			ep.c = nil
		}
	}
	return firstErr
}
