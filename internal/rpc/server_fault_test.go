package rpc

import (
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/faultnet"
)

// rawConnTo returns a raw client-side conn served by s, optionally
// wrapped in faults.
func rawConnTo(s *Server, cfg faultnet.Config) net.Conn {
	cc, sc := net.Pipe()
	go s.ServeConn(sc)
	return faultnet.Wrap(cc, cfg)
}

// assertStillServing proves the server survived whatever was just thrown
// at it: a fresh connection must complete a call.
func assertStillServing(t *testing.T, s *Server) {
	t.Helper()
	c := Pipe(s)
	defer c.Close()
	got, err := c.CallTimeout("echo", []byte("alive"), 2*time.Second)
	if err != nil || string(got) != "alive" {
		t.Fatalf("server no longer serving: %q %v", got, err)
	}
}

func TestServerDropsMalformedFrame(t *testing.T) {
	s := echoServer(t)
	defer s.Close()

	conn := rawConnTo(s, faultnet.Config{})
	// A 3-byte payload is shorter than the smallest legal request.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 3)
	conn.Write(hdr[:])
	conn.Write([]byte{1, 2, 3})

	// The server must drop this connection...
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a malformed frame instead of dropping the conn")
	}
	// ...and keep serving everyone else.
	assertStillServing(t, s)
}

func TestServerDropsBadMethodLength(t *testing.T) {
	s := echoServer(t)
	defer s.Close()

	conn := rawConnTo(s, faultnet.Config{})
	// Legal frame sizes, but the method length points past the payload.
	payload := requestFrame(7, "echo", []byte("x"))
	payload[8], payload[9] = 0xff, 0xff
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	conn.Write(hdr[:])
	conn.Write(payload)

	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a corrupt method length")
	}
	assertStillServing(t, s)
}

func TestServerDropsOversizedFrame(t *testing.T) {
	s := echoServer(t)
	defer s.Close()

	conn := rawConnTo(s, faultnet.Config{})
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrame+1)
	conn.Write(hdr[:])

	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server accepted an oversized frame header")
	}
	assertStillServing(t, s)
}

func TestServerSurvivesTruncatedFrame(t *testing.T) {
	s := echoServer(t)
	defer s.Close()

	// The fault silently discards everything past byte 6 of the write
	// stream: the server receives a complete header promising a payload
	// that never fully arrives.
	conn := rawConnTo(s, faultnet.Config{TruncateWriteAt: 6})
	payload := requestFrame(1, "echo", []byte("truncated-in-flight"))
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.Write(payload) // mostly lost in flight

	// The server is rightly still waiting for the rest; the client gives
	// up and closes, and the server must shrug it off.
	conn.Close()
	assertStillServing(t, s)
}

func TestServerSurvivesCorruptedHeader(t *testing.T) {
	s := echoServer(t)
	defer s.Close()

	// Flip a bit somewhere in the length header of the first frame. The
	// server sees a wrong (possibly huge, possibly short) length and must
	// either drop the conn or stall waiting for bytes that never come —
	// never panic, never stop serving others.
	for seed := uint64(0); seed < 8; seed++ {
		conn := rawConnTo(s, faultnet.Config{Seed: seed, CorruptWriteAt: int64(seed%4) + 1})
		// A corrupted length can leave both sides blocked mid-exchange on
		// the synchronous pipe; the deadline bounds that and the close
		// tears the conn down either way.
		conn.SetDeadline(time.Now().Add(100 * time.Millisecond))
		payload := requestFrame(1, "echo", []byte("garble"))
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
		conn.Write(hdr[:])
		conn.Write(payload)
		conn.Close()
	}
	assertStillServing(t, s)
}

func TestServerIsolatesHandlerPanic(t *testing.T) {
	s := NewServer()
	defer s.Close()
	s.Register("echo", func(body []byte) ([]byte, error) { return body, nil })
	s.Register("boom", func(body []byte) ([]byte, error) { panic("handler bug") })

	c := Pipe(s)
	defer c.Close()
	_, err := c.Call("boom", nil)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want RemoteError mentioning the panic", err)
	}
	// Same connection keeps working: the panic was contained to the call.
	got, err := c.Call("echo", []byte("ok"))
	if err != nil || string(got) != "ok" {
		t.Fatalf("connection dead after handler panic: %q %v", got, err)
	}
}

func TestCallTimeoutDeregistersPending(t *testing.T) {
	s := NewServer()
	defer s.Close()
	release := make(chan struct{})
	s.Register("slow", func(body []byte) ([]byte, error) {
		<-release
		return []byte("late"), nil
	})
	s.Register("echo", func(body []byte) ([]byte, error) { return body, nil })

	c := Pipe(s)
	defer c.Close()

	if _, err := c.CallTimeout("slow", nil, 10*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// The leak: pre-fix, the pending entry (and a goroutine blocked on
	// it) lived until connection death. Now it must be gone immediately.
	c.mu.Lock()
	pending := len(c.pending)
	c.mu.Unlock()
	if pending != 0 {
		t.Fatalf("pending entries after timeout = %d, want 0", pending)
	}

	// Release the handler: its late response must be silently discarded
	// and the connection must remain fully usable.
	close(release)
	got, err := c.CallTimeout("echo", []byte("fresh"), 2*time.Second)
	if err != nil || string(got) != "fresh" {
		t.Fatalf("connection unusable after abandoned call: %q %v", got, err)
	}
}

func TestCallTimeoutManyAbandonedCallsNoLeak(t *testing.T) {
	s := NewServer()
	defer s.Close()
	// Slow but always progressing: the serving goroutine must keep
	// draining frames or pipe writes would block the client in send.
	s.Register("slow", func(body []byte) ([]byte, error) {
		time.Sleep(10 * time.Millisecond)
		return []byte("late"), nil
	})

	c := Pipe(s)
	defer c.Close()
	for i := 0; i < 20; i++ {
		if _, err := c.CallTimeout("slow", nil, time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	// Wait out the last in-flight response so the recv loop has seen and
	// discarded every late reply.
	time.Sleep(30 * time.Millisecond)
	c.mu.Lock()
	pending := len(c.pending)
	c.mu.Unlock()
	if pending != 0 {
		t.Fatalf("%d pending entries leaked across 20 timeouts", pending)
	}
}
