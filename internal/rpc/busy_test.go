package rpc

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestHandlerBusyStatus checks that a handler error wrapping ErrBusy
// travels the wire as the dedicated busy status and surfaces on the
// client as an error classified transient — not a RemoteError.
func TestHandlerBusyStatus(t *testing.T) {
	s := NewServer()
	s.Register("busy", func(body []byte) ([]byte, error) {
		return nil, errors.New("plain failure")
	})
	s.Register("saturated", func(body []byte) ([]byte, error) {
		return nil, ErrBusy
	})
	defer s.Close()
	c := Pipe(s)
	defer c.Close()

	_, err := c.Call("saturated", nil)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if !IsTransient(err) {
		t.Fatalf("busy error must be transient: %v", err)
	}
	var re *RemoteError
	if errors.As(err, &re) {
		t.Fatalf("busy error must not be a RemoteError: %v", err)
	}

	// Plain handler errors still map to RemoteError.
	_, err = c.Call("busy", nil)
	if !errors.As(err, &re) {
		t.Fatalf("plain handler error should be RemoteError, got %v", err)
	}

	// The connection survives a busy rejection.
	if _, err := c.Call("saturated", nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("second busy call: %v", err)
	}
}

// TestConnLimitRefusesBusy checks that connections beyond SetConnLimit
// get one busy response and a close, while connections under the limit
// keep working — and that freeing a slot admits a new connection.
func TestConnLimitRefusesBusy(t *testing.T) {
	s := echoServer(t)
	s.SetConnLimit(2)
	defer s.Close()

	c1 := Pipe(s)
	defer c1.Close()
	c2 := Pipe(s)
	defer c2.Close()
	// Make sure both connections are registered before the third dials:
	// ServeConn runs in a goroutine, so complete a round-trip on each.
	for _, c := range []*Client{c1, c2} {
		if _, err := c.Call("echo", []byte("warm")); err != nil {
			t.Fatal(err)
		}
	}

	c3 := Pipe(s)
	_, err := c3.Call("echo", []byte("over"))
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("over-limit call = %v, want ErrBusy", err)
	}
	c3.Close()

	// Existing connections are unaffected.
	if _, err := c1.Call("echo", []byte("still ok")); err != nil {
		t.Fatal(err)
	}

	// Closing one frees a slot for a newcomer.
	c2.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c4 := Pipe(s)
		_, err := c4.Call("echo", []byte("after free"))
		c4.Close()
		if err == nil {
			break
		}
		if !errors.Is(err, ErrBusy) || time.Now().After(deadline) {
			t.Fatalf("post-free call = %v", err)
		}
		time.Sleep(5 * time.Millisecond) // server still tearing down c2
	}
}

// TestReconnectBacksOffOnBusy checks the resilient client's busy path:
// it retries with backoff, keeps the connection (no redial), doesn't
// count toward the breaker, and records the rpc.call.busy counter.
func TestReconnectBacksOffOnBusy(t *testing.T) {
	s := NewServer()
	remaining := 3 // first 3 calls busy, then succeed
	s.Register("work", func(body []byte) ([]byte, error) {
		if remaining > 0 {
			remaining--
			return nil, ErrBusy
		}
		return []byte("done"), nil
	})
	defer s.Close()

	reg := obs.NewRegistry(16)
	var sleeps int
	rc, err := NewReconnectClient(ReconnectOptions{
		Dial: func() (net.Conn, error) {
			cc, sc := net.Pipe()
			go s.ServeConn(sc)
			return cc, nil
		},
		MaxRetries:       5,
		BreakerThreshold: 2, // below the busy count: busy must not trip it
		Sleep:            func(time.Duration) { sleeps++ },
		Obs:              reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	out, err := rc.Call("work", nil)
	if err != nil {
		t.Fatalf("call after busy streak: %v", err)
	}
	if string(out) != "done" {
		t.Fatalf("out = %q", out)
	}
	if sleeps != 3 {
		t.Fatalf("sleeps = %d, want 3 (one backoff per busy)", sleeps)
	}
	if rc.Tripped() {
		t.Fatal("busy responses must not trip the breaker")
	}
	if got := rc.Redials(); got != 1 {
		t.Fatalf("redials = %d, want 1 (busy keeps the connection)", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["rpc.call.busy"] != 3 {
		t.Fatalf("rpc.call.busy = %d, want 3", snap.Counters["rpc.call.busy"])
	}
}

// TestReconnectBusyExhaustsRetries checks that a persistently busy
// server eventually surfaces ErrBusy to the caller (still transient,
// still no breaker trip).
func TestReconnectBusyExhaustsRetries(t *testing.T) {
	s := NewServer()
	s.Register("work", func(body []byte) ([]byte, error) { return nil, ErrBusy })
	defer s.Close()

	rc, err := NewReconnectClient(ReconnectOptions{
		Dial: func() (net.Conn, error) {
			cc, sc := net.Pipe()
			go s.ServeConn(sc)
			return cc, nil
		},
		MaxRetries: 2,
		Sleep:      func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	_, err = rc.Call("work", nil)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if rc.Tripped() {
		t.Fatal("breaker must stay closed on busy streaks")
	}
}
