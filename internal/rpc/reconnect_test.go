package rpc

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/obs"
)

// noSleep replaces real backoff sleeps with a recorder so fault tests run
// in microseconds.
type noSleep struct {
	mu    sync.Mutex
	slept []time.Duration
}

func (n *noSleep) sleep(d time.Duration) {
	n.mu.Lock()
	n.slept = append(n.slept, d)
	n.mu.Unlock()
}

func (n *noSleep) count() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.slept)
}

// dialerFor wires each dial to a fresh served connection on s.
func dialerFor(s *Server, faults func(attempt int) faultnet.Config) *faultnet.Dialer {
	return &faultnet.Dialer{
		Dial: func() (net.Conn, error) {
			cc, sc := net.Pipe()
			go s.ServeConn(sc)
			return cc, nil
		},
		Faults: faults,
	}
}

func TestReconnectSurvivesRepeatedDisconnects(t *testing.T) {
	s := echoServer(t)
	defer s.Close()

	// The first three connections die after one request each (an rpc
	// request is one buffered write: the client frames length prefix and
	// payload into a single conn.Write); later ones are healthy.
	d := dialerFor(s, func(attempt int) faultnet.Config {
		if attempt <= 3 {
			return faultnet.Config{DropAfterWrites: 1}
		}
		return faultnet.Config{}
	})
	ns := &noSleep{}
	rc, err := NewReconnectClient(ReconnectOptions{
		Dial:  d.Next,
		Sleep: ns.sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	for i := 0; i < 10; i++ {
		got, err := rc.Call("echo", []byte{byte(i)})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bytes.Equal(got, []byte{byte(i)}) {
			t.Fatalf("call %d echoed %v", i, got)
		}
	}
	if d.Attempts() < 4 {
		t.Fatalf("attempts = %d, want >= 4 (three dead conns + a live one)", d.Attempts())
	}
	if rc.Tripped() {
		t.Fatal("breaker tripped on a recoverable fault sequence")
	}
}

func TestReconnectRidesOutPartitionWindow(t *testing.T) {
	s := echoServer(t)
	defer s.Close()

	// Conn 1 dies after one request; dial attempts 2-4 are partitioned;
	// attempt 5 heals.
	d := dialerFor(s, func(attempt int) faultnet.Config {
		if attempt == 1 {
			return faultnet.Config{DropAfterWrites: 1}
		}
		return faultnet.Config{}
	})
	d.Partitions = [][2]int{{2, 4}}
	ns := &noSleep{}
	rc, err := NewReconnectClient(ReconnectOptions{
		Dial:       d.Next,
		MaxRetries: 6,
		Sleep:      ns.sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	if _, err := rc.Call("echo", []byte("a")); err != nil {
		t.Fatal(err)
	}
	// This call burns the dead conn, then three partitioned redials,
	// then succeeds on attempt 5.
	if _, err := rc.Call("echo", []byte("b")); err != nil {
		t.Fatalf("call across partition window: %v", err)
	}
	if got := d.Attempts(); got != 5 {
		t.Fatalf("dial attempts = %d, want 5", got)
	}
	if ns.count() < 4 {
		t.Fatalf("backoff sleeps = %d, want >= 4", ns.count())
	}
	// Backoff grows (modulo ±20% jitter, doubling always dominates).
	for i := 1; i < len(ns.slept); i++ {
		if ns.slept[i] <= ns.slept[i-1] && ns.slept[i-1] < time.Second/2 {
			t.Fatalf("backoff not growing: %v", ns.slept)
		}
	}
}

func TestReconnectBackoffDeterministicBySeed(t *testing.T) {
	run := func() []time.Duration {
		s := echoServer(t)
		defer s.Close()
		d := dialerFor(s, nil)
		d.Partitions = [][2]int{{1, 3}}
		ns := &noSleep{}
		rc, err := NewReconnectClient(ReconnectOptions{
			Dial:       d.Next,
			MaxRetries: 4,
			Seed:       42,
			Sleep:      ns.sleep,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		if _, err := rc.Call("echo", nil); err != nil {
			t.Fatal(err)
		}
		return ns.slept
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no backoffs recorded")
	}
	if len(a) != len(b) {
		t.Fatalf("different sleep counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different jitter at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCircuitBreakerTripsAfterKFailures(t *testing.T) {
	dials := 0
	ns := &noSleep{}
	rc, err := NewReconnectClient(ReconnectOptions{
		Dial: func() (net.Conn, error) {
			dials++
			return nil, errors.New("no route to host")
		},
		MaxRetries:       10,
		BreakerThreshold: 5,
		Sleep:            ns.sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	if _, err := rc.Call("echo", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if dials != 5 {
		t.Fatalf("dials = %d, want exactly the breaker threshold 5", dials)
	}
	if !rc.Tripped() {
		t.Fatal("Tripped() = false after trip")
	}
	// Open breaker fails fast: no further dials, no sleeps.
	before := ns.count()
	if _, err := rc.Call("echo", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("post-trip err = %v", err)
	}
	if dials != 5 || ns.count() != before {
		t.Fatalf("open breaker still dialing/sleeping (dials=%d)", dials)
	}
	// The fatal error is classified as such for upper layers.
	_, err = rc.Call("echo", nil)
	if IsTransient(err) {
		t.Fatal("ErrCircuitOpen classified transient")
	}
}

func TestReconnectObsMetrics(t *testing.T) {
	s := echoServer(t)
	defer s.Close()

	// Two connections die after one request each, then healthy: the
	// registry must record the calls, the churn, and no breaker trip.
	d := dialerFor(s, func(attempt int) faultnet.Config {
		if attempt <= 2 {
			return faultnet.Config{DropAfterWrites: 1}
		}
		return faultnet.Config{}
	})
	reg := obs.NewRegistry(16)
	ns := &noSleep{}
	rc, err := NewReconnectClient(ReconnectOptions{
		Dial:  d.Next,
		Sleep: ns.sleep,
		Obs:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	const calls = 6
	for i := 0; i < calls; i++ {
		if _, err := rc.Call("echo", []byte{byte(i)}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.C("rpc.calls"); got != calls {
		t.Fatalf("rpc.calls = %d, want %d", got, calls)
	}
	if got := snap.C("rpc.redials"); got != int64(d.Attempts()) {
		t.Fatalf("rpc.redials = %d, dialer saw %d attempts", got, d.Attempts())
	}
	if got := snap.C("rpc.call.failures"); got != 2 {
		t.Fatalf("rpc.call.failures = %d, want 2 (one per dead conn)", got)
	}
	if got := snap.C("rpc.breaker.opened"); got != 0 {
		t.Fatalf("breaker opened %d times on a recoverable sequence", got)
	}
	if h := snap.Histograms["rpc.call.latency_us"]; h.Count != calls {
		t.Fatalf("latency observations = %d, want %d", h.Count, calls)
	}

	// A dead endpoint trips the breaker: counter, gauge, and event.
	reg2 := obs.NewRegistry(16)
	rc2, err := NewReconnectClient(ReconnectOptions{
		Dial:             func() (net.Conn, error) { return nil, errors.New("no route") },
		MaxRetries:       10,
		BreakerThreshold: 3,
		Sleep:            ns.sleep,
		Obs:              reg2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc2.Close()
	if _, err := rc2.Call("echo", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	snap2 := reg2.Snapshot()
	if got := snap2.C("rpc.breaker.opened"); got != 1 {
		t.Fatalf("rpc.breaker.opened = %d, want 1", got)
	}
	if got := snap2.Gauges["rpc.breaker.state"]; got != 1 {
		t.Fatalf("rpc.breaker.state = %d, want 1 (open)", got)
	}
	found := false
	for _, ev := range snap2.Events {
		if ev.Scope == "rpc" && ev.Name == "breaker-open" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no breaker-open event in ring: %+v", snap2.Events)
	}
}

func TestRemoteErrorsDoNotTripBreaker(t *testing.T) {
	s := echoServer(t)
	defer s.Close()
	d := dialerFor(s, nil)
	rc, err := NewReconnectClient(ReconnectOptions{
		Dial:             d.Next,
		BreakerThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	for i := 0; i < 10; i++ {
		_, err := rc.Call("fail", nil)
		var re *RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("call %d err = %v, want RemoteError", i, err)
		}
	}
	if rc.Tripped() {
		t.Fatal("application errors tripped the transport breaker")
	}
	if d.Attempts() != 1 {
		t.Fatalf("redialed %d times on healthy transport", d.Attempts())
	}
}

func TestReconnectCallTimeout(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	s.Register("slow", func(body []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	defer func() { close(block); s.Close() }()

	d := dialerFor(s, nil)
	ns := &noSleep{}
	rc, err := NewReconnectClient(ReconnectOptions{
		Dial:        d.Next,
		CallTimeout: 10 * time.Millisecond,
		MaxRetries:  1,
		Sleep:       ns.sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	if _, err := rc.Call("slow", nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// The timed-out conn was discarded and redialed for the retry.
	if d.Attempts() != 2 {
		t.Fatalf("attempts = %d, want 2", d.Attempts())
	}
}

func TestNewReconnectClientRequiresDial(t *testing.T) {
	if _, err := NewReconnectClient(ReconnectOptions{}); err == nil {
		t.Fatal("nil Dial accepted")
	}
}

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrClosed, true},
		{ErrTimeout, true},
		{errors.New("connection reset by peer"), true},
		{&RemoteError{Msg: "bad arg"}, false},
		{&RedirectError{Endpoint: "replica-1:8471"}, true},
		{ErrCircuitOpen, false},
		{ErrFrameTooLarge, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
