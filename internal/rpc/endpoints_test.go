package rpc

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"

	"repro/internal/faultnet"
	"repro/internal/obs"
)

// endpointFabric maps endpoint names to servers so endpoint-set tests
// run over in-process pipes. A name mapped to nil is a dead replica:
// dials to it are refused. Remapping a name models a crash + restart.
type endpointFabric struct {
	mu      sync.Mutex
	servers map[string]*Server
	dials   map[string]int
}

func newFabric() *endpointFabric {
	return &endpointFabric{servers: make(map[string]*Server), dials: make(map[string]int)}
}

func (f *endpointFabric) set(name string, s *Server) {
	f.mu.Lock()
	f.servers[name] = s
	f.mu.Unlock()
}

func (f *endpointFabric) dial(name string) (net.Conn, error) {
	f.mu.Lock()
	f.dials[name]++
	s := f.servers[name]
	f.mu.Unlock()
	if s == nil {
		return nil, errors.New("dial " + name + ": connection refused")
	}
	cc, sc := net.Pipe()
	go s.ServeConn(sc)
	return cc, nil
}

func (f *endpointFabric) dialCount(name string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dials[name]
}

func TestRedirectStatusRoundTrip(t *testing.T) {
	s := NewServer()
	s.Register("owner.only", func(body []byte) ([]byte, error) {
		return nil, &RedirectError{Endpoint: "replica-1:8471"}
	})
	defer s.Close()
	c := Pipe(s)
	defer c.Close()

	_, err := c.Call("owner.only", nil)
	var redir *RedirectError
	if !errors.As(err, &redir) {
		t.Fatalf("err = %v (%T), want RedirectError", err, err)
	}
	if redir.Endpoint != "replica-1:8471" {
		t.Fatalf("redirect endpoint = %q", redir.Endpoint)
	}
	if !IsTransient(err) {
		t.Fatal("redirect must classify as transient")
	}
}

func TestEndpointSetFailsOverToSurvivor(t *testing.T) {
	f := newFabric()
	f.set("a", nil) // dead replica
	f.set("b", echoServer(t))

	reg := obs.NewRegistry(16)
	ns := &noSleep{}
	rc, err := NewReconnectClient(ReconnectOptions{
		Endpoints:    []string{"a", "b"},
		DialEndpoint: f.dial,
		Sleep:        ns.sleep,
		Obs:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	got, err := rc.Call("echo", []byte("hi"))
	if err != nil {
		t.Fatalf("call with one dead endpoint: %v", err)
	}
	if !bytes.Equal(got, []byte("hi")) {
		t.Fatalf("echoed %q", got)
	}
	if ep := rc.CurrentEndpoint(); ep != "b" {
		t.Fatalf("current endpoint = %q, want b", ep)
	}
	if rc.Tripped() {
		t.Fatal("set tripped with a healthy survivor")
	}
	snap := reg.Snapshot()
	if got := snap.C("rpc.dial.failures"); got != 1 {
		t.Fatalf("rpc.dial.failures = %d, want 1 (the dead replica)", got)
	}
	if got := snap.C("rpc.call.failures"); got != 0 {
		t.Fatalf("rpc.call.failures = %d, want 0 (no established call failed)", got)
	}
}

func TestEndpointSetFollowsRedirect(t *testing.T) {
	owner := NewServer()
	owner.Register("fleet.open", func(body []byte) ([]byte, error) {
		return []byte("opened@b"), nil
	})
	defer owner.Close()
	misplaced := NewServer()
	misplaced.Register("fleet.open", func(body []byte) ([]byte, error) {
		return nil, &RedirectError{Endpoint: "b"}
	})
	defer misplaced.Close()

	f := newFabric()
	f.set("a", misplaced)
	f.set("b", owner)

	reg := obs.NewRegistry(16)
	ns := &noSleep{}
	rc, err := NewReconnectClient(ReconnectOptions{
		Endpoints:    []string{"a"}, // b is discovered via the redirect
		DialEndpoint: f.dial,
		Sleep:        ns.sleep,
		Obs:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	got, err := rc.Call("fleet.open", nil)
	if err != nil {
		t.Fatalf("redirected call: %v", err)
	}
	if string(got) != "opened@b" {
		t.Fatalf("served by %q, want the owner", got)
	}
	if ep := rc.CurrentEndpoint(); ep != "b" {
		t.Fatalf("current endpoint = %q, want the redirect target", ep)
	}
	snap := reg.Snapshot()
	if got := snap.C("rpc.redirects"); got != 1 {
		t.Fatalf("rpc.redirects = %d, want 1", got)
	}
	if got := snap.C("rpc.call.failures") + snap.C("rpc.dial.failures"); got != 0 {
		t.Fatalf("redirect counted as a failure: %d", got)
	}
}

func TestSingleDialSurfacesRedirect(t *testing.T) {
	s := NewServer()
	s.Register("fleet.open", func(body []byte) ([]byte, error) {
		return nil, &RedirectError{Endpoint: "elsewhere"}
	})
	defer s.Close()
	d := dialerFor(s, nil)
	ns := &noSleep{}
	rc, err := NewReconnectClient(ReconnectOptions{Dial: d.Next, Sleep: ns.sleep})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	_, err = rc.Call("fleet.open", nil)
	var redir *RedirectError
	if !errors.As(err, &redir) || redir.Endpoint != "elsewhere" {
		t.Fatalf("err = %v, want the surfaced redirect (single-Dial mode cannot re-aim)", err)
	}
}

func TestEndpointSetAllBreakersOpen(t *testing.T) {
	f := newFabric()
	f.set("a", nil)
	f.set("b", nil)

	reg := obs.NewRegistry(16)
	ns := &noSleep{}
	rc, err := NewReconnectClient(ReconnectOptions{
		Endpoints:        []string{"a", "b"},
		DialEndpoint:     f.dial,
		MaxRetries:       16,
		BreakerThreshold: 2,
		Sleep:            ns.sleep,
		Obs:              reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	if _, err := rc.Call("echo", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen once every endpoint is dead", err)
	}
	if !rc.Tripped() {
		t.Fatal("Tripped() = false with every breaker open")
	}
	if !rc.EndpointTripped("a") || !rc.EndpointTripped("b") {
		t.Fatal("per-endpoint breakers not both open")
	}
	snap := reg.Snapshot()
	if got := snap.C("rpc.breaker.opened"); got != 2 {
		t.Fatalf("rpc.breaker.opened = %d, want 2 (one per endpoint)", got)
	}
	if got := snap.Gauges["rpc.breaker.state"]; got != 2 {
		t.Fatalf("rpc.breaker.state = %d, want 2 open breakers", got)
	}
	// Fail-fast once open: no further dial attempts.
	before := f.dialCount("a") + f.dialCount("b")
	if _, err := rc.Call("echo", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want immediate ErrCircuitOpen", err)
	}
	if after := f.dialCount("a") + f.dialCount("b"); after != before {
		t.Fatalf("open breaker still dialing: %d -> %d", before, after)
	}
}

// Failover is sticky: after a replica dies mid-stream the client pins
// the survivor and stops burning dials on the corpse.
func TestEndpointFailoverIsSticky(t *testing.T) {
	f := newFabric()
	f.set("a", echoServer(t))
	f.set("b", echoServer(t))

	ns := &noSleep{}
	rc, err := NewReconnectClient(ReconnectOptions{
		Endpoints:        []string{"a", "b"},
		DialEndpoint:     f.dial,
		MaxRetries:       8,
		BreakerThreshold: 2,
		Sleep:            ns.sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	if _, err := rc.Call("echo", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	// Replica a crashes: its conn dies and redials are refused until its
	// breaker opens; traffic must keep flowing through b.
	f.set("a", nil)
	rc.mu.Lock()
	if c := rc.eps[0].c; c != nil {
		c.Close()
	}
	rc.mu.Unlock()
	for i := 0; i < 6; i++ {
		if _, err := rc.Call("echo", []byte{byte(i)}); err != nil {
			t.Fatalf("call %d during a-outage: %v", i, err)
		}
	}
	if rc.Tripped() {
		t.Fatal("whole set reported dead while b serves")
	}
	if ep := rc.CurrentEndpoint(); ep != "b" {
		t.Fatalf("current endpoint = %q, want the survivor", ep)
	}
	// Pinned to the survivor: the six post-crash calls needed exactly one
	// dial to b beyond the warm-up; the corpse saw at most one re-dial.
	if got := f.dialCount("a"); got > 2 {
		t.Fatalf("dials to dead replica = %d, want <= 2 (sticky failover)", got)
	}
}

// TestDialVsCallFailureClassification is the regression test for the
// breaker-budget attribution fix: dials refused inside a faultnet
// partition window must land in rpc.dial.failures, while the death of
// an established, in-flight call lands in rpc.call.failures — the two
// must never be conflated.
func TestDialVsCallFailureClassification(t *testing.T) {
	s := echoServer(t)
	defer s.Close()

	// Conn 1 dies after one request (an in-flight call failure); dial
	// attempts 2-4 are partitioned (pure dial failures); attempt 5 heals.
	d := dialerFor(s, func(attempt int) faultnet.Config {
		if attempt == 1 {
			return faultnet.Config{DropAfterWrites: 1}
		}
		return faultnet.Config{}
	})
	d.Partitions = [][2]int{{2, 4}}
	reg := obs.NewRegistry(16)
	ns := &noSleep{}
	rc, err := NewReconnectClient(ReconnectOptions{
		Dial:       d.Next,
		MaxRetries: 6,
		Sleep:      ns.sleep,
		Obs:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	if _, err := rc.Call("echo", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Call("echo", []byte("b")); err != nil {
		t.Fatalf("call across partition window: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.C("rpc.call.failures"); got != 1 {
		t.Fatalf("rpc.call.failures = %d, want 1 (only the in-flight conn death)", got)
	}
	if got := snap.C("rpc.dial.failures"); got != 3 {
		t.Fatalf("rpc.dial.failures = %d, want 3 (the partition window)", got)
	}
}
