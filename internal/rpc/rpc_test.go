package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func echoServer(t testing.TB) *Server {
	t.Helper()
	s := NewServer()
	s.Register("echo", func(body []byte) ([]byte, error) {
		return body, nil
	})
	s.Register("fail", func(body []byte) ([]byte, error) {
		return nil, errors.New("handler exploded")
	})
	s.Register("upper", func(body []byte) ([]byte, error) {
		return bytes.ToUpper(body), nil
	})
	return s
}

func TestCallRoundTrip(t *testing.T) {
	s := echoServer(t)
	defer s.Close()
	c := Pipe(s)
	defer c.Close()

	got, err := c.Call("echo", []byte("profile-request"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "profile-request" {
		t.Fatalf("echo = %q", got)
	}
}

func TestCallRemoteError(t *testing.T) {
	s := echoServer(t)
	defer s.Close()
	c := Pipe(s)
	defer c.Close()

	_, err := c.Call("fail", nil)
	if err == nil || !strings.Contains(err.Error(), "handler exploded") {
		t.Fatalf("err = %v", err)
	}
	// Connection must survive a handler error.
	if _, err := c.Call("echo", []byte("ok")); err != nil {
		t.Fatalf("connection dead after handler error: %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	s := echoServer(t)
	defer s.Close()
	c := Pipe(s)
	defer c.Close()

	_, err := c.Call("nope", nil)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("err = %v", err)
	}
}

func TestSequentialCalls(t *testing.T) {
	s := echoServer(t)
	defer s.Close()
	c := Pipe(s)
	defer c.Close()

	for i := 0; i < 100; i++ {
		msg := fmt.Sprintf("msg-%d", i)
		got, err := c.Call("upper", []byte(msg))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != strings.ToUpper(msg) {
			t.Fatalf("call %d: %q", i, got)
		}
	}
}

func TestConcurrentCalls(t *testing.T) {
	s := echoServer(t)
	defer s.Close()
	c := Pipe(s)
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				msg := fmt.Sprintf("g%d-%d", id, j)
				got, err := c.Call("echo", []byte(msg))
				if err != nil {
					errs <- err
					return
				}
				if string(got) != msg {
					errs <- fmt.Errorf("mismatch: %q vs %q", got, msg)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	s.Register("block", func(body []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	defer func() { close(block); s.Close() }()

	c := Pipe(s)
	done := make(chan error, 1)
	go func() {
		_, err := c.Call("block", nil)
		done <- err
	}()
	// Let the call get in flight, then slam the connection.
	c.Close()
	if err := <-done; err == nil {
		t.Fatal("pending call survived Close")
	}
}

func TestCallAfterClose(t *testing.T) {
	s := echoServer(t)
	defer s.Close()
	c := Pipe(s)
	c.Close()
	if _, err := c.Call("echo", nil); err == nil {
		t.Fatal("call on closed client succeeded")
	}
}

func TestServerCloseRejectsNewConns(t *testing.T) {
	s := echoServer(t)
	s.Close()
	c := Pipe(s) // served conn is closed immediately
	if _, err := c.Call("echo", nil); err == nil {
		t.Fatal("call on closed server succeeded")
	}
	c.Close()
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	s := NewServer()
	s.Register("m", func(b []byte) ([]byte, error) { return nil, nil })
	s.Register("m", func(b []byte) ([]byte, error) { return nil, nil })
}

func TestOverTCP(t *testing.T) {
	s := echoServer(t)
	defer s.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	defer l.Close()
	go s.Serve(l)

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Call("upper", []byte("tcp works"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "TCP WORKS" {
		t.Fatalf("got %q", got)
	}
}

func TestLargeBody(t *testing.T) {
	s := echoServer(t)
	defer s.Close()
	c := Pipe(s)
	defer c.Close()

	body := bytes.Repeat([]byte("x"), 1<<20)
	got, err := c.Call("echo", body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("1MiB body corrupted")
	}
}

func TestEmptyBody(t *testing.T) {
	s := echoServer(t)
	defer s.Close()
	c := Pipe(s)
	defer c.Close()
	got, err := c.Call("echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty echo returned %d bytes", len(got))
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, MaxFrame+1)); err != ErrFrameTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestSplitRequestMalformed(t *testing.T) {
	if _, _, _, err := splitRequest([]byte{1, 2, 3}); err != ErrMalformedFrame {
		t.Fatalf("short payload: %v", err)
	}
	// Method length pointing past the end.
	payload := requestFrame(1, "abc", nil)
	payload[8] = 0xff // method len low byte
	if _, _, _, err := splitRequest(payload); err != ErrMalformedFrame {
		t.Fatalf("bad method len: %v", err)
	}
}

func BenchmarkCallPipe(b *testing.B) {
	s := echoServer(b)
	defer s.Close()
	c := Pipe(s)
	defer c.Close()
	body := bytes.Repeat([]byte("r"), 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("echo", body); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCallTimeout(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	s.Register("slow", func(body []byte) ([]byte, error) {
		<-block
		return []byte("late"), nil
	})
	defer func() { close(block); s.Close() }()

	c := Pipe(s)
	defer c.Close()
	_, err := c.CallTimeout("slow", nil, 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// Zero timeout degrades to a plain call.
	s2 := echoServer(t)
	defer s2.Close()
	c2 := Pipe(s2)
	defer c2.Close()
	got, err := c2.CallTimeout("echo", []byte("fast"), 0)
	if err != nil || string(got) != "fast" {
		t.Fatalf("zero-timeout call: %q %v", got, err)
	}
	// Generous timeout succeeds.
	got, err = c2.CallTimeout("upper", []byte("hi"), time.Second)
	if err != nil || string(got) != "HI" {
		t.Fatalf("timed call: %q %v", got, err)
	}
}
