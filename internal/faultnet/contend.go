// ContendingStore: injected manifest contention. The repository's CAS
// loop only ever sees a generation mismatch when another writer really
// committed between its read and its PutIf — which makes the
// worst-case contention schedule hard to reach from tests that merely
// run many goroutines. ContendingStore manufactures the mismatch
// directly: every Nth conditional write fails with
// storage.ErrGenerationMismatch before touching the inner store, as if
// a phantom writer had slipped in. The decorated store still serves
// real PutIf semantics for the calls it lets through, so retry loops
// that re-read and re-apply converge exactly as they would against a
// genuinely contended bucket.
package faultnet

import (
	"fmt"
	"sync"

	"repro/internal/storage"
)

// ContendingStore decorates a FullStore, failing every Nth PutIf with
// a synthetic generation mismatch.
type ContendingStore struct {
	// Inner receives every call that is not scripted to fail.
	Inner FullStore

	// FailEvery, when positive, fails every Nth PutIf (counting from 1)
	// with storage.ErrGenerationMismatch. Zero disables injection.
	FailEvery int

	mu      sync.Mutex
	putIfs  int
	injects int
}

// Get forwards to Inner.
func (c *ContendingStore) Get(name string) (*storage.Object, error) { return c.Inner.Get(name) }

// Put forwards to Inner.
func (c *ContendingStore) Put(name string, data []byte) (*storage.Object, error) {
	return c.Inner.Put(name, data)
}

// PutIf fails every FailEvery-th call with a synthetic generation
// mismatch; the rest forward to Inner.
func (c *ContendingStore) PutIf(name string, data []byte, gen int64) (*storage.Object, error) {
	c.mu.Lock()
	c.putIfs++
	inject := c.FailEvery > 0 && c.putIfs%c.FailEvery == 0
	if inject {
		c.injects++
	}
	c.mu.Unlock()
	if inject {
		return nil, fmt.Errorf("%w: %s (injected contention)", storage.ErrGenerationMismatch, name)
	}
	return c.Inner.PutIf(name, data, gen)
}

// Append forwards to Inner.
func (c *ContendingStore) Append(name string, data []byte) (*storage.Object, error) {
	return c.Inner.Append(name, data)
}

// Delete forwards to Inner.
func (c *ContendingStore) Delete(name string) error { return c.Inner.Delete(name) }

// Exists forwards to Inner.
func (c *ContendingStore) Exists(name string) bool { return c.Inner.Exists(name) }

// List forwards to Inner.
func (c *ContendingStore) List(prefix string) []string { return c.Inner.List(prefix) }

// PutIfs reports total conditional writes seen (including injected
// failures); Injections reports how many were failed synthetically.
func (c *ContendingStore) PutIfs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.putIfs
}

// Injections reports how many PutIfs were failed by injection.
func (c *ContendingStore) Injections() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injects
}
