// Package faultnet injects deterministic, seedable faults into the
// transport and storage layers so the rest of the system can prove it
// degrades gracefully instead of dying.
//
// TPUPoint-Profiler runs for hours against a remote Cloud TPU over gRPC
// and streams records to Cloud Storage; real deployments see flaky
// networks, slow endpoints, and storage hiccups. This package wraps a
// net.Conn with scripted faults (added latency, drop-after-N operations,
// single-bit corruption, chunked and truncated writes), wraps a dial
// function with partition windows that fail whole ranges of dial attempts,
// and decorates a storage bucket with transient Put failures, slow writes,
// and full stalls. Every fault is driven by operation counters and a
// prng.Source seed — never the wall clock — so a failing test replays
// bit-for-bit.
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/prng"
)

// Errors produced by injected faults. They deliberately look like the
// errors real networks produce: opaque, transient, and unhelpful.
var (
	// ErrInjectedDrop is returned once a connection passes its scripted
	// drop point; the underlying conn is closed as a side effect.
	ErrInjectedDrop = errors.New("faultnet: connection dropped (injected)")

	// ErrPartition is returned by Dialer.Next for dial attempts that land
	// inside a partition window.
	ErrPartition = errors.New("faultnet: network partitioned (injected)")
)

// Config scripts the faults a single Conn carries. The zero value injects
// nothing: a zero-Config Conn is a transparent pass-through.
//
// All counters are operation counts on THIS conn, starting at 1 for the
// first operation, so "DropAfterWrites: 4" means the first four Write
// calls succeed and the fifth fails.
type Config struct {
	// Seed keys the conn's private PRNG (bit positions for corruption).
	// Two conns with equal Config produce identical fault streams.
	Seed uint64

	// ReadLatency and WriteLatency are added before every matching
	// operation — a slow or congested link.
	ReadLatency  time.Duration
	WriteLatency time.Duration

	// DropAfterReads / DropAfterWrites close the connection after that
	// many successful operations of the given kind; the next one returns
	// ErrInjectedDrop. Zero disables.
	DropAfterReads  int64
	DropAfterWrites int64

	// DropAfterReadBytes / DropAfterWriteBytes drop on byte totals
	// instead of call counts — the mid-frame disconnect. Zero disables.
	DropAfterReadBytes  int64
	DropAfterWriteBytes int64

	// CorruptReadAt / CorruptWriteAt flip one pseudo-random bit in the
	// Nth byte (1-based, counted across the conn's whole stream) of the
	// read or write direction. Zero disables. One-shot.
	CorruptReadAt  int64
	CorruptWriteAt int64

	// MaxWriteChunk splits every Write into inner writes of at most this
	// many bytes. The write still completes — it exercises the peer's
	// frame reassembly under pathological packetization. Zero disables.
	MaxWriteChunk int

	// TruncateWriteAt silently discards everything past the Nth byte
	// (1-based) of the write stream while reporting success to the
	// caller — trailing bytes lost in flight, leaving the peer holding a
	// truncated frame. Zero disables. One-shot: later writes resume.
	TruncateWriteAt int64
}

// Conn wraps a net.Conn with the faults scripted in its Config.
// It is safe for one concurrent reader plus one concurrent writer,
// matching net.Conn's own contract.
type Conn struct {
	inner net.Conn
	cfg   Config

	mu         sync.Mutex
	rng        *prng.Source
	reads      int64
	writes     int64
	readBytes  int64
	writeBytes int64
	dropped    bool
}

// Wrap decorates inner with cfg's faults.
func Wrap(inner net.Conn, cfg Config) *Conn {
	return &Conn{inner: inner, cfg: cfg, rng: prng.New(cfg.Seed)}
}

// Stats reports how many operations and bytes have flowed through, for
// assertions about where a fault fired.
func (c *Conn) Stats() (reads, writes, readBytes, writeBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reads, c.writes, c.readBytes, c.writeBytes
}

// drop closes the inner conn and latches the dropped state.
func (c *Conn) drop() error {
	c.dropped = true
	c.inner.Close()
	return ErrInjectedDrop
}

func (c *Conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	if c.dropped {
		c.mu.Unlock()
		return 0, ErrInjectedDrop
	}
	if c.cfg.DropAfterReads > 0 && c.reads >= c.cfg.DropAfterReads {
		err := c.drop()
		c.mu.Unlock()
		return 0, err
	}
	if c.cfg.DropAfterReadBytes > 0 && c.readBytes >= c.cfg.DropAfterReadBytes {
		err := c.drop()
		c.mu.Unlock()
		return 0, err
	}
	lat := c.cfg.ReadLatency
	c.mu.Unlock()

	if lat > 0 {
		time.Sleep(lat)
	}
	n, err := c.inner.Read(b)

	c.mu.Lock()
	defer c.mu.Unlock()
	if n > 0 {
		c.reads++
		// Corrupt before advancing readBytes so the offset math is over
		// the stream position at which this chunk begins.
		if at := c.cfg.CorruptReadAt; at > 0 && c.readBytes < at && at <= c.readBytes+int64(n) {
			b[at-c.readBytes-1] ^= 1 << (c.rng.Uint64() % 8)
		}
		c.readBytes += int64(n)
	}
	return n, err
}

func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if c.dropped {
		c.mu.Unlock()
		return 0, ErrInjectedDrop
	}
	if c.cfg.DropAfterWrites > 0 && c.writes >= c.cfg.DropAfterWrites {
		err := c.drop()
		c.mu.Unlock()
		return 0, err
	}
	if c.cfg.DropAfterWriteBytes > 0 && c.writeBytes >= c.cfg.DropAfterWriteBytes {
		err := c.drop()
		c.mu.Unlock()
		return 0, err
	}
	c.writes++
	start := c.writeBytes
	c.writeBytes += int64(len(b))
	lat := c.cfg.WriteLatency
	cfg := c.cfg

	// Work on a copy: corruption and truncation must not mutate the
	// caller's buffer.
	out := make([]byte, len(b))
	copy(out, b)
	if at := cfg.CorruptWriteAt; at > 0 && start < at && at <= start+int64(len(out)) {
		out[at-start-1] ^= 1 << (c.rng.Uint64() % 8)
	}
	c.mu.Unlock()

	if lat > 0 {
		time.Sleep(lat)
	}
	if at := cfg.TruncateWriteAt; at > 0 && start+int64(len(out)) > at {
		keep := at - start
		if keep < 0 {
			keep = 0
		}
		out = out[:keep]
	}
	if err := c.writeChunked(out, cfg.MaxWriteChunk); err != nil {
		return 0, err
	}
	// Report the full length even when truncating: the fault is silent
	// byte loss, not a short-write error the caller could handle.
	return len(b), nil
}

func (c *Conn) writeChunked(b []byte, chunk int) error {
	if chunk <= 0 || chunk >= len(b) {
		if len(b) == 0 {
			return nil
		}
		_, err := c.inner.Write(b)
		return err
	}
	for len(b) > 0 {
		n := chunk
		if n > len(b) {
			n = len(b)
		}
		if _, err := c.inner.Write(b[:n]); err != nil {
			return err
		}
		b = b[n:]
	}
	return nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.dropped = true
	c.mu.Unlock()
	return c.inner.Close()
}

func (c *Conn) LocalAddr() net.Addr                { return c.inner.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.inner.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.inner.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.inner.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// Dialer scripts faults across successive dial attempts: whole attempts
// that fail (partition windows) and per-connection fault configs for the
// attempts that succeed. It is the reconnect path's test double — a
// redialing client pointed at a Dialer experiences a deterministic
// sequence of flaky connections.
type Dialer struct {
	// Dial produces a fresh underlying connection (e.g. one side of a
	// net.Pipe wired to a live server, or a TCP dial).
	Dial func() (net.Conn, error)

	// Partitions lists inclusive 1-based attempt ranges that fail with
	// ErrPartition without touching Dial: {{2, 4}} makes attempts 2, 3
	// and 4 fail.
	Partitions [][2]int

	// Faults, when non-nil, returns the fault Config for the conn
	// produced by the given attempt number (1-based).
	Faults func(attempt int) Config

	mu       sync.Mutex
	attempts int
}

// Next performs the next scripted dial attempt.
func (d *Dialer) Next() (net.Conn, error) {
	d.mu.Lock()
	d.attempts++
	n := d.attempts
	d.mu.Unlock()

	for _, w := range d.Partitions {
		if n >= w[0] && n <= w[1] {
			return nil, fmt.Errorf("%w: dial attempt %d in window [%d,%d]", ErrPartition, n, w[0], w[1])
		}
	}
	conn, err := d.Dial()
	if err != nil {
		return nil, err
	}
	if d.Faults != nil {
		return Wrap(conn, d.Faults(n)), nil
	}
	return conn, nil
}

// Attempts reports how many times Next has been called.
func (d *Dialer) Attempts() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.attempts
}
