package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/storage"
)

// pipePair returns a faulty client side wired to a plain server side.
func pipePair(cfg Config) (*Conn, net.Conn) {
	c, s := net.Pipe()
	return Wrap(c, cfg), s
}

// echo copies everything the peer writes back to it until error. Only
// safe when the writer reads back between writes — net.Pipe is fully
// synchronous. Write-only tests use drain instead.
func echo(conn net.Conn) {
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		if n > 0 {
			if _, werr := conn.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// drain discards everything the peer writes until error.
func drain(conn net.Conn) {
	io.Copy(io.Discard, conn)
}

func TestZeroConfigPassThrough(t *testing.T) {
	c, s := pipePair(Config{})
	go echo(s)
	defer c.Close()

	msg := []byte("hello tpu")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip corrupted: %q", got)
	}
}

func TestDropAfterWrites(t *testing.T) {
	c, s := pipePair(Config{DropAfterWrites: 2})
	go drain(s)

	for i := 0; i < 2; i++ {
		if _, err := c.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d failed early: %v", i+1, err)
		}
	}
	if _, err := c.Write([]byte("boom")); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("third write err = %v, want ErrInjectedDrop", err)
	}
	// The drop latches: reads fail too.
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("read after drop err = %v", err)
	}
}

func TestDropAfterReadBytes(t *testing.T) {
	c, s := pipePair(Config{DropAfterReadBytes: 4})
	go func() {
		s.Write([]byte("12345678"))
	}()
	var total int
	var err error
	buf := make([]byte, 2)
	for {
		var n int
		n, err = c.Read(buf)
		total += n
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("err = %v, want ErrInjectedDrop", err)
	}
	if total > 4 {
		t.Fatalf("read %d bytes past the 4-byte drop point", total)
	}
}

func TestCorruptReadAtIsDeterministic(t *testing.T) {
	run := func() []byte {
		c, s := pipePair(Config{Seed: 7, CorruptReadAt: 3})
		defer c.Close()
		go func() { s.Write([]byte{0, 0, 0, 0, 0}) }()
		got := make([]byte, 5)
		if _, err := io.ReadFull(c, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different corruption: %v vs %v", a, b)
	}
	if a[2] == 0 {
		t.Fatalf("byte 3 not corrupted: %v", a)
	}
	for i, v := range a {
		if i != 2 && v != 0 {
			t.Fatalf("byte %d corrupted unexpectedly: %v", i+1, a)
		}
	}
}

func TestCorruptWriteAtDoesNotMutateCallerBuffer(t *testing.T) {
	c, s := pipePair(Config{Seed: 1, CorruptWriteAt: 1})
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 4)
		io.ReadFull(s, buf)
		got <- buf
	}()
	msg := []byte{9, 9, 9, 9}
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg, []byte{9, 9, 9, 9}) {
		t.Fatalf("caller buffer mutated: %v", msg)
	}
	out := <-got
	if out[0] == 9 {
		t.Fatalf("first byte not corrupted on the wire: %v", out)
	}
}

func TestTruncateWriteAt(t *testing.T) {
	c, s := pipePair(Config{TruncateWriteAt: 3})
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 8)
		n, _ := s.Read(buf)
		done <- buf[:n]
	}()
	n, err := c.Write([]byte("abcdefgh"))
	if err != nil || n != 8 {
		t.Fatalf("truncating write reported (%d, %v), want silent success", n, err)
	}
	if got := <-done; string(got) != "abc" {
		t.Fatalf("peer saw %q, want %q", got, "abc")
	}
}

func TestChunkedWritesArriveWhole(t *testing.T) {
	c, s := pipePair(Config{MaxWriteChunk: 3})
	defer c.Close()
	msg := bytes.Repeat([]byte("xyz"), 10)
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, len(msg))
		io.ReadFull(s, buf)
		got <- buf
	}()
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	if out := <-got; !bytes.Equal(out, msg) {
		t.Fatal("chunked write lost bytes")
	}
}

func TestWriteLatency(t *testing.T) {
	c, s := pipePair(Config{WriteLatency: 20 * time.Millisecond})
	go drain(s)
	defer c.Close()
	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("write returned after %v, want >= 20ms", d)
	}
}

func TestDialerPartitionWindow(t *testing.T) {
	d := &Dialer{
		Dial: func() (net.Conn, error) {
			c, s := net.Pipe()
			go drain(s)
			return c, nil
		},
		Partitions: [][2]int{{2, 3}},
	}
	for attempt := 1; attempt <= 4; attempt++ {
		conn, err := d.Next()
		inWindow := attempt == 2 || attempt == 3
		if inWindow {
			if !errors.Is(err, ErrPartition) {
				t.Fatalf("attempt %d: err = %v, want ErrPartition", attempt, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		conn.Close()
	}
	if d.Attempts() != 4 {
		t.Fatalf("attempts = %d", d.Attempts())
	}
}

func TestDialerPerAttemptFaults(t *testing.T) {
	d := &Dialer{
		Dial: func() (net.Conn, error) {
			c, s := net.Pipe()
			go drain(s)
			return c, nil
		},
		Faults: func(attempt int) Config {
			if attempt == 1 {
				return Config{DropAfterWrites: 1}
			}
			return Config{}
		},
	}
	c1, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	c1.Write([]byte("a"))
	if _, err := c1.Write([]byte("b")); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("first conn survived its scripted drop: %v", err)
	}
	c2, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < 5; i++ {
		if _, err := c2.Write([]byte("ok")); err != nil {
			t.Fatalf("healthy second conn failed: %v", err)
		}
	}
}

func TestFlakyStoreFailFirstThenRecovers(t *testing.T) {
	svc := storage.NewService()
	b, _ := svc.CreateBucket("x")
	fs := &FlakyStore{Inner: b, FailFirst: 2}

	for i := 0; i < 2; i++ {
		if _, err := fs.Put("o", []byte("v")); !errors.Is(err, ErrTransientStorage) {
			t.Fatalf("put %d err = %v, want ErrTransientStorage", i+1, err)
		}
	}
	if _, err := fs.Put("o", []byte("v")); err != nil {
		t.Fatalf("store did not recover: %v", err)
	}
	if fs.Puts() != 3 || fs.Fails() != 2 {
		t.Fatalf("puts=%d fails=%d", fs.Puts(), fs.Fails())
	}
	if !b.Exists("o") {
		t.Fatal("recovered put not persisted")
	}
}

func TestFlakyStoreFailEvery(t *testing.T) {
	svc := storage.NewService()
	b, _ := svc.CreateBucket("x")
	fs := &FlakyStore{Inner: b, FailEvery: 3}
	var fails int
	for i := 0; i < 9; i++ {
		if _, err := fs.Put("o", nil); err != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("fails = %d, want 3 (every 3rd of 9)", fails)
	}
}

func TestFlakyStoreStall(t *testing.T) {
	svc := storage.NewService()
	b, _ := svc.CreateBucket("x")
	stall := make(chan struct{})
	fs := &FlakyStore{Inner: b, Stall: stall}

	done := make(chan error, 1)
	go func() {
		_, err := fs.Put("o", nil)
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("stalled Put returned early")
	case <-time.After(30 * time.Millisecond):
	}
	close(stall)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
