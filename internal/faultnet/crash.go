// CrashStore: the deterministic power-cut harness. It decorates a full
// bucket with a write budget — after N successful writes the "power
// goes out": the N+1th write fails, and every operation after it (reads
// included) fails too, exactly as a dead machine answers nothing. The
// crash-consistency suite runs a scripted workload once to count its
// writes, then replays it with the cut placed at every write boundary,
// recovering the underlying store each time and checking the
// repository's durability invariants.
//
// The fault model matches the storage layer's atomicity: Put, PutIf,
// and Delete are atomic (the cut drops them wholesale), while Append is
// the one tearable operation — in torn mode the cut lands mid-append
// and a prefix of the data reaches the store, which is precisely the
// debris the repository's CRC-framed journals must detect and trim.
package faultnet

import (
	"errors"
	"sync"

	"repro/internal/storage"
)

// ErrPowerLost is returned by every operation at and after the cut.
var ErrPowerLost = errors.New("faultnet: power lost (injected)")

// FullStore is the complete bucket surface CrashStore decorates —
// structurally identical to the repository's Store dependency, so a
// CrashStore can stand in for a bucket anywhere the repository stack
// writes.
type FullStore interface {
	Get(name string) (*storage.Object, error)
	Put(name string, data []byte) (*storage.Object, error)
	PutIf(name string, data []byte, gen int64) (*storage.Object, error)
	Append(name string, data []byte) (*storage.Object, error)
	Delete(name string) error
	Exists(name string) bool
	List(prefix string) []string
}

// CrashStore wraps a store with a scripted power cut.
type CrashStore struct {
	inner FullStore

	mu     sync.Mutex
	armed  bool
	budget int  // successful writes allowed before the cut
	tear   bool // tear the cut Append (prefix lands) instead of dropping it
	dead   bool
	writes int
}

// NewCrashStore wraps inner with no cut scheduled; every operation
// passes through until CrashAfterWrites arms one.
func NewCrashStore(inner FullStore) *CrashStore {
	return &CrashStore{inner: inner}
}

// CrashAfterWrites schedules the cut: the first n write operations
// (Put, PutIf, Append, Delete) succeed, the n+1th dies with
// ErrPowerLost, and the store is dead from then on. With tear set, a
// cut landing on an Append first leaks a prefix of the data into the
// store — the torn final write.
func (c *CrashStore) CrashAfterWrites(n int, tear bool) {
	c.mu.Lock()
	c.armed = true
	c.budget = n
	c.tear = tear
	c.mu.Unlock()
}

// Writes reports how many write operations were attempted, including
// the one the cut killed. A dry run with no cut armed measures a
// workload's write budget.
func (c *CrashStore) Writes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

// Dead reports whether the cut has happened.
func (c *CrashStore) Dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// writeGate accounts one write attempt and decides its fate.
func (c *CrashStore) writeGate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return ErrPowerLost
	}
	c.writes++
	if c.armed && c.writes > c.budget {
		c.dead = true
		return ErrPowerLost
	}
	return nil
}

func (c *CrashStore) Put(name string, data []byte) (*storage.Object, error) {
	if err := c.writeGate(); err != nil {
		return nil, err
	}
	return c.inner.Put(name, data)
}

func (c *CrashStore) PutIf(name string, data []byte, gen int64) (*storage.Object, error) {
	if err := c.writeGate(); err != nil {
		return nil, err
	}
	return c.inner.PutIf(name, data, gen)
}

func (c *CrashStore) Delete(name string) error {
	if err := c.writeGate(); err != nil {
		return err
	}
	return c.inner.Delete(name)
}

// Append is the tearable write: when the cut lands here in torn mode,
// a strict prefix of data reaches the store before the failure.
func (c *CrashStore) Append(name string, data []byte) (*storage.Object, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return nil, ErrPowerLost
	}
	c.writes++
	if c.armed && c.writes > c.budget {
		c.dead = true
		tear := c.tear
		c.mu.Unlock()
		if tear && len(data) > 1 {
			_, _ = c.inner.Append(name, data[:len(data)/2])
		}
		return nil, ErrPowerLost
	}
	c.mu.Unlock()
	return c.inner.Append(name, data)
}

func (c *CrashStore) Get(name string) (*storage.Object, error) {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return nil, ErrPowerLost
	}
	return c.inner.Get(name)
}

func (c *CrashStore) Exists(name string) bool {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return false
	}
	return c.inner.Exists(name)
}

func (c *CrashStore) List(prefix string) []string {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return nil
	}
	return c.inner.List(prefix)
}
