package faultnet

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/storage"
)

func newCrashBucket(t *testing.T) (*storage.Bucket, *CrashStore) {
	t.Helper()
	svc := storage.NewService()
	bucket, err := svc.CreateBucket("crash")
	if err != nil {
		t.Fatal(err)
	}
	return bucket, NewCrashStore(bucket)
}

func TestCrashStorePassthroughUnarmed(t *testing.T) {
	_, cs := newCrashBucket(t)
	for i := 0; i < 10; i++ {
		if _, err := cs.Put("obj", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if cs.Writes() != 10 {
		t.Fatalf("writes = %d", cs.Writes())
	}
	if cs.Dead() {
		t.Fatal("unarmed store died")
	}
}

func TestCrashStoreCutIsTotal(t *testing.T) {
	bucket, cs := newCrashBucket(t)
	cs.CrashAfterWrites(2, false)
	if _, err := cs.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	// The cut: the third write dies atomically — nothing lands.
	if _, err := cs.Put("c", []byte("3")); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("cut write err = %v", err)
	}
	if bucket.Exists("c") {
		t.Fatal("atomic write leaked through the cut")
	}
	// Dead is dead: reads and writes all fail.
	if _, err := cs.Get("a"); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("post-cut read err = %v", err)
	}
	if err := cs.Delete("a"); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("post-cut delete err = %v", err)
	}
	if cs.Exists("a") || cs.List("") != nil {
		t.Fatal("post-cut probe answered")
	}
	// The underlying store survives — that's the "power restored" path.
	if !bucket.Exists("a") || !bucket.Exists("b") {
		t.Fatal("pre-cut writes lost from the inner store")
	}
}

func TestCrashStoreTornAppend(t *testing.T) {
	bucket, cs := newCrashBucket(t)
	if _, err := cs.Append("log", []byte("intact-")); err != nil {
		t.Fatal(err)
	}
	cs.CrashAfterWrites(1, true)
	if _, err := cs.Append("log", []byte("torn-frame")); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("cut append err = %v", err)
	}
	obj, err := bucket.Get("log")
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("intact-" + "torn-frame"[:len("torn-frame")/2])
	if !bytes.Equal(obj.Data, want) {
		t.Fatalf("log = %q, want torn prefix %q", obj.Data, want)
	}
}

func TestCrashStoreCleanCutAppend(t *testing.T) {
	bucket, cs := newCrashBucket(t)
	cs.CrashAfterWrites(0, false)
	if _, err := cs.Append("log", []byte("gone")); !errors.Is(err, ErrPowerLost) {
		t.Fatal("append survived a zero-write budget")
	}
	if bucket.Exists("log") {
		t.Fatal("clean-cut append leaked bytes")
	}
}
