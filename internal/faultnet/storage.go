package faultnet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/storage"
)

// ErrTransientStorage is the error injected by FlakyStore for Puts it is
// scripted to fail. It models the 5xx-with-retry-after responses object
// stores return under load.
var ErrTransientStorage = errors.New("faultnet: transient storage failure (injected)")

// Store is the subset of the bucket API the recording path needs; both
// *storage.Bucket and *FlakyStore satisfy it.
type Store interface {
	Put(name string, data []byte) (*storage.Object, error)
}

// FlakyStore decorates a Store with scripted Put faults: a deterministic
// set of failing calls, per-call latency, and an optional full stall.
// Reads are not decorated — the profiler's recording thread only writes.
type FlakyStore struct {
	// Inner receives the Puts that are allowed through.
	Inner Store

	// FailFirst fails the first N Puts with ErrTransientStorage — the
	// endpoint that is down when recording starts and then recovers.
	FailFirst int

	// FailEvery, when positive, fails every Nth Put (counting from 1)
	// with ErrTransientStorage — sustained intermittent failure.
	FailEvery int

	// PutLatency is added before every Put — a slow storage endpoint.
	PutLatency time.Duration

	// Stall, when non-nil, blocks every Put until the channel is closed —
	// the hung storage endpoint. The block happens after the fault
	// accounting so Puts() still advances.
	Stall chan struct{}

	mu    sync.Mutex
	puts  int
	fails int
}

// Put applies the scripted faults, then forwards to Inner.
func (f *FlakyStore) Put(name string, data []byte) (*storage.Object, error) {
	f.mu.Lock()
	f.puts++
	n := f.puts
	fail := n <= f.FailFirst || (f.FailEvery > 0 && n%f.FailEvery == 0)
	if fail {
		f.fails++
	}
	stall := f.Stall
	f.mu.Unlock()

	if stall != nil {
		<-stall
	}
	if f.PutLatency > 0 {
		time.Sleep(f.PutLatency)
	}
	if fail {
		return nil, fmt.Errorf("%w: put %d (%s)", ErrTransientStorage, n, name)
	}
	return f.Inner.Put(name, data)
}

// Puts reports the total number of Put attempts seen (including failed
// ones); Fails reports how many were injected failures.
func (f *FlakyStore) Puts() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.puts
}

// Fails reports how many Puts were failed by injection.
func (f *FlakyStore) Fails() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fails
}
