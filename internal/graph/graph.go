// Package graph implements the TensorFlow-style computation graph that the
// workload models are expressed in and that the XLA pass compiles.
//
// A Graph is a DAG of Nodes. Each Node runs one Op on a device (host or
// TPU) and produces a single output tensor spec. The package provides the
// pieces of the TensorFlow master that the paper mentions: validation,
// topological ordering, constant folding, and partitioning of the graph
// into per-device subgraphs handed to workers.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/tensor"
	"repro/internal/trace"
)

// Op names used across the repository. They mirror the operator names in
// the paper's Table II so that profiles read like real TPU profiles.
const (
	OpConst         = "Const"
	OpPlaceholder   = "Placeholder"
	OpIdentity      = "Identity"
	OpMatMul        = "MatMul"
	OpConv2D        = "Conv2D"
	OpConv2DBackF   = "Conv2DBackpropFilter"
	OpConv2DBackI   = "Conv2DBackpropInput"
	OpReshape       = "Reshape"
	OpTranspose     = "Transpose"
	OpAdd           = "Add"
	OpSub           = "Sub"
	OpMul           = "Mul"
	OpMaximum       = "Maximum"
	OpMinimum       = "Minimum"
	OpCast          = "Cast"
	OpRelu          = "Relu"
	OpSoftmax       = "Softmax"
	OpTanh          = "Tanh"
	OpSigmoid       = "Sigmoid"
	OpL2Loss        = "L2Loss"
	OpBiasAddGrad   = "BiasAddGrad"
	OpFusedBN       = "FusedBatchNormV3"
	OpFusedBNGrad   = "FusedBatchNormGradV3"
	OpSum           = "Sum"
	OpAllReduce     = "all-reduce"
	OpCopy          = "Copy"
	OpInfeed        = "Infeed"
	OpInfeedDequeue = "InfeedDequeueTuple"
	OpOutfeed       = "Outfeed"
	OpLayerNorm     = "LayerNorm"
	OpGatherV2      = "GatherV2"
	OpDropout       = "Dropout"
	OpCrossEntropy  = "SoftmaxCrossEntropyWithLogits"
	OpAdamUpdate    = "ResourceApplyAdam"
	OpSGDUpdate     = "ResourceApplyGradientDescent"

	// Evaluation-graph metric ops. These appear only in eval steps, which
	// is what lets phase detection tell eval apart from training.
	OpArgMax    = "ArgMax"
	OpEqual     = "Equal"
	OpMean      = "Mean"
	OpTopK      = "TopKV2"
	OpInTopK    = "InTopK"
	OpConcat    = "ConcatV2"
	OpSqueeze   = "Squeeze"
	OpGreater   = "Greater"
	OpNMS       = "NonMaxSuppressionV4"
	OpSigmoidCE = "SigmoidCrossEntropyWithLogits"
)

// Kind classifies ops for the XLA fusion pass and the cost model.
type Kind uint8

// Op kinds. Elementwise ops are fusion candidates; contraction ops map to
// the MXUs; data-movement ops realign memory; the rest are structural.
const (
	KindStructural  Kind = iota // Const, Placeholder, Identity
	KindElementwise             // Add, Mul, Relu, Cast, ...
	KindContraction             // MatMul, Conv2D and gradients
	KindDataMove                // Reshape, Transpose, Copy, Gather
	KindReduction               // Sum, L2Loss, BiasAddGrad, Softmax, all-reduce
	KindNormalize               // batch/layer norm (partially fusible)
	KindTransfer                // Infeed/Outfeed boundary ops
	KindOptimizer               // parameter update ops
)

// kindOf maps op names to kinds. Unknown op names are structural, which
// keeps them out of fusion but still costed.
var kindOf = map[string]Kind{
	OpConst: KindStructural, OpPlaceholder: KindStructural, OpIdentity: KindStructural,
	OpMatMul: KindContraction, OpConv2D: KindContraction,
	OpConv2DBackF: KindContraction, OpConv2DBackI: KindContraction,
	OpReshape: KindDataMove, OpTranspose: KindDataMove, OpCopy: KindDataMove,
	OpGatherV2: KindDataMove,
	OpAdd:      KindElementwise, OpSub: KindElementwise, OpMul: KindElementwise,
	OpMaximum: KindElementwise, OpMinimum: KindElementwise, OpCast: KindElementwise,
	OpRelu: KindElementwise, OpTanh: KindElementwise, OpSigmoid: KindElementwise,
	OpDropout: KindElementwise,
	OpSoftmax: KindReduction, OpL2Loss: KindReduction, OpBiasAddGrad: KindReduction,
	OpSum: KindReduction, OpAllReduce: KindReduction, OpCrossEntropy: KindReduction,
	OpFusedBN: KindNormalize, OpFusedBNGrad: KindNormalize, OpLayerNorm: KindNormalize,
	OpInfeed: KindTransfer, OpInfeedDequeue: KindTransfer, OpOutfeed: KindTransfer,
	OpAdamUpdate: KindOptimizer, OpSGDUpdate: KindOptimizer,
	OpArgMax: KindReduction, OpEqual: KindElementwise, OpMean: KindReduction,
	OpTopK: KindReduction, OpInTopK: KindReduction, OpConcat: KindDataMove,
	OpSqueeze: KindDataMove, OpGreater: KindElementwise, OpNMS: KindReduction,
	OpSigmoidCE: KindReduction,
}

// KindOf returns the kind of an op name.
func KindOf(op string) Kind {
	if k, ok := kindOf[op]; ok {
		return k
	}
	return KindStructural
}

// Node is one operation instance in a graph.
type Node struct {
	ID     int
	Name   string // unique instance name, e.g. "encoder0/attn/MatMul"
	Op     string // op type, e.g. OpMatMul
	Device trace.Device
	Out    tensor.Spec
	Inputs []*Node

	// FLOPs is the arithmetic cost of the node; Bytes is the memory
	// traffic it generates beyond its output (weights read, etc.).
	FLOPs int64
	Bytes int64

	// ConstValue marks Const nodes foldable by the master.
	ConstValue bool
}

// Kind returns the node's op kind.
func (n *Node) Kind() Kind { return KindOf(n.Op) }

// OutBytes returns the encoded size of the node's output tensor.
func (n *Node) OutBytes() int64 { return n.Out.Bytes() }

// Graph is a DAG of nodes under construction or compiled.
type Graph struct {
	name  string
	nodes []*Node
	byNam map[string]*Node
}

// New returns an empty graph with a diagnostic name.
func New(name string) *Graph {
	return &Graph{name: name, byNam: make(map[string]*Node)}
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// Nodes returns the nodes in insertion order. Callers must not mutate the
// returned slice.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Len returns the node count.
func (g *Graph) Len() int { return len(g.nodes) }

// Lookup returns the node with the given instance name, or nil.
func (g *Graph) Lookup(name string) *Node { return g.byNam[name] }

// Add appends a node. Name collisions and cross-graph inputs are rejected.
func (g *Graph) Add(name, op string, dev trace.Device, out tensor.Spec, inputs ...*Node) (*Node, error) {
	if name == "" {
		return nil, errors.New("graph: empty node name")
	}
	if _, exists := g.byNam[name]; exists {
		return nil, fmt.Errorf("graph: duplicate node %q", name)
	}
	for _, in := range inputs {
		if in == nil {
			return nil, fmt.Errorf("graph: node %q has nil input", name)
		}
		if g.byNam[in.Name] != in {
			return nil, fmt.Errorf("graph: node %q input %q not in graph", name, in.Name)
		}
	}
	n := &Node{
		ID:     len(g.nodes),
		Name:   name,
		Op:     op,
		Device: dev,
		Out:    out,
		Inputs: append([]*Node(nil), inputs...),
	}
	if op == OpConst {
		n.ConstValue = true
	}
	g.nodes = append(g.nodes, n)
	g.byNam[name] = n
	return n, nil
}

// MustAdd is Add that panics on error; model builders use it because their
// graphs are statically correct by construction.
func (g *Graph) MustAdd(name, op string, dev trace.Device, out tensor.Spec, inputs ...*Node) *Node {
	n, err := g.Add(name, op, dev, out, inputs...)
	if err != nil {
		panic(err)
	}
	return n
}

// Toposort returns the nodes in a topological order. Because Add only
// accepts inputs already present, insertion order is already topological;
// this re-derives it independently (Kahn's algorithm) so Validate can
// detect corruption introduced by direct node mutation.
func (g *Graph) Toposort() ([]*Node, error) {
	indeg := make(map[*Node]int, len(g.nodes))
	out := make(map[*Node][]*Node, len(g.nodes))
	for _, n := range g.nodes {
		for _, in := range n.Inputs {
			indeg[n]++
			out[in] = append(out[in], n)
		}
	}
	// Seed queue with zero-indegree nodes in ID order for determinism.
	var queue []*Node
	for _, n := range g.nodes {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	var order []*Node
	for len(queue) > 0 {
		sort.Slice(queue, func(i, j int) bool { return queue[i].ID < queue[j].ID })
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, succ := range out[n] {
			indeg[succ]--
			if indeg[succ] == 0 {
				queue = append(queue, succ)
			}
		}
	}
	if len(order) != len(g.nodes) {
		return nil, errors.New("graph: cycle detected")
	}
	return order, nil
}

// Validate checks structural invariants: acyclicity, unique names, and
// that transfer ops sit on the device boundary they belong to.
func (g *Graph) Validate() error {
	if _, err := g.Toposort(); err != nil {
		return err
	}
	for _, n := range g.nodes {
		switch n.Op {
		case OpInfeed:
			if n.Device != trace.TPU {
				return fmt.Errorf("graph: %s must run on TPU", n.Name)
			}
		case OpOutfeed:
			if n.Device != trace.TPU {
				return fmt.Errorf("graph: %s must run on TPU", n.Name)
			}
		}
		if !n.Out.Shape.Valid() {
			return fmt.Errorf("graph: %s has invalid output shape %v", n.Name, n.Out.Shape)
		}
	}
	return nil
}

// Consumers returns, for each node, its consumer list. The map is rebuilt
// per call; passes that need it repeatedly should hold onto it.
func (g *Graph) Consumers() map[*Node][]*Node {
	out := make(map[*Node][]*Node, len(g.nodes))
	for _, n := range g.nodes {
		for _, in := range n.Inputs {
			out[in] = append(out[in], n)
		}
	}
	return out
}

// TotalFLOPs sums FLOPs across all nodes on the given device.
func (g *Graph) TotalFLOPs(dev trace.Device) int64 {
	var total int64
	for _, n := range g.nodes {
		if n.Device == dev {
			total += n.FLOPs
		}
	}
	return total
}

// Stats summarizes a graph for reports: node and FLOP counts per kind.
type Stats struct {
	Nodes       int
	FLOPs       int64
	NodesByKind map[Kind]int
}

// ComputeStats gathers summary statistics for the graph.
func (g *Graph) ComputeStats() Stats {
	s := Stats{NodesByKind: make(map[Kind]int)}
	for _, n := range g.nodes {
		s.Nodes++
		s.FLOPs += n.FLOPs
		s.NodesByKind[n.Kind()]++
	}
	return s
}
