package graph

import (
	"testing"

	"repro/internal/tensor"
	"repro/internal/trace"
)

func spec(dims ...int) tensor.Spec {
	return tensor.NewSpec(tensor.BFloat16, dims...)
}

// buildDiamond builds a small a -> (b, c) -> d graph on the TPU.
func buildDiamond(t *testing.T) (*Graph, *Node, *Node, *Node, *Node) {
	t.Helper()
	g := New("diamond")
	a := g.MustAdd("a", OpPlaceholder, trace.TPU, spec(4, 4))
	b := g.MustAdd("b", OpRelu, trace.TPU, spec(4, 4), a)
	c := g.MustAdd("c", OpTanh, trace.TPU, spec(4, 4), a)
	d := g.MustAdd("d", OpAdd, trace.TPU, spec(4, 4), b, c)
	return g, a, b, c, d
}

func TestAddAndLookup(t *testing.T) {
	g, a, _, _, _ := buildDiamond(t)
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	if g.Lookup("a") != a {
		t.Fatal("Lookup failed")
	}
	if g.Lookup("zzz") != nil {
		t.Fatal("Lookup of missing node returned non-nil")
	}
}

func TestAddRejectsDuplicates(t *testing.T) {
	g := New("g")
	g.MustAdd("x", OpConst, trace.Host, spec(1))
	if _, err := g.Add("x", OpConst, trace.Host, spec(1)); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestAddRejectsEmptyName(t *testing.T) {
	g := New("g")
	if _, err := g.Add("", OpConst, trace.Host, spec(1)); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestAddRejectsForeignInput(t *testing.T) {
	g1 := New("g1")
	g2 := New("g2")
	alien := g1.MustAdd("alien", OpConst, trace.Host, spec(1))
	if _, err := g2.Add("y", OpRelu, trace.Host, spec(1), alien); err == nil {
		t.Fatal("cross-graph input accepted")
	}
}

func TestAddRejectsNilInput(t *testing.T) {
	g := New("g")
	if _, err := g.Add("y", OpRelu, trace.Host, spec(1), nil); err == nil {
		t.Fatal("nil input accepted")
	}
}

func TestToposortOrder(t *testing.T) {
	g, a, b, c, d := buildDiamond(t)
	order, err := g.Toposort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[*Node]int)
	for i, n := range order {
		pos[n] = i
	}
	if !(pos[a] < pos[b] && pos[a] < pos[c] && pos[b] < pos[d] && pos[c] < pos[d]) {
		t.Fatalf("bad topo order: a=%d b=%d c=%d d=%d", pos[a], pos[b], pos[c], pos[d])
	}
}

func TestToposortDetectsCycle(t *testing.T) {
	g, a, b, _, _ := buildDiamond(t)
	// Corrupt the graph: make a depend on b.
	a.Inputs = append(a.Inputs, b)
	if _, err := g.Toposort(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed the cycle")
	}
}

func TestValidateDeviceConstraints(t *testing.T) {
	g := New("g")
	g.MustAdd("inf", OpInfeed, trace.Host, spec(1)) // wrong device
	if err := g.Validate(); err == nil {
		t.Fatal("Infeed on host passed validation")
	}
}

func TestValidateShapes(t *testing.T) {
	g := New("g")
	n := g.MustAdd("x", OpConst, trace.Host, spec(1))
	n.Out.Shape = tensor.NewShape(-1)
	if err := g.Validate(); err == nil {
		t.Fatal("invalid shape passed validation")
	}
}

func TestConsumers(t *testing.T) {
	g, a, b, c, d := buildDiamond(t)
	cons := g.Consumers()
	if len(cons[a]) != 2 {
		t.Fatalf("a consumers = %d", len(cons[a]))
	}
	if len(cons[b]) != 1 || cons[b][0] != d {
		t.Fatal("b consumer wrong")
	}
	if len(cons[c]) != 1 {
		t.Fatal("c consumer wrong")
	}
	if len(cons[d]) != 0 {
		t.Fatal("d should have no consumers")
	}
}

func TestKindOf(t *testing.T) {
	cases := map[string]Kind{
		OpMatMul:      KindContraction,
		OpConv2D:      KindContraction,
		OpReshape:     KindDataMove,
		OpAdd:         KindElementwise,
		OpSum:         KindReduction,
		OpFusedBN:     KindNormalize,
		OpInfeed:      KindTransfer,
		OpAdamUpdate:  KindOptimizer,
		OpConst:       KindStructural,
		"UnknownOp99": KindStructural,
	}
	for op, want := range cases {
		if got := KindOf(op); got != want {
			t.Errorf("KindOf(%s) = %v, want %v", op, got, want)
		}
	}
}

func TestTotalFLOPs(t *testing.T) {
	g := New("g")
	a := g.MustAdd("a", OpConst, trace.Host, spec(1))
	a.FLOPs = 10
	b := g.MustAdd("b", OpMatMul, trace.TPU, spec(1), a)
	b.FLOPs = 100
	if f := g.TotalFLOPs(trace.TPU); f != 100 {
		t.Fatalf("TPU FLOPs = %d", f)
	}
	if f := g.TotalFLOPs(trace.Host); f != 10 {
		t.Fatalf("host FLOPs = %d", f)
	}
}

func TestComputeStats(t *testing.T) {
	g, _, _, _, _ := buildDiamond(t)
	s := g.ComputeStats()
	if s.Nodes != 4 {
		t.Fatalf("Nodes = %d", s.Nodes)
	}
	if s.NodesByKind[KindElementwise] != 3 {
		t.Fatalf("elementwise = %d", s.NodesByKind[KindElementwise])
	}
	if s.NodesByKind[KindStructural] != 1 {
		t.Fatalf("structural = %d", s.NodesByKind[KindStructural])
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd did not panic on duplicate")
		}
	}()
	g := New("g")
	g.MustAdd("x", OpConst, trace.Host, spec(1))
	g.MustAdd("x", OpConst, trace.Host, spec(1))
}
