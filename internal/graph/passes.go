package graph

import (
	"fmt"

	"repro/internal/trace"
)

// FoldConstants performs the constant-folding optimization the TensorFlow
// master applies before dispatching subgraphs to workers: any node all of
// whose inputs are constant (and which is deterministic and side-effect
// free) is replaced by a Const node with the same output spec.
//
// It returns a new graph plus the number of nodes folded; the input graph
// is not modified.
func FoldConstants(g *Graph) (*Graph, int, error) {
	order, err := g.Toposort()
	if err != nil {
		return nil, 0, err
	}
	folded := 0
	isConst := make(map[*Node]bool, len(order))
	ng := New(g.name)
	mapping := make(map[*Node]*Node, len(order))

	for _, n := range order {
		allConst := len(n.Inputs) > 0
		for _, in := range n.Inputs {
			if !isConst[in] {
				allConst = false
				break
			}
		}
		foldable := allConst && foldableOp(n.Op)

		switch {
		case n.ConstValue:
			isConst[n] = true
			nn, err := ng.Add(n.Name, OpConst, n.Device, n.Out)
			if err != nil {
				return nil, 0, err
			}
			mapping[n] = nn
		case foldable:
			isConst[n] = true
			folded++
			nn, err := ng.Add(n.Name, OpConst, n.Device, n.Out)
			if err != nil {
				return nil, 0, err
			}
			nn.ConstValue = true
			mapping[n] = nn
		default:
			ins := make([]*Node, len(n.Inputs))
			for i, in := range n.Inputs {
				ins[i] = mapping[in]
			}
			nn, err := ng.Add(n.Name, n.Op, n.Device, n.Out, ins...)
			if err != nil {
				return nil, 0, err
			}
			nn.FLOPs, nn.Bytes = n.FLOPs, n.Bytes
			mapping[n] = nn
		}
	}
	return ng, folded, nil
}

// foldableOp reports whether an op may be evaluated at graph-construction
// time. Transfers, optimizer updates, and stateful ops must not fold.
func foldableOp(op string) bool {
	switch KindOf(op) {
	case KindElementwise, KindDataMove, KindReduction, KindContraction:
		return op != OpDropout // dropout is stochastic
	default:
		return false
	}
}

// Partition splits a graph into per-device subgraphs, inserting paired
// Send/Recv-style boundary metadata where an edge crosses devices. This is
// the master's job in the TensorFlow execution model: "the master ...
// partitions the graph into subgraphs to be executed by the workers."
type Partition struct {
	Device trace.Device
	Graph  *Graph
	// CrossEdges counts edges arriving from the other device; each one
	// corresponds to a host<->TPU transfer the runtime must schedule.
	CrossEdges int
	// CrossBytes is the total tensor traffic across the boundary into
	// this partition.
	CrossBytes int64
}

// PartitionByDevice splits g into one partition per device present.
// Cross-device edges are cut; the consumer partition records the traffic.
func PartitionByDevice(g *Graph) (map[trace.Device]*Partition, error) {
	order, err := g.Toposort()
	if err != nil {
		return nil, err
	}
	parts := make(map[trace.Device]*Partition)
	part := func(dev trace.Device) *Partition {
		p, ok := parts[dev]
		if !ok {
			p = &Partition{
				Device: dev,
				Graph:  New(fmt.Sprintf("%s/%s", g.name, dev)),
			}
			parts[dev] = p
		}
		return p
	}
	mapping := make(map[*Node]*Node, len(order))
	for _, n := range order {
		p := part(n.Device)
		var ins []*Node
		for _, in := range n.Inputs {
			if in.Device == n.Device {
				ins = append(ins, mapping[in])
				continue
			}
			// Cross-device edge: surrogate placeholder in this partition.
			p.CrossEdges++
			p.CrossBytes += in.OutBytes()
			surName := "recv/" + in.Name
			sur := p.Graph.Lookup(surName)
			if sur == nil {
				sur, err = p.Graph.Add(surName, OpPlaceholder, n.Device, in.Out)
				if err != nil {
					return nil, err
				}
			}
			ins = append(ins, sur)
		}
		nn, err := p.Graph.Add(n.Name, n.Op, n.Device, n.Out, ins...)
		if err != nil {
			return nil, err
		}
		nn.FLOPs, nn.Bytes, nn.ConstValue = n.FLOPs, n.Bytes, n.ConstValue
		mapping[n] = nn
	}
	return parts, nil
}
