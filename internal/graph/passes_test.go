package graph

import (
	"testing"

	"repro/internal/tensor"
	"repro/internal/trace"
)

func TestFoldConstantsFoldsPureConstSubtree(t *testing.T) {
	g := New("g")
	c1 := g.MustAdd("c1", OpConst, trace.TPU, spec(4))
	c2 := g.MustAdd("c2", OpConst, trace.TPU, spec(4))
	add := g.MustAdd("add", OpAdd, trace.TPU, spec(4), c1, c2)
	p := g.MustAdd("p", OpPlaceholder, trace.TPU, spec(4))
	g.MustAdd("mul", OpMul, trace.TPU, spec(4), add, p)

	ng, folded, err := FoldConstants(g)
	if err != nil {
		t.Fatal(err)
	}
	if folded != 1 {
		t.Fatalf("folded = %d, want 1", folded)
	}
	if ng.Lookup("add").Op != OpConst {
		t.Fatal("add was not folded to Const")
	}
	if ng.Lookup("mul").Op != OpMul {
		t.Fatal("mul with non-const input was folded")
	}
	// Original graph untouched.
	if g.Lookup("add").Op != OpAdd {
		t.Fatal("FoldConstants mutated its input")
	}
}

func TestFoldConstantsCascades(t *testing.T) {
	g := New("g")
	c := g.MustAdd("c", OpConst, trace.TPU, spec(2, 2))
	r := g.MustAdd("r", OpRelu, trace.TPU, spec(2, 2), c)
	g.MustAdd("t", OpTanh, trace.TPU, spec(2, 2), r)
	_, folded, err := FoldConstants(g)
	if err != nil {
		t.Fatal(err)
	}
	if folded != 2 {
		t.Fatalf("cascade folded = %d, want 2", folded)
	}
}

func TestFoldConstantsSkipsStochasticAndStateful(t *testing.T) {
	g := New("g")
	c := g.MustAdd("c", OpConst, trace.TPU, spec(4))
	g.MustAdd("drop", OpDropout, trace.TPU, spec(4), c)
	g.MustAdd("upd", OpAdamUpdate, trace.TPU, spec(4), c)
	_, folded, err := FoldConstants(g)
	if err != nil {
		t.Fatal(err)
	}
	if folded != 0 {
		t.Fatalf("folded stochastic/stateful ops: %d", folded)
	}
}

func TestFoldConstantsZeroInputNodesNotFolded(t *testing.T) {
	g := New("g")
	g.MustAdd("p", OpPlaceholder, trace.TPU, spec(4))
	_, folded, err := FoldConstants(g)
	if err != nil {
		t.Fatal(err)
	}
	if folded != 0 {
		t.Fatalf("placeholder folded: %d", folded)
	}
}

func TestPartitionByDevice(t *testing.T) {
	g := New("g")
	// Host pipeline produces a batch, TPU consumes it; loss comes back.
	batch := g.MustAdd("batch", OpPlaceholder, trace.Host, tensor.NewSpec(tensor.Float32, 32, 128))
	deq := g.MustAdd("deq", OpInfeedDequeue, trace.TPU, tensor.NewSpec(tensor.BFloat16, 32, 128), batch)
	w := g.MustAdd("w", OpConst, trace.TPU, spec(128, 64))
	mm := g.MustAdd("mm", OpMatMul, trace.TPU, spec(32, 64), deq, w)
	g.MustAdd("report", OpIdentity, trace.Host, tensor.NewSpec(tensor.Float32, 32, 64), mm)

	parts, err := PartitionByDevice(g)
	if err != nil {
		t.Fatal(err)
	}
	hp, tp := parts[trace.Host], parts[trace.TPU]
	if hp == nil || tp == nil {
		t.Fatal("missing partitions")
	}
	// TPU partition: deq, w, mm + recv surrogate for batch.
	if tp.Graph.Len() != 4 {
		t.Fatalf("TPU partition size = %d", tp.Graph.Len())
	}
	if tp.CrossEdges != 1 {
		t.Fatalf("TPU cross edges = %d", tp.CrossEdges)
	}
	wantBytes := batch.OutBytes()
	if tp.CrossBytes != wantBytes {
		t.Fatalf("TPU cross bytes = %d, want %d", tp.CrossBytes, wantBytes)
	}
	// Host partition: batch, report + recv surrogate for mm.
	if hp.Graph.Len() != 3 {
		t.Fatalf("host partition size = %d", hp.Graph.Len())
	}
	if hp.CrossEdges != 1 || hp.CrossBytes != mm.OutBytes() {
		t.Fatalf("host cross: %d edges, %d bytes", hp.CrossEdges, hp.CrossBytes)
	}
	for _, p := range parts {
		if err := p.Graph.Validate(); err != nil {
			t.Fatalf("partition %v invalid: %v", p.Device, err)
		}
	}
}

func TestPartitionSharedCrossEdgeSurrogateReused(t *testing.T) {
	g := New("g")
	h := g.MustAdd("h", OpPlaceholder, trace.Host, spec(8))
	g.MustAdd("t1", OpRelu, trace.TPU, spec(8), h)
	g.MustAdd("t2", OpTanh, trace.TPU, spec(8), h)
	parts, err := PartitionByDevice(g)
	if err != nil {
		t.Fatal(err)
	}
	tp := parts[trace.TPU]
	// One surrogate, two consumers, two cross edges counted.
	if tp.Graph.Len() != 3 {
		t.Fatalf("TPU partition size = %d, want 3 (shared surrogate)", tp.Graph.Len())
	}
	if tp.CrossEdges != 2 {
		t.Fatalf("cross edges = %d, want 2", tp.CrossEdges)
	}
}

func TestPartitionSingleDevice(t *testing.T) {
	g, _, _, _, _ := buildDiamond(t)
	parts, err := PartitionByDevice(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 {
		t.Fatalf("partitions = %d", len(parts))
	}
	if parts[trace.TPU].CrossEdges != 0 {
		t.Fatal("single-device graph has cross edges")
	}
	if parts[trace.TPU].Graph.Len() != 4 {
		t.Fatal("partition lost nodes")
	}
}

func TestFoldThenPartitionPipeline(t *testing.T) {
	// The master folds constants before partitioning; both passes must
	// compose without error on a mixed-device graph.
	g := New("g")
	c1 := g.MustAdd("c1", OpConst, trace.TPU, spec(4))
	c2 := g.MustAdd("c2", OpConst, trace.TPU, spec(4))
	sum := g.MustAdd("sum", OpAdd, trace.TPU, spec(4), c1, c2)
	h := g.MustAdd("h", OpPlaceholder, trace.Host, spec(4))
	g.MustAdd("out", OpMul, trace.TPU, spec(4), sum, h)

	ng, folded, err := FoldConstants(g)
	if err != nil || folded != 1 {
		t.Fatalf("fold: %d %v", folded, err)
	}
	parts, err := PartitionByDevice(ng)
	if err != nil {
		t.Fatal(err)
	}
	if parts[trace.TPU].Graph.Lookup("sum").Op != OpConst {
		t.Fatal("folded node lost through partition")
	}
}
