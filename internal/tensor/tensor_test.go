package tensor

import (
	"testing"
	"testing/quick"
)

func TestDTypeSizes(t *testing.T) {
	cases := []struct {
		d    DType
		want int
	}{
		{BFloat16, 2}, {Float32, 4}, {Float64, 8},
		{Int32, 4}, {Int64, 8}, {Uint8, 1}, {Bool, 1},
		{String, 16}, {Invalid, 0},
	}
	for _, c := range cases {
		if got := c.d.Size(); got != c.want {
			t.Errorf("%v.Size() = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestDTypeString(t *testing.T) {
	if BFloat16.String() != "bfloat16" {
		t.Errorf("got %q", BFloat16.String())
	}
	if DType(200).String() != "dtype(200)" {
		t.Errorf("unknown dtype: %q", DType(200).String())
	}
}

func TestShapeElements(t *testing.T) {
	if n := NewShape(2, 3, 4).Elements(); n != 24 {
		t.Fatalf("Elements = %d, want 24", n)
	}
	if n := NewShape().Elements(); n != 1 {
		t.Fatalf("scalar Elements = %d, want 1", n)
	}
	if n := NewShape(5, 0, 2).Elements(); n != 0 {
		t.Fatalf("zero-dim Elements = %d, want 0", n)
	}
}

func TestShapeEqualAndClone(t *testing.T) {
	a := NewShape(1, 2, 3)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b[0] = 9
	if a.Equal(b) {
		t.Fatal("clone shares backing array")
	}
	if a.Equal(NewShape(1, 2)) {
		t.Fatal("different rank compared equal")
	}
}

func TestNewShapeCopies(t *testing.T) {
	dims := []int{4, 5}
	s := NewShape(dims...)
	dims[0] = 99
	if s[0] != 4 {
		t.Fatal("NewShape retained caller's slice")
	}
}

func TestShapeString(t *testing.T) {
	if s := NewShape(32, 128).String(); s != "[32,128]" {
		t.Fatalf("String = %q", s)
	}
	if s := NewShape().String(); s != "[]" {
		t.Fatalf("scalar String = %q", s)
	}
}

func TestShapeValid(t *testing.T) {
	if !NewShape(1, 2).Valid() {
		t.Fatal("positive shape invalid")
	}
	if NewShape(1, -2).Valid() {
		t.Fatal("negative dim counted valid")
	}
}

func TestSpecBytes(t *testing.T) {
	sp := NewSpec(Float32, 10, 10)
	if b := sp.Bytes(); b != 400 {
		t.Fatalf("Bytes = %d, want 400", b)
	}
	if s := sp.String(); s != "float32[10,10]" {
		t.Fatalf("String = %q", s)
	}
}

func TestReshapeValid(t *testing.T) {
	sp := NewSpec(BFloat16, 4, 6)
	out, err := Reshape(sp, NewShape(2, 12))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Equal(NewShape(2, 12)) || out.DType != BFloat16 {
		t.Fatalf("reshape result %v", out)
	}
}

func TestReshapeRejectsElementChange(t *testing.T) {
	if _, err := Reshape(NewSpec(Float32, 4, 6), NewShape(5, 5)); err == nil {
		t.Fatal("reshape that changes element count succeeded")
	}
}

func TestReshapeRejectsInvalidShape(t *testing.T) {
	if _, err := Reshape(NewSpec(Float32, 4), NewShape(-4)); err == nil {
		t.Fatal("reshape to negative dim succeeded")
	}
}

func TestMatMulOut(t *testing.T) {
	a := NewSpec(BFloat16, 32, 128)
	b := NewSpec(BFloat16, 128, 512)
	out, err := MatMulOut(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Equal(NewShape(32, 512)) {
		t.Fatalf("matmul out %v", out.Shape)
	}
}

func TestMatMulBatched(t *testing.T) {
	a := NewSpec(BFloat16, 8, 32, 64)
	b := NewSpec(BFloat16, 8, 64, 16)
	out, err := MatMulOut(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Equal(NewShape(8, 32, 16)) {
		t.Fatalf("batched matmul out %v", out.Shape)
	}
	if f := MatMulFLOPs(a, b); f != 2*8*32*64*16 {
		t.Fatalf("batched FLOPs = %d", f)
	}
}

func TestMatMulErrors(t *testing.T) {
	if _, err := MatMulOut(NewSpec(Float32, 4), NewSpec(Float32, 4, 4)); err == nil {
		t.Error("rank-1 lhs accepted")
	}
	if _, err := MatMulOut(NewSpec(Float32, 4, 4), NewSpec(Float32, 5, 4)); err == nil {
		t.Error("inner-dim mismatch accepted")
	}
	if _, err := MatMulOut(NewSpec(Float32, 2, 4, 4), NewSpec(Float32, 3, 4, 4)); err == nil {
		t.Error("batch-dim mismatch accepted")
	}
	if _, err := MatMulOut(NewSpec(Float32, 2, 4, 4), NewSpec(Float32, 4, 4)); err == nil {
		t.Error("rank mismatch accepted")
	}
}

func TestMatMulFLOPs(t *testing.T) {
	a := NewSpec(BFloat16, 32, 128)
	b := NewSpec(BFloat16, 128, 512)
	if f := MatMulFLOPs(a, b); f != 2*32*128*512 {
		t.Fatalf("FLOPs = %d", f)
	}
	if f := MatMulFLOPs(NewSpec(Float32, 4), b); f != 0 {
		t.Fatalf("rank-1 FLOPs = %d, want 0", f)
	}
}

func TestConv2DFLOPs(t *testing.T) {
	// 1x1 conv degenerates to a matmul: N*H*W x Cin x Cout.
	got := Conv2DFLOPs(8, 14, 14, 1, 1, 256, 64)
	want := int64(2 * 8 * 14 * 14 * 256 * 64)
	if got != want {
		t.Fatalf("Conv2DFLOPs = %d, want %d", got, want)
	}
}

// Property: reshape preserves byte size for any compatible pair of shapes.
func TestPropertyReshapePreservesBytes(t *testing.T) {
	f := func(a, b, c uint8) bool {
		d1, d2, d3 := int(a%16)+1, int(b%16)+1, int(c%16)+1
		sp := NewSpec(Float32, d1, d2, d3)
		out, err := Reshape(sp, NewShape(d1*d2, d3))
		if err != nil {
			return false
		}
		return out.Bytes() == sp.Bytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul output element count is M*N regardless of K.
func TestPropertyMatMulShape(t *testing.T) {
	f := func(m, k, n uint8) bool {
		mi, ki, ni := int(m%32)+1, int(k%32)+1, int(n%32)+1
		out, err := MatMulOut(NewSpec(BFloat16, mi, ki), NewSpec(BFloat16, ki, ni))
		if err != nil {
			return false
		}
		return out.Shape.Elements() == int64(mi)*int64(ni)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
