// Package tensor provides shape and dtype metadata for the simulated
// TensorFlow graphs.
//
// The simulator never materializes tensor *values* for model math (timing is
// what the paper characterizes, not numerics), but every op in a step graph
// carries precise shape and dtype information so that FLOP counts, memory
// traffic, and reshape/transpose costs are derived rather than invented.
package tensor

import (
	"fmt"
	"strings"
)

// DType is a tensor element type.
type DType uint8

// Element types used by the workloads. BFloat16 is the TPU-native matmul
// type; Float32 covers host-side preprocessing; the integer types appear in
// tokenized NLP inputs and image bytes.
const (
	Invalid DType = iota
	BFloat16
	Float32
	Float64
	Int32
	Int64
	Uint8
	Bool
	String // variable-length; Size reports an average encoded width
)

var dtypeNames = map[DType]string{
	Invalid:  "invalid",
	BFloat16: "bfloat16",
	Float32:  "float32",
	Float64:  "float64",
	Int32:    "int32",
	Int64:    "int64",
	Uint8:    "uint8",
	Bool:     "bool",
	String:   "string",
}

func (d DType) String() string {
	if s, ok := dtypeNames[d]; ok {
		return s
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// Size returns the element width in bytes. String reports an average width
// of 16 bytes, which is what the dataset generators assume for tokens.
func (d DType) Size() int {
	switch d {
	case BFloat16:
		return 2
	case Float32, Int32:
		return 4
	case Float64, Int64:
		return 8
	case Uint8, Bool:
		return 1
	case String:
		return 16
	default:
		return 0
	}
}

// Shape is a tensor shape. An empty shape is a scalar.
type Shape []int

// NewShape copies dims into a fresh Shape, guarding against callers
// retaining and mutating the backing array.
func NewShape(dims ...int) Shape {
	s := make(Shape, len(dims))
	copy(s, dims)
	return s
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Elements returns the total element count (1 for scalars).
// Any zero dimension yields 0.
func (s Shape) Elements() int64 {
	n := int64(1)
	for _, d := range s {
		n *= int64(d)
	}
	return n
}

// Valid reports whether every dimension is non-negative.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d < 0 {
			return false
		}
	}
	return true
}

// Equal reports dimension-wise equality.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s Shape) Clone() Shape {
	return NewShape(s...)
}

func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// Spec pairs a shape with an element type: the full static type of a
// tensor flowing along a graph edge.
type Spec struct {
	Shape Shape
	DType DType
}

// NewSpec builds a Spec from a dtype and dims.
func NewSpec(d DType, dims ...int) Spec {
	return Spec{Shape: NewShape(dims...), DType: d}
}

// Bytes returns the encoded size of a tensor with this spec.
func (sp Spec) Bytes() int64 {
	return sp.Shape.Elements() * int64(sp.DType.Size())
}

func (sp Spec) String() string {
	return sp.DType.String() + sp.Shape.String()
}

// Reshape checks that to has the same element count as from and returns the
// new spec. Reshape on a TPU is not free — it realigns data for the MXU's
// tiled layout — which is exactly why the paper finds it among the most
// time-consuming ops; cost accounting happens in the xla package.
func Reshape(from Spec, to Shape) (Spec, error) {
	if !to.Valid() {
		return Spec{}, fmt.Errorf("tensor: reshape to invalid shape %v", to)
	}
	if from.Shape.Elements() != to.Elements() {
		return Spec{}, fmt.Errorf("tensor: reshape %v -> %v changes element count %d -> %d",
			from.Shape, to, from.Shape.Elements(), to.Elements())
	}
	return Spec{Shape: to.Clone(), DType: from.DType}, nil
}

// MatMulOut returns the result spec of a (batched) matmul a×b, validating
// the inner dimensions. Both inputs must have rank ≥ 2; leading batch
// dimensions must match exactly.
func MatMulOut(a, b Spec) (Spec, error) {
	if a.Shape.Rank() < 2 || b.Shape.Rank() < 2 {
		return Spec{}, fmt.Errorf("tensor: matmul needs rank>=2, got %v x %v", a.Shape, b.Shape)
	}
	if a.Shape.Rank() != b.Shape.Rank() {
		return Spec{}, fmt.Errorf("tensor: matmul rank mismatch %v x %v", a.Shape, b.Shape)
	}
	r := a.Shape.Rank()
	for i := 0; i < r-2; i++ {
		if a.Shape[i] != b.Shape[i] {
			return Spec{}, fmt.Errorf("tensor: matmul batch dims differ at %d: %v x %v", i, a.Shape, b.Shape)
		}
	}
	if a.Shape[r-1] != b.Shape[r-2] {
		return Spec{}, fmt.Errorf("tensor: matmul inner dims %d != %d", a.Shape[r-1], b.Shape[r-2])
	}
	out := a.Shape.Clone()
	out[r-1] = b.Shape[r-1]
	return Spec{Shape: out, DType: a.DType}, nil
}

// MatMulFLOPs returns 2*M*N*K (multiply-add counted as two FLOPs) for the
// matmul producing out from inner dimension k, including batch dims.
func MatMulFLOPs(a, b Spec) int64 {
	r := a.Shape.Rank()
	if r < 2 {
		return 0
	}
	batch := int64(1)
	for i := 0; i < r-2; i++ {
		batch *= int64(a.Shape[i])
	}
	m := int64(a.Shape[r-2])
	k := int64(a.Shape[r-1])
	n := int64(b.Shape[r-1])
	return 2 * batch * m * k * n
}

// Conv2DFLOPs returns the FLOP count of a 2-D convolution given the output
// spatial extent. Input is NHWC, filter is [kh, kw, cin, cout].
func Conv2DFLOPs(batch, outH, outW, kh, kw, cin, cout int) int64 {
	return 2 * int64(batch) * int64(outH) * int64(outW) *
		int64(kh) * int64(kw) * int64(cin) * int64(cout)
}
