// Durable fleet sessions: the crash-survivable half of the collection
// endpoint. Every accepted record is appended to a per-session durable
// log *before* the client sees its ack, so a collector that dies
// mid-session loses nothing a client was told is safe. The client
// carries an opaque resume token; after the collector restarts it calls
// fleet.Resume with the token, the server rebuilds the session's
// archive writer from the log, and the client continues streaming from
// the durably-accepted record count — no loss, no duplicates.
//
// Durable layout, next to the run data the sessions become:
//
//	sessions/<token>/meta  JSON {token, archive.Meta}
//	sessions/<token>/log   CRC frames (journal framing); each frame's
//	                       payload is a uvarint-framed record stream
//
// The log reuses the intent journal's frame format, so a torn tail —
// the power cut landing inside the final append — is detected and
// trimmed on resume exactly as the journal trims its own tail. Records
// inside an intact frame were acked; records in a torn frame were not,
// so trimming them never loses an acknowledged record.
//
// Lifecycle: Open writes meta (and implicitly an empty log), every
// accepted append lands one log frame, Finalize and Abort retire both
// objects after the run is saved (or discarded). A collector crash
// between Save and retirement is reconciled by RecoverSessions, which
// retires any session whose run already reached the manifest and
// reports the rest as parked, ready for fleet.Resume.
package repo

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/archive"
	"repro/internal/rpc"
	"repro/internal/trace"
)

// MethodFleetResume is the RPC verb reattaching a client to a durable
// session after a collector restart.
const MethodFleetResume = "fleet.Resume"

// maxSessionLogFrame bounds one durable log frame on read. A frame
// holds at most one append batch, which the rpc layer already caps well
// below this; anything larger is corruption.
const maxSessionLogFrame = 64 << 20

// sessionMetaObject and sessionLogObject name a session's durable
// state. The token doubles as the directory name.
func sessionMetaObject(token string) string { return "sessions/" + token + "/meta" }
func sessionLogObject(token string) string  { return "sessions/" + token + "/log" }

// sessionToken derives the durable token for a session: the run ID
// (sanitized so it can't escape the sessions/ subtree) plus the
// creation sequence, which the manifest allocates durably and
// monotonically — two sessions can never share a token, even across
// collector restarts or for the same run ID.
func sessionToken(runID string, createdSeq uint64) string {
	id := strings.NewReplacer("/", "_", "\\", "_", ".", "_").Replace(runID)
	return fmt.Sprintf("%s.%d", id, createdSeq)
}

// sessionMetaRecord is the durable meta document.
type sessionMetaRecord struct {
	Token string       `json:"token"`
	Meta  archive.Meta `json:"meta"`
}

// ResumeRequest reattaches to a durable session by token.
type ResumeRequest struct {
	Token string `json:"token"`
}

// ResumeResponse returns the fresh session handle and how many records
// the durable log already holds — the client restreams from there.
type ResumeResponse struct {
	SessionID uint64 `json:"session_id"`
	Token     string `json:"token"`
	// AcceptedRecords is the durably-accepted record count: everything
	// the pre-crash collector acked survived into the rebuilt session.
	AcceptedRecords int64 `json:"accepted_records"`
}

// writeSessionMeta persists the session's durable identity at open.
func (f *Fleet) writeSessionMeta(s *session) error {
	payload, err := json.Marshal(sessionMetaRecord{Token: s.token, Meta: s.meta})
	if err != nil {
		return err
	}
	if _, err := f.repo.store.Put(sessionMetaObject(s.token), payload); err != nil {
		return fmt.Errorf("fleet: session meta: %w", err)
	}
	return nil
}

// logAccepted durably appends the uvarint-framed stream of records the
// server just accepted, as one CRC frame. This happens after the
// records entered the in-memory queue but before the client's ack: an
// append the client saw succeed is always on disk.
//
// A failed durable append poisons the live session — it is removed from
// the table and its queue closed, so the client's next call fails and
// it must Resume from the log. The in-memory copy of the un-logged
// records dies with the session; the rebuilt one won't have them, the
// client was never acked, and it resends them. That asymmetry (drop
// memory, trust the log) is what keeps the no-duplicates invariant.
func (f *Fleet) logAccepted(s *session, framed []byte) error {
	if err := appendFrame(f.repo.store, sessionLogObject(s.token), framed); err != nil {
		f.poison(s)
		return fmt.Errorf("fleet: session %d durable log: %w", s.id, err)
	}
	return nil
}

// poison removes a session whose durable log diverged from memory.
func (f *Fleet) poison(s *session) {
	f.mu.Lock()
	if f.sessions[s.id] == s {
		delete(f.sessions, s.id)
	}
	f.m.active.Set(int64(len(f.sessions)))
	f.mu.Unlock()
	s.closeQueue()
	<-s.done
	f.opts.Obs.Emit("fleet", "session-poisoned",
		fmt.Sprintf("session %d (run %q): durable log append failed; client must resume", s.id, s.meta.RunID))
}

// retireSession deletes a session's durable state once its run is
// saved or aborted. Best-effort: a crash in between leaves the state
// for RecoverSessions to retire.
func (f *Fleet) retireSession(token string) {
	_ = f.repo.store.Delete(sessionLogObject(token))
	_ = f.repo.store.Delete(sessionMetaObject(token))
}

// readSessionLog rebuilds the durably-accepted record stream: the raw
// wire bytes of every record in every intact log frame, plus the byte
// offset where the intact prefix ends (for torn-tail truncation).
func readSessionLog(store Store, token string) (recs [][]byte, intact int, torn int, err error) {
	frames, intact, torn, err := readFrames(store, sessionLogObject(token), maxSessionLogFrame)
	if err != nil {
		return nil, 0, 0, err
	}
	pos := 0
	for _, payload := range frames {
		split, err := trace.SplitFramed(payload)
		if err != nil {
			// The frame passed its CRC but doesn't decode — treat it and
			// everything after as torn rather than guess at contents.
			torn += intact - pos
			return recs, pos, torn, nil
		}
		recs = append(recs, split...)
		pos += journalFrameOverhead + len(payload)
	}
	return recs, intact, torn, nil
}

// handleResume reattaches a client to a durable session. Any live
// session holding the same token is discarded first — its memory is a
// subset-or-equal of the log, so the log alone is authoritative.
func (f *Fleet) handleResume(body []byte) ([]byte, error) {
	f.sweepExpired()
	var req ResumeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("fleet: bad resume request: %w", err)
	}
	metaObj, err := f.repo.store.Get(sessionMetaObject(req.Token))
	if err != nil {
		return nil, fmt.Errorf("fleet: unknown session token %q", req.Token)
	}
	var mrec sessionMetaRecord
	if err := json.Unmarshal(metaObj.Data, &mrec); err != nil {
		return nil, fmt.Errorf("fleet: session %q meta corrupt: %w", req.Token, err)
	}
	// Route by the run's CURRENT owner, not the replica named in the
	// token prefix: any replica can read the shared meta, but only the
	// owner may append to the shard — after a reconfiguration, that may
	// be a different replica than the one that opened the session.
	if err := f.placeRun(mrec.Meta.RunID); err != nil {
		return nil, err
	}

	// Evict any live session with this token: the resuming client owns
	// it now, and the durable log supersedes the old session's memory.
	f.mu.Lock()
	var stale *session
	for id, s := range f.sessions {
		if s.token == req.Token {
			delete(f.sessions, id)
			stale = s
			break
		}
	}
	f.m.active.Set(int64(len(f.sessions)))
	f.mu.Unlock()
	if stale != nil {
		stale.closeQueue()
		<-stale.done
	}

	recs, intactEnd, torn, err := readSessionLog(f.repo.store, req.Token)
	if err != nil {
		return nil, err
	}
	if torn > 0 {
		// Trim the torn tail now: later appends after it would be
		// unreadable, silently orphaning acked records.
		if obj, err := f.repo.store.Get(sessionLogObject(req.Token)); err == nil {
			if _, err := f.repo.store.Put(sessionLogObject(req.Token), obj.Data[:intactEnd]); err != nil {
				return nil, fmt.Errorf("fleet: session %q log trim: %w", req.Token, err)
			}
		}
	}

	w := archive.NewWriter(mrec.Meta)
	stream := f.newSessionStream(mrec.Meta)
	for _, rec := range recs {
		if err := w.AddRaw(rec); err != nil {
			return nil, fmt.Errorf("fleet: session %q log replay: %w", req.Token, err)
		}
		if stream != nil {
			// Replay rebuilds the analyzer to the exact pre-crash state:
			// the log holds the accepted order the old drain fed it in,
			// and the stream is a pure function of that sequence.
			if dec, derr := trace.UnmarshalRecord(rec); derr == nil {
				_ = stream.Feed(dec)
			}
		}
	}

	s := &session{
		token:      req.Token,
		meta:       mrec.Meta,
		w:          w,
		stream:     stream,
		ch:         make(chan queued, f.opts.QueueSize),
		done:       make(chan struct{}),
		lastActive: f.opts.Now(),
		archived:   int64(len(recs)),
	}
	if err := f.register(s); err != nil {
		return nil, err
	}
	go s.drain(f.m)
	f.m.resumed.Inc()
	f.opts.Obs.Emit("fleet", "session-resumed",
		fmt.Sprintf("session %d (run %q): resumed at %d durable records (%d torn bytes trimmed)",
			s.id, s.meta.RunID, len(recs), torn))
	return json.Marshal(ResumeResponse{SessionID: s.id, Token: s.token, AcceptedRecords: int64(len(recs))})
}

// RecoverSessions reconciles durable session state at collector start:
// sessions whose run already reached the manifest (the crash hit
// between Save and retirement) are retired, the rest are parked —
// their durable state intact, waiting for the client's fleet.Resume.
// Returns the parked tokens, sorted.
func (f *Fleet) RecoverSessions() ([]string, error) {
	var parked []string
	for _, name := range f.repo.store.List("sessions/") {
		if !strings.HasSuffix(name, "/meta") {
			continue
		}
		obj, err := f.repo.store.Get(name)
		if err != nil {
			continue
		}
		var mrec sessionMetaRecord
		if err := json.Unmarshal(obj.Data, &mrec); err != nil || mrec.Token == "" {
			continue
		}
		// Replica mode: adopt only sessions whose shard this replica
		// currently owns. That filter IS cross-replica recovery — when a
		// replica is removed and the survivors' configs shrink, its
		// orphaned sessions hash to surviving owners, who retire or park
		// them here exactly as if they had opened them.
		if owned, oerr := f.ownsRun(mrec.Meta.RunID); oerr != nil || !owned {
			continue
		}
		info, err := f.repo.Info(mrec.Meta.RunID)
		if err == nil && info.CreatedSeq == mrec.Meta.CreatedSeq {
			// The run landed; only retirement was lost.
			f.retireSession(mrec.Token)
			f.opts.Obs.Emit("fleet", "session-retired",
				fmt.Sprintf("session %q: run %q already archived", mrec.Token, mrec.Meta.RunID))
			continue
		}
		parked = append(parked, mrec.Token)
	}
	sort.Strings(parked)
	return parked, nil
}

// SessionTokens lists the durable session tokens present in the store,
// sorted — parked sessions awaiting resume plus currently-live ones.
func SessionTokens(store Store) []string {
	var tokens []string
	for _, name := range store.List("sessions/") {
		if !strings.HasSuffix(name, "/meta") {
			continue
		}
		obj, err := store.Get(name)
		if err != nil {
			continue
		}
		var mrec sessionMetaRecord
		if err := json.Unmarshal(obj.Data, &mrec); err != nil || mrec.Token == "" {
			continue
		}
		tokens = append(tokens, mrec.Token)
	}
	sort.Strings(tokens)
	return tokens
}

// SessionRecords returns the wire records durably accepted into a
// session's log — the intact prefix, in accepted order; a torn tail is
// ignored. This is the read side `tpupoint watch -session` tails.
func SessionRecords(store Store, token string) ([][]byte, error) {
	if _, err := store.Get(sessionMetaObject(token)); err != nil {
		return nil, fmt.Errorf("fleet: unknown session token %q", token)
	}
	recs, _, _, err := readSessionLog(store, token)
	return recs, err
}

// acceptedPrefix returns the leading bytes of a uvarint-framed stream
// covering exactly n records.
func acceptedPrefix(framed []byte, n int) ([]byte, error) {
	rest, err := trace.SkipFrames(framed, n)
	if err != nil {
		return nil, err
	}
	return framed[:len(framed)-len(rest)], nil
}

// frameOne wraps one record's wire bytes as a single-record
// uvarint-framed stream (the durable log's payload format).
func frameOne(rec []byte) []byte {
	framed := binary.AppendUvarint(make([]byte, 0, len(rec)+4), uint64(len(rec)))
	return append(framed, rec...)
}

// register installs a session in the table under the capacity limit.
func (f *Fleet) register(s *session) error {
	f.mu.Lock()
	if len(f.sessions) >= f.opts.MaxSessions {
		f.mu.Unlock()
		f.m.rejected.Inc()
		return fmt.Errorf("%w: %d collection sessions open (limit %d)",
			rpc.ErrBusy, f.opts.MaxSessions, f.opts.MaxSessions)
	}
	s.id = f.nextID
	f.nextID++
	f.sessions[s.id] = s
	f.m.active.Set(int64(len(f.sessions)))
	f.mu.Unlock()
	return nil
}

// ResumeSession reattaches to a durable session on the endpoint behind
// c, returning the fresh client and how many records the server
// already holds durably — the caller restreams its records from that
// index.
func ResumeSession(c rpc.Caller, token string) (*FleetClient, int64, error) {
	body, err := json.Marshal(ResumeRequest{Token: token})
	if err != nil {
		return nil, 0, err
	}
	out, err := c.Call(MethodFleetResume, body)
	if err != nil {
		return nil, 0, err
	}
	var resp ResumeResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		return nil, 0, fmt.Errorf("fleet: bad resume response: %w", err)
	}
	return &FleetClient{c: c, id: resp.SessionID, token: resp.Token}, resp.AcceptedRecords, nil
}
