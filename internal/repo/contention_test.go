package repo

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/faultnet"
	"repro/internal/obs"
)

// tinyBlob builds the smallest valid archive for a run — the
// contention suite saves hundreds of them, so the per-blob cost must
// stay trivial.
func tinyBlob(t testing.TB, runID string, seq uint64) []byte {
	t.Helper()
	w := archive.NewWriter(archive.Meta{RunID: runID, Workload: "ingest", CreatedSeq: seq})
	for _, r := range synthRecords(2, 0) {
		w.Add(r)
	}
	return w.Finalize(nil)
}

// runContentionSuite drives `agents` concurrent savers against a
// sharded repository over a store that injects a generation mismatch
// on every 3rd conditional write, then asserts the zero-loss contract:
// no saver surfaces any error (least of all ErrManifestContention),
// every acked run is listed and readable, and a fresh handle finds the
// store fsck-clean.
func runContentionSuite(t *testing.T, agents int) {
	t.Helper()
	bucket := newTestBucket(t)
	cs := &faultnet.ContendingStore{Inner: bucket, FailEvery: 3}
	r, _, err := OpenShards(cs, DefaultShards)
	if err != nil {
		t.Fatal(err)
	}
	r.SetObs(obs.NewRegistry(0))
	// Backoff schedules stay deterministic; the sleeper just yields so
	// the suite doesn't serialize on real timers under -race.
	r.sleep = func(time.Duration) { runtime.Gosched() }

	blobs := make([][]byte, agents)
	for i := range blobs {
		blobs[i] = tinyBlob(t, fmt.Sprintf("agent-%03d", i), uint64(i+1))
	}

	var wg sync.WaitGroup
	errs := make([]error, agents)
	wg.Add(agents)
	for i := 0; i < agents; i++ {
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Save(blobs[i])
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrManifestContention) {
			t.Fatalf("agent %d surfaced ErrManifestContention — retries not absorbed", i)
		}
		t.Fatalf("agent %d: %v", i, err)
	}
	if cs.Injections() == 0 {
		t.Fatal("contention injector never fired; the suite tested nothing")
	}

	// Acked ⇒ durable: every save is listed and its archive opens.
	listed, err := r.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != agents {
		t.Fatalf("listed %d runs, want %d — acked saves lost", len(listed), agents)
	}
	for _, info := range listed {
		if _, _, err := r.Get(info.RunID); err != nil {
			t.Fatalf("acked run %q unreadable: %v", info.RunID, err)
		}
	}

	// A fresh handle over the raw bucket sees a settled, clean store.
	r2, rrep, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if rrep.OpenIntents != 0 {
		t.Fatalf("%d intents left open after all saves acked", rrep.OpenIntents)
	}
	frep, err := r2.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if !frep.Clean() {
		t.Fatalf("fsck after contention run: %+v", frep.Issues)
	}
}

func TestShardedContentionZeroLoss64(t *testing.T) { runContentionSuite(t, 64) }

func TestShardedContentionZeroLoss256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-agent suite skipped in -short")
	}
	runContentionSuite(t, 256)
}

// TestFlakyJournalDoesNotLoseAcks: transient Append failures on the
// journal surface as save errors (no ack), and every save that DID ack
// is durable — the flaky store can deny service but never corrupt.
func TestFlakyJournalDoesNotLoseAcks(t *testing.T) {
	bucket := newTestBucket(t)
	flaky := &hookStore{Store: bucket}
	n := 0
	flaky.appendErr = func(name string) error {
		n++
		if n%5 == 0 {
			return faultnet.ErrTransientStorage
		}
		return nil
	}
	r, _, err := OpenShards(flaky, 4)
	if err != nil {
		t.Fatal(err)
	}
	acked := 0
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("flaky-%02d", i)
		if _, err := r.Save(tinyBlob(t, id, uint64(i+1))); err == nil {
			acked++
		}
	}
	if acked == 0 {
		t.Fatal("no save ever acked under 20% append failure")
	}
	r2, _, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	listed, err := r2.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) < acked {
		t.Fatalf("%d acked but only %d durable", acked, len(listed))
	}
	for _, info := range listed {
		if _, _, err := r2.Get(info.RunID); err != nil {
			t.Fatalf("run %q unreadable: %v", info.RunID, err)
		}
	}
	rep, err := r2.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fsck: %+v", rep.Issues)
	}
}
