package repo

import (
	"strings"
	"testing"

	"repro/internal/archive"
	"repro/internal/obs"
	"repro/internal/storage"
)

// segmentedBlob is archiveBlob with a tiny segment target, so damage
// to one part of the blob costs one segment rather than the whole run
// — the shape salvage-path tests need.
func segmentedBlob(t *testing.T, runID string, seq uint64) []byte {
	t.Helper()
	recs := synthRecords(30, 0)
	w := archive.NewWriter(archive.Meta{
		RunID: runID, Workload: "synthetic", Label: "test",
		TPUVersion: "v2", CreatedSeq: seq,
	})
	if err := w.SetSegmentTarget(512); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		w.Add(r)
	}
	return w.Finalize(nil)
}

// seedRepo builds a bucket-backed repo with n saved multi-segment runs.
func seedRepo(t *testing.T, n int) (*Repo, *storage.Bucket) {
	t.Helper()
	bucket := newTestBucket(t)
	r := New(bucket)
	ids := []string{"run-a", "run-b", "run-c", "run-d"}
	for i := 0; i < n; i++ {
		if _, err := r.Save(segmentedBlob(t, ids[i], uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	return r, bucket
}

func fsckKinds(rep *FsckReport) []string {
	kinds := make([]string, len(rep.Issues))
	for i, is := range rep.Issues {
		kinds[i] = is.Kind
	}
	return kinds
}

func TestFsckCleanRepo(t *testing.T) {
	r, _ := seedRepo(t, 2)
	rep, err := r.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.RunsChecked != 2 {
		t.Fatalf("report = %+v, want clean over 2 runs", rep)
	}
}

func TestFsckMissingBlob(t *testing.T) {
	r, bucket := seedRepo(t, 2)
	if err := bucket.Delete(runObject("run-a")); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) != 1 || rep.Issues[0].Kind != IssueMissingBlob || rep.Repaired != 0 {
		t.Fatalf("check-only report = %+v", rep)
	}
	// Check-only must not have mutated anything.
	if _, err := r.Info("run-a"); err != nil {
		t.Fatal("check-only fsck mutated the manifest")
	}

	rep, err = r.Fsck(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 1 {
		t.Fatalf("repair report = %+v", rep)
	}
	if _, err := r.Info("run-a"); err == nil {
		t.Fatal("phantom entry survived repair")
	}
	if rep2, err := r.Fsck(false); err != nil || !rep2.Clean() {
		t.Fatalf("post-repair fsck = %+v, err=%v", rep2, err)
	}
}

func TestFsckCorruptBlobRebuiltFromSalvage(t *testing.T) {
	r, bucket := seedRepo(t, 2)
	obj, err := bucket.Get(runObject("run-a"))
	if err != nil {
		t.Fatal(err)
	}
	before, err := r.Info("run-a")
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte well inside the body: one segment dies, others live.
	obj.Data[len(obj.Data)/3] ^= 0x01
	if _, err := bucket.Put(runObject("run-a"), obj.Data); err != nil {
		t.Fatal(err)
	}

	rep, err := r.Fsck(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) != 1 || rep.Issues[0].Kind != IssueCorruptBlob {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.Issues[0].Action, "salvage") {
		t.Fatalf("action = %q", rep.Issues[0].Action)
	}
	info, a, err := r.Get("run-a")
	if err != nil {
		t.Fatalf("repaired run unreadable: %v", err)
	}
	if info.Records == 0 || info.Records >= before.Records+1 {
		t.Fatalf("repaired records = %d (before %d)", info.Records, before.Records)
	}
	if a.RecordCount() != info.Records {
		t.Fatal("manifest counts disagree with rebuilt blob")
	}
	if rep2, err := r.Fsck(false); err != nil || !rep2.Clean() {
		t.Fatalf("post-repair fsck = %+v, err=%v", rep2, err)
	}
}

func TestFsckUnsalvageableQuarantined(t *testing.T) {
	r, bucket := seedRepo(t, 2)
	// Not even the header magic survives: salvage has nothing.
	if _, err := bucket.Put(runObject("run-a"), []byte("XXXXgarbage")); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Fsck(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) != 1 || rep.Issues[0].Kind != IssueCorruptBlob {
		t.Fatalf("report = %+v", rep)
	}
	if _, err := r.Info("run-a"); err == nil {
		t.Fatal("unsalvageable run still indexed")
	}
	if !bucket.Exists(QuarantinePrefix + runObject("run-a")) {
		t.Fatal("blob was not quarantined")
	}
	if bucket.Exists(runObject("run-a")) {
		t.Fatal("quarantined blob left in place")
	}
}

func TestFsckCountMismatchRepaired(t *testing.T) {
	r, _ := seedRepo(t, 1)
	if err := r.update(func(m *manifest) error {
		m.Runs[0].Records += 7
		m.Runs[0].Bytes = 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Fsck(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) != 1 || rep.Issues[0].Kind != IssueCountMismatch {
		t.Fatalf("report = %+v", rep)
	}
	info, a, err := r.Get("run-a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != a.RecordCount() || info.Bytes != a.Size() {
		t.Fatalf("counts not repaired: %+v", info)
	}
}

func TestFsckOrphanReadopted(t *testing.T) {
	r, bucket := seedRepo(t, 1)
	// A valid archive blob present under runs/ but absent from the
	// manifest — exactly what a crash between blob Put and manifest
	// update leaves if the journal is lost too.
	if _, err := bucket.Put(runObject("run-x"), archiveBlob(t, "run-x", 9, 0)); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Fsck(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) != 1 || rep.Issues[0].Kind != IssueOrphanBlob {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Issues[0].Action != "re-adopted into manifest" {
		t.Fatalf("action = %q", rep.Issues[0].Action)
	}
	info, _, err := r.Get("run-x")
	if err != nil {
		t.Fatalf("re-adopted run unreadable: %v", err)
	}
	if info.CreatedSeq != 9 {
		t.Fatalf("adopted seq = %d", info.CreatedSeq)
	}
	// NextSeq must have moved past the adopted run's seq.
	if seq, err := r.NextSeq(); err != nil || seq <= 9 {
		t.Fatalf("NextSeq = %d, %v", seq, err)
	}
}

func TestFsckTornOrphanSalvagedAndReadopted(t *testing.T) {
	r, bucket := seedRepo(t, 1)
	blob := segmentedBlob(t, "run-x", 9)
	torn := blob[:len(blob)*2/3]
	if _, err := bucket.Put(runObject("run-x"), torn); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Fsck(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) != 1 || !strings.Contains(rep.Issues[0].Action, "salvage") {
		t.Fatalf("report = %+v", rep)
	}
	info, a, err := r.Get("run-x")
	if err != nil {
		t.Fatalf("salvaged orphan unreadable: %v", err)
	}
	if info.Records == 0 || a.RecordCount() != info.Records {
		t.Fatalf("info = %+v", info)
	}
}

func TestFsckForeignObjectQuarantined(t *testing.T) {
	r, bucket := seedRepo(t, 1)
	if _, err := bucket.Put("runs/run-a/extra-file", []byte("debris")); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Fsck(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) != 1 || rep.Issues[0].Kind != IssueForeignObject {
		t.Fatalf("kinds = %v", fsckKinds(rep))
	}
	if !bucket.Exists(QuarantinePrefix + "runs/run-a/extra-file") {
		t.Fatal("foreign object not quarantined")
	}
	if bucket.Exists("runs/run-a/extra-file") {
		t.Fatal("foreign object left in place")
	}
}

func TestRepoSalvageIndexedRun(t *testing.T) {
	r, bucket := seedRepo(t, 1)
	obj, err := bucket.Get(runObject("run-a"))
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail off: footer gone.
	if _, err := bucket.Put(runObject("run-a"), obj.Data[:len(obj.Data)*3/4]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Get("run-a"); err == nil {
		t.Fatal("torn run should not open")
	}

	info, srep, err := r.Salvage("run-a")
	if err != nil {
		t.Fatal(err)
	}
	if srep.FooterIntact {
		t.Fatal("footer cannot be intact on a torn blob")
	}
	if info.Records == 0 || info.Workload != "synthetic" {
		t.Fatalf("info = %+v (identity should come from the manifest)", info)
	}
	got, a, err := r.Get("run-a")
	if err != nil {
		t.Fatalf("salvaged run unreadable: %v", err)
	}
	if got.Records != a.RecordCount() || got.Records != info.Records {
		t.Fatalf("counts diverge: %+v vs archive %d", got, a.RecordCount())
	}
	// The repository is fsck-clean and journal-clean afterwards.
	if rep, err := r.Fsck(false); err != nil || !rep.Clean() {
		t.Fatalf("fsck after salvage = %+v, err=%v", rep, err)
	}
	if _, rrep, err := Open(bucket); err != nil || !rrep.Clean() {
		t.Fatalf("recovery after salvage = %+v, err=%v", rrep, err)
	}
}

func TestRepoSalvageNothingRecoverable(t *testing.T) {
	r, bucket := seedRepo(t, 1)
	if _, err := bucket.Put(runObject("run-a"), []byte("TPAR\x01")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Salvage("run-a"); err == nil {
		t.Fatal("salvage of an empty husk should fail")
	}
	if _, _, err := r.Salvage("no-such-run"); err == nil {
		t.Fatal("salvage of a missing blob should fail")
	}
}

func TestRepoSalvageCountsSegments(t *testing.T) {
	bucket := newTestBucket(t)
	r := New(bucket)
	reg := obs.NewRegistry(16)
	r.SetObs(reg)
	if _, err := r.Save(segmentedBlob(t, "run-a", 1)); err != nil {
		t.Fatal(err)
	}
	obj, err := bucket.Get(runObject("run-a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bucket.Put(runObject("run-a"), obj.Data[:len(obj.Data)*3/4]); err != nil {
		t.Fatal(err)
	}
	if _, srep, err := r.Salvage("run-a"); err != nil {
		t.Fatal(err)
	} else if srep.SegmentsKept == 0 {
		t.Fatal("no segments kept")
	}
	if v := reg.Snapshot().C("repo.salvage.segments.recovered"); v == 0 {
		t.Fatal("salvage counter not incremented")
	}
}

func TestFsckCorruptBlobIntoValidArchive(t *testing.T) {
	// archive.Rebuild output must itself pass a follow-up fsck even
	// when the source footer was intact but a segment died.
	r, bucket := seedRepo(t, 1)
	obj, err := bucket.Get(runObject("run-a"))
	if err != nil {
		t.Fatal(err)
	}
	a0, err := archive.Open(obj.Data)
	if err != nil {
		t.Fatal(err)
	}
	if a0.Meta().RunID != "run-a" {
		t.Fatal("test setup")
	}
	obj.Data[headerLenForTest()+12] ^= 0x20
	if _, err := bucket.Put(runObject("run-a"), obj.Data); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fsck(true); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("second fsck not clean: %+v", rep)
	}
}

// headerLenForTest mirrors archive's unexported header size (magic +
// version byte) for corruption offsets.
func headerLenForTest() int { return 5 }
