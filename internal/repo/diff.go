// Cross-run diff: align the phases of two archived runs and report how
// wall time, op mix, and idle/MXU behavior shifted. This is the
// mechanical core of the paper's cross-configuration comparisons
// (TPUv2 vs v3, tuned vs naive input pipelines): the same workload's
// phase structure, diffed instead of eyeballed.
package repo

import (
	"errors"
	"math"
	"sort"

	"repro/internal/archive"
	"repro/internal/core/cluster"
	"repro/internal/simclock"
)

// MaxOpMixDeltas caps how many per-op share changes a phase match
// reports (largest absolute shifts first).
const MaxOpMixDeltas = 8

// ErrNoSummary is returned when an archive carries no analyzer summary
// to diff.
var ErrNoSummary = errors.New("repo: archive has no summary to diff")

// OpMixDelta is one operator's time-share change between two matched
// phases. Shares are fractions of the phase's total op time.
type OpMixDelta struct {
	Op     string // "device:name"
	ShareA float64
	ShareB float64
	Delta  float64 // ShareB - ShareA
}

// PhaseMatch pairs a phase of run A with its closest counterpart in
// run B.
type PhaseMatch struct {
	A archive.PhaseSummary
	B archive.PhaseSummary

	// Distance is the Euclidean distance between the two phases'
	// op-share signature vectors — computed with the same metric the
	// clustering kernels use (cluster.SqDist), so "close" here means
	// exactly what it meant to the analyzer. 0 = identical mix.
	Distance float64

	WallDelta simclock.Duration // B.Total - A.Total
	IdleDelta float64
	MXUDelta  float64
	OpMix     []OpMixDelta
}

// Diff is the full cross-run comparison.
type Diff struct {
	A, B RunInfo // filled by Repo.Compare; zero for raw archive diffs

	WorkloadA, WorkloadB string
	TotalA, TotalB       simclock.Duration
	IdleA, IdleB         float64
	MXUA, MXUB           float64

	Matches []PhaseMatch
	OnlyA   []archive.PhaseSummary // unmatched phases of A
	OnlyB   []archive.PhaseSummary
}

// DiffArchives aligns the phase summaries of two archives. Matching is
// greedy on global minimum signature distance: of all remaining
// (A-phase, B-phase) pairs, pair the closest, repeat. Phases left over
// when one side runs out are reported as OnlyA/OnlyB — a phase that
// exists in one configuration but not the other is itself a finding.
func DiffArchives(a, b *archive.Archive) (*Diff, error) {
	return DiffSummaries(a.Summary(), b.Summary())
}

// DiffSummaries is DiffArchives on bare summaries.
func DiffSummaries(sa, sb *archive.Summary) (*Diff, error) {
	if sa == nil || sb == nil {
		return nil, ErrNoSummary
	}
	d := &Diff{
		WorkloadA: sa.Workload, WorkloadB: sb.Workload,
		TotalA: sa.TotalTime, TotalB: sb.TotalTime,
		IdleA: sa.IdleFrac, IdleB: sb.IdleFrac,
		MXUA: sa.MXUUtil, MXUB: sb.MXUUtil,
	}

	// Joint op vocabulary over both runs' phase summaries, in a fixed
	// (sorted) order so signature vectors are comparable and the diff
	// is deterministic.
	vocab := opVocabulary(sa, sb)
	sigA := make([][]float64, len(sa.Phases))
	for i := range sa.Phases {
		sigA[i] = signature(&sa.Phases[i], vocab)
	}
	sigB := make([][]float64, len(sb.Phases))
	for i := range sb.Phases {
		sigB[i] = signature(&sb.Phases[i], vocab)
	}

	usedA := make([]bool, len(sa.Phases))
	usedB := make([]bool, len(sb.Phases))
	n := len(sa.Phases)
	if len(sb.Phases) < n {
		n = len(sb.Phases)
	}
	for k := 0; k < n; k++ {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := range sa.Phases {
			if usedA[i] {
				continue
			}
			for j := range sb.Phases {
				if usedB[j] {
					continue
				}
				dist := math.Sqrt(cluster.SqDist(sigA[i], sigB[j]))
				if dist < best {
					best, bi, bj = dist, i, j
				}
			}
		}
		usedA[bi], usedB[bj] = true, true
		d.Matches = append(d.Matches, matchPhases(sa.Phases[bi], sb.Phases[bj], best))
	}
	// Present matches in run-A phase order, not discovery order.
	sort.Slice(d.Matches, func(i, j int) bool {
		if d.Matches[i].A.Start != d.Matches[j].A.Start {
			return d.Matches[i].A.Start < d.Matches[j].A.Start
		}
		return d.Matches[i].A.ID < d.Matches[j].A.ID
	})
	for i, used := range usedA {
		if !used {
			d.OnlyA = append(d.OnlyA, sa.Phases[i])
		}
	}
	for j, used := range usedB {
		if !used {
			d.OnlyB = append(d.OnlyB, sb.Phases[j])
		}
	}
	return d, nil
}

// opVocabulary returns every op key appearing in either summary's
// phase op tables, sorted.
func opVocabulary(sa, sb *archive.Summary) []string {
	set := make(map[string]struct{})
	for _, s := range []*archive.Summary{sa, sb} {
		for i := range s.Phases {
			for _, op := range s.Phases[i].Ops {
				set[opKey(op)] = struct{}{}
			}
		}
	}
	vocab := make([]string, 0, len(set))
	for k := range set {
		vocab = append(vocab, k)
	}
	sort.Strings(vocab)
	return vocab
}

func opKey(op archive.OpSummary) string {
	return op.Device.String() + ":" + op.Name
}

// signature builds a phase's op time-share vector over the joint
// vocabulary: element i is the fraction of the phase's summarized op
// time spent in vocab[i].
func signature(p *archive.PhaseSummary, vocab []string) []float64 {
	idx := make(map[string]int, len(vocab))
	for i, k := range vocab {
		idx[k] = i
	}
	v := make([]float64, len(vocab))
	var total float64
	for _, op := range p.Ops {
		total += float64(op.Total)
	}
	if total == 0 {
		return v
	}
	for _, op := range p.Ops {
		v[idx[opKey(op)]] += float64(op.Total) / total
	}
	return v
}

func matchPhases(a, b archive.PhaseSummary, dist float64) PhaseMatch {
	m := PhaseMatch{
		A: a, B: b,
		Distance:  dist,
		WallDelta: b.Total - a.Total,
		IdleDelta: b.IdleFrac - a.IdleFrac,
		MXUDelta:  b.MXUUtil - a.MXUUtil,
	}
	shares := func(p archive.PhaseSummary) map[string]float64 {
		var total float64
		for _, op := range p.Ops {
			total += float64(op.Total)
		}
		out := make(map[string]float64, len(p.Ops))
		if total == 0 {
			return out
		}
		for _, op := range p.Ops {
			out[opKey(op)] += float64(op.Total) / total
		}
		return out
	}
	sa, sb := shares(a), shares(b)
	keys := make(map[string]struct{}, len(sa)+len(sb))
	for k := range sa {
		keys[k] = struct{}{}
	}
	for k := range sb {
		keys[k] = struct{}{}
	}
	for k := range keys {
		m.OpMix = append(m.OpMix, OpMixDelta{
			Op: k, ShareA: sa[k], ShareB: sb[k], Delta: sb[k] - sa[k],
		})
	}
	sort.Slice(m.OpMix, func(i, j int) bool {
		di, dj := math.Abs(m.OpMix[i].Delta), math.Abs(m.OpMix[j].Delta)
		if di != dj {
			return di > dj
		}
		return m.OpMix[i].Op < m.OpMix[j].Op
	})
	if len(m.OpMix) > MaxOpMixDeltas {
		m.OpMix = m.OpMix[:MaxOpMixDeltas]
	}
	return m
}
