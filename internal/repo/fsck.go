// Repository fsck: cross-checks the manifests against the stored blobs
// and (optionally) repairs what it finds. Fsck is the offline
// complement to the intent journal — the journal makes crashes of
// *this* code reconverge, fsck catches everything else: bit rot,
// truncated uploads, hand-edited repositories, debris from older
// versions. Repairs are designed to converge without their own
// journal entries: every repair either completes or leaves a state a
// re-run classifies again (a half-moved quarantine copy is re-detected
// as an orphan; a rebuilt blob whose manifest update was lost shows up
// as a count mismatch).
//
// Sharded repositories are checked over the merged view: entries come
// from every shard, repairs route to the shard owning the run, and
// pack objects (compact.go) are verified through the entries that
// reference them — a pack window that fails to decode condemns the
// entry, not the shared pack.
package repo

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/archive"
	"repro/internal/storage"
)

// QuarantinePrefix is where fsck -repair moves objects it cannot
// classify or salvage: the original object name, prefixed. Quarantined
// objects are never read back by the repository; they exist so repair
// is not destruction.
const QuarantinePrefix = "quarantine/"

// Fsck issue kinds.
const (
	// IssueMissingBlob: a manifest entry whose blob (or pack) object is
	// gone. Repair drops the phantom entry.
	IssueMissingBlob = "missing-blob"
	// IssueCorruptBlob: a referenced blob archive.Open rejects. Repair
	// salvages what it can and rebuilds the blob in place (a packed
	// run is rebuilt into a private blob; the shared pack is left for
	// its siblings), or quarantines it (and drops the entry) when
	// nothing survives.
	IssueCorruptBlob = "corrupt-blob"
	// IssueCountMismatch: blob opens cleanly but its counts disagree
	// with the manifest entry. Repair trusts the blob.
	IssueCountMismatch = "count-mismatch"
	// IssueOrphanBlob: a well-formed runs/<id>/archive object no
	// manifest entry references. Repair re-adopts it (directly, or via
	// salvage+rebuild) or quarantines it.
	IssueOrphanBlob = "orphan-blob"
	// IssueOrphanPack: a pack object no manifest entry references —
	// every member was deleted, or a crashed compaction was rolled
	// back without its cleanup. Repair quarantines it.
	IssueOrphanPack = "orphan-pack"
	// IssueForeignObject: an object under runs/ that is neither
	// repository bookkeeping nor a run blob. Repair quarantines it.
	IssueForeignObject = "foreign-object"
)

// FsckIssue is one finding, plus what -repair did about it.
type FsckIssue struct {
	Kind   string `json:"kind"`
	RunID  string `json:"run_id,omitempty"`
	Object string `json:"object,omitempty"`
	Detail string `json:"detail"`
	// Action describes the applied repair; empty in check-only mode or
	// when the repair itself failed (Detail then explains).
	Action string `json:"action,omitempty"`
}

// FsckReport is the result of one consistency pass.
type FsckReport struct {
	RunsChecked int
	Issues      []FsckIssue
	Repaired    int
}

// Clean reports whether the pass found nothing wrong.
func (fr *FsckReport) Clean() bool { return len(fr.Issues) == 0 }

// Fsck cross-checks every manifest entry (across all shards) against
// its blob and every runs/ object against the merged index. With
// repair=false it only reports; with repair=true it additionally drops
// phantom entries, rebuilds corrupt blobs from their salvageable
// segments, repairs stale counts, re-adopts orphaned archives, and
// quarantines what it cannot save. Run Recover (or construct via Open)
// first so journal debris is not misreported as corruption.
func (r *Repo) Fsck(repair bool) (*FsckReport, error) {
	ss, err := r.resolveShards()
	if err != nil {
		return nil, err
	}
	ms, _, err := r.loadAllShards(ss)
	if err != nil {
		return nil, err
	}
	entries := mergedRuns(ms)
	rep := &FsckReport{RunsChecked: len(entries)}

	referenced := make(map[string]bool, len(entries))
	for _, e := range entries {
		referenced[e.Object] = true
	}

	for _, e := range entries {
		issue, err := r.fsckEntry(e, repair)
		if err != nil {
			return nil, err
		}
		if issue != nil {
			rep.add(*issue)
		}
	}

	indexed := func(id string) bool { return findRun(ms, id) != nil }
	for _, name := range r.store.List("runs/") {
		if isRepoInternalObject(name) || referenced[name] {
			continue
		}
		issue, err := r.fsckUnreferenced(name, indexed, repair)
		if err != nil {
			return nil, err
		}
		if issue != nil {
			rep.add(*issue)
		}
	}

	r.m.fsckIssues.Add(int64(len(rep.Issues)))
	r.m.fsckRepairs.Add(int64(rep.Repaired))
	if !rep.Clean() {
		r.obs.Emit("repo", "fsck",
			fmt.Sprintf("fsck: %d issues, %d repaired", len(rep.Issues), rep.Repaired))
	}
	return rep, nil
}

func (fr *FsckReport) add(issue FsckIssue) {
	fr.Issues = append(fr.Issues, issue)
	if issue.Action != "" {
		fr.Repaired++
	}
}

// fsckEntry checks one manifest entry against its blob; nil means the
// entry is healthy.
func (r *Repo) fsckEntry(e RunInfo, repair bool) (*FsckIssue, error) {
	obj, err := r.store.Get(e.Object)
	if errors.Is(err, storage.ErrNotFound) {
		issue := &FsckIssue{Kind: IssueMissingBlob, RunID: e.RunID, Object: e.Object,
			Detail: "manifest references a blob that does not exist"}
		if repair {
			if err := r.dropEntry(e.RunID); err != nil {
				return nil, err
			}
			issue.Action = "dropped phantom manifest entry"
		}
		return issue, nil
	}
	if err != nil {
		return nil, err
	}

	blob := obj.Data
	if e.packed() {
		end := e.Offset + e.Length
		if e.Offset < 0 || end > int64(len(obj.Data)) {
			issue := &FsckIssue{Kind: IssueCorruptBlob, RunID: e.RunID, Object: e.Object,
				Detail: fmt.Sprintf("entry window [%d,%d) outside pack (%d bytes)",
					e.Offset, end, len(obj.Data))}
			if repair {
				action, err := r.repairCorrupt(e, nil)
				if err != nil {
					return nil, err
				}
				issue.Action = action
			}
			return issue, nil
		}
		blob = obj.Data[e.Offset:end]
	}

	a, openErr := archive.OpenWorkers(blob, r.workers)
	if openErr != nil {
		issue := &FsckIssue{Kind: IssueCorruptBlob, RunID: e.RunID, Object: e.Object,
			Detail: openErr.Error()}
		if repair {
			action, err := r.repairCorrupt(e, blob)
			if err != nil {
				return nil, err
			}
			issue.Action = action
		}
		return issue, nil
	}

	if good := r.entryFor(a, e); good != e {
		issue := &FsckIssue{Kind: IssueCountMismatch, RunID: e.RunID, Object: e.Object,
			Detail: fmt.Sprintf("manifest says %d records / %d bytes, blob holds %d / %d",
				e.Records, e.Bytes, a.RecordCount(), a.Size())}
		if repair {
			if err := r.replaceEntry(good); err != nil {
				return nil, err
			}
			issue.Action = "manifest entry recomputed from blob"
		}
		return issue, nil
	}
	return nil, nil
}

// fsckUnreferenced classifies one runs/ object no manifest entry
// claims; indexed reports whether a run ID exists anywhere in the
// merged index.
func (r *Repo) fsckUnreferenced(name string, indexed func(string) bool, repair bool) (*FsckIssue, error) {
	if strings.HasPrefix(name, PackPrefix) {
		issue := &FsckIssue{Kind: IssueOrphanPack, Object: name,
			Detail: "pack object has no referencing manifest entries"}
		if repair {
			if err := r.quarantine(name); err != nil {
				return nil, err
			}
			issue.Action = "quarantined"
		}
		return issue, nil
	}
	id := runIDFromObject(name)
	if id == "" {
		issue := &FsckIssue{Kind: IssueForeignObject, Object: name,
			Detail: "object under runs/ is not a run blob"}
		if repair {
			if err := r.quarantine(name); err != nil {
				return nil, err
			}
			issue.Action = "quarantined"
		}
		return issue, nil
	}

	issue := &FsckIssue{Kind: IssueOrphanBlob, RunID: id, Object: name,
		Detail: "run blob has no manifest entry"}
	if !repair {
		return issue, nil
	}

	obj, err := r.store.Get(name)
	if errors.Is(err, storage.ErrNotFound) {
		return nil, nil // raced away; nothing to report
	}
	if err != nil {
		return nil, err
	}

	// Adopt directly when the blob verifies and agrees about its own
	// identity; anything else goes through salvage.
	if a, err := archive.OpenWorkers(obj.Data, r.workers); err == nil && a.Meta().RunID == id {
		if indexed(id) {
			// A manifest entry for this run ID exists but points at a
			// different object (a packed window, or foreign debris);
			// the indexed entry wins.
			if err := r.quarantine(name); err != nil {
				return nil, err
			}
			issue.Action = "quarantined (run ID already indexed elsewhere)"
			return issue, nil
		}
		if err := r.adopt(r.entryFor(a, RunInfo{RunID: id, Object: name})); err != nil {
			return nil, err
		}
		issue.Action = "re-adopted into manifest"
		return issue, nil
	}

	res, serr := archive.Salvage(obj.Data)
	if serr != nil || len(res.Records) == 0 {
		if err := r.quarantine(name); err != nil {
			return nil, err
		}
		issue.Action = "quarantined (nothing salvageable)"
		return issue, nil
	}
	meta := res.Meta
	if meta.RunID != id {
		meta.RunID = id
	}
	rebuilt := archive.Rebuild(meta, res)
	a, err := archive.OpenWorkers(rebuilt, r.workers)
	if err != nil {
		return nil, fmt.Errorf("repo: fsck rebuilt blob does not verify: %w", err)
	}
	if _, err := r.store.Put(name, rebuilt); err != nil {
		return nil, err
	}
	if err := r.adopt(r.entryFor(a, RunInfo{RunID: id, Object: name})); err != nil {
		return nil, err
	}
	r.m.salvagedSegs.Add(int64(res.Report.SegmentsKept))
	issue.Action = fmt.Sprintf("re-adopted after salvage (%d/%d segments)",
		res.Report.SegmentsKept, res.Report.SegmentsTotal)
	return issue, nil
}

// repairCorrupt rebuilds a referenced-but-corrupt blob from its
// salvageable segments, or drops the entry when nothing survives. A
// private blob is rebuilt in place (or quarantined); a packed run is
// rebuilt into a private blob and its entry repointed — the shared
// pack is never quarantined on one member's account, its other
// windows may be healthy.
func (r *Repo) repairCorrupt(e RunInfo, blob []byte) (string, error) {
	res, serr := archive.Salvage(blob)
	if serr != nil || len(res.Records) == 0 {
		if e.packed() {
			if err := r.dropEntry(e.RunID); err != nil {
				return "", err
			}
			return "dropped entry (nothing salvageable from pack window)", nil
		}
		if err := r.quarantine(e.Object); err != nil {
			return "", err
		}
		if err := r.dropEntry(e.RunID); err != nil {
			return "", err
		}
		return "quarantined blob and dropped entry (nothing salvageable)", nil
	}
	meta := res.Meta
	if meta.RunID != e.RunID {
		// Footer lost: rebuild identity from the manifest entry.
		meta = archive.Meta{RunID: e.RunID, Workload: e.Workload, Label: e.Label,
			HostSpec: e.HostSpec, TPUVersion: e.TPUVersion, CreatedSeq: e.CreatedSeq}
	}
	rebuilt := archive.Rebuild(meta, res)
	a, err := archive.OpenWorkers(rebuilt, r.workers)
	if err != nil {
		return "", fmt.Errorf("repo: fsck rebuilt blob does not verify: %w", err)
	}
	target := e.Object
	if e.packed() {
		target = runObject(e.RunID)
	}
	if _, err := r.store.Put(target, rebuilt); err != nil {
		return "", err
	}
	good := r.entryFor(a, RunInfo{RunID: e.RunID, Object: target})
	if err := r.replaceEntry(good); err != nil {
		return "", err
	}
	r.m.salvagedSegs.Add(int64(res.Report.SegmentsKept))
	if e.packed() {
		return fmt.Sprintf("rebuilt out of pack into private blob (%d/%d segments, %d records kept)",
			res.Report.SegmentsKept, res.Report.SegmentsTotal, res.Report.RecordsKept), nil
	}
	return fmt.Sprintf("rebuilt from salvage (%d/%d segments, %d records kept)",
		res.Report.SegmentsKept, res.Report.SegmentsTotal, res.Report.RecordsKept), nil
}

// entryFor computes the correct manifest entry for an opened archive,
// keeping base's identity and placement fields where the archive has
// none.
func (r *Repo) entryFor(a *archive.Archive, base RunInfo) RunInfo {
	meta := a.Meta()
	first, last := a.TimeRange()
	info := RunInfo{
		RunID:      base.RunID,
		Workload:   meta.Workload,
		Label:      meta.Label,
		Tenant:     meta.Tenant,
		HostSpec:   meta.HostSpec,
		TPUVersion: meta.TPUVersion,
		CreatedSeq: meta.CreatedSeq,
		Records:    a.RecordCount(),
		Windows:    a.WindowCount(),
		Bytes:      a.Size(),
		TimeFirst:  first,
		TimeLast:   last,
		Object:     base.Object,
		Offset:     base.Offset,
		Length:     base.Length,
	}
	if info.RunID == "" {
		info.RunID = meta.RunID
	}
	if info.Object == "" {
		info.Object = runObject(info.RunID)
	}
	return info
}

// dropEntry removes runID's manifest entry (no blob side effects).
func (r *Repo) dropEntry(runID string) error {
	return r.updateRun(runID, func(m *manifest) error {
		if i := m.find(runID); i >= 0 {
			m.Runs = append(m.Runs[:i], m.Runs[i+1:]...)
		}
		return nil
	})
}

// replaceEntry swaps runID's manifest entry for info.
func (r *Repo) replaceEntry(info RunInfo) error {
	return r.updateRun(info.RunID, func(m *manifest) error {
		if i := m.find(info.RunID); i >= 0 {
			m.Runs[i] = info
		}
		return nil
	})
}

// adopt indexes info on the shard owning its run ID, replacing any
// existing entry for the same run and advancing both the shard's
// stored sequence counter and this process's lease past the adopted
// sequence.
func (r *Repo) adopt(info RunInfo) error {
	ss, err := r.ensureShards()
	if err != nil {
		return err
	}
	si := ss.shardOf(info.RunID)
	if err := r.updateShardIdx(ss, si, func(m *manifest) error {
		if i := m.find(info.RunID); i >= 0 {
			m.Runs[i] = info
		} else {
			m.Runs = append(m.Runs, info)
		}
		if ln := localSeqAfter(info.CreatedSeq, ss.n, si); ln > m.NextSeq {
			m.NextSeq = ln
		}
		return nil
	}); err != nil {
		return err
	}
	r.noteSeq(info.CreatedSeq)
	return nil
}

// quarantine moves an object aside under QuarantinePrefix instead of
// deleting it. A crash between the copy and the delete leaves both;
// re-running fsck re-quarantines (the copy is overwritten) and
// finishes the delete.
func (r *Repo) quarantine(name string) error {
	obj, err := r.store.Get(name)
	if errors.Is(err, storage.ErrNotFound) {
		return nil
	}
	if err != nil {
		return err
	}
	if _, err := r.store.Put(QuarantinePrefix+name, obj.Data); err != nil {
		return err
	}
	if err := r.store.Delete(name); err != nil && !errors.Is(err, storage.ErrNotFound) {
		return err
	}
	return nil
}

// Salvage recovers runID's blob in place: every intact segment is
// re-archived into a fresh, fully valid blob and the manifest entry is
// recomputed (or created, when the blob was an orphan). A packed run's
// window is salvaged out of its pack into a private blob. The report
// itemizes what the underlying archive.Salvage kept and lost.
func (r *Repo) Salvage(runID string) (RunInfo, *archive.SalvageReport, error) {
	object := runObject(runID)
	ss, err := r.resolveShards()
	if err != nil {
		return RunInfo{}, nil, err
	}
	ms, _, err := r.loadAllShards(ss)
	if err != nil {
		return RunInfo{}, nil, err
	}
	entry := findRun(ms, runID)

	var blob []byte
	if entry != nil && entry.packed() {
		obj, gerr := r.store.Get(entry.Object)
		if errors.Is(gerr, storage.ErrNotFound) {
			return RunInfo{}, nil, fmt.Errorf("%w: %q has no blob to salvage", ErrRunNotFound, runID)
		}
		if gerr != nil {
			return RunInfo{}, nil, gerr
		}
		// Clamp the window so a corrupt offset still yields whatever
		// bytes exist for the salvager to chew on.
		off, end := entry.Offset, entry.Offset+entry.Length
		if off < 0 {
			off = 0
		}
		if end > int64(len(obj.Data)) {
			end = int64(len(obj.Data))
		}
		if off > end {
			off = end
		}
		blob = obj.Data[off:end]
	} else {
		obj, gerr := r.store.Get(object)
		if errors.Is(gerr, storage.ErrNotFound) {
			return RunInfo{}, nil, fmt.Errorf("%w: %q has no blob to salvage", ErrRunNotFound, runID)
		}
		if gerr != nil {
			return RunInfo{}, nil, gerr
		}
		blob = obj.Data
	}

	res, err := archive.Salvage(blob)
	if err != nil {
		return RunInfo{}, nil, fmt.Errorf("repo: salvage %q: %w", runID, err)
	}
	if len(res.Records) == 0 {
		return RunInfo{}, &res.Report, fmt.Errorf("repo: salvage %q: no records recoverable", runID)
	}
	meta := res.Meta
	if meta.RunID != runID {
		if entry != nil {
			meta = archive.Meta{RunID: runID, Workload: entry.Workload, Label: entry.Label,
				HostSpec: entry.HostSpec, TPUVersion: entry.TPUVersion, CreatedSeq: entry.CreatedSeq}
		} else {
			meta.RunID = runID
		}
	}
	rebuilt := archive.Rebuild(meta, res)
	a, err := archive.OpenWorkers(rebuilt, r.workers)
	if err != nil {
		return RunInfo{}, &res.Report, fmt.Errorf("repo: rebuilt blob does not verify: %w", err)
	}
	info := r.entryFor(a, RunInfo{RunID: runID, Object: object})

	// Journal the rewrite only for indexed runs: an open save intent on
	// an *unindexed* object would make a crash-time replay reclaim the
	// blob — for an orphan that means deleting the only copy. Leaving
	// the orphan adoption unjournaled is safe: a crash mid-way leaves a
	// valid orphan blob fsck re-adopts.
	jname := ss.journalObject(ss.shardOf(runID))
	var seq uint64
	journaled := entry != nil
	if journaled {
		if seq, err = r.logIntentAt(jname, journalRecord{Op: opSave, RunID: runID, Object: object}); err != nil {
			return RunInfo{}, &res.Report, err
		}
	}
	if _, err := r.store.Put(object, rebuilt); err != nil {
		return RunInfo{}, &res.Report, err
	}
	if err := r.adopt(info); err != nil {
		return RunInfo{}, &res.Report, err
	}
	if journaled {
		r.logDoneAt(jname, seq, opSave)
	}
	r.m.salvagedSegs.Add(int64(res.Report.SegmentsKept))
	r.obs.Emit("repo", "salvage",
		fmt.Sprintf("salvaged run %q: %d/%d segments, %d records",
			runID, res.Report.SegmentsKept, res.Report.SegmentsTotal, res.Report.RecordsKept))
	return info, &res.Report, nil
}
