// Sharded index layout: the scale-out half of the repository.
//
// A v1 repository keeps every run in one runs/manifest.json document,
// so every Save/Delete/GC/NextSeq contends on a single CAS object — at
// fleet scale the writers livelock on the index. A sharded repository
// hashes run IDs (FNV-1a) across M manifest shards, each with its own
// CAS loop and its own intent journal:
//
//	runs/.layout           — {"version":1,"shards":M}; presence selects
//	                         the sharded layout, absence the v1 layout
//	runs/manifest-<i>.json — shard i's index + local seq allocator
//	runs/.journal-<i>      — shard i's intent journal
//
// Reads (List, Fsck, GC victim ranking) scatter-gather the merged view;
// writes route to the one shard that owns the run ID, so unrelated runs
// never contend. Sequence numbers come from per-shard blocks: shard i's
// document stores a local counter L and the global sequence is
// (L-1)*M + i + 1, so blocks from different shards interleave without
// colliding and a process leases seqBlockSize locals per CAS
// round-trip instead of one.
//
// A repository without a layout object stays byte-for-byte a v1
// repository (M=1, legacy object names); OpenShards migrates it in
// place. The layout object is written with PutIf(gen 0), so concurrent
// creators agree on one shard count.
package repo

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

// LayoutObject is the bucket object declaring the sharded layout. Its
// absence means the v1 single-manifest layout.
const LayoutObject = "runs/.layout"

// DefaultShards is the shard count the CLI and benchmarks use when
// asked for a sharded repository without an explicit count.
const DefaultShards = 8

// MaxShards bounds the layout: more shards than this is a corrupt or
// hostile layout object, not a configuration.
const MaxShards = 64

// seqBlockSize is how many local sequence numbers one manifest CAS
// leases to the allocating process. 64 keeps NextSeq off the CAS hot
// path (one round-trip per 64 allocations) while wasting at most 64
// sequence values per process exit — gaps are harmless, only order
// matters.
const seqBlockSize = 64

const (
	shardManifestPrefix = "runs/manifest-"
	shardJournalPrefix  = "runs/.journal-"
)

// repoLayout is the stored LayoutObject document.
type repoLayout struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// shardSet is a resolved index layout: how many shards, whether the
// store uses the legacy v1 object names, and whether the layout is
// durable yet (a fresh sharded store defers the layout write to the
// first mutation).
type shardSet struct {
	n      int
	legacy bool
	saved  bool
}

func (ss shardSet) manifestObject(i int) string {
	if ss.legacy {
		return ManifestObject
	}
	return fmt.Sprintf("%s%d.json", shardManifestPrefix, i)
}

func (ss shardSet) journalObject(i int) string {
	if ss.legacy {
		return JournalObject
	}
	return fmt.Sprintf("%s%d", shardJournalPrefix, i)
}

// shardOf routes a run ID to its owning shard: FNV-1a over the ID,
// mod the shard count. Stable across processes — every reader and
// writer must agree where a run lives.
func (ss shardSet) shardOf(runID string) int {
	return shardIndex(runID, ss.n)
}

func shardIndex(runID string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(runID))
	return int(h.Sum64() % uint64(n))
}

// resolveShards determines the store's layout: an existing layout
// object wins; otherwise an existing v1 manifest means legacy; a fresh
// store takes wantShards (OpenShards' target) or defaults to legacy.
// The result is cached once durable; an undurable fresh layout is
// re-probed every call so a concurrent creator's layout is adopted.
func (r *Repo) resolveShards() (shardSet, error) {
	r.layoutMu.Lock()
	defer r.layoutMu.Unlock()
	if r.shards != nil && r.shards.saved {
		return *r.shards, nil
	}
	var ss shardSet
	obj, err := r.store.Get(LayoutObject)
	switch {
	case err == nil:
		var lay repoLayout
		if jerr := json.Unmarshal(obj.Data, &lay); jerr != nil {
			return shardSet{}, fmt.Errorf("repo: corrupt layout object: %w", jerr)
		}
		if lay.Shards < 1 || lay.Shards > MaxShards {
			return shardSet{}, fmt.Errorf("repo: layout declares %d shards (want 1..%d)", lay.Shards, MaxShards)
		}
		ss = shardSet{n: lay.Shards, saved: true}
	case errors.Is(err, storage.ErrNotFound):
		switch {
		case r.store.Exists(ManifestObject):
			// An indexed store without a layout object is a v1
			// repository; never reinterpret it implicitly (OpenShards
			// migrates explicitly).
			ss = shardSet{n: 1, legacy: true, saved: true}
		case r.wantShards > 1:
			ss = shardSet{n: r.wantShards, saved: false}
		default:
			ss = shardSet{n: 1, legacy: true, saved: true}
		}
	default:
		return shardSet{}, err
	}
	r.shards = &ss
	return ss, nil
}

// ensureShards is resolveShards plus layout durability: a fresh
// sharded store gets its layout object written (PutIf gen 0) before
// the first index mutation, adopting a concurrent creator's layout on
// a lost race.
func (r *Repo) ensureShards() (shardSet, error) {
	ss, err := r.resolveShards()
	if err != nil || ss.saved {
		return ss, err
	}
	data, err := json.Marshal(repoLayout{Version: 1, Shards: ss.n})
	if err != nil {
		return shardSet{}, err
	}
	if _, perr := r.store.PutIf(LayoutObject, data, 0); perr != nil {
		if errors.Is(perr, storage.ErrGenerationMismatch) {
			r.invalidateLayout()
			return r.resolveShards()
		}
		return shardSet{}, perr
	}
	r.layoutMu.Lock()
	if r.shards != nil && r.shards.n == ss.n {
		r.shards.saved = true
	}
	r.layoutMu.Unlock()
	ss.saved = true
	return ss, nil
}

func (r *Repo) invalidateLayout() {
	r.layoutMu.Lock()
	r.shards = nil
	r.layoutMu.Unlock()
}

func marshalManifest(m *manifest) ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// loadManifestObject reads one manifest document and its generation
// (0 = not created yet). A missing document is an empty shard.
func (r *Repo) loadManifestObject(name string) (*manifest, int64, error) {
	obj, err := r.store.Get(name)
	if errors.Is(err, storage.ErrNotFound) {
		return &manifest{NextSeq: 1}, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	var m manifest
	if err := json.Unmarshal(obj.Data, &m); err != nil {
		return nil, 0, fmt.Errorf("repo: corrupt manifest %s: %w", name, err)
	}
	if m.NextSeq == 0 {
		m.NextSeq = 1
	}
	return &m, obj.Generation, nil
}

// loadAllShards reads every shard's manifest, index-aligned with the
// shard set.
func (r *Repo) loadAllShards(ss shardSet) ([]*manifest, []int64, error) {
	ms := make([]*manifest, ss.n)
	gens := make([]int64, ss.n)
	for i := 0; i < ss.n; i++ {
		m, gen, err := r.loadManifestObject(ss.manifestObject(i))
		if err != nil {
			return nil, nil, err
		}
		ms[i], gens[i] = m, gen
	}
	return ms, gens, nil
}

// mergedRuns flattens the per-shard indexes into one view. Order is
// shard-major; callers that care sort by (CreatedSeq, RunID).
func mergedRuns(ms []*manifest) []RunInfo {
	var out []RunInfo
	for _, m := range ms {
		out = append(out, m.Runs...)
	}
	return out
}

func findRun(ms []*manifest, runID string) *RunInfo {
	for _, m := range ms {
		if i := m.find(runID); i >= 0 {
			return &m.Runs[i]
		}
	}
	return nil
}

// casBackoff sleeps before CAS retry `attempt` (>= 1): bounded
// exponential with full jitter. The delay sequence comes from
// internal/prng (deterministic per repository instance) and goes
// through the injectable sleeper, so tests assert the schedule without
// a wall clock. Full jitter — uniform in [0, ceil) — decorrelates
// retries better than equal or half jitter when hundreds of writers
// collide on one shard generation.
func (r *Repo) casBackoff(attempt int) {
	shift := attempt
	if shift > casBackoffMaxShift {
		shift = casBackoffMaxShift
	}
	ceil := casBackoffBase << shift
	r.rngMu.Lock()
	d := time.Duration(r.rng.Float64() * float64(ceil))
	r.rngMu.Unlock()
	r.sleep(d)
}

const (
	// casBackoffBase is the first retry's jitter ceiling; each further
	// retry doubles it up to casBackoffMaxShift. 20µs<<9 ≈ 10ms keeps
	// even the deepest backoff far below an RPC timeout.
	casBackoffBase     = 20 * time.Microsecond
	casBackoffMaxShift = 9
)

// updateShardIdx applies mut to shard i's manifest under a CAS loop
// with jittered backoff. mut may be called multiple times; it must be
// idempotent on its input. Exhausting the retry budget surfaces
// ErrManifestContention — but with backoff that takes casRetries
// *distinct* winning writers during this call's lifetime, so in
// practice the loop terminates long before (every CAS failure proves
// someone else committed).
func (r *Repo) updateShardIdx(ss shardSet, i int, mut func(*manifest) error) error {
	name := ss.manifestObject(i)
	for attempt := 0; attempt < casRetries; attempt++ {
		if attempt > 0 {
			r.casBackoff(attempt)
		}
		m, gen, err := r.loadManifestObject(name)
		if err != nil {
			return err
		}
		if err := mut(m); err != nil {
			return err
		}
		data, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		if _, err := r.store.PutIf(name, data, gen); err == nil {
			return nil
		} else if !errors.Is(err, storage.ErrGenerationMismatch) {
			return err
		}
		r.m.casRetries.Inc()
		r.shardCounter(i, "cas_retries").Inc()
	}
	r.m.casExhausted.Inc()
	return fmt.Errorf("%w: shard %d still contended after %d attempts", ErrManifestContention, i, casRetries)
}

// updateRun routes mut to the shard owning runID.
func (r *Repo) updateRun(runID string, mut func(*manifest) error) error {
	ss, err := r.ensureShards()
	if err != nil {
		return err
	}
	return r.updateShardIdx(ss, ss.shardOf(runID), mut)
}

// shardCounter returns the per-shard instrument named
// repo.shard.<i>.<what>. Registry lookups are idempotent and nil-safe,
// so this is cheap enough for the contended path.
func (r *Repo) shardCounter(i int, what string) *obs.Counter {
	return r.obs.Counter(fmt.Sprintf("repo.shard.%d.%s", i, what))
}

// seqLease is a process-local block of global sequence numbers: the
// arithmetic progression next, next+stride, ... below end.
type seqLease struct {
	next   uint64
	end    uint64
	stride uint64
}

// localSeqAfter returns the smallest shard-j local counter whose global
// sequence exceeds seq, for an n-shard layout (global(L) =
// (L-1)*n + j + 1). With n=1, j=0 it degenerates to seq+1 — exactly
// the v1 allocator's bump.
func localSeqAfter(seq uint64, n, j int) uint64 {
	if seq <= uint64(j) {
		return 1
	}
	return (seq-uint64(j)-1)/uint64(n) + 2
}

// leaseSeqBlock leases seqBlockSize local sequence numbers from the
// next shard in rotation. The lease skips forward past lastSeq, so
// within one process NextSeq stays strictly increasing even as leases
// move between shards; across processes blocks are disjoint because
// each comes from a CAS bump of its shard's stored counter. Caller
// holds seqMu.
func (r *Repo) leaseSeqBlock(ss shardSet) error {
	j := r.leaseShard % ss.n
	r.leaseShard++
	n := uint64(ss.n)
	floor := localSeqAfter(r.lastSeq, ss.n, j)
	var start uint64
	err := r.updateShardIdx(ss, j, func(m *manifest) error {
		start = m.NextSeq
		if start < floor {
			start = floor
		}
		m.NextSeq = start + seqBlockSize
		return nil
	})
	if err != nil {
		return err
	}
	r.lease = seqLease{
		next:   (start-1)*n + uint64(j) + 1,
		end:    (start-1+seqBlockSize)*n + uint64(j) + 1,
		stride: n,
	}
	return nil
}

// noteSeq records an externally observed sequence number (an adopted
// orphan, a migrated run) so future allocations stay above it; a lease
// that would re-issue at or below seq is dropped.
func (r *Repo) noteSeq(seq uint64) {
	r.seqMu.Lock()
	if seq > r.lastSeq {
		r.lastSeq = seq
	}
	if r.lease.stride != 0 && r.lease.next <= seq {
		r.lease = seqLease{}
	}
	r.seqMu.Unlock()
}

// journalObjects returns every journal the layout can have written:
// each shard's journal, plus the legacy journal when it still exists
// alongside a sharded layout (pre-migration debris).
func (r *Repo) journalObjects(ss shardSet) []string {
	if ss.legacy {
		return []string{JournalObject}
	}
	names := make([]string, 0, ss.n+1)
	for i := 0; i < ss.n; i++ {
		names = append(names, ss.journalObject(i))
	}
	if r.store.Exists(JournalObject) {
		names = append(names, JournalObject)
	}
	return names
}

// migrateToShards converts a v1 single-manifest store to n shards in
// place. The caller must have replayed the legacy journal first
// (OpenShards does), and must be the only writer during migration.
// Write order makes a power cut at any boundary recoverable:
//
//  1. delete stale shard documents from an interrupted migration with
//     a different count (invisible while no layout object exists),
//  2. write the new shard documents (still invisible),
//  3. PutIf the layout object at generation 0 — the commit point; a
//     lost race means another migrator won and we adopt its layout,
//  4. delete the legacy manifest and journal (redone by any later
//     Open if the cut lands first).
func (r *Repo) migrateToShards(n int) error {
	if n < 2 {
		return nil
	}
	if n > MaxShards {
		return fmt.Errorf("repo: %d shards exceeds the %d maximum", n, MaxShards)
	}
	ss, err := r.resolveShards()
	if err != nil {
		return err
	}
	if !ss.legacy {
		// Already sharded; the existing count wins. Clear any legacy
		// debris an interrupted migration left behind.
		r.cleanupLegacy()
		return nil
	}
	legacy, _, err := r.loadManifestObject(ManifestObject)
	if err != nil {
		return err
	}
	maxSeq := legacy.NextSeq - 1
	for _, e := range legacy.Runs {
		if e.CreatedSeq > maxSeq {
			maxSeq = e.CreatedSeq
		}
	}
	target := shardSet{n: n}
	docs := make([]*manifest, n)
	for i := range docs {
		docs[i] = &manifest{NextSeq: localSeqAfter(maxSeq, n, i)}
	}
	for _, e := range legacy.Runs {
		i := shardIndex(e.RunID, n)
		docs[i].Runs = append(docs[i].Runs, e)
	}
	for _, name := range r.store.List(shardManifestPrefix) {
		if err := r.store.Delete(name); err != nil && !errors.Is(err, storage.ErrNotFound) {
			return err
		}
	}
	for i, doc := range docs {
		if len(doc.Runs) == 0 && doc.NextSeq <= 1 {
			continue // a missing document reads as an empty shard
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if _, err := r.store.Put(target.manifestObject(i), data); err != nil {
			return err
		}
	}
	lay, err := json.Marshal(repoLayout{Version: 1, Shards: n})
	if err != nil {
		return err
	}
	if _, err := r.store.PutIf(LayoutObject, lay, 0); err != nil {
		if !errors.Is(err, storage.ErrGenerationMismatch) {
			return err
		}
		// A concurrent migrator committed first; its layout (and shard
		// documents) win wholesale.
		r.invalidateLayout()
		if _, err := r.resolveShards(); err != nil {
			return err
		}
		r.cleanupLegacy()
		return nil
	}
	r.layoutMu.Lock()
	committed := shardSet{n: n, saved: true}
	r.shards = &committed
	r.layoutMu.Unlock()
	r.cleanupLegacy()
	r.noteSeq(maxSeq)
	r.obs.Emit("repo", "migrated",
		fmt.Sprintf("migrated v1 manifest (%d runs) to %d shards", len(legacy.Runs), n))
	return nil
}

// cleanupLegacy removes the v1 manifest and journal once a sharded
// layout is durable. Best-effort: a failure just leaves debris the
// next Open retries (the legacy objects are unreachable once the
// layout object exists, and the legacy journal was settled before
// migration began).
func (r *Repo) cleanupLegacy() {
	for _, name := range []string{ManifestObject, JournalObject} {
		if r.store.Exists(name) {
			_ = r.store.Delete(name)
		}
	}
}

// Shards reports the repository's shard count (1 = v1 single-manifest
// layout).
func (r *Repo) Shards() (int, error) {
	ss, err := r.resolveShards()
	if err != nil {
		return 0, err
	}
	return ss.n, nil
}

// repoSeedCounter decorrelates the backoff jitter streams of multiple
// repositories in one process without consulting a wall clock.
var repoSeedCounter uint64

func nextRepoSeed() uint64 {
	return 0x7470757073686172 + atomic.AddUint64(&repoSeedCounter, 1)*0x9e3779b97f4a7c15
}

// isShardManifestObject reports whether name is a shard manifest
// document (runs/manifest-<i>.json).
func isShardManifestObject(name string) bool {
	return strings.HasPrefix(name, shardManifestPrefix) && strings.HasSuffix(name, ".json")
}

// isShardJournalObject reports whether name is a shard journal.
func isShardJournalObject(name string) bool {
	return strings.HasPrefix(name, shardJournalPrefix)
}
