// Segment compaction: merging many small per-run archive blobs into
// consolidated pack objects, one workload at a time. Fleet ingest
// produces exactly the small-object pathology GCS bills for — hundreds
// of kilobyte-scale archives — so Compact concatenates verified TPAR
// blobs into a pack under runs/.pack/ and repoints each member's
// manifest entry at its byte window (RunInfo.Offset/Length). Reads
// slice the window back out (storage.RangeReader when available), and
// TPAR archives are self-contained byte ranges, so a packed member
// decodes bit-identically to its original blob.
//
// Compaction runs under the same crash-consistency contract as every
// other mutation: a journaled opCompact intent carrying the full
// member layout lands first, the pack Put is the commit point, and
// Recover rolls an interrupted compaction forward (pack durable) or
// back (pack missing) — see recoverCompact in journal.go. Entries are
// only repointed while they still address the exact pre-compaction
// blob, so a member re-saved or repaired mid-compaction is left alone.
package repo

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/archive"
	"repro/internal/storage"
)

// PackPrefix is the object-name prefix of consolidated pack blobs.
const PackPrefix = "runs/.pack/"

// CompactOptions tunes a compaction pass; the zero value means
// "defaults".
type CompactOptions struct {
	// Workload restricts the pass to one workload ("" = all).
	Workload string
	// MinRuns is the fewest unpacked archives that justify a pack
	// (default 2 — packing one run is pure churn).
	MinRuns int
	// MaxBytes excludes archives larger than this from packing
	// (default 4 MiB — big blobs don't suffer the small-object tax).
	MaxBytes int64
}

// PackInfo describes one pack a compaction pass produced.
type PackInfo struct {
	Object   string   `json:"object"`
	Workload string   `json:"workload"`
	Runs     []string `json:"runs"`
	Bytes    int64    `json:"bytes"`
}

// CompactReport summarizes a compaction pass.
type CompactReport struct {
	Packs []PackInfo `json:"packs"`
}

// Compact merges small unpacked archives into per-workload pack
// objects. Safe to run concurrently with ingest: members that change
// under the pass (re-saved, deleted, GC'd) are skipped at repoint
// time, and a pack nobody ended up referencing is deleted. Returns
// what it packed; an empty report means nothing qualified.
func (r *Repo) Compact(opts CompactOptions) (*CompactReport, error) {
	if opts.MinRuns < 2 {
		opts.MinRuns = 2
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 4 << 20
	}
	r.compactMu.Lock()
	defer r.compactMu.Unlock()
	ss, err := r.ensureShards()
	if err != nil {
		return nil, err
	}
	ms, _, err := r.loadAllShards(ss)
	if err != nil {
		return nil, err
	}
	groups := make(map[string][]RunInfo)
	for _, e := range mergedRuns(ms) {
		if e.packed() || strings.HasPrefix(e.Object, PackPrefix) {
			continue
		}
		if opts.Workload != "" && e.Workload != opts.Workload {
			continue
		}
		if e.Bytes > opts.MaxBytes {
			continue
		}
		groups[e.Workload] = append(groups[e.Workload], e)
	}
	workloads := make([]string, 0, len(groups))
	for w := range groups {
		workloads = append(workloads, w)
	}
	sort.Strings(workloads)
	rep := &CompactReport{}
	for _, w := range workloads {
		group := groups[w]
		if len(group) < opts.MinRuns {
			continue
		}
		sort.Slice(group, func(i, j int) bool {
			if group[i].CreatedSeq != group[j].CreatedSeq {
				return group[i].CreatedSeq < group[j].CreatedSeq
			}
			return group[i].RunID < group[j].RunID
		})
		if err := r.compactGroup(ss, w, group, opts.MinRuns, rep); err != nil {
			return rep, err
		}
	}
	if len(rep.Packs) > 0 {
		r.compactJournalIfSettled(journalCompactThreshold)
	}
	return rep, nil
}

// compactGroup packs one workload's candidate runs. Write order:
// journaled intent (with the full member layout) → pack Put (the
// commit point) → per-shard entry repoints → old blob deletes → done
// record. A crash at any boundary leaves an open intent that
// recoverCompact drives to a consistent end state.
func (r *Repo) compactGroup(ss shardSet, workload string, group []RunInfo, minRuns int, rep *CompactReport) error {
	var members []packMember
	var blob []byte
	for _, e := range group {
		obj, err := r.store.Get(e.Object)
		if err != nil {
			continue // raced with a delete; skip
		}
		if _, aerr := archive.OpenWorkers(obj.Data, r.workers); aerr != nil {
			continue // corrupt blob — Fsck's problem, not compaction's
		}
		members = append(members, packMember{
			RunID:  e.RunID,
			Object: e.Object,
			Offset: int64(len(blob)),
			Length: int64(len(obj.Data)),
		})
		blob = append(blob, obj.Data...)
	}
	if len(members) < minRuns {
		return nil
	}
	pack := packObjectName(workload, members)
	jname := ss.journalObject(ss.shardOf(pack))
	seq, err := r.logIntentAt(jname, journalRecord{
		Op: opCompact, Object: pack, Members: members,
	})
	if err != nil {
		return err
	}
	if _, err := r.store.Put(pack, blob); err != nil {
		return err // intent open; Recover rolls back (pack absent)
	}
	var packed []string
	var oldBlobs []string
	for _, mb := range members {
		repointed := false
		err := r.updateShardIdx(ss, ss.shardOf(mb.RunID), func(m *manifest) error {
			repointed = false
			i := m.find(mb.RunID)
			if i < 0 {
				return nil
			}
			e := &m.Runs[i]
			// Repoint only an entry still addressing the exact bytes
			// we packed; anything else changed under us and keeps its
			// own storage.
			if e.Object != mb.Object || e.packed() || e.Bytes != mb.Length {
				return nil
			}
			e.Object, e.Offset, e.Length = pack, mb.Offset, mb.Length
			repointed = true
			return nil
		})
		if err != nil {
			return err // intent open; Recover reconciles
		}
		if repointed {
			packed = append(packed, mb.RunID)
			oldBlobs = append(oldBlobs, mb.Object)
		}
	}
	if len(packed) == 0 {
		// Every member changed under us; the pack is dead weight.
		if derr := r.store.Delete(pack); derr != nil && !errors.Is(derr, storage.ErrNotFound) {
			return derr
		}
		r.logDoneAt(jname, seq, opCompact)
		return nil
	}
	for _, old := range oldBlobs {
		if derr := r.store.Delete(old); derr != nil && !errors.Is(derr, storage.ErrNotFound) {
			return derr // intent open; Recover reclaims the rest
		}
	}
	r.logDoneAt(jname, seq, opCompact)
	r.m.compactPacks.Inc()
	r.m.compactRuns.Add(int64(len(packed)))
	r.m.compactBytes.Add(int64(len(blob)))
	r.shardCounter(ss.shardOf(pack), "compactions").Inc()
	r.obs.Emit("repo", "compacted",
		fmt.Sprintf("packed %d %q runs into %s (%d bytes)", len(packed), workload, pack, len(blob)))
	rep.Packs = append(rep.Packs, PackInfo{
		Object: pack, Workload: workload, Runs: packed, Bytes: int64(len(blob)),
	})
	return nil
}

// packObjectName derives a deterministic pack name from the workload
// and the member set — no wall clock, no sequence burn, and distinct
// member sets never collide in practice (FNV-1a over the ordered run
// IDs). Re-running a crashed pass regenerates the same name, which is
// harmless: the Put overwrites the identical bytes.
func packObjectName(workload string, members []packMember) string {
	h := fnv.New64a()
	for _, mb := range members {
		h.Write([]byte(mb.RunID))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%s%s-%016x", PackPrefix, sanitizeForObject(workload), h.Sum64())
}

// sanitizeForObject maps a workload name onto the object-name-safe
// alphabet the pack prefix uses.
func sanitizeForObject(s string) string {
	if s == "" {
		return "workload"
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
