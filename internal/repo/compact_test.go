package repo

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/archive"
)

// workloadBlob is tinyBlob with a workload knob — compaction groups by
// workload, so the tests need more than one.
func workloadBlob(t *testing.T, runID, workload string, seq uint64) []byte {
	t.Helper()
	w := archive.NewWriter(archive.Meta{RunID: runID, Workload: workload, CreatedSeq: seq})
	for _, r := range synthRecords(3, 0) {
		w.Add(r)
	}
	return w.Finalize(nil)
}

func saveN(t *testing.T, r *Repo, workload string, n int) []string {
	t.Helper()
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		seq, err := r.NextSeq()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = fmt.Sprintf("%s-%02d", workload, i)
		if _, err := r.Save(workloadBlob(t, ids[i], workload, seq)); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

// TestCompactMergesAndPreservesReads: after a pass, every member run
// reads back bit-identically through its pack window, the old private
// blobs are gone, and the repository is fsck-clean.
func TestCompactMergesAndPreservesReads(t *testing.T) {
	bucket := newTestBucket(t)
	r := openSharded(t, bucket, 4)
	ids := saveN(t, r, "dcgan", 3)
	otherIDs := saveN(t, r, "bert", 2)

	before := map[string][]byte{}
	for _, id := range append(append([]string{}, ids...), otherIDs...) {
		blob, err := r.readEntryBytes(mustInfo(t, r, id))
		if err != nil {
			t.Fatal(err)
		}
		before[id] = blob
	}

	rep, err := r.Compact(CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Packs) != 2 {
		t.Fatalf("packed %d workloads, want 2: %+v", len(rep.Packs), rep.Packs)
	}
	for _, p := range rep.Packs {
		if !strings.HasPrefix(p.Object, PackPrefix) {
			t.Fatalf("pack object %q outside %s", p.Object, PackPrefix)
		}
	}

	for id, want := range before {
		info := mustInfo(t, r, id)
		if !info.packed() {
			t.Fatalf("run %q not repointed into a pack", id)
		}
		got, err := r.readEntryBytes(info)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("run %q bytes changed across compaction", id)
		}
		if _, a, err := r.Get(id); err != nil || a.Meta().RunID != id {
			t.Fatalf("packed run %q does not open cleanly: %v", id, err)
		}
		if bucket.Exists(runObject(id)) {
			t.Fatalf("old private blob for %q survived compaction", id)
		}
	}

	frep, err := r.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if !frep.Clean() {
		t.Fatalf("fsck after compaction: %+v", frep.Issues)
	}

	// A second pass finds nothing unpacked.
	rep2, err := r.Compact(CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Packs) != 0 {
		t.Fatalf("second pass repacked: %+v", rep2.Packs)
	}

	// A fresh handle reads the packed runs identically.
	r2, _, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range before {
		got, err := r2.readEntryBytes(mustInfo(t, r2, id))
		if err != nil || string(got) != string(want) {
			t.Fatalf("fresh handle: run %q mismatch (%v)", id, err)
		}
	}
}

func mustInfo(t *testing.T, r *Repo, id string) RunInfo {
	t.Helper()
	info, err := r.Info(id)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestCompactRespectsThresholds: MinRuns and MaxBytes gate what packs.
func TestCompactRespectsThresholds(t *testing.T) {
	r := openSharded(t, newTestBucket(t), 2)
	saveN(t, r, "solo", 1)
	rep, err := r.Compact(CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Packs) != 0 {
		t.Fatalf("packed a single run: %+v", rep.Packs)
	}
	saveN(t, r, "pair", 2)
	rep, err = r.Compact(CompactOptions{MaxBytes: 1}) // everything too big
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Packs) != 0 {
		t.Fatalf("packed blobs above MaxBytes: %+v", rep.Packs)
	}
	rep, err = r.Compact(CompactOptions{Workload: "nosuch"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Packs) != 0 {
		t.Fatalf("packed a filtered-out workload: %+v", rep.Packs)
	}
}

// TestDeletePackedRunRefcountsPack: deleting one member keeps the pack
// while siblings reference it; deleting the last member reclaims it.
func TestDeletePackedRunRefcountsPack(t *testing.T) {
	bucket := newTestBucket(t)
	r := openSharded(t, bucket, 4)
	ids := saveN(t, r, "dcgan", 3)
	rep, err := r.Compact(CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Packs) != 1 {
		t.Fatalf("want one pack, got %+v", rep.Packs)
	}
	pack := rep.Packs[0].Object

	for i, id := range ids {
		if err := r.Delete(id); err != nil {
			t.Fatalf("delete %q: %v", id, err)
		}
		last := i == len(ids)-1
		if got := bucket.Exists(pack); got == last {
			t.Fatalf("after deleting %d/%d members pack exists=%v", i+1, len(ids), got)
		}
		frep, err := r.Fsck(false)
		if err != nil {
			t.Fatal(err)
		}
		if !frep.Clean() {
			t.Fatalf("fsck after delete %d: %+v", i+1, frep.Issues)
		}
	}
}

// TestGCReclaimsPackedVictims: GC over packed runs drops the victims
// and reclaims the pack only when the survivors no longer reference it.
func TestGCReclaimsPackedVictims(t *testing.T) {
	bucket := newTestBucket(t)
	r := openSharded(t, bucket, 4)
	ids := saveN(t, r, "dcgan", 4)
	rep, err := r.Compact(CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Packs) != 1 {
		t.Fatalf("want one pack, got %+v", rep.Packs)
	}
	pack := rep.Packs[0].Object

	victims, err := r.GC(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 3 {
		t.Fatalf("GC removed %d runs, want 3", len(victims))
	}
	if !bucket.Exists(pack) {
		t.Fatal("pack reclaimed while the kept run still references it")
	}
	keeper := ids[len(ids)-1]
	if _, _, err := r.Get(keeper); err != nil {
		t.Fatalf("kept run %q unreadable after GC: %v", keeper, err)
	}
	frep, err := r.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if !frep.Clean() {
		t.Fatalf("fsck after GC: %+v", frep.Issues)
	}

	if err := r.Delete(keeper); err != nil {
		t.Fatal(err)
	}
	if bucket.Exists(pack) {
		t.Fatal("pack leaked after its last member was deleted")
	}
}

// TestSalvagePackedRunUnpacks: salvaging an indexed packed run rebuilds
// it into a private blob and repoints the entry out of the pack.
func TestSalvagePackedRunUnpacks(t *testing.T) {
	bucket := newTestBucket(t)
	r := openSharded(t, bucket, 4)
	ids := saveN(t, r, "dcgan", 3)
	if _, err := r.Compact(CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	id := ids[1]
	info, srep, err := r.Salvage(id)
	if err != nil {
		t.Fatalf("salvage packed run: %v (report %+v)", err, srep)
	}
	if info.packed() {
		t.Fatal("salvaged entry still packed")
	}
	if info.Object != runObject(id) {
		t.Fatalf("salvaged entry object %q", info.Object)
	}
	if _, a, err := r.Get(id); err != nil || a.Meta().RunID != id {
		t.Fatalf("salvaged run unreadable: %v", err)
	}
	frep, err := r.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if !frep.Clean() {
		t.Fatalf("fsck after salvage: %+v", frep.Issues)
	}
}

// TestFsckQuarantinesOrphanPack: a pack nobody references is flagged
// and quarantined on repair.
func TestFsckQuarantinesOrphanPack(t *testing.T) {
	bucket := newTestBucket(t)
	r := openSharded(t, bucket, 2)
	saveN(t, r, "dcgan", 2)
	orphan := PackPrefix + "debris-0123456789abcdef"
	if _, err := bucket.Put(orphan, []byte("stale pack bytes")); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Fsck(true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, issue := range rep.Issues {
		if issue.Kind == IssueOrphanPack && issue.Object == orphan {
			found = true
			if issue.Action == "" {
				t.Fatal("orphan pack not repaired")
			}
		}
	}
	if !found {
		t.Fatalf("orphan pack not flagged: %+v", rep.Issues)
	}
	if bucket.Exists(orphan) {
		t.Fatal("orphan pack still present after repair")
	}
	if !bucket.Exists(QuarantinePrefix + orphan) {
		t.Fatal("orphan pack not quarantined")
	}
	rep2, err := r.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() {
		t.Fatalf("fsck not clean after repair: %+v", rep2.Issues)
	}
}

// TestFleetAutoCompact: the collection endpoint triggers background
// compaction every CompactEvery finalizes, and WaitBackground drains
// it.
func TestFleetAutoCompact(t *testing.T) {
	bucket := newTestBucket(t)
	r := openSharded(t, bucket, 4)
	f := NewFleet(r, FleetOptions{QueueSize: 64, CompactEvery: 4})

	finalizeRun := func(i int) {
		t.Helper()
		openBody, _ := json.Marshal(OpenRequest{RunID: fmt.Sprintf("fleet-%02d", i), Workload: "fleet"})
		out, err := f.handleOpen(openBody)
		if err != nil {
			t.Fatal(err)
		}
		var opened OpenResponse
		if err := json.Unmarshal(out, &opened); err != nil {
			t.Fatal(err)
		}
		finBody, _ := json.Marshal(sessionRequest{SessionID: opened.SessionID})
		if _, err := f.handleFinalize(finBody); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		finalizeRun(i)
	}
	f.WaitBackground()

	listed, err := r.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 8 {
		t.Fatalf("listed %d runs, want 8", len(listed))
	}
	packedCount := 0
	for _, info := range listed {
		if info.packed() {
			packedCount++
		}
		if _, _, err := r.Get(info.RunID); err != nil {
			t.Fatalf("run %q unreadable after auto-compact: %v", info.RunID, err)
		}
	}
	if packedCount == 0 {
		t.Fatal("auto-compaction never packed anything")
	}
	frep, err := r.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if !frep.Clean() {
		t.Fatalf("fsck after auto-compact: %+v", frep.Issues)
	}
}
