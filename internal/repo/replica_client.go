// ResilientClient: the agent-side half of exactly-once ingest across
// replica failover.
//
// The server half already exists: every accepted record is durable in
// the session log BEFORE the ack (logAccepted), AppendBatch acks a
// durable prefix count, and fleet.Resume replays the log and answers
// with exactly how many records are durable. What the agent must add
// is memory: it retains every record it has sent, and when a call
// lands on a replica that does not know the session — because the
// owner crashed and restarted, or failover re-aimed the endpoint-set
// client at a survivor that redirects Resume to the restarted owner —
// it resumes with the durable token, reads the server's accepted count
// k, and resends records[k:]. Records [0,k) are never resent (no
// duplicates); records [k,n) are all resent (no loss): exactly once,
// with the server's durable count as the single source of truth.
package repo

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/trace"
)

// appendBatchRaw sends one AppendBatch round trip of pre-framed
// records and returns the server's durable-prefix acceptance count —
// the primitive the resilient tail resend is built on (PutBatch loops
// it; here the caller owns the loop because the watermark must survive
// session replacement).
func (fc *FleetClient) appendBatchRaw(framed []byte) (int, error) {
	if len(framed) == 0 {
		return 0, nil
	}
	body := make([]byte, 8+len(framed))
	binary.LittleEndian.PutUint64(body[:8], fc.id)
	copy(body[8:], framed)
	out, err := fc.c.Call(MethodFleetAppendBatch, body)
	if err != nil {
		return 0, err
	}
	var resp AppendBatchResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		return 0, fmt.Errorf("fleet: bad append-batch response: %w", err)
	}
	if resp.Accepted < 0 {
		return 0, nil
	}
	return resp.Accepted, nil
}

// ResilientClient wraps a FleetClient with send-buffer retention and
// automatic resume-on-unknown-session. Use one per run, from one
// goroutine (matching FleetClient). The rpc.Caller should be an
// endpoint-set ReconnectClient so transports failures and placement
// redirects are already absorbed below this layer; this layer handles
// the one failure class that survives reconnection — the server
// forgetting the in-memory session.
type ResilientClient struct {
	c  rpc.Caller
	fc *FleetClient

	// sent is every record framed in accepted order; acked counts how
	// many of them the server has durably acknowledged.
	sent  [][]byte
	acked int
	// resumes counts recoveries, for tests and diagnostics.
	resumes int
}

// OpenResilient opens a session and returns a client that survives
// collector crashes and failovers.
func OpenResilient(c rpc.Caller, req OpenRequest) (*ResilientClient, error) {
	fc, err := OpenSession(c, req)
	if err != nil {
		return nil, err
	}
	return &ResilientClient{c: c, fc: fc}, nil
}

// Token returns the durable resume token.
func (rc *ResilientClient) Token() string { return rc.fc.Token() }

// Resumes reports how many times the client recovered a lost session.
func (rc *ResilientClient) Resumes() int { return rc.resumes }

// Append streams one record, recovering the session if the collector
// lost it.
func (rc *ResilientClient) Append(rec *trace.ProfileRecord) error {
	rc.sent = append(rc.sent, trace.AppendFramedRecord(nil, rec))
	return rc.flush()
}

// Put accepts one record's wire bytes — profiler.RecordStore, so a
// profiler can stream straight into a resilient session the way it
// does into a FleetClient. The name is advisory (the session orders
// records); data is retained for failover resend.
func (rc *ResilientClient) Put(name string, data []byte) (*storage.Object, error) {
	frame := binary.AppendUvarint(make([]byte, 0, len(data)+4), uint64(len(data)))
	frame = append(frame, data...)
	rc.sent = append(rc.sent, frame)
	if err := rc.flush(); err != nil {
		return nil, err
	}
	return &storage.Object{Name: name, Data: append([]byte(nil), data...)}, nil
}

// PutBatch accepts a framed record stream — profiler.BatchStore. The
// stream is split back into per-record frames because the resend
// watermark counts records, not batches: a failover mid-batch resends
// exactly the unacknowledged tail.
func (rc *ResilientClient) PutBatch(name string, framed []byte, count int) (*storage.Object, error) {
	payloads, err := trace.SplitFramed(framed)
	if err != nil {
		return nil, err
	}
	if count >= 0 && len(payloads) != count {
		return nil, fmt.Errorf("fleet: batch holds %d records, caller claims %d", len(payloads), count)
	}
	for _, p := range payloads {
		frame := binary.AppendUvarint(make([]byte, 0, len(p)+4), uint64(len(p)))
		rc.sent = append(rc.sent, append(frame, p...))
	}
	if err := rc.flush(); err != nil {
		return nil, err
	}
	return &storage.Object{Name: name, Data: append([]byte(nil), framed...)}, nil
}

// AppendBatch streams records, recovering the session if needed.
func (rc *ResilientClient) AppendBatch(recs []*trace.ProfileRecord) error {
	for _, r := range recs {
		rc.sent = append(rc.sent, trace.AppendFramedRecord(nil, r))
	}
	return rc.flush()
}

// flush pushes the unacked tail, resuming on unknown-session. One
// resume per flush attempt: a second unknown-session right after a
// successful Resume means the fleet is flapping faster than we can
// reattach — surface it.
func (rc *ResilientClient) flush() error {
	err := rc.sendTail()
	if err == nil {
		return nil
	}
	if !IsUnknownSession(err) {
		return err
	}
	if rerr := rc.resume(); rerr != nil {
		return fmt.Errorf("session lost and resume failed: %w", rerr)
	}
	return rc.sendTail()
}

// sendTail transmits sent[acked:] in one batch frame, advancing acked
// by the server's durable-prefix acknowledgements.
func (rc *ResilientClient) sendTail() error {
	for rc.acked < len(rc.sent) {
		var framed []byte
		for _, raw := range rc.sent[rc.acked:] {
			framed = append(framed, raw...)
		}
		n, err := rc.fc.appendBatchRaw(framed)
		rc.acked += n
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("fleet: append-batch accepted 0 of %d records", len(rc.sent)-rc.acked)
		}
	}
	return nil
}

// resume reattaches via the durable token. The server's accepted
// count REWINDS our ack watermark when the crash ate acked-in-memory-
// only records (it cannot: logAccepted precedes every ack — but the
// watermark trusts the server regardless, which also makes the client
// correct against a server that loses its tail to a torn log trim).
func (rc *ResilientClient) resume() error {
	fc, accepted, err := ResumeSession(rc.c, rc.fc.Token())
	if err != nil {
		return err
	}
	if accepted > int64(len(rc.sent)) {
		return fmt.Errorf("fleet: server has %d records durable, client only sent %d", accepted, len(rc.sent))
	}
	rc.fc = fc
	rc.acked = int(accepted)
	rc.resumes++
	return nil
}

// Finalize archives the run, recovering the session if needed. Any
// unacked tail is flushed first, so the archive always holds every
// record the caller appended.
func (rc *ResilientClient) Finalize() (RunInfo, error) {
	if err := rc.flush(); err != nil {
		return RunInfo{}, err
	}
	info, err := rc.fc.Finalize()
	if err == nil || !IsUnknownSession(err) {
		return info, err
	}
	// The collector lost the session between our last append and this
	// finalize. Resume replays the durable log (everything is already
	// acked) and the retry finalizes the recovered session.
	if rerr := rc.resume(); rerr != nil {
		return RunInfo{}, fmt.Errorf("session lost and resume failed: %w", rerr)
	}
	if err := rc.flush(); err != nil {
		return RunInfo{}, err
	}
	return rc.fc.Finalize()
}

// Abort discards the session server-side; the retained buffer is
// dropped client-side.
func (rc *ResilientClient) Abort() error {
	rc.sent, rc.acked = nil, 0
	return rc.fc.Abort()
}
