package repo

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core/analyzer"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// phasedSessionRecords generates n step records whose op mix switches
// halfway through the run — two clean phases for the streaming
// analyzer to find while records are still arriving.
func phasedSessionRecords(session, n int) []*trace.ProfileRecord {
	recs := make([]*trace.ProfileRecord, 0, n)
	var ts simclock.Time
	for i := 0; i < n; i++ {
		step := int64(i)
		ops := []string{"InfeedDequeueTuple", "fusion", "Conv2D"}
		if i >= n/2 {
			ops = []string{"ArgMax", "Mean", "TopKV2"}
		}
		events := make([]trace.Event, 0, len(ops))
		for _, op := range ops {
			events = append(events, trace.Event{
				Name: op, Device: trace.TPU, Start: ts, Dur: 100, Step: step,
			})
			ts = ts.Add(100)
		}
		recs = append(recs, trace.Reduce(int64(i), events[0].Start, events, 0.1, 0.5))
	}
	return recs
}

// TestFleetStreamEvents is the streaming acceptance test: 8 concurrent
// collection sessions, each with a mid-run phase change, must emit
// stream.phase.* obs events while the collection is in flight and the
// per-session phase counters must add up at finalize.
func TestFleetStreamEvents(t *testing.T) {
	reg := obs.NewRegistry(512)
	f, srv, _ := newFleetUnderTest(t, FleetOptions{
		MaxSessions: 8,
		QueueSize:   16,
		Obs:         reg,
	})

	const sessions = 8
	const perSession = 60
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := rpc.Pipe(srv)
			defer c.Close()
			fc, err := OpenSession(c, OpenRequest{
				RunID: fmt.Sprintf("stream-run-%d", i), Workload: "synthetic",
			})
			if err != nil {
				errs[i] = err
				return
			}
			if err := fc.AppendBatch(phasedSessionRecords(i, perSession)); err != nil {
				errs[i] = err
				return
			}
			if _, err := fc.Finalize(); err != nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	// Two phases per session: 2 opens, 2 closes each.
	if got := f.sm.opened.Value(); got != 2*sessions {
		t.Fatalf("fleet.stream.phases.opened = %d, want %d", got, 2*sessions)
	}
	if got := f.sm.closed.Value(); got != 2*sessions {
		t.Fatalf("fleet.stream.phases.closed = %d, want %d", got, 2*sessions)
	}

	var opens, closes, summaries int
	for _, ev := range reg.Events() {
		switch {
		case ev.Scope == "stream.phase" && ev.Name == "open":
			opens++
		case ev.Scope == "stream.phase" && ev.Name == "close":
			closes++
		case ev.Scope == "stream" && ev.Name == "summary":
			summaries++
		}
	}
	if opens != 2*sessions || closes != 2*sessions {
		t.Fatalf("stream.phase events: %d opens, %d closes; want %d each", opens, closes, 2*sessions)
	}
	if summaries != sessions {
		t.Fatalf("stream summary events = %d, want %d", summaries, sessions)
	}
}

// TestFleetStreamDutyCycle: the collector-side sampling knob must thread
// through to the per-session analyzers.
func TestFleetStreamDutyCycle(t *testing.T) {
	reg := obs.NewRegistry(128)
	f, srv, _ := newFleetUnderTest(t, FleetOptions{
		Obs:    reg,
		Stream: analyzer.StreamOptions{DutyCycle: 10},
	})
	c := rpc.Pipe(srv)
	defer c.Close()
	fc, err := OpenSession(c, OpenRequest{RunID: "duty", Workload: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.AppendBatch(phasedSessionRecords(0, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Sampling 1/10 of a clean two-regime run still finds both phases.
	if got := f.sm.closed.Value(); got != 2 {
		t.Fatalf("phases closed = %d, want 2 at duty 1/10", got)
	}
	if got := reg.Counter("stream.steps").Value(); got != 10 {
		t.Fatalf("sampled steps = %d, want 10 of 100 at duty 1/10", got)
	}
}

// TestFleetStreamDisabled: DisableStream must suppress the per-session
// analyzers entirely.
func TestFleetStreamDisabled(t *testing.T) {
	reg := obs.NewRegistry(64)
	f, srv, _ := newFleetUnderTest(t, FleetOptions{Obs: reg, DisableStream: true})
	c := rpc.Pipe(srv)
	defer c.Close()
	fc, err := OpenSession(c, OpenRequest{RunID: "quiet", Workload: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.AppendBatch(phasedSessionRecords(0, 40)); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := f.sm.opened.Value(); got != 0 {
		t.Fatalf("phases opened = %d with streaming disabled", got)
	}
	for _, ev := range reg.Events() {
		if ev.Scope == "stream.phase" {
			t.Fatalf("unexpected stream.phase event: %+v", ev)
		}
	}
}
