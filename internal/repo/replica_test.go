package repo

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/storage"
)

// runOwnedBy finds a run ID that hashes to a shard owned by the given
// replica under an n-shard, k-replica layout.
func runOwnedBy(t *testing.T, label string, shards int, rc *ReplicaConfig) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("%s-%d", label, i)
		if rc.Owner(shardIndex(id, shards)) == rc.ID {
			return id
		}
	}
	t.Fatalf("no run ID found for replica %d/%d", rc.ID, rc.Replicas)
	return ""
}

func TestReplicaConfigValidateAndOwnership(t *testing.T) {
	bad := []ReplicaConfig{
		{ID: 0, Replicas: 0},
		{ID: -1, Replicas: 2},
		{ID: 2, Replicas: 2},
		{ID: 0, Replicas: 3, Peers: []string{"a", "b"}},
	}
	for i, rc := range bad {
		if err := rc.Validate(); err == nil {
			t.Fatalf("config %d (%+v) validated", i, rc)
		}
	}
	var nilCfg *ReplicaConfig
	if err := nilCfg.Validate(); err != nil {
		t.Fatalf("nil config: %v", err)
	}

	rc := &ReplicaConfig{ID: 1, Replicas: 2, Peers: []string{"a", "b"}}
	if err := rc.Validate(); err != nil {
		t.Fatal(err)
	}
	// mod-N placement: shard s -> replica s%2, and the owned sets of
	// the two replicas partition the shard space.
	owned := rc.OwnedShards(8)
	if len(owned) != 4 {
		t.Fatalf("replica 1 owns %v of 8 shards", owned)
	}
	for _, s := range owned {
		if s%2 != 1 {
			t.Fatalf("replica 1 owns shard %d", s)
		}
	}
	if rc.Endpoint(0) != "a" || rc.Endpoint(1) != "b" || rc.Endpoint(7) != "" {
		t.Fatal("endpoint lookup broken")
	}
}

// twoReplicaFleet builds one replica's fleet over the shared bucket.
// Each replica opens the store scoped to its owned shards, exactly as
// a real collector process would.
func twoReplicaFleet(t *testing.T, bucket *storage.Bucket, id int, opts FleetOptions) (*Fleet, *rpc.Server, *Repo) {
	t.Helper()
	rc := &ReplicaConfig{ID: id, Replicas: 2, Peers: []string{"replica-a", "replica-b"}}
	r, _, err := OpenShardsOwned(bucket, 4, rc.OwnedShards(4))
	if err != nil {
		t.Fatal(err)
	}
	opts.Replica = rc
	f := NewFleet(r, opts)
	srv := rpc.NewServer()
	f.Register(srv)
	t.Cleanup(srv.Close)
	return f, srv, r
}

func TestReplicaOpenRedirectsToOwner(t *testing.T) {
	bucket := newBucket(t)
	// Replica 0 creates the layout first; replica 1 adopts it.
	_, srv0, _ := twoReplicaFleet(t, bucket, 0, FleetOptions{})
	_, srv1, _ := twoReplicaFleet(t, bucket, 1, FleetOptions{})

	cfg1 := &ReplicaConfig{ID: 1, Replicas: 2}
	foreign := runOwnedBy(t, "owned-by-b", 4, cfg1)

	// Misplaced open: replica 0 must redirect to replica 1's endpoint
	// without allocating anything.
	c0 := rpc.Pipe(srv0)
	defer c0.Close()
	_, err := OpenSession(c0, OpenRequest{RunID: foreign, Workload: "synthetic"})
	ep, ok := IsRedirect(err)
	if !ok {
		t.Fatalf("open on the wrong replica: err = %v, want redirect", err)
	}
	if ep != "replica-b" {
		t.Fatalf("redirect endpoint = %q, want replica-b", ep)
	}
	if !rpc.IsTransient(err) {
		t.Fatal("placement redirect must classify transient")
	}

	// The owner accepts the same open, and scopes the token.
	c1 := rpc.Pipe(srv1)
	defer c1.Close()
	fc, err := OpenSession(c1, OpenRequest{RunID: foreign, Workload: "synthetic"})
	if err != nil {
		t.Fatalf("open on the owner: %v", err)
	}
	if !strings.HasPrefix(fc.Token(), "r1.") {
		t.Fatalf("token %q not in replica 1's namespace", fc.Token())
	}
	if err := fc.Abort(); err != nil {
		t.Fatal(err)
	}
}

// dialFabric maps endpoint names to live rpc servers; nil entries
// refuse dials. Remapping a name models a replica crash + restart.
type dialFabric struct {
	mu      sync.Mutex
	servers map[string]*rpc.Server
}

func (d *dialFabric) set(name string, s *rpc.Server) {
	d.mu.Lock()
	d.servers[name] = s
	d.mu.Unlock()
}

func (d *dialFabric) dial(name string) (net.Conn, error) {
	d.mu.Lock()
	s := d.servers[name]
	d.mu.Unlock()
	if s == nil {
		return nil, errors.New("dial " + name + ": connection refused")
	}
	cc, sc := net.Pipe()
	go s.ServeConn(sc)
	return cc, nil
}

// TestReplicaEndpointSetFollowsRedirect drives a session through an
// endpoint-set ReconnectClient aimed at the WRONG replica: the typed
// redirect re-aims it at the owner and the whole session — open,
// append, finalize — lands there.
func TestReplicaEndpointSetFollowsRedirect(t *testing.T) {
	bucket := newBucket(t)
	_, srv0, _ := twoReplicaFleet(t, bucket, 0, FleetOptions{})
	_, srv1, r1 := twoReplicaFleet(t, bucket, 1, FleetOptions{})
	fab := &dialFabric{servers: map[string]*rpc.Server{"replica-a": srv0, "replica-b": srv1}}

	rc, err := rpc.NewReconnectClient(rpc.ReconnectOptions{
		Endpoints:    []string{"replica-a"},
		DialEndpoint: fab.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	foreign := runOwnedBy(t, "redirected", 4, &ReplicaConfig{ID: 1, Replicas: 2})
	fc, err := OpenSession(rc, OpenRequest{RunID: foreign, Workload: "synthetic"})
	if err != nil {
		t.Fatalf("open through the endpoint set: %v", err)
	}
	const n = 25
	for _, rec := range sessionRecords(0, n) {
		if err := fc.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	info, err := fc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != n {
		t.Fatalf("archived %d records, want %d", info.Records, n)
	}
	if got := rc.CurrentEndpoint(); got != "replica-b" {
		t.Fatalf("session served from %q, want the owner", got)
	}
	if _, _, err := r1.Get(foreign); err != nil {
		t.Fatalf("run not in the shared store: %v", err)
	}
}

// TestReplicaRecoverSessionsAdoptsOwnedOnly parks one session per
// replica, then runs each survivor's RecoverSessions: each must adopt
// exactly its own shard subset's sessions.
func TestReplicaRecoverSessionsAdoptsOwnedOnly(t *testing.T) {
	bucket := newBucket(t)
	f0, srv0, _ := twoReplicaFleet(t, bucket, 0, FleetOptions{})
	f1, srv1, _ := twoReplicaFleet(t, bucket, 1, FleetOptions{})

	runA := runOwnedBy(t, "park-a", 4, &ReplicaConfig{ID: 0, Replicas: 2})
	runB := runOwnedBy(t, "park-b", 4, &ReplicaConfig{ID: 1, Replicas: 2})
	var tokens []string
	for _, p := range []struct {
		srv *rpc.Server
		run string
	}{{srv0, runA}, {srv1, runB}} {
		c := rpc.Pipe(p.srv)
		fc, err := OpenSession(c, OpenRequest{RunID: p.run, Workload: "synthetic"})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range sessionRecords(0, 5) {
			if err := fc.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		tokens = append(tokens, fc.Token())
		c.Close() // abandon mid-session: parked, not finalized
	}

	parked0, err := f0.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	parked1, err := f1.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(parked0) != 1 || parked0[0] != tokens[0] {
		t.Fatalf("replica 0 adopted %v, want [%s]", parked0, tokens[0])
	}
	if len(parked1) != 1 || parked1[0] != tokens[1] {
		t.Fatalf("replica 1 adopted %v, want [%s]", parked1, tokens[1])
	}
}

// TestReplicaRemovalSurvivorAdopts reconfigures a 2-replica fleet down
// to one: the survivor's RecoverSessions must adopt the removed
// replica's parked session (its token keeps the dead replica's "r1."
// prefix — ownership is recomputed, not parsed), and the client's
// resume must complete the run on the survivor.
func TestReplicaRemovalSurvivorAdopts(t *testing.T) {
	bucket := newBucket(t)
	_, srv1, _ := twoReplicaFleet(t, bucket, 1, FleetOptions{})

	run := runOwnedBy(t, "orphaned", 4, &ReplicaConfig{ID: 1, Replicas: 2})
	c := rpc.Pipe(srv1)
	fc, err := OpenSession(c, OpenRequest{RunID: run, Workload: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	recs := sessionRecords(2, 30)
	for _, rec := range recs[:12] {
		if err := fc.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	token := fc.Token()
	c.Close()
	srv1.Close() // replica 1 is gone for good

	// Survivor reconfigured to own everything.
	solo := &ReplicaConfig{ID: 0, Replicas: 1, Peers: []string{"replica-a"}}
	r0, _, err := OpenShardsOwned(bucket, 4, solo.OwnedShards(4))
	if err != nil {
		t.Fatal(err)
	}
	f0 := NewFleet(r0, FleetOptions{Replica: solo})
	srv0 := rpc.NewServer()
	f0.Register(srv0)
	defer srv0.Close()

	parked, err := f0.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(parked) != 1 || parked[0] != token {
		t.Fatalf("survivor adopted %v, want [%s]", parked, token)
	}

	c0 := rpc.Pipe(srv0)
	defer c0.Close()
	fc2, accepted, err := ResumeSession(c0, token)
	if err != nil {
		t.Fatalf("resume on the survivor: %v", err)
	}
	if accepted != 12 {
		t.Fatalf("survivor has %d durable records, want 12", accepted)
	}
	for _, rec := range recs[accepted:] {
		if err := fc2.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	info, err := fc2.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != int64(len(recs)) {
		t.Fatalf("archived %d records, want %d (exactly once)", info.Records, len(recs))
	}
}

// TestReplicaKillFailoverExactlyOnce is the acceptance-criteria test:
// an agent streams through an endpoint-set client while its run's
// owning replica is killed and restarted mid-stream. The ResilientClient
// resumes from the server's durable count; the archived run must hold
// every record exactly once.
func TestReplicaKillFailoverExactlyOnce(t *testing.T) {
	bucket := newBucket(t)
	reg := obs.NewRegistry(64)
	_, srv0, _ := twoReplicaFleet(t, bucket, 0, FleetOptions{})
	_, srv1, _ := twoReplicaFleet(t, bucket, 1, FleetOptions{Obs: reg})
	fab := &dialFabric{servers: map[string]*rpc.Server{"replica-a": srv0, "replica-b": srv1}}

	ns := 0
	rc, err := rpc.NewReconnectClient(rpc.ReconnectOptions{
		Endpoints:    []string{"replica-a", "replica-b"},
		DialEndpoint: fab.dial,
		MaxRetries:   8,
		Sleep:        func(time.Duration) { ns++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	run := runOwnedBy(t, "failover", 4, &ReplicaConfig{ID: 1, Replicas: 2})
	agent, err := OpenResilient(rc, OpenRequest{RunID: run, Workload: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	recs := sessionRecords(3, 60)
	for _, rec := range recs[:25] {
		if err := agent.Append(rec); err != nil {
			t.Fatal(err)
		}
	}

	// Kill the owner: the process dies, its in-memory sessions with it.
	// Only the shared store survives.
	fab.set("replica-b", nil)
	srv1.Close()

	// Restart it: fresh repo (scoped recovery), fresh fleet, recovered
	// sessions, same endpoint name.
	f1b, srv1b, _ := twoReplicaFleet(t, bucket, 1, FleetOptions{})
	if _, err := f1b.RecoverSessions(); err != nil {
		t.Fatal(err)
	}
	fab.set("replica-b", srv1b)

	// The stream continues: the dead conn fails over, the restarted
	// owner answers "unknown session", and the agent resumes + resends
	// the unacked tail.
	for _, rec := range recs[25:] {
		if err := agent.Append(rec); err != nil {
			t.Fatalf("append across the kill: %v", err)
		}
	}
	info, err := agent.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != int64(len(recs)) {
		t.Fatalf("archived %d records, want %d (no loss, no duplicates)", info.Records, len(recs))
	}
	if agent.Resumes() == 0 {
		t.Fatal("the kill never exercised a resume")
	}

	// Independent verification over the shared store: the archived run
	// decodes to exactly the sent records, and the repository is
	// structurally clean.
	r, _, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	_, a, err := r.Get(run)
	if err != nil {
		t.Fatal(err)
	}
	if a.RecordCount() != int64(len(recs)) {
		t.Fatalf("stored archive holds %d records, want %d", a.RecordCount(), len(recs))
	}
	fr, err := r.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Clean() {
		t.Fatalf("fsck after failover: %+v", fr.Issues)
	}
}

// TestLeaseExpirySweepVsConcurrentResume races a lease-expiry sweep
// against concurrent fleet.Resume calls for the SAME token through two
// collector handles over one shared store. Whatever interleaving the
// scheduler picks, no records may be lost and the run must finalize
// with the full count.
func TestLeaseExpirySweepVsConcurrentResume(t *testing.T) {
	bucket := newBucket(t)
	now := time.Unix(2000, 0)
	var nowMu sync.Mutex
	clock := func() time.Time {
		nowMu.Lock()
		defer nowMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		nowMu.Lock()
		now = now.Add(d)
		nowMu.Unlock()
	}

	mk := func() (*Fleet, *rpc.Server) {
		r, _, err := Open(bucket)
		if err != nil {
			t.Fatal(err)
		}
		f := NewFleet(r, FleetOptions{Lease: 50 * time.Millisecond, Now: clock})
		srv := rpc.NewServer()
		f.Register(srv)
		t.Cleanup(srv.Close)
		return f, srv
	}
	_, srvA := mk()
	_, srvB := mk()

	cA := rpc.Pipe(srvA)
	defer cA.Close()
	fc, err := OpenSession(cA, OpenRequest{RunID: "sweep-race", Workload: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	recs := sessionRecords(4, 40)
	for _, rec := range recs[:10] {
		if err := fc.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	token := fc.Token()

	// Hammer: both handles resume the same token while the lease clock
	// jumps past expiry between rounds, so sweeps at handler entry race
	// the resume's evict-and-register on both fleets.
	var wg sync.WaitGroup
	for w, srv := range map[int]*rpc.Server{0: srvA, 1: srvB} {
		wg.Add(1)
		go func(w int, srv *rpc.Server) {
			defer wg.Done()
			c := rpc.Pipe(srv)
			defer c.Close()
			for i := 0; i < 20; i++ {
				advance(60 * time.Millisecond) // every lease is now expired
				fc, accepted, err := ResumeSession(c, token)
				if err != nil {
					// Losing the eviction race to the other handle's
					// resume is fine; losing the durable state is not.
					if strings.Contains(err.Error(), "unknown session token") {
						t.Errorf("worker %d: durable session state vanished: %v", w, err)
						return
					}
					continue
				}
				if accepted < 10 {
					t.Errorf("worker %d: resume regressed to %d durable records", w, accepted)
					return
				}
				_ = fc
			}
		}(w, srv)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// One final resume owns the session; stream the tail and land it.
	cB := rpc.Pipe(srvB)
	defer cB.Close()
	fcFinal, accepted, err := ResumeSession(cB, token)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 10 {
		t.Fatalf("final resume at %d durable records, want 10", accepted)
	}
	for _, rec := range recs[10:] {
		if err := fcFinal.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	info, err := fcFinal.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != int64(len(recs)) {
		t.Fatalf("archived %d records, want %d", info.Records, len(recs))
	}
}

// TestRecoverPerJournalDoneMatching is the cross-replica seq-collision
// regression: two replica processes each start their own journal seq
// counter, so (seq) alone is ambiguous across journals. Replica A's
// CLOSED intent seq 1 in journal-0 must not mask replica B's OPEN
// intent seq 1 in journal-1.
func TestRecoverPerJournalDoneMatching(t *testing.T) {
	bucket := newBucket(t)
	r0, _, err := OpenShards(bucket, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One real save makes the 2-shard layout durable (a fresh store
	// defers the layout object to the first mutation).
	if _, err := r0.Save(archiveBlob(t, "seed", 1, 0)); err != nil {
		t.Fatal(err)
	}

	// Two independent processes over the shared store, each with a
	// fresh seq counter.
	ra := New(bucket)
	rb := New(bucket)
	ss := shardSet{n: 2, saved: true}

	// Replica A: a completed save in journal-0 (intent + done, seq 1).
	seqA, err := ra.logIntentAt(ss.journalObject(0), journalRecord{Op: opSave, RunID: "a-run", Object: runObject("a-run")})
	if err != nil {
		t.Fatal(err)
	}
	ra.logDoneAt(ss.journalObject(0), seqA, opSave)

	// Replica B: an OPEN intent in journal-1 with the SAME seq number,
	// blob written but never indexed — a crash mid-save.
	seqB, err := rb.logIntentAt(ss.journalObject(1), journalRecord{Op: opSave, RunID: "b-run", Object: runObject("b-run")})
	if err != nil {
		t.Fatal(err)
	}
	if seqA != seqB {
		t.Fatalf("test premise broken: seqs %d vs %d should collide", seqA, seqB)
	}
	if _, err := bucket.Put(runObject("b-run"), []byte("orphan bytes")); err != nil {
		t.Fatal(err)
	}

	_, rep, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RolledBack != 1 {
		t.Fatalf("rolled back %d intents, want 1 (B's open save)", rep.RolledBack)
	}
	if bucket.Exists(runObject("b-run")) {
		t.Fatal("orphan blob survived: A's done record masked B's open intent")
	}
}

// TestOpenShardsOwnedScopesRecovery proves a starting replica cannot
// roll back a live peer's in-flight save: it replays only its owned
// shards' journals.
func TestOpenShardsOwnedScopesRecovery(t *testing.T) {
	bucket := newBucket(t)
	r0, _, err := OpenShards(bucket, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r0.Save(archiveBlob(t, "seed", 1, 0)); err != nil {
		t.Fatal(err)
	}
	ss := shardSet{n: 2, saved: true}

	// A "live peer" (replica 0) holds an open intent in journal-0 with
	// its blob already written — mid-save, not crashed. The peer opened
	// scoped to its shard like any replica, which seeds its seq counter
	// above journal-0's history.
	peer, _, err := OpenShardsOwned(bucket, 2, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := peer.logIntentAt(ss.journalObject(0), journalRecord{Op: opSave, RunID: "inflight", Object: runObject("inflight")}); err != nil {
		t.Fatal(err)
	}
	if _, err := bucket.Put(runObject("inflight"), []byte("peer bytes")); err != nil {
		t.Fatal(err)
	}

	// Replica 1 starts up owning only shard 1: the peer's intent must
	// survive untouched.
	_, rep, err := OpenShardsOwned(bucket, 2, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OpenIntents != 0 || rep.RolledBack != 0 {
		t.Fatalf("scoped recovery touched the peer's journal: %+v", rep)
	}
	if !bucket.Exists(runObject("inflight")) {
		t.Fatal("scoped recovery reclaimed a live peer's in-flight blob")
	}

	// A FULL open (sole writer, e.g. offline fsck) still reconciles it.
	_, rep, err = Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RolledBack != 1 {
		t.Fatalf("full recovery rolled back %d, want 1", rep.RolledBack)
	}
}
