package repo

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"repro/internal/storage"
)

// hookStore wraps a Store with per-call failure injection, so tests
// can force the exact interleavings the journal exists to survive.
type hookStore struct {
	Store
	putErr    func(name string) error
	putIfErr  func(name string) error
	deleteErr func(name string) error
	appendErr func(name string) error
}

func (h *hookStore) Put(name string, data []byte) (*storage.Object, error) {
	if h.putErr != nil {
		if err := h.putErr(name); err != nil {
			return nil, err
		}
	}
	return h.Store.Put(name, data)
}

func (h *hookStore) PutIf(name string, data []byte, gen int64) (*storage.Object, error) {
	if h.putIfErr != nil {
		if err := h.putIfErr(name); err != nil {
			return nil, err
		}
	}
	return h.Store.PutIf(name, data, gen)
}

func (h *hookStore) Delete(name string) error {
	if h.deleteErr != nil {
		if err := h.deleteErr(name); err != nil {
			return err
		}
	}
	return h.Store.Delete(name)
}

func (h *hookStore) Append(name string, data []byte) (*storage.Object, error) {
	if h.appendErr != nil {
		if err := h.appendErr(name); err != nil {
			return nil, err
		}
	}
	return h.Store.Append(name, data)
}

func newTestBucket(t *testing.T) *storage.Bucket {
	t.Helper()
	svc := storage.NewService()
	bucket, err := svc.CreateBucket("repo")
	if err != nil {
		t.Fatal(err)
	}
	return bucket
}

// TestSaveRollbackFailureReclaimedByRecover is the regression test for
// the orphan-blob leak: a Save whose manifest update fails AND whose
// rollback delete also fails used to strand a blob no GC could ever
// see. The journal closes the leak — the open save intent survives and
// the next Recover reclaims the orphan.
func TestSaveRollbackFailureReclaimedByRecover(t *testing.T) {
	bucket := newTestBucket(t)
	boom := errors.New("manifest write died")
	obj := runObject("run-x")
	failing := &hookStore{
		Store: bucket,
		putIfErr: func(name string) error {
			if name == ManifestObject {
				return boom
			}
			return nil
		},
		deleteErr: func(name string) error {
			if name == obj {
				return errors.New("rollback delete died")
			}
			return nil
		},
	}
	r := New(failing)
	if _, err := r.Save(archiveBlob(t, "run-x", 1, 0)); !errors.Is(err, boom) {
		t.Fatalf("Save error = %v, want %v", err, boom)
	}
	if !bucket.Exists(obj) {
		t.Fatal("expected the orphan blob to be stranded by the forced interleaving")
	}

	// Recovery over the (now healthy) store must roll the save back.
	r2, rep, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatalf("recovery report unexpectedly clean: %+v", rep)
	}
	if rep.OpenIntents != 1 || rep.RolledBack != 1 {
		t.Fatalf("report = %+v, want 1 open intent rolled back", rep)
	}
	if len(rep.OrphansReclaimed) != 1 || rep.OrphansReclaimed[0] != obj {
		t.Fatalf("OrphansReclaimed = %v, want [%s]", rep.OrphansReclaimed, obj)
	}
	if bucket.Exists(obj) {
		t.Fatal("orphan blob not reclaimed")
	}
	// The repository is fully usable afterwards: the same run ID saves.
	if _, err := r2.Save(archiveBlob(t, "run-x", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r2.Get("run-x"); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverCompletesInterruptedDelete: crash after the manifest
// forgot the run but before its blob was removed — Recover finishes
// the delete.
func TestRecoverCompletesInterruptedDelete(t *testing.T) {
	bucket := newTestBucket(t)
	r := New(bucket)
	if _, err := r.Save(archiveBlob(t, "run-a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	obj := runObject("run-a")
	failing := &hookStore{
		Store: bucket,
		deleteErr: func(name string) error {
			if name == obj {
				return errors.New("blob delete died")
			}
			return nil
		},
	}
	rf := New(failing)
	if _, err := rf.Recover(); err != nil { // pick up journal seq
		t.Fatal(err)
	}
	if err := rf.Delete("run-a"); err == nil {
		t.Fatal("Delete should surface the blob delete failure")
	}
	if !bucket.Exists(obj) {
		t.Fatal("test setup: blob should still exist")
	}

	_, rep, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 1 {
		t.Fatalf("report = %+v, want the delete intent completed", rep)
	}
	if bucket.Exists(obj) {
		t.Fatal("leftover blob not reclaimed")
	}
}

// TestRecoverFinishesGCVictims: crash after GC's manifest swap but
// before the victim blobs were deleted.
func TestRecoverFinishesGCVictims(t *testing.T) {
	bucket := newTestBucket(t)
	r := New(bucket)
	for i, id := range []string{"run-1", "run-2", "run-3"} {
		if _, err := r.Save(archiveBlob(t, id, uint64(i+1), 0)); err != nil {
			t.Fatal(err)
		}
	}
	failing := &hookStore{
		Store: bucket,
		deleteErr: func(name string) error {
			if name != JournalObject && name != ManifestObject {
				return errors.New("blob delete died")
			}
			return nil
		},
	}
	rf := New(failing)
	if _, err := rf.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := rf.GC(1); err == nil {
		t.Fatal("GC should surface the blob delete failure")
	}

	_, rep, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OrphansReclaimed) != 2 {
		t.Fatalf("OrphansReclaimed = %v, want the 2 GC victims", rep.OrphansReclaimed)
	}
	for _, id := range []string{"run-1", "run-2"} {
		if bucket.Exists(runObject(id)) {
			t.Fatalf("victim blob %s survived recovery", id)
		}
	}
	if !bucket.Exists(runObject("run-3")) {
		t.Fatal("kept run's blob was wrongly reclaimed")
	}
}

// TestRecoverIgnoresUncommittedGC: an open GC intent whose manifest
// swap never landed must not delete anything — the victims are still
// indexed.
func TestRecoverIgnoresUncommittedGC(t *testing.T) {
	bucket := newTestBucket(t)
	r := New(bucket)
	if _, err := r.Save(archiveBlob(t, "run-a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	// Hand-write an open gc intent naming run-a, as if the process died
	// between the intent append and the manifest PutIf.
	if _, err := r.logIntent(opGC, "", "", []string{"run-a"}); err != nil {
		t.Fatal(err)
	}
	r2, rep, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OpenIntents != 1 || len(rep.OrphansReclaimed) != 0 {
		t.Fatalf("report = %+v, want 1 open intent and nothing reclaimed", rep)
	}
	if _, _, err := r2.Get("run-a"); err != nil {
		t.Fatalf("run-a should still be readable: %v", err)
	}
}

// TestDuplicateSaveLeavesWinnerBlob: a duplicate save must neither
// clobber nor delete the committed run's blob.
func TestDuplicateSaveLeavesWinnerBlob(t *testing.T) {
	bucket := newTestBucket(t)
	r := New(bucket)
	if _, err := r.Save(archiveBlob(t, "run-a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	want, err := bucket.Get(runObject("run-a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Save(archiveBlob(t, "run-a", 9, 500)); !errors.Is(err, ErrRunExists) {
		t.Fatalf("duplicate Save error = %v, want ErrRunExists", err)
	}
	got, err := bucket.Get(runObject("run-a"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != want.Generation || len(got.Data) != len(want.Data) {
		t.Fatal("duplicate save touched the committed blob")
	}
	// And recovery stays clean — the duplicate's intent was closed.
	_, rep, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("report not clean after duplicate save: %+v", rep)
	}
}

// TestJournalTornTailTrimmed: a power cut mid-append leaves a torn
// frame; the reader trims it and Recover compacts it away.
func TestJournalTornTailTrimmed(t *testing.T) {
	bucket := newTestBucket(t)
	r := New(bucket)
	if _, err := r.Save(archiveBlob(t, "run-a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	// Append half a frame: a length header promising more bytes than
	// exist.
	torn := make([]byte, 6)
	binary.LittleEndian.PutUint32(torn[:4], 64)
	if _, err := bucket.Append(JournalObject, torn); err != nil {
		t.Fatal(err)
	}
	recs, tornBytes, err := readJournal(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if tornBytes != len(torn) {
		t.Fatalf("tornBytes = %d, want %d", tornBytes, len(torn))
	}
	if len(recs) != 2 { // save intent + done
		t.Fatalf("records = %d, want 2", len(recs))
	}

	_, rep, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornBytes != len(torn) || rep.OpenIntents != 0 {
		t.Fatalf("report = %+v", rep)
	}
	obj, err := bucket.Get(JournalObject)
	if err != nil {
		t.Fatal(err)
	}
	if len(obj.Data) != 0 {
		t.Fatalf("journal not compacted after recovery: %d bytes", len(obj.Data))
	}
}

// TestJournalCorruptFrameStopsRead: a CRC-failing frame truncates the
// readable history at that point instead of erroring out.
func TestJournalCorruptFrameStopsRead(t *testing.T) {
	bucket := newTestBucket(t)
	r := New(bucket)
	seq, err := r.logIntent(opSave, "run-a", runObject("run-a"), nil)
	if err != nil {
		t.Fatal(err)
	}
	r.logDone(seq, opSave)
	obj, err := bucket.Get(JournalObject)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the second frame.
	firstLen := int(binary.LittleEndian.Uint32(obj.Data[:4])) + journalFrameOverhead
	corrupted := append([]byte(nil), obj.Data...)
	corrupted[firstLen+journalFrameOverhead] ^= 0xff
	if _, err := bucket.Put(JournalObject, corrupted); err != nil {
		t.Fatal(err)
	}
	recs, tornBytes, err := readJournal(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Phase != phaseIntent {
		t.Fatalf("recs = %+v, want just the intact intent", recs)
	}
	if tornBytes != len(corrupted)-firstLen {
		t.Fatalf("tornBytes = %d, want %d", tornBytes, len(corrupted)-firstLen)
	}
}

// TestRecoverIdempotent: a second replay over a recovered store finds
// nothing to do.
func TestRecoverIdempotent(t *testing.T) {
	bucket := newTestBucket(t)
	r := New(bucket)
	if _, err := r.Save(archiveBlob(t, "run-a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.logIntent(opSave, "ghost", runObject("ghost"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := bucket.Put(runObject("ghost"), []byte("orphan")); err != nil {
		t.Fatal(err)
	}
	_, rep1, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.RolledBack != 1 {
		t.Fatalf("first recovery = %+v", rep1)
	}
	_, rep2, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() || rep2.Records != 0 {
		t.Fatalf("second recovery not clean: %+v", rep2)
	}
}

// TestRecoverSeqContinuation: intents logged after recovery must not
// reuse sequence numbers from the replayed history.
func TestRecoverSeqContinuation(t *testing.T) {
	bucket := newTestBucket(t)
	r := New(bucket)
	for i := 0; i < 3; i++ {
		seq, err := r.logIntent(opSave, "x", runObject("x"), nil)
		if err != nil {
			t.Fatal(err)
		}
		r.logDone(seq, opSave)
	}
	r2 := New(bucket)
	if _, err := r2.Recover(); err != nil {
		t.Fatal(err)
	}
	seq, err := r2.logIntent(opSave, "y", runObject("y"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq <= 3 {
		t.Fatalf("post-recovery seq = %d, want > 3", seq)
	}
}

// TestJournalCompaction: settled history is truncated once past the
// threshold, but never while an intent is open.
func TestJournalCompaction(t *testing.T) {
	bucket := newTestBucket(t)
	r := New(bucket)
	if _, err := r.Save(archiveBlob(t, "run-a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	r.compactJournalIfSettled(1)
	obj, err := bucket.Get(JournalObject)
	if err != nil {
		t.Fatal(err)
	}
	if len(obj.Data) != 0 {
		t.Fatalf("settled journal not compacted: %d bytes", len(obj.Data))
	}

	// An open intent blocks compaction.
	if _, err := r.logIntent(opDelete, "run-a", runObject("run-a"), nil); err != nil {
		t.Fatal(err)
	}
	r.compactJournalIfSettled(1)
	obj, err = bucket.Get(JournalObject)
	if err != nil {
		t.Fatal(err)
	}
	if len(obj.Data) == 0 {
		t.Fatal("compaction dropped an open intent")
	}
}

func TestJournalFrameCRC(t *testing.T) {
	bucket := newTestBucket(t)
	r := New(bucket)
	if _, err := r.logIntent(opSave, "run-a", runObject("run-a"), nil); err != nil {
		t.Fatal(err)
	}
	obj, err := bucket.Get(JournalObject)
	if err != nil {
		t.Fatal(err)
	}
	n := int(binary.LittleEndian.Uint32(obj.Data[:4]))
	want := binary.LittleEndian.Uint32(obj.Data[4:8])
	payload := obj.Data[journalFrameOverhead : journalFrameOverhead+n]
	if crc32.Checksum(payload, journalTable) != want {
		t.Fatal("stored frame CRC does not cover the payload")
	}
}

func TestRunIDFromObject(t *testing.T) {
	cases := map[string]string{
		"runs/run-a/archive":  "run-a",
		"runs/manifest.json":  "",
		"runs/.journal":       "",
		"runs//archive":       "",
		"runs/a/b/archive":    "",
		"other/run-a/archive": "",
	}
	for in, want := range cases {
		if got := runIDFromObject(in); got != want {
			t.Errorf("runIDFromObject(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSortedUnique(t *testing.T) {
	got := sortedUnique([]string{"b", "a", "b", "c", "a"})
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
