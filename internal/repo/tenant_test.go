package repo

import (
	"testing"

	"repro/internal/archive"
	"repro/internal/core/analyzer"
)

func tenantBlob(t *testing.T, runID, tenant string, seq uint64) []byte {
	t.Helper()
	recs := synthRecords(10, 0)
	rep, err := analyzer.Analyze("synthetic", recs, analyzer.OLSAlgo, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := archive.NewWriter(archive.Meta{
		RunID: runID, Workload: "synthetic", Label: "test",
		Tenant: tenant, TPUVersion: "v2", CreatedSeq: seq,
	})
	for _, r := range recs {
		w.Add(r)
	}
	return w.Finalize(archive.SummarizeReport(rep))
}

// Tenant must survive the full archive→manifest→filter round trip.
func TestTenantRoundTrip(t *testing.T) {
	r := newTestRepo(t)
	if _, err := r.Save(tenantBlob(t, "run-t1", "team-vision", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Save(tenantBlob(t, "run-t2", "team-nlp", 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Save(tenantBlob(t, "run-t3", "team-vision", 3)); err != nil {
		t.Fatal(err)
	}

	// The manifest carries the tenant.
	info, a, err := r.Get("run-t1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Tenant != "team-vision" {
		t.Fatalf("manifest tenant = %q, want team-vision", info.Tenant)
	}
	// So does the archive meta itself.
	if got := a.Meta().Tenant; got != "team-vision" {
		t.Fatalf("archive tenant = %q, want team-vision", got)
	}

	runs, err := r.List(Filter{Tenant: "team-vision"})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].RunID != "run-t1" || runs[1].RunID != "run-t3" {
		t.Fatalf("tenant filter = %+v", runs)
	}
	if got, _ := r.List(Filter{Tenant: "nobody"}); len(got) != 0 {
		t.Fatalf("unknown tenant matched %+v", got)
	}
	// Tenant composes with the other filter axes.
	if got, _ := r.List(Filter{Tenant: "team-nlp", Workload: "synthetic"}); len(got) != 1 {
		t.Fatalf("combined filter = %+v", got)
	}
}
