package repo

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/storage"
)

// newBucket returns a fresh in-memory bucket standing in for the
// collector's durable store.
func newBucket(t *testing.T) *storage.Bucket {
	t.Helper()
	svc := storage.NewService()
	bucket, err := svc.CreateBucket("fleet-durable")
	if err != nil {
		t.Fatal(err)
	}
	return bucket
}

// newFleetOverBucket builds a collector over an existing bucket — the
// restart tests build two collectors over the same one.
func newFleetOverBucket(t *testing.T, bucket *storage.Bucket, opts FleetOptions) (*Fleet, *rpc.Server) {
	t.Helper()
	r, _, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleet(r, opts)
	srv := rpc.NewServer()
	f.Register(srv)
	t.Cleanup(srv.Close)
	return f, srv
}

// TestFleetFinalizeBeatsLeaseExpiry is the finalize-vs-sweep race
// regression: a finalize arriving after the lease ran out must still
// archive the session's records, not find it swept out from under the
// handler. (The sweep used to run before the session was detached.)
func TestFleetFinalizeBeatsLeaseExpiry(t *testing.T) {
	reg := obs.NewRegistry(32)
	now := time.Unix(1000, 0)
	var nowMu sync.Mutex
	clock := func() time.Time {
		nowMu.Lock()
		defer nowMu.Unlock()
		return now
	}

	_, srv, _ := newFleetUnderTest(t, FleetOptions{
		Lease: time.Nanosecond, // zero-grace: everything is always expired
		Obs:   reg,
		Now:   clock,
	})
	c := rpc.Pipe(srv)
	defer c.Close()
	fc, err := OpenSession(c, OpenRequest{RunID: "race", Workload: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for _, rec := range sessionRecords(0, n) {
		if err := fc.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	nowMu.Lock()
	now = now.Add(time.Hour) // lease long gone
	nowMu.Unlock()

	info, err := fc.Finalize()
	if err != nil {
		t.Fatalf("finalize lost to the lease sweep: %v", err)
	}
	if info.Records != n {
		t.Fatalf("records = %d, want %d", info.Records, n)
	}
	if got := reg.Snapshot().Counters["fleet.sessions.expired"]; got != 0 {
		t.Fatalf("finalizing session was counted expired (%d)", got)
	}
}

// TestFleetResumeAfterCollectorRestart is the acceptance-criteria test:
// the collector dies mid-session, a new collector over the same store
// recovers the parked session, and the client resumes from the durable
// count — every record archived exactly once.
func TestFleetResumeAfterCollectorRestart(t *testing.T) {
	bucket := newBucket(t)
	const total = 50

	// First collector: stream half the records, then "crash" (the
	// fleet and its server are simply abandoned; only the bucket
	// survives, like a process kill).
	_, srv1 := newFleetOverBucket(t, bucket, FleetOptions{})
	c1 := rpc.Pipe(srv1)
	recs := sessionRecords(1, total)
	fc1, err := OpenSession(c1, OpenRequest{RunID: "restarted", Workload: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	token := fc1.Token()
	if token == "" {
		t.Fatal("open response carried no resume token")
	}
	const firstHalf = 23
	if err := fc1.AppendBatch(recs[:firstHalf]); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	srv1.Close()

	// Second collector over the same store.
	reg := obs.NewRegistry(64)
	f2, srv2 := newFleetOverBucket(t, bucket, FleetOptions{Obs: reg})
	parked, err := f2.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(parked) != 1 || parked[0] != token {
		t.Fatalf("parked = %v, want [%s]", parked, token)
	}

	c2 := rpc.Pipe(srv2)
	defer c2.Close()
	fc2, accepted, err := ResumeSession(c2, token)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != firstHalf {
		t.Fatalf("accepted = %d, want %d (every acked record must survive)", accepted, firstHalf)
	}
	// The client restreams exactly the unacked tail.
	if err := fc2.AppendBatch(recs[accepted:]); err != nil {
		t.Fatal(err)
	}
	info, err := fc2.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != total {
		t.Fatalf("archived %d records, want %d (no loss, no duplicates)", info.Records, total)
	}

	// Zero-loss ledger on the new collector: everything that came in
	// after the restart was archived, plus exactly one resume.
	snap := reg.Snapshot()
	if in, arch := snap.Counters["fleet.records.in"], snap.Counters["fleet.records.archived"]; in != arch {
		t.Fatalf("records.in = %d != records.archived = %d", in, arch)
	}
	if got := snap.Counters["fleet.sessions.resumed"]; got != 1 {
		t.Fatalf("sessions.resumed = %d", got)
	}

	// The run's record stream has no duplicates: steps are the original
	// sequence exactly once.
	r2 := f2.repo
	_, a, err := r2.Get("restarted")
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := a.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != total {
		t.Fatalf("decoded %d records, want %d", len(decoded), total)
	}
	for i, rec := range decoded {
		if rec.Seq != int64(i) {
			t.Fatalf("record %d has seq %d: stream reordered or duplicated", i, rec.Seq)
		}
	}

	// Durable session state was retired with the run.
	if names := bucket.List("sessions/"); len(names) != 0 {
		t.Fatalf("session state left behind: %v", names)
	}
}

// TestFleetResumeEvictsLiveSession: a client reconnecting to a living
// collector (network flap, not a crash) takes over its own session;
// the stale session's memory is discarded in favor of the log.
func TestFleetResumeEvictsLiveSession(t *testing.T) {
	f, srv, _ := newFleetUnderTest(t, FleetOptions{})
	c := rpc.Pipe(srv)
	defer c.Close()
	recs := sessionRecords(2, 30)
	fc, err := OpenSession(c, OpenRequest{RunID: "flap", Workload: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.AppendBatch(recs[:10]); err != nil {
		t.Fatal(err)
	}

	fc2, accepted, err := ResumeSession(c, fc.Token())
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 10 {
		t.Fatalf("accepted = %d, want 10", accepted)
	}
	if f.ActiveSessions() != 1 {
		t.Fatalf("active = %d, want 1 (stale session must be evicted)", f.ActiveSessions())
	}
	// The old handle is dead; the new one carries the session forward.
	if err := fc.AppendBatch(recs[10:11]); err == nil {
		t.Fatal("stale session handle still accepted records")
	}
	if err := fc2.AppendBatch(recs[10:]); err != nil {
		t.Fatal(err)
	}
	info, err := fc2.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 30 {
		t.Fatalf("records = %d, want 30", info.Records)
	}
}

// TestFleetResumeTrimsTornLogTail: a power cut mid-append leaves a
// torn frame at the log's tail; resume trims it and reports only the
// intact (acked) records, and the trimmed log accepts further appends.
func TestFleetResumeTrimsTornLogTail(t *testing.T) {
	bucket := newBucket(t)
	_, srv1 := newFleetOverBucket(t, bucket, FleetOptions{})
	c1 := rpc.Pipe(srv1)
	recs := sessionRecords(3, 24)
	fc1, err := OpenSession(c1, OpenRequest{RunID: "torn", Workload: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	if err := fc1.AppendBatch(recs[:12]); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	srv1.Close()

	// The crash tore the final durable append: half a frame landed.
	logObj := sessionLogObject(fc1.Token())
	if _, err := bucket.Append(logObj, []byte{0x99, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	intact, err := bucket.Get(logObj)
	if err != nil {
		t.Fatal(err)
	}

	_, srv2 := newFleetOverBucket(t, bucket, FleetOptions{})
	c2 := rpc.Pipe(srv2)
	defer c2.Close()
	fc2, accepted, err := ResumeSession(c2, fc1.Token())
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 12 {
		t.Fatalf("accepted = %d, want 12 (torn frame is unacked, intact frames are acked)", accepted)
	}
	trimmed, err := bucket.Get(logObj)
	if err != nil {
		t.Fatal(err)
	}
	if len(trimmed.Data) >= len(intact.Data) {
		t.Fatal("torn tail not trimmed from the durable log")
	}
	if err := fc2.AppendBatch(recs[12:]); err != nil {
		t.Fatal(err)
	}
	info, err := fc2.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 24 {
		t.Fatalf("records = %d, want 24", info.Records)
	}
}

// TestFleetRecoverSessionsRetiresFinalized: durable state whose run
// already reached the manifest (crash between Save and retirement) is
// cleaned up at collector start, not offered for resume.
func TestFleetRecoverSessionsRetiresFinalized(t *testing.T) {
	bucket := newBucket(t)
	f1, srv1 := newFleetOverBucket(t, bucket, FleetOptions{})
	c1 := rpc.Pipe(srv1)
	fc, err := OpenSession(c1, OpenRequest{RunID: "done", Workload: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.AppendBatch(sessionRecords(4, 16)); err != nil {
		t.Fatal(err)
	}
	token := fc.Token()
	if _, err := fc.Finalize(); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// Re-create the crash window: the run is saved but retirement was
	// lost. (Finalize already retired, so put the meta back.)
	metaObj := sessionMetaObject(token)
	if bucket.Exists(metaObj) {
		t.Fatal("finalize left durable meta behind")
	}
	info, err := f1.repo.Info("done")
	if err != nil {
		t.Fatal(err)
	}
	mrec := sessionMetaRecord{Token: token}
	mrec.Meta.RunID = "done"
	mrec.Meta.CreatedSeq = info.CreatedSeq
	putSessionMeta(t, bucket, mrec)

	f2, _ := newFleetOverBucket(t, bucket, FleetOptions{})
	parked, err := f2.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(parked) != 0 {
		t.Fatalf("parked = %v, want none", parked)
	}
	if names := bucket.List("sessions/"); len(names) != 0 {
		t.Fatalf("finalized session state not retired: %v", names)
	}
}

// TestFleetDurableAppendFailurePoisonsSession: when the durable log
// can't take an append, the record is NOT acked and the live session
// is killed — resuming from the log yields exactly the acked records.
func TestFleetDurableAppendFailurePoisonsSession(t *testing.T) {
	bucket := newBucket(t)
	hs := &hookStore{Store: bucket}
	r, _, err := Open(hs)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleet(r, FleetOptions{})
	srv := rpc.NewServer()
	f.Register(srv)
	t.Cleanup(srv.Close)
	c := rpc.Pipe(srv)
	defer c.Close()

	recs := sessionRecords(5, 3)
	fc, err := OpenSession(c, OpenRequest{RunID: "poisoned", Workload: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.Append(recs[0]); err != nil {
		t.Fatal(err)
	}

	// The store loses its durable log writes (disk full, say).
	hs.appendErr = func(name string) error {
		if strings.HasPrefix(name, "sessions/") {
			return errors.New("injected: log append failed")
		}
		return nil
	}
	if err := fc.Append(recs[1]); err == nil {
		t.Fatal("un-durable append was acked")
	}
	if f.ActiveSessions() != 0 {
		t.Fatal("poisoned session still live")
	}
	hs.appendErr = nil

	fc2, accepted, err := ResumeSession(c, fc.Token())
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 1 {
		t.Fatalf("accepted = %d, want 1 (only the acked record is durable)", accepted)
	}
	if err := fc2.AppendBatch(recs[1:]); err != nil {
		t.Fatal(err)
	}
	info, err := fc2.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 3 {
		t.Fatalf("records = %d, want 3", info.Records)
	}
}

// TestSessionTokenUniqueAcrossReuse: the token embeds the durable
// creation sequence, so reusing a run ID never collides.
func TestSessionTokenUniqueAcrossReuse(t *testing.T) {
	a := sessionToken("job/alpha", 7)
	b := sessionToken("job/alpha", 12)
	if a == b {
		t.Fatalf("tokens collide: %s", a)
	}
	for _, tok := range []string{a, b} {
		if strings.Contains(tok, "/") {
			t.Fatalf("token %q escapes the sessions/ subtree", tok)
		}
	}
	if sessionToken("x.7", 1) == sessionToken("x", 71) {
		t.Fatal("sanitized tokens collide across id/seq boundary")
	}
}

func putSessionMeta(t *testing.T, bucket *storage.Bucket, mrec sessionMetaRecord) {
	t.Helper()
	payload, err := json.Marshal(mrec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bucket.Put(sessionMetaObject(mrec.Token), payload); err != nil {
		t.Fatal(err)
	}
}
