package repo

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/archive"
	"repro/internal/core/analyzer"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/trace"
)

func newTestRepo(t *testing.T) *Repo {
	t.Helper()
	svc := storage.NewService()
	bucket, err := svc.CreateBucket("repo")
	if err != nil {
		t.Fatal(err)
	}
	return New(bucket)
}

// synthRecords produces a two-regime run; scale skews the second
// regime's op durations so different runs get different phase mixes.
func synthRecords(n int, scale simclock.Duration) []*trace.ProfileRecord {
	recs := make([]*trace.ProfileRecord, 0, n)
	var t simclock.Time
	for i := 0; i < n; i++ {
		step := int64(i)
		var events []trace.Event
		if i < n/2 {
			events = []trace.Event{
				{Name: "InfeedDequeue", Device: trace.Host, Start: t, Dur: 900, Step: step},
				{Name: "MatMul", Device: trace.TPU, Start: t + 500, Dur: 200, Step: step},
			}
		} else {
			events = []trace.Event{
				{Name: "MatMul", Device: trace.TPU, Start: t, Dur: 600 + scale, Step: step},
				{Name: "CrossReplicaSum", Device: trace.TPU, Start: t + 700, Dur: 150, Step: step},
			}
		}
		recs = append(recs, trace.Reduce(int64(i), t, events, 0.2, 0.4))
		t = t.Add(1000 + scale)
	}
	return recs
}

func archiveBlob(t *testing.T, runID string, seq uint64, scale simclock.Duration) []byte {
	t.Helper()
	recs := synthRecords(30, scale)
	rep, err := analyzer.Analyze("synthetic", recs, analyzer.OLSAlgo, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := archive.NewWriter(archive.Meta{
		RunID: runID, Workload: "synthetic", Label: "test",
		TPUVersion: "v2", CreatedSeq: seq,
	})
	for _, r := range recs {
		w.Add(r)
	}
	return w.Finalize(archive.SummarizeReport(rep))
}

func TestSaveListGetDelete(t *testing.T) {
	r := newTestRepo(t)

	infoA, err := r.Save(archiveBlob(t, "run-a", 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if infoA.Records != 30 || infoA.Workload != "synthetic" {
		t.Fatalf("info = %+v", infoA)
	}
	if _, err := r.Save(archiveBlob(t, "run-b", 2, 100)); err != nil {
		t.Fatal(err)
	}

	// Duplicate run ID is rejected and does not clobber the original.
	if _, err := r.Save(archiveBlob(t, "run-a", 3, 50)); !errors.Is(err, ErrRunExists) {
		t.Fatalf("duplicate save err = %v", err)
	}

	runs, err := r.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].RunID != "run-a" || runs[1].RunID != "run-b" {
		t.Fatalf("list = %+v", runs)
	}
	if got, _ := r.List(Filter{Workload: "other"}); len(got) != 0 {
		t.Fatalf("filtered list = %+v", got)
	}

	info, a, err := r.Get("run-a")
	if err != nil {
		t.Fatal(err)
	}
	if info.RunID != "run-a" || a.Summary() == nil {
		t.Fatalf("get: info=%+v summary=%v", info, a.Summary())
	}
	recs, err := a.Records()
	if err != nil || len(recs) != 30 {
		t.Fatalf("records: %d, %v", len(recs), err)
	}

	if err := r.Delete("run-a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Get("run-a"); !errors.Is(err, ErrRunNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	if err := r.Delete("run-a"); !errors.Is(err, ErrRunNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestSaveRejectsCorruptArchive(t *testing.T) {
	r := newTestRepo(t)
	if _, err := r.Save([]byte("not an archive")); err == nil {
		t.Fatal("corrupt blob saved")
	}
	if runs, _ := r.List(Filter{}); len(runs) != 0 {
		t.Fatalf("manifest polluted: %+v", runs)
	}
}

func TestNextSeqMonotonic(t *testing.T) {
	r := newTestRepo(t)
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				seq, err := r.NextSeq()
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[seq] {
					t.Errorf("seq %d issued twice", seq)
				}
				seen[seq] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 80 {
		t.Fatalf("issued %d unique seqs, want 80", len(seen))
	}
}

func TestConcurrentSaves(t *testing.T) {
	r := newTestRepo(t)
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			blob := archiveBlob(t, fmt.Sprintf("run-%d", i), uint64(i+1), simclock.Duration(i*10))
			_, errs[i] = r.Save(blob)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	runs, err := r.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != n {
		t.Fatalf("listed %d runs, want %d", len(runs), n)
	}
}

func TestGC(t *testing.T) {
	r := newTestRepo(t)
	for i := 0; i < 5; i++ {
		if _, err := r.Save(archiveBlob(t, fmt.Sprintf("run-%d", i), uint64(i+1), 0)); err != nil {
			t.Fatal(err)
		}
	}
	deleted, err := r.GC(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 3 {
		t.Fatalf("deleted %v, want 3 victims", deleted)
	}
	runs, _ := r.List(Filter{})
	if len(runs) != 2 || runs[0].RunID != "run-3" || runs[1].RunID != "run-4" {
		t.Fatalf("survivors = %+v (want the 2 newest)", runs)
	}
	// Blobs of deleted runs are gone too.
	for _, id := range deleted {
		if _, _, err := r.Get(id); !errors.Is(err, ErrRunNotFound) {
			t.Fatalf("gc'd run %s still present: %v", id, err)
		}
	}
}

func TestCompare(t *testing.T) {
	r := newTestRepo(t)
	if _, err := r.Save(archiveBlob(t, "base", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Save(archiveBlob(t, "slow", 2, 400)); err != nil {
		t.Fatal(err)
	}

	d, err := r.Compare("base", "slow")
	if err != nil {
		t.Fatal(err)
	}
	if d.A.RunID != "base" || d.B.RunID != "slow" {
		t.Fatalf("diff runs = %s vs %s", d.A.RunID, d.B.RunID)
	}
	if len(d.Matches) == 0 {
		t.Fatal("no phase matches")
	}
	if d.TotalB <= d.TotalA {
		t.Fatalf("slow run should be longer: %v vs %v", d.TotalA, d.TotalB)
	}
	var sawWallDelta, sawOpMix bool
	for _, m := range d.Matches {
		if m.WallDelta != 0 {
			sawWallDelta = true
		}
		if len(m.OpMix) > 0 {
			sawOpMix = true
		}
	}
	if !sawWallDelta || !sawOpMix {
		t.Fatalf("deltas missing: wall=%v opmix=%v", sawWallDelta, sawOpMix)
	}

	if _, err := r.Compare("base", "nope"); !errors.Is(err, ErrRunNotFound) {
		t.Fatalf("compare with missing run: %v", err)
	}
}

func TestDiffDeterministic(t *testing.T) {
	r := newTestRepo(t)
	if _, err := r.Save(archiveBlob(t, "a", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Save(archiveBlob(t, "b", 2, 250)); err != nil {
		t.Fatal(err)
	}
	d1, err := r.Compare("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := r.Compare("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", d1) != fmt.Sprintf("%+v", d2) {
		t.Fatal("diff is not deterministic")
	}
}

func TestDiffIdenticalRuns(t *testing.T) {
	r := newTestRepo(t)
	if _, err := r.Save(archiveBlob(t, "x", 1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Save(archiveBlob(t, "y", 2, 0)); err != nil {
		t.Fatal(err)
	}
	d, err := r.Compare("x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.OnlyA) != 0 || len(d.OnlyB) != 0 {
		t.Fatalf("identical runs left unmatched phases: %d/%d", len(d.OnlyA), len(d.OnlyB))
	}
	for _, m := range d.Matches {
		if m.Distance != 0 || m.WallDelta != 0 {
			t.Fatalf("identical runs should diff clean: %+v", m)
		}
	}
}

func TestDiffNoSummary(t *testing.T) {
	w := archive.NewWriter(archive.Meta{RunID: "bare"})
	a, err := archive.Open(w.Finalize(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DiffArchives(a, a); !errors.Is(err, ErrNoSummary) {
		t.Fatalf("err = %v", err)
	}
}
