package repo

import (
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/rpc"
	"repro/internal/storage"
)

func openSharded(t *testing.T, store Store, shards int) *Repo {
	t.Helper()
	r, _, err := OpenShards(store, shards)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestShardRoutingStable pins the hash routing: the same run ID must
// land on the same shard forever (a routing change would strand every
// existing entry on the wrong shard).
func TestShardRoutingStable(t *testing.T) {
	ss := shardSet{n: 8}
	for id, want := range map[string]int{
		"run-a":       shardIndex("run-a", 8),
		"dcgan-00042": shardIndex("dcgan-00042", 8),
	} {
		if got := ss.shardOf(id); got != want {
			t.Fatalf("shardOf(%q) = %d, want %d", id, got, want)
		}
	}
	// Distribution sanity: 256 IDs over 8 shards should touch them all.
	seen := map[int]bool{}
	for i := 0; i < 256; i++ {
		seen[ss.shardOf("agent-"+strconv.Itoa(i))] = true
	}
	if len(seen) != 8 {
		t.Fatalf("256 IDs hit only %d/8 shards", len(seen))
	}
}

// TestNextSeqMonotonicAcrossShardLeases is the regression test for the
// cross-shard ordering bug: lease blocks rotate across shards, and the
// global sequence must stay strictly increasing within a process — no
// duplicates, no order flips — even as the allocator interleaves shard
// blocks.
func TestNextSeqMonotonicAcrossShardLeases(t *testing.T) {
	r := openSharded(t, newTestBucket(t), 4)
	var prev uint64
	seen := make(map[uint64]bool)
	// 300 allocations forces several lease rotations (block size 64).
	for i := 0; i < 300; i++ {
		seq, err := r.NextSeq()
		if err != nil {
			t.Fatal(err)
		}
		if seq <= prev {
			t.Fatalf("allocation %d: seq %d after %d — order flipped", i, seq, prev)
		}
		if seen[seq] {
			t.Fatalf("allocation %d: seq %d issued twice", i, seq)
		}
		seen[seq] = true
		prev = seq
	}
}

// TestNextSeqDisjointAcrossProcesses: two repository handles over the
// same store (two collection servers) must never issue the same
// sequence, and each must stay internally monotonic.
func TestNextSeqDisjointAcrossProcesses(t *testing.T) {
	bucket := newTestBucket(t)
	r1 := openSharded(t, bucket, 4)
	r2 := openSharded(t, bucket, 4)
	seen := make(map[uint64]string)
	var p1, p2 uint64
	for i := 0; i < 200; i++ {
		s1, err := r1.NextSeq()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := r2.NextSeq()
		if err != nil {
			t.Fatal(err)
		}
		if s1 <= p1 || s2 <= p2 {
			t.Fatalf("iteration %d: non-monotonic (%d<=%d or %d<=%d)", i, s1, p1, s2, p2)
		}
		p1, p2 = s1, s2
		for _, pair := range []struct {
			who string
			s   uint64
		}{{"r1", s1}, {"r2", s2}} {
			if prev, dup := seen[pair.s]; dup {
				t.Fatalf("seq %d issued by both %s and %s", pair.s, prev, pair.who)
			}
			seen[pair.s] = pair.who
		}
	}
}

// TestCasBackoffDeterministicSchedule: the backoff sleeps come from the
// injected prng through the injected sleeper — no wall clock — and the
// jitter ceilings grow exponentially up to the cap.
func TestCasBackoffDeterministicSchedule(t *testing.T) {
	r := New(newTestBucket(t))
	var slept []time.Duration
	r.sleep = func(d time.Duration) { slept = append(slept, d) }
	for attempt := 1; attempt <= 12; attempt++ {
		r.casBackoff(attempt)
	}
	if len(slept) != 12 {
		t.Fatalf("expected 12 sleeps, got %d", len(slept))
	}
	for i, d := range slept {
		shift := i + 1
		if shift > casBackoffMaxShift {
			shift = casBackoffMaxShift
		}
		ceil := casBackoffBase << shift
		if d < 0 || d >= ceil {
			t.Fatalf("attempt %d slept %v, want [0,%v)", i+1, d, ceil)
		}
	}
	// Deterministic: a second repository seeded identically replays the
	// same schedule.
	r2 := New(newTestBucket(t))
	r2.rng = r.rng.Fork(1) // different stream must differ somewhere
	var slept2 []time.Duration
	r2.sleep = func(d time.Duration) { slept2 = append(slept2, d) }
	for attempt := 1; attempt <= 12; attempt++ {
		r2.casBackoff(attempt)
	}
	same := len(slept) == len(slept2)
	if same {
		for i := range slept {
			if slept[i] != slept2[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("two distinct jitter streams produced identical schedules")
	}
}

// TestManifestContentionIsTransient pins the error classification the
// fleet retry path depends on: CAS exhaustion must read as a transient
// busy condition, not a permanent failure.
func TestManifestContentionIsTransient(t *testing.T) {
	if !errors.Is(ErrManifestContention, rpc.ErrBusy) {
		t.Fatal("ErrManifestContention does not wrap rpc.ErrBusy")
	}
	if !rpc.IsTransient(ErrManifestContention) {
		t.Fatal("IsTransient(ErrManifestContention) = false; agents would fail instead of retrying")
	}
	wrapped := errors.New("outer: " + ErrManifestContention.Error())
	_ = wrapped // plain string copies must NOT classify — only the wrapped chain
	if rpc.IsTransient(&rpc.RemoteError{Msg: "x"}) {
		t.Fatal("RemoteError must not be transient")
	}
}

// TestUpdateContentionBacksOffAndSucceeds: injected generation
// mismatches (every 2nd PutIf fails) must be absorbed by the retry
// loop — the mutation still lands, the backoff sleeper is exercised,
// and no ErrManifestContention escapes.
func TestUpdateContentionBacksOffAndSucceeds(t *testing.T) {
	bucket := newTestBucket(t)
	cs := &faultnet.ContendingStore{Inner: bucket, FailEvery: 2}
	r, _, err := OpenShards(cs, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sleeps int
	r.sleep = func(time.Duration) { sleeps++ }
	for i := 0; i < 20; i++ {
		id := "run-" + strconv.Itoa(i)
		if _, err := r.Save(archiveBlob(t, id, uint64(i+1), 0)); err != nil {
			t.Fatalf("save %s under injected contention: %v", id, err)
		}
	}
	if cs.Injections() == 0 {
		t.Fatal("contention injector never fired")
	}
	if sleeps == 0 {
		t.Fatal("CAS retries never backed off")
	}
	listed, err := r.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 20 {
		t.Fatalf("listed %d runs, want 20", len(listed))
	}
}

// TestMigrationRoundTrip: a populated v1 repository opened with a shard
// target must preserve every run, adopt the sharded layout durably, and
// keep allocating sequences above the migrated maximum.
func TestMigrationRoundTrip(t *testing.T) {
	bucket := newTestBucket(t)
	legacy, _, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 7
	for i := 0; i < runs; i++ {
		seq, err := legacy.NextSeq()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := legacy.Save(archiveBlob(t, "run-"+strconv.Itoa(i), seq, 0)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := legacy.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}

	r := openSharded(t, bucket, 4)
	if n, _ := r.Shards(); n != 4 {
		t.Fatalf("Shards() = %d after migration, want 4", n)
	}
	if bucket.Exists(ManifestObject) || bucket.Exists(JournalObject) {
		t.Fatal("legacy objects survived migration")
	}
	if !bucket.Exists(LayoutObject) {
		t.Fatal("layout object missing after migration")
	}
	after, err := r.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("migration changed run count: %d -> %d", len(before), len(after))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("run %d changed across migration:\n  before %+v\n  after  %+v", i, before[i], after[i])
		}
	}
	for _, info := range after {
		if _, _, err := r.Get(info.RunID); err != nil {
			t.Fatalf("migrated run %q unreadable: %v", info.RunID, err)
		}
	}
	rep, err := r.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fsck after migration: %+v", rep.Issues)
	}
	seq, err := r.NextSeq()
	if err != nil {
		t.Fatal(err)
	}
	var maxSeq uint64
	for _, info := range before {
		if info.CreatedSeq > maxSeq {
			maxSeq = info.CreatedSeq
		}
	}
	if seq <= maxSeq {
		t.Fatalf("post-migration NextSeq %d not above migrated max %d", seq, maxSeq)
	}

	// Re-opening without a target keeps the sharded layout.
	r2, _, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := r2.Shards(); n != 4 {
		t.Fatalf("re-open lost the sharded layout (Shards() = %d)", n)
	}
	// Re-opening with a different target keeps the committed count.
	r3 := openSharded(t, bucket, 8)
	if n, _ := r3.Shards(); n != 4 {
		t.Fatalf("OpenShards(8) on a 4-shard store reported %d shards", n)
	}
}

// TestMigrationPowerCut kills the migration at every write boundary and
// verifies the repository recovers to a consistent state — either still
// v1 or fully sharded, never half — with every run intact.
func TestMigrationPowerCut(t *testing.T) {
	seed := func(t *testing.T, store Store) {
		legacy, _, err := Open(store)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			seq, err := legacy.NextSeq()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := legacy.Save(archiveBlob(t, "run-"+strconv.Itoa(i), seq, 0)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Budget from a dry run of just the migration.
	dryBucket := newTestBucket(t)
	seed(t, dryBucket)
	dry := faultnet.NewCrashStore(dryBucket)
	if _, _, err := OpenShards(dry, 3); err != nil {
		t.Fatal(err)
	}
	budget := dry.Writes()
	if budget < 3 {
		t.Fatalf("migration write budget %d suspiciously small", budget)
	}

	for n := 0; n < budget; n++ {
		bucket := newTestBucket(t)
		seed(t, bucket)
		cs := faultnet.NewCrashStore(bucket)
		cs.CrashAfterWrites(n, false)
		_, _, err := OpenShards(cs, 3)
		if err == nil && !cs.Dead() {
			t.Fatalf("cut@%d never fired (budget %d)", n, budget)
		}

		// Power restored: a plain Open must recover a clean repository.
		r, _, err := Open(bucket)
		if err != nil {
			t.Fatalf("cut@%d: recovery open: %v", n, err)
		}
		listed, err := r.List(Filter{})
		if err != nil {
			t.Fatalf("cut@%d: list: %v", n, err)
		}
		if len(listed) != 5 {
			t.Fatalf("cut@%d: %d runs survived, want 5", n, len(listed))
		}
		for _, info := range listed {
			if _, _, err := r.Get(info.RunID); err != nil {
				t.Fatalf("cut@%d: run %q unreadable: %v", n, info.RunID, err)
			}
		}
		rep, err := r.Fsck(false)
		if err != nil {
			t.Fatalf("cut@%d: fsck: %v", n, err)
		}
		if !rep.Clean() {
			t.Fatalf("cut@%d: fsck issues: %+v", n, rep.Issues)
		}
		// A second migration attempt must complete idempotently.
		r2 := openSharded(t, bucket, 3)
		if listed2, _ := r2.List(Filter{}); len(listed2) != 5 {
			t.Fatalf("cut@%d: re-migration lost runs (%d/5)", n, len(listed2))
		}
	}
}

// TestLayoutCreationRace: two fresh handles with different shard
// targets racing to initialize one store must converge on a single
// layout (PutIf gen 0 — exactly one creator wins).
func TestLayoutCreationRace(t *testing.T) {
	bucket := newTestBucket(t)
	r1 := openSharded(t, bucket, 4)
	r2 := openSharded(t, bucket, 8)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = r1.Save(archiveBlob(t, "left", 1, 0)) }()
	go func() { defer wg.Done(); _, errs[1] = r2.Save(archiveBlob(t, "right", 2, 0)) }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("saver %d: %v", i, err)
		}
	}
	n1, _ := r1.Shards()
	n2, _ := r2.Shards()
	if n1 != n2 {
		t.Fatalf("handles disagree on shard count: %d vs %d", n1, n2)
	}
	r3, _, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	listed, err := r3.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 2 {
		t.Fatalf("listed %d runs, want 2", len(listed))
	}
}

// TestSaveRollbackSparesWinnerBlob is the TOCTOU regression test: r1's
// Save passes its duplicate pre-check, then a concurrent save of the
// same run ID commits through a second handle before r1's manifest
// update fails hard. r1's rollback must NOT delete the blob — it now
// belongs to the winner's manifest entry.
func TestSaveRollbackSparesWinnerBlob(t *testing.T) {
	bucket := newTestBucket(t)
	r2, _, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	blob := archiveBlob(t, "contested", 1, 0)

	var once sync.Once
	hs := &hookStore{Store: bucket}
	hs.putIfErr = func(name string) error {
		var ferr error
		if name == ManifestObject {
			once.Do(func() {
				// The interleaved winner: commits the same run ID through
				// a clean handle, then r1's own update fails hard.
				if _, err := r2.Save(blob); err != nil {
					t.Errorf("winner save: %v", err)
				}
				ferr = errors.New("injected hard failure after winner committed")
			})
			if ferr != nil {
				return ferr
			}
		}
		return nil
	}
	r1 := New(hs)

	_, err = r1.Save(blob)
	if !errors.Is(err, ErrRunExists) {
		t.Fatalf("loser got %v, want ErrRunExists", err)
	}
	if !bucket.Exists(runObject("contested")) {
		t.Fatal("loser's rollback reclaimed the winner's blob")
	}
	if _, _, err := r2.Get("contested"); err != nil {
		t.Fatalf("winner's run unreadable after loser rollback: %v", err)
	}
	rep, err := r2.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fsck after contested save: %+v", rep.Issues)
	}
}

// TestConcurrentSameIDSaves: many goroutines saving the same run ID
// through one handle — exactly one wins, the rest get ErrRunExists,
// and the winner's blob survives intact.
func TestConcurrentSameIDSaves(t *testing.T) {
	r := openSharded(t, newTestBucket(t), 4)
	blob := archiveBlob(t, "dup", 1, 0)
	const savers = 16
	var wg sync.WaitGroup
	errs := make([]error, savers)
	wg.Add(savers)
	for i := 0; i < savers; i++ {
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Save(blob)
		}(i)
	}
	wg.Wait()
	wins := 0
	for i, err := range errs {
		switch {
		case err == nil:
			wins++
		case errors.Is(err, ErrRunExists):
		default:
			t.Fatalf("saver %d: unexpected error %v", i, err)
		}
	}
	if wins != 1 {
		t.Fatalf("%d savers won, want exactly 1", wins)
	}
	if _, _, err := r.Get("dup"); err != nil {
		t.Fatalf("winning save unreadable: %v", err)
	}
}

// TestRangeReaderServesPackedRuns: the storage.RangeReader fast path
// and the Get-and-slice fallback must return identical bytes.
func TestRangeReaderServesPackedRuns(t *testing.T) {
	bucket := newTestBucket(t)
	var rr storage.RangeReader = bucket
	if _, err := bucket.Put("obj", []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	got, err := rr.GetRange("obj", 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "world" {
		t.Fatalf("GetRange = %q", got)
	}
	if _, err := rr.GetRange("obj", 8, 10); err == nil {
		t.Fatal("out-of-bounds range did not error")
	}
	if _, err := rr.GetRange("missing", 0, 1); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("missing object: %v", err)
	}
}
