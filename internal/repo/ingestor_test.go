package repo

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/rpc"
)

func TestIngestorConcurrentSavesAllLand(t *testing.T) {
	bucket := newBucket(t)
	r, _, err := OpenShards(bucket, 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry(32)
	g := NewIngestor(r, IngestorOptions{Obs: reg})
	defer g.Close()

	const n = 48
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info, err := g.Save(archiveBlob(t, fmt.Sprintf("grp-%d", i), uint64(i+1), 0))
			if err != nil {
				errs[i] = err
				return
			}
			if info.Records != 30 {
				errs[i] = fmt.Errorf("run %d archived %d records", i, info.Records)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}

	runs, err := r.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != n {
		t.Fatalf("repository holds %d runs, want %d", len(runs), n)
	}
	fr, err := r.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Clean() {
		t.Fatalf("fsck after group-commit ingest: %+v", fr.Issues)
	}
	snap := reg.Snapshot()
	if got := snap.C("repo.ingest.batched_runs"); got != n {
		t.Fatalf("repo.ingest.batched_runs = %d, want %d", got, n)
	}
	if snap.C("repo.ingest.batches") == 0 {
		t.Fatal("no commit rounds recorded")
	}

	// Duplicates answer exactly like Repo.Save.
	if _, err := g.Save(archiveBlob(t, "grp-0", 99, 0)); !errors.Is(err, ErrRunExists) {
		t.Fatalf("duplicate save: %v, want ErrRunExists", err)
	}
}

// TestIngestorGroupCommitAmortizesIndexWrites drives one commit round
// directly (white box) and proves the batching contract: k saves on
// one shard produce ONE batch journal intent and land together.
func TestIngestorGroupCommitAmortizesIndexWrites(t *testing.T) {
	bucket := newBucket(t)
	r, _, err := OpenShards(bucket, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := NewIngestor(r, IngestorOptions{MaxBatch: 8})
	defer g.Close()

	const k = 6
	reqs := make([]ingestReq, k)
	for i := range reqs {
		reqs[i] = ingestReq{
			blob: archiveBlob(t, fmt.Sprintf("round-%d", i), uint64(i+1), 0),
			resp: make(chan ingestResp, 1),
		}
	}
	g.commit(reqs)
	for i, req := range reqs {
		resp := <-req.resp
		if resp.err != nil {
			t.Fatalf("member %d: %v", i, resp.err)
		}
		if resp.info.RunID != fmt.Sprintf("round-%d", i) {
			t.Fatalf("member %d answered with %q", i, resp.info.RunID)
		}
	}

	// The whole round cost one batch intent (plus its done record).
	ss, err := r.resolveShards()
	if err != nil {
		t.Fatal(err)
	}
	recs, torn, err := readJournalObject(bucket, ss.journalObject(0))
	if err != nil || torn != 0 {
		t.Fatalf("journal read: %v (torn %d)", err, torn)
	}
	var intents, members int
	for _, rec := range recs {
		if rec.Phase == phaseIntent {
			if rec.Op != opSaveBatch {
				t.Fatalf("round journaled op %q, want %q", rec.Op, opSaveBatch)
			}
			intents++
			members = len(rec.Members)
		}
	}
	if intents != 1 || members != k {
		t.Fatalf("journal holds %d intents with %d members, want 1 with %d", intents, members, k)
	}

	runs, err := r.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != k {
		t.Fatalf("%d runs indexed, want %d", len(runs), k)
	}
}

// TestIngestorBatchIntentRecovery crashes a round between the blob
// writes and the manifest CAS: the open save-batch intent must replay
// member-wise — committed members untouched, orphaned blobs reclaimed.
func TestIngestorBatchIntentRecovery(t *testing.T) {
	bucket := newBucket(t)
	r, _, err := OpenShards(bucket, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A committed run (normal save) shares the batch with a victim.
	if _, err := r.Save(archiveBlob(t, "committed", 1, 0)); err != nil {
		t.Fatal(err)
	}

	ss, _ := r.resolveShards()
	if _, err := r.logIntentAt(ss.journalObject(0), journalRecord{
		Op: opSaveBatch,
		Members: []packMember{
			{RunID: "committed", Object: runObject("committed")},
			{RunID: "torn-away", Object: runObject("torn-away")},
		},
	}); err != nil {
		t.Fatal(err)
	}
	// The crash landed after this member's blob write, before the CAS.
	if _, err := bucket.Put(runObject("torn-away"), []byte("never indexed")); err != nil {
		t.Fatal(err)
	}

	r2, rep, err := Open(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RolledBack != 1 {
		t.Fatalf("recovery rolled back %d intents, want 1", rep.RolledBack)
	}
	if bucket.Exists(runObject("torn-away")) {
		t.Fatal("orphaned batch member's blob survived recovery")
	}
	if _, _, err := r2.Get("committed"); err != nil {
		t.Fatalf("committed batch member damaged by recovery: %v", err)
	}
	fr, err := r2.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Clean() {
		t.Fatalf("fsck after batch recovery: %+v", fr.Issues)
	}
}

func TestIngestorRefusesForeignShard(t *testing.T) {
	bucket := newBucket(t)
	rc := &ReplicaConfig{ID: 0, Replicas: 2}
	r, _, err := OpenShardsOwned(bucket, 4, rc.OwnedShards(4))
	if err != nil {
		t.Fatal(err)
	}
	g := NewIngestor(r, IngestorOptions{Replica: rc})
	defer g.Close()

	foreign := runOwnedBy(t, "not-mine", 4, &ReplicaConfig{ID: 1, Replicas: 2})
	if _, err := g.Save(archiveBlob(t, foreign, 1, 0)); err == nil {
		t.Fatal("ingestor accepted a run from a foreign shard")
	}
	mine := runOwnedBy(t, "mine", 4, rc)
	if _, err := g.Save(archiveBlob(t, mine, 2, 0)); err != nil {
		t.Fatalf("ingestor refused its own shard: %v", err)
	}
}

// TestFleetFinalizeRoutesThroughIngestor wires the lane into a fleet:
// finalize must archive via the group-commit path, with Save semantics
// intact end to end.
func TestFleetFinalizeRoutesThroughIngestor(t *testing.T) {
	bucket := newBucket(t)
	r, _, err := OpenShards(bucket, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry(64)
	g := NewIngestor(r, IngestorOptions{Obs: reg})
	defer g.Close()
	f := NewFleet(r, FleetOptions{Obs: reg, Ingest: g})
	srv := rpc.NewServer()
	f.Register(srv)
	defer srv.Close()

	c := rpc.Pipe(srv)
	defer c.Close()
	fc, err := OpenSession(c, OpenRequest{RunID: "laned", Workload: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for _, rec := range sessionRecords(0, n) {
		if err := fc.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	info, err := fc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != n {
		t.Fatalf("archived %d records, want %d", info.Records, n)
	}
	snap := reg.Snapshot()
	if snap.C("repo.ingest.batched_runs") != 1 {
		t.Fatalf("finalize bypassed the ingest lane: %v", snap.Counters)
	}
	if _, _, err := r.Get("laned"); err != nil {
		t.Fatal(err)
	}
}

func TestIngestorCloseDrainsAndRefuses(t *testing.T) {
	bucket := newBucket(t)
	r, _, err := OpenShards(bucket, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := NewIngestor(r, IngestorOptions{})

	const n = 10
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = g.Save(archiveBlob(t, fmt.Sprintf("drain-%d", i), uint64(i+1), 0))
		}(i)
	}
	wg.Wait() // every Save answered before Close
	g.Close()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	if _, err := g.Save(archiveBlob(t, "late", 99, 0)); !errors.Is(err, ErrIngestorClosed) {
		t.Fatalf("save after close: %v, want ErrIngestorClosed", err)
	}
	g.Close() // idempotent
}
