package repo

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/simclock"
	"repro/internal/trace"
)

func newFleetUnderTest(t *testing.T, opts FleetOptions) (*Fleet, *rpc.Server, *Repo) {
	t.Helper()
	r := newTestRepo(t)
	f := NewFleet(r, opts)
	srv := rpc.NewServer()
	f.Register(srv)
	t.Cleanup(srv.Close)
	return f, srv, r
}

func sessionRecords(session, n int) []*trace.ProfileRecord {
	recs := make([]*trace.ProfileRecord, 0, n)
	var ts simclock.Time
	for i := 0; i < n; i++ {
		step := int64(i)
		events := []trace.Event{
			{Name: fmt.Sprintf("Op%d", session%3), Device: trace.TPU, Start: ts, Dur: 500, Step: step},
			{Name: "InfeedDequeue", Device: trace.Host, Start: ts, Dur: 200, Step: step},
		}
		recs = append(recs, trace.Reduce(int64(i), ts, events, 0.1, 0.5))
		ts = ts.Add(1000)
	}
	return recs
}

// TestFleetConcurrentSessions is the acceptance-criteria test: 8
// concurrent streaming sessions, zero record loss (records_in ==
// records_archived), every run indexed.
func TestFleetConcurrentSessions(t *testing.T) {
	reg := obs.NewRegistry(64)
	_, srv, r := newFleetUnderTest(t, FleetOptions{
		MaxSessions: 8,
		QueueSize:   16,
		Obs:         reg,
	})

	const sessions = 8
	const perSession = 50
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := rpc.Pipe(srv)
			defer c.Close()
			fc, err := OpenSession(c, OpenRequest{
				RunID: fmt.Sprintf("fleet-run-%d", i), Workload: "synthetic",
			})
			if err != nil {
				errs[i] = err
				return
			}
			for _, rec := range sessionRecords(i, perSession) {
				if err := fc.Append(rec); err != nil {
					errs[i] = err
					return
				}
			}
			info, err := fc.Finalize()
			if err != nil {
				errs[i] = err
				return
			}
			if info.Records != perSession {
				errs[i] = fmt.Errorf("run %d archived %d records, want %d", i, info.Records, perSession)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	snap := reg.Snapshot()
	in, archived := snap.Counters["fleet.records.in"], snap.Counters["fleet.records.archived"]
	if in != sessions*perSession || in != archived {
		t.Fatalf("record loss: in=%d archived=%d want %d", in, archived, sessions*perSession)
	}
	if snap.Counters["fleet.runs.saved"] != sessions {
		t.Fatalf("runs saved = %d", snap.Counters["fleet.runs.saved"])
	}
	if snap.Gauges["fleet.sessions.active"] != 0 {
		t.Fatalf("active sessions = %d after all finalized", snap.Gauges["fleet.sessions.active"])
	}

	runs, err := r.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != sessions {
		t.Fatalf("repository holds %d runs, want %d", len(runs), sessions)
	}
	// Every archived run diffs cleanly against every other.
	if _, err := r.Compare(runs[0].RunID, runs[1].RunID); err != nil {
		t.Fatalf("cross-run diff: %v", err)
	}
}

func TestFleetSessionCapBusy(t *testing.T) {
	reg := obs.NewRegistry(16)
	_, srv, _ := newFleetUnderTest(t, FleetOptions{MaxSessions: 2, Obs: reg})

	c := rpc.Pipe(srv)
	defer c.Close()
	var open []*FleetClient
	for i := 0; i < 2; i++ {
		fc, err := OpenSession(c, OpenRequest{RunID: fmt.Sprintf("r%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		open = append(open, fc)
	}
	_, err := OpenSession(c, OpenRequest{RunID: "overflow"})
	if !errors.Is(err, rpc.ErrBusy) {
		t.Fatalf("over-cap open err = %v, want ErrBusy", err)
	}
	if !rpc.IsTransient(err) {
		t.Fatal("session-cap rejection must be transient")
	}
	if reg.Snapshot().Counters["fleet.sessions.rejected"] != 1 {
		t.Fatal("rejection not counted")
	}

	// Aborting one frees a slot.
	if err := open[0].Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSession(c, OpenRequest{RunID: "after-abort"}); err != nil {
		t.Fatalf("open after abort: %v", err)
	}
}

// TestFleetQueueCapEnforced proves bounded per-session memory: with
// the consumer stalled, exactly QueueSize appends are accepted and the
// next one gets a transient busy error. White-box: the session is
// planted without its drain goroutine so the stall is deterministic.
func TestFleetQueueCapEnforced(t *testing.T) {
	reg := obs.NewRegistry(16)
	f, srv, _ := newFleetUnderTest(t, FleetOptions{
		QueueSize:      4,
		EnqueueTimeout: 10 * time.Millisecond,
		Obs:            reg,
	})
	s := &session{
		id:         42,
		meta:       archive.Meta{RunID: "congested"},
		w:          archive.NewWriter(archive.Meta{RunID: "congested"}),
		ch:         make(chan queued, f.opts.QueueSize),
		done:       make(chan struct{}),
		lastActive: f.opts.Now(),
	}
	f.mu.Lock()
	f.sessions[s.id] = s
	f.mu.Unlock()

	c := rpc.Pipe(srv)
	defer c.Close()
	fc := &FleetClient{c: c, id: s.id}
	rec := sessionRecords(0, 1)[0]
	for i := 0; i < 4; i++ {
		if err := fc.Append(rec); err != nil {
			t.Fatalf("append %d within cap: %v", i, err)
		}
	}
	if err := fc.Append(rec); !errors.Is(err, rpc.ErrBusy) {
		t.Fatalf("over-cap append err = %v, want ErrBusy", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["fleet.appends.busy"] != 1 {
		t.Fatalf("busy appends = %d", snap.Counters["fleet.appends.busy"])
	}
	if snap.Counters["fleet.records.in"] != 4 {
		t.Fatalf("records in = %d, want 4", snap.Counters["fleet.records.in"])
	}

	// Start the consumer: the queue drains and the session finalizes
	// with exactly the admitted records.
	go s.drain(f.m)
	info, err := fc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 4 {
		t.Fatalf("archived %d records, want 4", info.Records)
	}
}

func TestFleetLeaseExpiry(t *testing.T) {
	reg := obs.NewRegistry(16)
	now := time.Unix(1000, 0)
	var nowMu sync.Mutex
	clock := func() time.Time {
		nowMu.Lock()
		defer nowMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		nowMu.Lock()
		now = now.Add(d)
		nowMu.Unlock()
	}

	f, srv, _ := newFleetUnderTest(t, FleetOptions{
		Lease: time.Minute,
		Obs:   reg,
		Now:   clock,
	})
	c := rpc.Pipe(srv)
	defer c.Close()
	fc, err := OpenSession(c, OpenRequest{RunID: "abandoned"})
	if err != nil {
		t.Fatal(err)
	}
	if f.ActiveSessions() != 1 {
		t.Fatal("session not active")
	}

	advance(2 * time.Minute)
	// Any endpoint interaction sweeps; a fresh open does.
	if _, err := OpenSession(c, OpenRequest{RunID: "fresh"}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["fleet.sessions.expired"]; got != 1 {
		t.Fatalf("expired = %d", got)
	}
	// The abandoned session is gone: finalize fails.
	if _, err := fc.Finalize(); err == nil {
		t.Fatal("finalize succeeded on expired session")
	}
}

func TestFleetRejectsMalformedRecord(t *testing.T) {
	_, srv, _ := newFleetUnderTest(t, FleetOptions{})
	c := rpc.Pipe(srv)
	defer c.Close()
	fc, err := OpenSession(c, OpenRequest{RunID: "r"})
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.AppendRaw([]byte{0xff, 0xff}); err == nil {
		t.Fatal("malformed record accepted")
	}
	// Session still usable.
	if err := fc.Append(sessionRecords(0, 1)[0]); err != nil {
		t.Fatal(err)
	}
	info, err := fc.Finalize()
	if err != nil || info.Records != 1 {
		t.Fatalf("finalize: %+v, %v", info, err)
	}
}

func TestFleetUnknownSession(t *testing.T) {
	_, srv, _ := newFleetUnderTest(t, FleetOptions{})
	c := rpc.Pipe(srv)
	defer c.Close()
	bogus := &FleetClient{c: c, id: 999}
	if err := bogus.Append(sessionRecords(0, 1)[0]); err == nil {
		t.Fatal("append to unknown session succeeded")
	}
	if _, err := bogus.Finalize(); err == nil {
		t.Fatal("finalize of unknown session succeeded")
	}
}
