// Fleet collection endpoint: the RPC service that lets N concurrent
// profiler sessions stream records into the repository. This is the
// ROADMAP's "many concurrent profiling sessions" north star — one
// collection server per fleet, each training VM's profiler streaming
// its records in, every finished session becoming an indexed archive.
//
// Resource discipline per session: a bounded record queue (appends
// beyond it get a transient busy error, never unbounded memory), a
// lease that expires abandoned sessions, and obs counters for every
// admission decision. The zero-loss invariant the acceptance test
// checks: fleet.records.in == fleet.records.archived once every
// session finalizes.
package repo

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/core/analyzer"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Fleet RPC method names.
const (
	MethodFleetOpen        = "fleet.Open"
	MethodFleetAppend      = "fleet.Append"
	MethodFleetAppendBatch = "fleet.AppendBatch"
	MethodFleetFinalize    = "fleet.Finalize"
	MethodFleetAbort       = "fleet.Abort"
)

// Fleet option defaults.
const (
	DefaultMaxSessions    = 32
	DefaultQueueSize      = 128
	DefaultEnqueueTimeout = 2 * time.Second
	DefaultLease          = 30 * time.Second
)

// FleetOptions tune the collection endpoint. Zero values take the
// defaults above.
type FleetOptions struct {
	// MaxSessions caps concurrently open sessions; Opens beyond it get
	// a busy error (rpc.ErrBusy → transient, clients back off).
	MaxSessions int
	// QueueSize bounds each session's pending-record queue.
	QueueSize int
	// EnqueueTimeout is how long an Append waits for queue space
	// before returning busy.
	EnqueueTimeout time.Duration
	// Lease expires sessions with no activity (crashed profilers must
	// not pin session slots forever).
	Lease time.Duration
	// Algorithm and Analyzer configure the server-side analysis each
	// session's records get at finalize (default OLS).
	Algorithm analyzer.Algorithm
	Analyzer  analyzer.Options
	// Stream configures the per-session streaming analyzer that emits
	// phase/degradation events while a run is in flight (see
	// fleet_stream.go). Its DutyCycle is the collector-side sampling
	// knob. DisableStream turns the in-flight analysis off entirely.
	Stream        analyzer.StreamOptions
	DisableStream bool
	// CompactEvery triggers a background repository compaction pass
	// after every N successful finalizes (0 = never). Passes run off
	// the finalize path — an ack never waits on compaction — and
	// WaitBackground lets shutdown drain them.
	CompactEvery int
	// Obs receives the endpoint's metrics.
	Obs *obs.Registry
	// Now is the lease clock (testing knob; default time.Now).
	Now func() time.Time
	// Replica places this collector inside an N-replica fleet sharing
	// one store (see replica.go): Open/Resume for runs this replica
	// does not own answer with a transient redirect to the owner, and
	// session tokens gain an "r<id>." namespace prefix. Nil means
	// standalone. An invalid config is a programming error — run
	// Validate on operator input before it reaches NewFleet.
	Replica *ReplicaConfig
	// Ingest, when set, routes finalized archives through group-commit
	// ingest lanes (one writer goroutine per owned shard subset)
	// instead of calling Repo.Save inline from each finalize handler.
	Ingest *Ingestor
}

func (o FleetOptions) withDefaults() FleetOptions {
	if o.MaxSessions == 0 {
		o.MaxSessions = DefaultMaxSessions
	}
	if o.QueueSize == 0 {
		o.QueueSize = DefaultQueueSize
	}
	if o.EnqueueTimeout == 0 {
		o.EnqueueTimeout = DefaultEnqueueTimeout
	}
	if o.Lease == 0 {
		o.Lease = DefaultLease
	}
	if o.Algorithm == "" {
		o.Algorithm = analyzer.OLSAlgo
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

type fleetMetrics struct {
	opened   *obs.Counter
	active   *obs.Gauge
	expired  *obs.Counter
	rejected *obs.Counter
	recIn    *obs.Counter
	recArch  *obs.Counter
	busy     *obs.Counter
	bytesIn  *obs.Counter
	saved    *obs.Counter
	resumed  *obs.Counter
}

func newFleetMetrics(r *obs.Registry) fleetMetrics {
	return fleetMetrics{
		opened:   r.Counter("fleet.sessions.opened"),
		active:   r.Gauge("fleet.sessions.active"),
		expired:  r.Counter("fleet.sessions.expired"),
		rejected: r.Counter("fleet.sessions.rejected"),
		recIn:    r.Counter("fleet.records.in"),
		recArch:  r.Counter("fleet.records.archived"),
		busy:     r.Counter("fleet.appends.busy"),
		bytesIn:  r.Counter("fleet.bytes.in"),
		saved:    r.Counter("fleet.runs.saved"),
		resumed:  r.Counter("fleet.sessions.resumed"),
	}
}

// Fleet is the collection endpoint. Register it on an rpc.Server and
// point profilers at it through FleetClient.
type Fleet struct {
	repo *Repo
	opts FleetOptions
	m    fleetMetrics
	sm   streamMetrics

	mu       sync.Mutex
	nextID   uint64
	sessions map[uint64]*session

	// savedRuns counts successful finalizes for the CompactEvery
	// trigger; bg tracks in-flight background compaction passes.
	savedRuns atomic.Uint64
	bg        sync.WaitGroup
}

// NewFleet builds a collection endpoint writing into repo.
func NewFleet(r *Repo, opts FleetOptions) *Fleet {
	opts = opts.withDefaults()
	if err := opts.Replica.Validate(); err != nil {
		panic(err)
	}
	return &Fleet{
		repo:     r,
		opts:     opts,
		m:        newFleetMetrics(opts.Obs),
		sm:       newStreamMetrics(opts.Obs),
		nextID:   1,
		sessions: make(map[uint64]*session),
	}
}

// Register installs the fleet methods on an RPC server.
func (f *Fleet) Register(s *rpc.Server) {
	s.Register(MethodFleetOpen, f.handleOpen)
	s.Register(MethodFleetAppend, f.handleAppend)
	s.Register(MethodFleetAppendBatch, f.handleAppendBatch)
	s.Register(MethodFleetFinalize, f.handleFinalize)
	s.Register(MethodFleetAbort, f.handleAbort)
	s.Register(MethodFleetResume, f.handleResume)
	s.Register(MethodFleetPing, f.handlePing)
}

// session is one in-flight collection stream. The session holds no
// decoded record slice: records live only in the archive writer's
// segment stream, and finalize decodes them back transiently for the
// server-side analysis (Writer.DecodeRecords) — a long session's memory
// is its compacted wire bytes, not N live record structs.
type session struct {
	id    uint64
	token string // durable identity: names sessions/<token>/{meta,log}
	meta  archive.Meta
	w     *archive.Writer

	// stream is the in-flight analyzer (nil when disabled). Owned by
	// the drain goroutine until done closes; finalize takes it after.
	stream *analyzer.StreamAnalyzer

	ch   chan queued   // bounded pending-record queue
	done chan struct{} // drain goroutine exit

	// sendMu guards enqueue-vs-close: Append holds it across the
	// channel send, Finalize/expiry set closed and close(ch) under it,
	// so a send on a closed channel is impossible.
	sendMu sync.Mutex
	closed bool

	mu         sync.Mutex
	lastActive time.Time
	archived   int64
}

// queued is one accepted record crossing into the drain goroutine: the
// validated wire bytes for the archive writer, plus the decoded form
// the append handler already produced while validating — reused here so
// the streaming analyzer costs no second decode on the hot path.
type queued struct {
	raw []byte
	rec *trace.ProfileRecord
}

// drain is the session's single consumer: it owns the writer and the
// streaming analyzer, so neither needs locking. AddRaw appends the
// validated wire bytes as-is — no decode/re-encode round trip on the
// hot path (the one validation decode updates the archive's counts and
// feeds the stream).
func (s *session) drain(m fleetMetrics) {
	defer close(s.done)
	for q := range s.ch {
		if err := s.w.AddRaw(q.raw); err != nil {
			// Can't happen: handleAppend validated the bytes. Skip
			// defensively rather than corrupt the archive.
			continue
		}
		if s.stream != nil && q.rec != nil {
			// Feed errors only after Finish, which finalize defers
			// until this goroutine exits.
			_ = s.stream.Feed(q.rec)
		}
		s.mu.Lock()
		s.archived++
		s.mu.Unlock()
		m.recArch.Inc()
	}
}

func (s *session) touch(now time.Time) {
	s.mu.Lock()
	s.lastActive = now
	s.mu.Unlock()
}

// closeQueue marks the session closed and closes its queue exactly
// once. Safe against concurrent appends.
func (s *session) closeQueue() {
	s.sendMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
	s.sendMu.Unlock()
}

// Wire messages (JSON for control, binary for the append hot path).

// OpenRequest asks for a new collection session.
type OpenRequest struct {
	RunID      string `json:"run_id"`
	Workload   string `json:"workload"`
	Label      string `json:"label,omitempty"`
	Tenant     string `json:"tenant,omitempty"`
	HostSpec   string `json:"host_spec,omitempty"`
	TPUVersion string `json:"tpu_version,omitempty"`
}

// OpenResponse returns the session handle plus the durable resume
// token: if the collector restarts mid-session, the client reattaches
// with fleet.Resume and the token instead of losing its records.
type OpenResponse struct {
	SessionID uint64 `json:"session_id"`
	Token     string `json:"token"`
}

type sessionRequest struct {
	SessionID uint64 `json:"session_id"`
}

// sweepExpired evicts sessions idle past the lease. Called at handler
// entry, so an abandoned slot frees the moment anyone else talks to
// the endpoint.
func (f *Fleet) sweepExpired() {
	now := f.opts.Now()
	f.mu.Lock()
	var victims []*session
	for id, s := range f.sessions {
		s.mu.Lock()
		idle := now.Sub(s.lastActive)
		s.mu.Unlock()
		if idle > f.opts.Lease {
			delete(f.sessions, id)
			victims = append(victims, s)
		}
	}
	f.m.active.Set(int64(len(f.sessions)))
	f.mu.Unlock()
	for _, s := range victims {
		s.closeQueue()
		<-s.done
		f.m.expired.Inc()
		f.opts.Obs.Emit("fleet", "session-expired",
			fmt.Sprintf("session %d (run %q) idle past lease", s.id, s.meta.RunID))
	}
}

func (f *Fleet) handleOpen(body []byte) ([]byte, error) {
	f.sweepExpired()
	var req OpenRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("fleet: bad open request: %w", err)
	}
	if req.RunID == "" {
		return nil, fmt.Errorf("fleet: open without run_id")
	}
	// Placement before any allocation: a misplaced Open must leave no
	// trace here — the owner allocates the sequence and the session.
	if err := f.placeRun(req.RunID); err != nil {
		return nil, err
	}
	seq, err := f.repo.NextSeq()
	if err != nil {
		return nil, err
	}
	meta := archive.Meta{
		RunID:      req.RunID,
		Workload:   req.Workload,
		Label:      req.Label,
		Tenant:     req.Tenant,
		HostSpec:   req.HostSpec,
		TPUVersion: req.TPUVersion,
		CreatedSeq: seq,
	}
	s := &session{
		token:      f.tokenFor(meta.RunID, meta.CreatedSeq),
		meta:       meta,
		w:          archive.NewWriter(meta),
		stream:     f.newSessionStream(meta),
		ch:         make(chan queued, f.opts.QueueSize),
		done:       make(chan struct{}),
		lastActive: f.opts.Now(),
	}
	if err := f.register(s); err != nil {
		return nil, err
	}
	// Durable identity must exist before the client learns the token;
	// if it can't be written, the session never really opened.
	if err := f.writeSessionMeta(s); err != nil {
		f.mu.Lock()
		delete(f.sessions, s.id)
		f.m.active.Set(int64(len(f.sessions)))
		f.mu.Unlock()
		return nil, err
	}

	go s.drain(f.m)
	f.m.opened.Inc()
	return json.Marshal(OpenResponse{SessionID: s.id, Token: s.token})
}

func (f *Fleet) lookup(id uint64) (*session, error) {
	f.mu.Lock()
	s, ok := f.sessions[id]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fleet: unknown session %d", id)
	}
	return s, nil
}

// enqueue hands one validated record's wire bytes to the session's
// drain goroutine, waiting up to EnqueueTimeout for queue space before
// shedding load with a transient busy error.
func (f *Fleet) enqueue(s *session, q queued) error {
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		return fmt.Errorf("fleet: session %d already finalized", s.id)
	}
	select {
	case s.ch <- q:
		s.sendMu.Unlock()
	default:
		// Queue full: wait bounded, then shed load with a transient
		// busy error instead of growing memory.
		timer := time.NewTimer(f.opts.EnqueueTimeout)
		select {
		case s.ch <- q:
			timer.Stop()
			s.sendMu.Unlock()
		case <-timer.C:
			s.sendMu.Unlock()
			f.m.busy.Inc()
			return fmt.Errorf("%w: session %d queue full (%d pending)",
				rpc.ErrBusy, s.id, f.opts.QueueSize)
		}
	}
	f.m.recIn.Inc()
	f.m.bytesIn.Add(int64(len(q.raw)))
	return nil
}

// handleAppend body: u64le session id, then record wire bytes.
func (f *Fleet) handleAppend(body []byte) ([]byte, error) {
	if len(body) < 8 {
		return nil, fmt.Errorf("fleet: short append frame")
	}
	id := binary.LittleEndian.Uint64(body[:8])
	s, err := f.lookup(id)
	if err != nil {
		return nil, err
	}
	// The rpc layer reuses its read buffer per connection; copy before
	// the bytes cross into the drain goroutine.
	rec := make([]byte, len(body)-8)
	copy(rec, body[8:])
	dec, err := trace.UnmarshalRecord(rec)
	if err != nil {
		return nil, fmt.Errorf("fleet: reject record: %w", err)
	}
	s.touch(f.opts.Now())
	if err := f.enqueue(s, queued{raw: rec, rec: dec}); err != nil {
		return nil, err
	}
	// Durability point: the record is on disk before the ack goes out.
	return nil, f.logAccepted(s, frameOne(rec))
}

// AppendBatchResponse reports how many leading records of a batch the
// server accepted. A partial count is success, not failure: the client
// resends only the unaccepted tail, so backpressure never duplicates
// records.
type AppendBatchResponse struct {
	Accepted int `json:"accepted"`
}

// handleAppendBatch body: u64le session id, then a trace framed stream
// ((uvarint length, record bytes)*). The whole batch is validated up
// front; acceptance is then per-record in order. Zero accepted on a
// non-empty batch maps to the transient busy error so retry layers back
// off exactly as they do for single appends.
func (f *Fleet) handleAppendBatch(body []byte) ([]byte, error) {
	if len(body) < 8 {
		return nil, fmt.Errorf("fleet: short append frame")
	}
	id := binary.LittleEndian.Uint64(body[:8])
	s, err := f.lookup(id)
	if err != nil {
		return nil, err
	}
	// One copy for the whole batch: the rpc layer reuses its read buffer
	// per connection, and the frame subslices below alias this copy as
	// they cross into the drain goroutine.
	framed := make([]byte, len(body)-8)
	copy(framed, body[8:])
	frames, err := trace.SplitFramed(framed)
	if err != nil {
		return nil, fmt.Errorf("fleet: reject batch: %w", err)
	}
	decoded := make([]*trace.ProfileRecord, len(frames))
	for i, fr := range frames {
		dec, err := trace.UnmarshalRecord(fr)
		if err != nil {
			return nil, fmt.Errorf("fleet: reject batch record %d: %w", i, err)
		}
		decoded[i] = dec
	}
	s.touch(f.opts.Now())

	accepted := 0
	var enqErr error
	for i, fr := range frames {
		if enqErr = f.enqueue(s, queued{raw: fr, rec: decoded[i]}); enqErr != nil {
			break
		}
		accepted++
	}
	if accepted == 0 && len(frames) > 0 {
		return nil, enqErr
	}
	// Durability point: the accepted prefix lands as one log frame
	// before the client learns its count. A partial count is still an
	// ack for those records.
	if accepted > 0 {
		prefix, err := acceptedPrefix(framed, accepted)
		if err != nil {
			return nil, err
		}
		if err := f.logAccepted(s, prefix); err != nil {
			return nil, err
		}
	}
	return json.Marshal(AppendBatchResponse{Accepted: accepted})
}

// remove detaches a session from the table.
func (f *Fleet) remove(id uint64) (*session, error) {
	f.mu.Lock()
	s, ok := f.sessions[id]
	if ok {
		delete(f.sessions, id)
	}
	f.m.active.Set(int64(len(f.sessions)))
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fleet: unknown session %d", id)
	}
	return s, nil
}

func (f *Fleet) handleFinalize(body []byte) ([]byte, error) {
	var req sessionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("fleet: bad finalize request: %w", err)
	}
	// Detach the session before sweeping: a finalize that arrives just
	// as the lease runs out must still win. Sweeping first would evict
	// the very session being finalized and drop its records.
	s, err := f.remove(req.SessionID)
	if err != nil {
		return nil, err
	}
	f.sweepExpired()
	s.closeQueue()
	<-s.done // drain finished: s.w and s.stream are ours now
	f.finishSessionStream(s)

	var sum *archive.Summary
	if s.w.Records() > 0 {
		// The session kept only wire bytes; decode them back just for
		// the finalize-time analysis. This is the one transient full
		// materialization in a session's life.
		recs, derr := s.w.DecodeRecords()
		if derr == nil && len(recs) > 0 {
			rep, aerr := analyzer.Analyze(s.meta.Workload, recs, f.opts.Algorithm, f.opts.Analyzer)
			if aerr == nil {
				sum = archive.SummarizeReport(rep)
			}
		}
		// Gap-only streams (no steps) archive without a summary
		// rather than failing the whole session.
	}
	blob := s.w.Finalize(sum)
	var info RunInfo
	if f.opts.Ingest != nil {
		info, err = f.opts.Ingest.Save(blob)
	} else {
		info, err = f.repo.Save(blob)
	}
	if err != nil {
		return nil, err
	}
	// The run is indexed; the session's durable state has served its
	// purpose. A crash before retirement is reconciled by
	// RecoverSessions (run-in-manifest → retire).
	f.retireSession(s.token)
	f.m.saved.Inc()
	f.maybeCompact()
	f.opts.Obs.Emit("fleet", "run-saved",
		fmt.Sprintf("run %q: %d records, %d bytes", info.RunID, info.Records, info.Bytes))
	return json.Marshal(info)
}

// maybeCompact kicks a background compaction pass every CompactEvery-th
// saved run. Repo.Compact serializes passes internally (compactMu), so
// overlapping triggers queue rather than stampede.
func (f *Fleet) maybeCompact() {
	n := f.opts.CompactEvery
	if n <= 0 {
		return
	}
	if f.savedRuns.Add(1)%uint64(n) != 0 {
		return
	}
	f.bg.Add(1)
	go func() {
		defer f.bg.Done()
		if _, err := f.repo.Compact(CompactOptions{}); err != nil {
			f.opts.Obs.Emit("fleet", "compact-error", err.Error())
		}
	}()
}

// WaitBackground blocks until every in-flight background compaction
// pass has finished. Call before tearing down the store under the
// fleet (tests, shutdown).
func (f *Fleet) WaitBackground() { f.bg.Wait() }

func (f *Fleet) handleAbort(body []byte) ([]byte, error) {
	var req sessionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("fleet: bad abort request: %w", err)
	}
	s, err := f.remove(req.SessionID)
	if err != nil {
		return nil, err
	}
	s.closeQueue()
	<-s.done
	f.retireSession(s.token)
	return nil, nil
}

// ActiveSessions reports how many sessions are currently open.
func (f *Fleet) ActiveSessions() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.sessions)
}

// FleetClient is the profiler-side handle on one collection session.
// It implements profiler.RecordStore, so a profiler can stream into
// the fleet endpoint by setting it as its Bucket.
type FleetClient struct {
	c     rpc.Caller
	id    uint64
	token string
}

// OpenSession starts a collection session on the endpoint behind c.
func OpenSession(c rpc.Caller, req OpenRequest) (*FleetClient, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	out, err := c.Call(MethodFleetOpen, body)
	if err != nil {
		return nil, err
	}
	var resp OpenResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		return nil, fmt.Errorf("fleet: bad open response: %w", err)
	}
	return &FleetClient{c: c, id: resp.SessionID, token: resp.Token}, nil
}

// SessionID returns the server-issued session handle.
func (fc *FleetClient) SessionID() uint64 { return fc.id }

// Token returns the durable resume token. A profiler that wants to
// survive collector restarts persists it alongside its own state and
// hands it to ResumeSession after reconnecting.
func (fc *FleetClient) Token() string { return fc.token }

// AppendRaw streams one wire-encoded record.
func (fc *FleetClient) AppendRaw(rec []byte) error {
	body := make([]byte, 8+len(rec))
	binary.LittleEndian.PutUint64(body[:8], fc.id)
	copy(body[8:], rec)
	_, err := fc.c.Call(MethodFleetAppend, body)
	return err
}

// Append streams one record. The record is marshalled straight into the
// request body — one buffer allocation per call; the rpc client frames
// it into its reused write buffer from there.
func (fc *FleetClient) Append(rec *trace.ProfileRecord) error {
	body := make([]byte, 8, 8+64)
	binary.LittleEndian.PutUint64(body[:8], fc.id)
	body = trace.MarshalRecordAppend(body, rec)
	_, err := fc.c.Call(MethodFleetAppend, body)
	return err
}

// Put implements profiler.RecordStore: the record name is the
// profiler's local object name and is not persisted — the archive
// orders records by arrival, which for a single profiler is the
// record sequence.
func (fc *FleetClient) Put(name string, data []byte) (*storage.Object, error) {
	if err := fc.AppendRaw(data); err != nil {
		return nil, err
	}
	return &storage.Object{Name: name, Data: append([]byte(nil), data...)}, nil
}

// PutBatch implements profiler.BatchStore: one AppendBatch RPC per
// round trip, resending only the unaccepted tail when the server sheds
// load mid-batch. Zero-accepted rounds surface the server's transient
// busy error, so the profiler's retry/backoff path re-sends the exact
// same tail — records are never duplicated.
func (fc *FleetClient) PutBatch(name string, framed []byte, count int) (*storage.Object, error) {
	rest := framed
	for len(rest) > 0 {
		body := make([]byte, 8+len(rest))
		binary.LittleEndian.PutUint64(body[:8], fc.id)
		copy(body[8:], rest)
		out, err := fc.c.Call(MethodFleetAppendBatch, body)
		if err != nil {
			return nil, err
		}
		var resp AppendBatchResponse
		if err := json.Unmarshal(out, &resp); err != nil {
			return nil, fmt.Errorf("fleet: bad append-batch response: %w", err)
		}
		if resp.Accepted <= 0 {
			return nil, fmt.Errorf("fleet: append-batch accepted 0 of %d records", count)
		}
		rest, err = trace.SkipFrames(rest, resp.Accepted)
		if err != nil {
			return nil, err
		}
	}
	return &storage.Object{Name: name}, nil
}

// AppendBatch streams a batch of records through one (or, under
// backpressure, few) AppendBatch round trips.
func (fc *FleetClient) AppendBatch(recs []*trace.ProfileRecord) error {
	if len(recs) == 0 {
		return nil
	}
	var framed []byte
	for _, r := range recs {
		framed = trace.AppendFramedRecord(framed, r)
	}
	_, err := fc.PutBatch("", framed, len(recs))
	return err
}

// Finalize closes the session; the server analyzes, archives, and
// indexes the run, returning its manifest entry.
func (fc *FleetClient) Finalize() (RunInfo, error) {
	body, err := json.Marshal(sessionRequest{SessionID: fc.id})
	if err != nil {
		return RunInfo{}, err
	}
	out, err := fc.c.Call(MethodFleetFinalize, body)
	if err != nil {
		return RunInfo{}, err
	}
	var info RunInfo
	if err := json.Unmarshal(out, &info); err != nil {
		return RunInfo{}, fmt.Errorf("fleet: bad finalize response: %w", err)
	}
	return info, nil
}

// Abort discards the session without archiving.
func (fc *FleetClient) Abort() error {
	body, err := json.Marshal(sessionRequest{SessionID: fc.id})
	if err != nil {
		return err
	}
	_, err = fc.c.Call(MethodFleetAbort, body)
	return err
}
