// Replica-aware fleet collection: N collector replicas over one shared
// sharded store, with replica count as the horizontal scaling knob.
//
// Placement is deterministic and derived from the layout the PR 8
// sharding already fixed: a run ID hashes to a manifest shard
// (shardIndex), and shard s belongs to replica s mod N. Because every
// run's sessions, journal intents, and manifest entry all live on its
// shard, a replica that owns a disjoint shard subset is the *sole
// writer* of those manifests — no cross-replica CAS contention, and
// the group-commit ingest lane (ingestor.go) can batch entries safely.
//
// A client may open a session against any replica; a replica that does
// not own the run answers with a typed rpc.RedirectError carrying the
// owner's endpoint. The redirect is transient (rpc.IsTransient), and an
// endpoint-set ReconnectClient follows it automatically. Resume routes
// the same way: any replica can read the session's durable meta from
// the shared store, compute the owner from the run ID, and redirect.
//
// Tokens are replica-scoped ("r<id>." prefix) so a session's creator is
// visible in the durable state, but ownership is always recomputed from
// the *current* config: after a replica is removed, the survivors'
// RecoverSessions adopt exactly the parked sessions whose shards they
// now own.
package repo

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/rpc"
)

// MethodFleetPing is the replica liveness/identity probe: peers use it
// to populate the fleet-wide readiness view, and operators to ask a
// collector who it is.
const MethodFleetPing = "fleet.Ping"

// ReplicaConfig places one collector replica inside a fleet of
// Replicas collectors sharing a store.
type ReplicaConfig struct {
	// ID is this replica's index in [0, Replicas).
	ID int `json:"id"`
	// Replicas is the fleet size. Shard s belongs to replica s mod
	// Replicas, so every shard has exactly one writer.
	Replicas int `json:"replicas"`
	// Peers maps replica ID -> endpoint address, used to issue
	// redirects. It may be shorter than Replicas (or empty): a missing
	// endpoint turns a would-be redirect into a plain error naming the
	// owner, which is still actionable but not self-healing.
	Peers []string `json:"peers,omitempty"`
}

// Validate checks the config is internally consistent. CLI flag
// parsing calls this; NewFleet treats an invalid config as a
// programming error.
func (rc *ReplicaConfig) Validate() error {
	if rc == nil {
		return nil
	}
	if rc.Replicas < 1 {
		return fmt.Errorf("repo: replica count %d < 1", rc.Replicas)
	}
	if rc.ID < 0 || rc.ID >= rc.Replicas {
		return fmt.Errorf("repo: replica id %d outside [0,%d)", rc.ID, rc.Replicas)
	}
	if len(rc.Peers) > 0 && len(rc.Peers) != rc.Replicas {
		return fmt.Errorf("repo: %d peer endpoints for %d replicas", len(rc.Peers), rc.Replicas)
	}
	return nil
}

// Owner maps a shard index to the replica that owns it.
func (rc *ReplicaConfig) Owner(shard int) int {
	if rc == nil || rc.Replicas <= 1 {
		return 0
	}
	return shard % rc.Replicas
}

// Endpoint returns the configured address of replica id ("" unknown).
func (rc *ReplicaConfig) Endpoint(id int) string {
	if rc == nil || id < 0 || id >= len(rc.Peers) {
		return ""
	}
	return rc.Peers[id]
}

// OwnedShards lists the shard indices this replica owns out of total.
// With fewer shards than replicas the high replicas own nothing — a
// config worth rejecting at deploy time, which Validate cannot see
// (shard count lives in the store) but collectServe warns about.
func (rc *ReplicaConfig) OwnedShards(total int) []int {
	if rc == nil {
		return nil
	}
	var owned []int
	for s := 0; s < total; s++ {
		if rc.Owner(s) == rc.ID {
			owned = append(owned, s)
		}
	}
	return owned
}

// OwnerOfRun returns the replica that owns runID under a layout with
// the given shard count — the client-side placement function: an agent
// that knows the fleet shape can aim its first Open at the owner and
// skip the redirect round trip entirely.
func (rc *ReplicaConfig) OwnerOfRun(runID string, shards int) int {
	return rc.Owner(shardIndex(runID, shards))
}

// ownsRun reports whether this fleet's replica owns runID's shard
// (always true without a replica config).
func (f *Fleet) ownsRun(runID string) (bool, error) {
	rc := f.opts.Replica
	if rc == nil {
		return true, nil
	}
	ss, err := f.repo.resolveShards()
	if err != nil {
		return false, err
	}
	return rc.Owner(ss.shardOf(runID)) == rc.ID, nil
}

// placeRun enforces session placement: nil when this replica owns
// runID, a typed transient redirect to the owner otherwise.
func (f *Fleet) placeRun(runID string) error {
	rc := f.opts.Replica
	if rc == nil {
		return nil
	}
	ss, err := f.repo.resolveShards()
	if err != nil {
		return err
	}
	owner := rc.Owner(ss.shardOf(runID))
	if owner == rc.ID {
		return nil
	}
	if ep := rc.Endpoint(owner); ep != "" {
		return &rpc.RedirectError{Endpoint: ep}
	}
	return fmt.Errorf("fleet: run %q belongs to replica %d (no endpoint configured)", runID, owner)
}

// tokenFor derives a session's durable token, replica-scoped when the
// fleet is replicated. The prefix records provenance; ownership is
// recomputed from the run ID, so survivors can adopt a removed
// replica's sessions without renaming anything.
func (f *Fleet) tokenFor(runID string, createdSeq uint64) string {
	t := sessionToken(runID, createdSeq)
	if rc := f.opts.Replica; rc != nil {
		return fmt.Sprintf("r%d.%s", rc.ID, t)
	}
	return t
}

// PingResponse identifies a collector replica.
type PingResponse struct {
	Replica        int `json:"replica"`  // -1 when not replicated
	Replicas       int `json:"replicas"` // 1 when not replicated
	ActiveSessions int `json:"active_sessions"`
}

func (f *Fleet) handlePing(body []byte) ([]byte, error) {
	resp := PingResponse{Replica: -1, Replicas: 1, ActiveSessions: f.ActiveSessions()}
	if rc := f.opts.Replica; rc != nil {
		resp.Replica, resp.Replicas = rc.ID, rc.Replicas
	}
	return json.Marshal(resp)
}

// PingEndpoint probes the collector behind c and returns its identity.
func PingEndpoint(c rpc.Caller) (PingResponse, error) {
	out, err := c.Call(MethodFleetPing, nil)
	if err != nil {
		return PingResponse{}, err
	}
	var resp PingResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		return PingResponse{}, fmt.Errorf("fleet: bad ping response: %w", err)
	}
	return resp, nil
}

// IsUnknownSession reports whether err is the collector telling a
// client that its session handle or token no longer exists — the
// signature of a replica that crashed and lost its in-memory table, or
// of a failover landing on a replica that never had the session. The
// cure is fleet.Resume with the durable token (ResilientClient does
// this automatically); it is NOT a transient transport error, so it is
// deliberately invisible to rpc.IsTransient retry loops.
func IsUnknownSession(err error) bool {
	if err == nil {
		return false
	}
	var re *rpc.RemoteError
	if errors.As(err, &re) {
		return strings.Contains(re.Msg, "fleet: unknown session")
	}
	return strings.Contains(err.Error(), "fleet: unknown session")
}

// IsRedirect reports whether err is (or wraps) a placement redirect,
// returning the owner's endpoint.
func IsRedirect(err error) (string, bool) {
	var redir *rpc.RedirectError
	if errors.As(err, &redir) {
		return redir.Endpoint, true
	}
	return "", false
}
