// Group-commit ingest lane: the write-side throughput half of the
// replicated collector.
//
// Repo.Save is one journal append, one blob Put, and one manifest CAS
// per run. At 1000+ concurrent agents the manifest CAS round-trips
// dominate: even sharded, every finalize pays its own
// journal-intent/manifest-update pair. An Ingestor funnels a replica's
// saves through one apply goroutine that drains its queue in rounds
// and commits each round per shard with ONE batch journal intent and
// ONE manifest CAS covering every run in the round — k saves cost
// O(shards touched) index round-trips instead of O(k).
//
// This is safe precisely because of replica placement (replica.go): a
// replica is the sole writer of its shards, so the lane's manifest CAS
// never races another writer, and batching cannot reorder conflicting
// updates that a concurrent writer could observe. Replica count is the
// scaling knob — R replicas run R independent lanes over disjoint
// shards, so fleet-wide ingest throughput grows with R while per-run
// durability semantics stay exactly Save's: intent before blob, blob
// before index, rollback (or an open intent for Recover) on failure.
package repo

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/archive"
	"repro/internal/obs"
	"repro/internal/storage"
)

// ErrIngestorClosed is returned by Save after Close.
var ErrIngestorClosed = errors.New("repo: ingestor closed")

// DefaultIngestBatch caps how many queued saves one commit round
// absorbs. 64 matches the manifest seq-block lease: big enough that a
// finalize stampede collapses to a handful of CAS writes, small enough
// that one round's blobs sit comfortably in memory.
const DefaultIngestBatch = 64

// IngestorOptions tune a group-commit lane.
type IngestorOptions struct {
	// MaxBatch caps saves per commit round (default DefaultIngestBatch).
	MaxBatch int
	// Queue bounds pending saves; Save blocks (never sheds) when full —
	// backpressure, not loss (default 4*MaxBatch).
	Queue int
	// Replica, when set, makes the lane refuse saves for shards this
	// replica does not own — a misrouted finalize must fail loudly, not
	// silently break the single-writer invariant batching relies on.
	Replica *ReplicaConfig
	// Obs receives lane metrics.
	Obs *obs.Registry
}

type ingestReq struct {
	blob []byte
	resp chan ingestResp
}

type ingestResp struct {
	info RunInfo
	err  error
}

// Ingestor is a single group-commit save lane over one repository.
// Construct one per collector replica (NewIngestor), point the fleet
// at it (FleetOptions.Ingest), and Close it at shutdown to drain.
type Ingestor struct {
	repo *Repo
	opts IngestorOptions

	ch   chan ingestReq
	done chan struct{}

	sendMu sync.Mutex
	closed bool

	batches *obs.Counter
	runs    *obs.Counter
	maxSeen *obs.Gauge
}

// NewIngestor starts a lane's apply goroutine.
func NewIngestor(r *Repo, opts IngestorOptions) *Ingestor {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultIngestBatch
	}
	if opts.Queue <= 0 {
		opts.Queue = 4 * opts.MaxBatch
	}
	g := &Ingestor{
		repo:    r,
		opts:    opts,
		ch:      make(chan ingestReq, opts.Queue),
		done:    make(chan struct{}),
		batches: opts.Obs.Counter("repo.ingest.batches"),
		runs:    opts.Obs.Counter("repo.ingest.batched_runs"),
		maxSeen: opts.Obs.Gauge("repo.ingest.batch.max"),
	}
	go g.run()
	return g
}

// Save queues blob for the next commit round and waits for its
// outcome. Semantics match Repo.Save — same validation, same duplicate
// errors, same journaled rollback — only the index round-trips are
// amortized across the round.
func (g *Ingestor) Save(blob []byte) (RunInfo, error) {
	req := ingestReq{blob: blob, resp: make(chan ingestResp, 1)}
	g.sendMu.Lock()
	if g.closed {
		g.sendMu.Unlock()
		return RunInfo{}, ErrIngestorClosed
	}
	g.ch <- req
	g.sendMu.Unlock()
	r := <-req.resp
	return r.info, r.err
}

// Close drains queued saves (every accepted Save still gets its
// answer) and stops the lane. Idempotent.
func (g *Ingestor) Close() {
	g.sendMu.Lock()
	if !g.closed {
		g.closed = true
		close(g.ch)
	}
	g.sendMu.Unlock()
	<-g.done
}

func (g *Ingestor) run() {
	defer close(g.done)
	for first := range g.ch {
		batch := []ingestReq{first}
		for len(batch) < g.opts.MaxBatch {
			select {
			case req, ok := <-g.ch:
				if !ok {
					g.commit(batch)
					return
				}
				batch = append(batch, req)
			default:
				goto full
			}
		}
	full:
		g.commit(batch)
	}
}

// pendingSave is one validated, inflight-claimed save inside a round.
type pendingSave struct {
	req  ingestReq
	info RunInfo
	blob []byte
}

// commit runs one group-commit round: validate every request, claim
// run IDs, group by shard, and per shard journal one batch intent +
// Put the blobs + append all entries in one manifest CAS.
func (g *Ingestor) commit(batch []ingestReq) {
	g.batches.Inc()
	g.runs.Add(int64(len(batch)))
	if int64(len(batch)) > g.maxSeen.Value() {
		g.maxSeen.Set(int64(len(batch)))
	}

	ss, err := g.repo.ensureShards()
	if err != nil {
		for _, req := range batch {
			req.resp <- ingestResp{err: err}
		}
		return
	}

	byShard := make(map[int][]*pendingSave)
	var claimed []string
	for _, req := range batch {
		info, err := g.validate(req.blob, ss)
		if err != nil {
			req.resp <- ingestResp{err: err}
			continue
		}
		// Same round, same run ID: the first claim wins, the rest get
		// the exact in-flight duplicate error Repo.Save produces.
		if !g.repo.beginInflight(info.RunID) {
			req.resp <- ingestResp{err: fmt.Errorf("%w: %q (save in flight)", ErrRunExists, info.RunID)}
			continue
		}
		claimed = append(claimed, info.RunID)
		si := ss.shardOf(info.RunID)
		byShard[si] = append(byShard[si], &pendingSave{req: req, info: info, blob: req.blob})
	}
	for si, group := range byShard {
		g.commitShard(ss, si, group)
	}
	for _, runID := range claimed {
		g.repo.endInflight(runID)
	}
	g.repo.compactJournalIfSettled(journalCompactThreshold)
}

// validate mirrors Repo.Save's preflight: open the archive, require a
// run ID, build the RunInfo, and reject runs outside this replica's
// shard ownership.
func (g *Ingestor) validate(blob []byte, ss shardSet) (RunInfo, error) {
	a, err := archive.OpenWorkers(blob, g.repo.workers)
	if err != nil {
		return RunInfo{}, fmt.Errorf("repo: refusing to save: %w", err)
	}
	meta := a.Meta()
	if meta.RunID == "" {
		return RunInfo{}, errors.New("repo: archive has no run ID")
	}
	si := ss.shardOf(meta.RunID)
	if rc := g.opts.Replica; rc != nil && rc.Owner(si) != rc.ID {
		return RunInfo{}, fmt.Errorf("repo: run %q on shard %d belongs to replica %d, not %d",
			meta.RunID, si, rc.Owner(si), rc.ID)
	}
	first, last := a.TimeRange()
	return RunInfo{
		RunID:      meta.RunID,
		Workload:   meta.Workload,
		Label:      meta.Label,
		Tenant:     meta.Tenant,
		HostSpec:   meta.HostSpec,
		TPUVersion: meta.TPUVersion,
		CreatedSeq: meta.CreatedSeq,
		Records:    a.RecordCount(),
		Windows:    a.WindowCount(),
		Bytes:      a.Size(),
		TimeFirst:  first,
		TimeLast:   last,
		Object:     runObject(meta.RunID),
	}, nil
}

// commitShard lands one shard's share of a round. Write order matches
// Save exactly — dup pre-check, batch intent, blobs, manifest — so a
// crash at any boundary is reconciled by the same Recover logic (the
// batch intent replays member-wise like k independent save intents).
func (g *Ingestor) commitShard(ss shardSet, si int, group []*pendingSave) {
	fail := func(group []*pendingSave, err error) {
		for _, p := range group {
			p.req.resp <- ingestResp{err: err}
		}
	}

	// One manifest read pre-checks the whole group: duplicates drop out
	// BEFORE the intent is journaled, so no intent is ever written
	// against a blob object a committed run owns.
	m, _, err := g.repo.loadManifestObject(ss.manifestObject(si))
	if err != nil {
		fail(group, err)
		return
	}
	live := group[:0]
	for _, p := range group {
		if m.find(p.info.RunID) >= 0 {
			p.req.resp <- ingestResp{err: fmt.Errorf("%w: %q", ErrRunExists, p.info.RunID)}
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}

	members := make([]packMember, len(live))
	for i, p := range live {
		members[i] = packMember{RunID: p.info.RunID, Object: p.info.Object}
	}
	jname := ss.journalObject(si)
	seq, err := g.repo.logIntentAt(jname, journalRecord{Op: opSaveBatch, Members: members})
	if err != nil {
		fail(live, err)
		return
	}

	// Blob writes. A member whose Put fails is dropped from the commit;
	// the open intent covers any bytes it may have half-landed until
	// the post-commit cleanup below (or, failing that, Recover).
	var stored []*pendingSave
	var putFailed []*pendingSave
	for _, p := range live {
		if _, perr := g.repo.store.Put(p.info.Object, p.blob); perr != nil {
			p.req.resp <- ingestResp{err: perr}
			putFailed = append(putFailed, p)
			continue
		}
		stored = append(stored, p)
	}

	committed := stored
	if len(stored) > 0 {
		err = g.repo.updateShardIdx(ss, si, func(m *manifest) error {
			// mut may rerun on CAS retry: recompute the appended set
			// fresh each attempt so it stays idempotent.
			for _, p := range stored {
				if m.find(p.info.RunID) < 0 {
					m.Runs = append(m.Runs, p.info)
				}
			}
			return nil
		})
		if err != nil {
			committed = nil
			// Index update failed wholesale. Re-verify before rolling
			// back: entries that DID land (a prior attempt's CAS won
			// after a read error, say) must keep their blobs.
			mv, _, lerr := g.repo.loadManifestObject(ss.manifestObject(si))
			for _, p := range stored {
				if lerr == nil && mv.find(p.info.RunID) >= 0 {
					committed = append(committed, p)
					continue
				}
				if derr := g.repo.store.Delete(p.info.Object); derr != nil && !errors.Is(derr, storage.ErrNotFound) {
					// Rollback failed: leave the intent open so Recover
					// reclaims the orphan, and report the index error.
					putFailed = append(putFailed, p)
				}
				p.req.resp <- ingestResp{err: err}
			}
		}
	}

	// Close the intent only once every member is accounted for: either
	// indexed, rolled back, or verifiably absent. A member that failed
	// its Put may still have partial bytes — delete defensively; if
	// that cleanup fails the intent stays open for Recover.
	open := false
	for _, p := range putFailed {
		if derr := g.repo.store.Delete(p.info.Object); derr != nil && !errors.Is(derr, storage.ErrNotFound) {
			open = true
		}
	}
	if !open {
		g.repo.logDoneAt(jname, seq, opSaveBatch)
	}
	for _, p := range committed {
		p.req.resp <- ingestResp{info: p.info}
	}
}
