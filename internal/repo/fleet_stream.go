// Per-session streaming analysis for the fleet collector: each open
// session owns a StreamAnalyzer fed by its drain goroutine, so phase
// boundaries and degradation alerts surface on internal/obs *while the
// run is in flight* — not at finalize, which may be hours away for a
// long training job. The analyzer's bounded-memory contract keeps this
// affordable at MaxSessions concurrency: a session's analysis state is
// O(seal window + k), regardless of how many records it has streamed.
//
// Determinism note: the drain goroutine is the session's single
// consumer, so the stream sees records in exactly the accepted order —
// the same order the durable log replays on resume, which is why a
// resumed session's analyzer picks up mid-run with identical state.
package repo

import (
	"fmt"

	"repro/internal/archive"
	"repro/internal/core/analyzer"
	"repro/internal/obs"
)

// streamMetrics are the collector's streaming-analysis instruments.
type streamMetrics struct {
	opened   *obs.Counter
	closed   *obs.Counter
	degraded *obs.Counter
}

func newStreamMetrics(r *obs.Registry) streamMetrics {
	return streamMetrics{
		opened:   r.Counter("fleet.stream.phases.opened"),
		closed:   r.Counter("fleet.stream.phases.closed"),
		degraded: r.Counter("fleet.stream.degraded"),
	}
}

// newSessionStream builds the per-session streaming analyzer, or nil
// when streaming analysis is disabled. Events fan out to obs under the
// "stream.phase" scope (open/close) and "stream.step" (degraded), each
// tagged with the session's run ID, then to any caller-provided
// OnEvent.
func (f *Fleet) newSessionStream(meta archive.Meta) *analyzer.StreamAnalyzer {
	if f.opts.DisableStream {
		return nil
	}
	opts := f.opts.Stream
	if opts.Obs == nil {
		opts.Obs = f.opts.Obs
	}
	userEvent := opts.OnEvent
	runID := meta.RunID
	opts.OnEvent = func(ev analyzer.StreamEvent) {
		switch ev.Kind {
		case analyzer.PhaseOpen:
			f.sm.opened.Inc()
			f.opts.Obs.Emit("stream.phase", "open",
				fmt.Sprintf("run %q: phase %d opened at step %d", runID, ev.Phase.ID, ev.Step))
		case analyzer.PhaseClose:
			f.sm.closed.Inc()
			f.opts.Obs.Emit("stream.phase", "close",
				fmt.Sprintf("run %q: phase %d closed (steps %d-%d, %d sampled, total %d)",
					runID, ev.Phase.ID, ev.Phase.FirstStep, ev.Phase.LastStep, ev.Phase.Steps, ev.Phase.Total))
		case analyzer.StepDegraded:
			f.sm.degraded.Inc()
			f.opts.Obs.Emit("stream.step", "degraded",
				fmt.Sprintf("run %q: step %d exceeded phase-mean span in phase %d", runID, ev.Step, ev.Phase.ID))
		}
		if userEvent != nil {
			userEvent(ev)
		}
	}
	return analyzer.NewStream(meta.Workload, opts)
}

// finishSessionStream closes a session's analyzer (if any) and emits
// its summary. Called by finalize after the drain goroutine exits, so
// the analyzer is quiescent.
func (f *Fleet) finishSessionStream(s *session) {
	if s.stream == nil {
		return
	}
	rep := s.stream.Finish()
	f.opts.Obs.Emit("stream", "summary",
		fmt.Sprintf("run %q: %d phases over %d sampled steps (%d seen, duty 1/%d, %d degraded steps)",
			s.meta.RunID, len(rep.Phases), rep.Steps, rep.StepsSeen, rep.DutyCycle, streamDegradedTotal(rep)))
}

func streamDegradedTotal(rep *analyzer.StreamReport) int64 {
	var n int64
	for _, p := range rep.Phases {
		n += p.Degraded
	}
	return n
}
