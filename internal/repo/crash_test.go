package repo

import (
	"encoding/binary"
	"encoding/json"
	"strconv"
	"testing"

	"repro/internal/archive"
	"repro/internal/faultnet"
	"repro/internal/trace"
)

// The power-cut property test: a scripted workload exercising every
// mutation class (Save, fleet collect, Finalize, Delete, GC) is killed
// at every single write boundary — twice, once with the final write
// dropped atomically and once with it torn mid-append — and after each
// cut the recovered repository must satisfy the durability contract:
//
//   1. nothing durably acknowledged is lost (acked saves are indexed
//      with their full record count, acked fleet appends survive into
//      the resumed session),
//   2. no phantom state (every manifest entry opens; acked deletes and
//      GCs stay deleted),
//   3. fsck is clean immediately after journal recovery, with no
//      repairs needed.

// Script step indices — the ack ledger records which steps completed.
const (
	stepSaveA = iota
	stepSaveB
	stepSaveC
	stepFleetOpen
	stepBatch1
	stepBatch2
	stepFinalize
	stepCompact
	stepDeleteA
	stepGC
	numSteps
)

// crashAcks is what the dying process knew it had been promised.
type crashAcks struct {
	failedStep int // first step that errored; -1 when the script completed
	token      string
	acked      int // fleet records durably acknowledged via batch responses
}

// crashBlob builds a deterministic multi-segment archive for the
// script's direct-save steps.
func crashBlob(t *testing.T, runID string, seq uint64, n int) []byte {
	t.Helper()
	w := archive.NewWriter(archive.Meta{RunID: runID, Workload: "base", CreatedSeq: seq})
	if err := w.SetSegmentTarget(512); err != nil {
		t.Fatal(err)
	}
	for _, r := range synthRecords(n, 0) {
		w.Add(r)
	}
	return w.Finalize(nil)
}

const (
	recsRunA = 12
	recsRunB = 15
	recsRunC = 9
	recsRunF = 15
	batchCut = 7 // recsF[:batchCut] then recsF[batchCut:]
)

func fleetRecords() []*trace.ProfileRecord { return sessionRecords(9, recsRunF) }

// runCrashScript drives the workload against store until the power cut
// (or completion), calling the fleet handlers directly so every store
// write happens on this goroutine — the cut schedule is deterministic.
// shards > 1 opens the repository sharded (migrating the fresh store),
// so the cut schedule also covers shard initialization and per-shard
// journals; shards <= 1 runs the v1 single-manifest layout.
func runCrashScript(t *testing.T, store Store, shards int) *crashAcks {
	t.Helper()
	acks := &crashAcks{failedStep: -1}
	fail := func(step int) *crashAcks {
		acks.failedStep = step
		return acks
	}

	r, _, err := OpenShards(store, shards)
	if err != nil {
		return fail(stepSaveA)
	}
	f := NewFleet(r, FleetOptions{QueueSize: 256})
	defer closeAllSessions(f)

	saves := []struct {
		step int
		blob []byte
	}{
		{stepSaveA, crashBlob(t, "run-a", 1, recsRunA)},
		{stepSaveB, crashBlob(t, "run-b", 2, recsRunB)},
		{stepSaveC, crashBlob(t, "run-c", 3, recsRunC)},
	}
	for _, sv := range saves {
		if _, err := r.Save(sv.blob); err != nil {
			return fail(sv.step)
		}
	}

	openBody, _ := json.Marshal(OpenRequest{RunID: "run-f", Workload: "fleet"})
	out, err := f.handleOpen(openBody)
	if err != nil {
		return fail(stepFleetOpen)
	}
	var opened OpenResponse
	if err := json.Unmarshal(out, &opened); err != nil {
		return fail(stepFleetOpen)
	}
	acks.token = opened.Token

	recsF := fleetRecords()
	batches := []struct {
		step int
		recs []*trace.ProfileRecord
	}{
		{stepBatch1, recsF[:batchCut]},
		{stepBatch2, recsF[batchCut:]},
	}
	for _, b := range batches {
		rest := b.recs
		for len(rest) > 0 {
			var framed []byte
			for _, rec := range rest {
				framed = trace.AppendFramedRecord(framed, rec)
			}
			body := make([]byte, 8+len(framed))
			binary.LittleEndian.PutUint64(body[:8], opened.SessionID)
			copy(body[8:], framed)
			out, err := f.handleAppendBatch(body)
			if err != nil {
				return fail(b.step)
			}
			var resp AppendBatchResponse
			if err := json.Unmarshal(out, &resp); err != nil {
				return fail(b.step)
			}
			acks.acked += resp.Accepted
			rest = rest[resp.Accepted:]
		}
	}

	finBody, _ := json.Marshal(sessionRequest{SessionID: opened.SessionID})
	if _, err := f.handleFinalize(finBody); err != nil {
		return fail(stepFinalize)
	}

	// Pack the three direct-save runs; cuts inside this step land at
	// every compaction write boundary (intent, pack put, repoints, old
	// blob deletes, done record).
	if _, err := r.Compact(CompactOptions{Workload: "base"}); err != nil {
		return fail(stepCompact)
	}

	if err := r.Delete("run-a"); err != nil {
		return fail(stepDeleteA)
	}
	if _, err := r.GC(1); err != nil {
		return fail(stepGC)
	}
	return acks
}

// closeAllSessions stops leaked drain goroutines after a simulated
// crash (a real power cut takes the goroutines with it; the test
// process keeps living).
func closeAllSessions(f *Fleet) {
	f.mu.Lock()
	ss := make([]*session, 0, len(f.sessions))
	for _, s := range f.sessions {
		ss = append(ss, s)
	}
	f.mu.Unlock()
	for _, s := range ss {
		s.closeQueue()
		<-s.done
	}
}

// verifyRecovered is the post-restart half: journal replay, session
// recovery, fsck, and the durability invariants.
func verifyRecovered(t *testing.T, store Store, acks *crashAcks, label string) {
	t.Helper()
	fs := acks.failedStep
	stepDone := func(i int) bool { return fs == -1 || i < fs }

	r2, _, err := Open(store)
	if err != nil {
		t.Fatalf("%s: recovery open: %v", label, err)
	}
	f2 := NewFleet(r2, FleetOptions{QueueSize: 256})
	parked, err := f2.RecoverSessions()
	if err != nil {
		t.Fatalf("%s: recover sessions: %v", label, err)
	}

	// Invariant 3: clean fsck right after recovery — the journal replay
	// alone reconverges the manifest and blob set.
	rep, err := r2.Fsck(false)
	if err != nil {
		t.Fatalf("%s: fsck: %v", label, err)
	}
	if !rep.Clean() {
		t.Fatalf("%s: fsck not clean after recovery: %+v", label, rep.Issues)
	}

	// Invariant 2, phantom-free manifest: every listed run must open.
	listed, err := r2.List(Filter{})
	if err != nil {
		t.Fatalf("%s: list: %v", label, err)
	}
	present := map[string]int64{}
	for _, info := range listed {
		_, a, err := r2.Get(info.RunID)
		if err != nil {
			t.Fatalf("%s: manifest entry %q is a phantom: %v", label, info.RunID, err)
		}
		if a.RecordCount() != info.Records {
			t.Fatalf("%s: %q: %d records indexed, %d stored", label, info.RunID, info.Records, a.RecordCount())
		}
		present[info.RunID] = info.Records
	}

	// mustHave / mustLack / mayHave: invariant 1 per run, step by step.
	check := func(id string, want int64, saveStep, removeStep int) {
		got, ok := present[id]
		removed := removeStep >= 0 && stepDone(removeStep)
		inFlight := fs == saveStep || (removeStep >= 0 && fs == removeStep)
		switch {
		case removed:
			if ok {
				t.Fatalf("%s: %q resurrected after acked removal", label, id)
			}
		case stepDone(saveStep) && !inFlight:
			if !ok || got != want {
				t.Fatalf("%s: acked run %q lost or truncated (got %d/%v, want %d)", label, id, got, ok, want)
			}
		case inFlight:
			if ok && got != want {
				t.Fatalf("%s: in-flight run %q present but truncated (%d != %d)", label, id, got, want)
			}
		default:
			if ok {
				t.Fatalf("%s: never-saved run %q appeared", label, id)
			}
		}
	}
	check("run-a", recsRunA, stepSaveA, stepDeleteA)
	check("run-b", recsRunB, stepSaveB, stepGC)
	check("run-c", recsRunC, stepSaveC, -1)

	// The fleet session's fate.
	switch {
	case stepDone(stepFinalize):
		if got := present["run-f"]; got != recsRunF {
			t.Fatalf("%s: finalized fleet run lost (%d records)", label, got)
		}
		if len(parked) != 0 {
			t.Fatalf("%s: finalized session still parked: %v", label, parked)
		}
	case stepDone(stepFleetOpen):
		if fs == stepFinalize && present["run-f"] == recsRunF {
			// Finalize committed, only the ack was lost; RecoverSessions
			// must have retired the durable state.
			if len(parked) != 0 {
				t.Fatalf("%s: committed session still parked: %v", label, parked)
			}
			break
		}
		// The session must be parked and resumable with every acked
		// record intact; completing it must archive all records once.
		if len(parked) != 1 || parked[0] != acks.token {
			t.Fatalf("%s: parked = %v, want [%s]", label, parked, acks.token)
		}
		resumeSessionAndFinish(t, f2, r2, acks, label)
	default:
		if len(parked) != 0 {
			t.Fatalf("%s: unopened session parked: %v", label, parked)
		}
	}
}

// resumeSessionAndFinish reattaches to the parked session, checks the
// durable count against the acks, streams the remainder, finalizes,
// and verifies the archived run is exactly the original record stream.
func resumeSessionAndFinish(t *testing.T, f2 *Fleet, r2 *Repo, acks *crashAcks, label string) {
	t.Helper()
	body, _ := json.Marshal(ResumeRequest{Token: acks.token})
	out, err := f2.handleResume(body)
	if err != nil {
		t.Fatalf("%s: resume: %v", label, err)
	}
	var resp ResumeResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatalf("%s: resume response: %v", label, err)
	}
	if resp.AcceptedRecords < int64(acks.acked) {
		t.Fatalf("%s: durably-acked records lost: resumed at %d, acked %d",
			label, resp.AcceptedRecords, acks.acked)
	}
	if resp.AcceptedRecords > recsRunF {
		t.Fatalf("%s: resumed count %d exceeds records ever sent", label, resp.AcceptedRecords)
	}

	recsF := fleetRecords()
	var framed []byte
	for _, rec := range recsF[resp.AcceptedRecords:] {
		framed = trace.AppendFramedRecord(framed, rec)
	}
	if len(framed) > 0 {
		abody := make([]byte, 8+len(framed))
		binary.LittleEndian.PutUint64(abody[:8], resp.SessionID)
		copy(abody[8:], framed)
		aout, err := f2.handleAppendBatch(abody)
		if err != nil {
			t.Fatalf("%s: resumed append: %v", label, err)
		}
		var ar AppendBatchResponse
		if err := json.Unmarshal(aout, &ar); err != nil || int64(ar.Accepted) != recsRunF-resp.AcceptedRecords {
			t.Fatalf("%s: resumed append accepted %d/%d (err %v)",
				label, ar.Accepted, recsRunF-resp.AcceptedRecords, err)
		}
	}
	finBody, _ := json.Marshal(sessionRequest{SessionID: resp.SessionID})
	if _, err := f2.handleFinalize(finBody); err != nil {
		t.Fatalf("%s: resumed finalize: %v", label, err)
	}

	_, a, err := r2.Get("run-f")
	if err != nil {
		t.Fatalf("%s: resumed run unreadable: %v", label, err)
	}
	decoded, err := a.Records()
	if err != nil {
		t.Fatalf("%s: resumed run decode: %v", label, err)
	}
	if len(decoded) != recsRunF {
		t.Fatalf("%s: resumed run has %d records, want %d (loss or duplication)",
			label, len(decoded), recsRunF)
	}
	for i, rec := range decoded {
		if rec.Seq != int64(i) {
			t.Fatalf("%s: record %d has seq %d: duplicated or reordered", label, i, rec.Seq)
		}
	}
	if names := r2.store.List("sessions/"); len(names) != 0 {
		t.Fatalf("%s: session state not retired after resume+finalize: %v", label, names)
	}
}

// TestPowerCutAtEveryWriteBoundary is the property test: measure the
// script's write budget with a dry run, then kill it at every write,
// in both atomic-drop and torn-append flavors, and verify recovery.
// The whole schedule runs twice: once against the v1 single-manifest
// layout and once against a 3-shard repository (whose budget also
// covers shard initialization, per-shard journals, and the compaction
// step's pack writes).
func TestPowerCutAtEveryWriteBoundary(t *testing.T) {
	for _, mode := range []struct {
		name   string
		shards int
	}{
		{"legacy", 0},
		{"sharded", 3},
	} {
		t.Run(mode.name, func(t *testing.T) {
			dry := newTestBucket(t)
			cs := faultnet.NewCrashStore(dry)
			acks := runCrashScript(t, cs, mode.shards)
			if acks.failedStep != -1 {
				t.Fatalf("dry run failed at step %d", acks.failedStep)
			}
			budget := cs.Writes()
			if budget < 15 {
				t.Fatalf("write budget %d suspiciously small — script not exercising the stack", budget)
			}

			for _, tear := range []bool{false, true} {
				for n := 0; n < budget; n++ {
					label := "cut@" + strconv.Itoa(n)
					if tear {
						label += "+torn"
					}
					bucket := newTestBucket(t)
					cs := faultnet.NewCrashStore(bucket)
					cs.CrashAfterWrites(n, tear)
					acks := runCrashScript(t, cs, mode.shards)
					if !cs.Dead() {
						t.Fatalf("%s: cut never fired (budget %d)", label, budget)
					}
					// Power restored: verification runs on the raw bucket.
					verifyRecovered(t, bucket, acks, label)
				}
			}
		})
	}
}
