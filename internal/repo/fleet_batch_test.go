package repo

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/trace"
)

// TestFleetAppendBatch streams whole batches through one RPC each and
// checks the archived run is identical to what per-record appends build:
// same count, same records, same zero-loss metric story.
func TestFleetAppendBatch(t *testing.T) {
	reg := obs.NewRegistry(16)
	_, srv, r := newFleetUnderTest(t, FleetOptions{Obs: reg})
	c := rpc.Pipe(srv)
	defer c.Close()

	fc, err := OpenSession(c, OpenRequest{RunID: "batched", Workload: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	recs := sessionRecords(0, 60)
	for lo := 0; lo < len(recs); lo += 20 {
		if err := fc.AppendBatch(recs[lo : lo+20]); err != nil {
			t.Fatalf("batch at %d: %v", lo, err)
		}
	}
	info, err := fc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != int64(len(recs)) {
		t.Fatalf("archived %d records, want %d", info.Records, len(recs))
	}

	snap := reg.Snapshot()
	if in, arch := snap.Counters["fleet.records.in"], snap.Counters["fleet.records.archived"]; in != int64(len(recs)) || in != arch {
		t.Fatalf("record loss: in=%d archived=%d want %d", in, arch, len(recs))
	}

	_, a, err := r.Get("batched")
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Records()
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range got {
		if rec.Seq != recs[i].Seq || rec.NumEvents != recs[i].NumEvents {
			t.Fatalf("record %d: seq=%d events=%d, want seq=%d events=%d",
				i, rec.Seq, rec.NumEvents, recs[i].Seq, recs[i].NumEvents)
		}
	}
}

// TestFleetAppendBatchPartialAcceptance drives the shed-load protocol
// deterministically: a hand-built session with its drain goroutine not
// yet running, so the 4-slot queue genuinely fills. The first batch
// round must accept exactly the queue's worth, the next round with the
// queue still full must surface the transient busy error (never a
// silent zero-accept success), and once the drain starts, resending the
// tail lands every record exactly once, in order.
func TestFleetAppendBatchPartialAcceptance(t *testing.T) {
	f, srv, _ := newFleetUnderTest(t, FleetOptions{
		QueueSize:      4,
		EnqueueTimeout: 5 * time.Millisecond,
	})
	seq, err := f.repo.NextSeq()
	if err != nil {
		t.Fatal(err)
	}
	meta := archive.Meta{RunID: "partial", Workload: "synthetic", CreatedSeq: seq}
	s := &session{
		id: 77, meta: meta, w: archive.NewWriter(meta),
		ch: make(chan queued, f.opts.QueueSize), done: make(chan struct{}),
		lastActive: f.opts.Now(),
	}
	f.mu.Lock()
	f.sessions[s.id] = s
	f.mu.Unlock()

	recs := sessionRecords(1, 10)
	var framed []byte
	for _, rec := range recs {
		framed = trace.AppendFramedRecord(framed, rec)
	}
	body := make([]byte, 8+len(framed))
	binary.LittleEndian.PutUint64(body[:8], s.id)
	copy(body[8:], framed)
	out, err := f.handleAppendBatch(body)
	if err != nil {
		t.Fatalf("first round: %v", err)
	}
	var resp AppendBatchResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != f.opts.QueueSize {
		t.Fatalf("accepted %d of %d, want exactly the queue's %d",
			resp.Accepted, len(recs), f.opts.QueueSize)
	}

	// Queue still full: zero progress must be a busy ERROR, not a
	// zero-accept success — that is what keeps retry duplicate-free.
	tail, err := trace.SkipFrames(framed, resp.Accepted)
	if err != nil {
		t.Fatal(err)
	}
	body2 := make([]byte, 8+len(tail))
	binary.LittleEndian.PutUint64(body2[:8], s.id)
	copy(body2[8:], tail)
	if _, err := f.handleAppendBatch(body2); !errors.Is(err, rpc.ErrBusy) {
		t.Fatalf("stalled-queue round: err = %v, want ErrBusy", err)
	}

	// Start the drain and let the client-side loop push the tail through.
	go s.drain(f.m)
	fc := &FleetClient{c: rpc.Pipe(srv), id: s.id}
	if _, err := fc.PutBatch("", tail, len(recs)-resp.Accepted); err != nil {
		t.Fatalf("tail resend: %v", err)
	}
	info, err := fc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != int64(len(recs)) {
		t.Fatalf("archived %d records, want %d (duplicates or loss on partial acceptance)",
			info.Records, len(recs))
	}
}

// TestFleetAppendBatchRejectsMalformed checks batch validation is
// all-or-nothing: one bad frame rejects the whole RPC and nothing lands.
func TestFleetAppendBatchRejectsMalformed(t *testing.T) {
	_, srv, _ := newFleetUnderTest(t, FleetOptions{})
	c := rpc.Pipe(srv)
	defer c.Close()

	fc, err := OpenSession(c, OpenRequest{RunID: "reject", Workload: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	var framed []byte
	framed = trace.AppendFramedRecord(framed, sessionRecords(0, 1)[0])
	framed = append(framed, 2, 0x00, 0x01) // frame holding an invalid field-0 tag
	if _, err := fc.PutBatch("", framed, 2); err == nil {
		t.Fatal("malformed batch accepted")
	}
	info, err := fc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 0 {
		t.Fatalf("rejected batch still landed %d records", info.Records)
	}
}

// TestFleetAppendBatchConcurrentSessions is the batched variant of the
// zero-loss acceptance test: concurrent sessions each streaming in
// batches, every record archived exactly once.
func TestFleetAppendBatchConcurrentSessions(t *testing.T) {
	reg := obs.NewRegistry(64)
	_, srv, r := newFleetUnderTest(t, FleetOptions{
		MaxSessions: 4,
		QueueSize:   8,
		Obs:         reg,
	})
	const sessions = 4
	const perSession = 48
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := rpc.Pipe(srv)
			defer c.Close()
			fc, err := OpenSession(c, OpenRequest{
				RunID: fmt.Sprintf("batch-run-%d", i), Workload: "synthetic",
			})
			if err != nil {
				errs[i] = err
				return
			}
			recs := sessionRecords(i, perSession)
			for lo := 0; lo < len(recs); lo += 16 {
				if err := fc.AppendBatch(recs[lo : lo+16]); err != nil {
					errs[i] = err
					return
				}
			}
			info, err := fc.Finalize()
			if err != nil {
				errs[i] = err
				return
			}
			if info.Records != perSession {
				errs[i] = fmt.Errorf("run %d archived %d records, want %d",
					i, info.Records, perSession)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	snap := reg.Snapshot()
	if in, arch := snap.Counters["fleet.records.in"], snap.Counters["fleet.records.archived"]; in != sessions*perSession || in != arch {
		t.Fatalf("record loss: in=%d archived=%d want %d", in, arch, sessions*perSession)
	}
	runs, err := r.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != sessions {
		t.Fatalf("repository holds %d runs, want %d", len(runs), sessions)
	}
}

// TestFleetAppendBatchUnknownSession mirrors the single-append contract.
func TestFleetAppendBatchUnknownSession(t *testing.T) {
	_, srv, _ := newFleetUnderTest(t, FleetOptions{})
	c := rpc.Pipe(srv)
	defer c.Close()
	fc := &FleetClient{c: c, id: 999}
	err := fc.AppendBatch(sessionRecords(0, 2))
	if err == nil {
		t.Fatal("append to unknown session succeeded")
	}
	var re *rpc.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}
