// Write-ahead intent journal: the crash-consistency spine of the
// repository. Every mutating operation (Save, Delete, GC, and the
// fleet's finalize, which lands as a Save) appends a CRC-framed intent
// record to the journal object *before* it touches any blob or the
// manifest, and a matching done record after the mutation fully
// commits or fully rolls back. A process that dies mid-mutation leaves
// an open intent behind; Recover replays the journal on open and
// drives every open intent to one of the two legal end states, so the
// manifest and the blob set always reconverge:
//
//   - save intent, run in manifest        → mutation committed; nothing to do
//   - save intent, run absent             → roll back: reclaim the orphan blob
//   - delete intent, run still in manifest → mutation never took effect; no-op
//   - delete intent, run absent           → complete: reclaim the leftover blob
//   - gc intent                           → complete: reclaim every blob whose
//     run is absent from the manifest and not protected by an open save
//
// Journal frame layout (little-endian), chosen so a torn tail — the
// power cut landing mid-append — is detectable and trimmable:
//
//	u32 payloadLen | u32 crc32c(payload) | payload (JSON journalRecord)
//
// The journal is an append-only object (storage.Bucket.Append); the
// only non-append write is the compaction rewrite at the end of a
// successful Recover, once every intent is settled.
package repo

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/storage"
)

// JournalObject is the bucket object holding the intent journal.
const JournalObject = "runs/.journal"

// journalFrameOverhead is the per-record framing cost: u32 length +
// u32 crc32c.
const journalFrameOverhead = 8

// maxJournalPayload bounds a single journal record on read; anything
// larger is corruption, not data (records are small JSON documents).
const maxJournalPayload = 1 << 20

var journalTable = crc32.MakeTable(crc32.Castagnoli)

// Journal operation and phase names.
const (
	opSave   = "save"
	opDelete = "delete"
	opGC     = "gc"

	phaseIntent = "intent"
	phaseDone   = "done"
)

// journalRecord is one framed journal entry. Seq pairs an intent with
// its done record; an intent whose seq has no done record is open.
type journalRecord struct {
	Seq     uint64   `json:"seq"`
	Op      string   `json:"op"`
	Phase   string   `json:"phase"`
	RunID   string   `json:"run_id,omitempty"`
	Object  string   `json:"object,omitempty"`
	Victims []string `json:"victims,omitempty"`
}

// appendFrame CRC-frames payload and appends it to object. The append
// is the durability point for both the intent journal and the fleet's
// per-session logs: a frame either lands whole or its torn prefix is
// detected and trimmed by readFrames.
func appendFrame(store Store, object string, payload []byte) error {
	frame := make([]byte, journalFrameOverhead+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, journalTable))
	copy(frame[journalFrameOverhead:], payload)
	_, err := store.Append(object, frame)
	return err
}

// readFrames decodes a CRC-framed object leniently: it stops at the
// first torn or checksum-failing frame and reports both the intact
// prefix length and how many tail bytes it discarded. A missing object
// is an empty history. maxPayload bounds a single frame (anything
// larger is corruption, not data).
func readFrames(store Store, object string, maxPayload int) (frames [][]byte, intact, torn int, err error) {
	obj, err := store.Get(object)
	if errors.Is(err, storage.ErrNotFound) {
		return nil, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, err
	}
	data := obj.Data
	pos := 0
	for pos < len(data) {
		if pos+journalFrameOverhead > len(data) {
			break
		}
		n := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		want := binary.LittleEndian.Uint32(data[pos+4 : pos+8])
		if n > maxPayload || pos+journalFrameOverhead+n > len(data) {
			break
		}
		payload := data[pos+journalFrameOverhead : pos+journalFrameOverhead+n]
		if crc32.Checksum(payload, journalTable) != want {
			break
		}
		frames = append(frames, payload)
		pos += journalFrameOverhead + n
	}
	return frames, pos, len(data) - pos, nil
}

// appendJournal frames rec and appends it to the journal object.
func (r *Repo) appendJournal(rec journalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := appendFrame(r.store, JournalObject, payload); err != nil {
		return fmt.Errorf("repo: journal append: %w", err)
	}
	return nil
}

// logIntent appends an intent record and returns its seq for the
// matching done record.
func (r *Repo) logIntent(op, runID, object string, victims []string) (uint64, error) {
	seq := atomic.AddUint64(&r.journalSeq, 1)
	err := r.appendJournal(journalRecord{
		Seq: seq, Op: op, Phase: phaseIntent,
		RunID: runID, Object: object, Victims: victims,
	})
	return seq, err
}

// logDone appends the done record closing intent seq. A failure here
// is harmless-by-design: the next Recover replays the intent, finds
// the mutation already settled, and closes it then.
func (r *Repo) logDone(seq uint64, op string) {
	_ = r.appendJournal(journalRecord{Seq: seq, Op: op, Phase: phaseDone})
}

// readJournal decodes the journal leniently: it stops at the first
// torn or CRC-failing frame (the bytes a power cut left behind) and
// reports how many tail bytes it discarded. A missing or empty journal
// is an empty history.
func readJournal(store Store) (recs []journalRecord, tornBytes int, err error) {
	frames, _, torn, err := readFrames(store, JournalObject, maxJournalPayload)
	if err != nil {
		return nil, 0, err
	}
	for i, payload := range frames {
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// A framed-but-undecodable record poisons the tail: the
			// bytes from this frame on count as torn.
			for _, rest := range frames[i:] {
				torn += journalFrameOverhead + len(rest)
			}
			return recs, torn, nil
		}
		recs = append(recs, rec)
	}
	return recs, torn, nil
}

// RecoveryReport summarizes one journal replay.
type RecoveryReport struct {
	// Records is how many intact journal records the replay scanned.
	Records int
	// TornBytes is the size of the discarded torn tail, if any.
	TornBytes int
	// OpenIntents is how many intents had no done record and were
	// reconciled.
	OpenIntents int
	// Completed counts open intents whose mutation had already fully
	// committed (only the done record was missing).
	Completed int
	// RolledBack counts open intents whose mutation was undone.
	RolledBack int
	// OrphansReclaimed lists blob objects deleted during replay —
	// save rollbacks and unfinished GC victims.
	OrphansReclaimed []string
}

// Clean reports whether the replay found nothing to repair.
func (rr *RecoveryReport) Clean() bool {
	return rr.OpenIntents == 0 && rr.TornBytes == 0
}

// Recover replays the intent journal and reconciles every open intent,
// returning what it did. It must be called before the repository
// serves mutations when the underlying store may hold the debris of a
// crashed writer — Open does it automatically. Recover is idempotent:
// a second replay over the same store finds a clean journal.
func (r *Repo) Recover() (*RecoveryReport, error) {
	recs, torn, err := readJournal(r.store)
	if err != nil {
		return nil, err
	}
	rep := &RecoveryReport{Records: len(recs), TornBytes: torn}

	maxSeq := uint64(0)
	done := make(map[uint64]bool)
	for _, rec := range recs {
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		if rec.Phase == phaseDone {
			done[rec.Seq] = true
		}
	}
	// Future intents must not collide with replayed seqs.
	for {
		cur := atomic.LoadUint64(&r.journalSeq)
		if cur >= maxSeq || atomic.CompareAndSwapUint64(&r.journalSeq, cur, maxSeq) {
			break
		}
	}

	var open []journalRecord
	for _, rec := range recs {
		if rec.Phase == phaseIntent && !done[rec.Seq] {
			open = append(open, rec)
		}
	}
	rep.OpenIntents = len(open)
	if len(open) == 0 && torn == 0 {
		return rep, nil
	}

	m, _, err := r.load()
	if err != nil {
		return nil, err
	}
	// Blobs protected from reclamation: everything the manifest
	// references, plus the target of any open save intent other than
	// the one being reconciled (it will be judged by its own intent).
	inManifest := make(map[string]bool, len(m.Runs))
	for _, info := range m.Runs {
		inManifest[info.Object] = true
	}

	reclaim := func(object string) error {
		if object == "" || inManifest[object] {
			return nil
		}
		if !r.store.Exists(object) {
			return nil
		}
		if err := r.store.Delete(object); err != nil && !errors.Is(err, storage.ErrNotFound) {
			return err
		}
		rep.OrphansReclaimed = append(rep.OrphansReclaimed, object)
		return nil
	}

	for _, intent := range open {
		switch intent.Op {
		case opSave:
			if m.find(intent.RunID) >= 0 {
				// The manifest update landed: the save committed and
				// only the done record is missing.
				rep.Completed++
			} else {
				// Acceptance never became durable: reclaim the blob.
				if err := reclaim(intent.Object); err != nil {
					return nil, err
				}
				rep.RolledBack++
			}
		case opDelete:
			if m.find(intent.RunID) >= 0 {
				// Manifest untouched: the delete never took effect and
				// the caller never got an ack. Leave the run alone.
				rep.RolledBack++
			} else {
				if err := reclaim(intent.Object); err != nil {
					return nil, err
				}
				rep.Completed++
			}
		case opGC:
			// The victim set recorded at intent time may be stale
			// (the CAS loop can recompute it); reclaim exactly the
			// recorded victims that did lose their manifest entry.
			for _, id := range intent.Victims {
				if m.find(id) >= 0 {
					continue
				}
				if err := reclaim(runObject(id)); err != nil {
					return nil, err
				}
			}
			rep.Completed++
		}
		r.logReplay(intent)
	}

	// Compact: every intent is settled, so the history (and any torn
	// tail) can be dropped wholesale.
	if _, err := r.store.Put(JournalObject, nil); err != nil {
		return nil, fmt.Errorf("repo: journal compact: %w", err)
	}
	r.m.journalReplays.Add(int64(len(open)))
	return rep, nil
}

func (r *Repo) logReplay(intent journalRecord) {
	r.obs.Emit("repo", "journal-replay",
		fmt.Sprintf("replayed open %s intent seq %d (run %q)", intent.Op, intent.Seq, intent.RunID))
}

// compactJournalIfSettled opportunistically truncates the journal once
// it grows past threshold bytes, but only when every recorded intent
// is closed — an open intent belongs to a mutation still in flight (or
// to a crashed writer, which Recover owns).
func (r *Repo) compactJournalIfSettled(threshold int) {
	obj, err := r.store.Get(JournalObject)
	if err != nil || len(obj.Data) < threshold {
		return
	}
	recs, torn, err := readJournal(r.store)
	if err != nil || torn > 0 {
		return
	}
	done := make(map[uint64]bool)
	for _, rec := range recs {
		if rec.Phase == phaseDone {
			done[rec.Seq] = true
		}
	}
	for _, rec := range recs {
		if rec.Phase == phaseIntent && !done[rec.Seq] {
			return
		}
	}
	// A concurrent mutation may append between the read and this
	// rewrite; tolerate losing the race by writing only when the
	// object is unchanged (generation-checked swap).
	_, _ = r.store.PutIf(JournalObject, nil, obj.Generation)
}

// journalCompactThreshold is the journal size past which settled
// history is opportunistically truncated.
const journalCompactThreshold = 256 << 10

// sortedUnique returns a sorted copy of ids with duplicates removed —
// journal victim lists stay deterministic regardless of map order.
func sortedUnique(ids []string) []string {
	out := append([]string(nil), ids...)
	sort.Strings(out)
	j := 0
	for i, id := range out {
		if i == 0 || id != out[j-1] {
			out[j] = id
			j++
		}
	}
	return out[:j]
}

// isRepoInternalObject reports whether name is repository bookkeeping
// rather than run data — the manifest and the journal live under the
// runs/ prefix but index it.
func isRepoInternalObject(name string) bool {
	return name == ManifestObject || name == JournalObject
}

// runIDFromObject inverts runObject: runs/<id>/archive → <id>, "" for
// anything else.
func runIDFromObject(name string) string {
	if !strings.HasPrefix(name, "runs/") || !strings.HasSuffix(name, "/archive") {
		return ""
	}
	id := strings.TrimSuffix(strings.TrimPrefix(name, "runs/"), "/archive")
	if id == "" || strings.Contains(id, "/") {
		return ""
	}
	return id
}
