// Write-ahead intent journal: the crash-consistency spine of the
// repository. Every mutating operation (Save, Delete, GC, Compact, and
// the fleet's finalize, which lands as a Save) appends a CRC-framed
// intent record to its shard's journal object *before* it touches any
// blob or manifest, and a matching done record after the mutation
// fully commits or fully rolls back. A process that dies mid-mutation
// leaves an open intent behind; Recover replays every journal on open
// and drives each open intent to one of the two legal end states, so
// the manifests and the blob set always reconverge:
//
//   - save intent, run in manifest        → mutation committed; nothing to do
//   - save intent, run absent             → roll back: reclaim the orphan blob
//   - delete intent, run still in manifest → mutation never took effect; no-op
//   - delete intent, run absent           → complete: reclaim the leftover
//     object unless other runs still reference it (a shared pack)
//   - gc intent                           → complete: reclaim every recorded
//     victim object no longer referenced by any manifest
//   - compact intent, pack absent          → roll back: nothing durable
//     happened, the member blobs are untouched
//   - compact intent, pack present+valid   → roll forward: repoint members
//     still on their old blobs, reclaim superseded blobs
//
// Journal frame layout (little-endian), chosen so a torn tail — the
// power cut landing mid-append — is detectable and trimmable:
//
//	u32 payloadLen | u32 crc32c(payload) | payload (JSON journalRecord)
//
// Journals are append-only objects (storage.Bucket.Append); the only
// non-append writes are the compaction rewrites at the end of a
// successful Recover, once every intent is settled. A v1 repository
// has one journal (runs/.journal); a sharded one has one per shard
// (runs/.journal-<i>), all sharing a single in-process seq counter so
// intent/done pairs stay unambiguous across journals.
package repo

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/archive"
	"repro/internal/storage"
)

// JournalObject is the bucket object holding the intent journal in the
// v1 single-shard layout.
const JournalObject = "runs/.journal"

// journalFrameOverhead is the per-record framing cost: u32 length +
// u32 crc32c.
const journalFrameOverhead = 8

// maxJournalPayload bounds a single journal record on read; anything
// larger is corruption, not data (records are small JSON documents).
const maxJournalPayload = 1 << 20

var journalTable = crc32.MakeTable(crc32.Castagnoli)

// Journal operation and phase names.
const (
	opSave    = "save"
	opDelete  = "delete"
	opGC      = "gc"
	opCompact = "compact"
	// opSaveBatch is a group-commit round's intent (ingestor.go): its
	// Members list carries one {RunID, Object} pair per save in the
	// round, and recovery replays it member-wise as k independent save
	// intents.
	opSaveBatch = "save-batch"

	phaseIntent = "intent"
	phaseDone   = "done"
)

// packMember is one run's slot in a compaction intent: where its bytes
// lived before the pack and where they land inside it.
type packMember struct {
	RunID  string `json:"run_id"`
	Object string `json:"object"` // pre-compaction blob
	Offset int64  `json:"offset"`
	Length int64  `json:"length"`
}

// journalRecord is one framed journal entry. Seq pairs an intent with
// its done record; an intent whose seq has no done record is open.
type journalRecord struct {
	Seq     uint64   `json:"seq"`
	Op      string   `json:"op"`
	Phase   string   `json:"phase"`
	RunID   string   `json:"run_id,omitempty"`
	Object  string   `json:"object,omitempty"`
	Victims []string `json:"victims,omitempty"`
	// Objects lists the victim *objects* of a GC intent — distinct from
	// Victims (run IDs) because a packed victim's object is a shared
	// pack that recovery must reference-check before reclaiming.
	Objects []string `json:"objects,omitempty"`
	// Members is a compaction intent's layout of the pack in Object.
	Members []packMember `json:"members,omitempty"`
}

// appendFrame CRC-frames payload and appends it to object. The append
// is the durability point for both the intent journals and the fleet's
// per-session logs: a frame either lands whole or its torn prefix is
// detected and trimmed by readFrames.
func appendFrame(store Store, object string, payload []byte) error {
	frame := make([]byte, journalFrameOverhead+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, journalTable))
	copy(frame[journalFrameOverhead:], payload)
	_, err := store.Append(object, frame)
	return err
}

// readFrames decodes a CRC-framed object leniently: it stops at the
// first torn or checksum-failing frame and reports both the intact
// prefix length and how many tail bytes it discarded. A missing object
// is an empty history. maxPayload bounds a single frame (anything
// larger is corruption, not data).
func readFrames(store Store, object string, maxPayload int) (frames [][]byte, intact, torn int, err error) {
	obj, err := store.Get(object)
	if errors.Is(err, storage.ErrNotFound) {
		return nil, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, err
	}
	data := obj.Data
	pos := 0
	for pos < len(data) {
		if pos+journalFrameOverhead > len(data) {
			break
		}
		n := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		want := binary.LittleEndian.Uint32(data[pos+4 : pos+8])
		if n > maxPayload || pos+journalFrameOverhead+n > len(data) {
			break
		}
		payload := data[pos+journalFrameOverhead : pos+journalFrameOverhead+n]
		if crc32.Checksum(payload, journalTable) != want {
			break
		}
		frames = append(frames, payload)
		pos += journalFrameOverhead + n
	}
	return frames, pos, len(data) - pos, nil
}

// appendJournalTo frames rec and appends it to the named journal.
func (r *Repo) appendJournalTo(journal string, rec journalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := appendFrame(r.store, journal, payload); err != nil {
		return fmt.Errorf("repo: journal append: %w", err)
	}
	return nil
}

// logIntentAt stamps rec as an intent with a fresh seq, appends it to
// the named journal, and returns the seq for the matching done record.
func (r *Repo) logIntentAt(journal string, rec journalRecord) (uint64, error) {
	rec.Seq = atomic.AddUint64(&r.journalSeq, 1)
	rec.Phase = phaseIntent
	return rec.Seq, r.appendJournalTo(journal, rec)
}

// logIntent appends an intent record to the journal of the shard
// owning runID and returns its seq. (Operations that already resolved
// their shard use logIntentAt directly.)
func (r *Repo) logIntent(op, runID, object string, victims []string) (uint64, error) {
	ss, err := r.resolveShards()
	if err != nil {
		return 0, err
	}
	return r.logIntentAt(ss.journalObject(ss.shardOf(runID)), journalRecord{
		Op: op, RunID: runID, Object: object, Victims: victims,
	})
}

// logDoneAt appends the done record closing intent seq to the journal
// that holds it. A failure here is harmless-by-design: the next
// Recover replays the intent, finds the mutation already settled, and
// closes it then.
func (r *Repo) logDoneAt(journal string, seq uint64, op string) {
	_ = r.appendJournalTo(journal, journalRecord{Seq: seq, Op: op, Phase: phaseDone})
}

// logDone closes intent seq in the v1 journal — the legacy counterpart
// of logIntent for callers that never resolved a shard.
func (r *Repo) logDone(seq uint64, op string) {
	ss, err := r.resolveShards()
	if err != nil {
		return
	}
	r.logDoneAt(ss.journalObject(0), seq, op)
}

// readJournalObject decodes one journal leniently: it stops at the
// first torn or CRC-failing frame (the bytes a power cut left behind)
// and reports how many tail bytes it discarded. A missing or empty
// journal is an empty history.
func readJournalObject(store Store, object string) (recs []journalRecord, tornBytes int, err error) {
	frames, _, torn, err := readFrames(store, object, maxJournalPayload)
	if err != nil {
		return nil, 0, err
	}
	for i, payload := range frames {
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// A framed-but-undecodable record poisons the tail: the
			// bytes from this frame on count as torn.
			for _, rest := range frames[i:] {
				torn += journalFrameOverhead + len(rest)
			}
			return recs, torn, nil
		}
		recs = append(recs, rec)
	}
	return recs, torn, nil
}

// readJournal reads the v1 journal object.
func readJournal(store Store) ([]journalRecord, int, error) {
	return readJournalObject(store, JournalObject)
}

// RecoveryReport summarizes one replay over every journal.
type RecoveryReport struct {
	// Records is how many intact journal records the replay scanned.
	Records int
	// TornBytes is the size of the discarded torn tails, if any.
	TornBytes int
	// OpenIntents is how many intents had no done record and were
	// reconciled.
	OpenIntents int
	// Completed counts open intents whose mutation had already fully
	// committed (only the done record was missing).
	Completed int
	// RolledBack counts open intents whose mutation was undone.
	RolledBack int
	// OrphansReclaimed lists blob objects deleted during replay —
	// save rollbacks, unfinished GC victims, superseded or abandoned
	// compaction state.
	OrphansReclaimed []string
}

// Clean reports whether the replay found nothing to repair.
func (rr *RecoveryReport) Clean() bool {
	return rr.OpenIntents == 0 && rr.TornBytes == 0
}

// journalState is one journal's decoded history plus whether the
// stored object has any bytes worth compacting away.
type journalState struct {
	name string
	recs []journalRecord
	torn int
	// done maps intent seqs to their done records WITHIN this journal.
	// Matching must stay per-journal: every writer logs an intent and
	// its done to the same journal object, but two replica processes
	// each start their own journalSeq counter — a seq is only unique
	// per (process, journal), so a global map could let replica A's
	// done mask replica B's open intent.
	done map[uint64]bool
}

// recoverJournals lists the journals Recover may replay. A standalone
// repository replays everything; a replica-scoped one (OpenShardsOwned)
// replays only its owned shards' journals — peers may be alive with
// open intents in theirs, and rolling those back would destroy
// in-flight saves. Legacy debris is also skipped in scoped mode: it
// predates the replica layout and belongs to a full (sole-writer) Open.
func (r *Repo) recoverJournals(ss shardSet) []string {
	names := r.journalObjects(ss)
	if r.recoverOwned == nil || ss.legacy {
		return names
	}
	owned := make(map[string]bool, len(r.recoverOwned))
	for _, si := range r.recoverOwned {
		if si >= 0 && si < ss.n {
			owned[ss.journalObject(si)] = true
		}
	}
	scoped := names[:0]
	for _, name := range names {
		if owned[name] {
			scoped = append(scoped, name)
		}
	}
	return scoped
}

// Recover replays every intent journal and reconciles every open
// intent, returning what it did. It must be called before the
// repository serves mutations when the underlying store may hold the
// debris of a crashed writer — Open does it automatically. Recover is
// idempotent: a second replay over the same store finds clean
// journals.
func (r *Repo) Recover() (*RecoveryReport, error) {
	ss, err := r.resolveShards()
	if err != nil {
		return nil, err
	}
	rep := &RecoveryReport{}
	var states []journalState
	for _, name := range r.recoverJournals(ss) {
		recs, torn, err := readJournalObject(r.store, name)
		if err != nil {
			return nil, err
		}
		states = append(states, journalState{name: name, recs: recs, torn: torn})
		rep.Records += len(recs)
		rep.TornBytes += torn
	}

	maxSeq := uint64(0)
	for i := range states {
		st := &states[i]
		st.done = make(map[uint64]bool)
		for _, rec := range st.recs {
			if rec.Seq > maxSeq {
				maxSeq = rec.Seq
			}
			if rec.Phase == phaseDone {
				st.done[rec.Seq] = true
			}
		}
	}
	// Future intents must not collide with replayed seqs.
	for {
		cur := atomic.LoadUint64(&r.journalSeq)
		if cur >= maxSeq || atomic.CompareAndSwapUint64(&r.journalSeq, cur, maxSeq) {
			break
		}
	}

	// Open intents, globally seq-ordered (the seq counter is shared
	// across journals). Compaction intents reconcile after the others:
	// they re-read the manifests they mutate, so they must see the
	// final word on every save/delete/gc rollback first.
	var open, openCompacts []journalRecord
	for _, st := range states {
		for _, rec := range st.recs {
			if rec.Phase != phaseIntent || st.done[rec.Seq] {
				continue
			}
			if rec.Op == opCompact {
				openCompacts = append(openCompacts, rec)
			} else {
				open = append(open, rec)
			}
		}
	}
	sort.Slice(open, func(i, j int) bool { return open[i].Seq < open[j].Seq })
	sort.Slice(openCompacts, func(i, j int) bool { return openCompacts[i].Seq < openCompacts[j].Seq })
	rep.OpenIntents = len(open) + len(openCompacts)
	if rep.OpenIntents == 0 && rep.TornBytes == 0 {
		return rep, nil
	}

	ms, _, err := r.loadAllShards(ss)
	if err != nil {
		return nil, err
	}
	// Objects protected from reclamation: everything any manifest
	// references (a pack stays protected while one member survives).
	inManifest := make(map[string]bool)
	for _, info := range mergedRuns(ms) {
		inManifest[info.Object] = true
	}

	reclaim := func(object string) error {
		if object == "" || inManifest[object] {
			return nil
		}
		if !r.store.Exists(object) {
			return nil
		}
		if err := r.store.Delete(object); err != nil && !errors.Is(err, storage.ErrNotFound) {
			return err
		}
		rep.OrphansReclaimed = append(rep.OrphansReclaimed, object)
		return nil
	}

	for _, intent := range open {
		switch intent.Op {
		case opSave:
			if findRun(ms, intent.RunID) != nil {
				// The manifest update landed: the save committed and
				// only the done record is missing.
				rep.Completed++
			} else {
				// Acceptance never became durable: reclaim the blob.
				if err := reclaim(intent.Object); err != nil {
					return nil, err
				}
				rep.RolledBack++
			}
		case opSaveBatch:
			// Member-wise replay: each member is an independent save —
			// committed if its run reached the manifest, otherwise its
			// blob is reclaimed.
			rolled := false
			for _, mb := range intent.Members {
				if findRun(ms, mb.RunID) != nil {
					continue
				}
				if err := reclaim(mb.Object); err != nil {
					return nil, err
				}
				rolled = true
			}
			if rolled {
				rep.RolledBack++
			} else {
				rep.Completed++
			}
		case opDelete:
			if findRun(ms, intent.RunID) != nil {
				// Manifest untouched: the delete never took effect and
				// the caller never got an ack. Leave the run alone.
				rep.RolledBack++
			} else {
				if err := reclaim(intent.Object); err != nil {
					return nil, err
				}
				rep.Completed++
			}
		case opGC:
			// The victim set recorded at intent time may be stale
			// (the CAS loop can recompute it); reclaim exactly the
			// recorded victims that did lose their manifest entry.
			for _, id := range intent.Victims {
				if findRun(ms, id) != nil {
					continue
				}
				if err := reclaim(runObject(id)); err != nil {
					return nil, err
				}
			}
			// Packed victims recorded their shared object explicitly;
			// inManifest protects it while any sibling survives.
			for _, object := range intent.Objects {
				if err := reclaim(object); err != nil {
					return nil, err
				}
			}
			rep.Completed++
		}
		r.logReplay(intent)
	}

	for _, intent := range openCompacts {
		if err := r.recoverCompact(ss, intent, rep); err != nil {
			return nil, err
		}
		r.logReplay(intent)
	}

	// Compact: every intent is settled, so each journal's history (and
	// any torn tail) can be dropped wholesale.
	for _, st := range states {
		if len(st.recs) == 0 && st.torn == 0 {
			continue
		}
		if _, err := r.store.Put(st.name, nil); err != nil {
			return nil, fmt.Errorf("repo: journal compact: %w", err)
		}
	}
	r.m.journalReplays.Add(int64(rep.OpenIntents))
	return rep, nil
}

// recoverCompact reconciles one open compaction intent. The pack Put
// is the commit point: a missing pack means nothing durable happened
// (the member blobs are untouched — pure rollback); a present, valid
// pack rolls forward — members whose entries still address their old
// blobs are repointed into the pack, superseded blobs are reclaimed,
// and a pack no member ended up referencing is dropped.
func (r *Repo) recoverCompact(ss shardSet, intent journalRecord, rep *RecoveryReport) error {
	pack := intent.Object
	obj, err := r.store.Get(pack)
	if errors.Is(err, storage.ErrNotFound) {
		rep.RolledBack++
		return nil
	}
	if err != nil {
		return err
	}
	valid := true
	for _, mb := range intent.Members {
		end := mb.Offset + mb.Length
		if mb.Offset < 0 || end > int64(len(obj.Data)) {
			valid = false
			break
		}
		if _, aerr := archive.OpenWorkers(obj.Data[mb.Offset:end], r.workers); aerr != nil {
			valid = false
			break
		}
	}
	if !valid {
		// Put is atomic, so an invalid pack is bit rot rather than a
		// torn write; nothing can have been repointed into it safely.
		// Drop it unless some entry references it (then Fsck owns the
		// repair).
		referenced, rerr := r.packReferenced(ss, pack)
		if rerr != nil {
			return rerr
		}
		if !referenced {
			if derr := r.store.Delete(pack); derr != nil && !errors.Is(derr, storage.ErrNotFound) {
				return derr
			}
			rep.OrphansReclaimed = append(rep.OrphansReclaimed, pack)
		}
		rep.RolledBack++
		return nil
	}
	packUsed := false
	for _, mb := range intent.Members {
		si := ss.shardOf(mb.RunID)
		usesPack := false
		err := r.updateShardIdx(ss, si, func(m *manifest) error {
			usesPack = false
			i := m.find(mb.RunID)
			if i < 0 {
				return nil
			}
			e := &m.Runs[i]
			if e.Object == pack {
				// Already repointed before the crash.
				usesPack = true
				return nil
			}
			if e.Object != mb.Object || e.packed() || e.Bytes != mb.Length {
				// The entry moved on (re-saved, repaired); leave it.
				return nil
			}
			e.Object, e.Offset, e.Length = pack, mb.Offset, mb.Length
			usesPack = true
			return nil
		})
		if err != nil {
			return err
		}
		if usesPack {
			packUsed = true
		}
		// The member's pre-compaction blob is superseded unless some
		// entry (a re-save of the same run ID lands at the same object
		// name) still references it — the scan, not the repoint outcome,
		// decides: a cut after the repoint but before the delete leaves
		// an already-repointed entry whose old blob still lingers.
		referenced := false
		ms, _, lerr := r.loadAllShards(ss)
		if lerr != nil {
			return lerr
		}
		for _, e := range mergedRuns(ms) {
			if e.Object == mb.Object {
				referenced = true
				break
			}
		}
		if !referenced && r.store.Exists(mb.Object) {
			if derr := r.store.Delete(mb.Object); derr != nil && !errors.Is(derr, storage.ErrNotFound) {
				return derr
			}
			rep.OrphansReclaimed = append(rep.OrphansReclaimed, mb.Object)
		}
	}
	if !packUsed {
		if derr := r.store.Delete(pack); derr != nil && !errors.Is(derr, storage.ErrNotFound) {
			return derr
		}
		rep.OrphansReclaimed = append(rep.OrphansReclaimed, pack)
	}
	rep.Completed++
	return nil
}

func (r *Repo) logReplay(intent journalRecord) {
	r.obs.Emit("repo", "journal-replay",
		fmt.Sprintf("replayed open %s intent seq %d (run %q)", intent.Op, intent.Seq, intent.RunID))
}

// compactJournalIfSettled opportunistically truncates each journal
// once it grows past threshold bytes, but only when every intent it
// records is closed — an open intent belongs to a mutation still in
// flight (or to a crashed writer, which Recover owns).
func (r *Repo) compactJournalIfSettled(threshold int) {
	ss, err := r.resolveShards()
	if err != nil {
		return
	}
	// Same scoping as Recover: a replica truncates only its own
	// journals (the generation-checked swap already tolerates races,
	// but a peer's journal is simply not ours to rewrite).
	for _, name := range r.recoverJournals(ss) {
		r.compactJournalObject(name, threshold)
	}
}

func (r *Repo) compactJournalObject(name string, threshold int) {
	obj, err := r.store.Get(name)
	if err != nil || len(obj.Data) < threshold {
		return
	}
	recs, torn, err := readJournalObject(r.store, name)
	if err != nil || torn > 0 {
		return
	}
	done := make(map[uint64]bool)
	for _, rec := range recs {
		if rec.Phase == phaseDone {
			done[rec.Seq] = true
		}
	}
	for _, rec := range recs {
		if rec.Phase == phaseIntent && !done[rec.Seq] {
			return
		}
	}
	// A concurrent mutation may append between the read and this
	// rewrite; tolerate losing the race by writing only when the
	// object is unchanged (generation-checked swap).
	_, _ = r.store.PutIf(name, nil, obj.Generation)
}

// journalCompactThreshold is the journal size past which settled
// history is opportunistically truncated.
const journalCompactThreshold = 256 << 10

// sortedUnique returns a sorted copy of ids with duplicates removed —
// journal victim lists stay deterministic regardless of map order.
func sortedUnique(ids []string) []string {
	out := append([]string(nil), ids...)
	sort.Strings(out)
	j := 0
	for i, id := range out {
		if i == 0 || id != out[j-1] {
			out[j] = id
			j++
		}
	}
	return out[:j]
}

// isRepoInternalObject reports whether name is repository bookkeeping
// rather than run data — the manifests, journals, and layout object
// live under the runs/ prefix but index it. Pack objects are data, not
// bookkeeping: Fsck verifies them through the entries that reference
// them.
func isRepoInternalObject(name string) bool {
	if name == ManifestObject || name == JournalObject || name == LayoutObject {
		return true
	}
	return isShardManifestObject(name) || isShardJournalObject(name)
}

// runIDFromObject inverts runObject: runs/<id>/archive → <id>, "" for
// anything else.
func runIDFromObject(name string) string {
	if !strings.HasPrefix(name, "runs/") || !strings.HasSuffix(name, "/archive") {
		return ""
	}
	id := strings.TrimSuffix(strings.TrimPrefix(name, "runs/"), "/archive")
	if id == "" || strings.Contains(id, "/") {
		return ""
	}
	return id
}
