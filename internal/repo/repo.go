// Package repo is the multi-run profile repository: an index of
// profile archives (internal/archive) stored in a bucket, plus the
// cross-run diff engine the paper's evaluation implies — every table
// comparing BERT to DCGAN or TPUv2 to TPUv3 is a query over a
// collection of runs, and this package makes that collection durable
// and addressable.
//
// Layout inside the bucket (v1, single shard):
//
//	runs/manifest.json    — JSON index of every run + the seq allocator
//	runs/<run-id>/archive — the archive blob
//
// A sharded repository (see shard.go) splits the index across M
// manifest shards hashed by run ID, each with its own CAS loop and
// intent journal, and may consolidate small archives into pack objects
// under runs/.pack/ (see compact.go); a manifest entry then addresses
// a byte window of the shared pack.
//
// Manifests are updated with a compare-and-swap loop over
// storage.Bucket.PutIf, so concurrent writers (the fleet endpoint
// finalizing several sessions at once) serialize safely: each retry
// re-reads the latest manifest at its generation, backs off with
// deterministic jitter, and re-applies its mutation.
//
// Mutations are crash-consistent: each one is bracketed by a
// write-ahead intent record in the owning shard's journal object
// (journal.go), and Open replays every journal so a process death at
// any write boundary leaves a repository that reconverges on recovery
// — see the recovery invariants in DESIGN.md and the power-cut
// property suite in crash_test.go.
package repo

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/obs"
	"repro/internal/prng"
	"repro/internal/rpc"
	"repro/internal/simclock"
	"repro/internal/storage"
)

// Store is the mutable object-store surface the repository (and the
// fleet endpoint's durable session logs) write through. *storage.Bucket
// implements it directly; fault decorators (faultnet.CrashStore) wrap
// it to script power cuts at write boundaries. Stores that additionally
// implement storage.RangeReader serve packed-run reads without
// materializing the whole pack.
type Store interface {
	Get(name string) (*storage.Object, error)
	Put(name string, data []byte) (*storage.Object, error)
	PutIf(name string, data []byte, gen int64) (*storage.Object, error)
	Append(name string, data []byte) (*storage.Object, error)
	Delete(name string) error
	Exists(name string) bool
	List(prefix string) []string
}

var (
	_ Store = (*storage.Bucket)(nil)
	_ Store = (*storage.DirStore)(nil)
)

// ManifestObject is the bucket object holding the run index in the v1
// single-shard layout.
const ManifestObject = "runs/manifest.json"

// casRetries bounds a manifest shard's compare-and-swap loop. Every
// failed CAS proves some other writer committed, so with backoff the
// budget is consumed only while distinct writers keep winning — 512
// outlasts any realistic burst (256 concurrent agents each commit once
// and drain) without spinning forever on a truly wedged store.
const casRetries = 512

// Repository errors.
var (
	ErrRunExists   = errors.New("repo: run already exists")
	ErrRunNotFound = errors.New("repo: run not found")
	// ErrManifestContention wraps rpc.ErrBusy: a CAS loop that exhausts
	// its retries is a saturated-but-alive repository, exactly the
	// condition rpc.IsTransient tells ReconnectClient and fleet agents
	// to back off and retry rather than surface to an acked writer.
	ErrManifestContention = fmt.Errorf("repo: manifest contention: %w", rpc.ErrBusy)
)

// RunInfo is one manifest entry: everything list/show need without
// opening the archive blob. A packed run (compact.go) sets Object to
// the shared pack and Offset/Length to its byte window; Length == 0
// means the object is the run's private blob.
type RunInfo struct {
	RunID      string        `json:"run_id"`
	Workload   string        `json:"workload"`
	Label      string        `json:"label,omitempty"`
	Tenant     string        `json:"tenant,omitempty"`
	HostSpec   string        `json:"host_spec,omitempty"`
	TPUVersion string        `json:"tpu_version,omitempty"`
	CreatedSeq uint64        `json:"created_seq"`
	Records    int64         `json:"records"`
	Windows    int64         `json:"windows"`
	Bytes      int64         `json:"bytes"`
	TimeFirst  simclock.Time `json:"time_first"`
	TimeLast   simclock.Time `json:"time_last"`
	Object     string        `json:"object"`
	Offset     int64         `json:"offset,omitempty"`
	Length     int64         `json:"length,omitempty"`
}

// packed reports whether the entry addresses a window of a shared pack
// object rather than a private blob.
func (info RunInfo) packed() bool { return info.Length > 0 }

// manifest is the stored index document (one per shard; NextSeq is the
// shard-local sequence counter — see shard.go for the global mapping).
type manifest struct {
	NextSeq uint64    `json:"next_seq"`
	Runs    []RunInfo `json:"runs"`
}

func (m *manifest) find(runID string) int {
	for i := range m.Runs {
		if m.Runs[i].RunID == runID {
			return i
		}
	}
	return -1
}

// repoMetrics are the repository's recovery/durability instruments.
type repoMetrics struct {
	journalReplays *obs.Counter
	fsckIssues     *obs.Counter
	fsckRepairs    *obs.Counter
	salvagedSegs   *obs.Counter
	casRetries     *obs.Counter
	casExhausted   *obs.Counter
	compactPacks   *obs.Counter
	compactRuns    *obs.Counter
	compactBytes   *obs.Counter
}

func newRepoMetrics(r *obs.Registry) repoMetrics {
	return repoMetrics{
		journalReplays: r.Counter("repo.journal.replays"),
		fsckIssues:     r.Counter("repo.fsck.issues"),
		fsckRepairs:    r.Counter("repo.fsck.repairs"),
		salvagedSegs:   r.Counter("repo.salvage.segments.recovered"),
		casRetries:     r.Counter("repo.manifest.cas.retries"),
		casExhausted:   r.Counter("repo.manifest.cas.exhausted"),
		compactPacks:   r.Counter("repo.compact.packs"),
		compactRuns:    r.Counter("repo.compact.runs"),
		compactBytes:   r.Counter("repo.compact.bytes"),
	}
}

// Repo is a run repository over one store. Safe for concurrent use:
// all index mutations go through per-shard manifest CAS loops, and
// every mutation is journaled (journal.go) so a crash at any write
// boundary is recoverable.
type Repo struct {
	store      Store
	workers    int
	obs        *obs.Registry
	m          repoMetrics
	journalSeq uint64 // atomic; intent/done pairing

	wantShards int        // OpenShards target for fresh stores; 0 = keep what exists
	layoutMu   sync.Mutex // guards shards
	shards     *shardSet  // cached layout; nil until resolved

	// recoverOwned scopes journal replay and truncation to these shard
	// indices (OpenShardsOwned). Nil means all journals — the
	// standalone, sole-writer default.
	recoverOwned []int

	seqMu      sync.Mutex // guards the seq lease state below
	lease      seqLease
	leaseShard int    // rotation cursor for the next block lease
	lastSeq    uint64 // highest seq issued or observed by this process

	sleep func(time.Duration) // CAS backoff sleeper; injectable in tests
	rngMu sync.Mutex
	rng   *prng.Source

	inflightMu sync.Mutex
	inflight   map[string]struct{} // run IDs with an in-process Save

	compactMu sync.Mutex // serializes Compact within the process
}

// New returns a repository over store. An empty store is an empty v1
// repository; no initialization is needed. New does NOT replay the
// intent journal — use Open when the store may hold the debris of a
// crashed writer, or call Recover explicitly.
func New(store Store) *Repo {
	return &Repo{
		store:    store,
		m:        newRepoMetrics(nil),
		sleep:    time.Sleep,
		rng:      prng.New(nextRepoSeed()),
		inflight: make(map[string]struct{}),
	}
}

// Open returns a repository over store after replaying its intent
// journals, so interrupted mutations from a previous process are
// completed or rolled back before any new ones start. The store's
// existing layout — v1 single-manifest or sharded — is preserved; use
// OpenShards to migrate. This is the constructor every durable
// deployment (the CLI, the collection server) should use.
func Open(store Store) (*Repo, *RecoveryReport, error) {
	return OpenShards(store, 0)
}

// OpenShards is Open with a target shard count. shards > 1 migrates a
// v1 single-manifest store (or initializes a fresh one) to that many
// shards; a store that is already sharded keeps its existing count.
// shards <= 1 preserves whatever layout the store has, exactly like
// Open. Migration requires this process to be the only writer.
func OpenShards(store Store, shards int) (*Repo, *RecoveryReport, error) {
	if shards > MaxShards {
		return nil, nil, fmt.Errorf("repo: %d shards exceeds the %d maximum", shards, MaxShards)
	}
	r := New(store)
	r.wantShards = shards
	rep, err := r.Recover()
	if err != nil {
		return nil, nil, err
	}
	ss, err := r.resolveShards()
	if err != nil {
		return nil, nil, err
	}
	switch {
	case shards > 1 && ss.legacy:
		if err := r.migrateToShards(shards); err != nil {
			return nil, nil, err
		}
	case !ss.legacy:
		// Finish an interrupted migration's cleanup (the layout object
		// committed but the legacy objects lingered).
		r.cleanupLegacy()
	}
	return r, rep, nil
}

// OpenShardsOwned is OpenShards for one replica of a collector fleet
// sharing the store: journal replay (and later opportunistic journal
// truncation) touches ONLY the owned shards' journals, because peer
// replicas may be alive with open intents in theirs — a full replay
// would roll back their in-flight saves. It never migrates layouts
// (migration needs a sole writer); a fresh store still initializes
// the sharded layout via the usual PutIf(gen 0) race, which concurrent
// replicas lose gracefully.
//
// Ownership changes are the caller's contract: a replica must be
// opened with exactly the shards its current ReplicaConfig assigns
// (OwnedShards), so an adopted shard's journal is recovered by its new
// owner before that owner writes to it.
func OpenShardsOwned(store Store, shards int, owned []int) (*Repo, *RecoveryReport, error) {
	if shards > MaxShards {
		return nil, nil, fmt.Errorf("repo: %d shards exceeds the %d maximum", shards, MaxShards)
	}
	r := New(store)
	r.wantShards = shards
	r.recoverOwned = append([]int{}, owned...)
	rep, err := r.Recover()
	if err != nil {
		return nil, nil, err
	}
	if _, err := r.resolveShards(); err != nil {
		return nil, nil, err
	}
	return r, rep, nil
}

// SetObs points the repository's durability metrics (journal replays,
// fsck repairs, salvage counts, CAS contention, compaction volume) and
// recovery events at reg.
func (r *Repo) SetObs(reg *obs.Registry) {
	r.obs = reg
	r.m = newRepoMetrics(reg)
}

// SetCodecParallelism bounds the worker fan-out archive opens use for
// segment checksum verification (0 = GOMAXPROCS, 1 = serial). Results
// are identical for any value — only wall-clock changes. Applies to
// Get, Save validation, and everything built on them (Compare, the
// fleet's finalize path saves through the same bucket).
func (r *Repo) SetCodecParallelism(n int) { r.workers = n }

func runObject(runID string) string { return "runs/" + runID + "/archive" }

// load reads shard 0's manifest and its generation (0 = not created
// yet) — in a v1 repository, the whole index.
func (r *Repo) load() (*manifest, int64, error) {
	ss, err := r.resolveShards()
	if err != nil {
		return nil, 0, err
	}
	return r.loadManifestObject(ss.manifestObject(0))
}

// update applies mut to shard 0's manifest under the CAS loop — in a
// v1 repository, the whole index. mut may be called multiple times; it
// must be idempotent on its input.
func (r *Repo) update(mut func(*manifest) error) error {
	ss, err := r.ensureShards()
	if err != nil {
		return err
	}
	return r.updateShardIdx(ss, 0, mut)
}

// NextSeq allocates the next logical creation sequence number. Archives
// carry it as Meta.CreatedSeq so listings sort by creation order
// without any wall clock (deterministic runs stay deterministic).
// Allocation is block-leased: one manifest CAS buys seqBlockSize
// values, and within a process the returned values are strictly
// increasing even as leases rotate across shards (see shard.go).
func (r *Repo) NextSeq() (uint64, error) {
	ss, err := r.ensureShards()
	if err != nil {
		return 0, err
	}
	r.seqMu.Lock()
	defer r.seqMu.Unlock()
	if r.lease.stride != uint64(ss.n) || r.lease.next >= r.lease.end {
		if err := r.leaseSeqBlock(ss); err != nil {
			return 0, err
		}
	}
	seq := r.lease.next
	r.lease.next += r.lease.stride
	r.lastSeq = seq
	return seq, nil
}

// beginInflight claims runID for an in-process Save; a second
// concurrent claim fails, closing the duplicate-save race without any
// storage round-trip.
func (r *Repo) beginInflight(runID string) bool {
	r.inflightMu.Lock()
	defer r.inflightMu.Unlock()
	if _, busy := r.inflight[runID]; busy {
		return false
	}
	r.inflight[runID] = struct{}{}
	return true
}

func (r *Repo) endInflight(runID string) {
	r.inflightMu.Lock()
	delete(r.inflight, runID)
	r.inflightMu.Unlock()
}

// Save validates blob as an archive, stores it, and indexes the run on
// the shard owning its ID. The archive's Meta.RunID must be non-empty
// and unused. The mutation is journaled: an intent record lands before
// the blob write, so a crash between the blob Put and the manifest
// update (or during the rollback delete) leaves an orphan the next
// Recover reclaims instead of a blob GC can never see.
func (r *Repo) Save(blob []byte) (RunInfo, error) {
	a, err := archive.OpenWorkers(blob, r.workers)
	if err != nil {
		return RunInfo{}, fmt.Errorf("repo: refusing to save: %w", err)
	}
	meta := a.Meta()
	if meta.RunID == "" {
		return RunInfo{}, errors.New("repo: archive has no run ID")
	}
	first, last := a.TimeRange()
	info := RunInfo{
		RunID:      meta.RunID,
		Workload:   meta.Workload,
		Label:      meta.Label,
		Tenant:     meta.Tenant,
		HostSpec:   meta.HostSpec,
		TPUVersion: meta.TPUVersion,
		CreatedSeq: meta.CreatedSeq,
		Records:    a.RecordCount(),
		Windows:    a.WindowCount(),
		Bytes:      a.Size(),
		TimeFirst:  first,
		TimeLast:   last,
		Object:     runObject(meta.RunID),
	}
	ss, err := r.ensureShards()
	if err != nil {
		return RunInfo{}, err
	}
	// Two saves of one run ID in this process share the blob object
	// name; serialize them here so the loser never journals an intent
	// against bytes the winner owns.
	if !r.beginInflight(info.RunID) {
		return RunInfo{}, fmt.Errorf("%w: %q (save in flight)", ErrRunExists, info.RunID)
	}
	defer r.endInflight(info.RunID)
	si := ss.shardOf(info.RunID)
	jname := ss.journalObject(si)
	// Reject duplicates before any write: a doomed save must not
	// journal an intent against an object some committed run owns
	// (replaying such an intent would reclaim the original's blob).
	if m, _, err := r.loadManifestObject(ss.manifestObject(si)); err != nil {
		return RunInfo{}, err
	} else if m.find(info.RunID) >= 0 {
		return RunInfo{}, fmt.Errorf("%w: %q", ErrRunExists, info.RunID)
	}
	seq, err := r.logIntentAt(jname, journalRecord{
		Op: opSave, RunID: info.RunID, Object: info.Object,
	})
	if err != nil {
		return RunInfo{}, err
	}
	if _, err := r.store.Put(info.Object, blob); err != nil {
		return RunInfo{}, err
	}
	err = r.updateShardIdx(ss, si, func(m *manifest) error {
		if m.find(info.RunID) >= 0 {
			return fmt.Errorf("%w: %q", ErrRunExists, info.RunID)
		}
		m.Runs = append(m.Runs, info)
		return nil
	})
	if err != nil {
		if errors.Is(err, ErrRunExists) {
			// A concurrent save of the same run ID won the CAS. The
			// blob object name is shared, so it now belongs to the
			// winner's manifest entry — leave it, and close our
			// intent (a replay would find the run in the manifest and
			// do nothing anyway).
			r.logDoneAt(jname, seq, opSave)
			return RunInfo{}, err
		}
		// The update failed for some other reason (flaky storage, CAS
		// exhaustion). Re-verify under the shard index before rolling
		// back: a concurrent save of the same ID may have committed
		// between our pre-check and this failure, in which case the
		// blob now belongs to the winner and deleting it would reclaim
		// an indexed run's bytes.
		if m, _, lerr := r.loadManifestObject(ss.manifestObject(si)); lerr == nil && m.find(info.RunID) >= 0 {
			r.logDoneAt(jname, seq, opSave)
			return RunInfo{}, fmt.Errorf("%w: %q", ErrRunExists, info.RunID)
		}
		// Roll the blob back so a failed index never leaves an
		// unlisted orphan. If this delete itself fails (flaky or dead
		// storage), the open save intent remains and the next Recover
		// reclaims the blob — the orphan leak is closed by the
		// journal, not by hoping the delete succeeds (see
		// TestSaveRollbackFailureReclaimedByRecover).
		if derr := r.store.Delete(info.Object); derr == nil || errors.Is(derr, storage.ErrNotFound) {
			r.logDoneAt(jname, seq, opSave)
		}
		return RunInfo{}, err
	}
	r.logDoneAt(jname, seq, opSave)
	r.compactJournalIfSettled(journalCompactThreshold)
	return info, nil
}

// Filter selects runs for List; zero fields match everything.
type Filter struct {
	Workload string
	Label    string
	Tenant   string
}

func (f Filter) match(info RunInfo) bool {
	if f.Workload != "" && info.Workload != f.Workload {
		return false
	}
	if f.Label != "" && info.Label != f.Label {
		return false
	}
	if f.Tenant != "" && info.Tenant != f.Tenant {
		return false
	}
	return true
}

// List returns matching runs from every shard, sorted by creation
// sequence (run ID as a tiebreak so listings are total-ordered even if
// a foreign tool minted colliding sequences).
func (r *Repo) List(f Filter) ([]RunInfo, error) {
	ss, err := r.resolveShards()
	if err != nil {
		return nil, err
	}
	ms, _, err := r.loadAllShards(ss)
	if err != nil {
		return nil, err
	}
	var out []RunInfo
	for _, info := range mergedRuns(ms) {
		if f.match(info) {
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CreatedSeq != out[j].CreatedSeq {
			return out[i].CreatedSeq < out[j].CreatedSeq
		}
		return out[i].RunID < out[j].RunID
	})
	return out, nil
}

// Info returns one run's manifest entry.
func (r *Repo) Info(runID string) (RunInfo, error) {
	ss, err := r.resolveShards()
	if err != nil {
		return RunInfo{}, err
	}
	m, _, err := r.loadManifestObject(ss.manifestObject(ss.shardOf(runID)))
	if err != nil {
		return RunInfo{}, err
	}
	i := m.find(runID)
	if i < 0 {
		return RunInfo{}, fmt.Errorf("%w: %q", ErrRunNotFound, runID)
	}
	return m.Runs[i], nil
}

// readEntryBytes fetches a run's archive bytes, slicing its window out
// of the shared pack when the entry is packed. Stores exposing
// storage.RangeReader serve the window directly; others fall back to
// whole-object Get plus slice.
func (r *Repo) readEntryBytes(info RunInfo) ([]byte, error) {
	if !info.packed() {
		obj, err := r.store.Get(info.Object)
		if err != nil {
			return nil, err
		}
		return obj.Data, nil
	}
	if rr, ok := r.store.(storage.RangeReader); ok {
		return rr.GetRange(info.Object, info.Offset, info.Length)
	}
	obj, err := r.store.Get(info.Object)
	if err != nil {
		return nil, err
	}
	end := info.Offset + info.Length
	if info.Offset < 0 || end > int64(len(obj.Data)) {
		return nil, fmt.Errorf("repo: run %q window [%d,%d) outside pack %s (%d bytes)",
			info.RunID, info.Offset, end, info.Object, len(obj.Data))
	}
	return obj.Data[info.Offset:end], nil
}

// Get opens a run's archive.
func (r *Repo) Get(runID string) (RunInfo, *archive.Archive, error) {
	info, err := r.Info(runID)
	if err != nil {
		return RunInfo{}, nil, err
	}
	blob, err := r.readEntryBytes(info)
	if err != nil {
		return RunInfo{}, nil, fmt.Errorf("repo: run %q blob: %w", runID, err)
	}
	a, err := archive.OpenWorkers(blob, r.workers)
	if err != nil {
		return RunInfo{}, nil, fmt.Errorf("repo: run %q: %w", runID, err)
	}
	return info, a, nil
}

// deleteEntryBlob removes the storage behind a de-indexed entry. A
// private blob is deleted outright; a pack is deleted only when no
// indexed entry on any shard still references it (siblings keep their
// windows). Losing that race leaks a pack at worst, which Fsck flags
// as an orphan.
func (r *Repo) deleteEntryBlob(ss shardSet, e RunInfo) error {
	if e.Object == "" {
		return nil
	}
	if e.packed() || strings.HasPrefix(e.Object, PackPrefix) {
		referenced, err := r.packReferenced(ss, e.Object)
		if err != nil || referenced {
			return err
		}
	}
	if derr := r.store.Delete(e.Object); derr != nil && !errors.Is(derr, storage.ErrNotFound) {
		return derr
	}
	return nil
}

// packReferenced reports whether any indexed entry still addresses the
// pack object.
func (r *Repo) packReferenced(ss shardSet, pack string) (bool, error) {
	ms, _, err := r.loadAllShards(ss)
	if err != nil {
		return false, err
	}
	for _, e := range mergedRuns(ms) {
		if e.Object == pack {
			return true, nil
		}
	}
	return false, nil
}

// Delete removes a run from its shard's index and deletes its blob
// (or, for a packed run, drops the pack once no sibling references
// it). The intent record lands before the manifest update, so a crash
// between un-indexing the run and deleting its blob leaves a leftover
// the next Recover reclaims.
func (r *Repo) Delete(runID string) error {
	ss, err := r.ensureShards()
	if err != nil {
		return err
	}
	si := ss.shardOf(runID)
	jname := ss.journalObject(si)
	// Resolve the entry first so the intent records the object the run
	// actually lives in — a packed run's object is the shared pack,
	// which recovery must only reclaim when no sibling references it.
	obj := runObject(runID)
	if m, _, err := r.loadManifestObject(ss.manifestObject(si)); err != nil {
		return err
	} else if i := m.find(runID); i >= 0 {
		obj = m.Runs[i].Object
	}
	seq, err := r.logIntentAt(jname, journalRecord{
		Op: opDelete, RunID: runID, Object: obj,
	})
	if err != nil {
		return err
	}
	var removed RunInfo
	err = r.updateShardIdx(ss, si, func(m *manifest) error {
		i := m.find(runID)
		if i < 0 {
			return fmt.Errorf("%w: %q", ErrRunNotFound, runID)
		}
		removed = m.Runs[i]
		m.Runs = append(m.Runs[:i], m.Runs[i+1:]...)
		return nil
	})
	if err != nil {
		if errors.Is(err, ErrRunNotFound) {
			// Nothing to undo; the intent is settled.
			r.logDoneAt(jname, seq, opDelete)
		}
		return err
	}
	if derr := r.deleteEntryBlob(ss, removed); derr != nil {
		// Manifest entry is gone but the blob lingers; leave the
		// intent open so Recover finishes the job.
		return derr
	}
	r.logDoneAt(jname, seq, opDelete)
	return nil
}

// gcDropSet returns the run IDs GC would drop from the merged view:
// everything but the newest keep runs per workload, ranked by
// (CreatedSeq, RunID) so interleaved shard allocations rank totally.
func gcDropSet(entries []RunInfo, keep int) map[string]bool {
	byWorkload := make(map[string][]RunInfo)
	for _, info := range entries {
		byWorkload[info.Workload] = append(byWorkload[info.Workload], info)
	}
	drop := make(map[string]bool)
	for _, runs := range byWorkload {
		if len(runs) <= keep {
			continue
		}
		sort.Slice(runs, func(i, j int) bool {
			if runs[i].CreatedSeq != runs[j].CreatedSeq {
				return runs[i].CreatedSeq > runs[j].CreatedSeq
			}
			return runs[i].RunID > runs[j].RunID
		})
		for _, info := range runs[keep:] {
			drop[info.RunID] = true
		}
	}
	return drop
}

// GC keeps the newest keep runs per workload (by creation sequence,
// decided over the merged cross-shard view) and deletes the rest,
// returning the deleted run IDs in deletion order. Each shard commits
// its removals under its own CAS with its own intent record — the
// intent must carry the victim set computed against the exact manifest
// generation being swapped, so a crash after the swap but before the
// blob deletes lets Recover reclaim precisely those victims.
func (r *Repo) GC(keep int) ([]string, error) {
	if keep < 0 {
		keep = 0
	}
	ss, err := r.ensureShards()
	if err != nil {
		return nil, err
	}
	var all []string
	for si := 0; si < ss.n; si++ {
		victims, err := r.gcShard(ss, si, keep)
		all = append(all, victims...)
		if err != nil {
			return all, err
		}
	}
	if len(all) > 0 {
		r.compactJournalIfSettled(journalCompactThreshold)
	}
	return all, nil
}

// gcShard runs one shard's GC round: recompute the global drop set,
// journal this shard's victims, CAS the shard manifest, then delete
// the victim blobs.
func (r *Repo) gcShard(ss shardSet, si, keep int) ([]string, error) {
	jname := ss.journalObject(si)
	for attempt := 0; attempt < casRetries; attempt++ {
		if attempt > 0 {
			r.casBackoff(attempt)
		}
		ms, gens, err := r.loadAllShards(ss)
		if err != nil {
			return nil, err
		}
		drop := gcDropSet(mergedRuns(ms), keep)
		m, gen := ms[si], gens[si]
		var victims []string
		var victimObjs []string
		var victimEntries []RunInfo
		kept := m.Runs[:0]
		for _, info := range m.Runs {
			if drop[info.RunID] {
				victims = append(victims, info.RunID)
				victimObjs = append(victimObjs, info.Object)
				victimEntries = append(victimEntries, info)
			} else {
				kept = append(kept, info)
			}
		}
		if len(victims) == 0 {
			return nil, nil
		}
		m.Runs = kept
		data, err := marshalManifest(m)
		if err != nil {
			return nil, err
		}
		seq, err := r.logIntentAt(jname, journalRecord{
			Op: opGC, Victims: sortedUnique(victims), Objects: sortedUnique(victimObjs),
		})
		if err != nil {
			return nil, err
		}
		if _, err := r.store.PutIf(ss.manifestObject(si), data, gen); err == nil {
			for _, e := range victimEntries {
				if derr := r.deleteEntryBlob(ss, e); derr != nil {
					// Leave the intent open: Recover deletes the
					// remaining victim blobs.
					return victims, derr
				}
			}
			r.logDoneAt(jname, seq, opGC)
			return victims, nil
		} else if errors.Is(err, storage.ErrGenerationMismatch) {
			// Lost the race; the recorded victims are still in the
			// manifest, so this intent is harmless — close it and
			// recompute against the new generation.
			r.logDoneAt(jname, seq, opGC)
			r.m.casRetries.Inc()
			r.shardCounter(si, "cas_retries").Inc()
		} else {
			r.logDoneAt(jname, seq, opGC)
			return nil, err
		}
	}
	r.m.casExhausted.Inc()
	return nil, fmt.Errorf("%w: gc on shard %d", ErrManifestContention, si)
}

// Compare diffs two stored runs by ID. See DiffArchives for the
// alignment algorithm.
func (r *Repo) Compare(aID, bID string) (*Diff, error) {
	infoA, archA, err := r.Get(aID)
	if err != nil {
		return nil, err
	}
	infoB, archB, err := r.Get(bID)
	if err != nil {
		return nil, err
	}
	d, err := DiffArchives(archA, archB)
	if err != nil {
		return nil, err
	}
	d.A, d.B = infoA, infoB
	return d, nil
}
