// Package repo is the multi-run profile repository: an index of
// profile archives (internal/archive) stored in a bucket, plus the
// cross-run diff engine the paper's evaluation implies — every table
// comparing BERT to DCGAN or TPUv2 to TPUv3 is a query over a
// collection of runs, and this package makes that collection durable
// and addressable.
//
// Layout inside the bucket:
//
//	runs/manifest.json   — JSON index of every run + the seq allocator
//	runs/<run-id>/archive — the archive blob
//
// The manifest is updated with a compare-and-swap loop over
// storage.Bucket.PutIf, so concurrent writers (the fleet endpoint
// finalizing several sessions at once) serialize safely: each retry
// re-reads the latest manifest at its generation and re-applies its
// mutation.
//
// Mutations are crash-consistent: each one is bracketed by a
// write-ahead intent record in the journal object (journal.go), and
// Open replays the journal so a process death at any write boundary
// leaves a repository that reconverges on recovery — see the recovery
// invariants in DESIGN.md and the power-cut property suite in
// crash_test.go.
package repo

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/archive"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/storage"
)

// Store is the mutable object-store surface the repository (and the
// fleet endpoint's durable session logs) write through. *storage.Bucket
// implements it directly; fault decorators (faultnet.CrashStore) wrap
// it to script power cuts at write boundaries.
type Store interface {
	Get(name string) (*storage.Object, error)
	Put(name string, data []byte) (*storage.Object, error)
	PutIf(name string, data []byte, gen int64) (*storage.Object, error)
	Append(name string, data []byte) (*storage.Object, error)
	Delete(name string) error
	Exists(name string) bool
	List(prefix string) []string
}

var _ Store = (*storage.Bucket)(nil)

// ManifestObject is the bucket object holding the run index.
const ManifestObject = "runs/manifest.json"

// casRetries bounds the manifest compare-and-swap loop. Contention this
// deep means dozens of simultaneous finalizations; surfacing an error
// beats spinning.
const casRetries = 32

// Repository errors.
var (
	ErrRunExists          = errors.New("repo: run already exists")
	ErrRunNotFound        = errors.New("repo: run not found")
	ErrManifestContention = errors.New("repo: manifest contention")
)

// RunInfo is one manifest entry: everything list/show need without
// opening the archive blob.
type RunInfo struct {
	RunID      string        `json:"run_id"`
	Workload   string        `json:"workload"`
	Label      string        `json:"label,omitempty"`
	HostSpec   string        `json:"host_spec,omitempty"`
	TPUVersion string        `json:"tpu_version,omitempty"`
	CreatedSeq uint64        `json:"created_seq"`
	Records    int64         `json:"records"`
	Windows    int64         `json:"windows"`
	Bytes      int64         `json:"bytes"`
	TimeFirst  simclock.Time `json:"time_first"`
	TimeLast   simclock.Time `json:"time_last"`
	Object     string        `json:"object"`
}

// manifest is the stored index document.
type manifest struct {
	NextSeq uint64    `json:"next_seq"`
	Runs    []RunInfo `json:"runs"`
}

func (m *manifest) find(runID string) int {
	for i := range m.Runs {
		if m.Runs[i].RunID == runID {
			return i
		}
	}
	return -1
}

// repoMetrics are the repository's recovery/durability instruments.
type repoMetrics struct {
	journalReplays *obs.Counter
	fsckIssues     *obs.Counter
	fsckRepairs    *obs.Counter
	salvagedSegs   *obs.Counter
}

func newRepoMetrics(r *obs.Registry) repoMetrics {
	return repoMetrics{
		journalReplays: r.Counter("repo.journal.replays"),
		fsckIssues:     r.Counter("repo.fsck.issues"),
		fsckRepairs:    r.Counter("repo.fsck.repairs"),
		salvagedSegs:   r.Counter("repo.salvage.segments.recovered"),
	}
}

// Repo is a run repository over one store. Safe for concurrent use:
// all index mutations go through the manifest CAS, and every mutation
// is journaled (journal.go) so a crash at any write boundary is
// recoverable.
type Repo struct {
	store      Store
	workers    int
	obs        *obs.Registry
	m          repoMetrics
	journalSeq uint64 // atomic; intent/done pairing
}

// New returns a repository over store. An empty store is an empty
// repository; no initialization is needed. New does NOT replay the
// intent journal — use Open when the store may hold the debris of a
// crashed writer, or call Recover explicitly.
func New(store Store) *Repo {
	return &Repo{store: store, m: newRepoMetrics(nil)}
}

// Open returns a repository over store after replaying its intent
// journal, so interrupted mutations from a previous process are
// completed or rolled back before any new ones start. This is the
// constructor every durable deployment (the CLI, the collection
// server) should use.
func Open(store Store) (*Repo, *RecoveryReport, error) {
	r := New(store)
	rep, err := r.Recover()
	if err != nil {
		return nil, nil, err
	}
	return r, rep, nil
}

// SetObs points the repository's durability metrics (journal replays,
// fsck repairs, salvage counts) and recovery events at reg.
func (r *Repo) SetObs(reg *obs.Registry) {
	r.obs = reg
	r.m = newRepoMetrics(reg)
}

// SetCodecParallelism bounds the worker fan-out archive opens use for
// segment checksum verification (0 = GOMAXPROCS, 1 = serial). Results
// are identical for any value — only wall-clock changes. Applies to
// Get, Save validation, and everything built on them (Compare, the
// fleet's finalize path saves through the same bucket).
func (r *Repo) SetCodecParallelism(n int) { r.workers = n }

func runObject(runID string) string { return "runs/" + runID + "/archive" }

// load reads the manifest and its generation (0 = not created yet).
func (r *Repo) load() (*manifest, int64, error) {
	obj, err := r.store.Get(ManifestObject)
	if errors.Is(err, storage.ErrNotFound) {
		return &manifest{NextSeq: 1}, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	var m manifest
	if err := json.Unmarshal(obj.Data, &m); err != nil {
		return nil, 0, fmt.Errorf("repo: corrupt manifest: %w", err)
	}
	if m.NextSeq == 0 {
		m.NextSeq = 1
	}
	return &m, obj.Generation, nil
}

// update applies mut to the manifest under a CAS loop. mut may be
// called multiple times; it must be idempotent on its input.
func (r *Repo) update(mut func(*manifest) error) error {
	for i := 0; i < casRetries; i++ {
		m, gen, err := r.load()
		if err != nil {
			return err
		}
		if err := mut(m); err != nil {
			return err
		}
		data, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		if _, err := r.store.PutIf(ManifestObject, data, gen); err == nil {
			return nil
		} else if !errors.Is(err, storage.ErrGenerationMismatch) {
			return err
		}
	}
	return ErrManifestContention
}

// NextSeq allocates the next logical creation sequence number. Archives
// carry it as Meta.CreatedSeq so listings sort by creation order
// without any wall clock (deterministic runs stay deterministic).
func (r *Repo) NextSeq() (uint64, error) {
	var seq uint64
	err := r.update(func(m *manifest) error {
		seq = m.NextSeq
		m.NextSeq++
		return nil
	})
	return seq, err
}

// Save validates blob as an archive, stores it, and indexes the run.
// The archive's Meta.RunID must be non-empty and unused. The mutation
// is journaled: an intent record lands before the blob write, so a
// crash between the blob Put and the manifest update (or during the
// rollback delete) leaves an orphan the next Recover reclaims instead
// of a blob GC can never see.
func (r *Repo) Save(blob []byte) (RunInfo, error) {
	a, err := archive.OpenWorkers(blob, r.workers)
	if err != nil {
		return RunInfo{}, fmt.Errorf("repo: refusing to save: %w", err)
	}
	meta := a.Meta()
	if meta.RunID == "" {
		return RunInfo{}, errors.New("repo: archive has no run ID")
	}
	first, last := a.TimeRange()
	info := RunInfo{
		RunID:      meta.RunID,
		Workload:   meta.Workload,
		Label:      meta.Label,
		HostSpec:   meta.HostSpec,
		TPUVersion: meta.TPUVersion,
		CreatedSeq: meta.CreatedSeq,
		Records:    a.RecordCount(),
		Windows:    a.WindowCount(),
		Bytes:      a.Size(),
		TimeFirst:  first,
		TimeLast:   last,
		Object:     runObject(meta.RunID),
	}
	// Reject duplicates before any write: a doomed save must not
	// journal an intent against an object some committed run owns
	// (replaying such an intent would reclaim the original's blob).
	if m, _, err := r.load(); err != nil {
		return RunInfo{}, err
	} else if m.find(info.RunID) >= 0 {
		return RunInfo{}, fmt.Errorf("%w: %q", ErrRunExists, info.RunID)
	}
	seq, err := r.logIntent(opSave, info.RunID, info.Object, nil)
	if err != nil {
		return RunInfo{}, err
	}
	if _, err := r.store.Put(info.Object, blob); err != nil {
		return RunInfo{}, err
	}
	err = r.update(func(m *manifest) error {
		if m.find(info.RunID) >= 0 {
			return fmt.Errorf("%w: %q", ErrRunExists, info.RunID)
		}
		m.Runs = append(m.Runs, info)
		return nil
	})
	if err != nil {
		if errors.Is(err, ErrRunExists) {
			// A concurrent save of the same run ID won the CAS. The
			// blob object name is shared, so it now belongs to the
			// winner's manifest entry — leave it, and close our
			// intent (a replay would find the run in the manifest and
			// do nothing anyway).
			r.logDone(seq, opSave)
			return RunInfo{}, err
		}
		// Roll the blob back so a failed index never leaves an
		// unlisted orphan. If this delete itself fails (flaky or dead
		// storage), the open save intent remains and the next Recover
		// reclaims the blob — the orphan leak is closed by the
		// journal, not by hoping the delete succeeds (see
		// TestSaveRollbackFailureReclaimedByRecover).
		if derr := r.store.Delete(info.Object); derr == nil || errors.Is(derr, storage.ErrNotFound) {
			r.logDone(seq, opSave)
		}
		return RunInfo{}, err
	}
	r.logDone(seq, opSave)
	r.compactJournalIfSettled(journalCompactThreshold)
	return info, nil
}

// Filter selects runs for List; zero fields match everything.
type Filter struct {
	Workload string
	Label    string
}

func (f Filter) match(info RunInfo) bool {
	if f.Workload != "" && info.Workload != f.Workload {
		return false
	}
	if f.Label != "" && info.Label != f.Label {
		return false
	}
	return true
}

// List returns matching runs sorted by creation sequence (run ID as a
// tiebreak so listings are total-ordered).
func (r *Repo) List(f Filter) ([]RunInfo, error) {
	m, _, err := r.load()
	if err != nil {
		return nil, err
	}
	var out []RunInfo
	for _, info := range m.Runs {
		if f.match(info) {
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CreatedSeq != out[j].CreatedSeq {
			return out[i].CreatedSeq < out[j].CreatedSeq
		}
		return out[i].RunID < out[j].RunID
	})
	return out, nil
}

// Info returns one run's manifest entry.
func (r *Repo) Info(runID string) (RunInfo, error) {
	m, _, err := r.load()
	if err != nil {
		return RunInfo{}, err
	}
	i := m.find(runID)
	if i < 0 {
		return RunInfo{}, fmt.Errorf("%w: %q", ErrRunNotFound, runID)
	}
	return m.Runs[i], nil
}

// Get opens a run's archive.
func (r *Repo) Get(runID string) (RunInfo, *archive.Archive, error) {
	info, err := r.Info(runID)
	if err != nil {
		return RunInfo{}, nil, err
	}
	obj, err := r.store.Get(info.Object)
	if err != nil {
		return RunInfo{}, nil, fmt.Errorf("repo: run %q blob: %w", runID, err)
	}
	a, err := archive.OpenWorkers(obj.Data, r.workers)
	if err != nil {
		return RunInfo{}, nil, fmt.Errorf("repo: run %q: %w", runID, err)
	}
	return info, a, nil
}

// Delete removes a run from the index and deletes its blob. The
// intent record lands before the manifest update, so a crash between
// un-indexing the run and deleting its blob leaves a leftover the next
// Recover reclaims.
func (r *Repo) Delete(runID string) error {
	seq, err := r.logIntent(opDelete, runID, runObject(runID), nil)
	if err != nil {
		return err
	}
	err = r.update(func(m *manifest) error {
		i := m.find(runID)
		if i < 0 {
			return fmt.Errorf("%w: %q", ErrRunNotFound, runID)
		}
		m.Runs = append(m.Runs[:i], m.Runs[i+1:]...)
		return nil
	})
	if err != nil {
		if errors.Is(err, ErrRunNotFound) {
			// Nothing to undo; the intent is settled.
			r.logDone(seq, opDelete)
		}
		return err
	}
	if derr := r.store.Delete(runObject(runID)); derr != nil && !errors.Is(derr, storage.ErrNotFound) {
		// Manifest entry is gone but the blob lingers; leave the
		// intent open so Recover finishes the job.
		return derr
	}
	r.logDone(seq, opDelete)
	return nil
}

// gcVictims computes the run IDs GC would drop from m, in manifest
// order: everything but the newest keep runs per workload (by creation
// sequence), and removes them from m.
func gcVictims(m *manifest, keep int) []string {
	byWorkload := make(map[string][]RunInfo)
	for _, info := range m.Runs {
		byWorkload[info.Workload] = append(byWorkload[info.Workload], info)
	}
	drop := make(map[string]bool)
	for _, runs := range byWorkload {
		if len(runs) <= keep {
			continue
		}
		sort.Slice(runs, func(i, j int) bool {
			if runs[i].CreatedSeq != runs[j].CreatedSeq {
				return runs[i].CreatedSeq > runs[j].CreatedSeq
			}
			return runs[i].RunID > runs[j].RunID
		})
		for _, info := range runs[keep:] {
			drop[info.RunID] = true
		}
	}
	var victims []string
	kept := m.Runs[:0]
	for _, info := range m.Runs {
		if drop[info.RunID] {
			victims = append(victims, info.RunID)
		} else {
			kept = append(kept, info)
		}
	}
	m.Runs = kept
	return victims
}

// GC keeps the newest keep runs per workload (by creation sequence) and
// deletes the rest, returning the deleted run IDs in deletion order.
// GC runs its own CAS loop instead of update() because the intent
// record must carry the victim set computed against the exact manifest
// generation being swapped — a crash after the swap but before the
// blob deletes lets Recover reclaim precisely those victims.
func (r *Repo) GC(keep int) ([]string, error) {
	if keep < 0 {
		keep = 0
	}
	var victims []string
	committed := false
	var seq uint64
	for i := 0; i < casRetries && !committed; i++ {
		m, gen, err := r.load()
		if err != nil {
			return nil, err
		}
		victims = gcVictims(m, keep)
		if len(victims) == 0 {
			return nil, nil
		}
		data, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return nil, err
		}
		seq, err = r.logIntent(opGC, "", "", sortedUnique(victims))
		if err != nil {
			return nil, err
		}
		if _, err := r.store.PutIf(ManifestObject, data, gen); err == nil {
			committed = true
		} else if errors.Is(err, storage.ErrGenerationMismatch) {
			// Lost the race; the recorded victims are still in the
			// manifest, so this intent is harmless — close it and
			// recompute against the new generation.
			r.logDone(seq, opGC)
		} else {
			r.logDone(seq, opGC)
			return nil, err
		}
	}
	if !committed {
		return nil, ErrManifestContention
	}
	for _, id := range victims {
		if derr := r.store.Delete(runObject(id)); derr != nil && !errors.Is(derr, storage.ErrNotFound) {
			// Leave the intent open: Recover deletes the remaining
			// victim blobs.
			return victims, derr
		}
	}
	r.logDone(seq, opGC)
	r.compactJournalIfSettled(journalCompactThreshold)
	return victims, nil
}

// Compare diffs two stored runs by ID. See DiffArchives for the
// alignment algorithm.
func (r *Repo) Compare(aID, bID string) (*Diff, error) {
	infoA, archA, err := r.Get(aID)
	if err != nil {
		return nil, err
	}
	infoB, archB, err := r.Get(bID)
	if err != nil {
		return nil, err
	}
	d, err := DiffArchives(archA, archB)
	if err != nil {
		return nil, err
	}
	d.A, d.B = infoA, infoB
	return d, nil
}
