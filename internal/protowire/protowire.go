// Package protowire implements the subset of the Protocol Buffers wire
// format that the profiling RPC layer uses to encode profile records.
//
// TensorFlow's profiler ships profile data as protobufs over gRPC; this
// package stands in for the protobuf runtime. It supports the three wire
// types that matter for the profile messages — varint, 64-bit fixed, and
// length-delimited — with the standard tag/zigzag encodings, so messages
// written here are genuine protobuf wire data (parseable by protoc given a
// matching schema).
package protowire

import (
	"errors"
	"fmt"
	"math"
)

// Type is a protobuf wire type.
type Type uint8

// Wire types (numbers match the protobuf spec).
const (
	Varint Type = 0
	I64    Type = 1
	Bytes  Type = 2
)

// ErrTruncated is returned when a decode runs off the end of the buffer.
var ErrTruncated = errors.New("protowire: truncated message")

// ErrOverflow is returned when a varint exceeds 64 bits.
var ErrOverflow = errors.New("protowire: varint overflows 64 bits")

// maxVarintLen is the maximum encoded size of a 64-bit varint.
const maxVarintLen = 10

// Encoder appends wire-format fields to a buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder writing into buf (may be nil).
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf} }

// Bytes returns the encoded message.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current encoded length.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset truncates the buffer for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

func (e *Encoder) tag(field int, t Type) {
	e.rawVarint(uint64(field)<<3 | uint64(t))
}

func (e *Encoder) rawVarint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

// Uint64 writes field as a varint.
func (e *Encoder) Uint64(field int, v uint64) {
	e.tag(field, Varint)
	e.rawVarint(v)
}

// Int64 writes field zigzag-encoded (sint64 in proto terms).
func (e *Encoder) Int64(field int, v int64) {
	e.Uint64(field, zigzag(v))
}

// Bool writes field as a 0/1 varint.
func (e *Encoder) Bool(field int, v bool) {
	var u uint64
	if v {
		u = 1
	}
	e.Uint64(field, u)
}

// Double writes field as a little-endian 64-bit IEEE 754 value.
func (e *Encoder) Double(field int, v float64) {
	e.tag(field, I64)
	bits := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		e.buf = append(e.buf, byte(bits>>(8*i)))
	}
}

// String writes field as length-delimited UTF-8.
func (e *Encoder) String(field int, s string) {
	e.tag(field, Bytes)
	e.rawVarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Raw writes field as length-delimited opaque bytes. Used for embedded
// messages: encode the child with its own Encoder, then Raw the result.
func (e *Encoder) Raw(field int, b []byte) {
	e.tag(field, Bytes)
	e.rawVarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// --- append-style encoding ----------------------------------------------
//
// The Append* functions are the allocation-free counterparts of the
// Encoder methods: they write the identical bytes directly onto dst and
// return the (possibly grown) slice, so a hot loop that reuses its
// buffer encodes with zero steady-state allocations. Encoder remains
// the convenient form for cold paths; both produce the same wire data.

// AppendVarint appends a bare varint (no tag).
func AppendVarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// AppendTag appends a field tag.
func AppendTag(dst []byte, field int, t Type) []byte {
	return AppendVarint(dst, uint64(field)<<3|uint64(t))
}

// AppendUint64 appends field as a varint.
func AppendUint64(dst []byte, field int, v uint64) []byte {
	dst = AppendTag(dst, field, Varint)
	return AppendVarint(dst, v)
}

// AppendInt64 appends field zigzag-encoded (sint64 in proto terms).
func AppendInt64(dst []byte, field int, v int64) []byte {
	return AppendUint64(dst, field, zigzag(v))
}

// AppendBool appends field as a 0/1 varint.
func AppendBool(dst []byte, field int, v bool) []byte {
	var u uint64
	if v {
		u = 1
	}
	return AppendUint64(dst, field, u)
}

// AppendDouble appends field as a little-endian 64-bit IEEE 754 value.
func AppendDouble(dst []byte, field int, v float64) []byte {
	dst = AppendTag(dst, field, I64)
	bits := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		dst = append(dst, byte(bits>>(8*i)))
	}
	return dst
}

// AppendString appends field as length-delimited UTF-8.
func AppendString(dst []byte, field int, s string) []byte {
	dst = AppendTag(dst, field, Bytes)
	dst = AppendVarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends field as length-delimited opaque bytes — the
// append-style Raw, used for embedded messages encoded into a scratch
// buffer.
func AppendBytes(dst []byte, field int, b []byte) []byte {
	dst = AppendTag(dst, field, Bytes)
	dst = AppendVarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func zigzag(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}

func unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// Decoder reads wire-format fields from a buffer.
type Decoder struct {
	buf []byte
	pos int
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Done reports whether the decoder has consumed the whole buffer.
func (d *Decoder) Done() bool { return d.pos >= len(d.buf) }

// Next reads the next field's tag. It returns the field number and type.
func (d *Decoder) Next() (field int, t Type, err error) {
	v, err := d.rawVarint()
	if err != nil {
		return 0, 0, err
	}
	t = Type(v & 7)
	field = int(v >> 3)
	if field <= 0 {
		return 0, 0, fmt.Errorf("protowire: invalid field number %d", field)
	}
	switch t {
	case Varint, I64, Bytes:
		return field, t, nil
	default:
		return 0, 0, fmt.Errorf("protowire: unsupported wire type %d", t)
	}
}

func (d *Decoder) rawVarint() (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; i < maxVarintLen; i++ {
		if d.pos >= len(d.buf) {
			return 0, ErrTruncated
		}
		b := d.buf[d.pos]
		d.pos++
		if i == maxVarintLen-1 && b > 1 {
			return 0, ErrOverflow
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
	return 0, ErrOverflow
}

// Uint64 reads a varint payload.
func (d *Decoder) Uint64() (uint64, error) { return d.rawVarint() }

// Int64 reads a zigzag varint payload.
func (d *Decoder) Int64() (int64, error) {
	u, err := d.rawVarint()
	if err != nil {
		return 0, err
	}
	return unzigzag(u), nil
}

// Bool reads a varint payload as a boolean.
func (d *Decoder) Bool() (bool, error) {
	u, err := d.rawVarint()
	if err != nil {
		return false, err
	}
	return u != 0, nil
}

// Double reads a 64-bit fixed payload.
func (d *Decoder) Double() (float64, error) {
	if d.pos+8 > len(d.buf) {
		return 0, ErrTruncated
	}
	var bits uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(d.buf[d.pos+i]) << (8 * i)
	}
	d.pos += 8
	return math.Float64frombits(bits), nil
}

// Raw reads a length-delimited payload. The returned slice aliases the
// decoder's buffer; callers that retain it must copy.
func (d *Decoder) Raw() ([]byte, error) {
	n, err := d.rawVarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, ErrTruncated
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// String reads a length-delimited payload as a string (copied).
func (d *Decoder) String() (string, error) {
	b, err := d.Raw()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Skip discards the payload of a field with the given wire type.
func (d *Decoder) Skip(t Type) error {
	switch t {
	case Varint:
		_, err := d.rawVarint()
		return err
	case I64:
		if d.pos+8 > len(d.buf) {
			return ErrTruncated
		}
		d.pos += 8
		return nil
	case Bytes:
		_, err := d.Raw()
		return err
	default:
		return fmt.Errorf("protowire: cannot skip wire type %d", t)
	}
}
