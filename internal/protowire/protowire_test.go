package protowire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint64(1, 300)
	e.Int64(2, -42)
	e.Bool(3, true)
	e.Double(4, 3.5)
	e.String(5, "infeed")

	d := NewDecoder(e.Bytes())

	f, ty, err := d.Next()
	if err != nil || f != 1 || ty != Varint {
		t.Fatalf("field1: %d %v %v", f, ty, err)
	}
	if v, _ := d.Uint64(); v != 300 {
		t.Fatalf("uint64 = %d", v)
	}

	f, ty, _ = d.Next()
	if f != 2 || ty != Varint {
		t.Fatalf("field2: %d %v", f, ty)
	}
	if v, _ := d.Int64(); v != -42 {
		t.Fatalf("int64 = %d", v)
	}

	f, _, _ = d.Next()
	if f != 3 {
		t.Fatalf("field3: %d", f)
	}
	if v, _ := d.Bool(); !v {
		t.Fatal("bool = false")
	}

	f, ty, _ = d.Next()
	if f != 4 || ty != I64 {
		t.Fatalf("field4: %d %v", f, ty)
	}
	if v, _ := d.Double(); v != 3.5 {
		t.Fatalf("double = %g", v)
	}

	f, ty, _ = d.Next()
	if f != 5 || ty != Bytes {
		t.Fatalf("field5: %d %v", f, ty)
	}
	if v, _ := d.String(); v != "infeed" {
		t.Fatalf("string = %q", v)
	}
	if !d.Done() {
		t.Fatal("decoder not done")
	}
}

func TestNestedMessages(t *testing.T) {
	inner := NewEncoder(nil)
	inner.String(1, "fusion")
	inner.Uint64(2, 777)

	outer := NewEncoder(nil)
	outer.Uint64(1, 1)
	outer.Raw(2, inner.Bytes())

	d := NewDecoder(outer.Bytes())
	if f, _, _ := d.Next(); f != 1 {
		t.Fatal("outer field 1 missing")
	}
	if _, err := d.Uint64(); err != nil {
		t.Fatal(err)
	}
	if f, ty, _ := d.Next(); f != 2 || ty != Bytes {
		t.Fatal("embedded message tag wrong")
	}
	raw, err := d.Raw()
	if err != nil {
		t.Fatal(err)
	}
	id := NewDecoder(raw)
	if f, _, _ := id.Next(); f != 1 {
		t.Fatal("inner field 1 missing")
	}
	if s, _ := id.String(); s != "fusion" {
		t.Fatalf("inner string %q", s)
	}
	if f, _, _ := id.Next(); f != 2 {
		t.Fatal("inner field 2 missing")
	}
	if v, _ := id.Uint64(); v != 777 {
		t.Fatalf("inner uint %d", v)
	}
}

func TestSkip(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint64(1, 9)
	e.Double(2, 1.25)
	e.String(3, "skipped")
	e.Uint64(4, 10)

	d := NewDecoder(e.Bytes())
	for {
		f, ty, err := d.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f == 4 {
			v, _ := d.Uint64()
			if v != 10 {
				t.Fatalf("field4 = %d", v)
			}
			return
		}
		if err := d.Skip(ty); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTruncatedVarint(t *testing.T) {
	d := NewDecoder([]byte{0x80, 0x80}) // continuation bits with no terminator
	if _, err := d.Uint64(); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestVarintOverflow(t *testing.T) {
	b := bytes.Repeat([]byte{0xff}, 11)
	d := NewDecoder(b)
	if _, err := d.Uint64(); err != ErrOverflow {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
}

func TestTruncatedDouble(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3})
	if _, err := d.Double(); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestTruncatedBytes(t *testing.T) {
	e := NewEncoder(nil)
	e.String(1, "hello world")
	raw := e.Bytes()[:4] // cut into the payload
	d := NewDecoder(raw)
	if _, _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Raw(); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestInvalidFieldNumber(t *testing.T) {
	// Tag 0 (field 0, varint) is illegal in protobuf.
	d := NewDecoder([]byte{0x00})
	if _, _, err := d.Next(); err == nil {
		t.Fatal("field 0 accepted")
	}
}

func TestUnsupportedWireType(t *testing.T) {
	// Wire type 5 (I32) is not supported by this subset.
	d := NewDecoder([]byte{0x0d}) // field 1, type 5
	if _, _, err := d.Next(); err == nil {
		t.Fatal("wire type 5 accepted")
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint64(1, 1)
	if e.Len() == 0 {
		t.Fatal("empty after write")
	}
	e.Reset()
	if e.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, -1, 1, -2, 2, math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip %d -> %d", v, got)
		}
	}
	// Spec values: 0->0, -1->1, 1->2, -2->3.
	if zigzag(0) != 0 || zigzag(-1) != 1 || zigzag(1) != 2 || zigzag(-2) != 3 {
		t.Error("zigzag mapping does not match protobuf spec")
	}
}

func TestPropertyVarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		e := NewEncoder(nil)
		e.Uint64(7, v)
		d := NewDecoder(e.Bytes())
		fl, ty, err := d.Next()
		if err != nil || fl != 7 || ty != Varint {
			return false
		}
		got, err := d.Uint64()
		return err == nil && got == v && d.Done()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySignedRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		e := NewEncoder(nil)
		e.Int64(3, v)
		d := NewDecoder(e.Bytes())
		if _, _, err := d.Next(); err != nil {
			return false
		}
		got, err := d.Int64()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDoubleRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		e := NewEncoder(nil)
		e.Double(1, v)
		d := NewDecoder(e.Bytes())
		if _, _, err := d.Next(); err != nil {
			return false
		}
		got, err := d.Double()
		if err != nil {
			return false
		}
		return got == v || (math.IsNaN(got) && math.IsNaN(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		e := NewEncoder(nil)
		e.String(2, s)
		d := NewDecoder(e.Bytes())
		if _, _, err := d.Next(); err != nil {
			return false
		}
		got, err := d.String()
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeRecord(b *testing.B) {
	e := NewEncoder(make([]byte, 0, 256))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.Uint64(1, uint64(i))
		e.String(2, "TransferBufferToInfeedLocked")
		e.Double(3, 123.456)
		e.Uint64(4, 42)
	}
}

func BenchmarkDecodeRecord(b *testing.B) {
	e := NewEncoder(nil)
	e.Uint64(1, 99)
	e.String(2, "OutfeedDequeueTuple")
	e.Double(3, 7.5)
	raw := e.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(raw)
		for !d.Done() {
			_, ty, err := d.Next()
			if err != nil {
				b.Fatal(err)
			}
			if err := d.Skip(ty); err != nil {
				b.Fatal(err)
			}
		}
	}
}
