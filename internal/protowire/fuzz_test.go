package protowire

import "testing"

// FuzzDecoder walks arbitrary bytes through the full field loop; the
// decoder must always terminate with a clean error, never panic or hang.
func FuzzDecoder(f *testing.F) {
	e := NewEncoder(nil)
	e.Uint64(1, 300)
	e.String(2, "op")
	e.Double(3, 1.5)
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		for !d.Done() {
			_, ty, err := d.Next()
			if err != nil {
				return
			}
			if err := d.Skip(ty); err != nil {
				return
			}
		}
	})
}
