package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestRegistryLabels(t *testing.T) {
	r := NewRegistry(4)
	r.SetLabel("replica", "2")
	r.SetLabel("role", "collector")
	r.SetLabel("replica", "3") // overwrite wins
	r.Counter("fleet.records.in").Add(7)

	if got := r.Label("replica"); got != "3" {
		t.Fatalf("Label(replica) = %q, want 3", got)
	}
	snap := r.Snapshot()
	if snap.Labels["replica"] != "3" || snap.Labels["role"] != "collector" {
		t.Fatalf("snapshot labels = %v", snap.Labels)
	}

	// Labels survive the JSON round trip the CLI metrics sink uses.
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Labels["replica"] != "3" {
		t.Fatalf("labels lost in round trip: %v", back.Labels)
	}

	// Nil-safety and empty-key guard.
	var nilReg *Registry
	nilReg.SetLabel("replica", "9")
	if got := nilReg.Label("replica"); got != "" {
		t.Fatalf("nil registry label = %q", got)
	}
	r.SetLabel("", "ignored")
	if _, ok := r.Snapshot().Labels[""]; ok {
		t.Fatal("empty label key stored")
	}
}

func TestFleetViewCountsAndStatus(t *testing.T) {
	v := NewFleetView()
	v.Set("0", ReplicaUp)
	v.Set("1", ReplicaDegraded)
	v.Set("2", ReplicaDown)
	v.Set("3", "gibberish") // unknown states degrade, never upgrade

	up, degraded, down := v.Counts()
	if up != 1 || degraded != 2 || down != 1 {
		t.Fatalf("counts = %d/%d/%d, want 1/2/1", up, degraded, down)
	}
	if got := v.Replicas(); len(got) != 4 || got[0] != "0" || got[3] != "3" {
		t.Fatalf("replicas = %v", got)
	}

	rec := httptest.NewRecorder()
	v.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/fleetz", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d with one replica up", rec.Code)
	}
	var st struct {
		Status   string            `json:"status"`
		Up       int               `json:"up"`
		Replicas map[string]string `json:"replicas"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "degraded" || st.Up != 1 || st.Replicas["2"] != ReplicaDown {
		t.Fatalf("fleet doc = %+v", st)
	}

	// Whole fleet down: /fleetz turns 503 so load balancers see it.
	v.Set("0", ReplicaDown)
	v.Set("1", ReplicaDown)
	v.Set("3", ReplicaDown)
	rec = httptest.NewRecorder()
	v.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/fleetz", nil))
	if rec.Code != 503 {
		t.Fatalf("status = %d with the whole fleet down, want 503", rec.Code)
	}
}

func TestFleetViewNilSafe(t *testing.T) {
	var v *FleetView
	v.Set("0", ReplicaUp)
	if up, deg, down := v.Counts(); up+deg+down != 0 {
		t.Fatal("nil view counted replicas")
	}
	if v.Replicas() != nil {
		t.Fatal("nil view returned replicas")
	}
	rec := httptest.NewRecorder()
	v.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/fleetz", nil))
	if rec.Code != 200 {
		t.Fatalf("nil view status = %d", rec.Code)
	}
}

func TestFleetMuxServesAllSurfaces(t *testing.T) {
	reg := NewRegistry(4)
	h := NewHealth()
	h.SetReady("repository")
	v := NewFleetView()
	v.Set("0", ReplicaUp)
	mux := FleetMux(reg, h, v)
	for _, path := range []string{"/", "/healthz", "/readyz", "/fleetz"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s = %d", path, rec.Code)
		}
	}
}
