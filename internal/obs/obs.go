// Package obs is the toolchain's own observability layer: a
// dependency-free metrics and structured-event subsystem the profiler,
// RPC transport, optimizer, and analyzer all report into.
//
// TPUPoint's premise is visibility into a running training system, so its
// reproduction cannot itself be a black box. When the profiler degrades
// (lost windows, dropped records, memory-only recording), when the RPC
// layer redials or trips its breaker, or when the optimizer probes a
// parameter, the evidence lands here — as atomic counters, gauges,
// fixed-bucket microsecond histograms, and a bounded in-memory event
// ring — and is exported as one deterministic JSON snapshot.
//
// Everything is nil-safe: a nil *Registry hands out nil instruments whose
// methods are no-ops, so instrumented code paths never branch on whether
// observability is enabled.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Nil counters are no-ops.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil counters).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (queue depths, breaker state).
type Gauge struct{ v atomic.Int64 }

// Set stores v. Nil gauges are no-ops.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for nil gauges).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// BucketBoundsUs are the fixed histogram bucket upper bounds, in
// microseconds. An observation lands in the first bucket whose bound it
// does not exceed; anything past the last bound lands in the overflow
// bucket. Fixed bounds keep snapshots mergeable across runs and hosts.
var BucketBoundsUs = [...]int64{
	10, 25, 50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 10_000_000,
}

// Histogram accumulates microsecond durations into the fixed
// BucketBoundsUs buckets. All methods are lock-free and nil-safe.
type Histogram struct {
	counts [len(BucketBoundsUs) + 1]atomic.Int64 // +1 = overflow bucket
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// Observe records one duration in microseconds. Negative observations
// clamp to zero.
func (h *Histogram) Observe(us int64) {
	if h == nil {
		return
	}
	if us < 0 {
		us = 0
	}
	bounds := BucketBoundsUs[:]
	idx := sort.Search(len(bounds), func(i int) bool { return bounds[i] >= us })
	h.counts[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
	for {
		cur := h.max.Load()
		if us <= cur || h.max.CompareAndSwap(cur, us) {
			return
		}
	}
}

// ObserveSince records the wall time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Microseconds())
}

// Count returns the number of observations (0 for nil histograms).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the p-quantile (p in [0,1]) in microseconds from
// the bucket counts: the upper bound of the bucket containing the
// p-th ranked observation. Overflow-bucket hits report the observed
// max instead, so the estimate never exceeds reality's ceiling. Returns
// 0 for empty (or nil) histograms. The estimate is conservative — at
// most one bucket width above the true quantile — which is the right
// bias for latency gates.
func (h *Histogram) Quantile(p float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(p*float64(total-1)) + 1
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i < len(BucketBoundsUs) {
				return BucketBoundsUs[i]
			}
			return h.max.Load()
		}
	}
	return h.max.Load()
}

// BucketCount is one non-empty histogram bucket in a snapshot. Le is the
// bucket's inclusive upper bound in µs; -1 marks the overflow bucket.
type BucketCount struct {
	Le    int64 `json:"le_us"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	SumUs   int64         `json:"sum_us"`
	MeanUs  float64       `json:"mean_us"`
	MaxUs   int64         `json:"max_us"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), SumUs: h.sum.Load(), MaxUs: h.max.Load()}
	if s.Count > 0 {
		s.MeanUs = float64(s.SumUs) / float64(s.Count)
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		le := int64(-1)
		if i < len(BucketBoundsUs) {
			le = BucketBoundsUs[i]
		}
		s.Buckets = append(s.Buckets, BucketCount{Le: le, Count: n})
	}
	return s
}

// Event is one structured entry in the bounded event ring: a state
// transition or degradation worth keeping (a lost window, a breaker trip,
// an optimizer move), not a log line.
type Event struct {
	Seq    int64     `json:"seq"`
	At     time.Time `json:"at"`
	Scope  string    `json:"scope"`
	Name   string    `json:"name"`
	Detail string    `json:"detail,omitempty"`
}

// DefaultEventCapacity bounds the event ring when NewRegistry is given no
// explicit capacity.
const DefaultEventCapacity = 256

// Registry is a namespace of instruments plus the event ring. Instruments
// are created on first use and live for the registry's lifetime; Snapshot
// exports everything as one deterministic structure.
type Registry struct {
	mu       sync.Mutex
	labels   map[string]string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	evMu   sync.Mutex
	events []Event // ring storage, evCap entries once full
	evCap  int
	evSeq  int64 // total events ever emitted
	now    func() time.Time
}

// NewRegistry builds a registry whose event ring keeps the last eventCap
// events (DefaultEventCapacity when <= 0).
func NewRegistry(eventCap int) *Registry {
	if eventCap <= 0 {
		eventCap = DefaultEventCapacity
	}
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		evCap:    eventCap,
		now:      time.Now,
	}
}

// SetLabel attaches an identity label to every snapshot this registry
// exports — which process, which collector replica, which role the
// numbers came from. Metric names stay identical across replicas; the
// labels are what tells an aggregator whose fleet.records.in it is
// reading. Nil-safe; an empty key is ignored.
func (r *Registry) SetLabel(key, value string) {
	if r == nil || key == "" {
		return
	}
	r.mu.Lock()
	if r.labels == nil {
		r.labels = make(map[string]string)
	}
	r.labels[key] = value
	r.mu.Unlock()
}

// Label reads an identity label ("" when absent). Nil-safe.
func (r *Registry) Label(key string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.labels[key]
}

// SetClock overrides the event timestamp source (deterministic tests).
func (r *Registry) SetClock(now func() time.Time) {
	if r == nil || now == nil {
		return
	}
	r.evMu.Lock()
	r.now = now
	r.evMu.Unlock()
}

// Counter returns the named counter, creating it (at zero) on first use.
// A nil registry returns a nil, no-op counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Emit appends a structured event to the ring, evicting the oldest entry
// once the ring is full.
func (r *Registry) Emit(scope, name, detail string) {
	if r == nil {
		return
	}
	r.evMu.Lock()
	defer r.evMu.Unlock()
	ev := Event{Seq: r.evSeq, At: r.now(), Scope: scope, Name: name, Detail: detail}
	r.evSeq++
	if len(r.events) < r.evCap {
		r.events = append(r.events, ev)
		return
	}
	r.events[int(ev.Seq)%r.evCap] = ev
}

// Events returns the ring's contents ordered oldest-first.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	r.evMu.Lock()
	defer r.evMu.Unlock()
	out := make([]Event, 0, len(r.events))
	if len(r.events) < r.evCap {
		return append(out, r.events...)
	}
	head := int(r.evSeq) % r.evCap // oldest slot
	out = append(out, r.events[head:]...)
	out = append(out, r.events[:head]...)
	return out
}

// Snapshot is the exported state of a registry at one instant. Map keys
// serialize sorted (encoding/json), so identical state yields identical
// bytes — the property regression gates depend on.
type Snapshot struct {
	Labels        map[string]string            `json:"labels,omitempty"`
	Counters      map[string]int64             `json:"counters"`
	Gauges        map[string]int64             `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
	Events        []Event                      `json:"events"`
	EventsDropped int64                        `json:"events_dropped"`
}

// Snapshot captures every instrument and the event ring. A nil registry
// yields an empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	if len(r.labels) > 0 {
		s.Labels = make(map[string]string, len(r.labels))
		for k, v := range r.labels {
			s.Labels[k] = v
		}
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	r.mu.Unlock()
	s.Events = r.Events()
	r.evMu.Lock()
	if dropped := r.evSeq - int64(len(r.events)); dropped > 0 {
		s.EventsDropped = dropped
	}
	r.evMu.Unlock()
	return s
}

// C returns a counter value from the snapshot (0 when absent).
func (s Snapshot) C(name string) int64 { return s.Counters[name] }

// WriteJSON writes the indented JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ServeHTTP serves the JSON snapshot, making a *Registry an http.Handler
// for live inspection of a running system.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := r.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// PublishExpvar exposes the registry under the given expvar name (visible
// at /debug/vars alongside the runtime's own metrics). Publishing the
// same name twice is a no-op rather than expvar's panic.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// summaryKeys drive SummaryLine: label, counter name. Only counters the
// run actually registered appear, so a profile-only run shows no
// optimizer noise and vice versa.
var summaryKeys = []struct{ label, key string }{
	{"windows", "profiler.windows.fetched"},
	{"gaps", "profiler.windows.lost"},
	{"drops", "profiler.records.dropped"},
	{"put_timeouts", "profiler.put.timeouts"},
	{"degraded", "profiler.degraded"},
	{"rpc_calls", "rpc.calls"},
	{"redials", "rpc.redials"},
	{"probes", "optimizer.probes.started"},
	{"accepted", "optimizer.probes.accepted"},
	{"rolled_back", "optimizer.probes.rolledback"},
}

// SummaryLine renders the operator-facing one-line digest of a snapshot:
// every well-known counter that exists in the snapshot, as label=value
// pairs. Returns "" when none are present.
func (s Snapshot) SummaryLine() string {
	var parts []string
	for _, k := range summaryKeys {
		if v, ok := s.Counters[k.key]; ok {
			parts = append(parts, fmt.Sprintf("%s=%d", k.label, v))
		}
	}
	return strings.Join(parts, " ")
}
