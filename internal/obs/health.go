// Process health: the liveness and readiness surface a deployed
// collector (or any long-running tpupoint mode) exposes next to its
// metrics. Liveness (/healthz) is "the process responds" and is always
// OK once the listener is up. Readiness (/readyz) is component-based:
// subsystems report in by name (repository opened, sessions recovered,
// listener bound), and the process is ready only when no reporting
// component is failing — an orchestrator keeps traffic away from a
// collector that is still replaying its journal or lost its store.
//
// Like the rest of the package, everything is nil-safe: a nil *Health
// swallows updates and reports ready, so serving paths never branch on
// whether health tracking is enabled.
package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// Health tracks named component states for readiness reporting.
type Health struct {
	mu     sync.Mutex
	states map[string]string // component -> "" (ready) or failure reason
}

// NewHealth returns an empty health tracker: no components have
// reported, so the process is ready by default.
func NewHealth() *Health {
	return &Health{states: make(map[string]string)}
}

// SetReady marks component healthy. Nil-safe.
func (h *Health) SetReady(component string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.states[component] = ""
	h.mu.Unlock()
}

// SetFailing marks component unhealthy with a reason. Nil-safe.
func (h *Health) SetFailing(component, reason string) {
	if h == nil {
		return
	}
	if reason == "" {
		reason = "failing"
	}
	h.mu.Lock()
	h.states[component] = reason
	h.mu.Unlock()
}

// Ready reports whether no component is failing.
func (h *Health) Ready() bool {
	if h == nil {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, reason := range h.states {
		if reason != "" {
			return false
		}
	}
	return true
}

// healthStatus is the JSON document both endpoints serve.
type healthStatus struct {
	Status     string            `json:"status"`
	Components map[string]string `json:"components,omitempty"`
}

// snapshot renders the component map with ready components shown as
// "ready" (a reason string is a failure).
func (h *Health) snapshot() healthStatus {
	st := healthStatus{Status: "ready"}
	if h == nil {
		return st
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.states) > 0 {
		st.Components = make(map[string]string, len(h.states))
	}
	for component, reason := range h.states {
		if reason == "" {
			st.Components[component] = "ready"
		} else {
			st.Components[component] = reason
			st.Status = "unready"
		}
	}
	return st
}

// FailingComponents lists failing components sorted by name — the
// operator-facing order is deterministic.
func (h *Health) FailingComponents() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for component, reason := range h.states {
		if reason != "" {
			out = append(out, component)
		}
	}
	sort.Strings(out)
	return out
}

// LivenessHandler always answers 200: reaching it proves the process
// is serving.
func (h *Health) LivenessHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeHealthJSON(w, http.StatusOK, healthStatus{Status: "alive"})
	})
}

// ReadinessHandler answers 200 when every reporting component is
// ready, 503 otherwise, with the component map either way.
func (h *Health) ReadinessHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		st := h.snapshot()
		code := http.StatusOK
		if st.Status != "ready" {
			code = http.StatusServiceUnavailable
		}
		writeHealthJSON(w, code, st)
	})
}

func writeHealthJSON(w http.ResponseWriter, code int, st healthStatus) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// Mux assembles the standard observability surface: metrics snapshots
// at /, liveness at /healthz, readiness at /readyz. Either argument
// may be nil (nil registry serves an empty snapshot; nil health is
// always alive and ready).
func Mux(r *Registry, h *Health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/healthz", h.LivenessHandler())
	mux.Handle("/readyz", h.ReadinessHandler())
	mux.Handle("/", r)
	return mux
}
