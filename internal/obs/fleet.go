// Fleet-wide readiness: one collector replica's view of the whole
// replica set. Each replica tracks its peers (via periodic pings or
// gossip — the probing loop lives with the collector, not here) and
// serves the aggregate at /fleetz so an operator or load balancer can
// ask any single replica "how many collectors are actually up?"
// without scraping all of them.
//
// Nil-safe like the rest of the package: a nil *FleetView swallows
// updates and reports an empty fleet.
package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// Replica states a FleetView distinguishes. "Degraded" is alive but
// impaired — reachable yet reporting unready components — so routers
// can deprioritize it without declaring it dead.
const (
	ReplicaUp       = "up"
	ReplicaDegraded = "degraded"
	ReplicaDown     = "down"
)

// FleetView tracks per-replica liveness states keyed by replica ID.
type FleetView struct {
	mu     sync.Mutex
	states map[string]string // replica id -> ReplicaUp/Degraded/Down
}

// NewFleetView returns an empty fleet view.
func NewFleetView() *FleetView {
	return &FleetView{states: make(map[string]string)}
}

// Set records one replica's state (any unknown state string counts as
// degraded — a probe must never make the fleet look healthier than it
// knows). Nil-safe.
func (v *FleetView) Set(replica, state string) {
	if v == nil || replica == "" {
		return
	}
	switch state {
	case ReplicaUp, ReplicaDegraded, ReplicaDown:
	default:
		state = ReplicaDegraded
	}
	v.mu.Lock()
	v.states[replica] = state
	v.mu.Unlock()
}

// Counts reports how many tracked replicas are up, degraded, and down.
func (v *FleetView) Counts() (up, degraded, down int) {
	if v == nil {
		return 0, 0, 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, st := range v.states {
		switch st {
		case ReplicaUp:
			up++
		case ReplicaDegraded:
			degraded++
		default:
			down++
		}
	}
	return up, degraded, down
}

// Replicas returns the tracked replica IDs sorted, for deterministic
// operator output.
func (v *FleetView) Replicas() []string {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.states))
	for id := range v.states {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// fleetStatus is the JSON document /fleetz serves.
type fleetStatus struct {
	Status   string            `json:"status"`
	Up       int               `json:"up"`
	Degraded int               `json:"degraded"`
	Down     int               `json:"down"`
	Replicas map[string]string `json:"replicas,omitempty"`
}

func (v *FleetView) snapshot() fleetStatus {
	st := fleetStatus{Status: "ok"}
	if v == nil {
		return st
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.states) > 0 {
		st.Replicas = make(map[string]string, len(v.states))
	}
	for id, state := range v.states {
		st.Replicas[id] = state
		switch state {
		case ReplicaUp:
			st.Up++
		case ReplicaDegraded:
			st.Degraded++
		default:
			st.Down++
		}
	}
	if st.Down > 0 || st.Degraded > 0 {
		st.Status = "degraded"
	}
	if st.Up == 0 && len(v.states) > 0 {
		st.Status = "down"
	}
	return st
}

// Handler serves the fleet readiness document: 200 while at least one
// replica is up (or nothing is tracked yet), 503 once the whole fleet
// is down — so /fleetz doubles as a load-balancer health check for the
// set, not just this process.
func (v *FleetView) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		st := v.snapshot()
		code := http.StatusOK
		if st.Status == "down" {
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
}

// FleetMux is Mux plus the fleet readiness view at /fleetz. Any
// argument may be nil.
func FleetMux(r *Registry, h *Health, v *FleetView) *http.ServeMux {
	mux := Mux(r, h)
	mux.Handle("/fleetz", v.Handler())
	return mux
}
