package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestHealthReadinessLifecycle(t *testing.T) {
	h := NewHealth()
	if !h.Ready() {
		t.Fatal("empty health tracker must be ready")
	}
	h.SetFailing("repository", "journal replay in progress")
	if h.Ready() {
		t.Fatal("failing component ignored")
	}
	if got := h.FailingComponents(); len(got) != 1 || got[0] != "repository" {
		t.Fatalf("failing = %v", got)
	}
	h.SetReady("repository")
	h.SetReady("collector")
	if !h.Ready() {
		t.Fatal("recovered components still reported unready")
	}
	if got := h.FailingComponents(); len(got) != 0 {
		t.Fatalf("failing = %v, want none", got)
	}
}

func TestHealthEndpoints(t *testing.T) {
	h := NewHealth()
	reg := NewRegistry(8)
	reg.Counter("x").Inc()
	mux := Mux(reg, h)

	get := func(path string) (int, map[string]any) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
		return rec.Code, body
	}

	if code, body := get("/healthz"); code != 200 || body["status"] != "alive" {
		t.Fatalf("healthz = %d %v", code, body)
	}
	if code, body := get("/readyz"); code != 200 || body["status"] != "ready" {
		t.Fatalf("readyz = %d %v", code, body)
	}

	h.SetFailing("repository", "store unreachable")
	code, body := get("/readyz")
	if code != 503 || body["status"] != "unready" {
		t.Fatalf("readyz while failing = %d %v", code, body)
	}
	comps, _ := body["components"].(map[string]any)
	if comps["repository"] != "store unreachable" {
		t.Fatalf("components = %v", comps)
	}
	// Liveness is unaffected by readiness.
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("healthz while unready = %d", code)
	}
	// The metrics surface still serves at the root.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics root = %d", rec.Code)
	}
}

func TestHealthNilSafe(t *testing.T) {
	var h *Health
	h.SetReady("a")
	h.SetFailing("b", "broken")
	if !h.Ready() {
		t.Fatal("nil health must report ready")
	}
	if got := h.FailingComponents(); got != nil {
		t.Fatalf("failing = %v", got)
	}
	mux := Mux(nil, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("nil readyz = %d", rec.Code)
	}
}
