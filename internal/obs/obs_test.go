package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// Concurrent hammering of every instrument kind; run under -race this
// proves the lock-free paths are data-race free and lose no updates.
func TestInstrumentsConcurrent(t *testing.T) {
	r := NewRegistry(0)
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(int64(i % 3000))
				if i%100 == 0 {
					r.Emit("test", "tick", fmt.Sprintf("g%d i%d", g, i))
				}
			}
		}(g)
	}
	wg.Wait()

	want := int64(goroutines * perG)
	if got := r.Counter("c").Value(); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("g").Value(); got != want {
		t.Fatalf("gauge = %d, want %d", got, want)
	}
	h := r.Histogram("h").snapshot()
	if h.Count != want {
		t.Fatalf("histogram count = %d, want %d", h.Count, want)
	}
	var bucketSum int64
	for _, b := range h.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != want {
		t.Fatalf("bucket counts sum to %d, want %d", bucketSum, want)
	}
	if h.MaxUs != perG-1 {
		t.Fatalf("histogram max = %d, want %d", h.MaxUs, perG-1)
	}
}

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	h.Observe(-5)         // clamps to 0 -> le 10
	h.Observe(10)         // boundary is inclusive -> le 10
	h.Observe(11)         // -> le 25
	h.Observe(99_999_99)  // -> le 10_000_000
	h.Observe(99_999_999) // past the last bound -> overflow
	s := h.snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	got := map[int64]int64{}
	for _, b := range s.Buckets {
		got[b.Le] = b.Count
	}
	want := map[int64]int64{10: 2, 25: 1, 10_000_000: 1, -1: 1}
	for le, n := range want {
		if got[le] != n {
			t.Fatalf("bucket le=%d count = %d, want %d (all: %v)", le, got[le], n, got)
		}
	}
	if s.MaxUs != 99_999_999 {
		t.Fatalf("max = %d", s.MaxUs)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.99); got != 0 {
		t.Fatalf("nil histogram quantile = %d", got)
	}
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d", got)
	}

	var h Histogram
	// 98 fast observations and two slow ones: p50 stays in the fast
	// bucket, p99+ reaches the slow one.
	for i := 0; i < 98; i++ {
		h.Observe(40) // -> le 50 bucket
	}
	h.Observe(9_000) // -> le 10_000 bucket
	h.Observe(9_000)
	if got := h.Quantile(0.5); got != 50 {
		t.Fatalf("p50 = %d, want 50", got)
	}
	if got := h.Quantile(0.99); got != 10_000 {
		t.Fatalf("p99 = %d, want 10_000", got)
	}
	if got := h.Quantile(1.0); got != 10_000 {
		t.Fatalf("p100 = %d, want 10_000", got)
	}
	// Out-of-range p clamps instead of panicking.
	if got := h.Quantile(-1); got != 50 {
		t.Fatalf("p<0 = %d, want 50", got)
	}
	if got := h.Quantile(2); got != 10_000 {
		t.Fatalf("p>1 = %d, want 10_000", got)
	}

	// Overflow-bucket hits report the observed max, not a fake bound.
	var o Histogram
	o.Observe(99_999_999)
	if got := o.Quantile(0.99); got != 99_999_999 {
		t.Fatalf("overflow quantile = %d, want observed max", got)
	}
}

// Two registries fed the same data must export byte-identical snapshots,
// and re-marshaling one registry must be stable: dashboards and the
// metrics-smoke gate diff these bytes.
func TestSnapshotDeterministic(t *testing.T) {
	fixed := time.Unix(1700000000, 0).UTC()
	build := func() *Registry {
		r := NewRegistry(8)
		r.SetClock(func() time.Time { return fixed })
		// Insertion order deliberately differs between the builds below.
		for _, name := range []string{"z.count", "a.count", "m.count"} {
			r.Counter(name).Add(int64(len(name)))
		}
		r.Gauge("depth").Set(42)
		for i := 0; i < 20; i++ {
			r.Histogram("lat").Observe(int64(i * 100))
			r.Emit("scope", "ev", fmt.Sprint(i))
		}
		return r
	}
	buildReversed := func() *Registry {
		r := NewRegistry(8)
		r.SetClock(func() time.Time { return fixed })
		for _, name := range []string{"m.count", "a.count", "z.count"} {
			r.Counter(name).Add(int64(len(name)))
		}
		for i := 0; i < 20; i++ {
			r.Histogram("lat").Observe(int64(i * 100))
			r.Emit("scope", "ev", fmt.Sprint(i))
		}
		r.Gauge("depth").Set(42)
		return r
	}
	var a, b, a2 bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildReversed().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("snapshots differ across construction order:\n%s\nvs\n%s", a.String(), b.String())
	}
	r := build()
	if err := r.WriteJSON(&a2); err != nil {
		t.Fatal(err)
	}
	var a3 bytes.Buffer
	if err := r.WriteJSON(&a3); err != nil {
		t.Fatal(err)
	}
	if a2.String() != a3.String() {
		t.Fatal("re-marshaling the same registry is not stable")
	}
}

func TestEventRingBoundedAndOrdered(t *testing.T) {
	r := NewRegistry(4)
	for i := 0; i < 10; i++ {
		r.Emit("s", "e", fmt.Sprint(i))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest evicted first)", i, ev.Seq, want)
		}
	}
	snap := r.Snapshot()
	if snap.EventsDropped != 6 {
		t.Fatalf("dropped = %d, want 6", snap.EventsDropped)
	}
}

// A nil registry must be fully inert: instrumented code never checks
// whether observability is on.
func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(1)
	r.Gauge("g").Add(1)
	r.Histogram("h").Observe(100)
	r.Histogram("h").ObserveSince(time.Now())
	r.Emit("s", "n", "d")
	r.SetClock(time.Now)
	r.PublishExpvar("nil-reg")
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	if evs := r.Events(); evs != nil {
		t.Fatalf("nil events = %v", evs)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("nil snapshot is not valid JSON: %v", err)
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry(0)
	r.Counter("hits").Add(3)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.C("hits") != 3 {
		t.Fatalf("served counter = %d", snap.C("hits"))
	}
}

func TestSummaryLine(t *testing.T) {
	r := NewRegistry(0)
	r.Counter("profiler.windows.fetched").Add(12)
	r.Counter("profiler.windows.lost").Add(2)
	r.Counter("optimizer.probes.started") // registered at zero still shows
	line := r.Snapshot().SummaryLine()
	for _, want := range []string{"windows=12", "gaps=2", "probes=0"} {
		if !bytes.Contains([]byte(line), []byte(want)) {
			t.Fatalf("summary %q missing %q", line, want)
		}
	}
	if (Snapshot{}).SummaryLine() != "" {
		t.Fatal("empty snapshot should summarize to empty string")
	}
}
