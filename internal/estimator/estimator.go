// Package estimator implements the TPUEstimator-style training loop that
// couples the host input pipeline to the TPU device, mirroring how
// TensorFlow drives Cloud TPU training:
//
//   - the host pipeline runs ahead of the device, bounded by the prefetch
//     depth (batch i cannot start until the device has consumed batch
//     i−depth);
//   - the device idles whenever the next batch has not reached its infeed
//     queue — the idle time the paper measures;
//   - every IterationsPerLoop steps the loop returns to the host for an
//     outfeed dequeue and session bookkeeping, serializing briefly;
//   - eval blocks run a forward-only program on cached data; checkpoints
//     and summaries are written on their Table I cadences.
//
// A Runner implements tpu.EventSource over the merged host+device event
// stream, which is what the profile service hands to TPUPoint-Profiler.
package estimator

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/host"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/tpu"
	"repro/internal/trace"
	"repro/internal/workloads"
	"repro/internal/xla"
)

// Options configure a training run beyond the workload's defaults.
type Options struct {
	Version    tpu.Version     // TPU generation (default V2)
	HostParams *host.Params    // override the workload's pipeline parameters
	Steps      int             // override the workload's TrainSteps
	Seed       uint64          // override the workload's seed
	Bucket     *storage.Bucket // checkpoint destination (optional)

	// DisableEval skips eval blocks (used by microbenchmarks).
	DisableEval bool

	// StartStep fast-forwards the run: training begins at this global
	// step instead of zero, restoring model state from RestoreFrom. This
	// is the paper's checkpoint/restart feature (Section IV-C): TPUPoint
	// associates phases with checkpoints so an application can be
	// "executed without starting from step zero".
	StartStep int64

	// RestoreFrom names the checkpoint object (in Bucket) to restore
	// when StartStep > 0. The object must exist.
	RestoreFrom string

	// StepOverheadUs adds fixed host-side work to every training step —
	// how TPUPoint-Optimizer's instrumentation cost is charged.
	StepOverheadUs float64

	// OnTrainStep, when set, runs after every training step. TPUPoint-
	// Optimizer's online tuning hooks in here. It may call SetHostParams.
	OnTrainStep func(r *Runner, step int64, timing tpu.StepTiming)
}

// Checkpoint records one saved model state.
type Checkpoint struct {
	Step   int64
	At     simclock.Time
	Object string
}

// Runner executes one training run.
type Runner struct {
	W    *workloads.Workload
	opts Options

	mu        sync.RWMutex
	dev       *tpu.Device
	hst       *host.Host
	trainProg *xla.Program
	evalProg  *xla.Program

	consumedAt  []simclock.Time // per train-batch consumption time
	now         simclock.Time
	nonTrain    simclock.Duration // time in init/eval/checkpoint/summary phases
	done        bool
	ran         bool
	checkpoints []Checkpoint
	totalSteps  int64

	merged     []trace.Event // sort-merged cache, built lazily
	mergedUpTo int           // host+dev event counts at merge time
}

// New prepares a runner. The workload's graphs are compiled here, so a
// model that does not fit the chip's HBM fails fast.
func New(w *workloads.Workload, opts Options) (*Runner, error) {
	if w == nil {
		return nil, errors.New("estimator: nil workload")
	}
	if opts.Version == 0 {
		opts.Version = tpu.V2
	}
	seed := w.Seed
	if opts.Seed != 0 {
		seed = opts.Seed
	}
	params := w.HostParams
	if opts.HostParams != nil {
		params = *opts.HostParams
	}

	// The TensorFlow master's optimization pipeline runs before the
	// worker sees the graph: constant folding, then XLA lowering.
	trainProg, err := compileLikeMaster(w.TrainGraph)
	if err != nil {
		return nil, fmt.Errorf("estimator: compiling train graph: %w", err)
	}
	evalProg, err := compileLikeMaster(w.EvalGraph)
	if err != nil {
		return nil, fmt.Errorf("estimator: compiling eval graph: %w", err)
	}
	cspec := tpu.NewChipSpec(opts.Version)
	if err := cspec.Validate(); err != nil {
		return nil, err
	}
	dev := tpu.NewDevice(cspec, seed)
	if err := dev.LoadProgram(trainProg); err != nil {
		return nil, err
	}
	hst, err := host.New(w.Spec(), params, w.Input, seed+1)
	if err != nil {
		return nil, err
	}
	return &Runner{
		W:         w,
		opts:      opts,
		dev:       dev,
		hst:       hst,
		trainProg: trainProg,
		evalProg:  evalProg,
	}, nil
}

// compileLikeMaster applies the master's graph optimizations (constant
// folding; partitioning is a no-op for these single-device step graphs)
// and lowers the result through XLA.
func compileLikeMaster(g *graph.Graph) (*xla.Program, error) {
	folded, _, err := graph.FoldConstants(g)
	if err != nil {
		return nil, err
	}
	return xla.Compile(folded)
}

// trainSteps returns the effective train-step count.
func (r *Runner) trainSteps() int {
	if r.opts.Steps > 0 {
		return r.opts.Steps
	}
	return r.W.TrainSteps
}

// Run executes the full training schedule. It may be called once.
func (r *Runner) Run() error {
	r.mu.Lock()
	if r.ran {
		r.mu.Unlock()
		return errors.New("estimator: Run called twice")
	}
	r.ran = true
	r.mu.Unlock()

	steps := r.trainSteps()

	// Session init: host brings up the TPU system and restores state;
	// the device spends a moment in program compilation/warmup. A
	// fast-forwarded run restores the named checkpoint instead of the
	// initial weights.
	r.mu.Lock()
	if r.opts.StartStep > 0 {
		if r.opts.RestoreFrom == "" {
			r.mu.Unlock()
			return errors.New("estimator: StartStep without RestoreFrom")
		}
		if r.opts.Bucket == nil || !r.opts.Bucket.Exists(r.opts.RestoreFrom) {
			r.mu.Unlock()
			return fmt.Errorf("estimator: restore checkpoint %q not found", r.opts.RestoreFrom)
		}
	}
	initEnd := r.hst.EmitInit(0, r.trainProg.WeightBytes)
	r.dev.InjectEvent("StartProgram", initEnd, 2000, -1)
	r.now = initEnd.Add(2000)
	r.nonTrain += simclock.Duration(r.now) // init phase spans [0, now)
	r.mu.Unlock()

	var loopGate simclock.Time  // batches wait for loop-boundary syncs
	var loopStart simclock.Time // when the current loop's dequeue posted
	globalStep := r.opts.StartStep
	trainDone := 0
	sinceEval := 0

	for trainDone < steps {
		r.mu.Lock()
		// --- one training step ------------------------------------------
		gate := loopGate
		var slotFree simclock.Time
		// Prefetch depth is re-read every step: the optimizer may retune
		// it mid-run.
		if idx := trainDone - r.hst.Params().PrefetchDepth; idx >= 0 {
			slotFree = r.consumedAt[idx]
		}
		if r.opts.StepOverheadUs > 0 {
			r.hst.Instrument(globalStep, r.opts.StepOverheadUs)
		}
		ready := r.hst.ProduceBatch(globalStep, gate, slotFree)
		st, err := r.dev.RunStep(globalStep, ready)
		if err != nil {
			r.mu.Unlock()
			return err
		}
		r.consumedAt = append(r.consumedAt, st.Start)
		r.hst.StepNoise(globalStep, st.End, r.W.NoiseP)
		trainDone++
		globalStep++
		sinceEval++
		r.advance(st.End)

		// --- loop boundary: outfeed sync + bookkeeping ------------------
		// The host posts the loop's outfeed dequeue when the loop starts
		// and blocks until the TPU finishes the last iteration, so the
		// profiled OutfeedDequeueTuple spans most of the loop — which is
		// why it tops host profiles.
		if trainDone%r.W.IterationsPerLoop == 0 || trainDone == steps {
			deqEnd := r.hst.DequeueOutfeed(globalStep-1, loopStart, st.End, r.trainProg.OutfeedBytes)
			r.hst.StepBookkeeping(globalStep-1, deqEnd)
			loopGate = deqEnd.Add(200)
			loopStart = loopGate
			r.advance(loopGate)
		}
		// --- summaries and checkpoints ----------------------------------
		if r.W.SummaryEvery > 0 && trainDone%r.W.SummaryEvery == 0 {
			before := r.now
			r.advance(r.hst.EmitSummary(globalStep-1, r.now))
			r.nonTrain += r.now.Sub(before)
		}
		if r.W.CheckpointEvery > 0 && trainDone%r.W.CheckpointEvery == 0 {
			before := r.now
			end := r.hst.EmitCheckpoint(globalStep-1, r.now, r.trainProg.WeightBytes)
			ck := Checkpoint{Step: globalStep - 1, At: end,
				Object: fmt.Sprintf("ckpt/model.ckpt-%d", globalStep-1)}
			if r.opts.Bucket != nil {
				blob := []byte(fmt.Sprintf("checkpoint step=%d weights=%d", ck.Step, r.trainProg.WeightBytes))
				if _, err := r.opts.Bucket.Put(ck.Object, blob); err != nil {
					r.mu.Unlock()
					return err
				}
			}
			r.checkpoints = append(r.checkpoints, ck)
			loopGate = end
			r.advance(end)
			r.nonTrain += r.now.Sub(before)
		}
		hook := r.opts.OnTrainStep
		r.mu.Unlock()

		if hook != nil {
			hook(r, globalStep-1, st)
		}

		// --- mid-run eval block (only when the workload asks for it) ----
		if !r.opts.DisableEval && r.W.EvalEvery > 0 && sinceEval >= r.W.EvalEvery && trainDone < steps {
			sinceEval = 0
			if err := r.runEvalBlock(&globalStep); err != nil {
				return err
			}
		}
	}

	// Final evaluation after training, the TPUEstimator train-then-
	// evaluate shape; this is the third phase the analyzer finds.
	if !r.opts.DisableEval && r.W.EvalSteps > 0 {
		if err := r.runEvalBlock(&globalStep); err != nil {
			return err
		}
	}

	r.mu.Lock()
	r.totalSteps = globalStep
	// Shutdown ops belong to the last executed step's phase.
	end := r.hst.EmitShutdown(globalStep-1, r.now)
	r.advance(end)
	r.done = true
	r.mu.Unlock()
	return nil
}

// runEvalBlock switches the device to the eval program, runs the block on
// cached data (no host pipeline, so no infeed waits), then switches back.
func (r *Runner) runEvalBlock(globalStep *int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.dev.LoadProgram(r.evalProg); err != nil {
		return err
	}
	before := r.now
	for i := 0; i < r.W.EvalSteps; i++ {
		st, err := r.dev.RunStep(*globalStep, 0)
		if err != nil {
			return err
		}
		*globalStep++
		r.advance(st.End)
	}
	r.nonTrain += r.now.Sub(before)
	return r.dev.LoadProgram(r.trainProg)
}

// advance moves the run's progress clock forward (never backward).
func (r *Runner) advance(t simclock.Time) {
	if t > r.now {
		r.now = t
	}
}

// SetHostParams swaps pipeline parameters mid-run (the optimizer's lever).
func (r *Runner) SetHostParams(p host.Params) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hst.SetParams(p)
}

// SetStepOverheadUs adjusts the per-step instrumentation cost mid-run.
func (r *Runner) SetStepOverheadUs(us float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.opts.StepOverheadUs = us
}

// Stall halts the input pipeline for d simulated time — the cost of a
// checkpoint restore when the optimizer rolls back a bad parameter move.
func (r *Runner) Stall(d simclock.Duration, step int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hst.StallPipeline(d, step)
}

// HostParams returns the active pipeline parameters.
func (r *Runner) HostParams() host.Params {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.hst.Params()
}

// Done reports whether the run has completed.
func (r *Runner) Done() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.done
}

// Now returns the run's simulated progress time.
func (r *Runner) Now() simclock.Time {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.now
}

// TotalTime returns the simulated wall time of the completed run.
func (r *Runner) TotalTime() simclock.Duration {
	return simclock.Duration(r.Now())
}

// NonTrainTime returns the simulated time spent outside training steps so
// far: session init, eval blocks, and checkpoint/summary writes. The
// optimizer's critical-phase detector compares the training phase against
// this — without it, "training holds >50% of aggregated time" is vacuously
// true from the first step.
func (r *Runner) NonTrainTime() simclock.Duration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nonTrain
}

// Checkpoints returns the checkpoints saved during the run.
func (r *Runner) Checkpoints() []Checkpoint {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Checkpoint, len(r.checkpoints))
	copy(out, r.checkpoints)
	return out
}

// IdleFraction returns the device's idle share over the run.
func (r *Runner) IdleFraction() float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dev.IdleFraction()
}

// MXUUtilization returns the device's FLOP-weighted MXU occupancy.
func (r *Runner) MXUUtilization() float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dev.MXUUtilization()
}

// Spec returns the device chip spec.
func (r *Runner) Spec() tpu.ChipSpec {
	return r.dev.Spec
}

// StepTimings returns the device's per-step timing records.
func (r *Runner) StepTimings() []tpu.StepTiming {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]tpu.StepTiming, len(r.dev.Timings()))
	copy(out, r.dev.Timings())
	return out
}

// WeightBytes returns the train program's parameter footprint.
func (r *Runner) WeightBytes() int64 { return r.trainProg.WeightBytes }

// ensureMerged rebuilds the merged event cache if new events arrived.
// Callers must hold at least the read lock; the cache swap upgrades.
func (r *Runner) mergedEvents() []trace.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	de, he := r.dev.Events(), r.hst.Events()
	if total := len(de) + len(he); total != r.mergedUpTo {
		m := make([]trace.Event, 0, total)
		m = append(m, de...)
		m = append(m, he...)
		sort.SliceStable(m, func(i, j int) bool { return m[i].Start < m[j].Start })
		r.merged = m
		r.mergedUpTo = total
	}
	return r.merged
}

// Events returns the merged host+device event stream, time-ordered.
func (r *Runner) Events() []trace.Event {
	return r.mergedEvents()
}

// EventsInWindow implements tpu.EventSource over the merged stream.
func (r *Runner) EventsInWindow(from, to simclock.Time) []trace.Event {
	m := r.mergedEvents()
	lo := sort.Search(len(m), func(i int) bool { return m[i].Start >= from })
	hi := sort.Search(len(m), func(i int) bool { return m[i].Start >= to })
	out := make([]trace.Event, hi-lo)
	copy(out, m[lo:hi])
	return out
}

// WindowMetrics implements tpu.EventSource, delegating to the device.
func (r *Runner) WindowMetrics(from, to simclock.Time) (float64, float64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dev.WindowMetrics(from, to)
}

// ProfileService returns a profile service bound to this run.
func (r *Runner) ProfileService() *tpu.ProfileService {
	return tpu.NewProfileService(r, r.dev.Spec,
		func() simclock.Time { return r.Now() },
		func() bool { return r.Done() })
}

var _ tpu.EventSource = (*Runner)(nil)
