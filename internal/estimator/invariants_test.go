package estimator

import (
	"testing"
	"testing/quick"

	"repro/internal/tpu"
	"repro/internal/workloads"
)

// Run-level invariants that must hold for every workload and generation.

func TestInvariantStepTimingsOrdered(t *testing.T) {
	for _, name := range []string{"bert-squad", "dcgan-cifar10", "retinanet-coco"} {
		r := quickRun(t, name, Options{Steps: 120})
		ts := r.StepTimings()
		if len(ts) == 0 {
			t.Fatalf("%s: no step timings", name)
		}
		for i, st := range ts {
			if st.End <= st.Start {
				t.Fatalf("%s: step %d has non-positive span", name, st.Step)
			}
			if st.Idle < 0 || st.MXUBusy < 0 {
				t.Fatalf("%s: step %d negative accounting", name, st.Step)
			}
			if i > 0 && st.Start < ts[i-1].End {
				t.Fatalf("%s: step %d overlaps predecessor", name, st.Step)
			}
		}
	}
}

func TestInvariantIdentityMetricsAgree(t *testing.T) {
	// The run-level idle fraction must equal the timing-derived one.
	r := quickRun(t, "bert-cola", Options{Steps: 150})
	ts := r.StepTimings()
	var idle, span int64
	first := ts[0].Start
	last := ts[len(ts)-1].End
	for _, st := range ts {
		idle += int64(st.Idle)
	}
	span = int64(last - first)
	derived := float64(idle) / float64(span)
	got := r.IdleFraction()
	if diff := derived - got; diff > 0.02 || diff < -0.02 {
		t.Fatalf("idle metrics disagree: derived %.4f vs reported %.4f", derived, got)
	}
}

func TestInvariantEventsWithinRun(t *testing.T) {
	r := quickRun(t, "dcgan-mnist", Options{Steps: 100})
	end := r.Now()
	for _, e := range r.Events() {
		if e.Start < 0 || e.Dur < 0 {
			t.Fatalf("event %q has negative time", e.Name)
		}
		if e.Start > end {
			t.Fatalf("event %q starts after the run ends (%d > %d)", e.Name, e.Start, end)
		}
	}
}

func TestInvariantSeedIsolation(t *testing.T) {
	// Different seeds change jitter but not the structural outputs.
	a := quickRun(t, "bert-mrpc", Options{Steps: 100, Seed: 1})
	b := quickRun(t, "bert-mrpc", Options{Steps: 100, Seed: 2})
	if a.TotalTime() == b.TotalTime() {
		t.Fatal("different seeds produced identical total time (no jitter?)")
	}
	// But the structure matches: same step count, same op-name universe.
	if len(a.StepTimings()) != len(b.StepTimings()) {
		t.Fatal("seed changed step count")
	}
	ratio := float64(a.TotalTime()) / float64(b.TotalTime())
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("seed changed total time by %.2fx; jitter should be small", ratio)
	}
}

// Property: for any (workload, steps) pair, the device is never reported
// >100% busy and MXU occupancy never exceeds the busy span.
func TestPropertyUtilizationBounds(t *testing.T) {
	names := workloads.Names()
	f := func(wRaw, sRaw uint8, v3 bool) bool {
		name := names[int(wRaw)%len(names)]
		steps := 30 + int(sRaw)%90
		version := tpu.V2
		if v3 {
			version = tpu.V3
		}
		w := workloads.MustGet(name)
		r, err := New(w, Options{Steps: steps, Version: version})
		if err != nil {
			return false
		}
		if err := r.Run(); err != nil {
			return false
		}
		idle, mxu := r.IdleFraction(), r.MXUUtilization()
		return idle >= 0 && idle < 1 && mxu > 0 && mxu < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
