package estimator

import (
	"testing"

	"repro/internal/host"
	"repro/internal/storage"
	"repro/internal/tpu"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// quickRun runs a shortened workload for tests.
func quickRun(t testing.TB, name string, opts Options) *Runner {
	t.Helper()
	w := workloads.MustGet(name)
	if opts.Steps == 0 {
		opts.Steps = 200
	}
	r, err := New(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunProducesPlausibleMetrics(t *testing.T) {
	r := quickRun(t, "bert-squad", Options{})
	if !r.Done() {
		t.Fatal("run not done")
	}
	idle := r.IdleFraction()
	if idle < 0.15 || idle > 0.60 {
		t.Fatalf("idle = %g, out of plausible range", idle)
	}
	mxu := r.MXUUtilization()
	if mxu < 0.05 || mxu > 0.6 {
		t.Fatalf("mxu = %g", mxu)
	}
	if r.TotalTime() <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestRunTwiceFails(t *testing.T) {
	r := quickRun(t, "dcgan-mnist", Options{Steps: 50})
	if err := r.Run(); err == nil {
		t.Fatal("second Run succeeded")
	}
}

func TestEventsMergedAndOrdered(t *testing.T) {
	r := quickRun(t, "qanet-squad", Options{Steps: 100})
	events := r.Events()
	if len(events) == 0 {
		t.Fatal("no events")
	}
	sawHost, sawTPU := false, false
	for i, e := range events {
		if i > 0 && e.Start < events[i-1].Start {
			t.Fatal("events not time-ordered")
		}
		switch e.Device {
		case trace.Host:
			sawHost = true
		case trace.TPU:
			sawTPU = true
		}
	}
	if !sawHost || !sawTPU {
		t.Fatalf("merged stream missing a device: host=%v tpu=%v", sawHost, sawTPU)
	}
}

func TestEventsInWindowPartition(t *testing.T) {
	r := quickRun(t, "dcgan-cifar10", Options{Steps: 60})
	all := r.Events()
	mid := all[len(all)/2].Start
	a := r.EventsInWindow(0, mid)
	b := r.EventsInWindow(mid, r.Now()+1)
	if len(a)+len(b) != len(all) {
		t.Fatalf("window partition %d+%d != %d", len(a), len(b), len(all))
	}
}

func TestCheckpointsSaved(t *testing.T) {
	svc := storage.NewService()
	bucket, _ := svc.CreateBucket("ckpts")
	r := quickRun(t, "bert-mrpc", Options{Steps: 250, Bucket: bucket})
	cks := r.Checkpoints()
	if len(cks) < 2 {
		t.Fatalf("checkpoints = %d, want >= 2 for 250 steps at every-100", len(cks))
	}
	for _, ck := range cks {
		if !bucket.Exists(ck.Object) {
			t.Fatalf("checkpoint object %q missing from bucket", ck.Object)
		}
		if ck.Step < 0 || ck.At <= 0 {
			t.Fatalf("degenerate checkpoint %+v", ck)
		}
	}
}

func TestEvalBlocksRun(t *testing.T) {
	r := quickRun(t, "bert-squad", Options{Steps: 200})
	// Steps 0..149 train, then a 25-step eval block appears.
	names := map[string]bool{}
	for _, e := range r.Events() {
		names[e.Name] = true
	}
	if !names["ArgMax"] {
		t.Fatal("no eval metric events; eval block did not run")
	}
	// Eval disabled removes them.
	r2 := quickRun(t, "bert-squad", Options{Steps: 200, DisableEval: true})
	for _, e := range r2.Events() {
		if e.Name == "ArgMax" {
			t.Fatal("eval events with DisableEval")
		}
	}
}

func TestSessionLifecycleOps(t *testing.T) {
	r := quickRun(t, "dcgan-mnist", Options{Steps: 120})
	names := map[string]bool{}
	for _, e := range r.Events() {
		names[e.Name] = true
	}
	for _, want := range []string{
		"InitializeHostForDistributedTpu", "RestoreV2", "StartProgram",
		"DisconnectHostFromDistributedTPUSystem",
		"TransferBufferToInfeedLocked", "OutfeedDequeueTuple", "SaveV2",
	} {
		if !names[want] {
			t.Fatalf("missing lifecycle op %q", want)
		}
	}
}

func TestV3IdleHigherMXULower(t *testing.T) {
	r2 := quickRun(t, "bert-mnli", Options{Steps: 200})
	r3 := quickRun(t, "bert-mnli", Options{Steps: 200, Version: tpu.V3})
	if r3.IdleFraction() <= r2.IdleFraction() {
		t.Fatalf("v3 idle %.3f not above v2 %.3f", r3.IdleFraction(), r2.IdleFraction())
	}
	ratio := r2.MXUUtilization() / r3.MXUUtilization()
	if ratio < 1.5 || ratio > 2.6 {
		t.Fatalf("v2/v3 MXU ratio = %.2f, want ~2", ratio)
	}
}

func TestNaiveParamsSlower(t *testing.T) {
	naive := host.NaiveParams()
	rn := quickRun(t, "qanet-squad", Options{Steps: 150, HostParams: &naive})
	rt := quickRun(t, "qanet-squad", Options{Steps: 150})
	if rn.TotalTime() <= rt.TotalTime() {
		t.Fatalf("naive run %v not slower than tuned %v", rn.TotalTime(), rt.TotalTime())
	}
	if rn.IdleFraction() <= rt.IdleFraction() {
		t.Fatalf("naive idle %.3f not above tuned %.3f", rn.IdleFraction(), rt.IdleFraction())
	}
}

func TestStepOverheadSlowsRun(t *testing.T) {
	base := quickRun(t, "dcgan-cifar10", Options{Steps: 100})
	loaded := quickRun(t, "dcgan-cifar10", Options{Steps: 100, StepOverheadUs: 20000})
	if loaded.TotalTime() <= base.TotalTime() {
		t.Fatal("step overhead did not slow the run")
	}
}

func TestOnTrainStepHookAndRetune(t *testing.T) {
	w := workloads.MustGet("qanet-squad")
	naive := host.NaiveParams()
	var calls int
	retuned := false
	opts := Options{
		Steps:      150,
		HostParams: &naive,
		OnTrainStep: func(r *Runner, step int64, st tpu.StepTiming) {
			calls++
			if step == 50 && !retuned {
				retuned = true
				if err := r.SetHostParams(host.DefaultParams()); err != nil {
					t.Error(err)
				}
			}
		},
	}
	r, err := New(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if calls != 150 {
		t.Fatalf("hook called %d times, want 150", calls)
	}
	if r.HostParams() != host.DefaultParams() {
		t.Fatal("retune did not stick")
	}
	// Retuned run beats the all-naive run.
	rn := quickRun(t, "qanet-squad", Options{Steps: 150, HostParams: &naive})
	if r.TotalTime() >= rn.TotalTime() {
		t.Fatalf("mid-run retune %v not faster than naive %v", r.TotalTime(), rn.TotalTime())
	}
}

func TestProfileServiceIntegration(t *testing.T) {
	r := quickRun(t, "dcgan-mnist", Options{Steps: 80})
	svc := r.ProfileService()
	var events int
	for i := 0; i < 10000; i++ {
		resp := svc.NextWindow()
		events += len(resp.Events)
		if resp.EndOfStream {
			break
		}
	}
	if events != len(r.Events()) {
		t.Fatalf("profile service delivered %d of %d events", events, len(r.Events()))
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := quickRun(t, "bert-cola", Options{Steps: 100})
	b := quickRun(t, "bert-cola", Options{Steps: 100})
	if a.TotalTime() != b.TotalTime() {
		t.Fatalf("total time differs: %v vs %v", a.TotalTime(), b.TotalTime())
	}
	if len(a.Events()) != len(b.Events()) {
		t.Fatal("event counts differ")
	}
}

func TestNewRejectsNilWorkload(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil workload accepted")
	}
}

func BenchmarkRunDCGAN100Steps(b *testing.B) {
	w := workloads.MustGet("dcgan-cifar10")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := New(w, Options{Steps: 100})
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFastForwardFromCheckpoint(t *testing.T) {
	svc := storage.NewService()
	bucket, _ := svc.CreateBucket("ckpts")
	first := quickRun(t, "bert-mrpc", Options{Steps: 150, Bucket: bucket})
	cks := first.Checkpoints()
	if len(cks) == 0 {
		t.Fatal("no checkpoints to resume from")
	}
	ck := cks[0]

	w := workloads.MustGet("bert-mrpc")
	resumed, err := New(w, Options{
		Steps:       80,
		Bucket:      bucket,
		StartStep:   ck.Step + 1,
		RestoreFrom: ck.Object,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Run(); err != nil {
		t.Fatal(err)
	}
	// All training steps carry post-checkpoint step numbers.
	minStep := int64(1 << 62)
	for _, st := range resumed.StepTimings() {
		if st.Step < minStep {
			minStep = st.Step
		}
	}
	if minStep != ck.Step+1 {
		t.Fatalf("resumed run starts at step %d, want %d", minStep, ck.Step+1)
	}
	// The fast-forwarded run is much shorter than a from-zero run of the
	// same end step (that's the point of restarting at a phase).
	if resumed.TotalTime() >= first.TotalTime() {
		t.Fatalf("resume (%v) not shorter than full run (%v)", resumed.TotalTime(), first.TotalTime())
	}
}

func TestFastForwardValidation(t *testing.T) {
	w := workloads.MustGet("dcgan-mnist")
	// StartStep without a restore source.
	r, err := New(w, Options{Steps: 20, StartStep: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err == nil {
		t.Fatal("StartStep without RestoreFrom accepted")
	}
	// Restore object missing from the bucket.
	svc := storage.NewService()
	bucket, _ := svc.CreateBucket("b")
	r2, err := New(w, Options{Steps: 20, StartStep: 5, Bucket: bucket, RestoreFrom: "ckpt/nope"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Run(); err == nil {
		t.Fatal("missing restore checkpoint accepted")
	}
}
