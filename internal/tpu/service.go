package tpu

import (
	"sync"

	"repro/internal/protowire"
	"repro/internal/rpc"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// RPC method names exposed by the device's profile service.
const (
	MethodProfile = "tpu.Profile"
	MethodStatus  = "tpu.Status"
)

// ProfileResponse is the decoded form of one profile service reply.
type ProfileResponse struct {
	Events      []trace.Event
	WindowStart simclock.Time
	WindowEnd   simclock.Time
	IdleFrac    float64
	MXUUtil     float64
	EndOfStream bool // training finished and all events delivered
	Truncated   bool // window clipped at the event or duration limit
}

// StatusResponse describes the device for status queries.
type StatusResponse struct {
	Version    string
	MXUs       int64
	HBMBytes   int64
	PeakTFLOPS float64
}

// EventSource is what the profile service profiles: a window-addressable
// event stream with per-window device metadata. *Device implements it for
// TPU-only profiles; the estimator's machine implements it with host and
// TPU events merged, which is what real profile responses contain.
type EventSource interface {
	EventsInWindow(from, to simclock.Time) []trace.Event
	WindowMetrics(from, to simclock.Time) (idleFrac, mxuUtil float64)
}

// ProfileService exposes an EventSource over the rpc package, mimicking
// the gRPC profile endpoint that CLOUD-TPU-PROFILER and TPUPoint both hit.
// Each Profile call returns the next window of the event stream (at most
// trace.MaxProfileWindow of simulated time or trace.MaxEventsPerProfile
// events), with the device's idle/MXU metadata for that window.
type ProfileService struct {
	mu     sync.Mutex
	src    EventSource
	spec   ChipSpec
	cursor simclock.Time

	// nowFn reports how far simulated execution has progressed; the
	// service never returns a window beyond it. doneFn reports whether
	// the training run has finished.
	nowFn  func() simclock.Time
	doneFn func() bool
}

// NewProfileService wraps src. nowFn and doneFn connect the service to the
// training loop's progress; spec answers status queries.
func NewProfileService(src EventSource, spec ChipSpec, nowFn func() simclock.Time, doneFn func() bool) *ProfileService {
	return &ProfileService{src: src, spec: spec, nowFn: nowFn, doneFn: doneFn}
}

// Register installs the service's methods on an RPC server.
func (s *ProfileService) Register(srv *rpc.Server) {
	srv.Register(MethodProfile, s.handleProfile)
	srv.Register(MethodStatus, s.handleStatus)
}

// NextWindow computes one profile window directly (used in-process by
// tests and by the in-memory fast path).
func (s *ProfileService) NextWindow() ProfileResponse {
	s.mu.Lock()
	defer s.mu.Unlock()

	now := s.nowFn()
	done := s.doneFn()
	from := s.cursor
	to := from.Add(trace.MaxProfileWindow)
	truncated := false
	if to > now {
		to = now
	} else if to < now {
		truncated = true // more activity exists past the window limit
	}

	var resp ProfileResponse
	resp.WindowStart = from
	if to <= from {
		resp.WindowEnd = from
		resp.EndOfStream = done
		return resp
	}

	events := s.src.EventsInWindow(from, to)
	if len(events) > trace.MaxEventsPerProfile {
		// Clip the window at the limit-th event; the rest ship next time.
		events = events[:trace.MaxEventsPerProfile]
		to = events[len(events)-1].Start + 1
		truncated = true
	}
	idle, mxu := s.src.WindowMetrics(from, to)
	resp.Events = events
	resp.WindowEnd = to
	resp.IdleFrac = idle
	resp.MXUUtil = mxu
	resp.Truncated = truncated
	resp.EndOfStream = done && to >= now
	s.cursor = to
	return resp
}

func (s *ProfileService) handleProfile(body []byte) ([]byte, error) {
	resp := s.NextWindow()
	return marshalProfileResponse(&resp), nil
}

func (s *ProfileService) handleStatus(body []byte) ([]byte, error) {
	e := protowire.NewEncoder(nil)
	e.String(1, s.spec.Name)
	e.Uint64(2, uint64(s.spec.MXUs))
	e.Uint64(3, uint64(s.spec.HBMBytes))
	e.Double(4, s.spec.PeakTFLOPS)
	return e.Bytes(), nil
}

// Wire schema for ProfileResponse:
//
//	message ProfileResponse {
//	  bytes  events       = 1; // EventBatch
//	  uint64 window_start = 2;
//	  uint64 window_end   = 3;
//	  double idle_frac    = 4;
//	  double mxu_util     = 5;
//	  bool   end_of_stream= 6;
//	  bool   truncated    = 7;
//	}

func marshalProfileResponse(r *ProfileResponse) []byte {
	e := protowire.NewEncoder(nil)
	e.Raw(1, trace.MarshalEvents(r.Events))
	e.Uint64(2, uint64(r.WindowStart))
	e.Uint64(3, uint64(r.WindowEnd))
	e.Double(4, r.IdleFrac)
	e.Double(5, r.MXUUtil)
	e.Bool(6, r.EndOfStream)
	e.Bool(7, r.Truncated)
	return e.Bytes()
}

// UnmarshalProfileResponse decodes a profile reply; the profiler's client
// stub uses it.
func UnmarshalProfileResponse(data []byte) (*ProfileResponse, error) {
	r := &ProfileResponse{}
	d := protowire.NewDecoder(data)
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			raw, err := d.Raw()
			if err != nil {
				return nil, err
			}
			events, err := trace.UnmarshalEvents(raw)
			if err != nil {
				return nil, err
			}
			r.Events = events
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			r.WindowStart = simclock.Time(v)
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			r.WindowEnd = simclock.Time(v)
		case 4:
			v, err := d.Double()
			if err != nil {
				return nil, err
			}
			r.IdleFrac = v
		case 5:
			v, err := d.Double()
			if err != nil {
				return nil, err
			}
			r.MXUUtil = v
		case 6:
			v, err := d.Bool()
			if err != nil {
				return nil, err
			}
			r.EndOfStream = v
		case 7:
			v, err := d.Bool()
			if err != nil {
				return nil, err
			}
			r.Truncated = v
		default:
			if err := d.Skip(ty); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// UnmarshalStatusResponse decodes a status reply.
func UnmarshalStatusResponse(data []byte) (*StatusResponse, error) {
	r := &StatusResponse{}
	d := protowire.NewDecoder(data)
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			v, err := d.String()
			if err != nil {
				return nil, err
			}
			r.Version = v
		case 2:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			r.MXUs = int64(v)
		case 3:
			v, err := d.Uint64()
			if err != nil {
				return nil, err
			}
			r.HBMBytes = int64(v)
		case 4:
			v, err := d.Double()
			if err != nil {
				return nil, err
			}
			r.PeakTFLOPS = v
		default:
			if err := d.Skip(ty); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}
