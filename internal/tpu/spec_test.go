package tpu

import (
	"errors"
	"testing"
)

func TestChipSpecValidate(t *testing.T) {
	mutate := func(f func(*ChipSpec)) ChipSpec {
		c := NewChipSpec(V2)
		f(&c)
		return c
	}
	cases := []struct {
		name    string
		spec    ChipSpec
		wantErr bool
	}{
		{"v2-default", NewChipSpec(V2), false},
		{"v3-default", NewChipSpec(V3), false},
		{"zero-mxus", mutate(func(c *ChipSpec) { c.MXUs = 0 }), true},
		{"negative-mxus", mutate(func(c *ChipSpec) { c.MXUs = -2 }), true},
		{"zero-hbm", mutate(func(c *ChipSpec) { c.HBMBytes = 0 }), true},
		{"zero-peak", mutate(func(c *ChipSpec) { c.PeakTFLOPS = 0 }), true},
		{"negative-peak", mutate(func(c *ChipSpec) { c.PeakTFLOPS = -45 }), true},
		{"zero-efficiency", mutate(func(c *ChipSpec) { c.MXUEfficiency = 0 }), true},
		{"efficiency-over-one", mutate(func(c *ChipSpec) { c.MXUEfficiency = 1.5 }), true},
		{"zero-hbm-bandwidth", mutate(func(c *ChipSpec) { c.HBMGBps = 0 }), true},
		{"negative-infeed", mutate(func(c *ChipSpec) { c.InfeedGBps = -10 }), true},
		{"negative-issue-overhead", mutate(func(c *ChipSpec) { c.IssueOverhead = -1 }), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.wantErr {
				if !errors.Is(err, ErrBadSpec) {
					t.Fatalf("Validate() = %v, want ErrBadSpec", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Validate() unexpected error: %v", err)
			}
		})
	}
}
