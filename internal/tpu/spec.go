// Package tpu models the Cloud TPU device: chip specifications for TPUv2
// and TPUv3, a timing engine that executes compiled XLA programs step by
// step, idle-time and MXU-utilization accounting, and the profile service
// that TPUPoint-Profiler queries over RPC.
//
// The model is a calibrated discrete-timing simulator. Each instruction's
// duration is the roofline max of its compute time (FLOPs over effective
// matrix throughput) and its memory time (HBM bytes over bandwidth), plus a
// fixed issue overhead. The paper's architectural observations all emerge
// from the two published differences between the generations: TPUv3 has
// twice the MXUs (so compute halves) and twice the HBM, while the host and
// its input pipeline stay the same.
package tpu

import (
	"errors"
	"fmt"

	"repro/internal/simclock"
)

// Version selects a Cloud TPU generation.
type Version int

// Available generations. The first generation is inference-only and not
// offered on Cloud, so the toolchain targets v2 and v3 like the paper.
const (
	V2 Version = 2
	V3 Version = 3
)

func (v Version) String() string {
	switch v {
	case V2:
		return "TPUv2"
	case V3:
		return "TPUv3"
	default:
		return fmt.Sprintf("TPUv%d", int(v))
	}
}

// ChipSpec describes one TPU chip as visible to the runtime.
type ChipSpec struct {
	Version Version
	Name    string

	// MXUs is the number of matrix units on the chip. Each TPUv2 chip
	// carries two MXUs; TPUv3 packs four in the same power envelope.
	MXUs int

	// HBMBytes is high-bandwidth memory capacity. 8 GiB per MXU on v2
	// (16 GiB/chip), 32 GiB/chip on v3.
	HBMBytes int64

	// PeakTFLOPS is the advertised peak: 45 for v2, 90 for v3.
	PeakTFLOPS float64

	// MXUEfficiency derates peak throughput for real kernels (tiling,
	// pipeline bubbles). Applied uniformly; per-op variation comes from
	// the roofline with memory time.
	MXUEfficiency float64

	// HBMGBps is memory bandwidth in GB/s: 700 for v2, 900 for v3.
	HBMGBps float64

	// InfeedGBps is host→TPU transfer bandwidth (PCIe-class, unchanged
	// between generations — which is the root of Observation 5).
	InfeedGBps float64

	// IssueOverhead is the fixed per-instruction launch cost.
	IssueOverhead simclock.Duration
}

// NewChipSpec returns the spec for a generation.
func NewChipSpec(v Version) ChipSpec {
	switch v {
	case V3:
		// Efficiency note: TPUv3 doubles the MXUs, but a model tuned for
		// v2's tile sizes cannot fill them — the paper measures FLOP
		// utilization *dropping* on v3 (e.g. QANet 16%→13%) while per-
		// step time barely improves. A lower efficiency derate on the
		// doubled peak captures exactly that: ~9% higher effective
		// throughput, not 2×.
		return ChipSpec{
			Version:       V3,
			Name:          "TPUv3",
			MXUs:          4,
			HBMBytes:      32 << 30,
			PeakTFLOPS:    90,
			MXUEfficiency: 0.23,
			HBMGBps:       900,
			InfeedGBps:    10,
			IssueOverhead: 2 * simclock.Microsecond,
		}
	default:
		return ChipSpec{
			Version:       V2,
			Name:          "TPUv2",
			MXUs:          2,
			HBMBytes:      16 << 30,
			PeakTFLOPS:    45,
			MXUEfficiency: 0.42,
			HBMGBps:       700,
			InfeedGBps:    10,
			IssueOverhead: 2 * simclock.Microsecond,
		}
	}
}

// ErrBadSpec rejects chip specs that cannot describe hardware: non-positive
// unit counts, memory sizes, clock-rate-derived throughputs, or bandwidths.
// Before validation a zero-bandwidth spec divided through the roofline into
// Inf/NaN instruction times and the simulation silently produced nonsense.
var ErrBadSpec = errors.New("tpu: invalid chip spec")

// Validate rejects non-physical chip specs with a typed error.
func (c ChipSpec) Validate() error {
	if c.MXUs < 1 {
		return fmt.Errorf("%w: MXUs = %d, must be >= 1", ErrBadSpec, c.MXUs)
	}
	if c.HBMBytes < 1 {
		return fmt.Errorf("%w: HBMBytes = %d, must be >= 1", ErrBadSpec, c.HBMBytes)
	}
	rates := []struct {
		name string
		v    float64
	}{
		{"PeakTFLOPS", c.PeakTFLOPS},
		{"MXUEfficiency", c.MXUEfficiency},
		{"HBMGBps", c.HBMGBps},
		{"InfeedGBps", c.InfeedGBps},
	}
	for _, r := range rates {
		if !(r.v > 0) { // rejects zero, negatives, and NaN
			return fmt.Errorf("%w: %s = %g, must be > 0", ErrBadSpec, r.name, r.v)
		}
	}
	if c.MXUEfficiency > 1 {
		return fmt.Errorf("%w: MXUEfficiency = %g, must be <= 1", ErrBadSpec, c.MXUEfficiency)
	}
	if c.IssueOverhead < 0 {
		return fmt.Errorf("%w: IssueOverhead = %d, must be >= 0", ErrBadSpec, c.IssueOverhead)
	}
	return nil
}

// flopsPerMicro returns effective matrix throughput in FLOP/µs.
func (c ChipSpec) flopsPerMicro() float64 {
	return c.PeakTFLOPS * c.MXUEfficiency * 1e6
}

// peakFlopsPerMicro returns the un-derated peak in FLOP/µs, the denominator
// for MXU/FLOP utilization metrics.
func (c ChipSpec) peakFlopsPerMicro() float64 {
	return c.PeakTFLOPS * 1e6
}

// hbmBytesPerMicro returns HBM bandwidth in bytes/µs.
func (c ChipSpec) hbmBytesPerMicro() float64 {
	return c.HBMGBps * 1e3
}

// InfeedBytesPerMicro returns host→TPU bandwidth in bytes/µs.
func (c ChipSpec) InfeedBytesPerMicro() float64 {
	return c.InfeedGBps * 1e3
}
