package tpu

import (
	"testing"

	"repro/internal/rpc"
	"repro/internal/simclock"
	"repro/internal/trace"
)

func serviceFixture(t *testing.T, steps int) (*Device, *ProfileService) {
	t.Helper()
	d := newTestDevice(t, V2)
	at := simclock.Time(0)
	for i := 0; i < steps; i++ {
		st, err := d.RunStep(int64(i), at)
		if err != nil {
			t.Fatal(err)
		}
		at = st.End.Add(1000)
	}
	done := true
	svc := NewProfileService(d, d.Spec,
		func() simclock.Time { return d.FreeAt() },
		func() bool { return done })
	return d, svc
}

func TestNextWindowDeliversAllEvents(t *testing.T) {
	d, svc := serviceFixture(t, 30)
	var got int
	for i := 0; i < 1000; i++ {
		resp := svc.NextWindow()
		got += len(resp.Events)
		if resp.EndOfStream {
			break
		}
	}
	if got != len(d.Events()) {
		t.Fatalf("delivered %d of %d events", got, len(d.Events()))
	}
}

func TestNextWindowRespectsDurationLimit(t *testing.T) {
	d := newTestDevice(t, V2)
	// Two steps separated by more than the max window.
	st, _ := d.RunStep(0, 0)
	d.RunStep(1, st.End.Add(2*trace.MaxProfileWindow))
	svc := NewProfileService(d, d.Spec,
		func() simclock.Time { return d.FreeAt() },
		func() bool { return true })

	first := svc.NextWindow()
	if first.WindowEnd.Sub(first.WindowStart) > trace.MaxProfileWindow {
		t.Fatalf("window span %v exceeds limit", first.WindowEnd.Sub(first.WindowStart))
	}
	if !first.Truncated {
		t.Fatal("clipped window not marked truncated")
	}
	if first.EndOfStream {
		t.Fatal("end of stream before all events delivered")
	}
}

func TestNextWindowEmptyBeforeActivity(t *testing.T) {
	d := newTestDevice(t, V2)
	svc := NewProfileService(d, d.Spec,
		func() simclock.Time { return 0 },
		func() bool { return false })
	resp := svc.NextWindow()
	if len(resp.Events) != 0 || resp.EndOfStream {
		t.Fatalf("idle service returned %d events, eos=%v", len(resp.Events), resp.EndOfStream)
	}
}

func TestWindowMetadataPlausible(t *testing.T) {
	_, svc := serviceFixture(t, 30)
	resp := svc.NextWindow()
	if resp.IdleFrac < 0 || resp.IdleFrac > 1 {
		t.Fatalf("idle = %g", resp.IdleFrac)
	}
	if resp.MXUUtil < 0 || resp.MXUUtil > 1 {
		t.Fatalf("mxu = %g", resp.MXUUtil)
	}
}

func TestProfileOverRPC(t *testing.T) {
	d, svc := serviceFixture(t, 20)
	srv := rpc.NewServer()
	svc.Register(srv)
	defer srv.Close()
	c := rpc.Pipe(srv)
	defer c.Close()

	var got int
	for i := 0; i < 100; i++ {
		raw, err := c.Call(MethodProfile, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := UnmarshalProfileResponse(raw)
		if err != nil {
			t.Fatal(err)
		}
		got += len(resp.Events)
		if resp.EndOfStream {
			break
		}
	}
	if got != len(d.Events()) {
		t.Fatalf("RPC delivered %d of %d events", got, len(d.Events()))
	}
}

func TestStatusOverRPC(t *testing.T) {
	_, svc := serviceFixture(t, 1)
	srv := rpc.NewServer()
	svc.Register(srv)
	defer srv.Close()
	c := rpc.Pipe(srv)
	defer c.Close()

	raw, err := c.Call(MethodStatus, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := UnmarshalStatusResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != "TPUv2" || st.MXUs != 2 || st.PeakTFLOPS != 45 {
		t.Fatalf("status = %+v", st)
	}
}

func TestProfileResponseRoundTrip(t *testing.T) {
	resp := &ProfileResponse{
		Events: []trace.Event{
			{Name: "fusion", Device: trace.TPU, Start: 10, Dur: 100, Step: 3},
			{Name: "OutfeedDequeueTuple", Device: trace.Host, Start: 110, Dur: 20, Step: 3},
		},
		WindowStart: 0,
		WindowEnd:   200,
		IdleFrac:    0.39,
		MXUUtil:     0.22,
		EndOfStream: true,
		Truncated:   true,
	}
	got, err := UnmarshalProfileResponse(marshalProfileResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 2 || got.Events[0] != resp.Events[0] || got.Events[1] != resp.Events[1] {
		t.Fatalf("events: %+v", got.Events)
	}
	if got.WindowEnd != 200 || got.IdleFrac != 0.39 || got.MXUUtil != 0.22 ||
		!got.EndOfStream || !got.Truncated {
		t.Fatalf("fields: %+v", got)
	}
}

func TestEventBatchRoundTrip(t *testing.T) {
	events := []trace.Event{
		{Name: "a", Device: trace.Host, Start: 1, Dur: 2, Step: -1},
		{Name: "b", Device: trace.TPU, Start: 3, Dur: 4, Step: 7},
	}
	got, err := trace.UnmarshalEvents(trace.MarshalEvents(events))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != events[0] || got[1] != events[1] {
		t.Fatalf("round trip: %+v", got)
	}
	if empty, err := trace.UnmarshalEvents(trace.MarshalEvents(nil)); err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v %v", empty, err)
	}
}
