package tpu

import (
	"errors"
	"fmt"

	"repro/internal/prng"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/xla"
)

// ErrOutOfMemory is returned when a program's weights exceed HBM.
var ErrOutOfMemory = errors.New("tpu: program exceeds HBM capacity")

// StepTiming records the device-level timing summary of one executed step;
// the profile service aggregates these into the idle/MXU metadata that
// ships with each profile response.
type StepTiming struct {
	Step    int64
	Start   simclock.Time
	End     simclock.Time
	Idle    simclock.Duration // time waiting for infeed before the step
	MXUBusy simclock.Duration // FLOP-equivalent MXU occupancy at peak
}

// Device executes compiled programs and records the event stream.
type Device struct {
	Spec ChipSpec

	rng     *prng.Source
	jitterF float64

	program *xla.Program

	freeAt  simclock.Time
	events  []trace.Event
	timings []StepTiming

	totalIdle simclock.Duration
	totalMXU  simclock.Duration
	firstBusy simclock.Time
	started   bool
}

// NewDevice returns a device with the given spec. Seed controls the
// per-instruction timing jitter stream.
func NewDevice(spec ChipSpec, seed uint64) *Device {
	return &Device{
		Spec:    spec,
		rng:     prng.New(seed),
		jitterF: 0.04,
	}
}

// LoadProgram installs the step program, validating HBM capacity. The
// working set is approximated as weights plus four batch buffers (double-
// buffered infeed and outfeed).
func (d *Device) LoadProgram(p *xla.Program) error {
	need := p.WeightBytes + 4*p.InfeedBytes
	if need > d.Spec.HBMBytes {
		return fmt.Errorf("%w: need %d bytes, have %d", ErrOutOfMemory, need, d.Spec.HBMBytes)
	}
	d.program = p
	return nil
}

// Program returns the currently loaded program.
func (d *Device) Program() *xla.Program { return d.program }

// InstructionTime returns the roofline duration of one instruction on this
// chip: max(compute, memory) plus issue overhead, before jitter.
func (d *Device) InstructionTime(inst *xla.Instruction) simclock.Duration {
	compute := float64(inst.FLOPs) / d.Spec.flopsPerMicro()
	mem := float64(inst.Bytes) / d.Spec.hbmBytesPerMicro()
	dur := compute
	if mem > dur {
		dur = mem
	}
	return simclock.Duration(dur+0.5) + d.Spec.IssueOverhead
}

// mxuOccupancy returns the MXU-busy portion of an instruction: the time the
// matrix units would need at raw peak for the instruction's FLOPs. This is
// the numerator of the MXU-utilization metric the profile reports.
func (d *Device) mxuOccupancy(inst *xla.Instruction) simclock.Duration {
	if !inst.MXU {
		return 0
	}
	return simclock.Duration(float64(inst.FLOPs)/d.Spec.peakFlopsPerMicro() + 0.5)
}

// RunStep executes the loaded program once for the given step number.
// batchReady is when the input batch lands in the device's infeed queue;
// the device idles from its previous completion until then. It returns the
// step's timing summary.
func (d *Device) RunStep(step int64, batchReady simclock.Time) (StepTiming, error) {
	if d.program == nil {
		return StepTiming{}, errors.New("tpu: no program loaded")
	}
	start := d.freeAt
	if batchReady > start {
		start = batchReady
	}
	if !d.started {
		d.started = true
		d.firstBusy = start
	}
	idle := start.Sub(d.freeAt)
	if d.freeAt == 0 && len(d.timings) == 0 {
		idle = 0 // before the first step the device was off, not idle
	}

	t := start

	// On-device infeed dequeue: pull the batch out of the infeed queue
	// into HBM at memory bandwidth.
	if d.program.InfeedBytes > 0 {
		dur := simclock.Duration(float64(d.program.InfeedBytes)/d.Spec.hbmBytesPerMicro()+0.5) + d.Spec.IssueOverhead
		dur = d.jitter(dur)
		d.emit("InfeedDequeueTuple", t, dur, step)
		// The queue-side half of the transfer shows up as the "Infeed"
		// op in TPU profiles.
		d.emit("Infeed", t, dur/2, step)
		t = t.Add(dur)
	}

	var mxuBusy simclock.Duration
	for _, inst := range d.program.Instructions {
		dur := d.jitter(d.InstructionTime(inst))
		d.emit(inst.Op, t, dur, step)
		mxuBusy += d.mxuOccupancy(inst)
		t = t.Add(dur)
	}

	// Outfeed: results leave for the host-side dequeue.
	if d.program.OutfeedBytes > 0 {
		dur := simclock.Duration(float64(d.program.OutfeedBytes)/d.Spec.hbmBytesPerMicro()+0.5) + d.Spec.IssueOverhead
		dur = d.jitter(dur)
		d.emit("Outfeed", t, dur, step)
		t = t.Add(dur)
	}

	d.freeAt = t
	st := StepTiming{Step: step, Start: start, End: t, Idle: idle, MXUBusy: mxuBusy}
	d.timings = append(d.timings, st)
	d.totalIdle += idle
	d.totalMXU += mxuBusy
	return st, nil
}

// InjectEvent lets the runtime attribute an auxiliary device event (e.g. a
// compilation or checkpoint-restore op) to the stream.
func (d *Device) InjectEvent(name string, at simclock.Time, dur simclock.Duration, step int64) {
	d.emit(name, at, dur, step)
	if end := at.Add(dur); end > d.freeAt {
		d.freeAt = end
	}
}

func (d *Device) emit(name string, at simclock.Time, dur simclock.Duration, step int64) {
	d.events = append(d.events, trace.Event{
		Name: name, Device: trace.TPU, Start: at, Dur: dur, Step: step,
	})
}

func (d *Device) jitter(dur simclock.Duration) simclock.Duration {
	j := d.rng.Jitter(float64(dur), d.jitterF)
	if j < 1 {
		j = 1
	}
	return simclock.Duration(j)
}

// StepBusyTime returns the expected (jitter-free) device-busy time of one
// execution of the loaded program, including the infeed dequeue and
// outfeed. Workload calibration uses it to size host pipelines relative to
// device compute.
func (d *Device) StepBusyTime() simclock.Duration {
	if d.program == nil {
		return 0
	}
	var total simclock.Duration
	if d.program.InfeedBytes > 0 {
		total += simclock.Duration(float64(d.program.InfeedBytes)/d.Spec.hbmBytesPerMicro()+0.5) + d.Spec.IssueOverhead
	}
	for _, inst := range d.program.Instructions {
		total += d.InstructionTime(inst)
	}
	if d.program.OutfeedBytes > 0 {
		total += simclock.Duration(float64(d.program.OutfeedBytes)/d.Spec.hbmBytesPerMicro()+0.5) + d.Spec.IssueOverhead
	}
	return total
}

// FreeAt returns when the device finishes its current work.
func (d *Device) FreeAt() simclock.Time { return d.freeAt }

// Events returns the full recorded event stream. Callers must not mutate.
func (d *Device) Events() []trace.Event { return d.events }

// Timings returns per-step timing summaries. Callers must not mutate.
func (d *Device) Timings() []StepTiming { return d.timings }

// IdleFraction returns total idle time over total span from first activity.
func (d *Device) IdleFraction() float64 {
	span := d.freeAt.Sub(d.firstBusy)
	if span <= 0 {
		return 0
	}
	return float64(d.totalIdle) / float64(span)
}

// MXUUtilization returns FLOP-weighted MXU occupancy over the active span.
func (d *Device) MXUUtilization() float64 {
	span := d.freeAt.Sub(d.firstBusy)
	if span <= 0 {
		return 0
	}
	return float64(d.totalMXU) / float64(span)
}

// WindowMetrics computes idle fraction and MXU utilization for the steps
// overlapping the window [from, to) — the metadata attached to a profile
// response covering that window.
func (d *Device) WindowMetrics(from, to simclock.Time) (idleFrac, mxuUtil float64) {
	var idle, mxu simclock.Duration
	var span simclock.Duration
	for _, st := range d.timings {
		if st.End <= from || st.Start >= to {
			continue
		}
		idle += st.Idle
		mxu += st.MXUBusy
		span += st.End.Sub(st.Start) + st.Idle
	}
	if span <= 0 {
		return 0, 0
	}
	return float64(idle) / float64(span), float64(mxu) / float64(span)
}

// EventsInWindow returns events with Start in [from, to).
func (d *Device) EventsInWindow(from, to simclock.Time) []trace.Event {
	var out []trace.Event
	for _, e := range d.events {
		if e.Start >= from && e.Start < to {
			out = append(out, e)
		}
	}
	return out
}

// Reset clears all execution state but keeps the loaded program.
func (d *Device) Reset() {
	d.freeAt = 0
	d.events = nil
	d.timings = nil
	d.totalIdle = 0
	d.totalMXU = 0
	d.firstBusy = 0
	d.started = false
}
