package tpu

import (
	"errors"
	"testing"

	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/xla"
)

// testProgram builds a small program: an MXU-bound fusion, a memory-bound
// reshape, and a non-MXU reduction, with realistic boundary traffic.
func testProgram() *xla.Program {
	return &xla.Program{
		Name: "test",
		Instructions: []*xla.Instruction{
			{Name: "fusion.0", Op: "fusion", FLOPs: 2_000_000_000, Bytes: 4 << 20, MXU: true, Fused: 3},
			{Name: "rs", Op: "Reshape", FLOPs: 0, Bytes: 64 << 20, MXU: false, Fused: 1},
			{Name: "sum", Op: "Sum", FLOPs: 10_000_000, Bytes: 1 << 20, MXU: false, Fused: 1},
		},
		InfeedBytes:  8 << 20,
		OutfeedBytes: 1 << 20,
		WeightBytes:  100 << 20,
	}
}

func newTestDevice(t testing.TB, v Version) *Device {
	t.Helper()
	d := NewDevice(NewChipSpec(v), 1)
	if err := d.LoadProgram(testProgram()); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLoadProgramHBMCheck(t *testing.T) {
	d := NewDevice(NewChipSpec(V2), 1)
	big := testProgram()
	big.WeightBytes = d.Spec.HBMBytes + 1
	if err := d.LoadProgram(big); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestRunStepWithoutProgram(t *testing.T) {
	d := NewDevice(NewChipSpec(V2), 1)
	if _, err := d.RunStep(0, 0); err == nil {
		t.Fatal("RunStep without program succeeded")
	}
}

func TestRunStepProducesEvents(t *testing.T) {
	d := newTestDevice(t, V2)
	st, err := d.RunStep(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.End <= st.Start {
		t.Fatal("step has no duration")
	}
	names := map[string]bool{}
	for _, e := range d.Events() {
		names[e.Name] = true
		if e.Step != 1 {
			t.Fatalf("event %q on step %d", e.Name, e.Step)
		}
		if e.Device != trace.TPU {
			t.Fatalf("event %q on device %v", e.Name, e.Device)
		}
	}
	for _, want := range []string{"InfeedDequeueTuple", "Infeed", "fusion", "Reshape", "Sum", "Outfeed"} {
		if !names[want] {
			t.Fatalf("missing event %q; have %v", want, names)
		}
	}
}

func TestIdleAccounting(t *testing.T) {
	d := newTestDevice(t, V2)
	st1, _ := d.RunStep(1, 0)
	if st1.Idle != 0 {
		t.Fatalf("first step idle = %v", st1.Idle)
	}
	// Next batch arrives long after the device went free.
	late := d.FreeAt().Add(10_000)
	st2, _ := d.RunStep(2, late)
	if st2.Idle != 10_000 {
		t.Fatalf("idle = %v, want 10000", st2.Idle)
	}
	if d.IdleFraction() <= 0 {
		t.Fatal("IdleFraction not positive after a stall")
	}
	// Batch already waiting: no idle.
	st3, _ := d.RunStep(3, 0)
	if st3.Idle != 0 {
		t.Fatalf("pre-buffered batch caused idle = %v", st3.Idle)
	}
}

func TestMXUUtilizationHalvesOnV3(t *testing.T) {
	// Same program, same batch cadence: v3's doubled peak means the same
	// FLOPs occupy the MXUs for half the time.
	period := simclock.Duration(50_000)
	run := func(v Version) float64 {
		d := newTestDevice(t, v)
		at := simclock.Time(0)
		for i := int64(0); i < 50; i++ {
			d.RunStep(i, at)
			at = at.Add(period)
		}
		return d.MXUUtilization()
	}
	u2, u3 := run(V2), run(V3)
	if u2 <= 0 || u3 <= 0 {
		t.Fatalf("utilizations: v2=%g v3=%g", u2, u3)
	}
	ratio := u2 / u3
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("v2/v3 MXU utilization ratio = %g, want ~2", ratio)
	}
}

func TestIdleRisesOnV3(t *testing.T) {
	// Host-paced batches: compute shrinks on v3, so idle share grows.
	period := simclock.Duration(120_000)
	run := func(v Version) float64 {
		d := newTestDevice(t, v)
		at := simclock.Time(0)
		for i := int64(0); i < 50; i++ {
			d.RunStep(i, at)
			at = at.Add(period)
		}
		return d.IdleFraction()
	}
	i2, i3 := run(V2), run(V3)
	if i3 <= i2 {
		t.Fatalf("idle v3 (%g) not above idle v2 (%g)", i3, i2)
	}
}

func TestInstructionTimeRoofline(t *testing.T) {
	d := newTestDevice(t, V2)
	computeBound := &xla.Instruction{FLOPs: 10_000_000_000, Bytes: 1, MXU: true}
	memBound := &xla.Instruction{FLOPs: 1, Bytes: 1 << 30, MXU: false}
	ct := d.InstructionTime(computeBound)
	mt := d.InstructionTime(memBound)
	// 10 GFLOP at 45*0.42 TFLOPS ≈ 529µs; 1 GiB at 700 GB/s ≈ 1534µs.
	if ct < 400 || ct > 650 {
		t.Fatalf("compute-bound time = %v", ct)
	}
	if mt < 1300 || mt > 1700 {
		t.Fatalf("memory-bound time = %v", mt)
	}
}

func TestWindowMetrics(t *testing.T) {
	d := newTestDevice(t, V2)
	at := simclock.Time(0)
	for i := int64(0); i < 20; i++ {
		st, _ := d.RunStep(i, at)
		at = st.End.Add(5_000) // constant 5ms stall per step
	}
	idle, mxu := d.WindowMetrics(0, d.FreeAt())
	if idle <= 0 || idle >= 1 {
		t.Fatalf("window idle = %g", idle)
	}
	if mxu <= 0 || mxu >= 1 {
		t.Fatalf("window mxu = %g", mxu)
	}
	// Empty window.
	i0, m0 := d.WindowMetrics(d.FreeAt().Add(1000), d.FreeAt().Add(2000))
	if i0 != 0 || m0 != 0 {
		t.Fatalf("empty window metrics: %g %g", i0, m0)
	}
}

func TestEventsInWindow(t *testing.T) {
	d := newTestDevice(t, V2)
	st, _ := d.RunStep(0, 0)
	d.RunStep(1, st.End)
	mid := st.End
	first := d.EventsInWindow(0, mid)
	second := d.EventsInWindow(mid, d.FreeAt()+1)
	if len(first) == 0 || len(second) == 0 {
		t.Fatal("window split lost events")
	}
	if len(first)+len(second) != len(d.Events()) {
		t.Fatalf("window partition %d+%d != %d", len(first), len(second), len(d.Events()))
	}
	for _, e := range first {
		if e.Start >= mid {
			t.Fatal("event past window end")
		}
	}
}

func TestInjectEvent(t *testing.T) {
	d := newTestDevice(t, V2)
	d.InjectEvent("RestoreV2", 0, 5000, -1)
	if d.FreeAt() != 5000 {
		t.Fatalf("FreeAt after inject = %d", d.FreeAt())
	}
	if len(d.Events()) != 1 || d.Events()[0].Name != "RestoreV2" {
		t.Fatal("injected event missing")
	}
}

func TestReset(t *testing.T) {
	d := newTestDevice(t, V2)
	d.RunStep(0, 0)
	d.Reset()
	if len(d.Events()) != 0 || len(d.Timings()) != 0 || d.FreeAt() != 0 {
		t.Fatal("Reset left state")
	}
	if d.Program() == nil {
		t.Fatal("Reset dropped the program")
	}
	if _, err := d.RunStep(0, 0); err != nil {
		t.Fatalf("device unusable after Reset: %v", err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []trace.Event {
		d := newTestDevice(t, V2)
		at := simclock.Time(0)
		for i := int64(0); i < 10; i++ {
			st, _ := d.RunStep(i, at)
			at = st.End
		}
		return d.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("replay lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestChipSpecs(t *testing.T) {
	v2, v3 := NewChipSpec(V2), NewChipSpec(V3)
	if v2.MXUs != 2 || v3.MXUs != 4 {
		t.Fatal("MXU counts wrong")
	}
	if v3.PeakTFLOPS != 2*v2.PeakTFLOPS {
		t.Fatal("v3 peak should double v2")
	}
	if v3.HBMBytes != 2*v2.HBMBytes {
		t.Fatal("v3 HBM should double v2")
	}
	if v2.InfeedGBps != v3.InfeedGBps {
		t.Fatal("infeed bandwidth should be generation-invariant")
	}
	if V2.String() != "TPUv2" || V3.String() != "TPUv3" || Version(4).String() != "TPUv4" {
		t.Fatal("version names")
	}
}

func BenchmarkRunStep(b *testing.B) {
	d := NewDevice(NewChipSpec(V2), 1)
	if err := d.LoadProgram(testProgram()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.RunStep(int64(i), 0); err != nil {
			b.Fatal(err)
		}
	}
}
