// Package simclock implements the discrete-event simulation kernel that the
// TPU and host models are built on.
//
// Everything in the simulated system shares one virtual clock measured in
// microseconds. Components schedule events; the kernel pops them in time
// order and advances the clock. Because simulated time is decoupled from
// wall-clock time, a multi-hour TPU training job replays in milliseconds,
// and runs are deterministic for a fixed seed.
package simclock

import (
	"container/heap"
	"fmt"
)

// Time is a point in simulated time, in microseconds since simulation start.
type Time int64

// Duration is a span of simulated time in microseconds.
type Duration int64

// Common durations.
const (
	Microsecond Duration = 1
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%dµs", int64(d))
	}
}

// DurationFromSeconds converts floating-point seconds to a Duration,
// rounding to the nearest microsecond.
func DurationFromSeconds(s float64) Duration {
	return Duration(s*float64(Second) + 0.5)
}

// Event is a scheduled callback. Fn runs when the clock reaches At.
type Event struct {
	At Time
	Fn func()

	seq   uint64 // tie-break so same-time events fire in schedule order
	index int    // heap bookkeeping; -1 once popped or cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Sim is a single-threaded discrete-event simulator.
// It is not safe for concurrent use; the simulated world is cooperative.
type Sim struct {
	now    Time
	queue  eventHeap
	nextSq uint64
	steps  uint64
}

// New returns an empty simulator with the clock at 0.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Pending returns the number of scheduled, unfired events.
func (s *Sim) Pending() int { return len(s.queue) }

// EventsRun returns how many events have fired so far.
func (s *Sim) EventsRun() uint64 { return s.steps }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug, and silently clamping would hide it.
func (s *Sim) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("simclock: scheduling at %d before now %d", t, s.now))
	}
	e := &Event{At: t, Fn: fn, seq: s.nextSq}
	s.nextSq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d from now. Negative d panics via At.
func (s *Sim) After(d Duration, fn func()) *Event {
	return s.At(s.now.Add(d), fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&s.queue, e.index)
	e.index = -2
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.At
	s.steps++
	e.Fn()
	return true
}

// Run fires events until the queue drains.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with At <= deadline, leaving later events queued.
// The clock finishes at min(deadline, last event time) — it does not jump
// past the deadline if nothing is scheduled there.
func (s *Sim) RunUntil(deadline Time) {
	for len(s.queue) > 0 && s.queue[0].At <= deadline {
		s.Step()
	}
	if s.now < deadline && len(s.queue) > 0 {
		// Clock rests at the deadline so callers can schedule relative
		// to it; remaining events are still in the future.
		s.now = deadline
	} else if s.now < deadline && len(s.queue) == 0 {
		s.now = deadline
	}
}
