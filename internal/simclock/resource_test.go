package simclock

import (
	"testing"
	"testing/quick"
)

func TestResourceSerialQueueing(t *testing.T) {
	r := NewResource("link", 1)
	s1, e1 := r.Acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first acquire [%d,%d), want [0,10)", s1, e1)
	}
	// Arrives while busy: must queue behind.
	s2, e2 := r.Acquire(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("second acquire [%d,%d), want [10,20)", s2, e2)
	}
	// Arrives after idle gap: starts immediately.
	s3, e3 := r.Acquire(100, 5)
	if s3 != 100 || e3 != 105 {
		t.Fatalf("third acquire [%d,%d), want [100,105)", s3, e3)
	}
}

func TestResourceParallelCapacity(t *testing.T) {
	r := NewResource("mxu", 2)
	_, e1 := r.Acquire(0, 10)
	_, e2 := r.Acquire(0, 10)
	if e1 != 10 || e2 != 10 {
		t.Fatalf("two units should serve in parallel: ends %d, %d", e1, e2)
	}
	s3, _ := r.Acquire(0, 10)
	if s3 != 10 {
		t.Fatalf("third job should queue to time 10, started %d", s3)
	}
}

func TestResourceUtilization(t *testing.T) {
	r := NewResource("x", 2)
	r.Acquire(0, 50)
	r.Acquire(0, 50)
	// 100 busy over 2 units * 100 elapsed = 0.5
	if u := r.Utilization(100); u != 0.5 {
		t.Fatalf("utilization = %g, want 0.5", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Fatalf("utilization over empty window = %g, want 0", u)
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("x", 1)
	r.Acquire(0, 100)
	r.Reset(500)
	if r.BusyTime() != 0 || r.Acquires() != 0 {
		t.Fatal("reset did not clear accounting")
	}
	s, _ := r.Acquire(0, 10)
	if s != 500 {
		t.Fatalf("after Reset(500), acquire starts at %d, want 500", s)
	}
}

func TestResourceMinimumCapacity(t *testing.T) {
	r := NewResource("x", 0)
	if r.Capacity() != 1 {
		t.Fatalf("capacity clamped to %d, want 1", r.Capacity())
	}
}

func TestNextFree(t *testing.T) {
	r := NewResource("x", 1)
	r.Acquire(0, 30)
	if nf := r.NextFree(10); nf != 30 {
		t.Fatalf("NextFree(10) = %d, want 30", nf)
	}
	if nf := r.NextFree(50); nf != 50 {
		t.Fatalf("NextFree(50) = %d, want 50", nf)
	}
}

// Property: work is conserved — total busy time equals the sum of requested
// durations, and no unit serves two jobs at once.
func TestPropertyWorkConservation(t *testing.T) {
	f := func(durs []uint8, capRaw uint8) bool {
		capacity := 1 + int(capRaw%4)
		r := NewResource("p", capacity)
		var total Duration
		at := Time(0)
		for _, d8 := range durs {
			d := Duration(d8)
			r.Acquire(at, d)
			total += d
			at += 3
		}
		return r.BusyTime() == total && r.Acquires() == uint64(len(durs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: on a capacity-1 resource, consecutive acquires never overlap.
func TestPropertyNoOverlapSerial(t *testing.T) {
	f := func(durs []uint8) bool {
		r := NewResource("s", 1)
		lastEnd := Time(0)
		for i, d8 := range durs {
			start, end := r.Acquire(Time(i), Duration(d8))
			if start < lastEnd {
				return false
			}
			if end != start.Add(Duration(d8)) {
				return false
			}
			lastEnd = end
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
