package simclock

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestResourceSerialQueueing(t *testing.T) {
	r := MustResource("link", 1)
	s1, e1 := r.Acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first acquire [%d,%d), want [0,10)", s1, e1)
	}
	// Arrives while busy: must queue behind.
	s2, e2 := r.Acquire(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("second acquire [%d,%d), want [10,20)", s2, e2)
	}
	// Arrives after idle gap: starts immediately.
	s3, e3 := r.Acquire(100, 5)
	if s3 != 100 || e3 != 105 {
		t.Fatalf("third acquire [%d,%d), want [100,105)", s3, e3)
	}
}

func TestResourceParallelCapacity(t *testing.T) {
	r := MustResource("mxu", 2)
	_, e1 := r.Acquire(0, 10)
	_, e2 := r.Acquire(0, 10)
	if e1 != 10 || e2 != 10 {
		t.Fatalf("two units should serve in parallel: ends %d, %d", e1, e2)
	}
	s3, _ := r.Acquire(0, 10)
	if s3 != 10 {
		t.Fatalf("third job should queue to time 10, started %d", s3)
	}
}

func TestResourceUtilization(t *testing.T) {
	r := MustResource("x", 2)
	r.Acquire(0, 50)
	r.Acquire(0, 50)
	// 100 busy over 2 units * 100 elapsed = 0.5
	if u := r.Utilization(100); u != 0.5 {
		t.Fatalf("utilization = %g, want 0.5", u)
	}
	for _, elapsed := range []Duration{0, -1, -100} {
		if u := r.Utilization(elapsed); u != 0 {
			t.Fatalf("Utilization(%d) = %g, want 0", elapsed, u)
		}
	}
}

func TestResourceReset(t *testing.T) {
	r := MustResource("x", 1)
	r.Acquire(0, 100)
	r.Reset(500)
	if r.BusyTime() != 0 || r.Acquires() != 0 {
		t.Fatal("reset did not clear accounting")
	}
	s, _ := r.Acquire(0, 10)
	if s != 500 {
		t.Fatalf("after Reset(500), acquire starts at %d, want 500", s)
	}
}

func TestNewResourceCapacity(t *testing.T) {
	cases := []struct {
		name     string
		capacity int
		wantErr  bool
	}{
		{"one", 1, false},
		{"many", 64, false},
		{"zero", 0, true},
		{"negative", -1, true},
		{"very-negative", -1 << 20, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewResource(tc.name, tc.capacity)
			if tc.wantErr {
				if !errors.Is(err, ErrBadCapacity) {
					t.Fatalf("NewResource(%d) err = %v, want ErrBadCapacity", tc.capacity, err)
				}
				if r != nil {
					t.Fatal("rejected resource should be nil")
				}
				return
			}
			if err != nil {
				t.Fatalf("NewResource(%d) unexpected error: %v", tc.capacity, err)
			}
			if r.Capacity() != tc.capacity {
				t.Fatalf("capacity = %d, want %d", r.Capacity(), tc.capacity)
			}
		})
	}
}

func TestMustResourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustResource(0) did not panic")
		}
	}()
	MustResource("x", 0)
}

// Delay on a fresh resource (no Acquire yet) must still push the free time
// forward so the first job queues behind the externally imposed stall.
func TestDelayBeforeFirstAcquire(t *testing.T) {
	cases := []struct {
		name      string
		capacity  int
		delayTo   Time
		arriveAt  Time
		dur       Duration
		wantStart Time
	}{
		{"stall-gates-first-job", 1, 40, 0, 10, 40},
		{"arrival-after-stall", 1, 40, 100, 10, 100},
		{"stall-gates-all-units", 3, 25, 5, 10, 25},
		{"zero-stall-noop", 2, 0, 7, 10, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := MustResource(tc.name, tc.capacity)
			r.Delay(tc.delayTo)
			start, end := r.Acquire(tc.arriveAt, tc.dur)
			if start != tc.wantStart {
				t.Fatalf("start = %d, want %d", start, tc.wantStart)
			}
			if end != start.Add(tc.dur) {
				t.Fatalf("end = %d, want %d", end, start.Add(tc.dur))
			}
		})
	}
}

func TestNextFree(t *testing.T) {
	r := MustResource("x", 1)
	r.Acquire(0, 30)
	if nf := r.NextFree(10); nf != 30 {
		t.Fatalf("NextFree(10) = %d, want 30", nf)
	}
	if nf := r.NextFree(50); nf != 50 {
		t.Fatalf("NextFree(50) = %d, want 50", nf)
	}
}

// Property: work is conserved — total busy time equals the sum of requested
// durations, and no unit serves two jobs at once.
func TestPropertyWorkConservation(t *testing.T) {
	f := func(durs []uint8, capRaw uint8) bool {
		capacity := 1 + int(capRaw%4)
		r := MustResource("p", capacity)
		var total Duration
		at := Time(0)
		for _, d8 := range durs {
			d := Duration(d8)
			r.Acquire(at, d)
			total += d
			at += 3
		}
		return r.BusyTime() == total && r.Acquires() == uint64(len(durs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: on a capacity-1 resource, consecutive acquires never overlap.
func TestPropertyNoOverlapSerial(t *testing.T) {
	f := func(durs []uint8) bool {
		r := MustResource("s", 1)
		lastEnd := Time(0)
		for i, d8 := range durs {
			start, end := r.Acquire(Time(i), Duration(d8))
			if start < lastEnd {
				return false
			}
			if end != start.Add(Duration(d8)) {
				return false
			}
			lastEnd = end
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
