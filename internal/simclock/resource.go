package simclock

import (
	"errors"
	"fmt"
)

// Resource models a serially-shared facility (an MXU, a PCIe link, a host
// pipeline stage with N workers). Work items queue FIFO per unit of
// capacity; Acquire returns the time at which the work completes.
//
// This is the classic "next free time" formulation: rather than simulating
// queue entries as events, each unit of capacity tracks when it next frees
// up, and an arrival is assigned to the earliest-free unit. Busy time is
// accumulated for utilization accounting.
type Resource struct {
	name     string
	freeAt   []Time // next-free time per capacity unit
	busy     Duration
	acquires uint64
}

// ErrBadCapacity rejects non-positive resource capacities. A zero-capacity
// resource used to be silently promoted to capacity 1, which turned spec
// bugs (an unset thread count, a negative override) into quietly wrong
// simulations; now the construction fails loudly instead.
var ErrBadCapacity = errors.New("simclock: resource capacity must be positive")

// NewResource creates a resource with the given parallel capacity.
// Capacity below 1 is rejected with ErrBadCapacity.
func NewResource(name string, capacity int) (*Resource, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("%w: %q has capacity %d", ErrBadCapacity, name, capacity)
	}
	return &Resource{name: name, freeAt: make([]Time, capacity)}, nil
}

// MustResource is NewResource for capacities known valid at the call site
// (literals, pre-validated parameters); it panics on a bad capacity.
func MustResource(name string, capacity int) *Resource {
	r, err := NewResource(name, capacity)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the number of parallel service units.
func (r *Resource) Capacity() int { return len(r.freeAt) }

// Acquire books d of service starting no earlier than at, on the unit that
// frees up first. It returns the interval [start, end) the work occupies.
func (r *Resource) Acquire(at Time, d Duration) (start, end Time) {
	best := 0
	for i := 1; i < len(r.freeAt); i++ {
		if r.freeAt[i] < r.freeAt[best] {
			best = i
		}
	}
	start = at
	if r.freeAt[best] > start {
		start = r.freeAt[best]
	}
	end = start.Add(d)
	r.freeAt[best] = end
	r.busy += d
	r.acquires++
	return start, end
}

// NextFree returns the earliest time any unit is free, at or after at.
func (r *Resource) NextFree(at Time) Time {
	best := r.freeAt[0]
	for _, t := range r.freeAt[1:] {
		if t < best {
			best = t
		}
	}
	if best < at {
		return at
	}
	return best
}

// Delay pushes every unit's next-free time to at least t (an externally
// imposed stall, e.g. an input-iterator restart). Units already busy past
// t are unaffected.
func (r *Resource) Delay(t Time) {
	for i := range r.freeAt {
		if r.freeAt[i] < t {
			r.freeAt[i] = t
		}
	}
}

// AddDelay inserts d of dead time at the tail of every unit's schedule,
// delaying all subsequently queued work by d. Unlike Delay, this extends
// the critical path even when the resource has a backlog.
func (r *Resource) AddDelay(d Duration) {
	for i := range r.freeAt {
		r.freeAt[i] = r.freeAt[i].Add(d)
	}
}

// BusyTime returns the total booked service time across all units.
func (r *Resource) BusyTime() Duration { return r.busy }

// Acquires returns the number of Acquire calls served.
func (r *Resource) Acquires() uint64 { return r.acquires }

// Utilization returns busy time as a fraction of capacity*elapsed.
// It returns 0 for a zero or negative observation window.
func (r *Resource) Utilization(elapsed Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.busy) / (float64(elapsed) * float64(len(r.freeAt)))
}

// Reset clears accounting and frees all units at time t.
func (r *Resource) Reset(t Time) {
	for i := range r.freeAt {
		r.freeAt[i] = t
	}
	r.busy = 0
	r.acquires = 0
}
