package simclock

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %d, want 30", s.Now())
	}
}

func TestSameTimeFIFOOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var fired Time
	s.At(100, func() {
		s.After(50, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 150 {
		t.Fatalf("After fired at %d, want 150", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(100, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(50, func() {})
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(10, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("event does not report cancelled")
	}
	// Double-cancel and cancel-nil must be safe.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	s := New()
	var order []int
	e1 := s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.At(30, func() { order = append(order, 3) })
	s.Cancel(e1)
	s.Run()
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Fatalf("after cancel, got %v", order)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %d events, want 2", len(fired))
	}
	if s.Now() != 25 {
		t.Fatalf("clock after RunUntil = %d, want 25", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	s.Run()
	if len(fired) != 4 {
		t.Fatalf("Run after RunUntil fired %d total, want 4", len(fired))
	}
}

func TestRunUntilEmptyQueueAdvancesClock(t *testing.T) {
	s := New()
	s.RunUntil(500)
	if s.Now() != 500 {
		t.Fatalf("clock = %d, want 500", s.Now())
	}
}

func TestEventsRunCounter(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.At(Time(i), func() {})
	}
	s.Run()
	if s.EventsRun() != 5 {
		t.Fatalf("EventsRun = %d, want 5", s.EventsRun())
	}
}

func TestCascadingEvents(t *testing.T) {
	// An event scheduling further events must interleave correctly.
	s := New()
	count := 0
	var schedule func()
	schedule = func() {
		count++
		if count < 100 {
			s.After(1, schedule)
		}
	}
	s.At(0, schedule)
	s.Run()
	if count != 100 {
		t.Fatalf("cascade ran %d times, want 100", count)
	}
	if s.Now() != 99 {
		t.Fatalf("clock = %d, want 99", s.Now())
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500µs"},
		{2500, "2.500ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestDurationFromSeconds(t *testing.T) {
	if d := DurationFromSeconds(1.5); d != 1500*Millisecond {
		t.Fatalf("DurationFromSeconds(1.5) = %d", d)
	}
	if d := DurationFromSeconds(0.000001); d != 1 {
		t.Fatalf("DurationFromSeconds(1µs) = %d", d)
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(100).Add(50)
	if tm != 150 {
		t.Fatalf("Add: %d", tm)
	}
	if d := Time(150).Sub(Time(100)); d != 50 {
		t.Fatalf("Sub: %d", d)
	}
}

// Property: for any set of scheduled times, events fire in sorted order.
func TestPropertyOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		s := New()
		var fired []Time
		for _, raw := range times {
			at := Time(raw)
			s.At(at, func() { fired = append(fired, at) })
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
