package viz

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/repo"
)

// WriteDiffTable renders a cross-run diff as a fixed-width text report:
// run headlines, a per-phase-match table with wall-time / idle / MXU
// deltas, the biggest op-mix shifts per match, and any unmatched
// phases. This is what `tpupoint runs diff` prints.
func WriteDiffTable(w io.Writer, d *repo.Diff) error {
	nameA, nameB := diffRunNames(d)
	if _, err := fmt.Fprintf(w, "A: %s  workload=%s total=%s idle=%.1f%% mxu=%.1f%%\n",
		nameA, d.WorkloadA, d.TotalA, 100*d.IdleA, 100*d.MXUA); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "B: %s  workload=%s total=%s idle=%.1f%% mxu=%.1f%%\n\n",
		nameB, d.WorkloadB, d.TotalB, 100*d.IdleB, 100*d.MXUB); err != nil {
		return err
	}

	if _, err := fmt.Fprintf(w, "%-10s %-10s %12s %12s %12s %9s %9s %8s\n",
		"phase A", "phase B", "wall A", "wall B", "Δwall", "Δidle", "Δmxu", "dist"); err != nil {
		return err
	}
	for _, m := range d.Matches {
		if _, err := fmt.Fprintf(w, "%-10s %-10s %12s %12s %+12.3f %+8.1f%% %+8.1f%% %8.3f\n",
			fmt.Sprintf("#%d", m.A.ID), fmt.Sprintf("#%d", m.B.ID),
			m.A.Total, m.B.Total, m.WallDelta.Milliseconds(),
			100*m.IdleDelta, 100*m.MXUDelta, m.Distance); err != nil {
			return err
		}
		for _, om := range m.OpMix {
			if om.Delta == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "    %-40s %6.1f%% -> %6.1f%%  (%+.1f%%)\n",
				om.Op, 100*om.ShareA, 100*om.ShareB, 100*om.Delta); err != nil {
				return err
			}
		}
	}
	for _, p := range d.OnlyA {
		if _, err := fmt.Fprintf(w, "only in A: phase #%d (%d steps, %s)\n", p.ID, p.Steps, p.Total); err != nil {
			return err
		}
	}
	for _, p := range d.OnlyB {
		if _, err := fmt.Fprintf(w, "only in B: phase #%d (%d steps, %s)\n", p.ID, p.Steps, p.Total); err != nil {
			return err
		}
	}
	return nil
}

// WriteDiffCSV renders the diff as machine-readable rows: one line per
// phase match plus unmatched phases with an empty counterpart column.
func WriteDiffCSV(w io.Writer, d *repo.Diff) error {
	if _, err := fmt.Fprintln(w,
		"phase_a,phase_b,wall_a_ms,wall_b_ms,wall_delta_ms,idle_delta,mxu_delta,distance,top_op_shifts"); err != nil {
		return err
	}
	for _, m := range d.Matches {
		var shifts []string
		for _, om := range m.OpMix {
			if om.Delta == 0 {
				continue
			}
			shifts = append(shifts, fmt.Sprintf("%s %+.4f", om.Op, om.Delta))
		}
		row := []string{
			fmt.Sprint(m.A.ID),
			fmt.Sprint(m.B.ID),
			fmt.Sprintf("%.3f", m.A.Total.Milliseconds()),
			fmt.Sprintf("%.3f", m.B.Total.Milliseconds()),
			fmt.Sprintf("%.3f", m.WallDelta.Milliseconds()),
			fmt.Sprintf("%.4f", m.IdleDelta),
			fmt.Sprintf("%.4f", m.MXUDelta),
			fmt.Sprintf("%.4f", m.Distance),
			csvEscape(strings.Join(shifts, "; ")),
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	for _, p := range d.OnlyA {
		if _, err := fmt.Fprintf(w, "%d,,%.3f,,,,,,\n", p.ID, p.Total.Milliseconds()); err != nil {
			return err
		}
	}
	for _, p := range d.OnlyB {
		if _, err := fmt.Fprintf(w, ",%d,,%.3f,,,,,\n", p.ID, p.Total.Milliseconds()); err != nil {
			return err
		}
	}
	return nil
}

func diffRunNames(d *repo.Diff) (string, string) {
	a, b := d.A.RunID, d.B.RunID
	if a == "" {
		a = "(archive)"
	}
	if b == "" {
		b = "(archive)"
	}
	return a, b
}
