package viz

import (
	"strings"
	"testing"

	"repro/internal/archive"
	"repro/internal/repo"
	"repro/internal/simclock"
	"repro/internal/trace"
)

func testDiff(t *testing.T) *repo.Diff {
	t.Helper()
	sum := func(scale simclock.Duration) *archive.Summary {
		return &archive.Summary{
			Workload: "synthetic", Algorithm: "ols", Steps: 10,
			IdleFrac: 0.2, MXUUtil: 0.4, TotalTime: 1000 * (1 + scale),
			Phases: []archive.PhaseSummary{
				{ID: 0, Steps: 5, Start: 0, End: 500, Total: 500,
					IdleFrac: 0.3, MXUUtil: 0.2,
					Ops: []archive.OpSummary{
						{Name: "InfeedDequeue", Device: trace.Host, Count: 5, Total: 400},
						{Name: "MatMul", Device: trace.TPU, Count: 5, Total: 100 + 50*scale},
					}},
				{ID: 1, Steps: 5, Start: 500, End: simclock.Time(1000), Total: 500 * (1 + scale),
					IdleFrac: 0.1, MXUUtil: 0.6,
					Ops: []archive.OpSummary{
						{Name: "MatMul", Device: trace.TPU, Count: 5, Total: 800 + 200*scale},
					}},
			},
		}
	}
	d, err := repo.DiffSummaries(sum(0), sum(1))
	if err != nil {
		t.Fatal(err)
	}
	d.A.RunID, d.B.RunID = "base", "scaled"
	return d
}

func TestWriteDiffTable(t *testing.T) {
	var b strings.Builder
	if err := WriteDiffTable(&b, testDiff(t)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"A: base", "B: scaled", "Δwall", "tpu:MatMul"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDiffCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteDiffCSV(&b, testDiff(t)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) < 3 { // header + 2 matches
		t.Fatalf("csv too short:\n%s", b.String())
	}
	if !strings.HasPrefix(lines[0], "phase_a,phase_b,wall_a_ms") {
		t.Fatalf("header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		if n := strings.Count(line, ","); n < 8 {
			t.Fatalf("row has %d commas: %q", n, line)
		}
	}
}
