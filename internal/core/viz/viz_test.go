package viz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core/analyzer"
	"repro/internal/estimator"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func fixture(t *testing.T) (*analyzer.Report, []*trace.ProfileRecord, []trace.Event) {
	t.Helper()
	w := workloads.MustGet("dcgan-cifar10")
	r, err := estimator.New(w, estimator.Options{Steps: 120})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	events := r.Events()
	rec := trace.Reduce(0, 0, events, r.IdleFraction(), r.MXUUtilization())
	records := []*trace.ProfileRecord{rec}
	rep, err := analyzer.Analyze(w.Name, records, analyzer.OLSAlgo, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	analyzer.AssociateCheckpoints(rep.Phases, []analyzer.Checkpoint{{Step: 99, Object: "ckpt/model.ckpt-99"}})
	return rep, records, events
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	rep, records, events := fixture(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rep.Phases, records, events, 500); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	raw, ok := decoded["traceEvents"].([]any)
	if !ok || len(raw) == 0 {
		t.Fatal("no traceEvents")
	}
}

func TestChromeTraceTracks(t *testing.T) {
	rep, records, events := fixture(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rep.Phases, records, events, 100); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"Profile Breakdown", "Phase Breakdown", "Host Ops", "TPU Ops", "phase 0", "profile 0"} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace missing %q", want)
		}
	}
}

func TestChromeTraceOpCap(t *testing.T) {
	rep, records, events := fixture(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rep.Phases, records, events, 10); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	ops := 0
	for _, e := range decoded.TraceEvents {
		if e.Ph == "X" && (e.Tid == tidHostOps || e.Tid == tidTPUOps) {
			ops++
		}
	}
	if ops != 10 {
		t.Fatalf("op slices = %d, want capped at 10", ops)
	}
}

func TestChromeTraceGapWindows(t *testing.T) {
	// Two fetched windows at [0,100) and [300,400) with a two-gap hole
	// between them, plus a trailing gap with no following record. The
	// gaps carry no timestamps of their own (the windows were lost), so
	// the renderer must synthesize slices spanning the hole — not pile
	// zero-width slivers at t=0.
	records := []*trace.ProfileRecord{
		{Seq: 0, WindowStart: 0, WindowEnd: 100},
		{Seq: 1, Gap: true},
		{Seq: 2, Gap: true},
		{Seq: 3, WindowStart: 300, WindowEnd: 400},
		{Seq: 4, Gap: true},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, records, nil, 0); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	type span struct{ ts, dur int64 }
	gaps := map[string]span{}
	counters := 0
	for _, e := range decoded.TraceEvents {
		if e.Ph == "C" {
			counters++
		}
		if e.Ph != "X" || e.Tid != tidProfiles {
			continue
		}
		if strings.HasPrefix(e.Name, "gap ") {
			if e.Args["gap"] != true {
				t.Fatalf("%s lacks the gap annotation: %v", e.Name, e.Args)
			}
			gaps[e.Name] = span{e.Ts, e.Dur}
		}
	}
	if len(gaps) != 3 {
		t.Fatalf("gap slices = %d, want 3 (%v)", len(gaps), gaps)
	}
	// The interior hole [100,300) splits evenly across the two gaps.
	if g := gaps["gap 1"]; g != (span{100, 100}) {
		t.Fatalf("gap 1 = %+v, want {100 100}", g)
	}
	if g := gaps["gap 2"]; g != (span{200, 100}) {
		t.Fatalf("gap 2 = %+v, want {200 100}", g)
	}
	// The trailing gap has no right neighbor: zero width at the last
	// record's end, never at t=0.
	if g := gaps["gap 4"]; g != (span{400, 0}) {
		t.Fatalf("gap 4 = %+v, want {400 0}", g)
	}
	// Lost windows have no idle/MXU samples: counter events come only
	// from the two real records.
	if counters != 4 {
		t.Fatalf("counter events = %d, want 4 (two per fetched window)", counters)
	}
}

func TestCSVOutput(t *testing.T) {
	rep, _, _ := fixture(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rep.Phases)+1 {
		t.Fatalf("csv has %d lines for %d phases", len(lines), len(rep.Phases))
	}
	if !strings.HasPrefix(lines[0], "phase,steps,") {
		t.Fatalf("csv header = %q", lines[0])
	}
	// Shares sum to ~1.
	var sum float64
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		var share float64
		if _, err := fmt.Sscan(fields[5], &share); err != nil {
			t.Fatalf("bad share %q: %v", fields[5], err)
		}
		sum += share
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("phase shares sum to %g", sum)
	}
	if !strings.Contains(buf.String(), "fusion") {
		t.Fatal("csv missing top-op names")
	}
	if !strings.Contains(buf.String(), "ckpt/model.ckpt-99") {
		t.Fatal("csv missing checkpoint association")
	}
}

func TestCSVEscaping(t *testing.T) {
	if got := csvEscape(`a,b`); got != `"a,b"` {
		t.Fatalf("escape = %q", got)
	}
	if got := csvEscape(`say "hi"`); got != `"say ""hi"""` {
		t.Fatalf("escape = %q", got)
	}
	if got := csvEscape("plain"); got != "plain" {
		t.Fatalf("escape = %q", got)
	}
}
