// Package viz renders TPUPoint-Analyzer output as the two artifact formats
// the paper describes (Section IV-B): a JSON file compatible with Chrome's
// chrome://tracing event profiler, and a CSV summary.
//
// The trace shows two summary tracks, as in the paper's Figure 3 — a
// "Profile Breakdown" row with one slice per profile record and a "Phase
// Breakdown" row with one slice per detected phase — plus per-device op
// tracks for zooming into individual operations.
package viz

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core/analyzer"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Chrome-tracing track identities. chrome://tracing groups slices by
// (pid, tid) pairs; names come from metadata events.
const (
	pidTPUPoint = 1

	tidProfiles = 1
	tidPhases   = 2
	tidHostOps  = 3
	tidTPUOps   = 4
)

// traceEvent is one chrome://tracing event (the "X" complete-event form,
// or "M" metadata).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`            // µs
	Dur  int64          `json:"dur,omitempty"` // µs
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace emits the visualization JSON. Records and phases feed
// the two breakdown tracks; events (optional, may be truncated by maxOps)
// feed the op tracks.
func WriteChromeTrace(w io.Writer, phases []*analyzer.Phase, records []*trace.ProfileRecord, events []trace.Event, maxOps int) error {
	var out traceFile
	out.DisplayTimeUnit = "ms"

	meta := func(tid int, name string) {
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pidTPUPoint, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(tidProfiles, "Profile Breakdown")
	meta(tidPhases, "Phase Breakdown")
	meta(tidHostOps, "Host Ops")
	meta(tidTPUOps, "TPU Ops")

	for i, rec := range records {
		if rec.Gap {
			// Gap records carry no window of their own (the window was
			// lost before it could be measured); rendering their zero
			// timestamps literally piled every gap into a zero-width
			// sliver at t=0. Synthesize the hole's span from the
			// neighboring records instead.
			start, end := gapSpan(records, i)
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: fmt.Sprintf("gap %d", rec.Seq),
				Ph:   "X",
				Ts:   int64(start),
				Dur:  int64(end.Sub(start)),
				Pid:  pidTPUPoint,
				Tid:  tidProfiles,
				Args: map[string]any{"gap": true},
			})
			// No counter events: a lost window has no idle/MXU samples.
			continue
		}
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: fmt.Sprintf("profile %d", rec.Seq),
			Ph:   "X",
			Ts:   int64(rec.WindowStart),
			Dur:  int64(rec.WindowEnd.Sub(rec.WindowStart)),
			Pid:  pidTPUPoint,
			Tid:  tidProfiles,
			Args: map[string]any{
				"events":    rec.NumEvents,
				"truncated": rec.Truncated,
				"idle":      rec.IdleFrac,
				"mxu":       rec.MXUUtil,
			},
		})
		// Counter tracks: chrome://tracing renders "C" events as stacked
		// area charts, giving the idle/MXU time series alongside the ops.
		out.TraceEvents = append(out.TraceEvents,
			traceEvent{
				Name: "TPU idle %", Ph: "C", Ts: int64(rec.WindowStart),
				Pid: pidTPUPoint, Tid: 0,
				Args: map[string]any{"idle": 100 * rec.IdleFrac},
			},
			traceEvent{
				Name: "MXU utilization %", Ph: "C", Ts: int64(rec.WindowStart),
				Pid: pidTPUPoint, Tid: 0,
				Args: map[string]any{"mxu": 100 * rec.MXUUtil},
			})
	}

	for _, p := range sortByStart(phases) {
		args := map[string]any{
			"steps":      len(p.Steps),
			"total_ms":   p.Total.Milliseconds(),
			"checkpoint": p.Checkpoint,
		}
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: fmt.Sprintf("phase %d", p.ID),
			Ph:   "X",
			Ts:   int64(p.Start),
			Dur:  int64(p.End.Sub(p.Start)),
			Pid:  pidTPUPoint,
			Tid:  tidPhases,
			Args: args,
		})
	}

	n := 0
	for _, e := range events {
		if maxOps > 0 && n >= maxOps {
			break
		}
		tid := tidHostOps
		if e.Device == trace.TPU {
			tid = tidTPUOps
		}
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: e.Name, Ph: "X",
			Ts: int64(e.Start), Dur: int64(e.Dur),
			Pid: pidTPUPoint, Tid: tid,
			Args: map[string]any{"step": e.Step},
		})
		n++
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// gapSpan synthesizes a window for the gap record at index i: a run of
// consecutive gaps splits the hole between its non-gap neighbors evenly.
// A run with no following record collapses to zero width at the previous
// record's end — the hole's extent is genuinely unknown there.
func gapSpan(records []*trace.ProfileRecord, i int) (simclock.Time, simclock.Time) {
	prev := i - 1
	for prev >= 0 && records[prev].Gap {
		prev--
	}
	next := i + 1
	for next < len(records) && records[next].Gap {
		next++
	}
	var holeStart simclock.Time // 0 when the stream opens with gaps
	if prev >= 0 {
		holeStart = records[prev].WindowEnd
	}
	if next >= len(records) {
		return holeStart, holeStart
	}
	holeEnd := records[next].WindowStart
	if holeEnd < holeStart {
		holeEnd = holeStart
	}
	run := next - prev - 1 // consecutive gaps sharing this hole
	pos := i - prev - 1
	width := holeEnd.Sub(holeStart) / simclock.Duration(run)
	start := holeStart.Add(width * simclock.Duration(pos))
	if pos == run-1 {
		return start, holeEnd // absorb division remainder
	}
	return start, start.Add(width)
}

func sortByStart(phases []*analyzer.Phase) []*analyzer.Phase {
	out := append([]*analyzer.Phase(nil), phases...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// WriteCSV emits the phase summary table: one row per phase with its span,
// step count, coverage share, checkpoint, and top operators per device.
func WriteCSV(w io.Writer, rep *analyzer.Report) error {
	var total simclock.Duration
	for _, p := range rep.Phases {
		total += p.Total
	}
	if _, err := fmt.Fprintln(w, "phase,steps,start_ms,end_ms,total_ms,share,checkpoint,top_tpu_ops,top_host_ops"); err != nil {
		return err
	}
	for _, p := range sortByStart(rep.Phases) {
		share := 0.0
		if total > 0 {
			share = float64(p.Total) / float64(total)
		}
		row := []string{
			fmt.Sprint(p.ID),
			fmt.Sprint(len(p.Steps)),
			fmt.Sprintf("%.3f", float64(p.Start)/1000),
			fmt.Sprintf("%.3f", float64(p.End)/1000),
			fmt.Sprintf("%.3f", p.Total.Milliseconds()),
			fmt.Sprintf("%.4f", share),
			csvEscape(p.Checkpoint),
			csvEscape(opList(p.TopOps(trace.TPU, 5))),
			csvEscape(opList(p.TopOps(trace.Host, 5))),
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func opList(ops []trace.OpTotal) string {
	names := make([]string, len(ops))
	for i, op := range ops {
		names[i] = op.Name
	}
	return strings.Join(names, ";")
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
