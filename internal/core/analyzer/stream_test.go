package analyzer

import (
	"testing"

	"repro/internal/simclock"
	"repro/internal/trace"
)

// streamRegimes are four recurring op mixes with empty pairwise
// intersections, so within-regime StepSimilarity is 1 and cross-regime
// is 0 — crisp phase boundaries for the streaming tests.
var streamRegimes = [][]string{
	{"InfeedDequeueTuple", "fusion", "Conv2D"},
	{"AllReduce", "CrossReplicaSum", "fusion.1"},
	{"ArgMax", "Mean", "TopKV2"},
	{"OutfeedEnqueue", "Reshape", "Slice"},
}

// regimeRecords generates 2 records per step (each holding half the
// step's events) so every step straddles a record boundary and
// exercises the cross-window merge path. opDur is the per-event
// duration; stepDur overrides it for the listed steps (degradation
// tests).
func regimeRecords(n, regimeLen int, opDur simclock.Duration, slow map[int64]simclock.Duration) []*trace.ProfileRecord {
	recs := make([]*trace.ProfileRecord, 0, 2*n)
	var seq int64
	ts := simclock.Time(0)
	for s := 0; s < n; s++ {
		step := int64(s)
		dur := opDur
		if d, ok := slow[step]; ok {
			dur = d
		}
		ops := streamRegimes[(s/regimeLen)%len(streamRegimes)]
		var first, second []trace.Event
		for i, op := range ops {
			ev := trace.Event{Name: op, Device: trace.TPU, Start: ts, Dur: dur, Step: step}
			if i <= len(ops)/2 {
				first = append(first, ev)
			} else {
				second = append(second, ev)
			}
			ts = ts.Add(dur)
		}
		recs = append(recs, trace.Reduce(seq, first[0].Start, first, 0.1, 0.5))
		seq++
		recs = append(recs, trace.Reduce(seq, second[0].Start, second, 0.1, 0.5))
		seq++
	}
	return recs
}

func TestStreamMatchesBatchOLSBoundaries(t *testing.T) {
	recs := regimeRecords(200, 25, 10, nil)

	s := NewStream("test", StreamOptions{})
	if err := s.FeedBatch(recs); err != nil {
		t.Fatal(err)
	}
	rep := s.Finish()

	steps := trace.AggregateSteps(recs)
	batch := OLS(steps, DefaultThreshold)

	if len(rep.Phases) != len(batch) {
		t.Fatalf("stream found %d phases, batch OLS found %d", len(rep.Phases), len(batch))
	}
	for i, p := range rep.Phases {
		bFirst := batch[i].Steps[0].Step
		bLast := batch[i].Steps[len(batch[i].Steps)-1].Step
		if p.FirstStep != bFirst || p.LastStep != bLast {
			t.Fatalf("phase %d spans [%d,%d], batch says [%d,%d]",
				i, p.FirstStep, p.LastStep, bFirst, bLast)
		}
		if p.Total != batch[i].Total {
			t.Fatalf("phase %d total %d, batch %d", i, p.Total, batch[i].Total)
		}
	}
	if rep.StepsSeen != 200 || rep.Steps != 200 {
		t.Fatalf("StepsSeen=%d Steps=%d, want 200/200", rep.StepsSeen, rep.Steps)
	}
	if rep.Records != int64(len(recs)) {
		t.Fatalf("Records=%d, want %d", rep.Records, len(recs))
	}
}

func TestStreamEventsAndSignatures(t *testing.T) {
	var opens, closes int
	var lastClosed *StreamPhase
	opts := StreamOptions{OnEvent: func(ev StreamEvent) {
		switch ev.Kind {
		case PhaseOpen:
			opens++
		case PhaseClose:
			closes++
			lastClosed = ev.Phase
		}
	}}
	s := NewStream("test", opts)
	if err := s.FeedBatch(regimeRecords(120, 30, 10, nil)); err != nil {
		t.Fatal(err)
	}
	rep := s.Finish()

	if opens != 4 || closes != 4 {
		t.Fatalf("opens=%d closes=%d, want 4/4", opens, closes)
	}
	if len(rep.Phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(rep.Phases))
	}
	if lastClosed == nil || len(lastClosed.Signature) == 0 {
		t.Fatal("PhaseClose event carried no op-mix signature")
	}
	var share float64
	for _, os := range lastClosed.Signature {
		share += os.Share
	}
	if share < 0.99 || share > 1.01 {
		t.Fatalf("signature shares sum to %g, want ~1", share)
	}
	for i := 1; i < len(lastClosed.Signature); i++ {
		if lastClosed.Signature[i].Share > lastClosed.Signature[i-1].Share {
			t.Fatal("signature not sorted by descending share")
		}
	}
	// Phase ops map must be released at close; only the signature stays.
	for _, p := range rep.Phases {
		if p.ops != nil {
			t.Fatal("closed phase retains its op aggregate map")
		}
	}
	if got := rep.Boundaries(); len(got) != 3 || got[0] != 30 || got[1] != 60 || got[2] != 90 {
		t.Fatalf("boundaries = %v, want [30 60 90]", got)
	}
}

func TestStreamDutyCycle(t *testing.T) {
	recs := regimeRecords(400, 100, 10, nil)
	s := NewStream("test", StreamOptions{DutyCycle: 10})
	if err := s.FeedBatch(recs); err != nil {
		t.Fatal(err)
	}
	rep := s.Finish()
	if rep.StepsSeen != 400 {
		t.Fatalf("StepsSeen = %d, want 400", rep.StepsSeen)
	}
	if rep.Steps != 40 {
		t.Fatalf("sampled Steps = %d, want 40 at duty 1/10", rep.Steps)
	}
	// Four clean regimes of 100 steps: sampling every 10th step still
	// sees each regime's op set, so the boundary count survives.
	if len(rep.Phases) != 4 {
		t.Fatalf("phases = %d, want 4 at duty 1/10", len(rep.Phases))
	}
	if rep.DutyCycle != 10 {
		t.Fatalf("report DutyCycle = %d", rep.DutyCycle)
	}
}

func TestStreamLateStepsDropped(t *testing.T) {
	recs := regimeRecords(20, 20, 10, nil)
	s := NewStream("test", StreamOptions{SealWindow: 4})
	if err := s.FeedBatch(recs); err != nil {
		t.Fatal(err)
	}
	// Steps beyond the seal window are closed by now; re-sending an
	// early step must be counted as late, not merged.
	late := trace.Reduce(999, 0, []trace.Event{
		{Name: "straggler", Device: trace.Host, Start: 0, Dur: 5, Step: 1},
	}, 0, 0)
	if err := s.Feed(late); err != nil {
		t.Fatal(err)
	}
	rep := s.Finish()
	if rep.LateSteps != 1 {
		t.Fatalf("LateSteps = %d, want 1", rep.LateSteps)
	}
	if rep.StepsSeen != 20 {
		t.Fatalf("StepsSeen = %d, want 20 (late fragment not recounted)", rep.StepsSeen)
	}
}

func TestStreamGapRecords(t *testing.T) {
	s := NewStream("test", StreamOptions{})
	if err := s.Feed(&trace.ProfileRecord{Seq: 0, Gap: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.FeedBatch(regimeRecords(10, 10, 10, nil)); err != nil {
		t.Fatal(err)
	}
	rep := s.Finish()
	if rep.Gaps != 1 {
		t.Fatalf("Gaps = %d, want 1", rep.Gaps)
	}
	if len(rep.Phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(rep.Phases))
	}
}

func TestStreamDegradationEvent(t *testing.T) {
	slow := map[int64]simclock.Duration{30: 100} // 10x the usual op time
	var degradedAt int64 = -1
	opts := StreamOptions{OnEvent: func(ev StreamEvent) {
		if ev.Kind == StepDegraded {
			degradedAt = ev.Step
		}
	}}
	s := NewStream("test", opts)
	if err := s.FeedBatch(regimeRecords(40, 40, 10, slow)); err != nil {
		t.Fatal(err)
	}
	rep := s.Finish()
	if degradedAt != 30 {
		t.Fatalf("degradation flagged at step %d, want 30", degradedAt)
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Degraded != 1 {
		t.Fatalf("phases=%d degraded=%v, want one phase with Degraded=1",
			len(rep.Phases), rep.Phases)
	}
}

func TestStreamBoundedState(t *testing.T) {
	// Same phase count (8 regimes) at 10x the run length: resident
	// state must stay flat — O(seal window + k-means + closed phases),
	// never O(records).
	state := func(n int) int64 {
		s := NewStream("test", StreamOptions{})
		if err := s.FeedBatch(regimeRecords(n, n/8, 10, nil)); err != nil {
			t.Fatal(err)
		}
		defer s.Finish()
		return s.StateBytes()
	}
	small, large := state(400), state(4000)
	if large > 2*small {
		t.Fatalf("state grew %d -> %d bytes over a 10x longer run; want bounded", small, large)
	}
}

func TestStreamClusterLabels(t *testing.T) {
	// 4 regimes repeating twice = 8 phases; with enough sampled steps
	// the mini-batch model seeds and labels every closed phase.
	recs := regimeRecords(320, 40, 10, nil)
	s := NewStream("test", StreamOptions{Seed: 7})
	if err := s.FeedBatch(recs); err != nil {
		t.Fatal(err)
	}
	rep := s.Finish()
	if len(rep.Phases) != 8 {
		t.Fatalf("phases = %d, want 8", len(rep.Phases))
	}
	if rep.K != DefaultStreamK {
		t.Fatalf("report K = %d, want %d", rep.K, DefaultStreamK)
	}
	labeled := 0
	for _, p := range rep.Phases {
		if p.Cluster >= 0 {
			labeled++
		}
	}
	if labeled < len(rep.Phases)/2 {
		t.Fatalf("only %d/%d phases labeled", labeled, len(rep.Phases))
	}
}

func TestStreamFinishTerminal(t *testing.T) {
	s := NewStream("test", StreamOptions{})
	if err := s.FeedBatch(regimeRecords(10, 10, 10, nil)); err != nil {
		t.Fatal(err)
	}
	r1 := s.Finish()
	r2 := s.Finish()
	if r1 != r2 {
		t.Fatal("second Finish returned a different report")
	}
	if err := s.Feed(&trace.ProfileRecord{Seq: 99}); err == nil {
		t.Fatal("Feed after Finish should error")
	}
}
