package analyzer

// Chunk-size/duty-cycle determinism contract for the streaming
// analyzer, in the style of cluster/parallel_diff_test.go: the final
// report — and the event sequence — must be bit-identical no matter how
// the record stream is chunked, because downstream consumers (fleet
// sessions resumed from logs, watch over archives, the fidelity
// benchmark) all see the same records in different groupings.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/trace"
)

type streamEventLog struct {
	Kind    StreamEventKind
	PhaseID int
	Step    int64
}

// runChunked feeds recs in fixed-size chunks and returns the final
// report plus the observed event sequence.
func runChunked(t *testing.T, recs []*trace.ProfileRecord, chunk, duty int) (*StreamReport, []streamEventLog) {
	t.Helper()
	var events []streamEventLog
	s := NewStream("diff", StreamOptions{
		DutyCycle: duty,
		Seed:      42,
		OnEvent: func(ev StreamEvent) {
			events = append(events, streamEventLog{ev.Kind, ev.Phase.ID, ev.Step})
		},
	})
	for off := 0; off < len(recs); off += chunk {
		end := off + chunk
		if end > len(recs) {
			end = len(recs)
		}
		if err := s.FeedBatch(recs[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	return s.Finish(), events
}

func TestStreamChunkDeterminism(t *testing.T) {
	n := 1500
	if testing.Short() {
		n = 300
	}
	recs := regimeRecords(n, n/6, 10, nil)

	for _, duty := range []int{1, 10} {
		duty := duty
		t.Run(fmt.Sprintf("duty%d", duty), func(t *testing.T) {
			refRep, refEvents := runChunked(t, recs, 1, duty)
			if len(refRep.Phases) < 2 {
				t.Fatalf("reference run found %d phases; generator broken", len(refRep.Phases))
			}
			for _, chunk := range []int{7, 1000} {
				rep, events := runChunked(t, recs, chunk, duty)
				if !reflect.DeepEqual(rep, refRep) {
					t.Fatalf("chunk=%d report differs from record-at-a-time reference:\n got %+v\nwant %+v",
						chunk, rep, refRep)
				}
				if !reflect.DeepEqual(events, refEvents) {
					t.Fatalf("chunk=%d event sequence differs from reference", chunk)
				}
			}
		})
	}
}

func TestStreamDutyCycleSubsetOfFull(t *testing.T) {
	// Duty sampling must not invent boundaries: with clean regimes the
	// sampled run's boundary set lies within one duty interval of the
	// full run's.
	n := 600
	recs := regimeRecords(n, n/4, 10, nil)
	full, _ := runChunked(t, recs, 1, 1)
	sampled, _ := runChunked(t, recs, 1, 10)
	fb, sb := full.Boundaries(), sampled.Boundaries()
	if len(fb) != len(sb) {
		t.Fatalf("full found %d boundaries, sampled %d", len(fb), len(sb))
	}
	for i := range fb {
		d := fb[i] - sb[i]
		if d < 0 {
			d = -d
		}
		if d > 10 {
			t.Fatalf("boundary %d: full at step %d, sampled at %d (>1 duty interval apart)", i, fb[i], sb[i])
		}
	}
}
