// Streaming phase analysis: the incremental counterpart of the batch
// analyzer. A StreamAnalyzer consumes ProfileRecords one at a time —
// from a live profiler session, a fleet session log, or archive.Iter —
// and maintains phase structure as the run unfolds:
//
//   - streaming step aggregation: per-window step fragments merge in a
//     bounded seal window (steps straddle profile-window boundaries,
//     exactly the case trace.AggregateSteps handles post hoc);
//   - the paper's online OLS linear scan promoted to first class:
//     sealed steps feed the Equation-1 similarity chain and phase
//     boundaries emit PhaseOpen/PhaseClose events the moment they are
//     known, each close carrying the phase's op-mix time-share
//     signature;
//   - incremental mini-batch k-means (cluster.StreamKMeans) refining a
//     recurring-phase label per closed phase as data arrives;
//   - a profile duty-cycle knob: analyze only 1/N of the steps and
//     still report the whole run's phase structure (SeqPoint's
//     representative-sampling payoff — the fidelity benchmark scores
//     the sampled report against the batch analyzer).
//
// Memory contract: resident state is O(seal window + k-means state +
// closed-phase summaries). No record and no per-step statistic is
// retained past its seal + similarity comparison; a closed phase keeps
// only its capped signature. See DESIGN.md ("Streaming analyzer
// contract") and StateBytes.
//
// Determinism contract: the final StreamReport is a pure function of
// the record sequence and StreamOptions. Feeding the same records in
// any chunking — one at a time, batches of 7, or the whole run — yields
// a bit-identical report (stream_diff_test.go enforces this, chunk
// sizes {1, 7, 1000} × duty cycles {1, 10}).
package analyzer

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core/cluster"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Streaming defaults.
const (
	// DefaultSealWindow is how many steps stay open awaiting
	// cross-window fragments before the oldest is sealed and analyzed.
	DefaultSealWindow = 8
	// DefaultStreamK is the streaming k-means centroid count: the
	// recurring-phase vocabulary size.
	DefaultStreamK = 4
	// DefaultDegradeFactor flags a sealed step whose span exceeds this
	// multiple of its phase's mean step span.
	DefaultDegradeFactor = 2.0
	// SignatureOps caps a closed phase's op-mix signature.
	SignatureOps = 12
	// degradeMinSteps is how many steps a phase needs before its mean
	// span is trusted for degradation detection.
	degradeMinSteps = 8
	// streamFeatureDims is the fixed per-step feature dimensionality
	// the streaming k-means clusters (see stepFeatures).
	streamFeatureDims = 8
)

// StreamEventKind labels a streaming analysis event.
type StreamEventKind uint8

// The streaming event kinds.
const (
	// PhaseOpen fires when a boundary starts a new phase (including the
	// first step of the run).
	PhaseOpen StreamEventKind = iota
	// PhaseClose fires when a phase's last step is known — at the next
	// boundary, or at Finish for the final phase. The event carries the
	// completed phase summary.
	PhaseClose
	// StepDegraded fires when a sealed step's span exceeds
	// DegradeFactor × the phase's mean step span (at most once per
	// phase; the phase's Degraded count keeps the total).
	StepDegraded
)

func (k StreamEventKind) String() string {
	switch k {
	case PhaseOpen:
		return "phase-open"
	case PhaseClose:
		return "phase-close"
	case StepDegraded:
		return "step-degraded"
	default:
		return fmt.Sprintf("stream-event(%d)", uint8(k))
	}
}

// StreamEvent is one boundary or degradation notification. Phase points
// at the analyzer's live summary: PhaseClose events hand over the final,
// immutable summary; PhaseOpen and StepDegraded events hand the open
// phase, whose step/time fields are still growing.
type StreamEvent struct {
	Kind  StreamEventKind
	Phase *StreamPhase
	Step  int64 // step that triggered the event
}

// OpShare is one operator's share of a phase's total op time.
type OpShare struct {
	Key   trace.OpKey
	Share float64
}

// StreamPhase is a phase summary maintained incrementally — the
// streaming analogue of Phase, holding aggregates instead of member
// steps.
type StreamPhase struct {
	ID        int
	FirstStep int64
	LastStep  int64
	Steps     int64 // sampled steps folded in

	Start simclock.Time
	End   simclock.Time
	Total simclock.Duration // summed sampled-step spans

	IdleFrac float64 // span-weighted
	MXUUtil  float64 // span-weighted

	// Signature is the op-mix time-share signature (top SignatureOps
	// operators by share, descending), filled at close.
	Signature []OpShare

	// Cluster is the streaming k-means label refined as data arrives
	// (-1 before the model has seen enough points to seed).
	Cluster int

	// Degraded counts sealed steps that exceeded the degradation
	// factor against the phase mean.
	Degraded int64

	// ops aggregates op time while the phase is open; compacted into
	// Signature and released at close.
	ops map[trace.OpKey]simclock.Duration
	// feat accumulates the per-step feature sum for the k-means label.
	feat [streamFeatureDims]float64
}

// TimeShare returns the phase's share of total across phases.
func (p *StreamPhase) TimeShare(total simclock.Duration) float64 {
	if total <= 0 {
		return 0
	}
	return float64(p.Total) / float64(total)
}

// StreamOptions tune a streaming analysis.
type StreamOptions struct {
	// Threshold is the OLS StepSimilarity threshold (default 0.70).
	Threshold float64
	// DutyCycle analyzes only steps whose number is ≡ 0 mod N (<= 1
	// analyzes every step). The report then estimates time shares from
	// the sampled steps alone.
	DutyCycle int
	// SealWindow is how many steps stay open for cross-window merging
	// (default DefaultSealWindow). Steps arriving after their number
	// was sealed are dropped and counted in the report's LateSteps.
	SealWindow int
	// K is the streaming k-means centroid count (default
	// DefaultStreamK). Negative disables the clustering refinement.
	K int
	// Batch is the k-means mini-batch size (default
	// cluster.DefaultStreamBatch).
	Batch int
	// Seed feeds the k-means seeding PRNG.
	Seed uint64
	// DegradeFactor flags steps slower than this multiple of the phase
	// mean (default DefaultDegradeFactor; negative disables).
	DegradeFactor float64
	// OnEvent, when set, receives PhaseOpen/PhaseClose/StepDegraded
	// synchronously from Feed/Finish.
	OnEvent func(StreamEvent)
	// Obs, when set, counts records/steps/phases/degradations.
	Obs *obs.Registry
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.Threshold == 0 {
		o.Threshold = DefaultThreshold
	}
	if o.DutyCycle <= 1 {
		o.DutyCycle = 1
	}
	if o.SealWindow <= 0 {
		o.SealWindow = DefaultSealWindow
	}
	if o.K == 0 {
		o.K = DefaultStreamK
	}
	if o.DegradeFactor == 0 {
		o.DegradeFactor = DefaultDegradeFactor
	}
	return o
}

// StreamReport is the final output of a streaming analysis.
type StreamReport struct {
	Workload  string
	DutyCycle int

	Records   int64 // records fed
	Gaps      int64 // gap records skipped
	StepsSeen int64 // distinct steps observed before duty sampling
	Steps     int64 // sampled steps analyzed
	LateSteps int64 // step fragments dropped for arriving after seal

	Phases []*StreamPhase

	TotalTime simclock.Duration // summed sampled-step spans
	IdleFrac  float64           // span-weighted over sampled steps
	MXUUtil   float64

	// K is the streaming k-means centroid count (0 when disabled).
	K int
}

// Boundaries returns the first step of every phase after the first —
// the phase-boundary set the fidelity benchmark scores.
func (r *StreamReport) Boundaries() []int64 {
	if len(r.Phases) <= 1 {
		return nil
	}
	out := make([]int64, 0, len(r.Phases)-1)
	for _, p := range r.Phases[1:] {
		out = append(out, p.FirstStep)
	}
	return out
}

// streamMetrics are the analyzer's obs instruments.
type streamMetrics struct {
	records  *obs.Counter
	steps    *obs.Counter
	phases   *obs.Counter
	degraded *obs.Counter
	late     *obs.Counter
}

// StreamAnalyzer is the incremental analyzer. Not safe for concurrent
// use; callers feeding from multiple goroutines must serialize.
type StreamAnalyzer struct {
	workload string
	opts     StreamOptions
	m        streamMetrics

	// pending holds open steps awaiting cross-window fragments.
	pending map[int64]*trace.StepStat
	sealed  int64 // highest sealed step number (-1 until the first)
	hasSeal bool

	// prev is the last sampled sealed step — the OLS comparison
	// anchor. Exactly one full StepStat is retained at any time.
	prev *trace.StepStat

	cur    *StreamPhase
	closed []*StreamPhase

	km   *cluster.StreamKMeans
	feat [streamFeatureDims]float64 // scratch

	rep      StreamReport
	finished bool
}

// NewStream builds a streaming analyzer for one run.
func NewStream(workload string, opts StreamOptions) *StreamAnalyzer {
	opts = opts.withDefaults()
	s := &StreamAnalyzer{
		workload: workload,
		opts:     opts,
		pending:  make(map[int64]*trace.StepStat, opts.SealWindow+1),
		m: streamMetrics{
			records:  opts.Obs.Counter("stream.records"),
			steps:    opts.Obs.Counter("stream.steps"),
			phases:   opts.Obs.Counter("stream.phases"),
			degraded: opts.Obs.Counter("stream.degraded"),
			late:     opts.Obs.Counter("stream.steps.late"),
		},
	}
	if opts.K > 0 {
		s.km = cluster.NewStreamKMeans(opts.K, streamFeatureDims, opts.Batch, opts.Seed)
	}
	return s
}

// Feed folds one record into the analysis. Gap records advance the
// record count only. Feeding after Finish is an error.
func (s *StreamAnalyzer) Feed(rec *trace.ProfileRecord) error {
	if s.finished {
		return fmt.Errorf("analyzer: stream already finished")
	}
	if rec == nil {
		return fmt.Errorf("analyzer: nil record")
	}
	s.rep.Records++
	s.m.records.Inc()
	if rec.Gap {
		s.rep.Gaps++
		return nil
	}
	for _, st := range rec.Steps {
		s.observeStep(st)
	}
	// Seal oldest steps beyond the window, smallest step number first,
	// so OLS sees the step series in order.
	for len(s.pending) > s.opts.SealWindow {
		s.sealStep(s.minPending())
	}
	return nil
}

// FeedBatch folds a batch of records in order. Equivalent to calling
// Feed on each — the determinism contract makes the chunking
// unobservable.
func (s *StreamAnalyzer) FeedBatch(recs []*trace.ProfileRecord) error {
	for _, r := range recs {
		if err := s.Feed(r); err != nil {
			return err
		}
	}
	return nil
}

// observeStep merges one per-window step fragment into the open window.
func (s *StreamAnalyzer) observeStep(st *trace.StepStat) {
	if s.hasSeal && st.Step <= s.sealed {
		// The step was already sealed and analyzed; merging now would
		// rewrite history. Count it instead of retaining it.
		s.rep.LateSteps++
		s.m.late.Inc()
		return
	}
	if cur, ok := s.pending[st.Step]; ok {
		cur.Merge(st)
		return
	}
	s.pending[st.Step] = st.Clone()
}

// minPending returns the smallest open step number.
func (s *StreamAnalyzer) minPending() int64 {
	first := true
	var min int64
	for step := range s.pending {
		if first || step < min {
			min, first = step, false
		}
	}
	return min
}

// sealStep closes the window for one step: it can no longer grow, so it
// enters duty sampling, the OLS boundary chain, the open phase's
// aggregates, and the k-means model.
func (s *StreamAnalyzer) sealStep(step int64) {
	st := s.pending[step]
	delete(s.pending, step)
	s.sealed, s.hasSeal = step, true
	s.rep.StepsSeen++

	if s.opts.DutyCycle > 1 && step%int64(s.opts.DutyCycle) != 0 {
		return // off-duty: the sampled report speaks for this step
	}
	s.rep.Steps++
	s.m.steps.Inc()

	if s.cur == nil {
		s.openPhase(st)
	} else if meetsThreshold(StepSimilarity(s.prev, st), s.opts.Threshold) {
		s.extendPhase(st)
	} else {
		s.closePhase(st.Step)
		s.openPhase(st)
	}
	s.prev = st

	if s.km != nil {
		s.km.Observe(stepFeatures(s.feat[:0], st))
	}
}

// openPhase starts a new phase at st and emits PhaseOpen.
func (s *StreamAnalyzer) openPhase(st *trace.StepStat) {
	p := &StreamPhase{
		ID:        len(s.closed),
		FirstStep: st.Step,
		Cluster:   -1,
		ops:       make(map[trace.OpKey]simclock.Duration, len(st.Ops)),
	}
	s.cur = p
	s.foldStep(p, st)
	s.m.phases.Inc()
	s.emit(StreamEvent{Kind: PhaseOpen, Phase: p, Step: st.Step})
}

// extendPhase folds st into the open phase, checking degradation first
// (against the mean excluding st, so a slow step cannot hide in its own
// average).
func (s *StreamAnalyzer) extendPhase(st *trace.StepStat) {
	p := s.cur
	span := st.End.Sub(st.Start)
	if s.opts.DegradeFactor > 0 && p.Steps >= degradeMinSteps {
		mean := float64(p.Total) / float64(p.Steps)
		if float64(span) > s.opts.DegradeFactor*mean {
			p.Degraded++
			s.m.degraded.Inc()
			if p.Degraded == 1 {
				s.emit(StreamEvent{Kind: StepDegraded, Phase: p, Step: st.Step})
			}
		}
	}
	s.foldStep(p, st)
}

// foldStep accumulates one sampled step into a phase summary.
func (s *StreamAnalyzer) foldStep(p *StreamPhase, st *trace.StepStat) {
	span := st.End.Sub(st.Start)
	if p.Steps == 0 || st.Start < p.Start {
		p.Start = st.Start
	}
	if st.End > p.End {
		p.End = st.End
	}
	p.LastStep = st.Step
	p.Steps++
	p.Total += span
	p.IdleFrac += st.IdleFrac * float64(span)
	p.MXUUtil += st.MXUUtil * float64(span)
	for k, op := range st.Ops {
		p.ops[k] += op.Total
	}
	stepFeatures(s.feat[:0], st)
	for i, v := range s.feat {
		p.feat[i] += v
	}

	s.rep.TotalTime += span
	s.rep.IdleFrac += st.IdleFrac * float64(span)
	s.rep.MXUUtil += st.MXUUtil * float64(span)
}

// closePhase finalizes the open phase — normalizes the weighted
// metadata, compacts the op aggregate into the capped signature,
// assigns the k-means label — and emits PhaseClose. boundaryStep is the
// first step of the successor (the boundary that closed it); the final
// Finish-time close passes the phase's own last step.
func (s *StreamAnalyzer) closePhase(boundaryStep int64) {
	p := s.cur
	s.cur = nil
	if p == nil {
		return
	}
	if p.Total > 0 {
		p.IdleFrac /= float64(p.Total)
		p.MXUUtil /= float64(p.Total)
	}
	p.Signature = compactSignature(p.ops)
	p.ops = nil // released: the capped signature is all that survives
	if s.km != nil && p.Steps > 0 {
		mean := make([]float64, streamFeatureDims)
		for i := range mean {
			mean[i] = p.feat[i] / float64(p.Steps)
		}
		p.Cluster = s.km.Assign(mean)
	}
	s.closed = append(s.closed, p)
	s.emit(StreamEvent{Kind: PhaseClose, Phase: p, Step: boundaryStep})
}

// Finish seals every open step, closes the final phase, and returns the
// report. The analyzer rejects further feeding afterwards.
func (s *StreamAnalyzer) Finish() *StreamReport {
	if s.finished {
		return &s.rep
	}
	for len(s.pending) > 0 {
		s.sealStep(s.minPending())
	}
	if s.km != nil {
		s.km.Flush()
	}
	if s.cur != nil {
		s.closePhase(s.cur.LastStep)
	}
	s.finished = true
	s.prev = nil

	s.rep.Workload = s.workload
	s.rep.DutyCycle = s.opts.DutyCycle
	s.rep.Phases = s.closed
	if s.km != nil {
		s.rep.K = s.km.K()
	}
	if s.rep.TotalTime > 0 {
		s.rep.IdleFrac /= float64(s.rep.TotalTime)
		s.rep.MXUUtil /= float64(s.rep.TotalTime)
	}
	return &s.rep
}

// Phases returns the phases closed so far (excluding the open one).
func (s *StreamAnalyzer) Phases() []*StreamPhase { return s.closed }

func (s *StreamAnalyzer) emit(ev StreamEvent) {
	if s.opts.OnEvent != nil {
		s.opts.OnEvent(ev)
	}
}

// StateBytes estimates the analyzer's resident memory: the seal window,
// the one retained comparison step, the open phase's op aggregate, the
// k-means model, and the closed-phase signatures. Everything except the
// closed-phase list is bounded independent of run length, and each
// closed phase costs O(SignatureOps).
func (s *StreamAnalyzer) StateBytes() int64 {
	var b int64 = 256
	for _, st := range s.pending {
		b += stepStatBytes(st)
	}
	if s.prev != nil {
		b += stepStatBytes(s.prev)
	}
	if s.cur != nil {
		b += 160 + int64(len(s.cur.ops))*48
	}
	for _, p := range s.closed {
		b += 160 + int64(len(p.Signature))*40
	}
	if s.km != nil {
		b += s.km.StateBytes()
	}
	return b
}

func stepStatBytes(st *trace.StepStat) int64 {
	return 64 + int64(len(st.Ops))*48
}

// compactSignature reduces a phase's op aggregate to its top
// SignatureOps operators by time share, descending (ties broken by
// device then name for determinism).
func compactSignature(ops map[trace.OpKey]simclock.Duration) []OpShare {
	if len(ops) == 0 {
		return nil
	}
	var total simclock.Duration
	for _, d := range ops {
		total += d
	}
	out := make([]OpShare, 0, len(ops))
	for k, d := range ops {
		share := 0.0
		if total > 0 {
			share = float64(d) / float64(total)
		}
		out = append(out, OpShare{Key: k, Share: share})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		if out[i].Key.Device != out[j].Key.Device {
			return out[i].Key.Device < out[j].Key.Device
		}
		return out[i].Key.Name < out[j].Key.Name
	})
	if len(out) > SignatureOps {
		out = out[:SignatureOps]
	}
	return out
}

// stepFeatures renders one sealed step as the fixed-dimension vector
// the streaming k-means clusters: span and device-time magnitudes (log
// compressed so the model tolerates the microsecond..minute range),
// op-mix shape, and the window metadata. A pure function of the step,
// so the feature stream — and the model — is chunk-invariant.
func stepFeatures(dst []float64, st *trace.StepStat) []float64 {
	var host, tpu simclock.Duration
	var count int64
	var maxOp simclock.Duration
	for k, op := range st.Ops {
		if k.Device == trace.Host {
			host += op.Total
		} else {
			tpu += op.Total
		}
		count += op.Count
		if op.Total > maxOp {
			maxOp = op.Total
		}
	}
	totalOp := host + tpu
	maxShare := 0.0
	if totalOp > 0 {
		maxShare = float64(maxOp) / float64(totalOp)
	}
	return append(dst,
		logScale(float64(st.End.Sub(st.Start))),
		logScale(float64(host)),
		logScale(float64(tpu)),
		logScale(float64(count)),
		float64(len(st.Ops)),
		st.IdleFrac,
		st.MXUUtil,
		maxShare,
	)
}

// logScale is ln(1+x) clamped at zero — time-like magnitudes compressed
// so no single huge step dominates every distance.
func logScale(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log1p(x)
}
