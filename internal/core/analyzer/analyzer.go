// Package analyzer implements TPUPoint-Analyzer: the post-execution pass
// that turns statistical profile records into program phases.
//
// Three summarization methods are provided, mirroring Section IV:
//
//   - OLS, the online linear scan: consecutive steps whose operator sets
//     satisfy Equation 1's StepSimilarity above a threshold (default 70%)
//     merge into one phase;
//   - k-means over PCA-reduced step feature vectors, k = 1..15 selected by
//     the elbow method on the sum of squared distances;
//   - DBSCAN over the same features, minimum-samples selected by the elbow
//     method on the noise ratio, with the unlabeled (noise) points kept as
//     one extra cluster, as the paper does for its coverage numbers.
//
// The package also produces the derived results the paper reports: phase
// coverage of execution time, the top-N most time-consuming operators of
// the longest phase (Table II), and phase→checkpoint association.
package analyzer

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core/cluster"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// Algorithm selects a phase-detection method.
type Algorithm string

// The three summarization methods.
const (
	OLSAlgo    Algorithm = "ols"
	KMeansAlgo Algorithm = "kmeans"
	DBSCANAlgo Algorithm = "dbscan"
)

// DefaultThreshold is the OLS similarity threshold the paper found to give
// 3 phases covering ≥95% of execution for most workloads.
const DefaultThreshold = 0.70

// KSelection picks how the k-means cluster count is chosen.
type KSelection string

// K-selection rules: the paper's elbow heuristic (default) and SimPoint's
// Bayesian information criterion, provided for comparison.
const (
	SelectElbow KSelection = "elbow"
	SelectBIC   KSelection = "bic"
)

// Options tune an analysis run.
type Options struct {
	// Threshold is the OLS StepSimilarity threshold (default 0.70).
	Threshold float64
	// KMax bounds the k-means sweep (default 15, as in the paper).
	KMax int
	// KSelection chooses elbow (paper default) or BIC (SimPoint style).
	KSelection KSelection
	// MinPtsMax / MinPtsStep define the DBSCAN sweep (default 180 / 25).
	MinPtsMax  int
	MinPtsStep int
	// Seed feeds k-means initialization.
	Seed uint64
	// MemoryBudget bounds clustering working memory in bytes; exceeded
	// budgets surface cluster.ErrMemoryBudget (0 = unlimited).
	MemoryBudget int64
	// Parallelism bounds the clustering worker pool: 0 uses GOMAXPROCS,
	// 1 forces the serial path. Results are bit-identical for every
	// setting — the parallel reductions merge in a fixed chunk order
	// (see internal/parallel).
	Parallelism int
	// Obs, when set, records per-stage wall time (feature extraction,
	// PCA, the clustering sweeps, OLS) as latency histograms.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Threshold == 0 {
		o.Threshold = DefaultThreshold
	}
	if o.KMax == 0 {
		o.KMax = 15
	}
	if o.MinPtsMax == 0 {
		o.MinPtsMax = 180
	}
	if o.MinPtsStep == 0 {
		o.MinPtsStep = 25
	}
	if o.KSelection == "" {
		o.KSelection = SelectElbow
	}
	return o
}

// Phase is a group of steps with similar behaviour.
type Phase struct {
	ID    int
	Steps []*trace.StepStat

	Start simclock.Time     // earliest member start
	End   simclock.Time     // latest member end
	Total simclock.Duration // summed member spans (incl. pre-step idle)

	// Checkpoint is the closest saved checkpoint, filled by
	// AssociateCheckpoints.
	Checkpoint string
}

// StepIDs returns the member step numbers in ascending order.
func (p *Phase) StepIDs() []int64 {
	ids := make([]int64, len(p.Steps))
	for i, s := range p.Steps {
		ids[i] = s.Step
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TopOps returns the phase's n most time-consuming operators per device.
func (p *Phase) TopOps(dev trace.Device, n int) []trace.OpTotal {
	return trace.TopOps(p.Steps, dev, n)
}

// StepSimilarity computes Equation 1: the ratio of the intersection of
// the two steps' event sets to the size of the smaller set. The ratio
// is undefined when both steps are empty — there is no evidence either
// way — so that case returns NaN; callers must compare through
// meetsThreshold (OLS does), which treats NaN as "not similar". A step
// with ops compared against an empty step is 0: no shared behaviour.
func StepSimilarity(a, b *trace.StepStat) float64 {
	sa, sb := a.OpSet(), b.OpSet()
	if len(sa) == 0 || len(sb) == 0 {
		if len(sa) == len(sb) {
			return math.NaN()
		}
		return 0
	}
	small, large := sa, sb
	if len(sb) < len(sa) {
		small, large = sb, sa
	}
	inter := 0
	for k := range small {
		if _, ok := large[k]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(small))
}

// meetsThreshold is the one place a StepSimilarity value is compared
// against the OLS threshold. The comparison is explicit about the edge
// cases: a NaN similarity (two empty steps — Equation 1 undefined) or a
// NaN threshold never merges. Before this rule an empty step always
// merged into a preceding empty step because the undefined ratio was
// reported as 1.
func meetsThreshold(sim, threshold float64) bool {
	if math.IsNaN(sim) || math.IsNaN(threshold) {
		return false
	}
	return sim >= threshold
}

// OLS runs the online linear scan: walk the steps in order and merge each
// step into the current phase when its similarity to the previous step
// meets the threshold, otherwise start a new phase. Undefined
// similarities (both steps empty) and NaN thresholds never merge — see
// meetsThreshold.
func OLS(steps []*trace.StepStat, threshold float64) []*Phase {
	if len(steps) == 0 {
		return nil
	}
	var phases []*Phase
	cur := newPhase(0, steps[0])
	for i := 1; i < len(steps); i++ {
		if meetsThreshold(StepSimilarity(steps[i-1], steps[i]), threshold) {
			cur.addStep(steps[i])
			continue
		}
		phases = append(phases, cur)
		cur = newPhase(len(phases), steps[i])
	}
	phases = append(phases, cur)
	return phases
}

func newPhase(id int, s *trace.StepStat) *Phase {
	p := &Phase{ID: id}
	p.addStep(s)
	return p
}

func (p *Phase) addStep(s *trace.StepStat) {
	if len(p.Steps) == 0 || s.Start < p.Start {
		p.Start = s.Start
	}
	if s.End > p.End {
		p.End = s.End
	}
	p.Total += s.End.Sub(s.Start)
	p.Steps = append(p.Steps, s)
}

// featureMatrix builds the standardized, PCA-reduced step feature matrix
// every clustering algorithm consumes, honoring the parallelism option.
func featureMatrix(steps []*trace.StepStat, opts Options) *cluster.Matrix {
	start := time.Now()
	m, _ := cluster.FeaturesP(steps, opts.Parallelism)
	cluster.StandardizeP(m, opts.Parallelism)
	opts.Obs.Histogram("analyzer.stage.features_us").ObserveSince(start)
	start = time.Now()
	out := cluster.PCAP(m, cluster.MaxFeatureOps, opts.Parallelism)
	opts.Obs.Histogram("analyzer.stage.pca_us").ObserveSince(start)
	return out
}

// phasesFromLabels groups steps by cluster label. Label order follows
// first appearance so phase IDs are stable.
func phasesFromLabels(steps []*trace.StepStat, labels []int) []*Phase {
	byLabel := make(map[int]*Phase)
	var order []int
	for i, s := range steps {
		l := labels[i]
		p, ok := byLabel[l]
		if !ok {
			p = &Phase{ID: len(order)}
			byLabel[l] = p
			order = append(order, l)
		}
		p.addStep(s)
	}
	out := make([]*Phase, 0, len(order))
	for _, l := range order {
		out = append(out, byLabel[l])
	}
	return out
}

// KMeansPhases clusters the steps with PCA + k-means, choosing k by the
// elbow method over 1..KMax. It returns the phases, the SSD series of the
// sweep (Figure 4's data), and the chosen k.
func KMeansPhases(steps []*trace.StepStat, opts Options) ([]*Phase, []float64, int, error) {
	opts = opts.withDefaults()
	if len(steps) == 0 {
		return nil, nil, 0, errors.New("analyzer: no steps")
	}
	m := featureMatrix(steps, opts)
	defer opts.Obs.Histogram("analyzer.stage.kmeans_us").ObserveSince(time.Now())
	ssd, err := cluster.SSDSweepP(m, opts.KMax, opts.Seed, opts.MemoryBudget, opts.Parallelism)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("analyzer: k-means sweep: %w", err)
	}
	var k int
	if opts.KSelection == SelectBIC {
		bic, err := cluster.BICSweepP(m, opts.KMax, opts.Seed, opts.MemoryBudget, opts.Parallelism)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("analyzer: BIC sweep: %w", err)
		}
		k = cluster.BestBIC(bic)
	} else {
		k = cluster.Elbow(ssd)
	}
	res, err := cluster.KMeansP(m, k, opts.Seed+uint64(k), opts.MemoryBudget, opts.Parallelism)
	if err != nil {
		return nil, nil, 0, err
	}
	return phasesFromLabels(steps, res.Assignment), ssd, k, nil
}

// DBSCANPhases clusters the steps with DBSCAN, choosing min-samples by
// the elbow method over the noise-ratio sweep. Noise points form one
// additional phase (the paper counts unlabeled samples as a cluster when
// measuring coverage). It returns the phases, the sweep's minPts grid and
// noise ratios (Figure 5's data), and the chosen minPts.
func DBSCANPhases(steps []*trace.StepStat, opts Options) ([]*Phase, []int, []float64, int, error) {
	opts = opts.withDefaults()
	if len(steps) == 0 {
		return nil, nil, nil, 0, errors.New("analyzer: no steps")
	}
	m := featureMatrix(steps, opts)
	defer opts.Obs.Histogram("analyzer.stage.dbscan_us").ObserveSince(time.Now())
	grid, ratios, err := cluster.NoiseSweepP(m, opts.MinPtsMax, opts.MinPtsStep, opts.MemoryBudget, opts.Parallelism)
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("analyzer: dbscan sweep: %w", err)
	}
	// The noise curve rises with min-samples; the elbow of the *rising*
	// curve balances "minimize noise" against "maximize min samples".
	idx := cluster.Elbow(ratios)
	minPts := grid[idx-1]
	res, err := cluster.DBSCANP(m, minPts, 0, opts.MemoryBudget, opts.Parallelism)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return phasesFromLabels(steps, res.Labels), grid, ratios, minPts, nil
}

// SortByTotal orders phases by descending total time.
func SortByTotal(phases []*Phase) []*Phase {
	out := append([]*Phase(nil), phases...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Coverage returns the fraction of total step time covered by the top-n
// phases (Figures 7-9).
func Coverage(phases []*Phase, n int) float64 {
	var total, top simclock.Duration
	for _, p := range phases {
		total += p.Total
	}
	if total == 0 {
		return 0
	}
	for i, p := range SortByTotal(phases) {
		if i >= n {
			break
		}
		top += p.Total
	}
	return float64(top) / float64(total)
}

// Checkpoint is a saved model state the analyzer can point a phase at.
type Checkpoint struct {
	Step   int64
	Object string
}

// AssociateCheckpoints fills each phase's Checkpoint with the saved
// checkpoint closest to the phase's steps, enabling restart-at-phase.
func AssociateCheckpoints(phases []*Phase, ckpts []Checkpoint) {
	if len(ckpts) == 0 {
		return
	}
	for _, p := range phases {
		ids := p.StepIDs()
		best := ""
		bestDist := int64(-1)
		for _, ck := range ckpts {
			d := minStepDistance(ids, ck.Step)
			if bestDist < 0 || d < bestDist {
				bestDist = d
				best = ck.Object
			}
		}
		p.Checkpoint = best
	}
}

func minStepDistance(sorted []int64, step int64) int64 {
	best := int64(-1)
	for _, id := range sorted {
		d := id - step
		if d < 0 {
			d = -d
		}
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}
