package analyzer

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core/cluster"
	"repro/internal/estimator"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func step(id int64, start simclock.Time, ops ...string) *trace.StepStat {
	s := trace.NewStepStat(id)
	at := start
	for _, op := range ops {
		s.Observe(trace.Event{Name: op, Device: trace.TPU, Start: at, Dur: 10, Step: id})
		at += 10
	}
	return s
}

func TestStepSimilarityEquation1(t *testing.T) {
	a := step(1, 0, "x", "y", "z")
	b := step(2, 100, "x", "y", "w")
	// |{x,y}| / min(3,3) = 2/3.
	if sim := StepSimilarity(a, b); sim < 0.66 || sim > 0.67 {
		t.Fatalf("similarity = %g, want 2/3", sim)
	}
	// Subset: |{x,y}|/min(2,3) = 1. Supersets merge under Equation 1.
	c := step(3, 200, "x", "y")
	if sim := StepSimilarity(b, c); sim != 1 {
		t.Fatalf("subset similarity = %g, want 1", sim)
	}
	// Identical sets.
	if sim := StepSimilarity(a, a); sim != 1 {
		t.Fatalf("self similarity = %g", sim)
	}
	// Disjoint sets.
	d := step(4, 300, "p", "q")
	if sim := StepSimilarity(a, d); sim != 0 {
		t.Fatalf("disjoint similarity = %g", sim)
	}
}

func TestStepSimilarityEmptySets(t *testing.T) {
	e1, e2 := trace.NewStepStat(1), trace.NewStepStat(2)
	// Two empty op sets have no evidence of similarity: Equation 1's
	// |A∩B|/min(|A|,|B|) is 0/0, reported as NaN so thresholding can
	// treat it as "undefined, do not merge" rather than silently 1.
	if sim := StepSimilarity(e1, e2); !math.IsNaN(sim) {
		t.Fatalf("empty-vs-empty similarity = %g, want NaN", sim)
	}
	full := step(3, 0, "x")
	if StepSimilarity(e1, full) != 0 {
		t.Fatal("empty vs non-empty should be dissimilar")
	}
}

func TestMeetsThreshold(t *testing.T) {
	cases := []struct {
		sim, thr float64
		want     bool
	}{
		{0.7, 0.7, true},
		{0.69, 0.7, false},
		{1, 0.7, true},
		{math.NaN(), 0.7, false},
		{0.9, math.NaN(), false},
		{math.NaN(), math.NaN(), false},
	}
	for _, c := range cases {
		if got := meetsThreshold(c.sim, c.thr); got != c.want {
			t.Errorf("meetsThreshold(%g, %g) = %v, want %v", c.sim, c.thr, got, c.want)
		}
	}
}

func TestOLSZeroOpStepsDoNotMerge(t *testing.T) {
	// Regression: a step with zero ops used to score similarity 1
	// against anything, gluing unrelated phases together across idle
	// steps. With the NaN contract each empty step breaks the chain.
	steps := []*trace.StepStat{
		step(0, 0, "fusion", "MatMul"),
		step(1, 100, "fusion", "MatMul"),
		trace.NewStepStat(2), // empty (e.g. fully idle window)
		step(3, 300, "ArgMax", "Mean"),
		step(4, 400, "ArgMax", "Mean"),
	}
	phases := OLS(steps, 0.7)
	if len(phases) != 3 {
		t.Fatalf("phases = %d, want 3 (train / idle / eval)", len(phases))
	}
	if got := phases[1].Steps[0].Step; got != 2 {
		t.Fatalf("middle phase starts at step %d, want the empty step 2", got)
	}
}

func TestOLSConsecutiveEmptyStepsEachStandAlone(t *testing.T) {
	// Two empty steps in a row: NaN vs NaN must not merge either.
	steps := []*trace.StepStat{
		trace.NewStepStat(0),
		trace.NewStepStat(1),
		step(2, 200, "x"),
	}
	phases := OLS(steps, 0.7)
	if len(phases) != 3 {
		t.Fatalf("phases = %d, want 3 (each empty step stands alone)", len(phases))
	}
}

func TestOLSGroupsConsecutiveSimilarSteps(t *testing.T) {
	steps := []*trace.StepStat{
		step(0, 0, "init", "restore"),
		step(1, 100, "fusion", "MatMul", "Reshape"),
		step(2, 200, "fusion", "MatMul", "Reshape"),
		step(3, 300, "fusion", "MatMul", "Reshape"),
		step(4, 400, "ArgMax", "Mean", "TopKV2"),
		step(5, 500, "ArgMax", "Mean", "TopKV2"),
	}
	phases := OLS(steps, 0.7)
	if len(phases) != 3 {
		t.Fatalf("phases = %d, want 3 (init/train/eval)", len(phases))
	}
	if len(phases[1].Steps) != 3 {
		t.Fatalf("train phase has %d steps", len(phases[1].Steps))
	}
	ids := phases[2].StepIDs()
	if ids[0] != 4 || ids[1] != 5 {
		t.Fatalf("eval phase steps = %v", ids)
	}
}

func TestOLSThresholdSensitivity(t *testing.T) {
	// At threshold 0, everything is one phase; at 1.0, any set change
	// splits.
	steps := []*trace.StepStat{
		step(0, 0, "a", "b"),
		step(1, 100, "a", "b", "c"),
		step(2, 200, "a", "b"),
		step(3, 300, "q"),
	}
	if n := len(OLS(steps, 0)); n != 1 {
		t.Fatalf("threshold 0 phases = %d", n)
	}
	counts := OLSSweep(steps, []float64{0, 0.5, 1.0})
	if counts[0] > counts[1] || counts[1] > counts[2] {
		t.Fatalf("phase count not monotone in threshold: %v", counts)
	}
}

func TestOLSEmpty(t *testing.T) {
	if p := OLS(nil, 0.7); p != nil {
		t.Fatal("OLS(nil) should be nil")
	}
}

func TestCoverage(t *testing.T) {
	steps := []*trace.StepStat{
		step(0, 0, "a"),             // 10 µs
		step(1, 100, "x", "y", "z"), // 30
		step(2, 200, "x", "y", "z"), // 30
		step(3, 300, "q", "r", "s"), // 30
	}
	phases := OLS(steps, 0.7)
	if len(phases) != 3 {
		t.Fatalf("phases = %d", len(phases))
	}
	// Top-1 = 60/100, top-3 = all.
	if c := Coverage(phases, 1); c < 0.59 || c > 0.61 {
		t.Fatalf("top-1 coverage = %g", c)
	}
	if c := Coverage(phases, 3); c != 1 {
		t.Fatalf("top-3 coverage = %g", c)
	}
	if c := Coverage(nil, 3); c != 0 {
		t.Fatalf("empty coverage = %g", c)
	}
}

func TestAssociateCheckpoints(t *testing.T) {
	steps := []*trace.StepStat{
		step(0, 0, "a", "b"),
		step(1, 100, "a", "b"),
		step(50, 5000, "x", "y"),
		step(51, 5100, "x", "y"),
	}
	phases := OLS(steps, 0.7)
	AssociateCheckpoints(phases, []Checkpoint{
		{Step: 2, Object: "ckpt-2"},
		{Step: 49, Object: "ckpt-49"},
	})
	if phases[0].Checkpoint != "ckpt-2" {
		t.Fatalf("phase 0 checkpoint = %q", phases[0].Checkpoint)
	}
	if phases[1].Checkpoint != "ckpt-49" {
		t.Fatalf("phase 1 checkpoint = %q", phases[1].Checkpoint)
	}
	// No checkpoints: no-op.
	AssociateCheckpoints(phases, nil)
}

// runWorkload produces aggregated steps from a real simulated run.
func runWorkload(t testing.TB, name string, steps int) (*estimator.Runner, []*trace.StepStat) {
	t.Helper()
	w := workloads.MustGet(name)
	r, err := estimator.New(w, estimator.Options{Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	// Reduce the whole event stream the way the profiler would.
	rec := trace.Reduce(0, 0, r.Events(), r.IdleFraction(), r.MXUUtilization())
	return r, trace.AggregateSteps([]*trace.ProfileRecord{rec})
}

func TestOLSOnRealRunFindsThreePhases(t *testing.T) {
	_, steps := runWorkload(t, "bert-mrpc", 300)
	phases := OLS(steps, DefaultThreshold)
	if len(phases) < 2 || len(phases) > 6 {
		t.Fatalf("OLS @70%% found %d phases, want ~3", len(phases))
	}
	if c := Coverage(phases, 3); c < 0.95 {
		t.Fatalf("top-3 coverage = %.3f, want >= 0.95", c)
	}
}

func TestOLSPhaseCountGrowsWithThreshold(t *testing.T) {
	_, steps := runWorkload(t, "dcgan-cifar10", 300)
	counts := OLSSweep(steps, []float64{0.1, 0.5, 0.7, 0.9, 0.95, 1.0})
	if counts[2] > 8 {
		t.Fatalf("phases @0.7 = %d, too many", counts[2])
	}
	if counts[5] < 3*counts[2] {
		t.Fatalf("phases @1.0 = %d, not much above @0.7 = %d", counts[5], counts[2])
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("phase count not monotone: %v", counts)
		}
	}
}

func TestAnalyzeKMeansOnRealRun(t *testing.T) {
	_, steps := runWorkload(t, "bert-mrpc", 300)
	rep, err := AnalyzeSteps("bert-mrpc", steps, KMeansAlgo, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChosenK < 2 || rep.ChosenK > 8 {
		t.Fatalf("elbow chose k=%d, want paper-range 4-6ish", rep.ChosenK)
	}
	if len(rep.KMeansSSD) != 15 {
		t.Fatalf("SSD sweep has %d points, want 15", len(rep.KMeansSSD))
	}
	if rep.KMeansSSD[14] >= rep.KMeansSSD[0] {
		t.Fatal("SSD did not fall across the sweep")
	}
	if c := Coverage(rep.Phases, 3); c < 0.80 {
		t.Fatalf("k-means top-3 coverage = %.3f", c)
	}
}

func TestAnalyzeDBSCANOnRealRun(t *testing.T) {
	_, steps := runWorkload(t, "bert-mrpc", 300)
	rep, err := AnalyzeSteps("bert-mrpc", steps, DBSCANAlgo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChosenMinPts < 5 {
		t.Fatalf("chosen minPts = %d", rep.ChosenMinPts)
	}
	if len(rep.DBSCANGrid) == 0 || len(rep.DBSCANNoise) != len(rep.DBSCANGrid) {
		t.Fatal("sweep outputs inconsistent")
	}
	// Noise ratio rises with min samples.
	first, last := rep.DBSCANNoise[0], rep.DBSCANNoise[len(rep.DBSCANNoise)-1]
	if last < first {
		t.Fatalf("noise ratio falling: %v", rep.DBSCANNoise)
	}
	if c := Coverage(rep.Phases, 3); c < 0.70 {
		t.Fatalf("dbscan top-3 coverage = %.3f", c)
	}
}

func TestAnalyzeTopOpsMatchTableII(t *testing.T) {
	_, steps := runWorkload(t, "bert-mrpc", 300)
	rep, err := AnalyzeSteps("bert-mrpc", steps, OLSAlgo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TopTPUOps) != 5 || len(rep.TopHostOps) != 5 {
		t.Fatalf("top ops: %d tpu, %d host", len(rep.TopTPUOps), len(rep.TopHostOps))
	}
	tpuNames := map[string]bool{}
	for _, op := range rep.TopTPUOps {
		tpuNames[op.Name] = true
	}
	if !tpuNames["fusion"] {
		t.Fatalf("fusion not in top TPU ops: %+v", rep.TopTPUOps)
	}
	hostNames := map[string]bool{}
	for _, op := range rep.TopHostOps {
		hostNames[op.Name] = true
	}
	if !hostNames["TransferBufferToInfeedLocked"] && !hostNames["OutfeedDequeueTuple"] {
		t.Fatalf("no infeed/outfeed op in top host ops: %+v", rep.TopHostOps)
	}
}

func TestAnalyzeMemoryBudgetFailure(t *testing.T) {
	_, steps := runWorkload(t, "bert-mrpc", 300)
	// DBSCAN needs ~steps² × 8 bytes; strangle it.
	_, err := AnalyzeSteps("x", steps, DBSCANAlgo, Options{MemoryBudget: 1 << 10})
	if !errors.Is(err, cluster.ErrMemoryBudget) {
		t.Fatalf("err = %v, want ErrMemoryBudget", err)
	}
	// OLS has no such limit (the paper's point).
	if _, err := AnalyzeSteps("x", steps, OLSAlgo, Options{MemoryBudget: 1 << 10}); err != nil {
		t.Fatalf("OLS failed under budget: %v", err)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := AnalyzeSteps("x", nil, OLSAlgo, Options{}); err == nil {
		t.Fatal("empty steps accepted")
	}
	s := []*trace.StepStat{step(0, 0, "a")}
	if _, err := AnalyzeSteps("x", s, Algorithm("quantum"), Options{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAnalyzeFromRecords(t *testing.T) {
	r, _ := runWorkload(t, "dcgan-mnist", 150)
	// Split events into multiple profile windows like the profiler does.
	events := r.Events()
	mid := events[len(events)/2].Start
	rec1 := trace.Reduce(0, 0, r.EventsInWindow(0, mid), 0.4, 0.2)
	rec2 := trace.Reduce(1, mid, r.EventsInWindow(mid, r.Now()+1), 0.4, 0.2)
	rep, err := Analyze("dcgan-mnist", []*trace.ProfileRecord{rec1, rec2}, OLSAlgo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps == 0 || len(rep.Phases) == 0 {
		t.Fatal("no phases from records")
	}
	if rep.Longest == nil || rep.Longest.Total == 0 {
		t.Fatal("no longest phase")
	}
}

func TestReportMetadata(t *testing.T) {
	_, steps := runWorkload(t, "bert-mrpc", 200)
	rep, err := AnalyzeSteps("bert-mrpc", steps, OLSAlgo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.IdleFrac <= 0 || rep.IdleFrac >= 1 {
		t.Fatalf("report idle = %g", rep.IdleFrac)
	}
	if rep.TotalTime <= 0 {
		t.Fatal("report total time zero")
	}
	if rep.Workload != "bert-mrpc" || rep.Algorithm != OLSAlgo {
		t.Fatal("report identity wrong")
	}
}

func BenchmarkOLS600Steps(b *testing.B) {
	_, steps := runWorkload(b, "dcgan-cifar10", 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OLS(steps, DefaultThreshold)
	}
}

func BenchmarkKMeansAnalyze(b *testing.B) {
	_, steps := runWorkload(b, "dcgan-cifar10", 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeSteps("x", steps, KMeansAlgo, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestKMeansBICSelection(t *testing.T) {
	_, steps := runWorkload(t, "bert-mrpc", 300)
	elbowRep, err := AnalyzeSteps("x", steps, KMeansAlgo, Options{Seed: 1, KSelection: SelectElbow})
	if err != nil {
		t.Fatal(err)
	}
	bicRep, err := AnalyzeSteps("x", steps, KMeansAlgo, Options{Seed: 1, KSelection: SelectBIC})
	if err != nil {
		t.Fatal(err)
	}
	for name, rep := range map[string]*Report{"elbow": elbowRep, "bic": bicRep} {
		if rep.ChosenK < 1 || rep.ChosenK > 15 {
			t.Fatalf("%s chose k=%d", name, rep.ChosenK)
		}
	}
	// The paper chose the elbow method over SimPoint's BIC; on real step
	// data the spherical-Gaussian BIC overfits the bookkeeping noise and
	// fragments the training phase, which is exactly the rationale: the
	// elbow's summarization is at least as condensed.
	if elbowRep.ChosenK > bicRep.ChosenK {
		t.Fatalf("elbow k=%d above BIC k=%d", elbowRep.ChosenK, bicRep.ChosenK)
	}
	if ce, cb := Coverage(elbowRep.Phases, 3), Coverage(bicRep.Phases, 3); ce < cb {
		t.Fatalf("elbow coverage %.3f below BIC coverage %.3f", ce, cb)
	}
}
