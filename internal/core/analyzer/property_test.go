package analyzer

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// randomSteps builds a plausible step series: contiguous steps with a base
// op set plus random extras, so OLS sees realistic similarity structure.
func randomSteps(seed uint64, n int) []*trace.StepStat {
	rng := prng.New(seed)
	base := []string{"fusion", "MatMul", "Reshape", "Outfeed", "Infeed"}
	extras := []string{"a", "b", "c", "d", "e", "f"}
	var out []*trace.StepStat
	at := simclock.Time(0)
	for i := 0; i < n; i++ {
		s := trace.NewStepStat(int64(i))
		for _, op := range base {
			d := simclock.Duration(1 + rng.Intn(100))
			s.Observe(trace.Event{Name: op, Device: trace.TPU, Start: at, Dur: d, Step: int64(i)})
			at = at.Add(d)
		}
		for _, op := range extras {
			if rng.Float64() < 0.3 {
				d := simclock.Duration(1 + rng.Intn(10))
				s.Observe(trace.Event{Name: op, Device: trace.Host, Start: at, Dur: d, Step: int64(i)})
				at = at.Add(d)
			}
		}
		out = append(out, s)
	}
	return out
}

// Property: OLS partitions the steps — every step lands in exactly one
// phase, phases are contiguous runs, and order is preserved.
func TestPropertyOLSPartitions(t *testing.T) {
	f := func(seed uint64, nRaw uint8, thRaw uint8) bool {
		n := 1 + int(nRaw%80)
		th := float64(thRaw%101) / 100
		steps := randomSteps(seed, n)
		phases := OLS(steps, th)
		total := 0
		next := int64(0)
		for _, p := range phases {
			if len(p.Steps) == 0 {
				return false
			}
			for _, s := range p.Steps {
				if s.Step != next {
					return false // out of order or duplicated
				}
				next++
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: phase count is monotone non-decreasing in the threshold, and
// bounded by [1, n].
func TestPropertyOLSMonotone(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 1 + int(nRaw%80)
		steps := randomSteps(seed, n)
		prev := 0
		for _, th := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1.0} {
			c := len(OLS(steps, th))
			if c < prev || c < 1 || c > n {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: coverage is within (0, 1] and non-decreasing in n, reaching 1
// when n covers all phases.
func TestPropertyCoverageBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 2 + int(nRaw%60)
		steps := randomSteps(seed, n)
		phases := OLS(steps, 0.8)
		prev := 0.0
		for k := 1; k <= len(phases); k++ {
			c := Coverage(phases, k)
			if c <= 0 || c > 1.0000001 || c+1e-12 < prev {
				return false
			}
			prev = c
		}
		return Coverage(phases, len(phases)) > 0.999999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: StepSimilarity is symmetric and within [0, 1].
func TestPropertyStepSimilaritySymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		steps := randomSteps(seed, 2)
		a, b := steps[0], steps[1]
		sab, sba := StepSimilarity(a, b), StepSimilarity(b, a)
		return sab == sba && sab >= 0 && sab <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
